// plan_tile / apply_tile: band selection, deterministic auto search,
// profitability gating, option validation, degradation on unanalyzable
// programs.
#include "tile/plan.hpp"

#include <gtest/gtest.h>

#include "exec/vm.hpp"
#include "model/tile_cost.hpp"
#include "ir/parser.hpp"
#include "ir/printer.hpp"

namespace inlt {
namespace {

constexpr const char* kJkiCholeskySrc = R"(param N
do K = 1, N
  do J = 1, K - 1
    do L = K, N
      S3: A(L, K) = A(L, K) - A(L, J) * A(K, J)
    end
  end
  S1: A(K, K) = sqrt(A(K, K))
  do I = K + 1, N
    S2: A(I, K) = A(I, K) / A(K, K)
  end
end
)";

constexpr const char* kStencilSrc = R"(param N
do I = 1, N
  do J = 1, N
    S1: U(I, J) = U(I - 1, J) + U(I, J - 1)
  end
end
)";

struct Analyzed {
  Program p;
  IvLayout layout;
  DependenceSet deps;
  explicit Analyzed(const std::string& src)
      : p(parse_program(src)), layout(p), deps(analyze_dependences(layout)) {}
};

TEST(PlanTile, DefaultPicksTheDeepestBand) {
  Analyzed a(kJkiCholeskySrc);
  TilePlan plan = plan_tile(a.layout, a.deps, {});
  // Deepest bands are depth 2: the first one in report order wins.
  EXPECT_EQ(plan.spec.vars.size(), 2u);
  EXPECT_EQ(plan.spec.sizes, (std::vector<i64>{32, 32}));
  EXPECT_FALSE(plan.bands.bands.empty());
}

TEST(PlanTile, ExplicitLoopsOverrideBandChoice) {
  Analyzed a(kJkiCholeskySrc);
  TileOptions opts;
  opts.loops = {"J", "L"};
  opts.sizes = {8, 16};
  TilePlan plan = plan_tile(a.layout, a.deps, opts);
  EXPECT_EQ(plan.spec.vars, (std::vector<std::string>{"J", "L"}));
  EXPECT_EQ(plan.spec.sizes, (std::vector<i64>{8, 16}));
}

TEST(PlanTile, AutoSelectIsDeterministicArgmin) {
  Analyzed a(kJkiCholeskySrc);
  TileOptions opts;
  opts.auto_select = true;
  TilePlan plan = plan_tile(a.layout, a.deps, opts);
  ASSERT_EQ(plan.spec.sizes.size(), 2u);
  // The chosen point must actually be the argmin over the grid.
  const LoopBand* band = nullptr;
  for (const LoopBand& b : plan.bands.bands)
    if (b.vars == plan.spec.vars) band = &b;
  ASSERT_NE(band, nullptr);
  for (i64 s1 : {8, 16, 32, 64}) {
    for (i64 s2 : {8, 16, 32, 64}) {
      TileTraffic t =
          estimate_tile_traffic(a.p, band->loops, {s1, s2});
      EXPECT_GE(t.traffic_lines, plan.tiled_traffic)
          << s1 << "x" << s2 << " beats the chosen "
          << plan.spec.sizes[0] << "x" << plan.spec.sizes[1];
    }
  }
  // Determinism: same inputs, same plan.
  TilePlan again = plan_tile(a.layout, a.deps, opts);
  EXPECT_EQ(again.spec.sizes, plan.spec.sizes);
  EXPECT_EQ(again.tiled_traffic, plan.tiled_traffic);
}

TEST(PlanTile, ProfitableBandApplies) {
  Analyzed a(kJkiCholeskySrc);
  TileOptions opts;
  opts.auto_select = true;
  TilePlan plan = plan_tile(a.layout, a.deps, opts);
  EXPECT_TRUE(plan.applied);
  EXPECT_LT(plan.tiled_traffic, plan.untiled_traffic);
  std::string text = plan.to_text();
  EXPECT_NE(text.find("tile plan: band"), std::string::npos);
  EXPECT_NE(text.find("traffic ratio"), std::string::npos);
}

TEST(PlanTile, Errors) {
  Analyzed a(kJkiCholeskySrc);
  {
    TileOptions opts;
    opts.band = 99;
    EXPECT_THROW(plan_tile(a.layout, a.deps, opts), TileError);
  }
  {
    TileOptions opts;
    opts.loops = {"K", "I"};  // nested but not permutable
    EXPECT_THROW(plan_tile(a.layout, a.deps, opts), TileError);
  }
  {
    TileOptions opts;
    opts.loops = {"J", "K"};  // not a chain
    EXPECT_THROW(plan_tile(a.layout, a.deps, opts), TransformError);
  }
  {
    TileOptions opts;
    opts.sizes = {8};  // deepest band has 2 loops
    EXPECT_THROW(plan_tile(a.layout, a.deps, opts), TileError);
  }
  {
    TileOptions opts;
    opts.sizes = {8, 0};
    EXPECT_THROW(plan_tile(a.layout, a.deps, opts), TileError);
  }
}

TEST(ApplyTile, MaterializesTheProgramWhenApplied) {
  Program p = parse_program(kJkiCholeskySrc);
  TileOptions opts;
  opts.auto_select = true;
  TiledProgram tp = apply_tile(p, opts);
  ASSERT_TRUE(tp.plan.applied);
  ASSERT_TRUE(tp.program.has_value());
  ASSERT_FALSE(tp.plan.tile_vars.empty());
  std::string text = print_program(*tp.program);
  EXPECT_NE(text.find("do " + tp.plan.tile_vars[0]), std::string::npos);
}

TEST(ApplyTile, StencilModelSaysNoButForceApplies) {
  // Every stencil reference is indexed by both band dims, so no tile
  // pass re-fetches anything: the model predicts no reduction and the
  // rewrite is skipped.
  Program p = parse_program(kStencilSrc);
  TiledProgram tp = apply_tile(p, {});
  EXPECT_FALSE(tp.plan.applied);
  EXPECT_FALSE(tp.program.has_value());
  EXPECT_NE(tp.plan.note.find("no traffic reduction"), std::string::npos);

  TileOptions force;
  force.force = true;
  TiledProgram forced = apply_tile(p, force);
  EXPECT_TRUE(forced.plan.applied);
  ASSERT_TRUE(forced.program.has_value());
  EXPECT_NE(forced.plan.note.find("forced"), std::string::npos);
}

TEST(ApplyTile, IdentitySizesNoteTheIdentityRewrite) {
  Program p = parse_program(kStencilSrc);
  TileOptions opts;
  opts.sizes = {1, 1};
  opts.force = true;
  TiledProgram tp = apply_tile(p, opts);
  ASSERT_TRUE(tp.plan.applied);
  ASSERT_TRUE(tp.program.has_value());
  EXPECT_TRUE(tp.plan.tile_vars.empty());
  EXPECT_NE(tp.plan.note.find("identity"), std::string::npos);
  EXPECT_EQ(print_program(*tp.program), print_program(p));
}

TEST(ApplyTile, UnanalyzableProgramDegradesToNote) {
  // A program with a guard is a codegen artifact the dependence
  // analyzer rejects; apply_tile must degrade, not throw.
  constexpr const char* src = R"(param N
do I = 1, N
  if (I - 2 >= 0)
    S1: A(I) = A(I) + 1.0
  endif
end
)";
  Program p = parse_program(src);
  TiledProgram tp = apply_tile(p, {});
  EXPECT_FALSE(tp.plan.applied);
  EXPECT_FALSE(tp.program.has_value());
  EXPECT_NE(tp.plan.note.find("not analyzable"), std::string::npos)
      << tp.plan.note;
}

}  // namespace
}  // namespace inlt
