// tile_band unit tests: identity, degenerate tile sizes, non-unit
// steps, zero-trip loops, structural errors, partition remapping.
// Semantic equivalence at scale lives in test_differential.cpp; here
// the rewrites are small enough to check shapes and exact counts.
#include "tile/rewrite.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "exec/verify.hpp"
#include "exec/vm.hpp"
#include "ir/gallery.hpp"
#include "ir/parser.hpp"
#include "ir/printer.hpp"

namespace inlt {
namespace {

constexpr const char* kStencilSrc = R"(param N
do I = 1, N
  do J = 1, N
    S1: U(I, J) = U(I - 1, J) + U(I, J - 1)
  end
end
)";

Memory prepared_memory(const Program& p,
                       const std::map<std::string, i64>& params,
                       unsigned seed) {
  Memory mem;
  declare_arrays(p, params, mem);
  fill_spd(mem, seed);
  return mem;
}

void expect_same_memory(const Memory& a, const Memory& b,
                        const std::string& what) {
  ASSERT_EQ(a.arrays().size(), b.arrays().size()) << what;
  for (const auto& [name, arr] : a.arrays()) {
    const DenseArray& other = b.at(name);
    ASSERT_EQ(arr.data().size(), other.data().size()) << what << " " << name;
    EXPECT_EQ(std::memcmp(arr.data().data(), other.data().data(),
                          arr.data().size() * sizeof(double)),
              0)
        << what << ": array " << name << " differs";
  }
}

TEST(TileRewrite, AllOnesIsTheIdentity) {
  Program p = parse_program(kStencilSrc);
  TileResult r = tile_band(p, {{"I", "J"}, {1, 1}});
  EXPECT_TRUE(r.identity);
  EXPECT_TRUE(r.tile_vars.empty());
  EXPECT_EQ(print_program(r.program), print_program(p));
}

TEST(TileRewrite, TileLoopsWrapTheBand) {
  Program p = parse_program(kStencilSrc);
  TileResult r = tile_band(p, {{"I", "J"}, {4, 4}});
  EXPECT_FALSE(r.identity);
  ASSERT_EQ(r.tile_vars.size(), 2u);
  std::string text = print_program(r.program);
  // Tile loops stride by the tile size; point loops are clamped.
  EXPECT_NE(text.find("do " + r.tile_vars[0]), std::string::npos) << text;
  EXPECT_NE(text.find(", 4"), std::string::npos) << text;
  // Fresh names never collide with existing variables.
  EXPECT_EQ(r.tile_vars[0].find('I'), 0u);
  EXPECT_NE(r.tile_vars[0], "I");
}

TEST(TileRewrite, TileLargerThanExtentIsOneTilePerLoop) {
  // N = 6 with tile size 100: exactly one tile; the point loops cover
  // the original range, so iteration counts match the untiled nest
  // plus one iteration per tile loop.
  Program p = parse_program(kStencilSrc);
  TileResult r = tile_band(p, {{"I", "J"}, {100, 100}});
  std::map<std::string, i64> params{{"N", 6}};

  Memory mem_src = prepared_memory(p, params, 7);
  Memory mem_tiled = mem_src;
  InterpStats src = interpret(p, params, mem_src);
  InterpStats tiled = interpret(r.program, params, mem_tiled);

  EXPECT_EQ(tiled.instances, src.instances);
  // One extra header iteration per tile loop: IT runs once, JT runs
  // once per IT iteration (= once).
  EXPECT_EQ(tiled.loop_iterations, src.loop_iterations + 2);
  expect_same_memory(mem_src, mem_tiled, "tile>extent");
}

TEST(TileRewrite, NonUnitStepKeepsEverySourcePoint) {
  constexpr const char* src = R"(param N
do I = 1, N, 2
  S1: A(I) = A(I) + 1.0
end
)";
  Program p = parse_program(src);
  TileResult r = tile_band(p, {{"I"}, {3}});
  ASSERT_EQ(r.tile_vars.size(), 1u);
  for (i64 n : {0, 1, 5, 6, 9}) {
    std::map<std::string, i64> params{{"N", n}};
    Memory mem_src = prepared_memory(p, params, 3);
    Memory mem_tiled = mem_src;
    InterpStats s = interpret(p, params, mem_src);
    InterpStats t = interpret(r.program, params, mem_tiled);
    EXPECT_EQ(t.instances, s.instances) << "N=" << n;
    expect_same_memory(mem_src, mem_tiled, "step2 N=" + std::to_string(n));
  }
}

TEST(TileRewrite, ZeroTripLoopStaysZeroTrip) {
  constexpr const char* src = R"(param N
do I = 2, N
  do J = 1, I - 1
    S1: A(I, J) = A(I, J) * 2.0
  end
end
)";
  Program p = parse_program(src);
  TileResult r = tile_band(p, {{"I", "J"}, {2, 2}});
  for (i64 n : {1, 2, 3}) {  // N=1: outer zero-trip; N=2: inner once
    std::map<std::string, i64> params{{"N", n}};
    // Declare against a roomy instance so zero-trip cases still have
    // the array.
    std::map<std::string, i64> decl{{"N", 4}};
    Memory mem_src = prepared_memory(p, decl, 11);
    Memory mem_tiled = mem_src;
    InterpStats s = interpret(p, params, mem_src);
    InterpStats t = interpret(r.program, params, mem_tiled);
    EXPECT_EQ(t.instances, s.instances) << "N=" << n;
    expect_same_memory(mem_src, mem_tiled, "zerotrip N=" + std::to_string(n));
  }
}

TEST(TileRewrite, ImperfectNestGetsGuards) {
  // Tiling the (K, J) band of left-looking Cholesky must guard S1 and
  // the I loop (not enclosed by J) with the J tile window.
  constexpr const char* src = R"(param N
do K = 1, N
  do J = 1, K - 1
    do L = K, N
      S3: A(L, K) = A(L, K) - A(L, J) * A(K, J)
    end
  end
  S1: A(K, K) = sqrt(A(K, K))
  do I = K + 1, N
    S2: A(I, K) = A(I, K) / A(K, K)
  end
end
)";
  Program p = parse_program(src);
  TileResult r = tile_band(p, {{"K", "J"}, {4, 4}});
  std::string text = print_program(r.program);
  EXPECT_NE(text.find("if ("), std::string::npos)
      << "padded statements need tile-window guards:\n" << text;

  std::map<std::string, i64> params{{"N", 17}};
  Memory mem_src = prepared_memory(p, params, 1);
  Memory mem_tiled = mem_src;
  InterpStats s = interpret(p, params, mem_src);
  InterpStats t = interpret(r.program, params, mem_tiled);
  EXPECT_EQ(t.instances, s.instances);
  expect_same_memory(mem_src, mem_tiled, "cholesky kj 4x4");
}

TEST(TileRewrite, Errors) {
  Program p = parse_program(kStencilSrc);
  // Non-positive size.
  EXPECT_THROW(tile_band(p, {{"I"}, {0}}), TileError);
  EXPECT_THROW(tile_band(p, {{"I"}, {-2}}), TileError);
  // Size count mismatch.
  EXPECT_THROW(tile_band(p, {{"I", "J"}, {4}}), TileError);
  // Unknown loop variable.
  EXPECT_THROW(tile_band(p, {{"Z"}, {4}}), TileError);
  // Not a nested chain (reversed).
  EXPECT_THROW(tile_band(p, {{"J", "I"}, {4, 4}}), TileError);
  // Empty spec.
  EXPECT_THROW(tile_band(p, {{}, {}}), TileError);
}

TEST(TileRewrite, NonUnitStepRestrictions) {
  // A non-unit step whose lower bound depends on a band-subtree
  // variable cannot be phase-aligned with a rectangular tile grid —
  // must be rejected, not silently miscompiled.
  constexpr const char* src = R"(param N
do I = 1, N
  do J = I, N, 2
    S1: A(I, J) = A(I, J) + 1.0
  end
end
)";
  Program p = parse_program(src);
  EXPECT_THROW(tile_band(p, {{"I", "J"}, {4, 4}}), TileError);

  // Tiling J alone is fine: its tile loop nests inside I, so the
  // I-dependent lower bound stays on the step-2 lattice.
  TileResult r = tile_band(p, {{"J"}, {3}});
  for (i64 n : {0, 1, 7, 10}) {
    std::map<std::string, i64> params{{"N", n}};
    std::map<std::string, i64> decl{{"N", 10}};
    Memory mem_src = prepared_memory(p, decl, 5);
    Memory mem_tiled = mem_src;
    InterpStats s = interpret(p, params, mem_src);
    InterpStats t = interpret(r.program, params, mem_tiled);
    EXPECT_EQ(t.instances, s.instances) << "N=" << n;
    expect_same_memory(mem_src, mem_tiled, "stepJ N=" + std::to_string(n));
  }

  // A non-unit-step band loop with imperfect statements between the
  // levels would need phase-shifting guards — also rejected.
  constexpr const char* imperfect = R"(param N
do K = 1, N
  S1: A(K) = A(K) + 1.0
  do J = 1, N, 2
    S2: B(K, J) = B(K, J) + A(K)
  end
end
)";
  Program q = parse_program(imperfect);
  EXPECT_THROW(tile_band(q, {{"K", "J"}, {4, 4}}), TileError);
}

TEST(TiledPartition, BandVarsUpgradeToTileLoops) {
  Program p = parse_program(kStencilSrc);
  TileResult r = tile_band(p, {{"I", "J"}, {4, 4}});
  TileSpec spec{{"I", "J"}, {4, 4}};
  std::vector<std::string> part =
      tiled_partition({"I"}, spec, r.tile_vars);
  ASSERT_EQ(part.size(), 1u);
  EXPECT_EQ(part[0], r.tile_vars[0]);
  // Non-band variables pass through.
  std::vector<std::string> other =
      tiled_partition({"W"}, spec, r.tile_vars);
  ASSERT_EQ(other.size(), 1u);
  EXPECT_EQ(other[0], "W");
  // Identity rewrite (no tile vars): partition unchanged.
  EXPECT_EQ(tiled_partition({"I"}, spec, {}),
            (std::vector<std::string>{"I"}));
}

}  // namespace
}  // namespace inlt
