// Fully-permutable band detection: maximal windows, the
// enclosing-carry skip rule, imperfect nests, rejection reasons.
#include "tile/band.hpp"

#include <gtest/gtest.h>

#include "dependence/analyzer.hpp"
#include "ir/gallery.hpp"
#include "ir/parser.hpp"

namespace inlt {
namespace {

constexpr const char* kStencilSrc = R"(param N
do I = 1, N
  do J = 1, N
    S1: U(I, J) = U(I - 1, J) + U(I, J - 1)
  end
end
)";

// Left-looking (jki) Cholesky — what `inltc complete cholesky.loop L`
// produces. The (K, J) band is the classical tileable band of the
// left-looking form; the update loop (J, L) is a second band.
constexpr const char* kJkiCholeskySrc = R"(param N
do K = 1, N
  do J = 1, K - 1
    do L = K, N
      S3: A(L, K) = A(L, K) - A(L, J) * A(K, J)
    end
  end
  S1: A(K, K) = sqrt(A(K, K))
  do I = K + 1, N
    S2: A(I, K) = A(I, K) / A(K, K)
  end
end
)";

struct Analyzed {
  Program p;
  IvLayout layout;
  DependenceSet deps;
  explicit Analyzed(const std::string& src)
      : p(parse_program(src)), layout(p), deps(analyze_dependences(layout)) {}
};

const LoopBand* band_with_vars(const BandReport& r,
                               const std::vector<std::string>& vars) {
  for (const LoopBand& b : r.bands)
    if (b.vars == vars) return &b;
  return nullptr;
}

TEST(BandDetect, StencilIsOneFullDepthBand) {
  Analyzed a(kStencilSrc);
  BandReport r = detect_bands(a.layout, a.deps);
  ASSERT_EQ(r.bands.size(), 1u);
  EXPECT_EQ(r.bands[0].vars, (std::vector<std::string>{"I", "J"}));
  EXPECT_EQ(r.bands[0].depth(), 2);
  // The path simply ends at J — nothing blocked the extension.
  EXPECT_TRUE(r.bands[0].boundary_note.empty());
}

TEST(BandDetect, JkiCholeskyFindsTheClassicBands) {
  Analyzed a(kJkiCholeskySrc);
  BandReport r = detect_bands(a.layout, a.deps);

  const LoopBand* kj = band_with_vars(r, {"K", "J"});
  ASSERT_NE(kj, nullptr) << "the left-looking (K, J) band must be detected";
  // Extension to (K, J, L) is blocked by a dependence with a negative
  // L component — the note names it.
  EXPECT_FALSE(kj->boundary_note.empty());
  EXPECT_NE(kj->boundary_note.find("at loop L"), std::string::npos)
      << kj->boundary_note;

  EXPECT_NE(band_with_vars(r, {"J", "L"}), nullptr)
      << "the update loops (J, L) form a band of their own";

  // Strict prefixes of reported bands are dropped.
  EXPECT_EQ(band_with_vars(r, {"K"}), nullptr);
  EXPECT_EQ(band_with_vars(r, {"J"}), nullptr);
}

TEST(BandDetect, RightLookingCholeskyKBandStaysDepthOne) {
  // Right-looking kij Cholesky: the K loop cannot join any deeper
  // band — every inner loop pairs with K through a dependence whose
  // padded component is negative.
  Program p = gallery::cholesky();
  IvLayout layout(p);
  DependenceSet deps = analyze_dependences(layout);
  BandReport r = detect_bands(layout, deps);
  for (const LoopBand& b : r.bands) {
    if (b.vars.front() == "K") {
      EXPECT_EQ(b.depth(), 1) << "K must not extend: " << b.vars[1];
      EXPECT_FALSE(b.boundary_note.empty());
    }
  }
  ASSERT_NE(band_with_vars(r, {"K"}), nullptr);
}

TEST(BandDetect, SingleLoopIsAlwaysABand) {
  // Strip-mining alone never reorders; even a loop carrying a negative
  // dependence against itself... cannot exist (lex-negative source
  // dependences are impossible), but a loop whose extension is blocked
  // still reports as a depth-1 band.
  Analyzed a(kJkiCholeskySrc);
  BandReport r = detect_bands(a.layout, a.deps);
  for (const LoopBand& b : r.bands) EXPECT_GE(b.depth(), 1);
  EXPECT_NE(band_with_vars(r, {"I"}), nullptr);
}

TEST(BandRejectReason, AcceptsPermutableChains) {
  Analyzed s(kStencilSrc);
  EXPECT_TRUE(band_reject_reason(s.layout, s.deps, {"I", "J"}).empty());
  EXPECT_TRUE(band_reject_reason(s.layout, s.deps, {"I"}).empty());

  Analyzed c(kJkiCholeskySrc);
  EXPECT_TRUE(band_reject_reason(c.layout, c.deps, {"K", "J"}).empty());
  EXPECT_TRUE(band_reject_reason(c.layout, c.deps, {"J", "L"}).empty());
}

TEST(BandRejectReason, NamesTheViolatedDependence) {
  Analyzed c(kJkiCholeskySrc);
  std::string reason = band_reject_reason(c.layout, c.deps, {"K", "I"});
  EXPECT_FALSE(reason.empty());
  EXPECT_NE(reason.find("at loop I"), std::string::npos) << reason;
}

TEST(BandRejectReason, ThrowsOnNonChains) {
  Analyzed c(kJkiCholeskySrc);
  // Reversed nesting order is not a chain.
  EXPECT_THROW(band_reject_reason(c.layout, c.deps, {"J", "K"}),
               TransformError);
  // Unknown variable.
  EXPECT_THROW(band_reject_reason(c.layout, c.deps, {"Z"}), TransformError);
  // Empty chain.
  EXPECT_THROW(band_reject_reason(c.layout, c.deps, {}), TransformError);
}

TEST(BandReport, ToTextListsBandsAndBlockers) {
  Analyzed c(kJkiCholeskySrc);
  BandReport r = detect_bands(c.layout, c.deps);
  std::string text = r.to_text(c.layout, c.deps);
  EXPECT_NE(text.find("fully permutable"), std::string::npos);
  EXPECT_NE(text.find("covers statements"), std::string::npos);
  EXPECT_NE(text.find("extension blocked"), std::string::npos);
}

TEST(BandDetect, CandidateSpaceOverloadChecksWidths) {
  Analyzed s(kStencilSrc);
  std::vector<Dependence> deps = s.deps.deps;
  std::vector<DepVector> vectors;
  for (const Dependence& d : deps) vectors.push_back(d.vector);
  BandReport r = detect_bands(s.layout, deps, vectors);
  ASSERT_EQ(r.bands.size(), 1u);
  vectors.pop_back();
  EXPECT_THROW(detect_bands(s.layout, deps, vectors), Error);
}

}  // namespace
}  // namespace inlt
