// Tiling differential suite: every detected band of every gallery and
// testdata program, tiled at several sizes, must execute bit-identically
// to the untiled program on all three engines — tiling is a reorder of
// statement instances, never a change of values. Also checks the three
// engines against each other on the tiled programs (tile loops, clamped
// point loops and window guards are codegen-flavored constructs the
// engines must agree on) and the partitioned parallel driver with a
// tile-remapped doall partition.
#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <sstream>

#include "dependence/analyzer.hpp"
#include "exec/verify.hpp"
#include "exec/vm.hpp"
#include "ir/gallery.hpp"
#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "tile/band.hpp"
#include "tile/rewrite.hpp"

namespace inlt {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

Program load_testdata(const std::string& name) {
  return parse_program(read_file(std::string(INLT_TESTDATA_DIR) + "/" + name));
}

void expect_bit_identical(const Memory& a, const Memory& b,
                          const std::string& what) {
  ASSERT_EQ(a.arrays().size(), b.arrays().size()) << what;
  for (const auto& [name, arr] : a.arrays()) {
    const DenseArray& other = b.at(name);
    ASSERT_EQ(arr.data().size(), other.data().size()) << what << " " << name;
    EXPECT_EQ(std::memcmp(arr.data().data(), other.data().data(),
                          arr.data().size() * sizeof(double)),
              0)
        << what << ": array " << name << " differs";
  }
}

Memory prepared(const Program& p, const std::map<std::string, i64>& params,
                FillKind fill, unsigned seed) {
  Memory mem;
  declare_arrays(p, params, mem);
  if (fill == FillKind::kSpd)
    fill_spd(mem, seed);
  else
    randomize(mem, seed);
  return mem;
}

// Run `tiled` under all three engines against the untiled reference:
// memory must be bit-identical everywhere, instance counts must match
// the reference, and the engines must agree on the tiled program's own
// stats (loop iterations and guard failures included).
void check_tiled(const Program& src, const Program& tiled,
                 const std::map<std::string, i64>& params, FillKind fill,
                 unsigned seed, const std::string& what) {
  Memory proto = prepared(src, params, fill, seed);

  Memory ref_mem = proto;
  InterpStats ref = interpret(src, params, ref_mem);

  InterpStats first{};
  bool have_first = false;
  for (ExecEngine engine :
       {ExecEngine::kVm, ExecEngine::kAstWalker, ExecEngine::kNative}) {
    Memory mem = proto;
    InterpOptions opts;
    opts.engine = engine;
    InterpStats st = interpret(tiled, params, mem, opts);
    EXPECT_EQ(st.instances, ref.instances)
        << what << ": tiling must not change the instance count";
    expect_bit_identical(ref_mem, mem, what);
    if (!have_first) {
      first = st;
      have_first = true;
    } else {
      EXPECT_EQ(st.instances, first.instances) << what;
      EXPECT_EQ(st.loop_iterations, first.loop_iterations) << what;
      EXPECT_EQ(st.guard_failures, first.guard_failures) << what;
    }
  }
}

// Tile every detected band of `p` at several sizes and check each
// rewrite differentially.
void tile_differential(const Program& p, const std::string& what,
                       std::map<std::string, i64> params = {{"N", 9}}) {
  IvLayout layout(p);
  DependenceSet deps = analyze_dependences(layout);
  BandReport report = detect_bands(layout, deps);
  ASSERT_FALSE(report.bands.empty()) << what;

  int rewrites = 0;
  for (const LoopBand& band : report.bands) {
    for (i64 size : {2, 3, 8}) {
      TileSpec spec;
      spec.vars = band.vars;
      spec.sizes.assign(band.vars.size(), size);
      TileResult r;
      try {
        r = tile_band(p, spec);
      } catch (const TileError&) {
        continue;  // hull/step restrictions: skip, not a failure
      }
      ++rewrites;
      for (unsigned seed : {1u, 2u}) {
        check_tiled(p, r.program, params, FillKind::kSpd, seed,
                    what + " band=" + band.vars.front() + " size=" +
                        std::to_string(size) + " seed=" +
                        std::to_string(seed));
      }
    }
  }
  EXPECT_GT(rewrites, 0) << what << ": no band was tileable";
}

TEST(TileDifferential, GalleryFig1) {
  tile_differential(gallery::fig1_running_example(), "fig1");
}
TEST(TileDifferential, GallerySimplifiedCholesky) {
  tile_differential(gallery::simplified_cholesky(), "simplified_cholesky");
}
TEST(TileDifferential, GalleryFig3PerfectNest) {
  tile_differential(gallery::fig3_perfect_nest(), "fig3");
}
TEST(TileDifferential, GalleryAugmentation) {
  tile_differential(gallery::augmentation_example(), "augmentation");
}
TEST(TileDifferential, GalleryCholesky) {
  tile_differential(gallery::cholesky(), "cholesky");
}
TEST(TileDifferential, GalleryLu) { tile_differential(gallery::lu(), "lu"); }

TEST(TileDifferential, TestdataCholesky) {
  tile_differential(load_testdata("cholesky.loop"), "cholesky.loop");
}
TEST(TileDifferential, TestdataSkewExample) {
  tile_differential(load_testdata("skew_example.loop"), "skew_example.loop");
}
TEST(TileDifferential, TestdataStencil) {
  tile_differential(load_testdata("stencil.loop"), "stencil.loop");
}

// The headline case: left-looking (jki) Cholesky, the form whose
// (K, J) band tiling actually blocks — diagonal-padded guards, an
// imperfect nest, random fill for bit-level strictness.
TEST(TileDifferential, JkiCholeskyKJBand) {
  constexpr const char* src = R"(param N
do K = 1, N
  do J = 1, K - 1
    do L = K, N
      S3: A(L, K) = A(L, K) - A(L, J) * A(K, J)
    end
  end
  S1: A(K, K) = sqrt(A(K, K))
  do I = K + 1, N
    S2: A(I, K) = A(I, K) / A(K, K)
  end
end
)";
  Program p = parse_program(src);
  for (i64 size : {2, 3, 8}) {
    TileResult r = tile_band(p, {{"K", "J"}, {size, size}});
    for (unsigned seed : {1u, 2u, 3u}) {
      check_tiled(p, r.program, {{"N", 13}}, FillKind::kSpd, seed,
                  "jki (K,J) size=" + std::to_string(size));
    }
  }
}

// Parallel driver: the stencil's J tile loop is not doall, but a
// doall-partitionable program (independent rows) chunked over its tile
// loop must stay bit-identical at any thread count.
TEST(TileDifferential, ParallelTiledDoall) {
  constexpr const char* src = R"(param N
do I = 1, N
  do J = 1, N
    S1: B(I, J) = A(I, J) * 2.0 + A(I, J)
  end
end
)";
  Program p = parse_program(src);
  TileSpec spec{{"I", "J"}, {4, 4}};
  TileResult r = tile_band(p, spec);
  std::map<std::string, i64> params{{"N", 19}};

  Memory proto = prepared(p, params, FillKind::kRandom, 2);
  Memory ref_mem = proto;
  InterpStats ref = interpret(p, params, ref_mem);

  std::vector<std::string> part =
      tiled_partition({"I"}, spec, r.tile_vars);
  ASSERT_EQ(part, (std::vector<std::string>{r.tile_vars[0]}));

  for (int threads : {1, 4}) {
    Memory mem = proto;
    InterpOptions opts;
    opts.num_threads = threads;
    opts.partition = part;
    InterpStats st = interpret(r.program, params, mem, opts);
    EXPECT_EQ(st.instances, ref.instances) << "threads=" << threads;
    expect_bit_identical(ref_mem, mem,
                         "parallel tiled threads=" + std::to_string(threads));
  }
}

}  // namespace
}  // namespace inlt
