// The kTile pipeline stage: full-mode search with SearchOptions::tile
// must tile every legal candidate's generated program, verification
// must run against the *tiled* program (with the partition remapped to
// tile loops), and legality-only mode must skip the stage entirely.
#include "pipeline/search.hpp"

#include <gtest/gtest.h>

#include "ir/gallery.hpp"
#include "ir/parser.hpp"
#include "ir/printer.hpp"

namespace inlt {
namespace {

Program matmul() {
  return parse_program(R"(param N
do I = 1, N
  do J = 1, N
    do K = 1, N
      S1: C(I, J) = C(I, J) + A(I, K) * B(K, J)
    end
  end
end
)");
}

TEST(TileStage, FullSearchCarriesAppliedPlans) {
  SessionOptions opts;
  opts.threads = 1;
  TransformSession session(matmul(), opts);

  SearchOptions sopts;
  sopts.tile = true;
  sopts.tile_opts.auto_select = true;
  sopts.verify_params = {{"N", 9}};
  SearchResult res = session.search(SearchSpace{}, sopts);

  ASSERT_FALSE(res.hits.empty());
  EXPECT_GT(res.stats.verified, 0);
  EXPECT_EQ(res.stats.verify_failed, 0);

  int applied = 0;
  for (const SearchHit& h : res.hits) {
    ASSERT_TRUE(h.tile.has_value()) << "hit " << h.index;
    if (!h.tile->applied) continue;
    ++applied;
    EXPECT_FALSE(h.tile->tile_vars.empty()) << "hit " << h.index;
    ASSERT_TRUE(h.result.program.has_value());
    // The hit's program IS the tiled program: its tile loops exist.
    std::string text = print_program(*h.result.program);
    EXPECT_NE(text.find("do " + h.tile->tile_vars[0]), std::string::npos)
        << text;
    EXPECT_LT(h.tile->tiled_traffic, h.tile->untiled_traffic);
    // Verification above ran on exactly this (tiled) program.
    ASSERT_TRUE(h.result.verify.has_value());
    EXPECT_TRUE(h.result.verify->equivalent);
  }
  // Matmul is fully permutable: every order is legal and tileable.
  EXPECT_EQ(applied, static_cast<int>(res.hits.size()));
}

TEST(TileStage, LegalityOnlySkipsTiling) {
  SessionOptions opts;
  opts.threads = 1;
  TransformSession session(matmul(), opts);

  SearchOptions sopts;
  sopts.mode = SearchMode::kLegalityOnly;
  sopts.tile = true;
  sopts.tile_opts.auto_select = true;
  SearchResult res = session.search(SearchSpace{}, sopts);

  ASSERT_FALSE(res.hits.empty());
  for (const SearchHit& h : res.hits)
    EXPECT_FALSE(h.tile.has_value()) << "hit " << h.index;
}

TEST(TileStage, UntileableCandidatesKeepTheirProgram) {
  // The running example's generated programs are not all analyzable or
  // tileable; the stage must degrade per candidate (note set, program
  // untouched) and never fail the search.
  SessionOptions opts;
  opts.threads = 1;
  TransformSession session(gallery::fig1_running_example(), opts);

  SearchOptions sopts;
  sopts.tile = true;
  sopts.tile_opts.auto_select = true;
  sopts.verify_params = {{"N", 8}};
  SearchResult res = session.search(SearchSpace{}, sopts);

  ASSERT_FALSE(res.hits.empty());
  EXPECT_EQ(res.stats.verify_failed, 0);
  for (const SearchHit& h : res.hits) {
    ASSERT_TRUE(h.tile.has_value());
    if (!h.tile->applied) {
      EXPECT_FALSE(h.tile->note.empty()) << "hit " << h.index;
      EXPECT_TRUE(h.result.program.has_value());
    }
  }
}

TEST(TileStage, ParallelVerificationUsesRemappedPartition) {
  // exec_threads > 1 exercises tiled_partition inside the verify
  // stage: the doall partition of the candidate is remapped to tile
  // loops before the parallel run. Bit-identical results are the
  // whole point — verify_failed must stay 0.
  SessionOptions opts;
  opts.threads = 1;
  TransformSession session(matmul(), opts);

  SearchOptions sopts;
  sopts.tile = true;
  sopts.tile_opts.sizes = {4, 4, 4};
  sopts.tile_opts.force = true;
  sopts.verify_params = {{"N", 11}};
  sopts.exec_threads = 4;
  SearchResult res = session.search(SearchSpace{}, sopts);

  ASSERT_FALSE(res.hits.empty());
  EXPECT_GT(res.stats.verified, 0);
  EXPECT_EQ(res.stats.verify_failed, 0);
}

TEST(TileStage, ExplicitSizesPropagate) {
  SessionOptions opts;
  opts.threads = 1;
  TransformSession session(matmul(), opts);

  SearchOptions sopts;
  sopts.tile = true;
  sopts.tile_opts.sizes = {8, 8, 8};
  sopts.tile_opts.force = true;
  SearchResult res = session.search(SearchSpace{}, sopts);

  ASSERT_FALSE(res.hits.empty());
  for (const SearchHit& h : res.hits) {
    ASSERT_TRUE(h.tile.has_value());
    if (h.tile->applied)
      EXPECT_EQ(h.tile->spec.sizes, (std::vector<i64>{8, 8, 8}));
  }
}

}  // namespace
}  // namespace inlt
