// TransformSession::search(): results must be index-aligned with the
// materialized candidate list and bit-identical to sequential
// evaluate() calls — pruning may only skip candidates evaluate()
// would reject.
#include "pipeline/search.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "ir/gallery.hpp"
#include "ir/printer.hpp"
#include "transform/legality.hpp"

namespace inlt {
namespace {

// Evaluate every materialized candidate sequentially and check the
// search result against it, index by index.
void expect_search_matches_evaluate(Program (*make)(), const SearchSpace& space,
                                    bool exact = false) {
  SessionOptions opts;
  opts.threads = 1;
  opts.exact = exact;
  TransformSession ref(make(), opts);
  PermutationSkewGenerator gen(ref.layout(), space);
  std::vector<IntMat> cands = materialize_candidates(ref.layout(), gen);

  TransformSession searcher(make(), opts);
  PermutationSkewGenerator gen2(searcher.layout(), space);
  SearchResult res = searcher.search(gen2);

  ASSERT_EQ(res.stats.candidates_total, static_cast<i64>(cands.size()));
  EXPECT_EQ(res.stats.evaluated + res.stats.pruned_candidates,
            res.stats.candidates_total);
  EXPECT_EQ(res.stats.legal + res.stats.illegal_evaluated,
            res.stats.evaluated);
  EXPECT_EQ(res.stats.legal, static_cast<i64>(res.hits.size()));

  size_t h = 0;
  for (size_t i = 0; i < cands.size(); ++i) {
    CandidateResult expected = ref.evaluate(cands[i]);
    bool hit = h < res.hits.size() &&
               res.hits[h].index == static_cast<i64>(i);
    ASSERT_EQ(hit, expected.legal) << "candidate " << i;
    if (!hit) continue;
    const SearchHit& sh = res.hits[h++];
    // The hit's matrix is the materialized candidate at its index...
    EXPECT_TRUE(sh.matrix == cands[i]);
    // ...and the result is bit-identical to a sequential evaluate().
    ASSERT_TRUE(sh.result.legal);
    ASSERT_TRUE(sh.result.program.has_value());
    EXPECT_EQ(print_program(*sh.result.program),
              print_program(*expected.program))
        << "candidate " << i;
    EXPECT_EQ(sh.result.legality.unsatisfied, expected.legality.unsatisfied);
    EXPECT_EQ(sh.result.error, expected.error);
  }
  EXPECT_EQ(h, res.hits.size());  // every hit consumed, in order
}

TEST(SearchTest, CholeskyOrderSweepMatchesEvaluate) {
  expect_search_matches_evaluate(&gallery::cholesky, SearchSpace{});
}

TEST(SearchTest, LuOrderSweepMatchesEvaluate) {
  expect_search_matches_evaluate(&gallery::lu, SearchSpace{});
}

TEST(SearchTest, SimplifiedCholeskySkewSweepMatchesEvaluate) {
  expect_search_matches_evaluate(&gallery::simplified_cholesky,
                                 SearchSpace{/*skew_bound=*/1,
                                             /*skew_depth=*/1});
}

TEST(SearchTest, CholeskySkewSweepMatchesEvaluate) {
  expect_search_matches_evaluate(&gallery::cholesky,
                                 SearchSpace{/*skew_bound=*/1,
                                             /*skew_depth=*/1});
}

TEST(SearchTest, ExactModeEvaluatesEverything) {
  // The hull engine must not prune exact-mode searches.
  SessionOptions opts;
  opts.exact = true;
  opts.threads = 1;
  TransformSession session(gallery::simplified_cholesky(), opts);
  SearchResult res = session.search(SearchSpace{});
  EXPECT_EQ(res.stats.pruned_candidates, 0);
  EXPECT_EQ(res.stats.evaluated, res.stats.candidates_total);
  expect_search_matches_evaluate(&gallery::simplified_cholesky, SearchSpace{},
                                 /*exact=*/true);
}

TEST(SearchTest, PruningActuallyHappens) {
  // Cholesky's order sweep has illegal prefixes; the engine must prune
  // at least one whole subtree rather than evaluating every candidate.
  TransformSession session(gallery::cholesky());
  SearchResult res = session.search(SearchSpace{});
  EXPECT_GT(res.stats.pruned_subtrees, 0);
  EXPECT_GT(res.stats.pruned_candidates, 0);
  EXPECT_LT(res.stats.evaluated, res.stats.candidates_total);
  EXPECT_GT(res.stats.legal, 0);
}

TEST(SearchTest, LegalityOnlyModeMatchesFullVerdicts) {
  // The filter mode must classify every candidate exactly like the
  // full pipeline — same hit indices, same unsatisfied sets — it just
  // skips code generation.
  SessionOptions opts;
  opts.threads = 1;
  TransformSession session(gallery::cholesky(), opts);
  SearchSpace space{/*skew_bound=*/1, /*skew_depth=*/1};
  SearchResult full = session.search(space);
  SearchResult filter = session.search(space, {}, SearchMode::kLegalityOnly);

  EXPECT_EQ(filter.stats.candidates_total, full.stats.candidates_total);
  EXPECT_EQ(filter.stats.legal, full.stats.legal);
  ASSERT_EQ(filter.hits.size(), full.hits.size());
  for (size_t i = 0; i < full.hits.size(); ++i) {
    EXPECT_EQ(filter.hits[i].index, full.hits[i].index);
    EXPECT_TRUE(filter.hits[i].matrix == full.hits[i].matrix);
    EXPECT_TRUE(filter.hits[i].result.legal);
    EXPECT_EQ(filter.hits[i].result.legality.unsatisfied,
              full.hits[i].result.legality.unsatisfied);
    // No program generated in filter mode.
    EXPECT_FALSE(filter.hits[i].result.program.has_value());
  }
}

TEST(SearchTest, LegalityOnlyModeExact) {
  // Exact mode cannot use the hull engine; the filter still decides
  // each candidate with the ILP test and must agree with full search.
  SessionOptions opts;
  opts.exact = true;
  opts.threads = 1;
  TransformSession session(gallery::simplified_cholesky(), opts);
  SearchResult full = session.search(SearchSpace{});
  SearchResult filter =
      session.search(SearchSpace{}, {}, SearchMode::kLegalityOnly);
  ASSERT_EQ(filter.hits.size(), full.hits.size());
  for (size_t i = 0; i < full.hits.size(); ++i) {
    EXPECT_EQ(filter.hits[i].index, full.hits[i].index);
    EXPECT_FALSE(filter.hits[i].result.program.has_value());
  }
}

TEST(SearchTest, SinkStreamsHitsInOrder) {
  TransformSession session(gallery::cholesky());
  std::vector<i64> streamed;
  SearchResult res = session.search(
      SearchSpace{}, [&](const SearchHit& h) { streamed.push_back(h.index); });
  ASSERT_EQ(streamed.size(), res.hits.size());
  for (size_t i = 0; i < streamed.size(); ++i)
    EXPECT_EQ(streamed[i], res.hits[i].index);
  EXPECT_TRUE(std::is_sorted(streamed.begin(), streamed.end()));
}

TEST(SearchTest, RepeatedSearchesReuseTheEngine) {
  TransformSession session(gallery::lu());
  SearchResult first = session.search(SearchSpace{});
  i64 hits0 = Stats::global().value("incremental.memo_hits");
  SearchResult second = session.search(SearchSpace{});
  // Second sweep of the same space: every engine push is memoized.
  EXPECT_GT(Stats::global().value("incremental.memo_hits"), hits0);
  EXPECT_EQ(first.stats.legal, second.stats.legal);
  EXPECT_EQ(first.hits.size(), second.hits.size());
  for (size_t i = 0; i < first.hits.size(); ++i)
    EXPECT_EQ(first.hits[i].index, second.hits[i].index);
}

TEST(SearchTest, RejectionBreakdownAccountsForEveryIllegalCandidate) {
  // Hull mode on the Cholesky order sweep: every illegal candidate is
  // rejected by the engine (at a prefix or at the leaf), so the
  // provenance must attribute exactly the pruned count, and the
  // per-dependence and per-row tallies must each sum to it.
  SessionOptions opts;
  opts.threads = 1;
  TransformSession session(gallery::cholesky(), opts);
  SearchResult res = session.search(SearchSpace{});
  ASSERT_GT(res.stats.pruned_candidates, 0);
  EXPECT_EQ(res.rejections.rejected,
            res.stats.pruned_candidates + res.stats.illegal_evaluated);

  i64 by_dep = 0, by_row = 0;
  for (i64 n : res.rejections.by_dependence) {
    EXPECT_GE(n, 0);
    by_dep += n;
  }
  for (i64 n : res.rejections.by_row) {
    EXPECT_GE(n, 0);
    by_row += n;
  }
  EXPECT_EQ(by_dep, res.rejections.rejected);
  EXPECT_EQ(by_row, res.rejections.rejected);
  ASSERT_EQ(res.rejections.by_dependence.size(),
            session.dependences().deps.size());
  // by_row has one bucket per slot plus the completion bucket.
  EXPECT_EQ(res.rejections.by_row.size(),
            session.layout().all_loop_positions().size() + 1);
  EXPECT_NE(res.rejections.to_text(session.dependences()).find("rejected"),
            std::string::npos);
}

TEST(SearchTest, RejectionTotalMatchesBatchLegality) {
  // The number of candidates the breakdown attributes equals the
  // number check_legality rejects over the materialized list.
  SessionOptions opts;
  opts.threads = 1;
  TransformSession session(gallery::cholesky(), opts);
  PermutationSkewGenerator gen(session.layout(), SearchSpace{});
  std::vector<IntMat> cands = materialize_candidates(session.layout(), gen);
  i64 illegal = 0;
  for (const IntMat& m : cands)
    if (!check_legality(session.layout(), session.dependences(), m).legal())
      ++illegal;

  PermutationSkewGenerator gen2(session.layout(), SearchSpace{});
  SearchOptions sopts;
  sopts.mode = SearchMode::kLegalityOnly;
  SearchResult res = session.search(gen2, sopts);
  EXPECT_EQ(res.rejections.rejected, illegal);
  // Every attributed dependence is one that actually appears in a
  // violation somewhere in the space.
  for (size_t d = 0; d < res.rejections.by_dependence.size(); ++d) {
    if (res.rejections.by_dependence[d] == 0) continue;
    bool violates_somewhere = false;
    for (const IntMat& m : cands) {
      LegalityResult lr =
          check_legality(session.layout(), session.dependences(), m);
      for (const Diagnostic& dg : lr.diagnostics)
        if (dg.dep_index == static_cast<int>(d)) violates_somewhere = true;
    }
    EXPECT_TRUE(violates_somewhere) << "dependence " << d;
  }
}

TEST(SearchTest, ProgressCallbackIsMonotonicAndFinal) {
  SessionOptions opts;
  opts.threads = 1;
  TransformSession session(gallery::cholesky(), opts);
  std::vector<SearchProgress> reports;
  SearchOptions sopts;
  sopts.mode = SearchMode::kLegalityOnly;
  sopts.progress_interval = 1;  // report as often as possible
  sopts.progress = [&](const SearchProgress& p) { reports.push_back(p); };
  SearchResult res = session.search(SearchSpace{}, sopts);

  ASSERT_FALSE(reports.empty());
  i64 prev = -1;
  for (const SearchProgress& p : reports) {
    EXPECT_GE(p.done, prev);
    prev = p.done;
    EXPECT_EQ(p.total, res.stats.candidates_total);
    EXPECT_LE(p.done, p.total);
    EXPECT_GE(p.elapsed_s, 0.0);
    EXPECT_GE(p.rate, 0.0);
    EXPECT_GE(p.prune_rate, 0.0);
    EXPECT_LE(p.prune_rate, 1.0);
    EXPECT_GE(p.eta_s, 0.0);
  }
  // The final report closes the bar: done == total, final tallies.
  EXPECT_EQ(reports.back().done, res.stats.candidates_total);
  EXPECT_EQ(reports.back().legal, res.stats.legal);
  EXPECT_EQ(reports.back().pruned, res.stats.pruned_candidates);
}

TEST(SearchTest, ProgressNotCalledWhenUnset) {
  // No progress callback: nothing to report, nothing crashes — and the
  // options overload agrees with the shorthand overload.
  TransformSession session(gallery::lu());
  SearchOptions sopts;
  sopts.mode = SearchMode::kLegalityOnly;
  SearchResult a = session.search(SearchSpace{}, sopts);
  SearchResult b =
      session.search(SearchSpace{}, {}, SearchMode::kLegalityOnly);
  EXPECT_EQ(a.stats.legal, b.stats.legal);
  EXPECT_EQ(a.rejections.rejected, b.rejections.rejected);
  EXPECT_EQ(a.rejections.by_dependence, b.rejections.by_dependence);
  EXPECT_EQ(a.rejections.by_row, b.rejections.by_row);
}

TEST(SearchTest, GeneratorEnumeratesExpectedCounts) {
  Program p = gallery::cholesky();
  IvLayout layout(p);
  {
    PermutationSkewGenerator gen(layout, SearchSpace{});
    std::vector<IntMat> cands = materialize_candidates(layout, gen);
    EXPECT_EQ(cands.size(), 24u);  // 4! orders
  }
  {
    PermutationSkewGenerator gen(layout, SearchSpace{1, 1});
    // Depth t branching: (4-t) * 3^min(t,1) -> 4 * 9 * 6 * 3 = 648.
    std::vector<IntMat> cands = materialize_candidates(layout, gen);
    EXPECT_EQ(cands.size(), 648u);
  }
}

}  // namespace
}  // namespace inlt
