// The deferred evaluation stage of full-mode search() runs candidates
// on worker threads; the merged result must be bit-identical to a
// single-threaded run — same hits in the same order, same stats, same
// rejection provenance — with or without semantic verification.
#include <gtest/gtest.h>

#include "ir/gallery.hpp"
#include "ir/printer.hpp"
#include "pipeline/search.hpp"

namespace inlt {
namespace {

SearchResult run_search(Program (*make)(), int threads,
                        const SearchSpace& space,
                        const SearchOptions& sopts) {
  SessionOptions opts;
  opts.threads = threads;
  TransformSession session(make(), opts);
  PermutationSkewGenerator gen(session.layout(), space);
  return session.search(gen, sopts);
}

void expect_identical(const SearchResult& a, const SearchResult& b) {
  EXPECT_EQ(a.stats.candidates_total, b.stats.candidates_total);
  EXPECT_EQ(a.stats.evaluated, b.stats.evaluated);
  EXPECT_EQ(a.stats.legal, b.stats.legal);
  EXPECT_EQ(a.stats.illegal_evaluated, b.stats.illegal_evaluated);
  EXPECT_EQ(a.stats.pruned_candidates, b.stats.pruned_candidates);
  EXPECT_EQ(a.stats.pruned_subtrees, b.stats.pruned_subtrees);
  EXPECT_EQ(a.stats.verified, b.stats.verified);
  EXPECT_EQ(a.stats.verify_failed, b.stats.verify_failed);
  EXPECT_EQ(a.rejections.by_dependence, b.rejections.by_dependence);
  EXPECT_EQ(a.rejections.by_row, b.rejections.by_row);
  EXPECT_EQ(a.rejections.rejected, b.rejections.rejected);
  ASSERT_EQ(a.hits.size(), b.hits.size());
  for (size_t i = 0; i < a.hits.size(); ++i) {
    EXPECT_EQ(a.hits[i].index, b.hits[i].index);
    EXPECT_TRUE(a.hits[i].matrix == b.hits[i].matrix);
    ASSERT_EQ(a.hits[i].result.program.has_value(),
              b.hits[i].result.program.has_value());
    if (a.hits[i].result.program.has_value()) {
      EXPECT_EQ(print_program(*a.hits[i].result.program),
                print_program(*b.hits[i].result.program));
    }
    ASSERT_EQ(a.hits[i].result.verify.has_value(),
              b.hits[i].result.verify.has_value());
    if (a.hits[i].result.verify.has_value()) {
      EXPECT_EQ(a.hits[i].result.verify->equivalent,
                b.hits[i].result.verify->equivalent);
      EXPECT_EQ(a.hits[i].result.verify->max_diff,
                b.hits[i].result.verify->max_diff);
    }
  }
}

TEST(SearchParallel, FourThreadsMatchSequential) {
  SearchSpace space{/*skew_bound=*/1, /*skew_depth=*/1};
  SearchOptions sopts;
  SearchResult seq = run_search(&gallery::cholesky, 1, space, sopts);
  SearchResult par = run_search(&gallery::cholesky, 4, space, sopts);
  EXPECT_GT(seq.stats.legal, 0);
  expect_identical(seq, par);
}

TEST(SearchParallel, VerificationRunsOnWorkerThreads) {
  SearchSpace space{};
  SearchOptions sopts;
  sopts.verify_params = {{"N", 6}};
  SearchResult seq = run_search(&gallery::lu, 1, space, sopts);
  SearchResult par = run_search(&gallery::lu, 4, space, sopts);
  EXPECT_GT(seq.stats.legal, 0);
  // Every legal candidate was verified and none disagreed with the
  // source: legality and codegen are sound, so a verify failure here
  // means the engines diverged.
  EXPECT_EQ(seq.stats.verified, seq.stats.legal);
  EXPECT_EQ(seq.stats.verify_failed, 0);
  for (const SearchHit& h : seq.hits) {
    ASSERT_TRUE(h.result.verify.has_value());
    EXPECT_TRUE(h.result.verify->equivalent) << h.result.verify->to_string();
  }
  expect_identical(seq, par);
}

TEST(SearchParallel, SinkStreamsInAscendingIndexOrder) {
  SearchSpace space{/*skew_bound=*/1, /*skew_depth=*/1};
  SessionOptions opts;
  opts.threads = 4;
  TransformSession session(gallery::simplified_cholesky(), opts);
  PermutationSkewGenerator gen(session.layout(), space);
  SearchOptions sopts;
  std::vector<i64> seen;
  sopts.sink = [&](const SearchHit& h) { seen.push_back(h.index); };
  SearchResult res = session.search(gen, sopts);
  ASSERT_EQ(seen.size(), res.hits.size());
  for (size_t i = 0; i < res.hits.size(); ++i)
    EXPECT_EQ(seen[i], res.hits[i].index);
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
}

TEST(SearchParallel, ExecThreadsDoNotChangeSearchResults) {
  // Verification through the partitioned exec engine (exec_threads > 1)
  // must leave hits, verdicts and stats bit-identical: parallel
  // execution is memcmp-identical to serial, so the search cannot see
  // the difference. Search workers and exec workers also compose here
  // (each search worker's verification takes a turn on the exec pool).
  SearchSpace space{};
  SearchOptions serial;
  serial.verify_params = {{"N", 8}};
  SearchOptions threaded = serial;
  threaded.exec_threads = 2;
  SearchResult a = run_search(&gallery::cholesky, 2, space, serial);
  SearchResult b = run_search(&gallery::cholesky, 2, space, threaded);
  EXPECT_GT(a.stats.legal, 0);
  EXPECT_EQ(a.stats.verified, a.stats.legal);
  EXPECT_EQ(b.stats.verify_failed, 0);
  expect_identical(a, b);
}

TEST(SearchParallel, ExecThreadsDoNotChangeRanking) {
  // Rank mode with exec_threads == 1 must order exactly as before the
  // parallel-work term existed (effective == total); the same search
  // at exec_threads > 1 may reorder but must score the same matrices
  // legal and fill the parallel fields.
  SearchSpace space{/*skew_bound=*/1, /*skew_depth=*/1};
  SearchOptions sopts;
  sopts.mode = SearchMode::kLegalityOnly;
  sopts.cost = true;
  SearchOptions threaded = sopts;
  threaded.exec_threads = 4;
  SearchResult one = run_search(&gallery::lu, 2, space, sopts);
  SearchResult four = run_search(&gallery::lu, 2, space, threaded);
  ASSERT_EQ(one.hits.size(), four.hits.size());
  for (size_t i = 0; i < one.hits.size(); ++i) {
    EXPECT_EQ(one.hits[i].index, four.hits[i].index);
    ASSERT_TRUE(one.hits[i].cost.has_value());
    ASSERT_TRUE(four.hits[i].cost.has_value());
    const CostEstimate& c1 = *one.hits[i].cost;
    const CostEstimate& c4 = *four.hits[i].cost;
    EXPECT_DOUBLE_EQ(c1.total_lines, c4.total_lines);
    // exec_threads == 1: the parallel term is a no-op on the score.
    EXPECT_DOUBLE_EQ(c1.effective_lines, c1.total_lines);
    // exec_threads == 4: any candidate with a partition scores below
    // its serial estimate, never above.
    EXPECT_LE(c4.effective_lines, c4.total_lines);
    if (!c4.partition.empty() && c4.parallel_fraction > 0) {
      EXPECT_LT(c4.effective_lines, c4.total_lines);
    }
    EXPECT_EQ(c1.partition, c4.partition);
  }
}

TEST(SearchParallel, LegalityOnlyModeUnaffectedByThreadCount) {
  SearchOptions sopts;
  sopts.mode = SearchMode::kLegalityOnly;
  SearchResult seq = run_search(&gallery::cholesky, 1, SearchSpace{}, sopts);
  SearchResult par = run_search(&gallery::cholesky, 4, SearchSpace{}, sopts);
  EXPECT_EQ(seq.stats.legal, par.stats.legal);
  EXPECT_EQ(seq.stats.pruned_candidates, par.stats.pruned_candidates);
  ASSERT_EQ(seq.hits.size(), par.hits.size());
  for (size_t i = 0; i < seq.hits.size(); ++i)
    EXPECT_EQ(seq.hits[i].index, par.hits[i].index);
}

}  // namespace
}  // namespace inlt
