// The candidate pipeline's building blocks in isolation: stage
// ordering and early rejection in CandidatePipeline, and the
// accounting / bounded best-K heap in CandidateAccumulator.
#include "pipeline/candidate.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace inlt {
namespace {

TEST(CandidatePipeline, StageKindNames) {
  EXPECT_STREQ(stage_kind_name(StageKind::kLegality), "legality");
  EXPECT_STREQ(stage_kind_name(StageKind::kComplete), "complete");
  EXPECT_STREQ(stage_kind_name(StageKind::kCost), "cost");
  EXPECT_STREQ(stage_kind_name(StageKind::kCodegen), "codegen");
  EXPECT_STREQ(stage_kind_name(StageKind::kVerify), "verify");
}

TEST(CandidatePipeline, LeafAndDeferredRunInOrder) {
  CandidatePipeline pipe;
  std::vector<std::string> ran;
  pipe.add(StageKind::kLegality, /*deferred=*/false,
           [&](Candidate&) { ran.push_back("legality"); });
  pipe.add(StageKind::kComplete, /*deferred=*/true,
           [&](Candidate&) { ran.push_back("complete"); });
  pipe.add(StageKind::kCost, /*deferred=*/true,
           [&](Candidate&) { ran.push_back("cost"); });

  EXPECT_TRUE(pipe.has(StageKind::kLegality));
  EXPECT_TRUE(pipe.has(StageKind::kCost));
  EXPECT_FALSE(pipe.has(StageKind::kCodegen));
  EXPECT_TRUE(pipe.has_deferred());
  EXPECT_EQ(pipe.describe(), "legality -> complete -> cost");

  Candidate c;
  pipe.run_leaf(c);
  EXPECT_EQ(ran, (std::vector<std::string>{"legality"}));
  pipe.run_deferred(c);
  EXPECT_EQ(ran, (std::vector<std::string>{"legality", "complete", "cost"}));
}

TEST(CandidatePipeline, RejectionStopsRemainingStages) {
  CandidatePipeline pipe;
  std::vector<std::string> ran;
  pipe.add(StageKind::kComplete, /*deferred=*/true, [&](Candidate& c) {
    ran.push_back("complete");
    c.rejected = true;
  });
  pipe.add(StageKind::kCost, /*deferred=*/true,
           [&](Candidate&) { ran.push_back("cost"); });

  Candidate c;
  pipe.run_deferred(c);
  EXPECT_EQ(ran, (std::vector<std::string>{"complete"}));
  EXPECT_TRUE(c.rejected);

  // An already-rejected candidate runs nothing at all.
  ran.clear();
  Candidate dead;
  dead.rejected = true;
  pipe.run_deferred(dead);
  EXPECT_TRUE(ran.empty());
}

TEST(CandidatePipeline, EmptyPipelineHasNothing) {
  CandidatePipeline pipe;
  EXPECT_FALSE(pipe.has_deferred());
  EXPECT_EQ(pipe.describe(), "");
  Candidate c;
  pipe.run_leaf(c);  // no-op
  EXPECT_FALSE(c.rejected);
}

Candidate legal_candidate(i64 index, double cost_lines) {
  Candidate c;
  c.index = index;
  c.result.legal = true;
  CostEstimate est;
  est.total_lines = cost_lines;
  c.cost = std::move(est);
  return c;
}

TEST(CandidateAccumulator, KeepsAllHitsWithoutTopK) {
  SearchOptions sopts;
  CandidateAccumulator acc(/*num_deps=*/2, /*nslots=*/3, {0, 1, 2}, sopts);
  for (i64 i = 0; i < 4; ++i) {
    acc.note_evaluated();
    acc.settle(legal_candidate(i, 100 - i));
  }
  SearchResult res = acc.take();
  ASSERT_EQ(res.hits.size(), 4u);
  for (i64 i = 0; i < 4; ++i) EXPECT_EQ(res.hits[i].index, i);
  EXPECT_EQ(res.stats.legal, 4);
  EXPECT_EQ(res.stats.evaluated, 4);
}

TEST(CandidateAccumulator, TopKKeepsBestByCostThenIndex) {
  SearchOptions sopts;
  sopts.top_k = 2;
  CandidateAccumulator acc(2, 3, {0, 1, 2}, sopts);
  const double costs[] = {5, 3, 3, 1, 4};
  for (i64 i = 0; i < 5; ++i) {
    acc.note_evaluated();
    acc.settle(legal_candidate(i, costs[i]));
  }
  SearchResult res = acc.take();
  ASSERT_EQ(res.hits.size(), 2u);
  // Best: cost 1 (index 3), then the cost-3 tie broken by index (1).
  EXPECT_EQ(res.hits[0].index, 3);
  EXPECT_DOUBLE_EQ(res.hits[0].cost->total_lines, 1);
  EXPECT_EQ(res.hits[1].index, 1);
  EXPECT_DOUBLE_EQ(res.hits[1].cost->total_lines, 3);
  // The heap bounds the hit list, not the accounting.
  EXPECT_EQ(res.stats.legal, 5);
}

TEST(CandidateAccumulator, AllTiedTopKKeepsEarliestIndices) {
  SearchOptions sopts;
  sopts.top_k = 2;
  CandidateAccumulator acc(1, 2, {0, 1}, sopts);
  for (i64 i = 0; i < 4; ++i) {
    acc.note_evaluated();
    acc.settle(legal_candidate(i, 7.0));
  }
  SearchResult res = acc.take();
  ASSERT_EQ(res.hits.size(), 2u);
  EXPECT_EQ(res.hits[0].index, 0);
  EXPECT_EQ(res.hits[1].index, 1);
}

TEST(CandidateAccumulator, MissingCostSortsLast) {
  SearchOptions sopts;
  sopts.top_k = 2;
  CandidateAccumulator acc(1, 2, {0, 1}, sopts);
  Candidate no_cost;
  no_cost.index = 0;
  no_cost.result.legal = true;  // estimate failed: cost stays empty
  acc.note_evaluated();
  acc.settle(std::move(no_cost));
  acc.note_evaluated();
  acc.settle(legal_candidate(1, 9.0));
  acc.note_evaluated();
  acc.settle(legal_candidate(2, 4.0));
  SearchResult res = acc.take();
  ASSERT_EQ(res.hits.size(), 2u);
  EXPECT_EQ(res.hits[0].index, 2);
  EXPECT_EQ(res.hits[1].index, 1);
}

TEST(CandidateAccumulator, SinkSeesEveryLegalCandidate) {
  SearchOptions sopts;
  sopts.top_k = 1;
  std::vector<i64> seen;
  sopts.sink = [&](const SearchHit& h) { seen.push_back(h.index); };
  CandidateAccumulator acc(1, 2, {0, 1}, sopts);
  for (i64 i = 0; i < 3; ++i) {
    acc.note_evaluated();
    acc.settle(legal_candidate(i, 10.0 - static_cast<double>(i)));
  }
  SearchResult res = acc.take();
  EXPECT_EQ(seen, (std::vector<i64>{0, 1, 2}));
  ASSERT_EQ(res.hits.size(), 1u);
  EXPECT_EQ(res.hits[0].index, 2);  // cheapest
}

TEST(CandidateAccumulator, IllegalCandidateAttributedThroughDiagnostic) {
  SearchOptions sopts;
  // Layout positions 0..3 map to slots {-, 0, 1, -}: edge positions
  // carry no slot.
  CandidateAccumulator acc(/*num_deps=*/3, /*nslots=*/2, {-1, 0, 1, -1},
                           sopts);
  Candidate bad;
  bad.index = 0;
  bad.result.legal = false;
  Diagnostic d;
  d.stage = Stage::kLegality;
  d.dep_index = 2;
  d.row = 2;  // layout position 2 -> slot 1
  bad.result.legality.diagnostics.push_back(d);
  acc.note_evaluated();
  acc.settle(std::move(bad));

  SearchResult res = acc.take();
  EXPECT_EQ(res.stats.illegal_evaluated, 1);
  EXPECT_EQ(res.rejections.rejected, 1);
  EXPECT_EQ(res.rejections.by_dependence[2], 1);
  EXPECT_EQ(res.rejections.by_row[1], 1);
}

TEST(CandidateAccumulator, IllegalWithoutProvenanceOnlyCounts) {
  // A codegen-stage failure has no dependence to blame: it lands in
  // illegal_evaluated but not in the rejection breakdown.
  SearchOptions sopts;
  CandidateAccumulator acc(2, 2, {0, 1}, sopts);
  Candidate bad;
  bad.index = 0;
  bad.result.legal = false;
  bad.result.error = "codegen failed";
  acc.note_evaluated();
  acc.settle(std::move(bad));
  SearchResult res = acc.take();
  EXPECT_EQ(res.stats.illegal_evaluated, 1);
  EXPECT_EQ(res.rejections.rejected, 0);
}

TEST(CandidateAccumulator, PruneAccounting) {
  SearchOptions sopts;
  CandidateAccumulator acc(/*num_deps=*/2, /*nslots=*/3, {0, 1, 2}, sopts);
  acc.prune_subtree(/*dep=*/0, /*row=*/1, /*leaves=*/5);
  acc.prune_leaf(/*dep=*/1);
  SearchResult res = acc.take();
  EXPECT_EQ(res.stats.pruned_subtrees, 1);
  EXPECT_EQ(res.stats.pruned_candidates, 6);
  EXPECT_EQ(res.rejections.rejected, 6);
  EXPECT_EQ(res.rejections.by_dependence[0], 5);
  EXPECT_EQ(res.rejections.by_dependence[1], 1);
  EXPECT_EQ(res.rejections.by_row[1], 5);
  // A leaf prune decided only at completion: the trailing bucket.
  EXPECT_EQ(res.rejections.by_row[3], 1);
}

TEST(CandidateAccumulator, VerifyCountersFollowSettledResults) {
  SearchOptions sopts;
  CandidateAccumulator acc(1, 1, {0}, sopts);
  Candidate ok = legal_candidate(0, 1.0);
  VerifyResult good;
  good.equivalent = true;
  ok.result.verify = good;
  acc.note_evaluated();
  acc.settle(std::move(ok));

  Candidate mismatch = legal_candidate(1, 2.0);
  VerifyResult badv;
  badv.equivalent = false;
  mismatch.result.verify = badv;
  acc.note_evaluated();
  acc.settle(std::move(mismatch));

  SearchResult res = acc.take();
  EXPECT_EQ(res.stats.verified, 2);
  EXPECT_EQ(res.stats.verify_failed, 1);
}

}  // namespace
}  // namespace inlt
