// TransformSession: projection-cache correctness (cached results are
// bit-identical to uncached), structured diagnostics for illegal
// candidates, and deterministic threaded evaluate_all.
#include "pipeline/session.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "codegen/generate.hpp"
#include "ir/gallery.hpp"
#include "ir/printer.hpp"
#include "linalg/project.hpp"
#include "transform/transforms.hpp"

namespace inlt {
namespace {

const char* kSimplifiedCholesky = R"(
param N
do I = 1, N
  S1: A(I) = sqrt(A(I))
  do J = I + 1, N
    S2: A(J) = A(J) / A(I)
  end
end
)";

// A constraint system with enough structure to exercise elimination:
// 1 <= i <= n, i <= j <= n, j - i >= 1.
ConstraintSystem sample_system() {
  ConstraintSystem cs({"i", "j", "n"});
  cs.add_var_ge(cs.var("i"), 1);
  cs.add_diff_ge(cs.var("n"), cs.var("i"), 0);
  cs.add_diff_ge(cs.var("j"), cs.var("i"), 1);
  cs.add_diff_ge(cs.var("n"), cs.var("j"), 0);
  return cs;
}

TEST(ProjectionCacheTest, HitIsBitIdenticalToUncached) {
  ConstraintSystem cs = sample_system();
  // No cache installed: the reference result.
  ConstraintSystem uncached = eliminate_var_real(cs, cs.var("j"));

  ProjectionCache cache;
  ScopedProjectionCache scope(&cache);
  i64 hits0 = Stats::global().value("fm.cache_hits");
  ConstraintSystem first = eliminate_var_real(cs, cs.var("j"));
  EXPECT_EQ(cache.size(), 1u);
  ConstraintSystem second = eliminate_var_real(cs, cs.var("j"));
  EXPECT_GE(Stats::global().value("fm.cache_hits"), hits0 + 1);

  EXPECT_EQ(first.to_string(), uncached.to_string());
  EXPECT_EQ(second.to_string(), uncached.to_string());
}

TEST(ProjectionCacheTest, HashDistinguishesVariableAndSystem) {
  ConstraintSystem cs = sample_system();
  std::uint64_t kj = ProjectionCache::hash_key(cs, cs.var("j"));
  std::uint64_t ki = ProjectionCache::hash_key(cs, cs.var("i"));
  EXPECT_NE(kj, ki);
  ConstraintSystem cs2 = sample_system();
  cs2.add_var_le(cs2.var("j"), 100);
  EXPECT_NE(ProjectionCache::hash_key(cs2, cs2.var("j")), kj);
  // Same system, same variable -> same hash (deterministic).
  EXPECT_EQ(ProjectionCache::hash_key(sample_system(), cs.var("j")), kj);
}

TEST(ProjectionCacheTest, ForcedCollisionsStillServeExactResults) {
  // Degenerate hash: every key lands in one bucket, so every lookup
  // exercises the full-key verification path. Results must stay
  // bit-identical to the uncached computation for *both* colliding
  // keys, and a find() for one key must never serve the other's value.
  ConstraintSystem cs = sample_system();
  ConstraintSystem ref_j = eliminate_var_real(cs, cs.var("j"));
  ConstraintSystem ref_i = eliminate_var_real(cs, cs.var("i"));

  ProjectionCache cache(
      +[](const ConstraintSystem&, int) -> std::uint64_t { return 42; });
  ScopedProjectionCache scope(&cache);

  ConstraintSystem first_j = eliminate_var_real(cs, cs.var("j"));
  ConstraintSystem first_i = eliminate_var_real(cs, cs.var("i"));
  EXPECT_EQ(cache.size(), 2u);  // both live in the same bucket

  i64 hits0 = Stats::global().value("fm.cache_hits");
  ConstraintSystem warm_j = eliminate_var_real(cs, cs.var("j"));
  ConstraintSystem warm_i = eliminate_var_real(cs, cs.var("i"));
  EXPECT_GE(Stats::global().value("fm.cache_hits"), hits0 + 2);

  EXPECT_EQ(first_j.to_string(), ref_j.to_string());
  EXPECT_EQ(warm_j.to_string(), ref_j.to_string());
  EXPECT_EQ(first_i.to_string(), ref_i.to_string());
  EXPECT_EQ(warm_i.to_string(), ref_i.to_string());
  EXPECT_NE(ref_j.to_string(), ref_i.to_string());  // the test has teeth
}

TEST(ProjectionCacheTest, InstallIsPerThreadAndRestored) {
  ProjectionCache cache;
  {
    ScopedProjectionCache scope(&cache);
    ConstraintSystem cs = sample_system();
    eliminate_var_real(cs, cs.var("i"));
    EXPECT_EQ(cache.size(), 1u);
  }
  // Scope gone: further eliminations must not touch the cache.
  ConstraintSystem cs = sample_system();
  eliminate_var_real(cs, cs.var("j"));
  EXPECT_EQ(cache.size(), 1u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
}

TEST(SessionTest, CachedEvaluationMatchesFreeFunctions) {
  // The session's generated program must be byte-identical to the free
  // generate_code path (which runs uncached) — both on the first
  // (cache-filling) and second (cache-served) evaluation.
  SessionOptions opts;
  opts.simplify = false;
  TransformSession session(gallery::cholesky(), opts);
  IntMat m = loop_permutation(session.layout(), {"K", "J", "L", "I"});

  CodegenResult reference =
      generate_code(session.layout(), session.dependences(), m);
  std::string expected = print_program(reference.program);

  CandidateResult cold = session.evaluate(m);
  ASSERT_TRUE(cold.legal) << cold.error;
  EXPECT_EQ(print_program(*cold.program), expected);

  i64 hits0 = Stats::global().value("fm.cache_hits");
  CandidateResult warm = session.evaluate(m);
  ASSERT_TRUE(warm.legal);
  EXPECT_EQ(print_program(*warm.program), expected);
  EXPECT_GT(Stats::global().value("fm.cache_hits"), hits0);
}

TEST(SessionTest, IllegalCandidateNamesTheDependence) {
  TransformSession session = TransformSession::from_source(kSimplifiedCholesky);
  IntMat m = loop_interchange(session.layout(), "I", "J");
  CandidateResult r = session.evaluate(m);
  EXPECT_FALSE(r.legal);
  EXPECT_FALSE(r.program.has_value());
  EXPECT_FALSE(r.error.empty());
  ASSERT_FALSE(r.diagnostics.empty());

  // At least one diagnostic is a legality error naming the violated
  // dependence: statements, array, kind.
  bool found = false;
  for (const Diagnostic& d : r.diagnostics) {
    if (d.stage != Stage::kLegality) continue;
    EXPECT_EQ(d.severity, Severity::kError);
    EXPECT_FALSE(d.src_stmt.empty());
    EXPECT_FALSE(d.dst_stmt.empty());
    EXPECT_EQ(d.array, "A");
    EXPECT_TRUE(d.dep_kind == "flow" || d.dep_kind == "anti" ||
                d.dep_kind == "output")
        << d.dep_kind;
    EXPECT_GE(d.dep_index, 0);
    found = true;
  }
  EXPECT_TRUE(found);
  // The same diagnostics landed in the session engine.
  EXPECT_TRUE(session.diags().has_errors());
}

TEST(SessionTest, LegalityViolationsMirrorDiagnostics) {
  TransformSession session = TransformSession::from_source(kSimplifiedCholesky);
  CandidateResult r =
      session.evaluate(loop_interchange(session.layout(), "I", "J"));
  ASSERT_FALSE(r.legal);
  ASSERT_FALSE(r.legality.violations.empty());
  ASSERT_EQ(r.legality.violations.size(), r.legality.diagnostics.size());
  for (size_t i = 0; i < r.legality.violations.size(); ++i)
    EXPECT_EQ(r.legality.violations[i], r.legality.diagnostics[i].message);
}

std::vector<IntMat> lu_candidates(const IvLayout& layout) {
  std::vector<IntMat> out;
  std::vector<std::string> order = {"I", "J", "K", "L"};
  std::sort(order.begin(), order.end());
  do {
    out.push_back(loop_permutation(layout, order));
  } while (std::next_permutation(order.begin(), order.end()));
  return out;
}

TEST(SessionTest, EvaluateAllMatchesSequentialAndIsDeterministic) {
  Program p = gallery::lu();

  // Sequential reference.
  SessionOptions seq_opts;
  seq_opts.threads = 1;
  TransformSession seq(p, seq_opts);
  std::vector<IntMat> cands = lu_candidates(seq.layout());
  std::vector<CandidateResult> expected;
  for (const IntMat& m : cands) expected.push_back(seq.evaluate(m));

  SessionOptions par_opts;
  par_opts.threads = 4;
  TransformSession par(p, par_opts);
  for (int round = 0; round < 2; ++round) {  // cold round, then warm
    std::vector<CandidateResult> got = par.evaluate_all(cands);
    ASSERT_EQ(got.size(), expected.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].legal, expected[i].legal) << "candidate " << i;
      ASSERT_EQ(got[i].program.has_value(), expected[i].program.has_value());
      if (got[i].program) {
        EXPECT_EQ(print_program(*got[i].program),
                  print_program(*expected[i].program))
            << "candidate " << i << " round " << round;
      }
      EXPECT_EQ(got[i].error, expected[i].error) << "candidate " << i;
    }
  }
}

TEST(SessionTest, EvaluateAllSequentialFallback) {
  SessionOptions opts;
  opts.threads = 1;
  TransformSession session(gallery::cholesky(), opts);
  std::vector<IntMat> cands = {
      loop_permutation(session.layout(), {"K", "I", "J", "L"}),
      loop_permutation(session.layout(), {"K", "J", "I", "L"}),
  };
  std::vector<CandidateResult> rs = session.evaluate_all(cands);
  ASSERT_EQ(rs.size(), 2u);
  EXPECT_TRUE(rs[0].legal) << rs[0].error;
}

TEST(SessionTest, FromSourceParsesAndAnalyzesOnce) {
  TransformSession session = TransformSession::from_source(kSimplifiedCholesky);
  EXPECT_EQ(session.program().statements().size(), 2u);
  EXPECT_FALSE(session.dependences().deps.empty());
  // Identity candidate is trivially legal.
  CandidateResult r = session.evaluate(IntMat::identity(session.layout().size()));
  EXPECT_TRUE(r.legal) << r.error;
}

}  // namespace
}  // namespace inlt
