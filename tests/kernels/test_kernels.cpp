// Correctness of the native benchmark kernels: every loop ordering of
// a factorization computes the same factor (the semantic premise of
// the paper's §1 motivation).
#include <gtest/gtest.h>

#include "kernels/cholesky.hpp"
#include "kernels/lu.hpp"
#include "kernels/skew.hpp"
#include "kernels/stencil.hpp"

namespace inlt::kernels {
namespace {

class CholeskyOrderTest
    : public ::testing::TestWithParam<std::tuple<int, std::size_t>> {};

TEST_P(CholeskyOrderTest, FactorsCorrectly) {
  auto [variant, n] = GetParam();
  const CholeskyVariant& v = cholesky_variants()[variant];
  Matrix a = make_spd(n, 42);
  Matrix orig = a;
  v.fn(a, n);
  EXPECT_LT(cholesky_residual(a, orig, n), 1e-9)
      << v.name << " n=" << n;
}

INSTANTIATE_TEST_SUITE_P(
    Variants, CholeskyOrderTest,
    ::testing::Combine(::testing::Range(0, 6),
                       ::testing::Values<std::size_t>(1, 2, 5, 17, 64)),
    [](const auto& info) {
      return std::string(
                 cholesky_variants()[std::get<0>(info.param)].name) +
             "_n" + std::to_string(std::get<1>(info.param));
    });

TEST(CholeskyOrders, AllVariantsAgreeOnLowerTriangle) {
  std::size_t n = 33;
  Matrix ref = make_spd(n, 7);
  Matrix base = ref;
  cholesky_variants()[0].fn(base, n);
  for (const CholeskyVariant& v : cholesky_variants()) {
    Matrix a = ref;
    v.fn(a, n);
    double worst = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j <= i; ++j)
        worst = std::max(worst,
                         std::abs(a[i * n + j] - base[i * n + j]));
    EXPECT_LT(worst, 1e-9) << v.name;
  }
}

class LuOrderTest
    : public ::testing::TestWithParam<std::tuple<int, std::size_t>> {};

TEST_P(LuOrderTest, FactorsCorrectly) {
  auto [variant, n] = GetParam();
  const LuVariant& v = lu_variants()[variant];
  Matrix a = make_dd(n, 13);
  Matrix orig = a;
  v.fn(a, n);
  EXPECT_LT(lu_residual(a, orig, n), 1e-9) << v.name << " n=" << n;
}

INSTANTIATE_TEST_SUITE_P(
    Variants, LuOrderTest,
    ::testing::Combine(::testing::Range(0, 4),
                       ::testing::Values<std::size_t>(1, 2, 5, 17, 64)),
    [](const auto& info) {
      return std::string(lu_variants()[std::get<0>(info.param)].name) +
             "_n" + std::to_string(std::get<1>(info.param));
    });

TEST(SkewKernels, SourceAndTransformedAgree) {
  for (std::size_t n : {1u, 2u, 7u, 40u}) {
    std::size_t stride = n + 2;
    std::vector<double> a1(stride * stride, 0.25), b1(n + 1, 0.5);
    std::vector<double> a2 = a1, b2 = b1;
    skew_source(a1, b1, n);
    skew_transformed(a2, b2, n);
    EXPECT_LT(max_abs_diff(a1, a2), 1e-12) << "n=" << n;
    EXPECT_LT(max_abs_diff(b1, b2), 1e-12) << "n=" << n;
  }
}

TEST(SkewKernels, GeneratorIsPure) {
  EXPECT_EQ(skew_f(3, 5), skew_f(3, 5));
  EXPECT_NE(skew_f(3, 5), skew_f(5, 3));
}

TEST(StencilKernels, WavefrontMatchesOriginal) {
  for (std::size_t n : {1u, 2u, 9u, 33u}) {
    std::vector<double> a((n + 1) * (n + 1), 0.5), b = a;
    gauss_seidel(a, n);
    gauss_seidel_wavefront(b, n);
    EXPECT_LT(max_abs_diff(a, b), 1e-12) << "n=" << n;
  }
}

}  // namespace
}  // namespace inlt::kernels
