#include "common/brute_force.hpp"

#include <set>

#include "instance/enumerate.hpp"

namespace inlt::testutil {

namespace {

struct CellAccess {
  std::string label;
  IntVec iv;
  bool is_write;
};

}  // namespace

std::vector<ObservedDep> observe_dependences(
    const IvLayout& layout, const std::map<std::string, i64>& params,
    PadMode pad) {
  const Program& prog = layout.program();
  std::map<std::string, std::vector<CellAccess>> history;  // cell key
  std::set<ObservedDep> seen;

  enumerate_instances(prog, params, [&](const DynamicInstance& di) {
    const auto& info = layout.stmt_info(di.label);
    // Environment: params + this statement's loop values.
    std::map<std::string, i64> env = params;
    for (size_t k = 0; k < info.loop_positions.size(); ++k) {
      const IvPosition& pos = layout.positions()[info.loop_positions[k]];
      env[pos.loop->var()] = di.iter[k];
    }
    IntVec iv = layout.instance_vector(di, pad);
    for (const ArrayAccess& acc : info.stmt->stmt_data().accesses()) {
      std::string key = acc.array;
      for (const AffineExpr& s : acc.subscripts)
        key += "," + std::to_string(s.eval(env));
      auto& hist = history[key];
      for (const CellAccess& prev : hist) {
        if (!prev.is_write && !acc.is_write) continue;
        // Accesses inside one dynamic instance are not reorderable
        // events; the framework (like the paper) only tracks cross-
        // instance dependences.
        if (prev.label == di.label && prev.iv == iv) continue;
        ObservedDep d;
        d.src = prev.label;
        d.dst = di.label;
        d.kind = prev.is_write
                     ? (acc.is_write ? DepKind::kOutput : DepKind::kFlow)
                     : DepKind::kAnti;
        d.array = acc.array;
        d.diff = vec_sub(iv, prev.iv);
        seen.insert(std::move(d));
      }
      hist.push_back({di.label, iv, acc.is_write});
    }
  });
  return {seen.begin(), seen.end()};
}

std::vector<ObservedDep> observe_value_flow_dependences(
    const IvLayout& layout, const std::map<std::string, i64>& params,
    PadMode pad) {
  const Program& prog = layout.program();
  struct LastWrite {
    std::string label;
    IntVec iv;
  };
  std::map<std::string, LastWrite> last;  // cell -> most recent writer
  std::set<ObservedDep> seen;

  enumerate_instances(prog, params, [&](const DynamicInstance& di) {
    const auto& info = layout.stmt_info(di.label);
    std::map<std::string, i64> env = params;
    for (size_t k = 0; k < info.loop_positions.size(); ++k) {
      const IvPosition& pos = layout.positions()[info.loop_positions[k]];
      env[pos.loop->var()] = di.iter[k];
    }
    IntVec iv = layout.instance_vector(di, pad);
    auto accs = info.stmt->stmt_data().accesses();
    // Reads first (RHS evaluates before the write).
    for (const ArrayAccess& acc : accs) {
      if (acc.is_write) continue;
      std::string key = acc.array;
      for (const AffineExpr& s : acc.subscripts)
        key += "," + std::to_string(s.eval(env));
      auto it = last.find(key);
      if (it == last.end()) continue;  // reads an initial value
      if (it->second.label == di.label && it->second.iv == iv) continue;
      ObservedDep d;
      d.src = it->second.label;
      d.dst = di.label;
      d.kind = DepKind::kFlow;
      d.array = acc.array;
      d.diff = vec_sub(iv, it->second.iv);
      seen.insert(std::move(d));
    }
    for (const ArrayAccess& acc : accs) {
      if (!acc.is_write) continue;
      std::string key = acc.array;
      for (const AffineExpr& s : acc.subscripts)
        key += "," + std::to_string(s.eval(env));
      last[key] = {di.label, iv};
    }
  });
  return {seen.begin(), seen.end()};
}

bool covers(const DepVector& hull, const IntVec& diff) {
  if (hull.size() != diff.size()) return false;
  for (size_t i = 0; i < hull.size(); ++i) {
    const DepEntry& e = hull[i];
    if (!e.lo_unbounded() && diff[i] < e.lo()) return false;
    if (!e.hi_unbounded() && diff[i] > e.hi()) return false;
  }
  return true;
}

}  // namespace inlt::testutil
