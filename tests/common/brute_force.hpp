// Test oracle: observe the real dependences of a program by executing
// its loop structure and tracking every array cell's access history.
// Used to validate the analyzer: every observed dependence must be
// covered by an analyzer column, and exact analyzer columns must be
// witnessed by an observation.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "dependence/analyzer.hpp"
#include "instance/layout.hpp"

namespace inlt::testutil {

struct ObservedDep {
  std::string src;
  std::string dst;
  DepKind kind = DepKind::kFlow;
  std::string array;
  IntVec diff;  ///< instance-vector difference dst − src

  friend bool operator==(const ObservedDep&, const ObservedDep&) = default;
  friend auto operator<=>(const ObservedDep&, const ObservedDep&) = default;
};

/// All memory-based dependences realized at the given parameter values.
std::vector<ObservedDep> observe_dependences(
    const IvLayout& layout, const std::map<std::string, i64>& params,
    PadMode pad = PadMode::kDiagonal);

/// Does the interval vector contain the exact difference?
bool covers(const DepVector& hull, const IntVec& diff);

/// Value-based (last-write) flow dependences only: each read pairs
/// with the write whose value it actually observes. The paper's §3/§6
/// matrices print these representatives; the analyzer reports the
/// memory-based hulls that subsume them.
std::vector<ObservedDep> observe_value_flow_dependences(
    const IvLayout& layout, const std::map<std::string, i64>& params,
    PadMode pad = PadMode::kDiagonal);

}  // namespace inlt::testutil
