// IvLayout segment bookkeeping (the block boundaries of Fig 5) and
// assorted layout edge cases.
#include <gtest/gtest.h>

#include "instance/layout.hpp"
#include "ir/gallery.hpp"
#include "ir/parser.hpp"

namespace inlt {
namespace {

TEST(LayoutSegments, CholeskySegments) {
  Program p = gallery::cholesky();
  IvLayout layout(p);
  // Virtual root spans everything.
  const auto& root = layout.segment(nullptr);
  EXPECT_EQ(root.start, 0);
  EXPECT_EQ(root.end, 7);
  EXPECT_EQ(root.loop_pos, -1);

  const Node* k = p.roots()[0].get();
  const auto& kseg = layout.segment(k);
  EXPECT_EQ(kseg.loop_pos, 0);
  EXPECT_EQ(kseg.start, 0);
  EXPECT_EQ(kseg.end, 7);
  ASSERT_EQ(kseg.child_edge_pos.size(), 3u);
  // Eq. (1): edges e3, e2, e1 occupy positions 1, 2, 3.
  EXPECT_EQ(kseg.child_edge_pos[2], 1);
  EXPECT_EQ(kseg.child_edge_pos[1], 2);
  EXPECT_EQ(kseg.child_edge_pos[0], 3);

  // The J loop's segment covers [J, L] = positions 4..6.
  const Node* jloop = k->children()[2].get();
  const auto& jseg = layout.segment(jloop);
  EXPECT_EQ(jseg.start, 4);
  EXPECT_EQ(jseg.end, 6);
  // Single-child nodes have no edge positions.
  EXPECT_EQ(jseg.child_edge_pos, (std::vector<int>{-1}));
}

TEST(LayoutSegments, SegmentsAreNestedAndDisjointAcrossSiblings) {
  Program p = gallery::fig1_running_example();
  IvLayout layout(p);
  const Node* i = p.roots()[0].get();
  const Node* jloop = i->children()[0].get();
  const auto& iseg = layout.segment(i);
  const auto& jseg = layout.segment(jloop);
  EXPECT_LE(iseg.start, jseg.start);
  EXPECT_GE(iseg.end, jseg.end);
}

TEST(LayoutSegments, UnknownNodeThrows) {
  Program p = gallery::cholesky();
  Program q = gallery::cholesky();
  IvLayout layout(p);
  EXPECT_THROW(layout.segment(q.roots()[0].get()), Error);
}

TEST(LayoutMisc, LoopPositionThrowsOnUnknownVar) {
  Program p = gallery::simplified_cholesky();
  IvLayout layout(p);
  EXPECT_THROW(layout.loop_position("Q"), Error);
}

TEST(LayoutMisc, InvertRejectsMalformedVectors) {
  Program p = gallery::simplified_cholesky();
  IvLayout layout(p);
  EXPECT_THROW(layout.invert({1, 1, 1, 1}), Error);  // two edges set
  EXPECT_THROW(layout.invert({1, 0, 0, 1}), Error);  // no edge set
  EXPECT_THROW(layout.invert({1, 0, 1}), Error);     // wrong length
}

TEST(LayoutMisc, InstanceVectorArityChecked) {
  Program p = gallery::simplified_cholesky();
  IvLayout layout(p);
  EXPECT_THROW(layout.instance_vector({"S2", {1}}), Error);
  EXPECT_THROW(layout.instance_vector({"S9", {1}}), Error);
}

TEST(LayoutMisc, StatementAtTopLevel) {
  // A loopless top-level statement gets only edge coordinates.
  Program p = parse_program(R"(
param N
S0: A(0) = 1.0
do I = 1, N
  S1: A(I) = A(I - 1) + 1.0
end
)");
  IvLayout layout(p);
  // [e2@root, e1@root, I]
  EXPECT_EQ(layout.size(), 3);
  EXPECT_EQ(layout.instance_vector({"S0", {}}), (IntVec{0, 1, 0}));
  EXPECT_EQ(layout.instance_vector({"S1", {4}}), (IntVec{1, 0, 4}));
  EXPECT_TRUE(lex_less(layout.instance_vector({"S0", {}}),
                       layout.instance_vector({"S1", {1}})));
}

TEST(LayoutMisc, GuardedProgramsRejectedByAnalyzerOnly) {
  // Layouts of generated (guarded) programs are fine; only the
  // dependence analyzer insists on guard-free sources.
  Program p = parse_program(R"(
param N
do I = 1, N
  if (I - 2 >= 0)
    S1: A(I) = 1.0
  endif
end
)");
  EXPECT_NO_THROW(IvLayout{p});
}

}  // namespace
}  // namespace inlt
