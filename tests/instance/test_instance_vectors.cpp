// Reproduces Fig 1/Fig 2 (§2.1): instance vectors of the running
// example, padding, and the order-preservation of Theorem 1.
#include <gtest/gtest.h>

#include "instance/enumerate.hpp"
#include "instance/layout.hpp"
#include "instance/program_order.hpp"
#include "ir/gallery.hpp"

namespace inlt {
namespace {

TEST(InstanceVectors, Fig1LayoutShape) {
  Program p = gallery::fig1_running_example();
  IvLayout layout(p);
  // do I { do J { S1; S2 } S3 }: positions are
  // [I, e2@I (to S3), e1@I (to J loop), J, e2@J (to S2), e1@J (to S1)].
  EXPECT_EQ(layout.size(), 6);
  EXPECT_EQ(layout.positions()[0].name, "I");
  EXPECT_EQ(layout.positions()[3].name, "J");
  EXPECT_EQ(layout.loop_position("I"), 0);
  EXPECT_EQ(layout.loop_position("J"), 3);
}

TEST(InstanceVectors, Fig2VectorsAndOrder) {
  Program p = gallery::fig1_running_example();
  IvLayout layout(p);
  // S2 at I=2, J=3 (the leftmost AST of Fig 1(b)).
  IntVec s2 = layout.instance_vector({"S2", {2, 3}});
  EXPECT_EQ(s2, (IntVec{2, 0, 1, 3, 1, 0}));
  // S3 at I=5 (middle AST): J position is padded diagonally with 5.
  IntVec s3 = layout.instance_vector({"S3", {5}});
  EXPECT_EQ(s3, (IntVec{5, 1, 0, 5, 0, 0}));
  // S1 at I=2, J=3.
  IntVec s1 = layout.instance_vector({"S1", {2, 3}});
  EXPECT_EQ(s1, (IntVec{2, 0, 1, 3, 0, 1}));
  // Execution order S1(2,3) < S2(2,3) < S3(5) matches lex order.
  EXPECT_TRUE(lex_less(s1, s2));
  EXPECT_TRUE(lex_less(s2, s3));
}

TEST(InstanceVectors, PaddedPositionsOfS3) {
  Program p = gallery::fig1_running_example();
  IvLayout layout(p);
  const auto& info = layout.stmt_info("S3");
  // "the entries for the J loop in instance vectors for dynamic
  // instances of S3 are padded positions" (§2.1).
  ASSERT_EQ(info.padded_positions.size(), 1u);
  EXPECT_EQ(info.padded_positions[0], layout.loop_position("J"));
  // Lemma 2: a statement in a perfect nest has no padded positions.
  EXPECT_TRUE(layout.stmt_info("S1").padded_positions.empty());
}

TEST(InstanceVectors, ZeroPadAblation) {
  Program p = gallery::fig1_running_example();
  IvLayout layout(p);
  IntVec s3 = layout.instance_vector({"S3", {5}}, PadMode::kZero);
  EXPECT_EQ(s3, (IntVec{5, 1, 0, 0, 0, 0}));
}

TEST(InstanceVectors, SimplifiedCholeskyMatchesSection3) {
  Program p = gallery::simplified_cholesky();
  IvLayout layout(p);
  // §3: "The instance vector for the statement execution performing
  // the write is [Iw, 0, 1, Iw]'."
  EXPECT_EQ(layout.size(), 4);
  EXPECT_EQ(layout.instance_vector({"S1", {7}}), (IntVec{7, 0, 1, 7}));
  // "the instance vector for the statement execution performing the
  // read is [Ir, 1, 0, Jr]'."
  EXPECT_EQ(layout.instance_vector({"S2", {4, 6}}), (IntVec{4, 1, 0, 6}));
}

TEST(InstanceVectors, CholeskyLayoutMatchesSection6) {
  Program p = gallery::cholesky();
  IvLayout layout(p);
  // [K, e3, e2, e1, J, L, I] — 7 positions, as the 7-row dependence
  // and transformation matrices of §6 require.
  EXPECT_EQ(layout.size(), 7);
  EXPECT_EQ(layout.positions()[0].name, "K");
  EXPECT_EQ(layout.loop_position("J"), 4);
  EXPECT_EQ(layout.loop_position("L"), 5);
  EXPECT_EQ(layout.loop_position("I"), 6);
  // S1 pads I, J, L diagonally with K.
  EXPECT_EQ(layout.instance_vector({"S1", {3}}),
            (IntVec{3, 0, 0, 1, 3, 3, 3}));
  EXPECT_EQ(layout.instance_vector({"S2", {3, 5}}),
            (IntVec{3, 0, 1, 0, 3, 3, 5}));
  EXPECT_EQ(layout.instance_vector({"S3", {3, 5, 4}}),
            (IntVec{3, 1, 0, 0, 5, 4, 3}));
}

TEST(InstanceVectors, Fig3SingleEdgeOptimization) {
  // §2.2: instance vectors reduce to iteration vectors for perfect
  // nests once redundant single edges are elided.
  Program p = gallery::fig3_perfect_nest();
  IvLayout layout(p);
  EXPECT_EQ(layout.size(), 2);
  EXPECT_EQ(layout.instance_vector({"S1", {2, 5}}), (IntVec{2, 5}));
}

TEST(InstanceVectors, InvertRoundTrips) {
  Program p = gallery::cholesky();
  IvLayout layout(p);
  DynamicInstance di{"S3", {3, 5, 4}};
  EXPECT_EQ(layout.invert(layout.instance_vector(di)), di);
  DynamicInstance d1{"S1", {9}};
  EXPECT_EQ(layout.invert(layout.instance_vector(d1)), d1);
}

TEST(InstanceVectors, CommonLoopPositions) {
  Program p = gallery::cholesky();
  IvLayout layout(p);
  EXPECT_EQ(layout.common_loop_positions("S1", "S3"),
            (std::vector<int>{0}));  // only K
  EXPECT_EQ(layout.common_loop_positions("S3", "S3"),
            (std::vector<int>{0, 4, 5}));  // K, J, L
}

// Theorem 1 as a property: for every pair of instances, execution
// order equals lexicographic order of instance vectors, and L is
// one-to-one. Swept over the gallery programs.
class Theorem1Test : public ::testing::TestWithParam<int> {};

Program gallery_program(int idx) {
  switch (idx) {
    case 0:
      return gallery::fig1_running_example();
    case 1:
      return gallery::simplified_cholesky();
    case 2:
      return gallery::fig3_perfect_nest();
    case 3:
      return gallery::augmentation_example();
    case 4:
      return gallery::cholesky();
    default:
      return gallery::simplified_cholesky_distributed();
  }
}

TEST_P(Theorem1Test, LexOrderEqualsExecutionOrder) {
  Program p = gallery_program(GetParam());
  IvLayout layout(p);
  auto instances = all_instances(p, {{"N", 4}});
  ASSERT_FALSE(instances.empty());
  std::vector<IntVec> ivs;
  for (const auto& di : instances)
    ivs.push_back(layout.instance_vector(di));
  for (size_t i = 0; i + 1 < ivs.size(); ++i) {
    // Execution order is the enumeration order; vectors must strictly
    // increase (strictness also gives injectivity).
    EXPECT_TRUE(lex_less(ivs[i], ivs[i + 1]))
        << "at " << i << ": " << vec_to_string(ivs[i]) << " !< "
        << vec_to_string(ivs[i + 1]);
  }
  // Definition-2 comparison agrees with enumeration order.
  for (size_t i = 0; i < instances.size(); i += 7)
    for (size_t j = 0; j < instances.size(); j += 5) {
      int expected = i < j ? -1 : (i == j ? 0 : 1);
      EXPECT_EQ(compare_execution_order(layout, instances[i], instances[j]),
                expected);
    }
  // L⁻¹ inverts L on every instance.
  for (const auto& di : instances)
    EXPECT_EQ(layout.invert(layout.instance_vector(di)), di);
}

INSTANTIATE_TEST_SUITE_P(Gallery, Theorem1Test, ::testing::Range(0, 6));

TEST(ProgramOrder, SyntacticOrder) {
  Program p = gallery::cholesky();
  IvLayout layout(p);
  EXPECT_TRUE(syntactically_before(layout, "S1", "S2"));
  EXPECT_TRUE(syntactically_before(layout, "S2", "S3"));
  EXPECT_TRUE(syntactically_before(layout, "S1", "S1"));  // reflexive
  EXPECT_FALSE(syntactically_before(layout, "S3", "S1"));
}

}  // namespace
}  // namespace inlt
