# Trace-export check (invoked by ctest via `cmake -P`): run a search
# with --trace-out and validate the emitted Chrome trace structurally
# with tools/check_trace.py.
#
# Variables (passed with -D):
#   INLTC    path to the inltc binary
#   PYTHON   python3 interpreter
#   CHECKER  path to check_trace.py
#   LOOP     input program
#   OUT      where to write the trace JSON
foreach(v INLTC PYTHON CHECKER LOOP OUT)
  if(NOT DEFINED ${v})
    message(FATAL_ERROR "run_trace_check.cmake: missing -D${v}")
  endif()
endforeach()

execute_process(
  # search defaults to the legality-only filter mode (no --full).
  COMMAND ${INLTC} search ${LOOP} --trace-out ${OUT}
  OUTPUT_QUIET
  ERROR_VARIABLE err
  RESULT_VARIABLE rc
)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "inltc search --trace-out: exit ${rc}\nstderr:\n${err}")
endif()

execute_process(
  COMMAND ${PYTHON} ${CHECKER} ${OUT}
    --min-events 5 --require-cat session --require-cat search
  RESULT_VARIABLE rc
  ERROR_VARIABLE err
)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "check_trace.py rejected ${OUT}:\n${err}")
endif()
