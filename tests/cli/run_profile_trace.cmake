# Worker-trace check (invoked by ctest via `cmake -P`): profile the
# §5.5 skewed wavefront with --trace-out and validate that the Chrome
# trace carries what Perfetto needs to show the schedule — per-worker
# chunk spans, the "active workers" / "chunks done" counter tracks,
# and named worker thread tracks.
#
# Variables (passed with -D):
#   INLTC    path to the inltc binary
#   PYTHON   python3 interpreter
#   CHECKER  path to check_trace.py
#   LOOP     input program (the serial stencil; skewed here)
#   OUT      where to write the trace JSON
foreach(v INLTC PYTHON CHECKER LOOP OUT)
  if(NOT DEFINED ${v})
    message(FATAL_ERROR "run_profile_trace.cmake: missing -D${v}")
  endif()
endforeach()

execute_process(
  COMMAND ${INLTC} profile ${LOOP} skew I J 1
    --exec-threads 4 --n 48 --trace-out ${OUT}
  OUTPUT_QUIET
  ERROR_VARIABLE err
  RESULT_VARIABLE rc
)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "inltc profile --trace-out: exit ${rc}\nstderr:\n${err}")
endif()

execute_process(
  COMMAND ${PYTHON} ${CHECKER} ${OUT}
    --min-events 10
    --require-cat exec.worker
    --require-counter "active workers"
    --require-counter "chunks done"
    --require-thread-name "exec worker"
  RESULT_VARIABLE rc
  ERROR_VARIABLE err
)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "check_trace.py rejected ${OUT}:\n${err}")
endif()
