# Golden-output runner for inltc (invoked by ctest via `cmake -P`).
#
# Variables (passed with -D):
#   INLTC      path to the inltc binary
#   ARGS       ;-separated argument list for inltc
#   GOLDEN     path to the expected-stdout file
#   EXPECT_RC  required exit code
#
# stderr is intentionally not compared: it carries matrices, verify
# summaries and --stats dumps whose timing values are not stable.
foreach(v INLTC ARGS GOLDEN EXPECT_RC)
  if(NOT DEFINED ${v})
    message(FATAL_ERROR "run_golden.cmake: missing -D${v}")
  endif()
endforeach()

execute_process(
  COMMAND ${INLTC} ${ARGS}
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
  RESULT_VARIABLE rc
)

if(NOT rc EQUAL ${EXPECT_RC})
  message(FATAL_ERROR
    "inltc ${ARGS}: exit ${rc}, expected ${EXPECT_RC}\nstderr:\n${err}")
endif()

file(READ ${GOLDEN} want)
if(NOT out STREQUAL want)
  message(FATAL_ERROR
    "inltc ${ARGS}: stdout differs from ${GOLDEN}\n"
    "--- got ---\n${out}\n--- want ---\n${want}")
endif()
