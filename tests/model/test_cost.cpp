// Unit tests for the static cache-locality cost model: per-reference
// innermost strides, reuse classification, line estimates, ordering
// and rendering.
#include "model/cost.hpp"

#include <gtest/gtest.h>

#include "ir/gallery.hpp"
#include "ir/parser.hpp"
#include "transform/transforms.hpp"

namespace inlt {
namespace {

// A dependence-free two-deep nest with one reference per reuse class
// under the identity transformation: C(I,J) walks rows (spatial),
// A(J,I) walks columns (none), B(I) is inner-invariant (temporal).
constexpr const char* kRowColSrc = R"(param N
do I = 1, N
  do J = 1, N
    S1: C(I, J) = A(J, I) + B(I)
  end
end
)";

ModelOptions small_opts() {
  ModelOptions o;
  o.line_elems = 8;
  o.nominal_trip = 16;
  return o;
}

const RefCost& ref_of(const CostEstimate& est, const std::string& array) {
  for (const RefCost& r : est.refs)
    if (r.array == array) return r;
  ADD_FAILURE() << "no reference of array " << array;
  static RefCost dummy;
  return dummy;
}

TEST(CostModel, IdentityClassifiesRowColumnAndInvariant) {
  Program p = parse_program(kRowColSrc);
  IvLayout layout(p);
  CostEstimate est =
      estimate_cost(layout, IntMat::identity(layout.size()), small_opts());

  ASSERT_EQ(est.refs.size(), 3u);
  const RefCost& c = ref_of(est, "C");
  EXPECT_TRUE(c.is_write);
  EXPECT_EQ(c.reuse, ReuseClass::kSpatial);
  ASSERT_EQ(c.stride_dims.size(), 2u);
  EXPECT_TRUE(c.stride_dims[0].is_zero());
  EXPECT_EQ(c.stride_dims[1], Rational(1));
  // trip=16, line=8: 2 lines per inner run, 16 inner runs.
  EXPECT_DOUBLE_EQ(c.lines, 32.0);

  const RefCost& a = ref_of(est, "A");
  EXPECT_EQ(a.reuse, ReuseClass::kNone);  // outer subscript moves
  EXPECT_EQ(a.stride_dims[0], Rational(1));
  EXPECT_DOUBLE_EQ(a.lines, 256.0);  // a new line every iteration

  const RefCost& b = ref_of(est, "B");
  EXPECT_EQ(b.reuse, ReuseClass::kTemporal);
  EXPECT_DOUBLE_EQ(b.lines, 16.0);  // one line per inner run

  EXPECT_DOUBLE_EQ(est.total_lines, 32 + 256 + 16);
}

TEST(CostModel, InterchangeFlipsRowAndColumnRoles) {
  Program p = parse_program(kRowColSrc);
  IvLayout layout(p);
  IntMat swap = loop_interchange(layout, "I", "J");
  CostEstimate est = estimate_cost(layout, swap, small_opts());

  // With I innermost: C jumps rows, A becomes contiguous, B moves by
  // one element per iteration (spatial on its only dimension).
  EXPECT_EQ(ref_of(est, "C").reuse, ReuseClass::kNone);
  EXPECT_EQ(ref_of(est, "A").reuse, ReuseClass::kSpatial);
  EXPECT_EQ(ref_of(est, "B").reuse, ReuseClass::kSpatial);
  EXPECT_DOUBLE_EQ(est.total_lines, 256 + 32 + 32);

  // The model prefers the identity order for this body.
  CostEstimate ident =
      estimate_cost(layout, IntMat::identity(layout.size()), small_opts());
  EXPECT_LT(ident, est);
}

TEST(CostModel, ReversalPreservesLocalityClasses) {
  // Reversing the inner loop negates the stride but not its magnitude:
  // every reference keeps its class and line estimate.
  Program p = parse_program(kRowColSrc);
  IvLayout layout(p);
  CostEstimate fwd =
      estimate_cost(layout, IntMat::identity(layout.size()), small_opts());
  CostEstimate rev =
      estimate_cost(layout, loop_reversal(layout, "J"), small_opts());
  ASSERT_EQ(fwd.refs.size(), rev.refs.size());
  for (size_t i = 0; i < fwd.refs.size(); ++i) {
    EXPECT_EQ(fwd.refs[i].reuse, rev.refs[i].reuse) << fwd.refs[i].array;
    EXPECT_DOUBLE_EQ(fwd.refs[i].lines, rev.refs[i].lines);
  }
  EXPECT_DOUBLE_EQ(fwd.total_lines, rev.total_lines);
}

TEST(CostModel, SubLineStrideScalesSpatialCost) {
  Program p = parse_program(R"(param N
do I = 1, N
  S1: A(2 * I) = f()
end
)");
  IvLayout layout(p);
  CostEstimate est =
      estimate_cost(layout, IntMat::identity(layout.size()), small_opts());
  ASSERT_EQ(est.refs.size(), 1u);
  EXPECT_EQ(est.refs[0].reuse, ReuseClass::kSpatial);
  EXPECT_EQ(est.refs[0].stride_dims[0], Rational(2));
  // trip * |2| / line_elems = 16 * 2 / 8.
  EXPECT_DOUBLE_EQ(est.refs[0].lines, 4.0);
}

TEST(CostModel, WholeLineStrideIsNone) {
  Program p = parse_program(R"(param N
do I = 1, N
  S1: A(8 * I) = f()
end
)");
  IvLayout layout(p);
  CostEstimate est =
      estimate_cost(layout, IntMat::identity(layout.size()), small_opts());
  ASSERT_EQ(est.refs.size(), 1u);
  // Stride == line_elems: a fresh line every iteration.
  EXPECT_EQ(est.refs[0].reuse, ReuseClass::kNone);
  EXPECT_DOUBLE_EQ(est.refs[0].lines, 16.0);
}

TEST(CostModel, SingularLoopStatementIsCosted) {
  // §5.5's skewed example: S1's per-statement transformation is
  // rank-deficient (a guarded single-iteration loop plus the
  // augmentation loop); the model must cost it, not reject it.
  Program p = gallery::augmentation_example();
  IvLayout layout(p);
  CostEstimate est =
      estimate_cost(layout, loop_skew(layout, "I", "J", -1), small_opts());
  // S1: write B(I), read B(I-1), read A(I-1,I+1); S2: write A(I,J).
  ASSERT_EQ(est.refs.size(), 4u);
  EXPECT_GT(est.total_lines, 0.0);
  for (const RefCost& r : est.refs) EXPECT_GE(r.lines, 1.0) << r.array;
}

TEST(CostModel, ConvenienceOverloadMatchesExplicitRecovery) {
  Program p = gallery::cholesky();
  IvLayout layout(p);
  IntMat ident = IntMat::identity(layout.size());
  AstRecovery rec = recover_ast(layout, ident);
  CostEstimate a = estimate_cost(layout, ident, rec, small_opts());
  CostEstimate b = estimate_cost(layout, ident, small_opts());
  EXPECT_DOUBLE_EQ(a.total_lines, b.total_lines);
  ASSERT_EQ(a.refs.size(), b.refs.size());
  for (size_t i = 0; i < a.refs.size(); ++i) {
    EXPECT_EQ(a.refs[i].array, b.refs[i].array);
    EXPECT_EQ(a.refs[i].reuse, b.refs[i].reuse);
    EXPECT_DOUBLE_EQ(a.refs[i].lines, b.refs[i].lines);
  }
}

TEST(CostModel, OrderingIsByTotalLines) {
  CostEstimate cheap, costly;
  cheap.total_lines = 10;
  costly.total_lines = 20;
  EXPECT_LT(cheap, costly);
  EXPECT_FALSE(costly < cheap);
  CostEstimate tie;
  tie.total_lines = 10;
  EXPECT_FALSE(cheap < tie);
  EXPECT_FALSE(tie < cheap);
}

TEST(CostModel, RendersTextAndJson) {
  Program p = parse_program(kRowColSrc);
  IvLayout layout(p);
  CostEstimate est =
      estimate_cost(layout, IntMat::identity(layout.size()), small_opts());
  std::string text = est.to_text();
  EXPECT_NE(text.find("estimated distinct cache lines:"), std::string::npos);
  EXPECT_NE(text.find("write C"), std::string::npos);
  EXPECT_NE(text.find("temporal"), std::string::npos);
  EXPECT_NE(text.find("spatial"), std::string::npos);

  std::string js = est.to_json();
  EXPECT_NE(js.find("\"total_lines\":"), std::string::npos);
  EXPECT_NE(js.find("\"reuse\":\"none\""), std::string::npos);
  EXPECT_NE(js.find("\"array\":\"B\""), std::string::npos);
}

TEST(CostModel, ReuseClassNames) {
  EXPECT_STREQ(reuse_class_name(ReuseClass::kTemporal), "temporal");
  EXPECT_STREQ(reuse_class_name(ReuseClass::kSpatial), "spatial");
  EXPECT_STREQ(reuse_class_name(ReuseClass::kNone), "none");
}

}  // namespace
}  // namespace inlt
