// Rank mode end to end: the cost model against VM ground truth, and
// the determinism / bounding guarantees of top-k ranked search.
#include <gtest/gtest.h>

#include <algorithm>

#include "exec/interp.hpp"
#include "ir/gallery.hpp"
#include "ir/printer.hpp"
#include "model/cost.hpp"
#include "pipeline/search.hpp"
#include "transform/completion.hpp"

namespace inlt {
namespace {

// Probe one program with an undersized direct-mapped tag table — the
// deterministic stand-in for a real cache's miss count.
i64 probed_lines(const Program& p, i64 n, int bucket_bits) {
  Memory mem;
  const std::map<std::string, i64> params = {{"N", n}};
  declare_arrays(p, params, mem);
  fill_spd(mem, 1);
  CacheProbe probe;
  probe.bucket_bits = bucket_bits;
  InterpOptions io;
  io.cache_probe = &probe;
  interpret(p, params, mem, io);
  return probe.lines;
}

TEST(RankTest, ModelTopOneMatchesProbeOnCholeskyOrders) {
  // The acceptance check: across the expressible Cholesky orderings,
  // the order the model scores cheapest must also touch the fewest
  // probe lines. N is chosen so the working set (48*48/8 = 288 lines)
  // overflows the 256-entry table and loop order matters.
  const i64 n = 48;
  TransformSession session(gallery::cholesky());
  const IvLayout& layout = session.layout();
  ModelOptions mopts;
  mopts.nominal_trip = n;

  std::vector<std::string> names;
  std::vector<double> model;
  std::vector<i64> measured;
  const std::vector<std::string> orders = {"KJL", "KLJ", "LJK", "LKJ"};
  for (const std::string& order : orders) {
    std::vector<IntVec> rows;
    for (char c : order) {
      IntVec r(layout.size(), 0);
      r[layout.loop_position(std::string(1, c))] = 1;
      rows.push_back(std::move(r));
    }
    IntMat m =
        complete_transformation(layout, session.dependences(), rows).matrix;
    CandidateResult cand = session.evaluate(m);
    ASSERT_TRUE(cand.legal && cand.program) << order;
    names.push_back(order);
    model.push_back(estimate_cost(layout, m, mopts).total_lines);
    measured.push_back(probed_lines(*cand.program, n, /*bucket_bits=*/8));
  }

  size_t mbest = std::min_element(model.begin(), model.end()) - model.begin();
  size_t vbest =
      std::min_element(measured.begin(), measured.end()) - measured.begin();
  EXPECT_EQ(names[mbest], names[vbest])
      << "model best " << names[mbest] << " (" << model[mbest]
      << " lines) vs measured best " << names[vbest] << " ("
      << measured[vbest] << " lines)";
}

TEST(RankTest, RankedSearchIsDeterministicAcrossThreadCounts) {
  // The Complete + Cost stages run on worker threads; the merged
  // ranking must not depend on how many there are.
  std::vector<std::vector<std::pair<i64, double>>> runs;
  for (int threads : {1, 2, 4}) {
    SessionOptions opts;
    opts.threads = threads;
    TransformSession session(gallery::cholesky(), opts);
    SearchOptions sopts;
    sopts.mode = SearchMode::kLegalityOnly;
    sopts.top_k = 5;
    SearchResult res =
        session.search(SearchSpace{/*skew_bound=*/1, /*skew_depth=*/1}, sopts);
    std::vector<std::pair<i64, double>> seq;
    for (const SearchHit& h : res.hits) {
      ASSERT_TRUE(h.cost.has_value());
      seq.emplace_back(h.index, h.cost->total_lines);
    }
    runs.push_back(std::move(seq));
  }
  EXPECT_EQ(runs[0], runs[1]);
  EXPECT_EQ(runs[0], runs[2]);
}

TEST(RankTest, TopKKeepsTheBestOfTheFullRanking) {
  SessionOptions opts;
  opts.threads = 1;
  TransformSession session(gallery::cholesky(), opts);
  SearchSpace space{/*skew_bound=*/1, /*skew_depth=*/1};

  SearchOptions all;
  all.mode = SearchMode::kLegalityOnly;
  all.cost = true;
  SearchResult full = session.search(space, all);
  ASSERT_GT(full.hits.size(), 2u);
  for (const SearchHit& h : full.hits) ASSERT_TRUE(h.cost.has_value());

  // Reference ranking: stable sort of every hit by (cost, index).
  std::vector<std::pair<double, i64>> ranked;
  for (const SearchHit& h : full.hits)
    ranked.emplace_back(h.cost->total_lines, h.index);
  std::sort(ranked.begin(), ranked.end());

  SearchOptions top;
  top.mode = SearchMode::kLegalityOnly;
  top.top_k = 2;
  SearchResult best = session.search(space, top);
  ASSERT_EQ(best.hits.size(), 2u);
  for (size_t i = 0; i < best.hits.size(); ++i) {
    EXPECT_EQ(best.hits[i].index, ranked[i].second);
    EXPECT_DOUBLE_EQ(best.hits[i].cost->total_lines, ranked[i].first);
  }
  // Bounding the hit list does not change the accounting.
  EXPECT_EQ(best.stats.legal, full.stats.legal);
  EXPECT_EQ(best.stats.candidates_total, full.stats.candidates_total);
}

TEST(RankTest, SinkSeesEveryLegalCandidateDespiteTopK) {
  TransformSession session(gallery::lu());
  SearchOptions sopts;
  sopts.mode = SearchMode::kLegalityOnly;
  sopts.top_k = 1;
  std::vector<i64> streamed;
  sopts.sink = [&](const SearchHit& h) { streamed.push_back(h.index); };
  SearchResult res = session.search(SearchSpace{}, sopts);
  EXPECT_EQ(res.hits.size(), 1u);
  EXPECT_EQ(static_cast<i64>(streamed.size()), res.stats.legal);
  EXPECT_TRUE(std::is_sorted(streamed.begin(), streamed.end()));
}

TEST(RankTest, CostStageDoesNotPerturbFullModeResults) {
  // Full mode with cost on: every hit gains an estimate, and the
  // generated programs are bit-identical to a cost-less search.
  SessionOptions opts;
  opts.threads = 1;
  TransformSession session(gallery::cholesky(), opts);
  SearchResult plain = session.search(SearchSpace{});
  SearchOptions with_cost;
  with_cost.cost = true;
  SearchResult costed = session.search(SearchSpace{}, with_cost);

  ASSERT_EQ(costed.hits.size(), plain.hits.size());
  for (size_t i = 0; i < plain.hits.size(); ++i) {
    EXPECT_EQ(costed.hits[i].index, plain.hits[i].index);
    ASSERT_TRUE(costed.hits[i].cost.has_value());
    EXPECT_FALSE(plain.hits[i].cost.has_value());
    ASSERT_TRUE(costed.hits[i].result.program.has_value());
    EXPECT_EQ(print_program(*costed.hits[i].result.program),
              print_program(*plain.hits[i].result.program));
  }
}

TEST(RankTest, EqualCostTiesRankByAscendingIndex) {
  // Cholesky's pure permutation space scores in tied groups (legal
  // candidates that only interleave loops across sibling statements
  // share every per-statement stride). Within a tie, the ranked list
  // must keep ascending candidate index — the deterministic tiebreak.
  TransformSession session(gallery::cholesky());
  SearchOptions all;
  all.mode = SearchMode::kLegalityOnly;
  all.cost = true;
  SearchResult full = session.search(SearchSpace{}, all);
  std::vector<std::pair<double, i64>> ranked;
  for (const SearchHit& h : full.hits) {
    ASSERT_TRUE(h.cost.has_value());
    ranked.emplace_back(h.cost->total_lines, h.index);
  }
  std::sort(ranked.begin(), ranked.end());
  // The space actually has ties to break.
  ASSERT_GT(ranked.size(), 1u);
  ASSERT_EQ(ranked[0].first, ranked[1].first);

  SearchOptions top;
  top.mode = SearchMode::kLegalityOnly;
  top.top_k = 3;
  SearchResult best = session.search(SearchSpace{}, top);
  ASSERT_EQ(best.hits.size(), 3u);
  for (size_t i = 0; i < best.hits.size(); ++i) {
    EXPECT_EQ(best.hits[i].index, ranked[i].second);
    if (i > 0 && best.hits[i - 1].cost->total_lines ==
                     best.hits[i].cost->total_lines) {
      EXPECT_LT(best.hits[i - 1].index, best.hits[i].index);
    }
  }
}

}  // namespace
}  // namespace inlt
