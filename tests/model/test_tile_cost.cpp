// Tile traffic model: exact hand-computed values on matmul, trip
// estimation, reference dedup, capacity penalty, imperfect-statement
// and outside-the-band handling.
#include "model/tile_cost.hpp"

#include <gtest/gtest.h>

#include "ir/parser.hpp"

namespace inlt {
namespace {

constexpr const char* kMatmulSrc = R"(param N
do I = 1, N
  do J = 1, N
    do K = 1, N
      S1: C(I, J) = C(I, J) + A(I, K) * B(K, J)
    end
  end
end
)";

std::vector<const Node*> stmt_loops(const Program& p, size_t stmt = 0) {
  return p.statements().at(stmt).loops;
}

TEST(LoopTripEstimate, ConstantBoundsAreExact) {
  constexpr const char* src = R"(do I = 2, 10
  do J = 1, 10, 3
    do K = 5, 2
      S1: A(I) = A(I) + 1.0
    end
  end
end
)";
  Program p = parse_program(src);
  std::vector<const Node*> loops = stmt_loops(p);
  ASSERT_EQ(loops.size(), 3u);
  ModelOptions opts;
  EXPECT_DOUBLE_EQ(loop_trip_estimate(loops[0], opts), 9.0);
  EXPECT_DOUBLE_EQ(loop_trip_estimate(loops[1], opts), 4.0);
  EXPECT_DOUBLE_EQ(loop_trip_estimate(loops[2], opts), 0.0);
}

TEST(LoopTripEstimate, SymbolicBoundsUseNominal) {
  Program p = parse_program(kMatmulSrc);
  std::vector<const Node*> loops = stmt_loops(p);
  ModelOptions opts;
  EXPECT_DOUBLE_EQ(loop_trip_estimate(loops[0], opts), 64.0);
  opts.nominal_trip = 100;
  EXPECT_DOUBLE_EQ(loop_trip_estimate(loops[0], opts), 100.0);
}

// Matmul at nominal trip 64, line_elems 8, tiles 8x8x8.
//
// Each reference covers 64*64 elements = 64 * 64/8 = 512 lines. Each
// is re-fetched once per tile pass of the one band dim not indexing
// it: 64/8 = 8 passes. The C write and the C read are textually
// identical, so C is charged once:
//   traffic = 3 * 512 * 8 = 12288.
// Per-tile footprint: C 8*(8/8) = 8, A 8, B 8 (K is B's non-contiguous
// dim: 8 lines regardless) -> 24 lines, fits.
TEST(TileTraffic, MatmulExactValues) {
  Program p = parse_program(kMatmulSrc);
  std::vector<const Node*> loops = stmt_loops(p);
  TileTraffic t = estimate_tile_traffic(p, loops, {8, 8, 8});
  EXPECT_DOUBLE_EQ(t.raw_traffic, 12288.0);
  EXPECT_DOUBLE_EQ(t.traffic_lines, 12288.0);
  EXPECT_DOUBLE_EQ(t.footprint_lines, 24.0);
  EXPECT_TRUE(t.fits_cache);
  // Four references, one of them the deduped C read.
  ASSERT_EQ(t.refs.size(), 4u);
  int deduped = 0;
  for (const RefTraffic& r : t.refs)
    if (r.tile_lines == 0) ++deduped;
  EXPECT_EQ(deduped, 1);
  // Every live reference re-fetches 8x.
  for (const RefTraffic& r : t.refs)
    EXPECT_DOUBLE_EQ(r.refetch, 8.0) << r.array;
}

// Untiled point B = (1, 1, 64): C is swept once (K indexes nothing of
// C but runs in one pass), A re-fetches once per J iteration (64x), B
// once per I iteration (64x):
//   traffic = 512 + 512*64 + 512*64 = 66048.
TEST(TileTraffic, MatmulUntiledPoint) {
  Program p = parse_program(kMatmulSrc);
  std::vector<const Node*> loops = stmt_loops(p);
  TileTraffic u = estimate_untiled_traffic(p, loops);
  EXPECT_DOUBLE_EQ(u.raw_traffic, 66048.0);
  EXPECT_TRUE(u.fits_cache);

  // Blocking 8x8x8 is a 5.4x modeled reduction.
  TileTraffic t = estimate_tile_traffic(p, loops, {8, 8, 8});
  EXPECT_LT(t.traffic_lines, u.traffic_lines / 5.0);
}

TEST(TileTraffic, CapacityPenaltyKicksIn) {
  constexpr const char* src = R"(do I = 1, 512
  do J = 1, 512
    do K = 1, 512
      S1: C(I, J) = C(I, J) + A(I, K) * B(K, J)
    end
  end
end
)";
  Program p = parse_program(src);
  std::vector<const Node*> loops = stmt_loops(p);
  TileTraffic big = estimate_tile_traffic(p, loops, {256, 256, 256});
  // C alone holds 256 * 256/8 = 8192 lines per tile: over capacity.
  EXPECT_FALSE(big.fits_cache);
  EXPECT_GT(big.footprint_lines, 4096.0);
  EXPECT_GT(big.traffic_lines, big.raw_traffic);

  TileTraffic small = estimate_tile_traffic(p, loops, {16, 16, 16});
  EXPECT_TRUE(small.fits_cache);
  EXPECT_DOUBLE_EQ(small.traffic_lines, small.raw_traffic);
}

TEST(TileTraffic, TileSizeClampsToTrip) {
  constexpr const char* src = R"(do I = 1, 4
  do J = 1, 4
    S1: A(I, J) = A(I, J) + 1.0
  end
end
)";
  Program p = parse_program(src);
  std::vector<const Node*> loops = stmt_loops(p);
  // Sizes beyond the trip behave exactly like size == trip.
  TileTraffic huge = estimate_tile_traffic(p, loops, {100, 100});
  TileTraffic exact = estimate_tile_traffic(p, loops, {4, 4});
  EXPECT_DOUBLE_EQ(huge.traffic_lines, exact.traffic_lines);
  EXPECT_DOUBLE_EQ(huge.footprint_lines, exact.footprint_lines);
}

TEST(TileTraffic, StatementsOutsideTheBandAreIgnored) {
  // Band (J, L) of left-looking Cholesky covers only S3; S1 and S2 sit
  // outside the J subtree and contribute nothing.
  constexpr const char* src = R"(param N
do K = 1, N
  do J = 1, K - 1
    do L = K, N
      S3: A(L, K) = A(L, K) - A(L, J) * A(K, J)
    end
  end
  S1: A(K, K) = sqrt(A(K, K))
  do I = K + 1, N
    S2: A(I, K) = A(I, K) / A(K, K)
  end
end
)";
  Program p = parse_program(src);
  // S3 is statement 0 in program order; its loops are K, J, L.
  std::vector<const Node*> loops = stmt_loops(p, 0);
  ASSERT_EQ(loops.size(), 3u);
  std::vector<const Node*> band{loops[1], loops[2]};  // J, L
  TileTraffic t = estimate_tile_traffic(p, band, {8, 8});
  for (const RefTraffic& r : t.refs) EXPECT_EQ(r.stmt, "S3");
  EXPECT_FALSE(t.refs.empty());
}

}  // namespace
}  // namespace inlt
