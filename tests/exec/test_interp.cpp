// Interpreter and verification substrate.
#include <gtest/gtest.h>

#include "exec/verify.hpp"
#include "ir/gallery.hpp"
#include "ir/parser.hpp"
#include "kernels/cholesky.hpp"

namespace inlt {
namespace {

TEST(DenseArray, BoundsCheckedAccess) {
  DenseArray a({0, 0}, {3, 3});
  a.set({2, 3}, 1.5);
  EXPECT_EQ(a.get({2, 3}), 1.5);
  EXPECT_EQ(a.get({0, 0}), 0.0);
  EXPECT_THROW(a.get({4, 0}), Error);
  EXPECT_THROW(a.get({0, -1}), Error);
  EXPECT_THROW(a.get({0}), Error);  // rank mismatch
}

TEST(DenseArray, NegativeOrigins) {
  DenseArray a({-2}, {5});
  a.set({-2}, 7.0);
  EXPECT_EQ(a.get({-2}), 7.0);
}

TEST(DenseArray, ForEachIndexCoversAll) {
  DenseArray a({1, -1}, {2, 1});
  int count = 0;
  a.for_each_index([&](const std::vector<i64>&) { ++count; });
  EXPECT_EQ(count, 2 * 3);
}

TEST(Interp, SimpleSumLoop) {
  Program p = parse_program(R"(
param N
do I = 1, N
  S1: A(I) = A(I - 1) + 1.0
end
)");
  Memory mem;
  declare_arrays(p, {{"N", 5}}, mem);
  InterpStats st = interpret(p, {{"N", 5}}, mem);
  EXPECT_EQ(st.instances, 5);
  EXPECT_EQ(mem.at("A").get({5}), 5.0);  // prefix sums of zeros + 1
}

TEST(Interp, GuardsSuppressExecution) {
  Program p = parse_program(R"(
param N
do I = 1, N
  if (I - 3 >= 0)
    S1: A(I) = 1.0
  endif
end
)");
  Memory mem;
  declare_arrays(p, {{"N", 5}}, mem);
  InterpStats st = interpret(p, {{"N", 5}}, mem);
  EXPECT_EQ(st.instances, 3);      // I = 3, 4, 5
  EXPECT_EQ(st.guard_failures, 2); // I = 1, 2
}

TEST(Interp, InstanceBudgetEnforced) {
  Program p = parse_program(R"(
param N
do I = 1, N
  S1: A(I) = 1.0
end
)");
  Memory mem;
  declare_arrays(p, {{"N", 100}}, mem);
  InterpOptions opts;
  opts.max_instances = 10;
  EXPECT_THROW(interpret(p, {{"N", 100}}, mem, opts), Error);
}

TEST(Interp, CholeskyMatchesNativeKernel) {
  // The interpreter on the gallery Cholesky must agree with the native
  // kij kernel on the lower triangle.
  i64 n = 12;
  Program p = gallery::cholesky();
  Memory mem;
  declare_arrays(p, {{"N", n}}, mem);
  fill_spd(mem, 99);

  // Mirror memory into the kernel layout (1-based -> 0-based).
  kernels::Matrix a(static_cast<size_t>(n) * n);
  for (i64 i = 1; i <= n; ++i)
    for (i64 j = 1; j <= n; ++j)
      a[static_cast<size_t>(i - 1) * n + (j - 1)] = mem.at("A").get({i, j});

  interpret(p, {{"N", n}}, mem);
  kernels::cholesky_kij(a, static_cast<size_t>(n));

  double worst = 0.0;
  for (i64 i = 1; i <= n; ++i)
    for (i64 j = 1; j <= i; ++j)
      worst = std::max(worst,
                       std::abs(mem.at("A").get({i, j}) -
                                a[static_cast<size_t>(i - 1) * n + (j - 1)]));
  EXPECT_LT(worst, 1e-9);
}

TEST(Interp, FuncIsPureAndEnvIndependent) {
  // f(I) in two different loop structures produces the same values.
  Program p1 = parse_program(R"(
param N
do I = 1, N
  S1: A(I) = f(I)
end
)");
  Program p2 = parse_program(R"(
param N
do Z = 1, N
  do I = Z, Z
    S1: A(I) = f(I)
  end
end
)");
  Memory m1, m2;
  declare_arrays(p1, {{"N", 6}}, m1);
  declare_arrays(p2, {{"N", 6}}, m2);
  interpret(p1, {{"N", 6}}, m1);
  interpret(p2, {{"N", 6}}, m2);
  EXPECT_EQ(m1.max_abs_diff(m2), 0.0);
}

TEST(Verify, DetectsInequivalence) {
  Program a = parse_program(R"(
param N
do I = 1, N
  S1: A(I) = A(I - 1) + 1.0
end
)");
  Program b = parse_program(R"(
param N
do I = 1, N
  S1: A(I) = A(I - 1) + 2.0
end
)");
  VerifyResult v = verify_equivalence(a, b, {{"N", 4}}, FillKind::kRandom);
  EXPECT_FALSE(v.equivalent);
}

TEST(Verify, DetectsReorderedRecurrence) {
  // Reversing a recurrence changes the result.
  Program a = parse_program(R"(
param N
do I = 1, N
  S1: A(I) = A(I - 1) * 0.5 + 1.0
end
)");
  Program b = parse_program(R"(
param N
do I = -N, -1
  S1: A(-I) = A(-I - 1) * 0.5 + 1.0
end
)");
  VerifyResult v = verify_equivalence(a, b, {{"N", 5}}, FillKind::kRandom);
  EXPECT_FALSE(v.equivalent);
}

TEST(Verify, EquivalentOnIdentity) {
  Program p = gallery::cholesky();
  VerifyResult v = verify_equivalence(p, p, {{"N", 6}});
  EXPECT_TRUE(v.equivalent);
  EXPECT_EQ(v.max_diff, 0.0);
}

}  // namespace
}  // namespace inlt
