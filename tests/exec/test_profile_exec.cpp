// The execution profiler against the partitioned parallel engine:
// enabling it must not change results (Memory bit-identical,
// InterpStats equal — the disabled path is one relaxed atomic check
// per chunk), reports must be structurally deterministic across runs
// and thread counts, barrier aborts must still propagate cleanly while
// profiling, spans/counters recorded on the persistent WorkerPool
// threads must reach the Tracer export, and the serial VM's per-opcode
// profiling (InterpOptions::profile) must count what actually ran.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "codegen/generate.hpp"
#include "dependence/analyzer.hpp"
#include "exec/interp.hpp"
#include "exec/parallel.hpp"
#include "exec/vm.hpp"
#include "ir/gallery.hpp"
#include "ir/parser.hpp"
#include "support/check.hpp"
#include "support/profile.hpp"
#include "support/stats.hpp"
#include "support/trace.hpp"
#include "transform/parallel.hpp"
#include "transform/transforms.hpp"

namespace inlt {
namespace {

// Profiler and tracer are process-global; every test starts and ends
// with both off and empty.
class ProfileExec : public ::testing::Test {
 protected:
  void SetUp() override { reset(); }
  void TearDown() override { reset(); }
  static void reset() {
    ExecProfiler::global().disable();
    ExecProfiler::global().clear();
    Tracer::global().disable();
    Tracer::global().clear();
  }
};

void expect_bit_identical(const Memory& a, const Memory& b,
                          const std::string& what) {
  ASSERT_EQ(a.arrays().size(), b.arrays().size()) << what;
  for (const auto& [name, arr] : a.arrays()) {
    const DenseArray& other = b.at(name);
    ASSERT_EQ(arr.data().size(), other.data().size()) << what << " " << name;
    EXPECT_EQ(std::memcmp(arr.data().data(), other.data().data(),
                          arr.data().size() * sizeof(double)),
              0)
        << what << ": array " << name << " differs";
  }
}

struct Kernel {
  std::string name;
  Program program;
  std::vector<std::string> partition;
};

// The §5.5 skewed stencil: sequential diagonal loop over a chunked
// inner doall — the schedule that runs the per-activation barriers
// (and hence the chunk-timing state machine) hardest.
Kernel skewed_wavefront() {
  Program p = parse_program(R"(
param N
do I = 1, N
  do J = 1, N
    S1: U(I, J) = U(I - 1, J) + U(I, J - 1)
  end
end
)");
  IvLayout layout(p);
  DependenceSet deps = analyze_dependences(layout);
  IntMat m = loop_skew(layout, "I", "J", 1);
  CodegenResult gen = generate_code(layout, deps, m);
  AstRecovery rec = recover_ast(layout, m);
  ParallelSchedule s = analyze_target_parallelism(layout, deps, m, rec);
  return {"stencil_wavefront", gen.program, s.partition};
}

std::vector<Kernel> kernels() {
  std::vector<Kernel> out;
  for (auto [name, p] :
       {std::pair<const char*, Program>{"cholesky", gallery::cholesky()},
        {"lu", gallery::lu()}}) {
    IvLayout layout(p);
    DependenceSet deps = analyze_dependences(layout);
    ParallelSchedule s = source_parallel_schedule(layout, deps);
    out.push_back({name, p, s.partition});
  }
  out.push_back(skewed_wavefront());
  return out;
}

InterpStats run_parallel(const Kernel& k,
                         const std::map<std::string, i64>& params,
                         const Memory& proto, Memory& out, int threads) {
  out = proto;
  InterpOptions opts;
  opts.num_threads = threads;
  opts.partition = k.partition;
  return interpret(k.program, params, out, opts);
}

// The acceptance test for the overhead contract's other half: turning
// the profiler on changes what is *recorded*, never what is *computed*.
TEST_F(ProfileExec, EnablingProfilerChangesNoResultOrStat) {
  std::map<std::string, i64> params{{"N", 17}};
  for (const Kernel& k : kernels()) {
    Memory proto;
    declare_arrays(k.program, params, proto);
    fill_spd(proto, 2);

    Memory off_mem;
    InterpStats off = run_parallel(k, params, proto, off_mem, 4);
    ASSERT_EQ(ExecProfiler::global().report_count(), 0u) << k.name;

    ExecProfiler::global().enable();
    Memory on_mem;
    InterpStats on = run_parallel(k, params, proto, on_mem, 4);
    ExecProfiler::global().disable();

    EXPECT_EQ(on.instances, off.instances) << k.name;
    EXPECT_EQ(on.loop_iterations, off.loop_iterations) << k.name;
    EXPECT_EQ(on.guard_failures, off.guard_failures) << k.name;
    expect_bit_identical(on_mem, off_mem, k.name + " profiler on vs off");
    EXPECT_EQ(ExecProfiler::global().report_count(), 1u) << k.name;
    ExecProfiler::global().clear();
  }
}

TEST_F(ProfileExec, WavefrontReportShape) {
  Kernel k = skewed_wavefront();
  ASSERT_EQ(k.partition, (std::vector<std::string>{"J"}));
  std::map<std::string, i64> params{{"N", 17}};
  Memory proto;
  declare_arrays(k.program, params, proto);
  fill_spd(proto, 1);

  Memory serial_mem = proto;
  InterpStats serial = interpret(k.program, params, serial_mem, {});

  ExecProfiler::global().enable();
  Memory mem;
  run_parallel(k, params, proto, mem, 4);
  ExecProfiler::global().disable();

  ASSERT_EQ(ExecProfiler::global().report_count(), 1u);
  ProfileReport rep = ExecProfiler::global().merged();
  EXPECT_EQ(rep.workers, 4);
  EXPECT_EQ(rep.runs, 1);
  EXPECT_GT(rep.wall_ns, 0);
  ASSERT_EQ(rep.per_worker.size(), 4u);
  ASSERT_EQ(rep.levels.size(), 1u);
  EXPECT_EQ(rep.levels[0].var, "J");
  EXPECT_GT(rep.levels[0].activations, 0);
  EXPECT_GT(rep.levels[0].chunks, 0);

  i64 instances = 0, chunks = 0;
  for (const WorkerProfile& w : rep.per_worker) {
    // Every non-zero-trip activation gives each worker either a chunk
    // or an empty chunk — no activations go unaccounted.
    EXPECT_EQ(w.chunks + w.empty_chunks, rep.levels[0].activations)
        << "worker " << w.worker;
    instances += w.instances;
    chunks += w.chunks;
  }
  EXPECT_EQ(instances, serial.instances);
  EXPECT_EQ(chunks, rep.levels[0].chunks);
  EXPECT_GE(rep.total_busy_ns(), 0);
  EXPECT_GE(rep.measured_parallel_fraction(), 0.0);
  EXPECT_LE(rep.measured_parallel_fraction(), 1.0);
}

TEST_F(ProfileExec, ReportCountsDeterministicAcrossRepeatedRuns) {
  Kernel k = skewed_wavefront();
  std::map<std::string, i64> params{{"N", 13}};
  Memory proto;
  declare_arrays(k.program, params, proto);
  fill_spd(proto, 3);

  ExecProfiler::global().enable();
  for (int run = 0; run < 3; ++run) {
    Memory mem;
    run_parallel(k, params, proto, mem, 4);
  }
  ExecProfiler::global().disable();

  std::vector<ProfileReport> reps = ExecProfiler::global().reports();
  ASSERT_EQ(reps.size(), 3u);
  const ProfileReport& first = reps[0];
  for (size_t r = 1; r < reps.size(); ++r) {
    const ProfileReport& rep = reps[r];
    ASSERT_EQ(rep.per_worker.size(), first.per_worker.size()) << "run " << r;
    for (size_t w = 0; w < rep.per_worker.size(); ++w) {
      // Chunk assignment is static, so every count is identical run to
      // run; only the timing fields may differ.
      EXPECT_EQ(rep.per_worker[w].chunks, first.per_worker[w].chunks)
          << "run " << r << " worker " << w;
      EXPECT_EQ(rep.per_worker[w].empty_chunks,
                first.per_worker[w].empty_chunks)
          << "run " << r << " worker " << w;
      EXPECT_EQ(rep.per_worker[w].instances, first.per_worker[w].instances)
          << "run " << r << " worker " << w;
      EXPECT_EQ(rep.per_worker[w].loop_iterations,
                first.per_worker[w].loop_iterations)
          << "run " << r << " worker " << w;
    }
    ASSERT_EQ(rep.levels.size(), first.levels.size()) << "run " << r;
    for (size_t l = 0; l < rep.levels.size(); ++l) {
      EXPECT_EQ(rep.levels[l].activations, first.levels[l].activations);
      EXPECT_EQ(rep.levels[l].chunks, first.levels[l].chunks);
    }
  }
}

TEST_F(ProfileExec, InvariantsHoldAcrossThreadCounts) {
  Kernel k = skewed_wavefront();
  std::map<std::string, i64> params{{"N", 13}};
  Memory proto;
  declare_arrays(k.program, params, proto);
  fill_spd(proto, 3);
  Memory serial_mem = proto;
  InterpStats serial = interpret(k.program, params, serial_mem, {});

  for (int threads : {2, 3, 8}) {
    ExecProfiler::global().clear();
    ExecProfiler::global().enable();
    Memory mem;
    run_parallel(k, params, proto, mem, threads);
    ExecProfiler::global().disable();

    ASSERT_EQ(ExecProfiler::global().report_count(), 1u);
    ProfileReport rep = ExecProfiler::global().merged();
    EXPECT_EQ(rep.workers, threads);
    ASSERT_EQ(rep.per_worker.size(), static_cast<size_t>(threads));
    i64 instances = 0;
    for (const WorkerProfile& w : rep.per_worker) instances += w.instances;
    // Work is conserved at any width; the team-level activation count
    // is a property of the schedule, not of the worker count.
    EXPECT_EQ(instances, serial.instances) << threads << " threads";
    ASSERT_EQ(rep.levels.size(), 1u);
    EXPECT_GT(rep.levels[0].activations, 0) << threads << " threads";
    expect_bit_identical(mem, serial_mem,
                         "profiled at " + std::to_string(threads));
  }
}

TEST_F(ProfileExec, BarrierAbortPropagatesWhileProfiling) {
  // Shrunken array: a worker faults mid-chunk, poisons the barrier,
  // and the original error must surface — with the profiler enabled
  // and its chunk-timing state machine mid-flight.
  Program p = parse_program(R"(
param N
do T = 1, 3
  do I = 1, N
    S1: A(I) = A(I) + 1.0
  end
end
)");
  std::map<std::string, i64> params{{"N", 64}};
  Memory mem;
  mem.declare("A", {1}, {32});  // program writes A(1..64)
  ExecProfiler::global().enable();
  try {
    run_partitioned(p, params, mem, {"I"}, 4, InterpOptions{});
    FAIL() << "expected an out-of-bounds error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("out of bounds"), std::string::npos)
        << e.what();
    EXPECT_EQ(std::string(e.what()).find(ExecBarrier::aborted_message()),
              std::string::npos)
        << "abort echo leaked instead of the original error: " << e.what();
  }

  // The pool and profiler must both be healthy afterwards: a correct
  // profiled run on the same pool still works and reports.
  ExecProfiler::global().clear();
  Kernel k = skewed_wavefront();
  std::map<std::string, i64> good{{"N", 9}};
  Memory proto;
  declare_arrays(k.program, good, proto);
  fill_spd(proto, 1);
  Memory serial_mem = proto;
  interpret(k.program, good, serial_mem, {});
  Memory par_mem;
  run_parallel(k, good, proto, par_mem, 4);
  expect_bit_identical(par_mem, serial_mem, "after abort");
  EXPECT_EQ(ExecProfiler::global().report_count(), 1u);
}

TEST_F(ProfileExec, PoolWorkerTraceEventsReachTheExport) {
  // The WorkerPool outlives the run; spans and counters its threads
  // record must still be collected at export time (the Tracer holds
  // shared ownership of every thread's buffer).
  Kernel k = skewed_wavefront();
  std::map<std::string, i64> params{{"N", 9}};
  Memory proto;
  declare_arrays(k.program, params, proto);
  fill_spd(proto, 1);

  Tracer::global().enable();
  Memory mem;
  run_parallel(k, params, proto, mem, 4);
  Tracer::global().disable();

  int chunk_spans = 0;
  int active_samples = 0;
  int done_samples = 0;
  for (const TraceEvent& e : Tracer::global().events()) {
    if (e.ph == 'X' && std::string(e.name) == "chunk") {
      ++chunk_spans;
      EXPECT_STREQ(e.cat, "exec.worker");
    } else if (e.ph == 'C' && std::string(e.name) == "active workers") {
      ++active_samples;
    } else if (e.ph == 'C' && std::string(e.name) == "chunks done") {
      ++done_samples;
    }
  }
  EXPECT_GT(chunk_spans, 0) << "no worker chunk spans were exported";
  EXPECT_GT(active_samples, 0);
  EXPECT_GT(done_samples, 0);
  // Every chunk increments the done counter exactly once.
  EXPECT_EQ(done_samples, chunk_spans);

  std::string json = Tracer::global().chrome_trace_json();
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("exec worker"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
}

TEST_F(ProfileExec, VmOpcodeProfilingCountsWhatRan) {
  // Serial VM with InterpOptions::profile: identical results, and the
  // vm.op.* histograms gain exactly one stmt sample per executed
  // statement instance (at the statement's loop depth).
  Kernel k = skewed_wavefront();
  std::map<std::string, i64> params{{"N", 11}};
  Memory proto;
  declare_arrays(k.program, params, proto);
  fill_spd(proto, 4);

  Memory plain_mem = proto;
  InterpStats plain = interpret(k.program, params, plain_mem, {});

  StatsSnapshot before = Stats::global().snapshot();
  Memory prof_mem = proto;
  InterpOptions opts;
  opts.profile = true;
  InterpStats prof = interpret(k.program, params, prof_mem, opts);
  StatsSnapshot delta = Stats::global().snapshot() - before;

  EXPECT_EQ(prof.instances, plain.instances);
  EXPECT_EQ(prof.loop_iterations, plain.loop_iterations);
  expect_bit_identical(prof_mem, plain_mem, "vm profile on vs off");

  EXPECT_EQ(delta.histograms.at("vm.op.stmt_ns").count, prof.instances);
  // The skewed stencil's statement sits under two loops.
  EXPECT_EQ(delta.histograms.at("vm.stmt.depth2_ns").count, prof.instances);
  EXPECT_GT(delta.histograms.at("vm.op.loop_enter_ns").count, 0);
  EXPECT_GT(delta.histograms.at("vm.op.loop_next_ns").count, 0);

  // And without the flag, another run adds no opcode samples at all.
  StatsSnapshot before2 = Stats::global().snapshot();
  Memory again = proto;
  interpret(k.program, params, again, {});
  StatsSnapshot d2 = Stats::global().snapshot() - before2;
  EXPECT_EQ(d2.histograms.at("vm.op.stmt_ns").count, 0);
}

}  // namespace
}  // namespace inlt
