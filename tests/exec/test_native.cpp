// Differential suite for the native engine (exec/native.hpp): every
// gallery program, every tools/testdata/ program and the transformed
// variants from test_vm.cpp run as compiled C kernels and as VM
// bytecode on identical inputs; final memory must match to the last
// bit and InterpStats must be equal. Plus the compile-cache contract:
// cold compile / warm disk hit / in-process LRU hit, corrupted cache
// entries recompiled (never trusted), concurrent sessions racing the
// cache dir, $INLTC_CACHE_DIR override, and the VM fallback when no
// compiler is reachable.
//
// Every test runs against its own throwaway cache directory, so a
// developer's real ~/.cache/inltc is never touched. Tests skip (not
// fail) when the host has no usable C compiler.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "codegen/generate.hpp"
#include "dependence/analyzer.hpp"
#include "exec/cgen.hpp"
#include "exec/native.hpp"
#include "exec/verify.hpp"
#include "ir/gallery.hpp"
#include "ir/parser.hpp"
#include "support/stats.hpp"
#include "transform/transforms.hpp"

namespace inlt {
namespace {

namespace fs = std::filesystem;

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

Program load_testdata(const std::string& name) {
  return parse_program(read_file(std::string(INLT_TESTDATA_DIR) + "/" + name));
}

void expect_bit_identical(const Memory& a, const Memory& b,
                          const std::string& what) {
  ASSERT_EQ(a.arrays().size(), b.arrays().size()) << what;
  for (const auto& [name, arr] : a.arrays()) {
    const DenseArray& other = b.at(name);
    ASSERT_EQ(arr.data().size(), other.data().size()) << what << " " << name;
    EXPECT_EQ(std::memcmp(arr.data().data(), other.data().data(),
                          arr.data().size() * sizeof(double)),
              0)
        << what << ": array " << name << " differs between engines";
  }
}

/// Each test gets a private cache dir via $INLTC_CACHE_DIR and a
/// cleared handle LRU, so cache-behavior assertions see exactly the
/// compiles they caused.
class NativeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::string why;
    if (!native_available(&why)) GTEST_SKIP() << why;
    const char* old = std::getenv("INLTC_CACHE_DIR");
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    // The pid keeps dirs disjoint across the parallel ctest processes
    // (gtest_discover_tests runs each test in its own process, and a
    // sibling's TearDown must not sweep a dir we are compiling into).
    static int counter = 0;
    dir_ = (fs::temp_directory_path() /
            ("inltc-test-" + std::to_string(::getpid()) + "-" +
             std::to_string(counter++)))
               .string();
    fs::create_directories(dir_);
    ::setenv("INLTC_CACHE_DIR", dir_.c_str(), 1);
    native_lru_clear();
  }

  void TearDown() override {
    if (had_old_)
      ::setenv("INLTC_CACHE_DIR", old_.c_str(), 1);
    else
      ::unsetenv("INLTC_CACHE_DIR");
    native_lru_clear();
    if (!dir_.empty()) {
      std::error_code ec;
      fs::remove_all(dir_, ec);
    }
  }

  std::string dir_;
  std::string old_;
  bool had_old_ = false;
};

void expect_native_matches_vm(const Program& p,
                              const std::map<std::string, i64>& params,
                              FillKind fill, unsigned seed,
                              const std::string& what) {
  Memory proto;
  declare_arrays(p, params, proto);
  if (fill == FillKind::kSpd)
    fill_spd(proto, seed);
  else
    randomize(proto, seed);

  Memory native_mem = proto, vm_mem = proto;
  InterpOptions native_opts;
  native_opts.engine = ExecEngine::kNative;
  InterpOptions vm_opts;
  vm_opts.engine = ExecEngine::kVm;

  i64 fallbacks0 = Stats::global().value("exec.native.fallbacks");
  InterpStats native_st = interpret(p, params, native_mem, native_opts);
  ASSERT_EQ(Stats::global().value("exec.native.fallbacks"), fallbacks0)
      << what << ": expected a real native run, not a VM fallback";
  InterpStats vm_st = interpret(p, params, vm_mem, vm_opts);

  EXPECT_EQ(native_st.instances, vm_st.instances) << what;
  EXPECT_EQ(native_st.loop_iterations, vm_st.loop_iterations) << what;
  EXPECT_EQ(native_st.guard_failures, vm_st.guard_failures) << what;
  expect_bit_identical(native_mem, vm_mem, what);
}

void differential(const Program& p, const std::string& what,
                  std::map<std::string, i64> params = {{"N", 9}}) {
  for (unsigned seed : {1u, 2u, 3u}) {
    for (FillKind fill : {FillKind::kSpd, FillKind::kRandom}) {
      expect_native_matches_vm(p, params, fill, seed,
                               what + " seed=" + std::to_string(seed));
    }
  }
}

using NativeDifferential = NativeTest;

TEST_F(NativeDifferential, GalleryFig1) {
  differential(gallery::fig1_running_example(), "fig1");
}
TEST_F(NativeDifferential, GallerySimplifiedCholesky) {
  differential(gallery::simplified_cholesky(), "simplified_cholesky");
}
TEST_F(NativeDifferential, GalleryFig3PerfectNest) {
  differential(gallery::fig3_perfect_nest(), "fig3");
}
TEST_F(NativeDifferential, GalleryAugmentation) {
  differential(gallery::augmentation_example(), "augmentation");
}
TEST_F(NativeDifferential, GalleryCholesky) {
  differential(gallery::cholesky(), "cholesky");
}
TEST_F(NativeDifferential, GalleryCholeskyDistributed) {
  differential(gallery::simplified_cholesky_distributed(), "cholesky_dist");
}
TEST_F(NativeDifferential, GalleryLu) { differential(gallery::lu(), "lu"); }

TEST_F(NativeDifferential, TestdataCholesky) {
  differential(load_testdata("cholesky.loop"), "cholesky.loop");
}
TEST_F(NativeDifferential, TestdataSkewExample) {
  differential(load_testdata("skew_example.loop"), "skew_example.loop");
}
TEST_F(NativeDifferential, TestdataStencil) {
  differential(load_testdata("stencil.loop"), "stencil.loop");
}

TEST_F(NativeDifferential, SkewedStencil) {
  Program p = load_testdata("stencil.loop");
  IvLayout layout(p);
  DependenceSet deps = analyze_dependences(layout);
  IntMat m = loop_skew(layout, "J", "I", 1);
  CodegenResult res = generate_code(layout, deps, m);
  differential(res.program, "skewed stencil");
}

TEST_F(NativeDifferential, ScaledSkewedFig3DivisibilityGuards) {
  // Non-unimodular scaling: kDivisible guards and ceil/floor bounds
  // with den > 1 — the emitter's inltc_cdiv/fdiv/fmod paths.
  Program p = gallery::fig3_perfect_nest();
  IvLayout layout(p);
  DependenceSet deps = analyze_dependences(layout);
  IntMat m = mat_mul(loop_skew(layout, "I", "J", 1),
                     loop_scaling(layout, "J", 2));
  CodegenResult res = generate_code(layout, deps, m);
  differential(res.program, "scaled+skewed fig3");
}

TEST_F(NativeDifferential, GuardedStatements) {
  Program p = parse_program(R"(
param N
do I = 1, N
  do J = 1, N
    if ((I + J) mod 2 == 0)
      S1: A(I, J) = A(I, J) + 1.0
    endif
    if (I - J >= 0)
      S2: B(I - J) = B(I - J) + A(I, J)
    endif
  end
end
)");
  differential(p, "guarded");
}

TEST_F(NativeDifferential, InterchangedCholesky) {
  Program p = gallery::cholesky();
  IvLayout layout(p);
  DependenceSet deps = analyze_dependences(layout);
  IntMat m = loop_interchange(layout, "J", "L");
  CodegenResult res = generate_code(layout, deps, m);
  differential(res.program, "interchanged cholesky");
}

TEST_F(NativeDifferential, ZeroTripLoops) {
  // N=0/N=1 leave arrays undeclared: the kernel receives NULL base
  // pointers and must treat the never-executed accesses as non-events.
  Program p = gallery::fig3_perfect_nest();
  differential(p, "fig3 N=1", {{"N", 1}});
  differential(p, "fig3 N=0", {{"N", 0}});
}

TEST_F(NativeTest, VerifyEquivalenceThroughNativeEngine) {
  Program p = load_testdata("stencil.loop");
  IvLayout layout(p);
  DependenceSet deps = analyze_dependences(layout);
  IntMat m = loop_skew(layout, "J", "I", 1);
  CodegenResult res = generate_code(layout, deps, m);
  VerifyResult nat = verify_equivalence(p, res.program, {{"N", 12}},
                                        FillKind::kRandom, 1, 1e-9,
                                        ExecEngine::kNative);
  VerifyResult vm = verify_equivalence(p, res.program, {{"N", 12}},
                                       FillKind::kRandom, 1, 1e-9,
                                       ExecEngine::kVm);
  EXPECT_TRUE(nat.equivalent);
  EXPECT_TRUE(vm.equivalent);
  EXPECT_EQ(nat.max_diff, vm.max_diff);
  EXPECT_EQ(nat.src_instances, vm.src_instances);
}

// ---- runtime failure semantics (must throw, never fall back) ----

TEST_F(NativeTest, OutOfBoundsStillFailsLoudly) {
  Program p = parse_program(R"(
param N
do I = 1, N
  S1: A(I) = 1.0
end
)");
  Memory mem;
  mem.declare("A", {1}, {4});  // too small for N=5
  InterpOptions opts;
  opts.engine = ExecEngine::kNative;
  try {
    interpret(p, {{"N", 5}}, mem, opts);
    FAIL() << "expected out-of-bounds Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("out of bounds"), std::string::npos)
        << e.what();
  }
}

TEST_F(NativeTest, InstanceBudgetEnforced) {
  Program p = gallery::cholesky();
  Memory mem;
  declare_arrays(p, {{"N", 8}}, mem);
  fill_spd(mem, 1);
  InterpOptions opts;
  opts.engine = ExecEngine::kNative;
  opts.max_instances = 10;
  try {
    interpret(p, {{"N", 8}}, mem, opts);
    FAIL() << "expected budget Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("instance budget"), std::string::npos)
        << e.what();
  }
}

// ---- compile-cache contract ----

TEST_F(NativeTest, ColdCompileThenWarmHits) {
  Program p = gallery::simplified_cholesky();
  std::map<std::string, i64> params{{"N", 6}};
  Memory proto;
  declare_arrays(p, params, proto);
  fill_spd(proto, 1);
  InterpOptions opts;
  opts.engine = ExecEngine::kNative;

  StatsSnapshot s0 = Stats::global().snapshot();
  Memory m1 = proto;
  interpret(p, params, m1, opts);
  StatsSnapshot s1 = Stats::global().snapshot() - s0;
  EXPECT_EQ(s1.counter("exec.native.compiles"), 1) << "cold run must compile";

  // Second run, same process: the open handle is still in the LRU.
  Memory m2 = proto;
  interpret(p, params, m2, opts);
  StatsSnapshot s2 = Stats::global().snapshot() - s0;
  EXPECT_EQ(s2.counter("exec.native.compiles"), 1) << "warm run recompiled";
  EXPECT_GE(s2.counter("exec.native.lru_hits"), 1);

  // "New session": drop open handles, keep the disk cache.
  native_lru_clear();
  Memory m3 = proto;
  interpret(p, params, m3, opts);
  StatsSnapshot s3 = Stats::global().snapshot() - s0;
  EXPECT_EQ(s3.counter("exec.native.compiles"), 1)
      << "disk-cached kernel recompiled";
  EXPECT_GE(s3.counter("exec.native.disk_hits"), 1);

  expect_bit_identical(m1, m2, "warm");
  expect_bit_identical(m1, m3, "disk");
}

TEST_F(NativeTest, CacheDirOverrideIsHonored) {
  Program p = gallery::fig1_running_example();
  EXPECT_EQ(native_cache_dir(), dir_);
  std::string key = native_cache_key(p);
  Memory mem;
  declare_arrays(p, {{"N", 6}}, mem);
  randomize(mem, 1);
  InterpOptions opts;
  opts.engine = ExecEngine::kNative;
  interpret(p, {{"N", 6}}, mem, opts);
  EXPECT_TRUE(fs::exists(fs::path(dir_) / (key + ".so")))
      << "compiled kernel not in $INLTC_CACHE_DIR";
  EXPECT_TRUE(fs::exists(fs::path(dir_) / (key + ".c")))
      << "emitted source not kept beside the object";
}

TEST_F(NativeTest, CorruptedCacheEntryIsRecompiledNotTrusted) {
  Program p = gallery::fig1_running_example();
  std::map<std::string, i64> params{{"N", 6}};
  Memory proto;
  declare_arrays(p, params, proto);
  randomize(proto, 2);
  InterpOptions opts;
  opts.engine = ExecEngine::kNative;

  Memory m1 = proto;
  interpret(p, params, m1, opts);

  // Drop the open handle first — overwriting the backing file of a
  // live dlopen mapping is a SIGBUS — then replace the object with
  // garbage on a fresh inode.
  native_lru_clear();
  std::string so = dir_ + "/" + native_cache_key(p) + ".so";
  ASSERT_TRUE(fs::exists(so));
  fs::remove(so);
  {
    std::ofstream f(so, std::ios::binary);
    f << "this is not a shared object";
  }

  StatsSnapshot s0 = Stats::global().snapshot();
  Memory m2 = proto;
  interpret(p, params, m2, opts);  // must recompile, not trust the garbage
  StatsSnapshot d = Stats::global().snapshot() - s0;
  EXPECT_EQ(d.counter("exec.native.cache_bad"), 1);
  EXPECT_EQ(d.counter("exec.native.compiles"), 1);
  EXPECT_EQ(d.counter("exec.native.fallbacks"), 0);
  expect_bit_identical(m1, m2, "recompiled after corruption");
}

TEST_F(NativeTest, ConcurrentSessionsDontRaceTheCacheDir) {
  // Several threads hit the same empty cache with the same program:
  // atomic renames mean everyone ends with a working kernel and a
  // correct result, however the compile race resolves.
  Program p = gallery::simplified_cholesky();
  std::map<std::string, i64> params{{"N", 8}};
  Memory proto;
  declare_arrays(p, params, proto);
  fill_spd(proto, 3);

  Memory vm_mem = proto;
  InterpOptions vm_opts;
  vm_opts.engine = ExecEngine::kVm;
  interpret(p, params, vm_mem, vm_opts);

  constexpr int kThreads = 4;
  std::vector<Memory> mems(kThreads, proto);
  std::vector<std::string> errors(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      try {
        InterpOptions opts;
        opts.engine = ExecEngine::kNative;
        interpret(p, params, mems[t], opts);
      } catch (const std::exception& e) {
        errors[t] = e.what();
      }
    });
  }
  for (std::thread& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(errors[t].empty()) << "thread " << t << ": " << errors[t];
    expect_bit_identical(mems[t], vm_mem, "thread " + std::to_string(t));
  }
}

TEST_F(NativeTest, FallsBackToVmWithoutCompiler) {
  // Point the engine at a compiler that cannot exist: interpret() must
  // warn, fall back, and still produce the VM's exact result.
  ::setenv("INLTC_CC", "/nonexistent/inltc-no-such-cc", 1);
  Program p = gallery::simplified_cholesky();
  std::map<std::string, i64> params{{"N", 6}};
  Memory proto;
  declare_arrays(p, params, proto);
  fill_spd(proto, 1);

  std::string why;
  EXPECT_FALSE(native_available(&why));
  EXPECT_NE(why.find("no usable C compiler"), std::string::npos) << why;

  StatsSnapshot s0 = Stats::global().snapshot();
  Memory native_mem = proto, vm_mem = proto;
  InterpOptions opts;
  opts.engine = ExecEngine::kNative;
  InterpStats st = interpret(p, params, native_mem, opts);
  StatsSnapshot d = Stats::global().snapshot() - s0;
  EXPECT_EQ(d.counter("exec.native.fallbacks"), 1);
  EXPECT_EQ(d.counter("exec.native.compiles"), 0);

  opts.engine = ExecEngine::kVm;
  InterpStats vm_st = interpret(p, params, vm_mem, opts);
  EXPECT_EQ(st.instances, vm_st.instances);
  expect_bit_identical(native_mem, vm_mem, "fallback");
  ::unsetenv("INLTC_CC");
}

TEST_F(NativeTest, CacheKeyIsStableAndSourceSensitive) {
  Program a = gallery::simplified_cholesky();
  Program b = gallery::lu();
  EXPECT_EQ(native_cache_key(a), native_cache_key(a));
  EXPECT_NE(native_cache_key(a), native_cache_key(b));
  EXPECT_EQ(native_cache_key(a).size(), 64u);  // sha256 hex
}

TEST_F(NativeTest, EmittedSourceIsDeterministic) {
  Program p = gallery::cholesky();
  NativeKernelSource s1 = emit_native_c(p);
  NativeKernelSource s2 = emit_native_c(p);
  EXPECT_EQ(s1.code, s2.code);
  EXPECT_EQ(s1.arrays, s2.arrays);
  EXPECT_EQ(s1.params, s2.params);
  // The UF hash helpers and the restrict qualifier must be present —
  // they are what the bit-identity and aliasing contracts ride on.
  EXPECT_NE(s1.code.find("inltc_uf_unit"), std::string::npos);
  EXPECT_NE(s1.code.find("double* restrict"), std::string::npos);
  EXPECT_NE(s1.code.find("-ffp-contract=off"), std::string::npos);
}

}  // namespace
}  // namespace inlt
