// Differential suite: the bytecode VM (exec/vm.hpp) against the AST
// walker, bit for bit. Every gallery program, every tools/testdata/
// program and a set of transformed variants (skew, scaling with
// divisibility guards, distribution) runs under both engines on
// identical inputs across several seeds and both fill kinds; final
// memory must match to the last bit and InterpStats must be equal.
#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <sstream>

#include "codegen/generate.hpp"
#include "dependence/analyzer.hpp"
#include "exec/verify.hpp"
#include "exec/vm.hpp"
#include "ir/gallery.hpp"
#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "transform/transforms.hpp"

namespace inlt {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

Program load_testdata(const std::string& name) {
  return parse_program(read_file(std::string(INLT_TESTDATA_DIR) + "/" + name));
}

// Bitwise memory equality — max_abs_diff would treat -0.0 == 0.0 and
// miss NaNs; "bit-identical" means the raw doubles agree.
void expect_bit_identical(const Memory& a, const Memory& b,
                          const std::string& what) {
  ASSERT_EQ(a.arrays().size(), b.arrays().size()) << what;
  for (const auto& [name, arr] : a.arrays()) {
    const DenseArray& other = b.at(name);
    ASSERT_EQ(arr.data().size(), other.data().size()) << what << " " << name;
    EXPECT_EQ(std::memcmp(arr.data().data(), other.data().data(),
                          arr.data().size() * sizeof(double)),
              0)
        << what << ": array " << name << " differs between engines";
  }
}

void expect_engines_agree(const Program& p,
                          const std::map<std::string, i64>& params,
                          FillKind fill, unsigned seed,
                          const std::string& what) {
  Memory proto;
  declare_arrays(p, params, proto);
  if (fill == FillKind::kSpd)
    fill_spd(proto, seed);
  else
    randomize(proto, seed);

  Memory vm_mem = proto, walker_mem = proto;
  InterpOptions vm_opts;
  vm_opts.engine = ExecEngine::kVm;
  InterpOptions walker_opts;
  walker_opts.engine = ExecEngine::kAstWalker;
  InterpStats vm_st = interpret(p, params, vm_mem, vm_opts);
  InterpStats walker_st = interpret(p, params, walker_mem, walker_opts);

  EXPECT_EQ(vm_st.instances, walker_st.instances) << what;
  EXPECT_EQ(vm_st.loop_iterations, walker_st.loop_iterations) << what;
  EXPECT_EQ(vm_st.guard_failures, walker_st.guard_failures) << what;
  expect_bit_identical(vm_mem, walker_mem, what);
}

void differential(const Program& p, const std::string& what,
                  std::map<std::string, i64> params = {{"N", 9}}) {
  for (unsigned seed : {1u, 2u, 3u}) {
    for (FillKind fill : {FillKind::kSpd, FillKind::kRandom}) {
      expect_engines_agree(p, params, fill, seed,
                           what + " seed=" + std::to_string(seed));
    }
  }
}

TEST(VmDifferential, GalleryFig1) { differential(gallery::fig1_running_example(), "fig1"); }
TEST(VmDifferential, GallerySimplifiedCholesky) {
  differential(gallery::simplified_cholesky(), "simplified_cholesky");
}
TEST(VmDifferential, GalleryFig3PerfectNest) {
  differential(gallery::fig3_perfect_nest(), "fig3");
}
TEST(VmDifferential, GalleryAugmentation) {
  differential(gallery::augmentation_example(), "augmentation");
}
TEST(VmDifferential, GalleryCholesky) { differential(gallery::cholesky(), "cholesky"); }
TEST(VmDifferential, GalleryCholeskyDistributed) {
  differential(gallery::simplified_cholesky_distributed(), "cholesky_dist");
}
TEST(VmDifferential, GalleryLu) { differential(gallery::lu(), "lu"); }

TEST(VmDifferential, TestdataCholesky) {
  differential(load_testdata("cholesky.loop"), "cholesky.loop");
}
TEST(VmDifferential, TestdataSkewExample) {
  differential(load_testdata("skew_example.loop"), "skew_example.loop");
}
TEST(VmDifferential, TestdataStencil) {
  differential(load_testdata("stencil.loop"), "stencil.loop");
}

// Transformed programs exercise the codegen-only constructs: cover
// bounds, per-statement guards, singular loops from non-unimodular
// scaling (kDivisible guards), and skewed wavefronts.
TEST(VmDifferential, SkewedStencil) {
  Program p = load_testdata("stencil.loop");
  IvLayout layout(p);
  DependenceSet deps = analyze_dependences(layout);
  IntMat m = loop_skew(layout, "J", "I", 1);
  CodegenResult res = generate_code(layout, deps, m);
  differential(res.program, "skewed stencil");
}

TEST(VmDifferential, ScaledPerfectNestReconstructionLoops) {
  // Non-unimodular scaling: codegen adds single-iteration
  // reconstruction loops whose ceil/floor bounds encode the stride
  // condition — deeper nests with multi-term bounds.
  Program p = gallery::fig3_perfect_nest();
  IvLayout layout(p);
  DependenceSet deps = analyze_dependences(layout);
  IntMat m = mat_mul(loop_skew(layout, "I", "J", 1),
                     loop_scaling(layout, "J", 2));
  CodegenResult res = generate_code(layout, deps, m);
  int src_loops = 0, dst_loops = 0;
  auto count = [](const Program& prog, int& n) {
    walk(prog, [&](const Node& node, const std::vector<const Node*>&) {
      if (node.kind() == Node::Kind::kLoop) ++n;
    });
  };
  count(p, src_loops);
  count(res.program, dst_loops);
  EXPECT_GT(dst_loops, src_loops) << print_program(res.program);
  differential(res.program, "scaled+skewed fig3");
}

TEST(VmDifferential, GuardedStatements) {
  // Hand-written guards exercise the VM's kGuards path and the
  // per-access checked (non-hoisted) offset computation.
  Program p = parse_program(R"(
param N
do I = 1, N
  do J = 1, N
    if ((I + J) mod 2 == 0)
      S1: A(I, J) = A(I, J) + 1.0
    endif
    if (I - J >= 0)
      S2: B(I - J) = B(I - J) + A(I, J)
    endif
  end
end
)");
  differential(p, "guarded");
}

TEST(VmDifferential, ReversedInterchangedCholesky) {
  Program p = gallery::cholesky();
  IvLayout layout(p);
  DependenceSet deps = analyze_dependences(layout);
  // Interchange the J/L pair of the update nest (legal for cholesky).
  IntMat m = loop_interchange(layout, "J", "L");
  CodegenResult res = generate_code(layout, deps, m);
  differential(res.program, "interchanged cholesky");
}

// Zero-trip loops leave arrays undeclared; both engines must treat a
// never-executed access as a non-event.
TEST(VmDifferential, ZeroTripLoops) {
  Program p = gallery::fig3_perfect_nest();
  differential(p, "fig3 N=1", {{"N", 1}});
  differential(p, "fig3 N=0", {{"N", 0}});
}

TEST(Vm, DeclareArraysShapesMatchSubscriptExtremes) {
  // stencil: U(I,J), U(I-1,J), U(I,J-1) over I,J in 1..N.
  Memory mem;
  declare_arrays(load_testdata("stencil.loop"), {{"N", 6}}, mem);
  ASSERT_TRUE(mem.has("U"));
  EXPECT_EQ(mem.at("U").lo(0), 0);
  EXPECT_EQ(mem.at("U").hi(0), 6);
  EXPECT_EQ(mem.at("U").lo(1), 0);
  EXPECT_EQ(mem.at("U").hi(1), 6);
}

TEST(Vm, ProbeRangesRespectGuards) {
  Program p = parse_program(R"(
param N
do I = 1, N
  if (I - 3 >= 0)
    S1: A(I) = 1.0
  endif
end
)");
  auto ranges = VmProgram::probe_ranges(p, {{"N", 5}});
  ASSERT_TRUE(ranges.count("A"));
  EXPECT_EQ(ranges.at("A").lo[0], 3);
  EXPECT_EQ(ranges.at("A").hi[0], 5);
}

TEST(Vm, BoundsChecksHoistedForUnguardedStatements) {
  Program p = gallery::cholesky();
  Memory mem;
  declare_arrays(p, {{"N", 4}}, mem);
  VmProgram vm(p, {{"N", 4}}, mem);
  EXPECT_GT(vm.hoisted_accesses(), 0);
  EXPECT_EQ(vm.checked_accesses(), 0);  // cholesky has no guards
}

TEST(Vm, GuardedStatementsKeepPerAccessChecks) {
  Program p = parse_program(R"(
param N
do I = 1, N
  if (I - 3 >= 0)
    S1: A(I) = A(I - 1) + 1.0
  endif
end
)");
  Memory mem;
  declare_arrays(p, {{"N", 5}}, mem);
  VmProgram vm(p, {{"N", 5}}, mem);
  EXPECT_EQ(vm.hoisted_accesses(), 0);
  EXPECT_GT(vm.checked_accesses(), 0);
}

TEST(Vm, OutOfBoundsStillFailsLoudly) {
  // A deliberately wrong program: A sized for 1..N but read at A(I+1).
  Program p = parse_program(R"(
param N
do I = 1, N
  S1: A(I) = 1.0
end
)");
  Memory mem;
  mem.declare("A", {1}, {4});  // too small for N=5
  InterpOptions opts;
  opts.engine = ExecEngine::kVm;
  EXPECT_THROW(interpret(p, {{"N", 5}}, mem, opts), Error);
}

TEST(Vm, InstanceBudgetEnforcedIdentically) {
  Program p = gallery::cholesky();
  for (ExecEngine engine : {ExecEngine::kVm, ExecEngine::kAstWalker}) {
    Memory mem;
    declare_arrays(p, {{"N", 8}}, mem);
    InterpOptions opts;
    opts.engine = engine;
    opts.max_instances = 10;
    EXPECT_THROW(interpret(p, {{"N", 8}}, mem, opts), Error);
  }
}

TEST(Vm, ObserverForcesWalkerFallback) {
  Program p = gallery::simplified_cholesky();
  Memory mem;
  declare_arrays(p, {{"N", 4}}, mem);
  fill_spd(mem, 1);
  int events = 0;
  InterpOptions opts;
  opts.engine = ExecEngine::kVm;  // observer must override this
  opts.observer = [&](const AccessEvent&) { ++events; };
  interpret(p, {{"N", 4}}, mem, opts);
  EXPECT_GT(events, 0);
}

TEST(Vm, RebindRunsAgainstFreshMemory) {
  Program p = gallery::cholesky();
  std::map<std::string, i64> params{{"N", 6}};
  Memory a;
  declare_arrays(p, params, a);
  fill_spd(a, 7);
  Memory b = a;

  VmProgram vm(p, params, a);
  vm.run();
  vm.rebind(b);
  vm.run();
  expect_bit_identical(a, b, "rebind");
}

TEST(Vm, VerifyEquivalenceAgreesAcrossEngines) {
  Program p = load_testdata("stencil.loop");
  IvLayout layout(p);
  DependenceSet deps = analyze_dependences(layout);
  IntMat m = loop_skew(layout, "J", "I", 1);
  CodegenResult res = generate_code(layout, deps, m);
  VerifyResult vm_r = verify_equivalence(p, res.program, {{"N", 12}},
                                         FillKind::kRandom, 1, 1e-9,
                                         ExecEngine::kVm);
  VerifyResult ast_r = verify_equivalence(p, res.program, {{"N", 12}},
                                          FillKind::kRandom, 1, 1e-9,
                                          ExecEngine::kAstWalker);
  EXPECT_TRUE(vm_r.equivalent);
  EXPECT_TRUE(ast_r.equivalent);
  EXPECT_EQ(vm_r.max_diff, ast_r.max_diff);
  EXPECT_EQ(vm_r.src_instances, ast_r.src_instances);
}

TEST(Vm, VerifyReferenceCapturesExecutionErrors) {
  Program src = parse_program(R"(
param N
do I = 1, N
  S1: A(I) = 1.0
end
)");
  // "Transformed" program indexing past the source's sizing.
  Program bad = parse_program(R"(
param N
do I = 1, N
  S1: A(I + 1) = 1.0
end
)");
  VerifyReference ref(src, {{"N", 5}});
  VerifyResult r = ref.check(bad);
  EXPECT_FALSE(r.equivalent);
  EXPECT_FALSE(r.error.empty());
}

// Satellite regression: absurd parameter values must raise
// OverflowError from checked arithmetic, not wrap into a bogus (or
// negative) allocation size / flat offset.
TEST(Vm, HugeParameterOverflowsLoudly) {
  Program p = parse_program(R"(
param N
do I = 1, N
  S1: A(3000000000 * I) = 1.0
end
)");
  Memory mem;
  EXPECT_THROW(declare_arrays(p, {{"N", 4000000000}}, mem), OverflowError);
}

TEST(Vm, NearOverflowExtentFailsInArraySizing) {
  // hi - lo + 1 itself overflows i64: the checked ctor must throw.
  EXPECT_THROW(DenseArray({-4611686018427387904}, {4611686018427387904}),
               OverflowError);
}

TEST(Vm, ProbeCollapseMatchesFullIteration) {
  // Leaf-collapse must not change declared shapes: compare probe
  // ranges against a brute-force walk for a skewed (negative stride)
  // subscript pattern.
  Program p = parse_program(R"(
param N
do I = 1, N
  do J = 1, N
    S1: A(2 * I - 3 * J) = A(3 * J - 2 * I) + 1.0
  end
end
)");
  auto ranges = VmProgram::probe_ranges(p, {{"N", 7}});
  ASSERT_TRUE(ranges.count("A"));
  EXPECT_EQ(ranges.at("A").lo[0], 2 * 1 - 3 * 7);
  EXPECT_EQ(ranges.at("A").hi[0], 3 * 7 - 2 * 1);
}

}  // namespace
}  // namespace inlt
