// Partitioned parallel execution (exec/parallel.hpp) against the
// serial VM, bit for bit: a doall level writes disjoint locations per
// iteration, so chunked execution must leave Memory memcmp-identical
// to a serial run at any thread count, with InterpStats summing to the
// serial stats exactly. Kernels × seeds × thread counts, plus the
// fallback, error-propagation and pool-reuse paths.
#include <gtest/gtest.h>

#include <cstring>
#include <initializer_list>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "codegen/generate.hpp"
#include "dependence/analyzer.hpp"
#include "exec/parallel.hpp"
#include "exec/verify.hpp"
#include "exec/vm.hpp"
#include "ir/gallery.hpp"
#include "ir/parser.hpp"
#include "support/check.hpp"
#include "transform/parallel.hpp"
#include "transform/transforms.hpp"

namespace inlt {
namespace {

void expect_bit_identical(const Memory& a, const Memory& b,
                          const std::string& what) {
  ASSERT_EQ(a.arrays().size(), b.arrays().size()) << what;
  for (const auto& [name, arr] : a.arrays()) {
    const DenseArray& other = b.at(name);
    ASSERT_EQ(arr.data().size(), other.data().size()) << what << " " << name;
    EXPECT_EQ(std::memcmp(arr.data().data(), other.data().data(),
                          arr.data().size() * sizeof(double)),
              0)
        << what << ": array " << name << " differs from the serial run";
  }
}

struct Kernel {
  std::string name;
  Program program;
  std::vector<std::string> partition;
};

// Test corpus: source nests with their doall partitions, plus the
// skewed-stencil wavefront (sequential time loop over a chunked inner
// doall — the schedule that exercises the per-activation barriers).
std::vector<Kernel> kernels() {
  std::vector<Kernel> out;
  for (auto [name, p] : std::initializer_list<std::pair<const char*, Program>>{
           {"cholesky", gallery::cholesky()}, {"lu", gallery::lu()}}) {
    IvLayout layout(p);
    DependenceSet deps = analyze_dependences(layout);
    ParallelSchedule s = source_parallel_schedule(layout, deps);
    EXPECT_FALSE(s.partition.empty());
    out.push_back({name, p, s.partition});
  }
  {
    Program p = parse_program(R"(
param N
do I = 1, N
  do J = 1, N
    S1: U(I, J) = U(I - 1, J) + U(I, J - 1)
  end
end
)");
    IvLayout layout(p);
    DependenceSet deps = analyze_dependences(layout);
    IntMat m = loop_skew(layout, "I", "J", 1);
    CodegenResult gen = generate_code(layout, deps, m);
    AstRecovery rec = recover_ast(layout, m);
    ParallelSchedule s = analyze_target_parallelism(layout, deps, m, rec);
    EXPECT_EQ(s.partition, (std::vector<std::string>{"J"}));
    EXPECT_TRUE(s.wavefront);
    out.push_back({"stencil_wavefront", gen.program, s.partition});
  }
  return out;
}

void expect_parallel_matches_serial(const Kernel& k,
                                    const std::map<std::string, i64>& params,
                                    FillKind fill, unsigned seed,
                                    int threads) {
  Memory proto;
  declare_arrays(k.program, params, proto);
  if (fill == FillKind::kSpd)
    fill_spd(proto, seed);
  else
    randomize(proto, seed);

  Memory serial_mem = proto;
  InterpStats serial = interpret(k.program, params, serial_mem, {});

  Memory par_mem = proto;
  InterpOptions opts;
  opts.num_threads = threads;
  opts.partition = k.partition;
  InterpStats par = interpret(k.program, params, par_mem, opts);

  std::string what = k.name + " seed " + std::to_string(seed) + " threads " +
                     std::to_string(threads);
  EXPECT_EQ(par.instances, serial.instances) << what;
  EXPECT_EQ(par.loop_iterations, serial.loop_iterations) << what;
  EXPECT_EQ(par.guard_failures, serial.guard_failures) << what;
  expect_bit_identical(par_mem, serial_mem, what);
}

TEST(ParallelExec, BitIdenticalAcrossThreadsSeedsKernels) {
  for (const Kernel& k : kernels())
    for (unsigned seed : {1u, 2u})
      for (int threads : {1, 2, 8})
        expect_parallel_matches_serial(k, {{"N", 17}}, FillKind::kSpd, seed,
                                       threads);
}

TEST(ParallelExec, RandomFillAndOddSizes) {
  // Sizes that don't divide evenly across 8 workers, including fewer
  // iterations than workers (empty chunks).
  for (const Kernel& k : kernels())
    for (i64 n : {1, 3, 7, 13})
      expect_parallel_matches_serial(k, {{"N", n}}, FillKind::kRandom, 5, 8);
}

TEST(ParallelExec, ZeroTripPartitionedLoop) {
  // N = 0: every activation of every loop is zero-trip; all workers
  // must skip consistently without deadlocking on the exit barrier.
  for (const Kernel& k : kernels())
    expect_parallel_matches_serial(k, {{"N", 0}}, FillKind::kRandom, 1, 4);
}

TEST(ParallelExec, SerialFallbackWithoutPartition) {
  // No partition: interpret() must run serially and still agree.
  Program p = gallery::cholesky();
  std::map<std::string, i64> params{{"N", 9}};
  Memory proto;
  declare_arrays(p, params, proto);
  fill_spd(proto, 1);
  Memory a = proto, b = proto;
  InterpStats serial = interpret(p, params, a, {});
  InterpOptions opts;
  opts.num_threads = 8;  // threads without a partition: serial path
  InterpStats par = interpret(p, params, b, opts);
  EXPECT_EQ(par.instances, serial.instances);
  expect_bit_identical(a, b, "fallback");
}

TEST(ParallelExec, PartitionNamingNoLoopFallsBack) {
  Program p = gallery::cholesky();
  std::map<std::string, i64> params{{"N", 9}};
  Memory proto;
  declare_arrays(p, params, proto);
  fill_spd(proto, 1);
  Memory a = proto, b = proto;
  InterpStats serial = interpret(p, params, a, {});
  InterpStats par =
      run_partitioned(p, params, b, {"NOSUCHLOOP"}, 8, InterpOptions{});
  EXPECT_EQ(par.instances, serial.instances);
  expect_bit_identical(a, b, "no-such-loop fallback");
}

TEST(ParallelExec, WorkerErrorAbortsTeamAndPropagates) {
  // Shrink an array below what the program touches: some worker hits
  // the bounds check mid-chunk, aborts the barrier, and the original
  // error (not the abort echo) reaches the caller.
  Program p = parse_program(R"(
param N
do T = 1, 3
  do I = 1, N
    S1: A(I) = A(I) + 1.0
  end
end
)");
  std::map<std::string, i64> params{{"N", 64}};
  Memory mem;
  mem.declare("A", {1}, {32});  // program writes A(1..64)
  try {
    run_partitioned(p, params, mem, {"I"}, 4, InterpOptions{});
    FAIL() << "expected an out-of-bounds error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("out of bounds"), std::string::npos)
        << e.what();
    EXPECT_EQ(std::string(e.what()).find(ExecBarrier::aborted_message()),
              std::string::npos)
        << "abort echo leaked instead of the original error: " << e.what();
  }
}

TEST(ParallelExec, PoolReuseAcrossRunsAndWidths) {
  // The shared pool persists and regrows; alternating widths across
  // runs must stay correct (stale round state would hang or corrupt).
  Program p = gallery::lu();
  IvLayout layout(p);
  DependenceSet deps = analyze_dependences(layout);
  ParallelSchedule s = source_parallel_schedule(layout, deps);
  Kernel k{"lu", p, s.partition};
  for (int threads : {2, 8, 3, 8, 2})
    expect_parallel_matches_serial(k, {{"N", 13}}, FillKind::kSpd, 9, threads);
}

TEST(ParallelExec, BarrierAbortReleasesWaiters) {
  ExecBarrier b(2);
  b.abort();
  EXPECT_THROW(b.arrive_and_wait(), Error);
}

TEST(ParallelExec, VerifyEquivalenceWithExecPlan) {
  // The plumbed verify path: parallel execution must not change
  // verification verdicts.
  Program p = parse_program(R"(
param N
do I = 1, N
  do J = 1, N
    S1: U(I, J) = U(I - 1, J) + U(I, J - 1)
  end
end
)");
  IvLayout layout(p);
  DependenceSet deps = analyze_dependences(layout);
  IntMat m = loop_skew(layout, "I", "J", 1);
  CodegenResult gen = generate_code(layout, deps, m);
  AstRecovery rec = recover_ast(layout, m);
  ParallelSchedule s = analyze_target_parallelism(layout, deps, m, rec);

  ExecPlan plan;
  plan.threads = 8;
  plan.target_partition = s.partition;
  VerifyResult r =
      verify_equivalence(p, gen.program, {{"N", 20}}, FillKind::kRandom, 1,
                         1e-9, ExecEngine::kVm, plan);
  EXPECT_TRUE(r.equivalent) << r.to_string();

  VerifyReference ref(p, {{"N", 20}}, FillKind::kRandom, 1, 1e-9,
                      ExecEngine::kVm, plan);
  EXPECT_TRUE(ref.check(gen.program).equivalent);
  EXPECT_TRUE(ref.check(gen.program, s.partition).equivalent);
  // A genuinely different program must still fail under the plan.
  Program other = parse_program(R"(
param N
do I = 1, N
  do J = 1, N
    S1: U(I, J) = U(I - 1, J) + 2.0
  end
end
)");
  EXPECT_FALSE(ref.check(other, {"J"}).equivalent);
}

}  // namespace
}  // namespace inlt
