// The trace-based dependence-order oracle.
#include <gtest/gtest.h>

#include "codegen/generate.hpp"
#include "exec/trace.hpp"
#include "ir/gallery.hpp"
#include "ir/parser.hpp"
#include "transform/completion.hpp"
#include "transform/transforms.hpp"

namespace inlt {
namespace {

TEST(Trace, IdentityPasses) {
  Program p = gallery::cholesky();
  TraceCheckResult r = check_dependence_order(p, p, {{"N", 5}});
  EXPECT_TRUE(r.ok) << r.diagnosis;
}

TEST(Trace, LeftLookingCholeskyPreservesOrders) {
  Program p = gallery::cholesky();
  IvLayout layout(p);
  DependenceSet deps = analyze_dependences(layout);
  IntVec first(7, 0);
  first[layout.loop_position("L")] = 1;
  IntMat m = complete_transformation(layout, deps, {first}).matrix;
  Program t = generate_code(layout, deps, m).program;
  TraceCheckResult r = check_dependence_order(p, t, {{"N", 5}});
  EXPECT_TRUE(r.ok) << r.diagnosis;
}

TEST(Trace, SkewExamplePreservesOrders) {
  Program p = gallery::augmentation_example();
  IvLayout layout(p);
  DependenceSet deps = analyze_dependences(layout);
  Program t =
      generate_code(layout, deps, loop_skew(layout, "I", "J", -1)).program;
  TraceCheckResult r = check_dependence_order(p, t, {{"N", 6}});
  EXPECT_TRUE(r.ok) << r.diagnosis;
}

TEST(Trace, DetectsReversedRecurrence) {
  Program a = parse_program(R"(
param N
do I = 1, N
  S1: A(I) = A(I - 1) + 1.0
end
)");
  // Same statement instances, reversed order: memory-diff would catch
  // it too, but the trace oracle names the first bad cell.
  Program b = parse_program(R"(
param N
do I = -N, -1
  S1: A(-I) = A(-I - 1) + 1.0
end
)");
  TraceCheckResult r = check_dependence_order(a, b, {{"N", 4}});
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.diagnosis.find("read"), std::string::npos) << r.diagnosis;
}

TEST(Trace, DetectsSwappedWriters) {
  // Two statements writing the same cell in different orders: the
  // final value is the same constant, so memory comparison passes —
  // only the trace oracle sees the output-dependence violation.
  Program a = parse_program(R"(
param N
do I = 1, N
  S1: A(I) = 1.0
  S2: A(I) = 1.0
end
)");
  Program b = parse_program(R"(
param N
do I = 1, N
  S2: A(I) = 1.0
  S1: A(I) = 1.0
end
)");
  TraceCheckResult r = check_dependence_order(a, b, {{"N", 3}});
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.diagnosis.find("write order"), std::string::npos)
      << r.diagnosis;
}

TEST(Trace, WavefrontSkewPreservesOrders) {
  Program p = parse_program(R"(
param N
do I = 1, N
  do J = 1, N
    S1: U(I, J) = U(I - 1, J) + U(I, J - 1)
  end
end
)");
  IvLayout layout(p);
  DependenceSet deps = analyze_dependences(layout);
  Program t =
      generate_code(layout, deps, loop_skew(layout, "I", "J", 1)).program;
  TraceCheckResult r = check_dependence_order(p, t, {{"N", 7}});
  EXPECT_TRUE(r.ok) << r.diagnosis;
}

}  // namespace
}  // namespace inlt
