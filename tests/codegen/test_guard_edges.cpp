// Guard edge cases for codegen + simplify: singular-loop guards under
// zero-trip bounds, negative-step (reversed) loops, and divisibility
// guards from scaling — each cross-checked against the source on the
// VM, including the parameter values where loops collapse or vanish.
#include <gtest/gtest.h>

#include "codegen/generate.hpp"
#include "codegen/simplify.hpp"
#include "exec/verify.hpp"
#include "ir/gallery.hpp"
#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "transform/transforms.hpp"

namespace inlt {
namespace {

// Interpret on the VM and return the stats (arrays declared and
// filled the same way verify_equivalence fills its source side).
InterpStats vm_stats(const Program& p, i64 n) {
  Memory mem;
  const std::map<std::string, i64> params = {{"N", n}};
  declare_arrays(p, params, mem);
  fill_spd(mem, 1);
  InterpOptions io;
  io.engine = ExecEngine::kVm;
  return interpret(p, params, mem, io);
}

void expect_equivalent(const Program& src, const Program& dst, i64 n,
                       FillKind fill = FillKind::kRandom) {
  VerifyResult v = verify_equivalence(src, dst, {{"N", n}}, fill,
                                      /*seed=*/1, /*tolerance=*/1e-9,
                                      ExecEngine::kVm);
  EXPECT_TRUE(v.equivalent)
      << "N=" << n << ": " << v.to_string() << "\n" << print_program(dst);
}

TEST(GuardEdges, SingularGuardSurvivesMinimalAndZeroTripSizes) {
  // §5.5's skewed example: S1 lives under a singular (guarded
  // single-iteration) loop. At N=1 the outer loop collapses to one
  // iteration and the guard must still fire S1 exactly once; the raw
  // and the simplified programs must both agree with the source.
  Program src = gallery::augmentation_example();
  IvLayout layout(src);
  DependenceSet deps = analyze_dependences(layout);
  CodegenResult res =
      generate_code(layout, deps, loop_skew(layout, "I", "J", -1));
  Program simp = simplify_program(res.program);
  for (i64 n : {1, 2, 3, 7}) {
    expect_equivalent(src, res.program, n);
    expect_equivalent(src, simp, n);
  }
  // The singular guard really is evaluated and suppresses instances:
  // for N >= 2 the wrapper's I >= 0 guard fails on every negative I.
  InterpStats st = vm_stats(simp, 7);
  EXPECT_GT(st.guard_failures, 0);
  // ...but simplify must not leave more guard work than the guard the
  // paper's listing keeps (one failure per suppressed outer value).
  EXPECT_EQ(st.guard_failures, 6);
}

TEST(GuardEdges, ReversedLoopRunsNegativeStepBounds) {
  // A dependence-free nest: reversing either loop is legal and the
  // generated bounds run through negative values. The VM must execute
  // the same instance set in the new order, including N=1 where the
  // reversed range is a single (negative) value.
  Program src = parse_program(R"(param N
do I = 1, N
  do J = 1, N
    S1: C(I, J) = A(J, I) + f(I, J)
  end
end
)");
  IvLayout layout(src);
  DependenceSet deps = analyze_dependences(layout);
  const std::vector<std::string> vars = {"I", "J"};
  for (const std::string& var : vars) {
    CodegenResult res =
        generate_code(layout, deps, loop_reversal(layout, var));
    Program simp = simplify_program(res.program);
    // The reversed loop's range is negative: its lower bound mentions
    // -N (the reversed image of the original upper bound).
    EXPECT_NE(print_program(simp).find("-N"), std::string::npos)
        << print_program(simp);
    for (i64 n : {1, 2, 5}) {
      expect_equivalent(src, res.program, n);
      expect_equivalent(src, simp, n);
    }
  }
}

TEST(GuardEdges, ReversedSingularGuardCombination) {
  // Reversal composed with the §5.5 skew: the singular wrapper's guard
  // now decides against a loop that steps downward. Skip silently if
  // the composition is illegal for this nest — the point is that
  // whenever codegen accepts it, execution must match.
  Program src = gallery::augmentation_example();
  IvLayout layout(src);
  DependenceSet deps = analyze_dependences(layout);
  IntMat m = loop_skew(layout, "I", "J", -1);
  IntMat rev = loop_reversal(layout, "J");
  IntMat composed = mat_mul(rev, m);
  if (!check_legality(layout, deps, composed).legal()) GTEST_SKIP();
  CodegenResult res = generate_code(layout, deps, composed);
  Program simp = simplify_program(res.program);
  for (i64 n : {1, 2, 5}) {
    expect_equivalent(src, res.program, n);
    expect_equivalent(src, simp, n);
  }
}

TEST(GuardEdges, ZeroTripInnerLoopPreservedByInterchange) {
  // A triangular inner loop that is zero-trip at its last outer value
  // (and everywhere when N = 1). Interchange must keep the empty
  // iteration sets empty — guards and bounds, not dropped instances.
  Program src = parse_program(R"(param N
do I = 1, N
  do J = I + 1, N
    S1: A(I, J) = A(J, I) + f(I, J)
  end
end
)");
  IvLayout layout(src);
  DependenceSet deps = analyze_dependences(layout);
  IntMat swap = loop_interchange(layout, "I", "J");
  ASSERT_TRUE(check_legality(layout, deps, swap).legal());
  CodegenResult res = generate_code(layout, deps, swap);
  Program simp = simplify_program(res.program);
  for (i64 n : {1, 2, 3, 6}) {
    expect_equivalent(src, res.program, n);
    expect_equivalent(src, simp, n);
  }
  // N=1: the whole nest is zero-trip on both sides.
  InterpStats st = vm_stats(simp, 1);
  EXPECT_EQ(st.instances, 0);
}

TEST(GuardEdges, ScalingDivisibilityVmChecked) {
  // Scaling stretches the lattice: the generated outer loop runs over
  // the scaled range and divisibility is enforced by a singular inner
  // loop (ceil(I,3)..floor(I,3)) that is zero-trip off the lattice —
  // it must keep exactly the original instances, checked at sizes
  // where the last outer value is and is not a multiple of the factor.
  Program src = parse_program(R"(param N
do I = 1, N
  S1: B(I) = B(I) + f(I)
end
)");
  IvLayout layout(src);
  DependenceSet deps = analyze_dependences(layout);
  CodegenResult res = generate_code(layout, deps, loop_scaling(layout, "I", 3));
  Program simp = simplify_program(res.program);
  for (i64 n : {1, 2, 3, 4, 9, 10}) {
    expect_equivalent(src, res.program, n);
    expect_equivalent(src, simp, n);
    // Same instance count as the source: the singular loop admits
    // exactly the multiples of 3 in the stretched range.
    EXPECT_EQ(vm_stats(simp, n).instances, n);
  }
  // The stretched range really is walked: the outer loop visits
  // 3N - 2 values but only N of them enter the zero-trip filter.
  InterpStats st = vm_stats(res.program, 9);
  EXPECT_GT(st.loop_iterations, 2 * st.instances);
}

}  // namespace
}  // namespace inlt
