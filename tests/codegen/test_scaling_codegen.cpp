// Loop scaling through code generation: non-unimodular N_S handled by
// single-iteration reconstruction loops whose ceil/floor bounds encode
// the stride condition (§4.1's scaling + §5's machinery).
#include <gtest/gtest.h>

#include "codegen/generate.hpp"
#include "codegen/simplify.hpp"
#include "exec/verify.hpp"
#include "ir/gallery.hpp"
#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "transform/transforms.hpp"

namespace inlt {
namespace {

TEST(ScalingCodegen, PerfectNestScaleInner) {
  Program p = gallery::fig3_perfect_nest();
  IvLayout layout(p);
  DependenceSet deps = analyze_dependences(layout);
  IntMat m = loop_scaling(layout, "J", 2);
  CodegenResult res = generate_code(layout, deps, m);
  for (i64 n : {1, 2, 5, 9}) {
    VerifyResult v = verify_equivalence(p, res.program, {{"N", n}});
    EXPECT_TRUE(v.equivalent) << "N=" << n << ": " << v.to_string() << "\n"
                              << print_program(res.program);
  }
}

TEST(ScalingCodegen, ImperfectNestScaleOuter) {
  Program p = gallery::simplified_cholesky();
  IvLayout layout(p);
  DependenceSet deps = analyze_dependences(layout);
  IntMat m = loop_scaling(layout, "I", 3);
  CodegenResult res = generate_code(layout, deps, m);
  for (i64 n : {1, 2, 4, 7}) {
    VerifyResult v = verify_equivalence(p, res.program, {{"N", n}});
    EXPECT_TRUE(v.equivalent) << "N=" << n << ": " << v.to_string() << "\n"
                              << print_program(res.program);
  }
}

TEST(ScalingCodegen, ScaleComposedWithSkew) {
  // Scaling by 2 then skewing by the scaled loop: a genuinely
  // non-unimodular composite.
  Program p = gallery::fig3_perfect_nest();
  IvLayout layout(p);
  DependenceSet deps = analyze_dependences(layout);
  IntMat m = mat_mul(loop_skew(layout, "I", "J", 1),
                     loop_scaling(layout, "J", 2));
  CodegenResult res = generate_code(layout, deps, m);
  for (i64 n : {1, 3, 6}) {
    VerifyResult v = verify_equivalence(p, res.program, {{"N", n}});
    EXPECT_TRUE(v.equivalent) << "N=" << n << ": " << v.to_string() << "\n"
                              << print_program(res.program);
  }
}

TEST(ScalingCodegen, ReconstructionLoopShapes) {
  Program p = gallery::fig3_perfect_nest();
  IvLayout layout(p);
  DependenceSet deps = analyze_dependences(layout);
  IntMat m = loop_scaling(layout, "J", 2);
  CodegenResult res = generate_code(layout, deps, m);
  std::string text = print_program(res.program);
  // A fresh reconstruction loop with ceil/floor-of-2 bounds wraps the
  // statement.
  EXPECT_NE(text.find("ceil("), std::string::npos) << text;
  EXPECT_NE(text.find(", 2)"), std::string::npos) << text;
  // It executes exactly one iteration on even target points and zero
  // on odd ones: instance counts already checked by verification; also
  // check the loop nest depth grew by one.
  const Node* n = res.program.roots()[0].get();
  int depth = 0;
  while (n->is_loop()) {
    ++depth;
    n = n->children()[0].get();
  }
  EXPECT_EQ(depth, 3);  // I, scaled J, reconstruction loop
}

TEST(ScalingCodegen, ScalingAugmentationInterplay) {
  // §5.4's skew (which needs augmentation for S1) composed with a
  // scaling of J: both mechanisms at once.
  Program p = gallery::augmentation_example();
  IvLayout layout(p);
  DependenceSet deps = analyze_dependences(layout);
  IntMat m = mat_mul(loop_scaling(layout, "J", 2),
                     loop_skew(layout, "I", "J", -1));
  CodegenResult res = generate_code(layout, deps, m);
  for (i64 n : {1, 2, 5}) {
    VerifyResult v =
        verify_equivalence(p, res.program, {{"N", n}}, FillKind::kRandom);
    EXPECT_TRUE(v.equivalent) << "N=" << n << ": " << v.to_string() << "\n"
                              << print_program(res.program);
  }
}

}  // namespace
}  // namespace inlt
