// Pipeline coverage beyond the paper's two-level examples: statements
// at three nesting depths, multi-root programs, and compositions.
#include <gtest/gtest.h>

#include "codegen/generate.hpp"
#include "codegen/simplify.hpp"
#include "exec/trace.hpp"
#include "exec/verify.hpp"
#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "transform/completion.hpp"
#include "transform/transforms.hpp"

namespace inlt {
namespace {

Program three_level() {
  return parse_program(R"(
param N
do I = 1, N
  S1: X(I) = X(I - 1) + 1.0
  do J = 1, N
    S2: Y(I, J) = X(I) + Y(I - 1, J)
    do K = J, N
      S3: Z(I, J, K) = Y(I, J) * 0.5 + Z(I, J, K - 1)
    end
  end
end
)");
}

TEST(DeepNests, LayoutAndAnalysis) {
  Program p = three_level();
  IvLayout layout(p);
  // [I, e2@I, e1@I, J, e2@J, e1@J, K]
  EXPECT_EQ(layout.size(), 7);
  DependenceSet deps = analyze_dependences(layout);
  EXPECT_FALSE(deps.deps.empty());
  // S1's instance vectors pad J and K diagonally.
  EXPECT_EQ(layout.stmt_info("S1").padded_positions.size(), 2u);
  EXPECT_EQ(layout.stmt_info("S2").padded_positions.size(), 1u);
  EXPECT_TRUE(layout.stmt_info("S3").padded_positions.empty());
}

TEST(DeepNests, InnermostSkewVerifies) {
  Program p = three_level();
  IvLayout layout(p);
  DependenceSet deps = analyze_dependences(layout);
  IntMat m = loop_skew(layout, "K", "J", 2);
  CodegenResult res = generate_code(layout, deps, m);
  for (i64 n : {1, 2, 4}) {
    VerifyResult v =
        verify_equivalence(p, res.program, {{"N", n}}, FillKind::kRandom);
    EXPECT_TRUE(v.equivalent) << "N=" << n << ": " << v.to_string();
  }
}

TEST(DeepNests, MidLevelInterchangeWithReorder) {
  // Interchanging J and K requires nothing from S1/S2 (their K
  // coordinate is padded); compose and verify.
  Program p = three_level();
  IvLayout layout(p);
  DependenceSet deps = analyze_dependences(layout);
  IntMat m = loop_interchange(layout, "J", "K");
  try {
    CodegenResult res = generate_code(layout, deps, m);
    VerifyResult v =
        verify_equivalence(p, res.program, {{"N", 4}}, FillKind::kRandom);
    EXPECT_TRUE(v.equivalent) << v.to_string();
  } catch (const TransformError&) {
    // Rejection is acceptable (the recurrence on Y may forbid it);
    // what is not acceptable is a silent miscompile.
  }
}

TEST(DeepNests, CompletionHandlesThreeLevels) {
  Program p = three_level();
  IvLayout layout(p);
  DependenceSet deps = analyze_dependences(layout);
  CompletionResult res = complete_transformation(layout, deps, {});
  CodegenResult cg = generate_code(layout, deps, res.matrix);
  VerifyResult v =
      verify_equivalence(p, cg.program, {{"N", 4}}, FillKind::kRandom);
  EXPECT_TRUE(v.equivalent) << v.to_string();
  TraceCheckResult t = check_dependence_order(p, cg.program, {{"N", 4}});
  EXPECT_TRUE(t.ok) << t.diagnosis;
}

TEST(MultiRoot, AnalyzeAndTransform) {
  // Two top-level nests with a flow between them; statement reordering
  // at the virtual root is illegal, identity fine.
  Program p = parse_program(R"(
param N
do I = 1, N
  S1: A(I) = 3.0
end
do I2 = 1, N
  S2: B(I2) = A(I2) * 2.0
end
)");
  IvLayout layout(p);
  EXPECT_EQ(layout.size(), 4);  // [e2, e1, I2, I] per Eq. (1)
  DependenceSet deps = analyze_dependences(layout);
  ASSERT_FALSE(deps.deps.empty());

  // Swapping the two root nests reverses the flow.
  IntMat swap = statement_reorder(layout, "", {1, 0});
  LegalityResult r = check_legality(layout, deps, swap);
  EXPECT_FALSE(r.legal());

  // Identity-based codegen round-trips.
  CodegenResult res = generate_code(layout, deps, IntMat::identity(4));
  VerifyResult v =
      verify_equivalence(p, res.program, {{"N", 5}}, FillKind::kRandom);
  EXPECT_TRUE(v.equivalent) << v.to_string();
}

TEST(MultiRoot, IndependentNestsMaySwap) {
  Program p = parse_program(R"(
param N
do I = 1, N
  S1: A(I) = 3.0
end
do I2 = 1, N
  S2: B(I2) = 2.0
end
)");
  IvLayout layout(p);
  DependenceSet deps = analyze_dependences(layout);
  IntMat swap = statement_reorder(layout, "", {1, 0});
  LegalityResult r = check_legality(layout, deps, swap);
  EXPECT_TRUE(r.legal());
  CodegenResult res = generate_code(layout, deps, swap);
  auto stmts = res.program.statements();
  EXPECT_EQ(stmts[0].label(), "S2");
  VerifyResult v =
      verify_equivalence(p, res.program, {{"N", 5}}, FillKind::kRandom);
  EXPECT_TRUE(v.equivalent) << v.to_string();
}

}  // namespace
}  // namespace inlt
