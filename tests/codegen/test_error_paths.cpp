// Error handling across the pipeline: malformed inputs fail loudly
// with typed exceptions, never silently.
#include <gtest/gtest.h>

#include "codegen/generate.hpp"
#include "dependence/analyzer.hpp"
#include "exec/interp.hpp"
#include "ir/gallery.hpp"
#include "ir/parser.hpp"
#include "transform/transforms.hpp"

namespace inlt {
namespace {

TEST(ErrorPaths, AnalyzerRejectsGuardedPrograms) {
  Program p = parse_program(R"(
param N
do I = 1, N
  if (I - 2 >= 0)
    S1: A(I) = 1.0
  endif
end
)");
  IvLayout layout(p);
  EXPECT_THROW(analyze_dependences(layout), InvalidProgramError);
}

TEST(ErrorPaths, AnalyzerRejectsNonUnitSteps) {
  Program p = parse_program(R"(
param N
do I = 1, N, 2
  S1: A(I) = 1.0
end
)");
  IvLayout layout(p);
  EXPECT_THROW(analyze_dependences(layout), InvalidProgramError);
}

TEST(ErrorPaths, AnalyzerRejectsRankMismatchedArrays) {
  Program p = parse_program(R"(
param N
do I = 1, N
  S1: A(I) = 1.0
  S2: B(I) = A(I, I)
end
)");
  IvLayout layout(p);
  EXPECT_THROW(analyze_dependences(layout), InvalidProgramError);
}

TEST(ErrorPaths, CodegenRejectsNonBlockStructuredMatrix) {
  Program p = gallery::simplified_cholesky();
  IvLayout layout(p);
  DependenceSet deps = analyze_dependences(layout);
  IntMat bad = IntMat::identity(4);
  bad(1, 0) = 1;  // edge row reading a loop column
  EXPECT_THROW(generate_code(layout, deps, bad), TransformError);
}

TEST(ErrorPaths, CodegenRejectsWrongSizeMatrix) {
  Program p = gallery::simplified_cholesky();
  IvLayout layout(p);
  DependenceSet deps = analyze_dependences(layout);
  EXPECT_THROW(generate_code(layout, deps, IntMat::identity(5)),
               TransformError);
}

TEST(ErrorPaths, TransformConstructorsValidateNames) {
  Program p = gallery::simplified_cholesky();
  IvLayout layout(p);
  EXPECT_THROW(loop_interchange(layout, "I", "Q"), Error);
  EXPECT_THROW(statement_reorder(layout, "Q", {0}), TransformError);
  EXPECT_THROW(statement_reorder(layout, "I", {0, 0}), Error);
  EXPECT_THROW(statement_alignment(layout, "S9", "I", 1), Error);
}

TEST(ErrorPaths, AlignmentOfPerfectNestStatementRejected) {
  // No path edge: alignment is not a linear map on this layout (§4.3).
  Program p = gallery::fig3_perfect_nest();
  IvLayout layout(p);
  EXPECT_THROW(statement_alignment(layout, "S1", "I", 1), Error);
}

TEST(ErrorPaths, SingularGlobalMatrixStillRejectedWhenCollapsing) {
  // An all-zero loop row maps dependent instances of S2 onto each
  // other: the unsatisfied self-dependences of a *deeper* statement
  // cannot be carried (the J row also zero), so augmentation rebuilds
  // them — or legality flags it. Either way: no silent acceptance of
  // wrong code.
  Program p = gallery::simplified_cholesky();
  IvLayout layout(p);
  DependenceSet deps = analyze_dependences(layout);
  IntMat collapse = IntMat::identity(4);
  collapse(0, 0) = 0;  // outer loop label pinned to 0
  try {
    CodegenResult res = generate_code(layout, deps, collapse);
    // If accepted, it must be correct.
    // (Augmentation may legitimately rebuild the loops.)
    SUCCEED();
  } catch (const TransformError&) {
    SUCCEED();
  } catch (const Error&) {
    SUCCEED();  // augmentation may reject unprovable leading entries
  }
}

TEST(ErrorPaths, InterpreterChecksArrayBounds) {
  Program p = parse_program(R"(
param N
do I = 1, N
  S1: A(I) = A(I + N) + 1.0
end
)");
  Memory mem;
  // Declare A too small on purpose.
  mem.declare("A", {0}, {3});
  EXPECT_THROW(interpret(p, {{"N", 5}}, mem), Error);
}

}  // namespace
}  // namespace inlt
