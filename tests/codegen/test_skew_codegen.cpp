// §5.4/§5.5 end to end: the skew of the B/A example, augmentation of
// S1 with an extra loop, singular-loop guarding, bound generation, and
// semantic equivalence with the source.
#include <gtest/gtest.h>

#include "codegen/generate.hpp"
#include "exec/verify.hpp"
#include "ir/gallery.hpp"
#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "transform/transforms.hpp"

namespace inlt {
namespace {

class SkewCodegen : public ::testing::Test {
 protected:
  SkewCodegen()
      : prog_(gallery::augmentation_example()),
        layout_(prog_),
        deps_(analyze_dependences(layout_)),
        m_(loop_skew(layout_, "I", "J", -1)) {}

  Program prog_;
  IvLayout layout_;
  DependenceSet deps_;
  IntMat m_;
};

TEST_F(SkewCodegen, PerStatementMatricesMatchPaper) {
  AstRecovery rec = recover_ast(layout_, m_);
  // §5.4: M_S1 = [0], M_S2 = [[1,-1],[0,1]].
  PerStatement s1 = per_statement_transform(layout_, rec, m_, "S1");
  EXPECT_EQ(s1.matrix, (IntMat{{0}}));
  PerStatement s2 = per_statement_transform(layout_, rec, m_, "S2");
  EXPECT_EQ(s2.matrix, (IntMat{{1, -1}, {0, 1}}));
}

TEST_F(SkewCodegen, AugmentationMatchesPaper) {
  LegalityResult leg = check_legality(layout_, deps_, m_);
  ASSERT_TRUE(leg.legal());
  AstRecovery rec = recover_ast(layout_, m_);
  auto plans = plan_statements(layout_, deps_, m_, rec, leg);
  // S1: T' = [0; 1] (rank 1), N_S1 = row 1. S2: already nonsingular.
  const StatementPlan& p1 = plans[0];
  EXPECT_EQ(p1.label, "S1");
  EXPECT_EQ(p1.t_full, (IntMat{{0}, {1}}));
  EXPECT_EQ(p1.nonsingular_rows, (std::vector<int>{1}));
  const StatementPlan& p2 = plans[1];
  EXPECT_EQ(p2.label, "S2");
  EXPECT_EQ(p2.t_full, (IntMat{{1, -1}, {0, 1}}));
  EXPECT_EQ(p2.nonsingular_rows, (std::vector<int>{0, 1}));
}

TEST_F(SkewCodegen, GeneratedCodeMatchesPaperStructure) {
  CodegenResult res = generate_code(layout_, deps_, m_);
  std::string text = print_program(res.program);
  // §5.5's generated code: outer loop 1-N..0, inner J loop with bounds
  // 1-I .. min(N, N-I), S1 wrapped in a fresh loop over 1..N guarded
  // by I == 0.
  Program p = res.program;
  ASSERT_EQ(p.roots().size(), 1u);
  const Node& outer = *p.roots()[0];
  // The paper hand-simplifies the outer range to 1-N..0. Our generator
  // emits the cover union of S2's range [1-N, 0] and S1's pinned value
  // {0} — min(1-N, 0)..0, which equals 1-N..0 for N >= 1.
  std::string lb = outer.lower().to_string(true);
  EXPECT_TRUE(lb == "min(-N + 1, 0)" || lb == "min(0, -N + 1)") << text;
  EXPECT_EQ(outer.upper().to_string(false), "0") << text;
  // Children: S1's augmented loop and the J loop (original order kept).
  ASSERT_EQ(outer.num_children(), 2);
  const Node& aug = *outer.children()[0];
  ASSERT_TRUE(aug.is_loop());
  EXPECT_EQ(aug.var(), "I2");  // fresh name derived from I, as in §5.5
  EXPECT_EQ(aug.lower().to_string(true), "1") << text;
  EXPECT_EQ(aug.upper().to_string(false), "N") << text;
  // The singular tree loop pins I to 0 for S1: guards on the wrapper.
  ASSERT_FALSE(aug.guards().empty()) << text;
  const Node& jloop = *outer.children()[1];
  ASSERT_TRUE(jloop.is_loop());
  EXPECT_EQ(jloop.lower().to_string(true), "-I + 1") << text;
  // min(N, N - I); term order is not semantically meaningful.
  std::string ub = jloop.upper().to_string(false);
  EXPECT_TRUE(ub == "min(N, -I + N)" || ub == "min(-I + N, N)") << text;
}

TEST_F(SkewCodegen, GeneratedCodeIsSemanticallyEquivalent) {
  CodegenResult res = generate_code(layout_, deps_, m_);
  for (i64 n : {1, 2, 3, 5, 9}) {
    VerifyResult v = verify_equivalence(prog_, res.program, {{"N", n}},
                                        FillKind::kRandom);
    EXPECT_TRUE(v.equivalent) << "N=" << n << ": " << v.to_string() << "\n"
                              << print_program(res.program);
  }
}

TEST_F(SkewCodegen, GeneratedCodeRoundTripsThroughParser) {
  CodegenResult res = generate_code(layout_, deps_, m_);
  std::string text = print_program(res.program);
  Program reparsed = parse_program(text);
  VerifyResult v =
      verify_equivalence(prog_, reparsed, {{"N", 6}}, FillKind::kRandom);
  EXPECT_TRUE(v.equivalent) << v.to_string() << "\n" << text;
}

TEST_F(SkewCodegen, IllegalMatrixRejected) {
  Program p = gallery::simplified_cholesky();
  IvLayout layout(p);
  DependenceSet deps = analyze_dependences(layout);
  IntMat bad = loop_reversal(layout, "I");
  EXPECT_THROW(generate_code(layout, deps, bad), TransformError);
}

}  // namespace
}  // namespace inlt
