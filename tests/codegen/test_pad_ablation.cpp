// §2's unexplored design point, explored: "There are other reasonable
// ways to define this embedding". Zero padding is one — and on the
// §5.4 skew example it is strictly nicer: S1's instances stay spread
// over the new outer loop (time = I instead of 0), so no augmentation
// and no singular loop are needed, while diagonal padding collapses S1
// to a point and must rebuild the loop.
#include <gtest/gtest.h>

#include "codegen/generate.hpp"
#include "exec/trace.hpp"
#include "exec/verify.hpp"
#include "ir/gallery.hpp"
#include "ir/printer.hpp"
#include "transform/transforms.hpp"

namespace inlt {
namespace {

TEST(PadAblation, ZeroPadSkewNeedsNoAugmentation) {
  Program p = gallery::augmentation_example();
  IvLayout layout(p);
  IntMat m = loop_skew(layout, "I", "J", -1);

  // Diagonal padding (the paper's embedding): S1 collapses, one
  // augmented loop.
  {
    DependenceSet deps = analyze_dependences(layout, {PadMode::kDiagonal, 8});
    CodegenResult res = generate_code(layout, deps, m, {PadMode::kDiagonal});
    EXPECT_EQ(res.plans[0].t_full.rows(), 2);  // [0] augmented to [0;1]
    EXPECT_FALSE(res.legality.unsatisfied.empty());
  }

  // Zero padding: S1's transformed time is I itself — full rank, no
  // unsatisfied self-dependences, no extra loop.
  {
    DependenceSet deps = analyze_dependences(layout, {PadMode::kZero, 8});
    CodegenResult res = generate_code(layout, deps, m, {PadMode::kZero});
    EXPECT_EQ(res.plans[0].t_full.rows(), 1);
    EXPECT_TRUE(res.legality.unsatisfied.empty());
    for (i64 n : {1, 2, 5, 9}) {
      VerifyResult v = verify_equivalence(p, res.program, {{"N", n}},
                                          FillKind::kRandom);
      EXPECT_TRUE(v.equivalent)
          << "N=" << n << ": " << v.to_string() << "\n"
          << print_program(res.program);
    }
    TraceCheckResult t = check_dependence_order(p, res.program, {{"N", 6}});
    EXPECT_TRUE(t.ok) << t.diagnosis;
  }
}

TEST(PadAblation, BothEmbeddingsVerifyOnCholeskyCompletionInput) {
  // The identity transformation generates and verifies under both
  // embeddings (bounds and guards differ, semantics must not).
  Program p = gallery::cholesky();
  IvLayout layout(p);
  for (PadMode pad : {PadMode::kDiagonal, PadMode::kZero}) {
    DependenceSet deps = analyze_dependences(layout, {pad, 8});
    CodegenResult res =
        generate_code(layout, deps, IntMat::identity(7), {pad});
    VerifyResult v = verify_equivalence(p, res.program, {{"N", 5}});
    EXPECT_TRUE(v.equivalent)
        << (pad == PadMode::kZero ? "zero" : "diagonal") << ": "
        << v.to_string();
  }
}

TEST(PadAblation, EmbeddingChangesLegalityVerdicts) {
  // The embeddings are not interchangeable: the §5.4 skew's per-
  // statement structure differs, and on simplified Cholesky the set of
  // legal unit outer rows can differ too. This documents that choosing
  // the embedding is a real design decision, as §2 hints.
  Program p = gallery::augmentation_example();
  IvLayout layout(p);
  DependenceSet diag = analyze_dependences(layout, {PadMode::kDiagonal, 8});
  DependenceSet zero = analyze_dependences(layout, {PadMode::kZero, 8});
  // The S2 -> S1 flow has Δ_J = -1 under diagonal padding and an
  // unbounded negative direction under zero padding.
  auto find = [](const DependenceSet& ds) {
    for (const Dependence& d : ds.deps)
      if (d.src == "S2" && d.dst == "S1" && d.kind == DepKind::kFlow)
        return dep_to_string(d.vector);
    return std::string("(missing)");
  };
  EXPECT_EQ(find(diag), "[1, -1, 1, -1]");
  EXPECT_NE(find(zero), find(diag));
}

}  // namespace
}  // namespace inlt
