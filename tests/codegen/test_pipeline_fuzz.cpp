// End-to-end property sweep: random imperfect nests, random
// transformation attempts. Whatever the framework ACCEPTS must be
// SEMANTICALLY CORRECT — legality, augmentation, bound generation and
// guards are all exercised against the interpreter oracle. Rejections
// are fine; silent miscompiles are not.
#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "codegen/generate.hpp"
#include "codegen/simplify.hpp"
#include "exec/verify.hpp"
#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "transform/completion.hpp"
#include "transform/transforms.hpp"

namespace inlt {
namespace {

// A family of small imperfect nests with recurrences, cross-statement
// flows and padded statements.
Program random_program(std::mt19937& rng) {
  std::uniform_int_distribution<int> coin(0, 1), off(0, 2);
  std::ostringstream os;
  os << "param N\n";
  os << "do I = 1, N\n";
  // A statement at depth 1 (padded in the instance-vector space).
  if (coin(rng))
    os << "  S1: X(I) = X(I - " << off(rng) << ") + 1.5\n";
  else
    os << "  S1: X(I) = Y(I - 1, I) * 0.5 + 1.0\n";
  os << "  do J = " << (coin(rng) ? "1" : "I") << ", N\n";
  if (coin(rng))
    os << "    S2: Y(I, J) = X(I) + Y(I - 1, J)\n";
  else
    os << "    S2: Y(I, J) = Y(I, J - 1) + X(I - " << off(rng) << ")\n";
  os << "  end\n";
  if (coin(rng)) os << "  S3: Z(I) = Y(I, " << (coin(rng) ? "I" : "N") << ")\n";
  os << "end\n";
  return parse_program(os.str());
}

// A random candidate transformation built from the basic generators.
IntMat random_matrix(std::mt19937& rng, const IvLayout& layout) {
  std::uniform_int_distribution<int> pick(0, 4);
  IntMat m = IntMat::identity(layout.size());
  for (int step = 0; step < 2; ++step) {
    switch (pick(rng)) {
      case 0:
        m = mat_mul(loop_interchange(layout, "I", "J"), m);
        break;
      case 1:
        m = mat_mul(loop_skew(layout, "I", "J", rng() % 2 ? 1 : -1), m);
        break;
      case 2:
        m = mat_mul(loop_skew(layout, "J", "I", rng() % 2 ? 1 : -1), m);
        break;
      case 3:
        m = mat_mul(loop_reversal(layout, "J"), m);
        break;
      default: {
        // Statement reordering of the root loop's children.
        const Node* root = layout.program().roots()[0].get();
        int c = root->num_children();
        std::vector<int> perm(c);
        for (int i = 0; i < c; ++i) perm[i] = i;
        std::shuffle(perm.begin(), perm.end(), rng);
        m = mat_mul(statement_reorder(layout, "I", perm), m);
        break;
      }
    }
  }
  return m;
}

class PipelineFuzz : public ::testing::TestWithParam<int> {};

TEST_P(PipelineFuzz, AcceptedTransformationsVerify) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 2654435761u);
  int accepted = 0;
  for (int trial = 0; trial < 25; ++trial) {
    Program p = random_program(rng);
    IvLayout layout(p);
    DependenceSet deps = analyze_dependences(layout);
    IntMat m = random_matrix(rng, layout);
    CodegenResult res;
    try {
      res = generate_code(layout, deps, m);
    } catch (const TransformError&) {
      continue;  // rejection is always allowed
    }
    ++accepted;
    Program simp = simplify_program(res.program);
    for (i64 n : {1, 2, 4, 6}) {
      VerifyResult v =
          verify_equivalence(p, res.program, {{"N", n}}, FillKind::kRandom);
      ASSERT_TRUE(v.equivalent)
          << "MISCOMPILE at N=" << n << "\nsource:\n" << print_program(p)
          << "\nmatrix:\n" << mat_to_string(m) << "\ngenerated:\n"
          << print_program(res.program) << "\n" << v.to_string();
      VerifyResult vs =
          verify_equivalence(p, simp, {{"N", n}}, FillKind::kRandom);
      ASSERT_TRUE(vs.equivalent)
          << "SIMPLIFY MISCOMPILE at N=" << n << "\nsource:\n"
          << print_program(p) << "\nsimplified:\n" << print_program(simp);
    }
  }
  // The sweep must exercise the accept path, not reject everything.
  EXPECT_GT(accepted, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineFuzz, ::testing::Range(1, 9));

class CompletionFuzz : public ::testing::TestWithParam<int> {};

TEST_P(CompletionFuzz, CompletedTransformationsVerify) {
  // Completion with an empty partial must always succeed on legal
  // source programs (identity is available) and generate verified
  // code.
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 40503u);
  for (int trial = 0; trial < 10; ++trial) {
    Program p = random_program(rng);
    IvLayout layout(p);
    DependenceSet deps = analyze_dependences(layout);
    CompletionResult res = complete_transformation(layout, deps, {});
    ASSERT_TRUE(res.legality.legal());
    CodegenResult cg = generate_code(layout, deps, res.matrix);
    VerifyResult v =
        verify_equivalence(p, cg.program, {{"N", 5}}, FillKind::kRandom);
    ASSERT_TRUE(v.equivalent)
        << print_program(p) << "\n" << mat_to_string(res.matrix);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompletionFuzz, ::testing::Range(1, 7));

class CrossPipelineFuzz : public ::testing::TestWithParam<int> {};

TEST_P(CrossPipelineFuzz, HullAndExactPipelinesAgree) {
  // Whenever the hull pipeline accepts a matrix, the exact pipeline
  // must accept it too (conservativeness), and both generated programs
  // must be equivalent to the source and to each other.
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 69069u + 5);
  int accepted = 0;
  for (int trial = 0; trial < 15; ++trial) {
    Program p = random_program(rng);
    IvLayout layout(p);
    DependenceSet deps = analyze_dependences(layout);
    IntMat m = random_matrix(rng, layout);
    CodegenResult hull;
    try {
      hull = generate_code(layout, deps, m);
    } catch (const TransformError&) {
      continue;
    }
    ++accepted;
    ExactCodegenResult exact;
    ASSERT_NO_THROW(exact = generate_code_exact(layout, m))
        << "exact pipeline rejected a hull-accepted matrix\n"
        << print_program(p) << mat_to_string(m);
    for (i64 n : {2, 5}) {
      VerifyResult va =
          verify_equivalence(p, hull.program, {{"N", n}}, FillKind::kRandom);
      ASSERT_TRUE(va.equivalent) << va.to_string();
      VerifyResult vb = verify_equivalence(p, exact.program, {{"N", n}},
                                           FillKind::kRandom);
      ASSERT_TRUE(vb.equivalent) << vb.to_string();
    }
  }
  EXPECT_GT(accepted, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossPipelineFuzz, ::testing::Range(1, 6));

class ScalingFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ScalingFuzz, ScaledCompositionsVerify) {
  // Random compositions that include a scaling: exercises the
  // reconstruction-loop path of codegen against the oracle.
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 31337u);
  std::uniform_int_distribution<int> factor(2, 3);
  int accepted = 0;
  for (int trial = 0; trial < 12; ++trial) {
    Program p = random_program(rng);
    IvLayout layout(p);
    DependenceSet deps = analyze_dependences(layout);
    IntMat m = mat_mul(loop_scaling(layout, rng() % 2 ? "I" : "J",
                                    factor(rng)),
                       random_matrix(rng, layout));
    CodegenResult res;
    try {
      res = generate_code(layout, deps, m);
    } catch (const TransformError&) {
      continue;
    }
    ++accepted;
    for (i64 n : {1, 3, 5}) {
      VerifyResult v =
          verify_equivalence(p, res.program, {{"N", n}}, FillKind::kRandom);
      ASSERT_TRUE(v.equivalent)
          << "SCALED MISCOMPILE N=" << n << "\n" << print_program(p)
          << mat_to_string(m) << "\n" << print_program(res.program);
    }
    // The generated (guarded, reconstructed) program also parses back.
    Program re = parse_program(print_program(res.program));
    VerifyResult v2 =
        verify_equivalence(p, re, {{"N", 4}}, FillKind::kRandom);
    ASSERT_TRUE(v2.equivalent) << print_program(res.program);
  }
  EXPECT_GT(accepted, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScalingFuzz, ::testing::Range(1, 6));

}  // namespace
}  // namespace inlt
