// The simplification pass: reproduces §5.5's hand-simplified listing
// from the raw generated code, and never changes semantics.
#include <gtest/gtest.h>

#include "codegen/generate.hpp"
#include "codegen/simplify.hpp"
#include "exec/verify.hpp"
#include "ir/gallery.hpp"
#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "transform/completion.hpp"
#include "transform/transforms.hpp"

namespace inlt {
namespace {

TEST(Simplify, SkewExampleMatchesPaperSimplifiedForm) {
  Program src = gallery::augmentation_example();
  IvLayout layout(src);
  DependenceSet deps = analyze_dependences(layout);
  CodegenResult res =
      generate_code(layout, deps, loop_skew(layout, "I", "J", -1));
  Program simp = simplify_program(res.program);
  std::string text = print_program(simp);

  // §5.5 (first listing, after our redundancy elimination): outer
  // bound collapses from min(1-N, 0) to 1-N, S2's guards disappear,
  // the J-loop upper collapses from min(N, N-I) to N (since I <= 0),
  // and S1 keeps a single `I >= 0` guard (== I == 0 in context).
  ASSERT_EQ(simp.roots().size(), 1u);
  const Node& outer = *simp.roots()[0];
  EXPECT_EQ(outer.lower().to_string(true), "-N + 1") << text;
  EXPECT_EQ(outer.upper().to_string(false), "0") << text;
  ASSERT_EQ(outer.num_children(), 2);
  const Node& s1_wrap = *outer.children()[0];
  EXPECT_EQ(s1_wrap.guards().size(), 1u) << text;
  EXPECT_EQ(s1_wrap.guards()[0].to_string(), "I >= 0") << text;
  const Node& jloop = *outer.children()[1];
  EXPECT_EQ(jloop.upper().to_string(false), "N") << text;
  // S2 itself carries no guards anymore.
  const Node& s2 = *jloop.children()[0];
  EXPECT_TRUE(s2.guards().empty()) << text;
}

TEST(Simplify, PreservesSemantics) {
  Program src = gallery::augmentation_example();
  IvLayout layout(src);
  DependenceSet deps = analyze_dependences(layout);
  CodegenResult res =
      generate_code(layout, deps, loop_skew(layout, "I", "J", -1));
  Program simp = simplify_program(res.program);
  for (i64 n : {1, 2, 5, 11}) {
    VerifyResult v =
        verify_equivalence(src, simp, {{"N", n}}, FillKind::kRandom);
    EXPECT_TRUE(v.equivalent) << "N=" << n << ": " << v.to_string();
  }
}

TEST(Simplify, LeftLookingCholeskySimplifiesAndVerifies) {
  Program src = gallery::cholesky();
  IvLayout layout(src);
  DependenceSet deps = analyze_dependences(layout);
  IntVec first(7, 0);
  first[layout.loop_position("L")] = 1;
  IntMat m = complete_transformation(layout, deps, {first}).matrix;
  Program raw = generate_code(layout, deps, m).program;
  Program simp = simplify_program(raw);
  for (i64 n : {1, 3, 7}) {
    VerifyResult v = verify_equivalence(src, simp, {{"N", n}});
    EXPECT_TRUE(v.equivalent) << "N=" << n << ": " << v.to_string() << "\n"
                              << print_program(simp);
  }
  // Simplification should not make the program longer.
  EXPECT_LE(print_program(simp).size(), print_program(raw).size());
}

TEST(Simplify, DropsConstantFoldableBounds) {
  Program p = parse_program(R"(
param N
do I = max(1, 0, -5), min(N, N)
  S1: A(I) = 1.0
end
)");
  Program s = simplify_program(p);
  const Node& loop = *s.roots()[0];
  EXPECT_EQ(loop.lower().to_string(true), "1");
  EXPECT_EQ(loop.upper().to_string(false), "N");
}

TEST(Simplify, RemovesDeadGuardedSubtree) {
  Program p = parse_program(R"(
param N
do I = 1, N
  if (-I >= 0)
    S1: A(I) = 1.0
  endif
  S2: B(I) = 2.0
end
)");
  // I >= 1 makes -I >= 0 impossible: S1 disappears.
  Program s = simplify_program(p);
  EXPECT_EQ(s.statements().size(), 1u);
  EXPECT_EQ(s.statements()[0].label(), "S2");
}

TEST(Simplify, RemovesEmptyLoops) {
  Program p = parse_program(R"(
param N
do I = 1, N
  do J = N + 1, N
    S1: A(I, J) = 1.0
  end
  S2: B(I) = 2.0
end
)");
  Program s = simplify_program(p);
  EXPECT_EQ(s.statements().size(), 1u);
}

TEST(Simplify, KeepsNecessaryGuards) {
  Program p = parse_program(R"(
param N
do I = 1, N
  if (I - 3 >= 0)
    S1: A(I) = 1.0
  endif
end
)");
  Program s = simplify_program(p);
  const auto& stmt = *s.roots()[0]->children()[0];
  ASSERT_EQ(stmt.guards().size(), 1u);
}

TEST(Simplify, TrivialDivisibilityGuardDropped) {
  Program p = parse_program(R"(
param N
do I = 1, N
  if ((I) mod 1 == 0)
    S1: A(I) = 1.0
  endif
end
)");
  Program s = simplify_program(p);
  EXPECT_TRUE(s.roots()[0]->children()[0]->guards().empty());
}

TEST(Simplify, IdentityOnAlreadyCleanPrograms) {
  Program p = gallery::cholesky();
  Program s = simplify_program(p);
  EXPECT_EQ(print_program(s), print_program(p));
}

}  // namespace
}  // namespace inlt
