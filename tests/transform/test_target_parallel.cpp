// Target-space parallelism analysis (§1/§7): classify the loop levels
// of a *transformed* nest as doall or sequential by mapping the
// dependence columns through M, and derive wavefront schedules for
// skewed nests.
#include <gtest/gtest.h>

#include <algorithm>

#include "ir/gallery.hpp"
#include "ir/parser.hpp"
#include "transform/parallel.hpp"
#include "transform/transforms.hpp"

namespace inlt {
namespace {

Program stencil() {
  // tools/testdata/stencil.loop: the Gauss–Seidel-style recurrence
  // whose wavefront is the paper's §5.5 skewing payoff.
  return parse_program(R"(
param N
do I = 1, N
  do J = 1, N
    S1: U(I, J) = U(I - 1, J) + U(I, J - 1)
  end
end
)");
}

const TargetLevel* level_of(const ParallelSchedule& s,
                            const std::string& var) {
  for (const TargetLevel& l : s.levels)
    if (l.var == var) return &l;
  return nullptr;
}

TEST(TargetParallel, StencilSourceHasNoDoall) {
  Program p = stencil();
  IvLayout layout(p);
  DependenceSet deps = analyze_dependences(layout);
  ParallelSchedule s = source_parallel_schedule(layout, deps);
  ASSERT_EQ(s.levels.size(), 2u);
  EXPECT_FALSE(level_of(s, "I")->doall);
  EXPECT_FALSE(level_of(s, "J")->doall);
  EXPECT_TRUE(s.partition.empty());
  EXPECT_FALSE(s.wavefront);
  // Both levels carry a real dependence, and the carrier is recorded.
  EXPECT_GE(level_of(s, "I")->carrier, 0);
  EXPECT_GE(level_of(s, "J")->carrier, 0);
}

TEST(TargetParallel, StencilSkewExposesInnerDoall) {
  // Skewing I by J (I' = I + J) makes the outer level the wavefront
  // time loop — it carries both (1,0) and (0,1) — and leaves the
  // inner J level doall.
  Program p = stencil();
  IvLayout layout(p);
  DependenceSet deps = analyze_dependences(layout);
  IntMat m = loop_skew(layout, "I", "J", 1);
  AstRecovery rec = recover_ast(layout, m);
  ParallelSchedule s = analyze_target_parallelism(layout, deps, m, rec);
  ASSERT_EQ(s.levels.size(), 2u);
  const TargetLevel* ti = level_of(s, "I");
  const TargetLevel* tj = level_of(s, "J");
  ASSERT_NE(ti, nullptr);
  ASSERT_NE(tj, nullptr);
  EXPECT_FALSE(ti->doall);
  EXPECT_TRUE(tj->doall);
  EXPECT_TRUE(tj->partitioned);
  EXPECT_EQ(s.partition, (std::vector<std::string>{"J"}));
  EXPECT_TRUE(s.wavefront);
  EXPECT_EQ(s.time_loops, (std::vector<std::string>{"I"}));
}

TEST(TargetParallel, SourceScheduleMatchesParallelLoops) {
  // Under the identity transform the per-level doall classification
  // must agree with the source-space parallel_loops() detector.
  for (Program p : {gallery::cholesky(), gallery::lu(),
                    gallery::simplified_cholesky(), stencil()}) {
    IvLayout layout(p);
    DependenceSet deps = analyze_dependences(layout);
    std::vector<std::string> doall = parallel_loops(layout, deps);
    ParallelSchedule s = source_parallel_schedule(layout, deps);
    for (const TargetLevel& l : s.levels) {
      bool in_doall = std::find(doall.begin(), doall.end(), l.var) !=
                      doall.end();
      EXPECT_EQ(l.doall, in_doall) << "level " << l.var;
    }
  }
}

TEST(TargetParallel, CholeskyPartitionsBothInnerSubtrees) {
  // Right-looking Cholesky: K is sequential; the scaling loop I and
  // the update loop J are each the outermost doall of their subtree,
  // so both are partitioned — a wavefront over the K time loop. L sits
  // under the already-partitioned J and stays unpartitioned.
  Program p = gallery::cholesky();
  IvLayout layout(p);
  DependenceSet deps = analyze_dependences(layout);
  ParallelSchedule s = source_parallel_schedule(layout, deps);
  EXPECT_FALSE(level_of(s, "K")->doall);
  EXPECT_TRUE(level_of(s, "I")->partitioned);
  EXPECT_TRUE(level_of(s, "J")->partitioned);
  EXPECT_TRUE(level_of(s, "L")->doall);
  EXPECT_FALSE(level_of(s, "L")->partitioned);
  EXPECT_TRUE(s.wavefront);
  EXPECT_EQ(s.time_loops, (std::vector<std::string>{"K"}));
}

TEST(TargetParallel, OuterDoallIsNotAWavefront) {
  // A fully parallel nest partitions the outermost level only, with no
  // time loops.
  Program p = parse_program(R"(
param N
do I = 1, N
  do J = 1, N
    S1: A(I, J) = B(I, J) * 2.0
  end
end
)");
  IvLayout layout(p);
  DependenceSet deps = analyze_dependences(layout);
  ParallelSchedule s = source_parallel_schedule(layout, deps);
  EXPECT_EQ(s.partition, (std::vector<std::string>{"I"}));
  EXPECT_TRUE(level_of(s, "J")->doall);
  EXPECT_FALSE(level_of(s, "J")->partitioned);
  EXPECT_FALSE(s.wavefront);
  EXPECT_TRUE(s.time_loops.empty());
}

TEST(TargetParallel, ToTextReportsScheduleShape) {
  Program p = stencil();
  IvLayout layout(p);
  DependenceSet deps = analyze_dependences(layout);
  IntMat m = loop_skew(layout, "I", "J", 1);
  AstRecovery rec = recover_ast(layout, m);
  ParallelSchedule s = analyze_target_parallelism(layout, deps, m, rec);
  std::string text = s.to_text(deps);
  EXPECT_NE(text.find("J: doall (partitioned)"), std::string::npos) << text;
  EXPECT_NE(text.find("I: sequential"), std::string::npos) << text;
  EXPECT_NE(text.find("wavefront (time I -> parallel J)"), std::string::npos)
      << text;

  ParallelSchedule serial = source_parallel_schedule(layout, deps);
  EXPECT_NE(serial.to_text(deps).find("serial (no doall level)"),
            std::string::npos);
}

}  // namespace
}  // namespace inlt
