// IncrementalLegality: row-by-row verdicts must agree with the batch
// Definition 6 test on every structure-preserving candidate, the
// prefix pruning must be sound (a dead prefix has no legal
// completions), and the memo trie must reuse shared-prefix work.
#include "transform/incremental.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "dependence/analyzer.hpp"
#include "ir/gallery.hpp"
#include "support/stats.hpp"
#include "transform/legality.hpp"
#include "transform/transforms.hpp"

namespace inlt {
namespace {

// All loop-order permutations of the nest, via loop_permutation (edge
// rows identity, one unit row per loop position).
std::vector<IntMat> all_permutations(const IvLayout& layout) {
  std::vector<std::string> vars;
  for (int p : layout.all_loop_positions())
    vars.push_back(layout.positions()[p].name);
  std::sort(vars.begin(), vars.end());
  std::vector<IntMat> out;
  do {
    out.push_back(loop_permutation(layout, vars));
  } while (std::next_permutation(vars.begin(), vars.end()));
  return out;
}

class IncrementalEquivalence : public ::testing::TestWithParam<int> {};

Program gallery_program(int which) {
  switch (which) {
    case 0:
      return gallery::simplified_cholesky();
    case 1:
      return gallery::cholesky();
    case 2:
      return gallery::lu();
    default:
      return gallery::fig3_perfect_nest();
  }
}

TEST_P(IncrementalEquivalence, MatchesBatchLegalityOnAllPermutations) {
  Program p = gallery_program(GetParam());
  IvLayout layout(p);
  DependenceSet deps = analyze_dependences(layout);
  IncrementalLegality engine(layout, deps);

  int agree = 0;
  for (const IntMat& m : all_permutations(layout)) {
    ASSERT_TRUE(engine.supports(m));
    bool batch = check_legality(layout, deps, m).legal();
    EXPECT_EQ(engine.check(m), batch) << "program " << GetParam();
    ++agree;
  }
  EXPECT_GT(agree, 0);
}

INSTANTIATE_TEST_SUITE_P(Gallery, IncrementalEquivalence,
                         ::testing::Values(0, 1, 2, 3));

TEST(IncrementalLegalityTest, MatchesBatchOnSkewedCandidates) {
  Program p = gallery::cholesky();
  IvLayout layout(p);
  DependenceSet deps = analyze_dependences(layout);
  IncrementalLegality engine(layout, deps);

  // Permutations composed with single-loop skews of every (target,
  // source) pair and factor in [-2, 2].
  std::vector<std::string> vars;
  for (int pos : layout.all_loop_positions())
    vars.push_back(layout.positions()[pos].name);
  int checked = 0;
  for (const IntMat& perm : all_permutations(layout)) {
    for (const std::string& t : vars)
      for (const std::string& s : vars) {
        if (t == s) continue;
        for (i64 f = -2; f <= 2; ++f) {
          IntMat m = mat_mul(perm, loop_skew(layout, t, s, f));
          if (!engine.supports(m)) continue;
          bool batch = check_legality(layout, deps, m).legal();
          ASSERT_EQ(engine.check(m), batch)
              << "skew " << t << " by " << s << " * " << f;
          ++checked;
        }
      }
  }
  EXPECT_GT(checked, 100);
}

TEST(IncrementalLegalityTest, DeadPrefixHasNoLegalCompletion) {
  // Exhaustively: whenever push_row reports a prefix dead, every
  // permutation completing it must be batch-illegal.
  Program p = gallery::cholesky();
  IvLayout layout(p);
  DependenceSet deps = analyze_dependences(layout);
  IncrementalLegality engine(layout, deps);
  std::vector<int> slots = layout.all_loop_positions();

  for (const IntMat& m : all_permutations(layout)) {
    bool dead = false;
    int pushed = 0;
    for (size_t s = 0; s < slots.size(); ++s) {
      IntVec row(m.cols());
      for (int j = 0; j < m.cols(); ++j) row[j] = m(slots[s], j);
      bool viable = engine.push_row(row);
      ++pushed;
      if (!viable) {
        dead = true;
        break;
      }
    }
    if (dead) {
      EXPECT_FALSE(check_legality(layout, deps, m).legal());
      EXPECT_FALSE(engine.prefix_viable());
      EXPECT_GE(engine.killer(), 0);
    }
    for (int s = 0; s < pushed; ++s) engine.pop_row();
  }
}

TEST(IncrementalLegalityTest, UnsatisfiedMatchesBatchResult) {
  Program p = gallery::simplified_cholesky();
  IvLayout layout(p);
  DependenceSet deps = analyze_dependences(layout);
  IncrementalLegality engine(layout, deps);

  for (const IntMat& m : all_permutations(layout)) {
    LegalityResult batch = check_legality(layout, deps, m);
    if (!batch.legal()) continue;
    std::vector<int> slots = layout.all_loop_positions();
    for (size_t s = 0; s < slots.size(); ++s) {
      IntVec row(m.cols());
      for (int j = 0; j < m.cols(); ++j) row[j] = m(slots[s], j);
      ASSERT_TRUE(engine.push_row(row));
    }
    ASSERT_TRUE(engine.current_legal());
    EXPECT_EQ(engine.current_unsatisfied(), batch.unsatisfied);
    for (size_t s = 0; s < slots.size(); ++s) engine.pop_row();
  }
}

TEST(IncrementalLegalityTest, SharedPrefixesHitTheMemo) {
  Program p = gallery::lu();
  IvLayout layout(p);
  DependenceSet deps = analyze_dependences(layout);
  IncrementalLegality engine(layout, deps);

  std::vector<IntMat> perms = all_permutations(layout);
  for (const IntMat& m : perms) engine.check(m);
  size_t nodes_after_first = engine.memo_size();

  i64 hits0 = Stats::global().value("incremental.memo_hits");
  for (const IntMat& m : perms) engine.check(m);
  // Second sweep: every push is a memo hit, no new nodes.
  EXPECT_EQ(engine.memo_size(), nodes_after_first);
  EXPECT_GE(Stats::global().value("incremental.memo_hits"),
            hits0 + static_cast<i64>(perms.size()));

  engine.clear();
  EXPECT_EQ(engine.memo_size(), 1u);
  // Still correct after clearing.
  for (const IntMat& m : perms)
    EXPECT_EQ(engine.check(m), check_legality(layout, deps, m).legal());
}

TEST(IncrementalLegalityTest, SupportsRejectsNonIdentityEdgeRows) {
  Program p = gallery::simplified_cholesky();
  IvLayout layout(p);
  DependenceSet deps = analyze_dependences(layout);
  IncrementalLegality engine(layout, deps);

  EXPECT_TRUE(engine.supports(IntMat::identity(layout.size())));
  // Statement reordering permutes edge rows: outside the engine's class.
  IntMat reorder = statement_reorder(layout, "I", {1, 0});
  EXPECT_FALSE(engine.supports(reorder));
  // Wrong shape.
  EXPECT_FALSE(engine.supports(IntMat::identity(layout.size() + 1)));
}

}  // namespace
}  // namespace inlt
