// Fig 5/Fig 6: block structure validation and NewAST recovery.
#include <gtest/gtest.h>

#include "ir/gallery.hpp"
#include "ir/printer.hpp"
#include "transform/transforms.hpp"
#include "transform/block_structure.hpp"

namespace inlt {
namespace {

TEST(BlockStructure, IdentityIsValid) {
  Program p = gallery::simplified_cholesky();
  IvLayout layout(p);
  EXPECT_EQ(check_block_structure(layout, IntMat::identity(4)), "");
}

TEST(BlockStructure, LinearLoopTransformsAreValid) {
  Program p = gallery::simplified_cholesky();
  IvLayout layout(p);
  EXPECT_EQ(check_block_structure(layout, loop_interchange(layout, "I", "J")),
            "");
  EXPECT_EQ(check_block_structure(layout, loop_skew(layout, "I", "J", -1)),
            "");
  EXPECT_EQ(check_block_structure(layout, loop_reversal(layout, "J")), "");
}

TEST(BlockStructure, ReorderRecoversPermutedAst) {
  Program p = gallery::simplified_cholesky();
  IvLayout layout(p);
  IntMat m = statement_reorder(layout, "I", {1, 0});
  AstRecovery rec = recover_ast(layout, m);
  // The J loop now comes before S1 under I.
  auto stmts = rec.target->statements();
  ASSERT_EQ(stmts.size(), 2u);
  EXPECT_EQ(stmts[0].label(), "S2");  // inside the J loop, now first
  EXPECT_EQ(stmts[1].label(), "S1");
}

TEST(BlockStructure, ReorderKeepsLayoutSize) {
  Program p = gallery::cholesky();
  IvLayout layout(p);
  // Rotate the three children of K: S1 -> position 2, I-loop -> 0,
  // JL-loop -> 1.
  IntMat m = statement_reorder(layout, "K", {2, 0, 1});
  AstRecovery rec = recover_ast(layout, m);
  EXPECT_EQ(rec.target_layout->size(), layout.size());
  auto stmts = rec.target->statements();
  ASSERT_EQ(stmts.size(), 3u);
  EXPECT_EQ(stmts[0].label(), "S2");
  EXPECT_EQ(stmts[1].label(), "S3");
  EXPECT_EQ(stmts[2].label(), "S1");
}

TEST(BlockStructure, BrokenEdgeRowRejected) {
  Program p = gallery::simplified_cholesky();
  IvLayout layout(p);
  // Clobber an edge row: edges may not mix with loop columns.
  IntMat m = IntMat::identity(4);
  m(1, 0) = 1;
  EXPECT_NE(check_block_structure(layout, m), "");
  // An edge row with entry 2 is not a unit selection.
  IntMat m2 = IntMat::identity(4);
  m2(1, 1) = 2;
  EXPECT_NE(check_block_structure(layout, m2), "");
  // Duplicate edge selection.
  IntMat m3 = IntMat::identity(4);
  m3(2, 2) = 0;
  m3(2, 1) = 1;
  EXPECT_NE(check_block_structure(layout, m3), "");
}

TEST(BlockStructure, NonSquareRejected) {
  Program p = gallery::simplified_cholesky();
  IvLayout layout(p);
  EXPECT_NE(check_block_structure(layout, IntMat(5, 4)), "");
}

TEST(BlockStructure, LoopRowsAreUnconstrained) {
  // Loop rows may read any column — alignment reads an edge column.
  Program p = gallery::simplified_cholesky();
  IvLayout layout(p);
  IntMat m = statement_alignment(layout, "S1", "I", 3);
  EXPECT_EQ(check_block_structure(layout, m), "");
}

TEST(BlockStructure, RecoveredProgramPrintsAndValidates) {
  Program p = gallery::cholesky();
  IvLayout layout(p);
  IntMat m = statement_reorder(layout, "K", {1, 2, 0});
  AstRecovery rec = recover_ast(layout, m);
  EXPECT_NO_THROW(rec.target->validate());
  std::string text = print_program(*rec.target);
  EXPECT_NE(text.find("S3"), std::string::npos);
}

}  // namespace
}  // namespace inlt
