// The general-framework baseline (per-statement affine schedules) the
// paper positions against (§1).
#include <gtest/gtest.h>

#include "ir/gallery.hpp"
#include "ir/parser.hpp"
#include "transform/schedule_baseline.hpp"

namespace inlt {
namespace {

TEST(ScheduleBaseline, FindsScheduleForSimplifiedCholesky) {
  Program p = gallery::simplified_cholesky();
  IvLayout layout(p);
  ScheduleSearchStats stats;
  auto sched = find_schedule(layout, {}, &stats);
  ASSERT_TRUE(sched.has_value());
  EXPECT_TRUE(schedule_is_valid(layout, *sched));
  EXPECT_GT(stats.candidates_checked, 0);
}

TEST(ScheduleBaseline, FindsScheduleForFullCholesky) {
  // Full Cholesky HAS a one-dimensional schedule, but not with K
  // coefficients below 3: the within-step chain S1 -> S2 -> S3 costs
  // two offset units, and S3(k) -> S1(k+1) must still gain one, so
  // θ needs slope >= 3 in K. (This squeeze is why Feautrier's part II
  // moves to multidimensional time.) The default [0,2] box therefore
  // proves exhaustion; the [0,3] box finds a schedule.
  Program p = gallery::cholesky();
  IvLayout layout(p);
  EXPECT_FALSE(find_schedule(layout).has_value());

  ScheduleSearchOptions wide;
  wide.coef_max = 3;
  auto sched = find_schedule(layout, wide);
  ASSERT_TRUE(sched.has_value());
  EXPECT_TRUE(schedule_is_valid(layout, *sched));
  for (const auto& [label, s] : *sched) {
    (void)label;
    EXPECT_GE(s.coef[0], 1);  // every θ climbs with K
  }
}

TEST(ScheduleBaseline, ValidityRejectsBadSchedule) {
  Program p = gallery::simplified_cholesky();
  IvLayout layout(p);
  // θ == 0 for everything cannot strictly satisfy any dependence.
  ScheduleMap all_zero;
  all_zero["S1"] = {IntVec{0}, 0};
  all_zero["S2"] = {IntVec{0, 0}, 0};
  EXPECT_FALSE(schedule_is_valid(layout, all_zero));
}

TEST(ScheduleBaseline, NoOneDimensionalScheduleForDeepRecurrence) {
  // A two-level recurrence with O(N^2) dependent chain length has no
  // 1-D schedule with coefficients in the default box: θ must grow
  // along a chain of length N*N but a 1-D affine θ over (I, J) grows
  // at most linearly in each. The search proves exhaustion.
  Program p = parse_program(R"(
param N
do I = 1, N
  do J = 1, N
    S1: A(I, J) = A(I, J - 1) + A(I - 1, N) * 0.5
  end
end
)");
  IvLayout layout(p);
  auto sched = find_schedule(layout);
  EXPECT_FALSE(sched.has_value());
}

TEST(ScheduleBaseline, HandlesMultiRootPrograms) {
  Program p = gallery::simplified_cholesky_distributed();
  IvLayout layout(p);
  auto sched = find_schedule(layout);
  // The distributed form has cross-nest dependences; the searcher must
  // either find a valid schedule or prove none exists in the box —
  // and whatever it returns must pass the validity oracle.
  if (sched.has_value()) {
    EXPECT_TRUE(schedule_is_valid(layout, *sched));
  }
}

}  // namespace
}  // namespace inlt
