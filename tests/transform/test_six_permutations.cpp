// C1 (§1/§5): "all six permutations of the loops in Cholesky
// factorization" — explored exhaustively through completion + code
// generation + semantic verification.
//
// Reproduction finding: under the paper's diagonal embedding, four of
// the six orderings of the update statement's (K, J, L) space are
// expressible and legal — the right-looking family (K outer) and the
// left-looking family (L outer, with the completion reordering S3
// first exactly as Fig 8 shows). The two J-outer (bordered /
// row-oriented) forms require S2's time coordinate to be its I value,
// but diagonal padding pins S2's J position to K — a different
// embedding, which §2 explicitly leaves unexplored. EXPERIMENTS.md
// records this as the one scoped-down claim.
#include <gtest/gtest.h>

#include <algorithm>

#include "codegen/generate.hpp"
#include "exec/verify.hpp"
#include "ir/gallery.hpp"
#include "transform/completion.hpp"

namespace inlt {
namespace {

struct PermCase {
  std::string order;  // e.g. "KJL": sources for the 3 outer loop rows
  bool expect_legal;
};

class SixPermutations : public ::testing::TestWithParam<PermCase> {};

TEST_P(SixPermutations, CompleteGenerateVerify) {
  const PermCase& pc = GetParam();
  Program p = gallery::cholesky();
  IvLayout layout(p);
  DependenceSet deps = analyze_dependences(layout);

  std::vector<IntVec> rows;
  for (char c : pc.order) {
    IntVec r(7, 0);
    r[layout.loop_position(std::string(1, c))] = 1;
    rows.push_back(r);
  }

  if (!pc.expect_legal) {
    EXPECT_THROW(complete_transformation(layout, deps, rows),
                 TransformError);
    return;
  }
  CompletionResult res = complete_transformation(layout, deps, rows);
  ASSERT_TRUE(res.legality.legal());
  CodegenResult cg = generate_code(layout, deps, res.matrix);
  for (i64 n : {1, 2, 4, 8}) {
    VerifyResult v = verify_equivalence(p, cg.program, {{"N", n}});
    EXPECT_TRUE(v.equivalent) << pc.order << " N=" << n << ": "
                              << v.to_string();
  }
  // The L-outer (left-looking) family must run the update nest first,
  // as in Fig 8.
  if (pc.order[0] == 'L') {
    auto stmts = cg.program.statements();
    EXPECT_EQ(stmts[0].label(), "S3");
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllOrders, SixPermutations,
    ::testing::Values(PermCase{"KJL", true}, PermCase{"KLJ", true},
                      PermCase{"LJK", true}, PermCase{"LKJ", true},
                      PermCase{"JKL", false}, PermCase{"JLK", false}),
    [](const ::testing::TestParamInfo<PermCase>& info) {
      return info.param.order;
    });

TEST(SixPermutationsSummary, FourOfSixExpressible) {
  Program p = gallery::cholesky();
  IvLayout layout(p);
  DependenceSet deps = analyze_dependences(layout);
  int legal = 0;
  std::vector<std::string> vars = {"J", "K", "L"};
  std::sort(vars.begin(), vars.end());
  do {
    std::vector<IntVec> rows;
    for (const std::string& v : vars) {
      IntVec r(7, 0);
      r[layout.loop_position(v)] = 1;
      rows.push_back(r);
    }
    try {
      complete_transformation(layout, deps, rows);
      ++legal;
    } catch (const TransformError&) {
    }
  } while (std::next_permutation(vars.begin(), vars.end()));
  EXPECT_EQ(legal, 4);
}

}  // namespace
}  // namespace inlt
