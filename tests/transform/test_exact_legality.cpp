// The exact ILP legality extension: agrees with the hull test where
// the hulls are conclusive, and decides the correlated cases they
// cannot.
#include <gtest/gtest.h>

#include "codegen/generate.hpp"
#include "exec/verify.hpp"
#include "ir/gallery.hpp"
#include "ir/parser.hpp"
#include "transform/exact_legality.hpp"
#include "transform/transforms.hpp"

namespace inlt {
namespace {

TEST(ExactLegality, AgreesOnPaperExamples) {
  // Interval-legal matrices must be exact-legal (the hull test is
  // conservative), and interval-illegal ones with definite violations
  // must stay illegal.
  Program p = gallery::simplified_cholesky();
  IvLayout layout(p);
  DependenceSet deps = analyze_dependences(layout);

  struct Case {
    IntMat m;
    bool legal;
  };
  std::vector<Case> cases;
  cases.push_back({IntMat::identity(4), true});
  cases.push_back({mat_mul(statement_reorder(layout, "I", {1, 0}),
                           loop_interchange(layout, "I", "J")),
                   true});
  cases.push_back({loop_reversal(layout, "I"), false});
  cases.push_back({loop_interchange(layout, "I", "J"), false});

  for (const Case& c : cases) {
    AstRecovery rec = recover_ast(layout, c.m);
    ExactLegalityResult exact = check_legality_exact(layout, c.m, rec);
    EXPECT_EQ(exact.legal(), c.legal)
        << (exact.legal() ? "" : exact.violations.front());
    // Conservativeness: hull-legal implies exact-legal.
    LegalityResult hull = check_legality(layout, deps, c.m, rec);
    if (hull.legal()) {
      EXPECT_TRUE(exact.legal());
    }
  }
}

TEST(ExactLegality, DecidesCorrelatedSkewHullsCannot) {
  // S1 writes A(2I); S2 reads A(I+J) with J <= I, so reads only touch
  // already-written locations (no anti dependences). The flow
  // dependence couples the deltas: i' + j' = 2i forces Δ_J = -Δ_I,
  // but the per-position hull only records [+, 1, -1, -]. Skewing I
  // by +J maps the dependence's common-loop projection to
  // Δ_I + Δ_J == 0 exactly — legal with S1 syntactically first —
  // while the hull evaluates (+) + (-) = '*' and must reject.
  Program p = parse_program(R"(
param N
do I = 1, N
  S1: A(2*I) = f(I)
  do J = 1, I
    S2: B(I, J) = A(I + J) * 2.0
  end
end
)");
  IvLayout layout(p);
  DependenceSet deps = analyze_dependences(layout);
  IntMat m = loop_skew(layout, "I", "J", 1);

  LegalityResult hull = check_legality(layout, deps, m);
  EXPECT_FALSE(hull.legal()) << "hull test unexpectedly conclusive";

  AstRecovery rec = recover_ast(layout, m);
  ExactLegalityResult exact = check_legality_exact(layout, m, rec);
  EXPECT_TRUE(exact.legal())
      << (exact.violations.empty() ? "" : exact.violations.front());
  // (S1's per-statement transformation is [2]; code generation handles
  // it via a reconstruction loop — see test_scaling_codegen.cpp. The
  // point of this test is the legality decision itself.)
}

TEST(ExactLegality, UnsatisfiedSelfDependencesDetected) {
  // §5.4's skew: the exact test must also find S1's unsatisfied self
  // dependence and hand augmentation the projected vector [1].
  Program p = gallery::augmentation_example();
  IvLayout layout(p);
  IntMat m = loop_skew(layout, "I", "J", -1);
  AstRecovery rec = recover_ast(layout, m);
  ExactLegalityResult exact = check_legality_exact(layout, m, rec);
  ASSERT_TRUE(exact.legal());
  ASSERT_EQ(exact.unsatisfied_self.count("S1"), 1u);
  const auto& vecs = exact.unsatisfied_self.at("S1");
  ASSERT_FALSE(vecs.empty());
  EXPECT_EQ(dep_to_string(vecs[0]), "[1]");
}

TEST(ExactLegality, ExactPipelineMatchesIntervalPipeline) {
  // On the paper's skew example both pipelines must produce
  // semantically identical programs.
  Program p = gallery::augmentation_example();
  IvLayout layout(p);
  DependenceSet deps = analyze_dependences(layout);
  IntMat m = loop_skew(layout, "I", "J", -1);
  Program a = generate_code(layout, deps, m).program;
  Program b = generate_code_exact(layout, m).program;
  VerifyResult v = verify_equivalence(a, b, {{"N", 9}}, FillKind::kRandom);
  EXPECT_TRUE(v.equivalent) << v.to_string();
}

TEST(ExactLegality, BorderedCholeskyStillInexpressible) {
  // The J-outer bordered forms are not a hull-precision casualty: the
  // required interleaving of S2 and S3 within a time step cannot be
  // expressed by any statement-level ordering, so even the exact test
  // rejects the J-outer unit row (a genuine limitation of the paper's
  // restriction, not of direction vectors).
  Program p = gallery::cholesky();
  IvLayout layout(p);
  IntMat m = loop_interchange(layout, "K", "J");
  AstRecovery rec = recover_ast(layout, m);
  ExactLegalityResult exact = check_legality_exact(layout, m, rec);
  EXPECT_FALSE(exact.legal());
}

}  // namespace
}  // namespace inlt
