// Reproduces the transformation matrices of §4 and their action on
// the simplified-Cholesky instance vectors.
#include <gtest/gtest.h>

#include "ir/gallery.hpp"
#include "transform/transforms.hpp"

namespace inlt {
namespace {

class PaperMatrices : public ::testing::Test {
 protected:
  PaperMatrices()
      : prog_(gallery::simplified_cholesky()), layout_(prog_) {}

  // Instance vectors with symbolic entries are checked by applying the
  // matrix to sample concrete instances.
  IntVec s1(i64 i) { return layout_.instance_vector({"S1", {i}}); }
  IntVec s2(i64 i, i64 j) { return layout_.instance_vector({"S2", {i, j}}); }

  Program prog_;
  IvLayout layout_;
};

TEST_F(PaperMatrices, InterchangeMatrix) {
  // §4.1: permutation of I and J swaps instance-vector positions 0,3:
  //   [0 0 0 1; 0 1 0 0; 0 0 1 0; 1 0 0 0]
  IntMat m = loop_interchange(layout_, "I", "J");
  EXPECT_EQ(m, (IntMat{{0, 0, 0, 1},
                       {0, 1, 0, 0},
                       {0, 0, 1, 0},
                       {1, 0, 0, 0}}));
  // "It is coincidental that instance vectors of S1 are left unchanged
  // by permutation in this example": [I,0,1,I] -> [I,0,1,I].
  EXPECT_EQ(mat_vec(m, s1(4)), s1(4));
  // S2: [I,1,0,J] -> [J,1,0,I].
  EXPECT_EQ(mat_vec(m, s2(2, 5)), (IntVec{5, 1, 0, 2}));
}

TEST_F(PaperMatrices, SkewMatrix) {
  // §4.1: skewing the outer loop by the inner:
  //   [1 0 0 -1; 0 1 0 0; 0 0 1 0; 0 0 0 1]
  IntMat m = loop_skew(layout_, "I", "J", -1);
  EXPECT_EQ(m, (IntMat{{1, 0, 0, -1},
                       {0, 1, 0, 0},
                       {0, 0, 1, 0},
                       {0, 0, 0, 1}}));
  // S1 [I,0,1,I] -> [0,0,1,I]: every instance of S1 lands in iteration
  // 0 of the new outer loop (the diagonal embedding is orthogonal to
  // the new outer loop).
  EXPECT_EQ(mat_vec(m, s1(6)), (IntVec{0, 0, 1, 6}));
  // S2 [I,1,0,J] -> [I-J,1,0,J].
  EXPECT_EQ(mat_vec(m, s2(2, 5)), (IntVec{-3, 1, 0, 5}));
}

TEST_F(PaperMatrices, StatementReorderMatrix) {
  // §4.2: reordering the J loop and S1 (both children of I):
  //   [1 0 0 0; 0 0 1 0; 0 1 0 0; 0 0 0 1]
  IntMat m = statement_reorder(layout_, "I", {1, 0});
  EXPECT_EQ(m, (IntMat{{1, 0, 0, 0},
                       {0, 0, 1, 0},
                       {0, 1, 0, 0},
                       {0, 0, 0, 1}}));
  // S1 [I,0,1,I] -> [I,1,0,I]; S2 [I,1,0,J] -> [I,0,1,J].
  EXPECT_EQ(mat_vec(m, s1(3)), (IntVec{3, 1, 0, 3}));
  EXPECT_EQ(mat_vec(m, s2(3, 4)), (IntVec{3, 0, 1, 4}));
}

TEST_F(PaperMatrices, AlignmentMatrix) {
  // §4.3: aligning S1 with respect to the I loop by +1 shifts S1's
  // instances and leaves S2 untouched. (The paper's display puts the
  // offset in S2's edge column, contradicting its own result vectors
  // [I+1,0,1,I] / [I,1,0,J]; we match the vectors.)
  IntMat m = statement_alignment(layout_, "S1", "I", 1);
  EXPECT_EQ(mat_vec(m, s1(4)), (IntVec{5, 0, 1, 4}));
  EXPECT_EQ(mat_vec(m, s2(4, 6)), s2(4, 6));
}

TEST_F(PaperMatrices, ReversalMatrix) {
  // §4.1: "reversal is represented by an identity matrix with ... -1"
  IntMat m = loop_reversal(layout_, "J");
  IntMat expected = IntMat::identity(4);
  expected(3, 3) = -1;
  EXPECT_EQ(m, expected);
  EXPECT_EQ(mat_vec(m, s2(2, 5)), (IntVec{2, 1, 0, -5}));
}

TEST_F(PaperMatrices, ScalingMatrix) {
  // §4.1: "scaling is ... the diagonal entry ... equal to the scale
  // factor".
  IntMat m = loop_scaling(layout_, "J", 2);
  IntMat expected = IntMat::identity(4);
  expected(3, 3) = 2;
  EXPECT_EQ(m, expected);
  EXPECT_EQ(mat_vec(m, s2(2, 5)), (IntVec{2, 1, 0, 10}));
}

TEST_F(PaperMatrices, TransformsCompose) {
  // Sequences of transformations are matrix products (§1).
  IntMat perm = loop_interchange(layout_, "I", "J");
  IntMat skew = loop_skew(layout_, "I", "J", 1);
  IntMat seq = mat_mul(skew, perm);
  EXPECT_EQ(mat_vec(seq, s2(2, 5)), mat_vec(skew, mat_vec(perm, s2(2, 5))));
}

TEST_F(PaperMatrices, ScaleFactorMustBePositive) {
  EXPECT_THROW(loop_scaling(layout_, "J", 0), Error);
}

TEST_F(PaperMatrices, SkewSelfThrows) {
  EXPECT_THROW(loop_skew(layout_, "I", "I", 1), Error);
}

TEST_F(PaperMatrices, LoopPermutationGeneral) {
  Program chol = gallery::cholesky();
  IvLayout cl(chol);
  // Rotate K <- J, J <- L, L <- K, I <- I (loop positions in layout
  // order are K, J, L, I).
  IntMat m = loop_permutation(cl, {"J", "L", "K", "I"});
  IntVec s3 = cl.instance_vector({"S3", {2, 5, 3}});  // [2,1,0,0,5,3,2]
  // K position gets J's value, J gets L's, L gets K's.
  EXPECT_EQ(mat_vec(m, s3), (IntVec{5, 1, 0, 0, 3, 2, 2}));
}

}  // namespace
}  // namespace inlt
