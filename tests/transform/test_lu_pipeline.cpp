// The second matrix-factorization family: LU without pivoting through
// the full pipeline (§1 motivates the framework with "matrix
// factorization codes" generally, not just Cholesky).
#include <gtest/gtest.h>

#include "codegen/generate.hpp"
#include "exec/trace.hpp"
#include "exec/verify.hpp"
#include "ir/gallery.hpp"
#include "transform/completion.hpp"
#include "transform/transforms.hpp"

namespace inlt {
namespace {

class LuPipeline : public ::testing::Test {
 protected:
  LuPipeline()
      : prog_(gallery::lu()),
        layout_(prog_),
        deps_(analyze_dependences(layout_)) {}

  Program prog_;
  IvLayout layout_;
  DependenceSet deps_;
};

TEST_F(LuPipeline, LayoutShape) {
  // [K, e2, e1, J, L, I]: root K with two children (I loop, JL nest).
  EXPECT_EQ(layout_.size(), 6);
  EXPECT_EQ(layout_.loop_position("K"), 0);
}

TEST_F(LuPipeline, PivotFlowPresent) {
  // The scaled column feeds the update: flow S1 -> S2 on A.
  bool found = false;
  for (const Dependence& d : deps_.deps)
    if (d.src == "S1" && d.dst == "S2" && d.kind == DepKind::kFlow)
      found = true;
  EXPECT_TRUE(found) << deps_.to_string();
}

TEST_F(LuPipeline, DistributionIllegal) {
  // §1's claim covers LU too.
  EXPECT_NE(check_distribution_legality(layout_, deps_, "K", 1), "");
}

TEST_F(LuPipeline, IdentityCompletionVerifies) {
  CompletionResult res = complete_transformation(layout_, deps_, {});
  CodegenResult cg = generate_code(layout_, deps_, res.matrix);
  VerifyResult v = verify_equivalence(prog_, cg.program, {{"N", 7}});
  EXPECT_TRUE(v.equivalent) << v.to_string();
}

TEST_F(LuPipeline, LeftLookingCompletionVerifies) {
  // New outer = old L (the column being updated), as for Cholesky §6.
  IntVec first(6, 0);
  first[layout_.loop_position("L")] = 1;
  CompletionResult res = complete_transformation(layout_, deps_, {first});
  EXPECT_TRUE(res.legality.legal());
  CodegenResult cg = generate_code(layout_, deps_, res.matrix);
  for (i64 n : {1, 3, 6}) {
    VerifyResult v = verify_equivalence(prog_, cg.program, {{"N", n}});
    EXPECT_TRUE(v.equivalent) << "N=" << n << ": " << v.to_string();
  }
  TraceCheckResult t =
      check_dependence_order(prog_, cg.program, {{"N", 5}});
  EXPECT_TRUE(t.ok) << t.diagnosis;
  // The update nest must run before the scaling, as in left-looking
  // forms.
  auto stmts = cg.program.statements();
  EXPECT_EQ(stmts[0].label(), "S2");
  EXPECT_EQ(stmts[1].label(), "S1");
}


}  // namespace
}  // namespace inlt
