// Fig 7's Complete procedure in isolation, plus the failure modes of
// the global completion (§6).
#include <gtest/gtest.h>

#include <random>

#include "ir/parser.hpp"
#include "linalg/gauss.hpp"
#include "transform/completion.hpp"
#include "transform/per_statement.hpp"

namespace inlt {
namespace {

TEST(CompleteRows, PaperExample) {
  // §5.4: T_S1 = [0] with unsatisfied self-dependence projection [1]
  // completes to [0; 1].
  IntMat t{{0}};
  IntMat out = complete_rows(t, {dep_from_ints({1})});
  EXPECT_EQ(out, (IntMat{{0}, {1}}));
}

TEST(CompleteRows, HeightRowsSatisfyDependences) {
  // Two dependences of different heights: (0,1,*) and (2,0,0).
  IntMat t(0, 3);
  std::vector<DepVector> ds;
  ds.push_back({DepEntry::exact(0), DepEntry::exact(1), DepEntry::star()});
  ds.push_back({DepEntry::exact(2), DepEntry::exact(0), DepEntry::exact(0)});
  IntMat out = complete_rows(t, ds);
  EXPECT_EQ(rank(out), 3);
  // Every dependence must be lexicographically positive under the
  // completed matrix.
  for (const DepVector& d : ds)
    EXPECT_EQ(lex_status(transform_dep(out, d)), LexStatus::kPositive);
}

TEST(CompleteRows, NullspaceCompletionWhenNoDependences) {
  IntMat t{{1, 1, 0}};
  IntMat out = complete_rows(t, {});
  EXPECT_EQ(out.cols(), 3);
  EXPECT_EQ(rank(out), 3);
  EXPECT_EQ(out.row(0), (IntVec{1, 1, 0}));  // existing rows preserved
}

TEST(CompleteRows, ZeroHeightDependenceThrows) {
  // An "unsatisfied" dependence that is identically zero is a
  // contradiction (two distinct instances cannot be the same).
  IntMat t(0, 2);
  EXPECT_THROW(complete_rows(t, {dep_from_ints({0, 0})}), Error);
}

TEST(CompleteRows, NonPositiveLeadingEntryThrows) {
  IntMat t(0, 2);
  std::vector<DepVector> ds;
  ds.push_back({DepEntry::non_neg(), DepEntry::exact(1)});
  EXPECT_THROW(complete_rows(t, ds), Error);
}

// Property sweep: random orthogonal-start completions reach full rank
// and order every dependence.
class CompleteRowsRandom : public ::testing::TestWithParam<int> {};

TEST_P(CompleteRowsRandom, ReachesFullRankAndOrders) {
  std::mt19937 rng(GetParam() * 7001);
  std::uniform_int_distribution<int> dim(1, 4), val(0, 3);
  for (int trial = 0; trial < 30; ++trial) {
    int k = dim(rng);
    // Random lexicographically-positive dependence vectors.
    std::vector<DepVector> ds;
    int nd = val(rng);
    for (int i = 0; i < nd; ++i) {
      IntVec v(k, 0);
      int h = static_cast<int>(rng() % k);
      v[h] = 1 + val(rng);
      for (int q = h + 1; q < k; ++q) v[q] = val(rng) - 1;
      ds.push_back(dep_from_ints(v));
    }
    IntMat t(0, k);  // start from nothing: T_s orthogonality trivial
    IntMat out = complete_rows(t, ds);
    EXPECT_EQ(rank(out), k);
    for (const DepVector& d : ds)
      EXPECT_EQ(lex_status(transform_dep(out, d)), LexStatus::kPositive);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompleteRowsRandom, ::testing::Range(1, 7));

TEST(Completion, CyclicSyntacticConstraintsFail) {
  // Dependences from a source program always point forward, so the
  // original order is always available — cycles require a partial row
  // that collapses a loop-carried dependence to zero. Here the zero
  // row leaves both "S1 before S2" (flow on A, same iteration) and
  // "S2 before S1" (flow on B at distance 1, now unsatisfied) pending:
  // cyclic, so completion must fail.
  Program p = parse_program(R"(
param N
do I = 1, N
  S1: A(I) = B(I - 1) + 1.0
  S2: B(I) = A(I) * 2.0
end
)");
  IvLayout layout(p);
  DependenceSet deps = analyze_dependences(layout);
  std::vector<IntVec> zero_row = {IntVec(layout.size(), 0)};
  EXPECT_THROW(complete_transformation(layout, deps, zero_row),
               TransformError);
}

TEST(Completion, OriginalOrderKeptWhenSufficient) {
  // S1's read of B(I) precedes S2's write (an anti dependence the
  // original order satisfies); the empty-partial completion keeps the
  // stable original order.
  Program p = parse_program(R"(
param N
do I = 1, N
  S1: A(I) = B(I) + 1.0
  S2: B(I) = C(I) * 2.0
end
)");
  IvLayout layout(p);
  DependenceSet deps = analyze_dependences(layout);
  CompletionResult res = complete_transformation(layout, deps, {});
  EXPECT_TRUE(res.legality.legal());
  auto stmts = res.recovery.target->statements();
  EXPECT_EQ(stmts[0].label(), "S1");
  EXPECT_EQ(stmts[1].label(), "S2");
}

TEST(Completion, ReorderingRequiredAndFound) {
  // A zero partial row un-carries the B flow (S2 at iteration i feeds
  // S1 at i+1); with no conflicting constraint the topological sort
  // must put S2 first.
  Program p = parse_program(R"(
param N
do I = 1, N
  S1: C(I) = B(I - 1) + 1.0
  S2: B(I) = 7.0
end
)");
  IvLayout layout(p);
  DependenceSet deps = analyze_dependences(layout);
  std::vector<IntVec> zero_row = {IntVec(layout.size(), 0)};
  CompletionResult res = complete_transformation(layout, deps, zero_row);
  EXPECT_TRUE(res.legality.legal());
  auto stmts = res.recovery.target->statements();
  EXPECT_EQ(stmts[0].label(), "S2");
  EXPECT_EQ(stmts[1].label(), "S1");
}

TEST(Completion, PartialRowCountLimit) {
  Program p = parse_program(R"(
param N
do I = 1, N
  S1: A(I) = 1.0
end
)");
  IvLayout layout(p);
  DependenceSet deps = analyze_dependences(layout);
  std::vector<IntVec> too_many(2, IntVec(layout.size(), 0));
  EXPECT_THROW(complete_transformation(layout, deps, too_many), Error);
}

}  // namespace
}  // namespace inlt
