// §1/§7's parallelism claim: parallel directions are nullspace rows of
// the dependence matrix.
#include <gtest/gtest.h>

#include "ir/gallery.hpp"
#include "ir/parser.hpp"
#include "transform/parallel.hpp"

namespace inlt {
namespace {

TEST(Parallel, FullyParallelNest) {
  Program p = parse_program(R"(
param N
do I = 1, N
  do J = 1, N
    S1: A(I, J) = B(I, J) * 2.0
  end
end
)");
  IvLayout layout(p);
  DependenceSet deps = analyze_dependences(layout);
  EXPECT_TRUE(deps.deps.empty());
  EXPECT_EQ(parallel_row_basis(layout, deps).size(), 2u);
  EXPECT_EQ(parallel_loops(layout, deps),
            (std::vector<std::string>{"I", "J"}));
}

TEST(Parallel, InnerRecurrenceLeavesOuterParallel) {
  Program p = parse_program(R"(
param N
do I = 1, N
  do J = 1, N
    S1: A(I, J) = A(I, J - 1) + 1.0
  end
end
)");
  IvLayout layout(p);
  DependenceSet deps = analyze_dependences(layout);
  // Every dependence is (0, 1): the I direction is parallel.
  auto basis = parallel_row_basis(layout, deps);
  ASSERT_EQ(basis.size(), 1u);
  EXPECT_EQ(basis[0][layout.loop_position("I")], 1);
  EXPECT_EQ(basis[0][layout.loop_position("J")], 0);
  EXPECT_EQ(parallel_loops(layout, deps), (std::vector<std::string>{"I"}));
}

TEST(Parallel, DiagonalDependenceGivesWavefrontRow) {
  // Dependence (1, -1): the nullspace row I + J is the classic
  // wavefront direction.
  Program p = parse_program(R"(
param N
do I = 1, N
  do J = 1, N
    S1: A(I, J) = A(I - 1, J + 1) + 1.0
  end
end
)");
  IvLayout layout(p);
  DependenceSet deps = analyze_dependences(layout);
  auto basis = parallel_row_basis(layout, deps);
  ASSERT_EQ(basis.size(), 1u);
  i64 ci = basis[0][layout.loop_position("I")];
  i64 cj = basis[0][layout.loop_position("J")];
  EXPECT_EQ(ci, cj);  // the (1, 1) direction (up to sign)
  EXPECT_NE(ci, 0);
  // The outer loop carries the dependence, so the inner loop is
  // already doall; the outer is not.
  EXPECT_EQ(parallel_loops(layout, deps), (std::vector<std::string>{"J"}));
}

TEST(Parallel, CholeskyInnerLoopsAreDoall) {
  // The textbook structure of right-looking Cholesky: the K loop is
  // sequential (it carries every cross-step dependence), while the
  // scaling loop I and the update loops J, L are doall within a step.
  Program p = gallery::cholesky();
  IvLayout layout(p);
  DependenceSet deps = analyze_dependences(layout);
  EXPECT_EQ(parallel_loops(layout, deps),
            (std::vector<std::string>{"J", "L", "I"}));  // layout order
  // But no *direction* annihilates every dependence column: there is
  // no outer-parallel transformation of the whole nest.
  EXPECT_TRUE(parallel_row_basis(layout, deps).empty());
}

TEST(Parallel, ImperfectNestOuterParallel) {
  // Imperfectly nested but outer-parallel: each I slice is
  // independent.
  Program p = parse_program(R"(
param N
do I = 1, N
  S1: X(I) = 3.0
  do J = 1, N
    S2: A(I, J) = A(I, J - 1) + X(I)
  end
end
)");
  IvLayout layout(p);
  DependenceSet deps = analyze_dependences(layout);
  ASSERT_FALSE(deps.deps.empty());  // S1 -> S2 flow within the slice
  auto loops = parallel_loops(layout, deps);
  ASSERT_EQ(loops.size(), 1u);
  EXPECT_EQ(loops[0], "I");
}

}  // namespace
}  // namespace inlt
