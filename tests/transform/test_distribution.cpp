// §4.2: loop distribution and jamming as non-square matrices.
//
// Layout note: our instance vectors follow Eq. (1) exactly (subtrees
// collected right-to-left), which is the convention the §6 dependence
// matrix uses; the §4.2 display orders sibling subtrees left-to-right
// instead, so the matrices below are the Eq.-(1)-consistent versions
// of the paper's (rows permuted accordingly). DESIGN.md records the
// discrepancy.
#include <gtest/gtest.h>

#include "instance/enumerate.hpp"
#include "ir/gallery.hpp"
#include "transform/transforms.hpp"

namespace inlt {
namespace {

TEST(Distribution, SimplifiedCholeskyMatrix) {
  Program p = gallery::simplified_cholesky();
  IvLayout layout(p);
  StructuralTransform st = loop_distribution(layout, "I", 1);
  // Source layout [I, e2, e1, J]; target layout (two root loops)
  // [eB, eA, I_2, J, I]: the I-loop copies read the source I row, the
  // root edges read the source child edges, J maps through.
  EXPECT_EQ(st.matrix, (IntMat{{0, 1, 0, 0},
                               {0, 0, 1, 0},
                               {1, 0, 0, 0},
                               {0, 0, 0, 1},
                               {1, 0, 0, 0}}));
  // Target program: two top-level loops; S1 under the first.
  ASSERT_EQ(st.target.roots().size(), 2u);
  auto stmts = st.target.statements();
  EXPECT_EQ(stmts[0].label(), "S1");
  EXPECT_EQ(stmts[1].label(), "S2");
  EXPECT_NO_THROW(st.target.validate());
}

TEST(Distribution, MatrixMapsInstanceVectorsConsistently) {
  Program p = gallery::simplified_cholesky();
  IvLayout src(p);
  StructuralTransform st = loop_distribution(src, "I", 1);
  IvLayout dst(st.target);
  // Loop labels of real (non-padded) positions must transfer: applying
  // the matrix to a source instance vector reproduces the target
  // instance vector at every non-padded position.
  for (auto di : {DynamicInstance{"S1", {3}}, DynamicInstance{"S2", {2, 5}}}) {
    IntVec mapped = mat_vec(st.matrix, src.instance_vector(di));
    DynamicInstance tgt_di = di;  // same labels, same iteration values
    IntVec expect = dst.instance_vector(tgt_di);
    const auto& info = dst.stmt_info(di.label);
    for (int pos : info.loop_positions) {
      EXPECT_EQ(mapped[pos], expect[pos]);
    }
    for (int pos : info.path_edge_positions) {
      EXPECT_EQ(mapped[pos], expect[pos]);
    }
  }
}

TEST(Distribution, ExecutionOrderIsValidDistribution) {
  // The distributed program runs all S1 instances, then all S2
  // instances, in their original relative orders.
  Program p = gallery::simplified_cholesky();
  IvLayout src(p);
  StructuralTransform st = loop_distribution(src, "I", 1);
  auto insts = all_instances(st.target, {{"N", 4}});
  bool seen_s2 = false;
  for (const auto& di : insts) {
    if (di.label == "S2") seen_s2 = true;
    if (di.label == "S1") {
      EXPECT_FALSE(seen_s2) << "S1 after S2";
    }
  }
  // Same multiset of instances as the source.
  auto src_insts = all_instances(p, {{"N", 4}});
  EXPECT_EQ(insts.size(), src_insts.size());
}

TEST(Jamming, InverseOfDistribution) {
  Program p = gallery::simplified_cholesky_distributed();
  IvLayout src(p);
  StructuralTransform st = loop_jamming(src, "I", "I2");
  // Target: single fused loop, children S1 then the J loop.
  ASSERT_EQ(st.target.roots().size(), 1u);
  EXPECT_EQ(st.target.roots()[0]->num_children(), 2);
  auto stmts = st.target.statements();
  EXPECT_EQ(stmts[0].label(), "S1");
  EXPECT_EQ(stmts[1].label(), "S2");
  // Matrix: 4 x 5 mapping distributed vectors back to fused ones.
  EXPECT_EQ(st.matrix.rows(), 4);
  EXPECT_EQ(st.matrix.cols(), 5);
  // Fused instance vectors reproduce the original simplified-Cholesky
  // ones: S1(i) -> [i,0,1,i], S2(i,j) -> [i,1,0,j].
  IvLayout dst(st.target);
  IntVec s1 = mat_vec(st.matrix, src.instance_vector({"S1", {3}}));
  EXPECT_EQ(s1, dst.instance_vector({"S1", {3}}));
  IntVec s2 = mat_vec(st.matrix, src.instance_vector({"S2", {2, 5}}));
  EXPECT_EQ(s2, dst.instance_vector({"S2", {2, 5}}));
}

TEST(Jamming, RoundTripDistributeThenJam) {
  Program p = gallery::simplified_cholesky();
  IvLayout src(p);
  StructuralTransform dist = loop_distribution(src, "I", 1);
  IvLayout mid(dist.target);
  StructuralTransform jam = loop_jamming(mid, "I", "I_2");
  // The product of the two matrices maps fused space to fused space
  // and acts as the identity on real positions.
  IntMat round = mat_mul(jam.matrix, dist.matrix);
  EXPECT_EQ(round.rows(), 4);
  EXPECT_EQ(round.cols(), 4);
  IvLayout fin(jam.target);
  for (auto di : {DynamicInstance{"S1", {3}}, DynamicInstance{"S2", {2, 5}}}) {
    IntVec v = mat_vec(round, src.instance_vector(di));
    EXPECT_EQ(v, fin.instance_vector(di));
  }
}

TEST(Distribution, InvalidSplitThrows) {
  Program p = gallery::simplified_cholesky();
  IvLayout layout(p);
  EXPECT_THROW(loop_distribution(layout, "I", 0), Error);
  EXPECT_THROW(loop_distribution(layout, "I", 2), Error);
  EXPECT_THROW(loop_distribution(layout, "J", 1), Error);  // not a root
}

}  // namespace
}  // namespace inlt
