// §6: completion of the k/j interchange of Cholesky to a full legal
// transformation producing the left-looking form (Fig 8).
#include <gtest/gtest.h>

#include "ir/gallery.hpp"
#include "ir/printer.hpp"
#include "transform/completion.hpp"
#include "transform/per_statement.hpp"

namespace inlt {
namespace {

class CholeskyCompletion : public ::testing::Test {
 protected:
  CholeskyCompletion()
      : prog_(gallery::cholesky()),
        layout_(prog_),
        deps_(analyze_dependences(layout_)) {}

  Program prog_;
  IvLayout layout_;
  DependenceSet deps_;
};

TEST_F(CholeskyCompletion, DependenceMatrixContainsPaperColumns) {
  // §6's dependence matrix lists (among others) these columns in the
  // layout [K, e3, e2, e1, J, L, I]:
  //   [0,0,1,-1,0,0,+]   flow S1 -> S2 (the pivot column scaling)
  //   [0,1,-1,0,+,+,-]   flow S2 -> S3 (updates read the scaled column)
  //   [+,0,0,0,0,0,+]    S3 self dependence across K
  //   [1,-1,0,1,0,0,1]   flow S3 -> S1 (paper prints the value-based
  //                      distance-1 representative; the memory-based
  //                      hull is [+,-1,0,1,0,0,+], which subsumes it —
  //                      same deviation as §3, see EXPERIMENTS.md)
  auto has = [&](const std::string& src, const std::string& dst,
                 const std::string& vec) {
    for (const Dependence& d : deps_.deps)
      if (d.src == src && d.dst == dst && dep_to_string(d.vector) == vec)
        return true;
    return false;
  };
  EXPECT_TRUE(has("S1", "S2", "[0, 0, 1, -1, 0, 0, +]")) << deps_.to_string();
  EXPECT_TRUE(has("S2", "S3", "[0, 1, -1, 0, +, +, -]")) << deps_.to_string();
  EXPECT_TRUE(has("S3", "S3", "[+, 0, 0, 0, 0, 0, +]")) << deps_.to_string();
  EXPECT_TRUE(has("S3", "S1", "[+, -1, 0, 1, 0, 0, +]")) << deps_.to_string();
}

TEST_F(CholeskyCompletion, CompletesToLeftLooking) {
  // Partial transformation: the new outermost loop takes the old L
  // values — the column index of the update A(J,L), which is what the
  // left-looking form iterates over outermost. (The flow S3 -> S2
  // column [+,-1,1,0,-,0,[2,inf)] has a negative J entry, so "new
  // outer = old J" is NOT legal; the old-L row is, and yields exactly
  // Fig 8's target AST.)
  IntVec first_row(7, 0);
  first_row[layout_.loop_position("L")] = 1;
  CompletionResult res = complete_transformation(layout_, deps_, {first_row});
  EXPECT_TRUE(res.legality.legal());
  // No augmentation needed: "the per-statement transformation in this
  // case is non-singular for each statement".
  std::vector<StatementPlan> plans = plan_statements(
      layout_, deps_, res.matrix, res.recovery, res.legality);
  for (const StatementPlan& p : plans) {
    EXPECT_EQ(p.t_full.rows(), p.num_tree_rows) << "augmented " << p.label;
    EXPECT_EQ(static_cast<int>(p.nonsingular_rows.size()),
              p.t_full.rows());
  }
  // Fig 8 right: the transformed AST runs the S3 nest first, then S1,
  // then the S2 loop.
  auto stmts = res.recovery.target->statements();
  ASSERT_EQ(stmts.size(), 3u);
  EXPECT_EQ(stmts[0].label(), "S3");
  EXPECT_EQ(stmts[1].label(), "S1");
  EXPECT_EQ(stmts[2].label(), "S2");
}

TEST_F(CholeskyCompletion, IdentityPartialGivesRightLooking) {
  // Completing from the identity first row keeps the original
  // right-looking order.
  IntVec first_row(7, 0);
  first_row[layout_.loop_position("K")] = 1;
  CompletionResult res = complete_transformation(layout_, deps_, {first_row});
  EXPECT_TRUE(res.legality.legal());
  auto stmts = res.recovery.target->statements();
  EXPECT_EQ(stmts[0].label(), "S1");
  EXPECT_EQ(stmts[1].label(), "S2");
  EXPECT_EQ(stmts[2].label(), "S3");
}

TEST_F(CholeskyCompletion, EmptyPartialCompletes) {
  CompletionResult res = complete_transformation(layout_, deps_, {});
  EXPECT_TRUE(res.legality.legal());
}

TEST_F(CholeskyCompletion, ReversedOuterRowFails) {
  // A first row sending new-outer = -K reverses every K-carried
  // dependence.
  IntVec first_row(7, 0);
  first_row[layout_.loop_position("K")] = -1;
  EXPECT_THROW(complete_transformation(layout_, deps_, {first_row}),
               TransformError);
}

}  // namespace
}  // namespace inlt
