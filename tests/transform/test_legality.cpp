// Definition 6's legality test on the paper's examples.
#include <gtest/gtest.h>

#include "ir/gallery.hpp"
#include "transform/legality.hpp"
#include "transform/transforms.hpp"

namespace inlt {
namespace {

class Legality : public ::testing::Test {
 protected:
  Legality()
      : prog_(gallery::simplified_cholesky()),
        layout_(prog_),
        deps_(analyze_dependences(layout_)) {}

  Program prog_;
  IvLayout layout_;
  DependenceSet deps_;
};

TEST_F(Legality, IdentityIsLegal) {
  LegalityResult r = check_legality(layout_, deps_, IntMat::identity(4));
  EXPECT_TRUE(r.legal()) << r.violations.front();
  EXPECT_TRUE(r.unsatisfied.empty());
}

TEST_F(Legality, InterchangeAloneIsIllegalWithoutReordering) {
  // §4.1 presents the I/J interchange matrix for its mechanics. The
  // interchange by itself is NOT legal: S2(i, j) -> S1(j) lands in the
  // same new outer iteration j with S1 syntactically first. The legal
  // version composes statement reordering (as §6's completion does for
  // full Cholesky).
  IntMat m = loop_interchange(layout_, "I", "J");
  LegalityResult r = check_legality(layout_, deps_, m);
  EXPECT_FALSE(r.legal());
}

TEST_F(Legality, InterchangePlusReorderIsLegal) {
  IntMat m = mat_mul(statement_reorder(layout_, "I", {1, 0}),
                     loop_interchange(layout_, "I", "J"));
  LegalityResult r = check_legality(layout_, deps_, m);
  EXPECT_TRUE(r.legal()) << r.violations.front();
}

TEST_F(Legality, OuterReversalIsIllegal) {
  // Reversing the outer loop runs the recurrence backwards.
  IntMat m = loop_reversal(layout_, "I");
  LegalityResult r = check_legality(layout_, deps_, m);
  EXPECT_FALSE(r.legal());
}

TEST_F(Legality, ReorderingDependentStatementsIsIllegal) {
  // S1 must stay before S2 within an I iteration: the flow dependence
  // [0,1,-1,+] has zero projection on the common loop I, so syntactic
  // order must satisfy it.
  IntMat m = statement_reorder(layout_, "I", {1, 0});
  LegalityResult r = check_legality(layout_, deps_, m);
  EXPECT_FALSE(r.legal());
}

TEST_F(Legality, SkewLeavesS1SelfDependencesUnsatisfiedInAugExample) {
  // §5.4's example: M = skew I by -J; all instances of S1 map to outer
  // iteration 0, leaving S1's self-dependence unsatisfied (but legal).
  Program p = gallery::augmentation_example();
  IvLayout layout(p);
  DependenceSet deps = analyze_dependences(layout);
  IntMat m = loop_skew(layout, "I", "J", -1);
  LegalityResult r = check_legality(layout, deps, m);
  EXPECT_TRUE(r.legal()) << r.violations.front();
  ASSERT_FALSE(r.unsatisfied.empty());
  for (int idx : r.unsatisfied) {
    EXPECT_EQ(deps.deps[idx].src, "S1");
    EXPECT_EQ(deps.deps[idx].dst, "S1");
  }
}

TEST_F(Legality, SkewOfSimplifiedCholeskyIsIllegal) {
  // §4.1 shows the skew matrix on the simplified Cholesky fragment for
  // its mechanics; applied there it sends S1(i) to outer iteration 0
  // and S2(i, j) to i-j < 0, reversing the S1 -> S2 flow. (The paper's
  // legal skew demonstration, §5.4, uses the B/A example where the
  // same matrix is legal — covered by the test above.)
  IntMat m = loop_skew(layout_, "I", "J", -1);
  LegalityResult r = check_legality(layout_, deps_, m);
  EXPECT_FALSE(r.legal());
}

TEST_F(Legality, AlignmentIsLegalHere) {
  IntMat m = statement_alignment(layout_, "S1", "I", 1);
  LegalityResult r = check_legality(layout_, deps_, m);
  // Aligning S1 forward by one I iteration: S1(i) now runs in outer
  // iteration i+1, i.e. after S2(i, *)... the flow S1->S2 within
  // iteration i is then violated.
  EXPECT_FALSE(r.legal());
}

TEST_F(Legality, BackwardAlignmentAlsoIllegal) {
  // Aligning S1 backward by one: S2(i, i+1) -> S1(i+1) now lands in
  // the same outer iteration with S1 syntactically first — violated.
  IntMat m = statement_alignment(layout_, "S1", "I", -1);
  LegalityResult r = check_legality(layout_, deps_, m);
  EXPECT_FALSE(r.legal());
}

}  // namespace
}  // namespace inlt
