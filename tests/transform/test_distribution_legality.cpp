// §1's distribution claim, made testable: "loop distribution is not
// always legal; in particular, it is not legal in any of the matrix
// factorization codes."
#include <gtest/gtest.h>

#include "exec/verify.hpp"
#include "ir/gallery.hpp"
#include "ir/parser.hpp"
#include "transform/legality.hpp"
#include "transform/transforms.hpp"

namespace inlt {
namespace {

TEST(DistributionLegality, IllegalInSimplifiedCholesky) {
  Program p = gallery::simplified_cholesky();
  IvLayout layout(p);
  DependenceSet deps = analyze_dependences(layout);
  std::string diag = check_distribution_legality(layout, deps, "I", 1);
  EXPECT_FALSE(diag.empty());
  // The offender is the pivot flow: S2 in the second group produces
  // values S1 in the first group consumes in later iterations.
  EXPECT_NE(diag.find("S2 -> S1"), std::string::npos) << diag;
}

TEST(DistributionLegality, IllegalInFullCholeskyAtEverySplit) {
  // "... not legal in any of the matrix factorization codes."
  Program p = gallery::cholesky();
  IvLayout layout(p);
  DependenceSet deps = analyze_dependences(layout);
  for (int split : {1, 2}) {
    std::string diag = check_distribution_legality(layout, deps, "K", split);
    EXPECT_FALSE(diag.empty()) << "split " << split;
  }
}

TEST(DistributionLegality, LegalCaseDistributesAndVerifies) {
  // Forward-only dependences between the groups: distribution is legal
  // and the distributed program computes the same memory state.
  Program p = parse_program(R"(
param N
do I = 1, N
  S1: A(I) = A(I - 1) + 1.0
  do J = 1, N
    S2: B(I, J) = A(I) * 2.0
  end
end
)");
  IvLayout layout(p);
  DependenceSet deps = analyze_dependences(layout);
  EXPECT_EQ(check_distribution_legality(layout, deps, "I", 1), "");
  StructuralTransform st = loop_distribution(layout, "I", 1);
  VerifyResult v =
      verify_equivalence(p, st.target, {{"N", 6}}, FillKind::kRandom);
  EXPECT_TRUE(v.equivalent) << v.to_string();
}

TEST(DistributionLegality, IllegalCaseMiscomputesIfForced) {
  // Sanity of the oracle itself: forcing the illegal distribution of
  // simplified Cholesky changes the computed values.
  Program p = gallery::simplified_cholesky();
  IvLayout layout(p);
  StructuralTransform st = loop_distribution(layout, "I", 1);
  VerifyResult v = verify_equivalence(p, st.target, {{"N", 6}});
  EXPECT_FALSE(v.equivalent);
}

TEST(DistributionLegality, LegalDistributionRoundTripsThroughJamming) {
  Program p = parse_program(R"(
param N
do I = 1, N
  S1: A(I) = C(I) + 1.0
  S2: B(I) = A(I) * 2.0
end
)");
  IvLayout layout(p);
  DependenceSet deps = analyze_dependences(layout);
  ASSERT_EQ(check_distribution_legality(layout, deps, "I", 1), "");
  StructuralTransform dist = loop_distribution(layout, "I", 1);
  VerifyResult v1 =
      verify_equivalence(p, dist.target, {{"N", 5}}, FillKind::kRandom);
  EXPECT_TRUE(v1.equivalent);
  IvLayout mid(dist.target);
  StructuralTransform jam = loop_jamming(mid, "I", "I_2");
  VerifyResult v2 =
      verify_equivalence(p, jam.target, {{"N", 5}}, FillKind::kRandom);
  EXPECT_TRUE(v2.equivalent);
}

TEST(DistributionLegality, GeneralDef6TestAgreesWithGroupCheck) {
  // The group heuristic and the full Definition-6 test (run against
  // the distribution's non-square matrix and target layout) must agree
  // on both the matrix-factorization rejection and the legal case.
  {
    Program p = gallery::simplified_cholesky();
    IvLayout layout(p);
    DependenceSet deps = analyze_dependences(layout);
    StructuralTransform st = loop_distribution(layout, "I", 1);
    IvLayout tl(st.target);
    LegalityResult r =
        check_legality_with_target(layout, deps, st.matrix, tl);
    EXPECT_FALSE(r.legal());
    EXPECT_NE(check_distribution_legality(layout, deps, "I", 1), "");
  }
  {
    Program p = parse_program(R"(
param N
do I = 1, N
  S1: A(I) = A(I - 1) + 1.0
  do J = 1, N
    S2: B(I, J) = A(I) * 2.0
  end
end
)");
    IvLayout layout(p);
    DependenceSet deps = analyze_dependences(layout);
    StructuralTransform st = loop_distribution(layout, "I", 1);
    IvLayout tl(st.target);
    LegalityResult r =
        check_legality_with_target(layout, deps, st.matrix, tl);
    EXPECT_TRUE(r.legal()) << r.violations.front();
    EXPECT_EQ(check_distribution_legality(layout, deps, "I", 1), "");
  }
}

TEST(DistributionLegality, JammingLegalityViaDef6) {
  // Jamming the distributed *simplified Cholesky* back is NOT legal as
  // a standalone transformation: the distributed program's own
  // semantics (all S1 first) has an output dependence S1 -> S2 that
  // fusion reverses. (§4.2's distribute/jam round trip is a formal
  // demonstration of the matrices, not a legal rewrite — the
  // distribution step was already illegal, see
  // IllegalInSimplifiedCholesky.) The Def-6 structural test catches
  // it.
  {
    Program p = gallery::simplified_cholesky_distributed();
    IvLayout layout(p);
    DependenceSet deps = analyze_dependences(layout);
    StructuralTransform st = loop_jamming(layout, "I", "I2");
    IvLayout tl(st.target);
    LegalityResult r =
        check_legality_with_target(layout, deps, st.matrix, tl);
    EXPECT_FALSE(r.legal());
  }
  // A legally distributed program jams back legally and verifies.
  {
    Program p = parse_program(R"(
param N
do I = 1, N
  S1: A(I) = C(I) + 1.0
end
do I2 = 1, N
  S2: B(I2) = A(I2) * 2.0
end
)");
    IvLayout layout(p);
    DependenceSet deps = analyze_dependences(layout);
    StructuralTransform st = loop_jamming(layout, "I", "I2");
    IvLayout tl(st.target);
    LegalityResult r =
        check_legality_with_target(layout, deps, st.matrix, tl);
    EXPECT_TRUE(r.legal()) << (r.violations.empty()
                                   ? ""
                                   : r.violations.front());
    VerifyResult v =
        verify_equivalence(p, st.target, {{"N", 6}}, FillKind::kRandom);
    EXPECT_TRUE(v.equivalent) << v.to_string();
  }
}

}  // namespace
}  // namespace inlt
