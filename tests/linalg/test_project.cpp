// Omega-test solver: exactness cross-checked against brute-force
// enumeration on bounded random systems.
#include "linalg/project.hpp"

#include <gtest/gtest.h>

#include <random>

namespace inlt {
namespace {

// Brute force: does the system have an integer solution with every
// variable in [-box, box]?
bool brute_force_feasible(const ConstraintSystem& cs, i64 box) {
  int n = cs.num_vars();
  IntVec x(n, -box);
  for (;;) {
    bool ok = true;
    for (const LinExpr& e : cs.equalities())
      if (vec_dot(e.coef, x) + e.constant != 0) {
        ok = false;
        break;
      }
    if (ok)
      for (const LinExpr& e : cs.inequalities())
        if (vec_dot(e.coef, x) + e.constant < 0) {
          ok = false;
          break;
        }
    if (ok) return true;
    int i = 0;
    while (i < n && x[i] == box) x[i++] = -box;
    if (i == n) return false;
    ++x[i];
  }
}

ConstraintSystem boxed(ConstraintSystem cs, i64 box) {
  for (int i = 0; i < cs.num_vars(); ++i) {
    cs.add_var_ge(i, -box);
    cs.add_var_le(i, box);
  }
  return cs;
}

TEST(Omega, TrivialSystems) {
  ConstraintSystem cs({"x"});
  EXPECT_TRUE(integer_feasible(cs));  // no constraints
  cs.add_var_ge(0, 5);
  cs.add_var_le(0, 3);
  EXPECT_FALSE(integer_feasible(cs));  // 5 <= x <= 3
}

TEST(Omega, GcdTestOnEqualities) {
  // 2x + 4y == 1 has no integer solution.
  ConstraintSystem cs({"x", "y"});
  LinExpr e = cs.zero_expr();
  e.coef = {2, 4};
  e.constant = -1;
  cs.add_eq(e);
  EXPECT_FALSE(integer_feasible(cs));
  // 2x + 4y == 6 does.
  ConstraintSystem cs2({"x", "y"});
  LinExpr e2 = cs2.zero_expr();
  e2.coef = {2, 4};
  e2.constant = -6;
  cs2.add_eq(e2);
  EXPECT_TRUE(integer_feasible(cs2));
}

TEST(Omega, DarkShadowCase) {
  // 2x >= 3 and 2x <= 5 admits integer x=2; 2x >= 3 and 2x <= 3 does
  // not (x = 1.5 only).
  ConstraintSystem a({"x"});
  LinExpr l = a.zero_expr();
  l.coef = {2};
  l.constant = -3;  // 2x - 3 >= 0
  a.add_ge(l);
  LinExpr u = a.zero_expr();
  u.coef = {-2};
  u.constant = 5;  // 5 - 2x >= 0
  a.add_ge(u);
  EXPECT_TRUE(integer_feasible(a));

  ConstraintSystem b({"x"});
  b.add_ge(l);
  LinExpr u2 = b.zero_expr();
  u2.coef = {-2};
  u2.constant = 3;  // 3 - 2x >= 0
  b.add_ge(u2);
  EXPECT_FALSE(integer_feasible(b));
}

TEST(Omega, ClassicIntegerHole) {
  // 3 <= 2x + 3y <= 4 with 1 <= x,y ... crafted two-variable hole:
  // 2x == 2y + 1 is infeasible over integers but feasible over Q.
  ConstraintSystem cs({"x", "y"});
  LinExpr e = cs.zero_expr();
  e.coef = {2, -2};
  e.constant = -1;
  cs.add_eq(e);
  EXPECT_FALSE(integer_feasible(cs));
}

TEST(Omega, DependenceShapedSystem) {
  // The §3 example: 1<=Iw<=N, 1<=Ir<=N, Ir<Jr<=N, Iw<=Ir, Ir==Iw.
  ConstraintSystem cs({"N", "Iw", "Ir", "Jr"});
  cs.add_var_ge(1, 1);
  cs.add_diff_ge(0, 1, 0);  // N - Iw >= 0
  cs.add_var_ge(2, 1);
  cs.add_diff_ge(0, 2, 0);
  cs.add_diff_ge(3, 2, 1);  // Jr >= Ir + 1
  cs.add_diff_ge(0, 3, 0);
  cs.add_diff_ge(2, 1, 0);   // Ir >= Iw
  cs.add_diff_eq(2, 1, 0);   // Ir == Iw
  EXPECT_TRUE(integer_feasible(cs));
  // Additionally demand Jr == Ir: contradicts Jr >= Ir+1.
  cs.add_diff_eq(3, 2, 0);
  EXPECT_FALSE(integer_feasible(cs));
}

TEST(Omega, EliminateVarRealKeepsImpliedConstraints) {
  // x >= 1, y >= x + 2  — eliminating x leaves y >= 3.
  ConstraintSystem cs({"x", "y"});
  cs.add_var_ge(0, 1);
  cs.add_diff_ge(1, 0, 2);
  ConstraintSystem out = eliminate_var_real(cs, 0);
  // y = 2 must now be infeasible, y = 3 feasible.
  ConstraintSystem probe = out;
  probe.add_var_le(1, 2);
  EXPECT_FALSE(integer_feasible(probe));
  ConstraintSystem probe2 = out;
  probe2.add_var_le(1, 3);
  EXPECT_TRUE(integer_feasible(probe2));
}

TEST(Omega, ProjectOntoSubset) {
  // 1 <= x <= 10, y == 2x: projection onto y keeps 2 <= y <= 20.
  ConstraintSystem cs({"x", "y"});
  cs.add_var_ge(0, 1);
  cs.add_var_le(0, 10);
  LinExpr e = cs.zero_expr();
  e.coef = {2, -1};
  cs.add_eq(e);  // 2x - y == 0
  ConstraintSystem out = project_onto(cs, {1});
  EXPECT_EQ(out.num_vars(), 1);
  ConstraintSystem lo = out;
  lo.add_var_le(0, 1);
  EXPECT_FALSE(integer_feasible(lo));
  ConstraintSystem hi = out;
  hi.add_var_ge(0, 21);
  EXPECT_FALSE(integer_feasible(hi));
  ConstraintSystem mid = out;
  mid.add_var_ge(0, 2);
  mid.add_var_le(0, 20);
  EXPECT_TRUE(integer_feasible(mid));
}

TEST(Omega, NormalizeDetectsFaceContradictions) {
  ConstraintSystem cs({"x"});
  LinExpr e = cs.zero_expr();
  e.constant = -1;  // 0*x - 1 >= 0
  cs.add_ge(e);
  EXPECT_FALSE(normalize_system(cs));
}

// Exactness sweep: random small systems, brute force vs Omega. The
// variables are boxed so brute force is exhaustive and the box is part
// of the system, making the comparison exact.
class OmegaRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(OmegaRandomTest, MatchesBruteForce) {
  std::mt19937 rng(GetParam() * 104729);
  std::uniform_int_distribution<int> nvar(1, 3), ncon(1, 5), val(-4, 4),
      kind(0, 3);
  constexpr i64 kBox = 6;
  for (int trial = 0; trial < 40; ++trial) {
    int n = nvar(rng);
    std::vector<std::string> names;
    for (int i = 0; i < n; ++i) names.push_back("v" + std::to_string(i));
    ConstraintSystem cs(names);
    int m = ncon(rng);
    for (int c = 0; c < m; ++c) {
      LinExpr e = cs.zero_expr();
      for (int i = 0; i < n; ++i) e.coef[i] = val(rng);
      e.constant = val(rng);
      if (kind(rng) == 0)
        cs.add_eq(e);
      else
        cs.add_ge(e);
    }
    ConstraintSystem full = boxed(cs, kBox);
    EXPECT_EQ(integer_feasible(full), brute_force_feasible(full, kBox))
        << "system:\n"
        << full.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OmegaRandomTest, ::testing::Range(1, 13));

}  // namespace
}  // namespace inlt
