#include "linalg/rational.hpp"

#include <gtest/gtest.h>

namespace inlt {
namespace {

TEST(Rational, NormalizesOnConstruction) {
  Rational r(6, 4);
  EXPECT_EQ(r.num(), 3);
  EXPECT_EQ(r.den(), 2);
  Rational s(-6, 4);
  EXPECT_EQ(s.num(), -3);
  EXPECT_EQ(s.den(), 2);
  Rational t(6, -4);
  EXPECT_EQ(t.num(), -3);
  EXPECT_EQ(t.den(), 2);
  Rational z(0, 17);
  EXPECT_EQ(z.num(), 0);
  EXPECT_EQ(z.den(), 1);
}

TEST(Rational, ZeroDenominatorThrows) {
  EXPECT_THROW(Rational(1, 0), Error);
}

TEST(Rational, Arithmetic) {
  Rational a(1, 2), b(1, 3);
  EXPECT_EQ(a + b, Rational(5, 6));
  EXPECT_EQ(a - b, Rational(1, 6));
  EXPECT_EQ(a * b, Rational(1, 6));
  EXPECT_EQ(a / b, Rational(3, 2));
  EXPECT_EQ(-a, Rational(-1, 2));
}

TEST(Rational, DivisionByZeroThrows) {
  EXPECT_THROW(Rational(1, 2) / Rational(0), Error);
}

TEST(Rational, Ordering) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_LT(Rational(-1, 2), Rational(-1, 3));
  EXPECT_GT(Rational(2), Rational(3, 2));
  EXPECT_EQ(Rational(2, 4), Rational(1, 2));
}

TEST(Rational, FloorCeil) {
  EXPECT_EQ(Rational(7, 2).floor(), 3);
  EXPECT_EQ(Rational(7, 2).ceil(), 4);
  EXPECT_EQ(Rational(-7, 2).floor(), -4);
  EXPECT_EQ(Rational(-7, 2).ceil(), -3);
  EXPECT_EQ(Rational(4).floor(), 4);
  EXPECT_EQ(Rational(4).ceil(), 4);
}

TEST(Rational, AsIntegerThrowsOnFraction) {
  EXPECT_EQ(Rational(8, 2).as_integer(), 4);
  EXPECT_THROW(Rational(1, 2).as_integer(), Error);
}

TEST(Rational, ToString) {
  EXPECT_EQ(Rational(3, 2).to_string(), "3/2");
  EXPECT_EQ(Rational(-3).to_string(), "-3");
}

// Field axioms on a grid of small rationals.
class RationalFieldTest : public ::testing::TestWithParam<std::pair<int, int>> {
};

TEST_P(RationalFieldTest, AxiomsHold) {
  auto [n, d] = GetParam();
  Rational q(n, d);
  Rational r(d, 7);  // a second value derived from the parameter
  // additive inverse
  EXPECT_EQ(q + (-q), Rational(0));
  // distributivity against r
  EXPECT_EQ((q + r) * Rational(3), q * Rational(3) + r * Rational(3));
  // multiplicative inverse
  if (!q.is_zero()) {
    EXPECT_EQ(q / q, Rational(1));
  }
  // commutativity
  EXPECT_EQ(q + r, r + q);
  EXPECT_EQ(q * r, r * q);
}

INSTANTIATE_TEST_SUITE_P(
    SmallGrid, RationalFieldTest,
    ::testing::Values(std::pair{0, 1}, std::pair{1, 1}, std::pair{-1, 2},
                      std::pair{3, 5}, std::pair{-7, 3}, std::pair{10, 4},
                      std::pair{-9, 9}, std::pair{5, -10}));

TEST(CheckedInt, OverflowDetected) {
  i64 big = INT64_MAX;
  EXPECT_THROW(checked_add(big, 1), OverflowError);
  EXPECT_THROW(checked_mul(big, 2), OverflowError);
  EXPECT_THROW(checked_neg(INT64_MIN), OverflowError);
  EXPECT_EQ(checked_add(big, 0), big);
}

TEST(CheckedInt, FloorCeilDiv) {
  EXPECT_EQ(floor_div(7, 2), 3);
  EXPECT_EQ(floor_div(-7, 2), -4);
  EXPECT_EQ(floor_div(7, -2), -4);
  EXPECT_EQ(ceil_div(7, 2), 4);
  EXPECT_EQ(ceil_div(-7, 2), -3);
  EXPECT_EQ(floor_mod(-7, 3), 2);
  EXPECT_EQ(floor_mod(7, 3), 1);
}

TEST(CheckedInt, GcdLcm) {
  EXPECT_EQ(gcd(12, 18), 6);
  EXPECT_EQ(gcd(-12, 18), 6);
  EXPECT_EQ(gcd(0, 5), 5);
  EXPECT_EQ(gcd(0, 0), 0);
  EXPECT_EQ(lcm(4, 6), 12);
  EXPECT_EQ(lcm(0, 6), 0);
}

}  // namespace
}  // namespace inlt
