#include "linalg/gauss.hpp"

#include <gtest/gtest.h>

#include <random>

namespace inlt {
namespace {

TEST(Gauss, RankBasics) {
  EXPECT_EQ(rank(IntMat{{1, 0}, {0, 1}}), 2);
  EXPECT_EQ(rank(IntMat{{1, 2}, {2, 4}}), 1);
  EXPECT_EQ(rank(IntMat{{0, 0}, {0, 0}}), 0);
  EXPECT_EQ(rank(IntMat{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}}), 2);
}

TEST(Gauss, InverseRoundTrip) {
  RatMat m = to_rational(IntMat{{2, 1}, {1, 1}});
  RatMat inv = inverse(m);
  EXPECT_EQ(mat_mul(m, inv), to_rational(IntMat::identity(2)));
  EXPECT_EQ(mat_mul(inv, m), to_rational(IntMat::identity(2)));
}

TEST(Gauss, InverseSingularThrows) {
  EXPECT_THROW(inverse(to_rational(IntMat{{1, 2}, {2, 4}})), TransformError);
}

TEST(Gauss, SolveConsistent) {
  RatMat a = to_rational(IntMat{{1, 1}, {1, -1}});
  auto x = solve(a, {Rational(3), Rational(1)});
  ASSERT_TRUE(x.has_value());
  EXPECT_EQ((*x)[0], Rational(2));
  EXPECT_EQ((*x)[1], Rational(1));
}

TEST(Gauss, SolveInconsistentReturnsNullopt) {
  RatMat a = to_rational(IntMat{{1, 1}, {2, 2}});
  EXPECT_FALSE(solve(a, {Rational(1), Rational(3)}).has_value());
}

TEST(Gauss, NullspaceOrthogonality) {
  IntMat a{{1, 2, 3}, {2, 4, 6}};
  auto ns = integer_nullspace(a);
  ASSERT_EQ(ns.size(), 2u);
  for (const IntVec& v : ns) {
    EXPECT_TRUE(vec_is_zero(mat_vec(a, v)));
    EXPECT_EQ(vec_gcd(v), 1);  // primitive
  }
}

TEST(Gauss, NullspaceOfFullRankIsEmpty) {
  EXPECT_TRUE(integer_nullspace(IntMat::identity(3)).empty());
}

TEST(Gauss, IndependentRowIndicesMatchesDef8) {
  // Definition 8: drop rows that are zero or combinations of previous
  // rows.
  IntMat t{{1, -1}, {0, 0}, {0, 1}, {1, 0}};
  EXPECT_EQ(independent_row_indices(t), (std::vector<int>{0, 2}));
}

TEST(Gauss, ExpressInSpan) {
  std::vector<IntVec> basis = {{1, 0, 1}, {0, 1, 1}};
  auto c = express_in_span({2, 3, 5}, basis);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ((*c)[0], Rational(2));
  EXPECT_EQ((*c)[1], Rational(3));
  EXPECT_FALSE(express_in_span({1, 0, 0}, basis).has_value());
  // Empty basis spans only zero.
  EXPECT_TRUE(express_in_span({0, 0}, {}).has_value());
  EXPECT_FALSE(express_in_span({1, 0}, {}).has_value());
}

TEST(Gauss, Determinant) {
  EXPECT_EQ(determinant(IntMat{{1, 2}, {3, 4}}), -2);
  EXPECT_EQ(determinant(IntMat{{2, 0}, {0, 3}}), 6);
  EXPECT_EQ(determinant(IntMat::identity(4)), 1);
  EXPECT_EQ(determinant(IntMat{{1, 2}, {2, 4}}), 0);
}

// Property sweep: random integer matrices — inverse round-trips, rank
// is invariant under transpose, nullspace dimension matches
// rank-nullity.
class GaussRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(GaussRandomTest, RankNullityAndInverse) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<int> dim(1, 5), val(-4, 4);
  for (int trial = 0; trial < 20; ++trial) {
    int r = dim(rng), c = dim(rng);
    IntMat m(r, c);
    for (int i = 0; i < r; ++i)
      for (int j = 0; j < c; ++j) m(i, j) = val(rng);

    int rk = rank(m);
    EXPECT_EQ(rk, rank(m.transposed()));
    auto ns = integer_nullspace(m);
    EXPECT_EQ(static_cast<int>(ns.size()), c - rk);  // rank-nullity
    for (const IntVec& v : ns) EXPECT_TRUE(vec_is_zero(mat_vec(m, v)));

    if (r == c && rk == r) {
      RatMat inv = inverse(to_rational(m));
      EXPECT_EQ(mat_mul(to_rational(m), inv),
                to_rational(IntMat::identity(r)));
      // det(M) * det(M^-1) == 1
      EXPECT_EQ(determinant(to_rational(m)) * determinant(inv), Rational(1));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GaussRandomTest, ::testing::Range(1, 9));

}  // namespace
}  // namespace inlt
