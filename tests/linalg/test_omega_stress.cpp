// Heavier Omega-test stress: wider coefficient ranges (forcing the
// dark-shadow/splinter path), more variables, and soundness of the
// rational-elimination projection.
#include <gtest/gtest.h>

#include <random>

#include "linalg/project.hpp"

namespace inlt {
namespace {

bool brute_force_feasible(const ConstraintSystem& cs, i64 box) {
  int n = cs.num_vars();
  IntVec x(n, -box);
  for (;;) {
    bool ok = true;
    for (const LinExpr& e : cs.equalities())
      if (vec_dot(e.coef, x) + e.constant != 0) {
        ok = false;
        break;
      }
    if (ok)
      for (const LinExpr& e : cs.inequalities())
        if (vec_dot(e.coef, x) + e.constant < 0) {
          ok = false;
          break;
        }
    if (ok) return true;
    int i = 0;
    while (i < n && x[i] == box) x[i++] = -box;
    if (i == n) return false;
    ++x[i];
  }
}

ConstraintSystem boxed(ConstraintSystem cs, i64 box) {
  for (int i = 0; i < cs.num_vars(); ++i) {
    cs.add_var_ge(i, -box);
    cs.add_var_le(i, box);
  }
  return cs;
}

class OmegaStress : public ::testing::TestWithParam<int> {};

TEST_P(OmegaStress, WideCoefficientsMatchBruteForce) {
  std::mt19937 rng(GetParam() * 694847539u);
  std::uniform_int_distribution<int> nvar(2, 4), ncon(2, 6), val(-8, 8),
      kind(0, 4);
  constexpr i64 kBox = 5;
  for (int trial = 0; trial < 25; ++trial) {
    int n = nvar(rng);
    std::vector<std::string> names;
    for (int i = 0; i < n; ++i) names.push_back("v" + std::to_string(i));
    ConstraintSystem cs(names);
    int m = ncon(rng);
    for (int c = 0; c < m; ++c) {
      LinExpr e = cs.zero_expr();
      for (int i = 0; i < n; ++i) e.coef[i] = val(rng);
      e.constant = val(rng);
      if (kind(rng) == 0)
        cs.add_eq(e);
      else
        cs.add_ge(e);
    }
    ConstraintSystem full = boxed(cs, kBox);
    EXPECT_EQ(integer_feasible(full), brute_force_feasible(full, kBox))
        << full.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OmegaStress, ::testing::Range(1, 9));

class ProjectionSoundness : public ::testing::TestWithParam<int> {};

TEST_P(ProjectionSoundness, EliminationNeverLosesSolutions) {
  // Rational FM elimination is a relaxation: every integer solution of
  // the original must restrict to a solution of the eliminated system.
  std::mt19937 rng(GetParam() * 2166136261u);
  std::uniform_int_distribution<int> val(-3, 3), ncon(2, 5);
  constexpr i64 kBox = 4;
  for (int trial = 0; trial < 20; ++trial) {
    ConstraintSystem cs({"x", "y", "z"});
    int m = ncon(rng);
    for (int c = 0; c < m; ++c) {
      LinExpr e = cs.zero_expr();
      for (int i = 0; i < 3; ++i) e.coef[i] = val(rng);
      e.constant = val(rng) + 2;
      cs.add_ge(e);
    }
    ConstraintSystem full = boxed(cs, kBox);
    ConstraintSystem elim = eliminate_var_real(full, 2);  // drop z

    // Enumerate solutions of `full`; (x, y) must satisfy `elim`.
    for (i64 x = -kBox; x <= kBox; ++x)
      for (i64 y = -kBox; y <= kBox; ++y)
        for (i64 z = -kBox; z <= kBox; ++z) {
          IntVec pt{x, y, z};
          bool in_full = true;
          for (const LinExpr& e : full.inequalities())
            if (vec_dot(e.coef, pt) + e.constant < 0) in_full = false;
          if (!in_full) continue;
          for (const LinExpr& e : elim.inequalities()) {
            EXPECT_EQ(e.coef[2], 0) << "residue of eliminated variable";
            EXPECT_GE(vec_dot(e.coef, pt) + e.constant, 0)
                << "solution lost at (" << x << "," << y << "," << z << ")";
          }
        }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProjectionSoundness, ::testing::Range(1, 5));

TEST(OmegaStress, ModHatEqualityPath) {
  // Equalities with no unit coefficient exercise the mod-hat
  // substitution: 6x + 10y == 8 has integer solutions (gcd 2 | 8),
  // 6x + 10y == 7 does not.
  for (auto [c, feasible] : {std::pair{-8, true}, std::pair{-7, false}}) {
    ConstraintSystem cs({"x", "y"});
    LinExpr e = cs.zero_expr();
    e.coef = {6, 10};
    e.constant = c;
    cs.add_eq(e);
    EXPECT_EQ(integer_feasible(cs), feasible) << c;
  }
  // Coupled non-unit equalities: 6x + 10y == 8 and 15y + 9x == 12.
  ConstraintSystem cs({"x", "y"});
  LinExpr e1 = cs.zero_expr();
  e1.coef = {6, 10};
  e1.constant = -8;
  cs.add_eq(e1);
  LinExpr e2 = cs.zero_expr();
  e2.coef = {9, 15};
  e2.constant = -12;
  cs.add_eq(e2);
  EXPECT_TRUE(integer_feasible(cs));  // x=3, y=-1
}

}  // namespace
}  // namespace inlt
