#include "linalg/matrix.hpp"

#include <gtest/gtest.h>

#include "linalg/gauss.hpp"

namespace inlt {
namespace {

TEST(Matrix, LiteralAndAccess) {
  IntMat m{{1, 2}, {3, 4}};
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 2);
  EXPECT_EQ(m(0, 1), 2);
  EXPECT_EQ(m(1, 0), 3);
}

TEST(Matrix, RaggedLiteralThrows) {
  EXPECT_THROW((IntMat{{1, 2}, {3}}), Error);
}

TEST(Matrix, Identity) {
  IntMat id = IntMat::identity(3);
  EXPECT_TRUE(is_identity(id));
  EXPECT_TRUE(is_permutation_matrix(id));
}

TEST(Matrix, Multiply) {
  IntMat a{{1, 2}, {3, 4}};
  IntMat b{{0, 1}, {1, 0}};
  IntMat ab = mat_mul(a, b);
  EXPECT_EQ(ab, (IntMat{{2, 1}, {4, 3}}));
  EXPECT_EQ(mat_mul(b, b), IntMat::identity(2));
}

TEST(Matrix, MultiplyDimensionMismatchThrows) {
  IntMat a(2, 3), b(2, 2);
  EXPECT_THROW(mat_mul(a, b), Error);
}

TEST(Matrix, MatVec) {
  IntMat a{{1, 0, -1}, {0, 2, 0}};
  IntVec x{5, 7, 3};
  EXPECT_EQ(mat_vec(a, x), (IntVec{2, 14}));
}

TEST(Matrix, FromColsMatchesPaperConvention) {
  // Dependence matrices list one column per dependence.
  IntMat d = IntMat::from_cols({{0, 1, -1, 2}, {1, -1, 1, 0}});
  EXPECT_EQ(d.rows(), 4);
  EXPECT_EQ(d.cols(), 2);
  EXPECT_EQ(d(3, 0), 2);
  EXPECT_EQ(d(0, 1), 1);
  EXPECT_EQ(d.col(0), (IntVec{0, 1, -1, 2}));
}

TEST(Matrix, Block) {
  IntMat m{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}};
  EXPECT_EQ(m.block(1, 3, 0, 2), (IntMat{{4, 5}, {7, 8}}));
  EXPECT_EQ(m.block(0, 0, 0, 0).rows(), 0);
}

TEST(Matrix, Transpose) {
  IntMat m{{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(m.transposed(), (IntMat{{1, 4}, {2, 5}, {3, 6}}));
}

TEST(Matrix, PermutationDetection) {
  EXPECT_TRUE(is_permutation_matrix(IntMat{{0, 1}, {1, 0}}));
  EXPECT_FALSE(is_permutation_matrix(IntMat{{1, 1}, {0, 0}}));
  EXPECT_FALSE(is_permutation_matrix(IntMat{{2, 0}, {0, 1}}));
  EXPECT_FALSE(is_permutation_matrix(IntMat(2, 3)));
}

TEST(Matrix, AppendRow) {
  IntMat m(0, 0);
  m.append_row({1, 2, 3});
  m.append_row({4, 5, 6});
  EXPECT_EQ(m, (IntMat{{1, 2, 3}, {4, 5, 6}}));
}

TEST(Vec, LexOrder) {
  EXPECT_TRUE(lex_less({0, 1}, {1, 0}));
  EXPECT_TRUE(lex_less({1, 0}, {1, 1}));
  EXPECT_FALSE(lex_less({1, 1}, {1, 1}));
  EXPECT_EQ(lex_sign({0, 0, 1}), 1);
  EXPECT_EQ(lex_sign({0, -2, 1}), -1);
  EXPECT_EQ(lex_sign({0, 0, 0}), 0);
}

TEST(Vec, FirstNonzeroIsCompletionHeight) {
  EXPECT_EQ(first_nonzero({0, 0, 3, 1}), 2);
  EXPECT_EQ(first_nonzero({0, 0}), -1);
  EXPECT_EQ(first_nonzero({5}), 0);
}

TEST(Vec, GcdAndDivExact) {
  EXPECT_EQ(vec_gcd({6, -9, 12}), 3);
  EXPECT_EQ(vec_div_exact({6, -9, 12}, 3), (IntVec{2, -3, 4}));
  EXPECT_THROW(vec_div_exact({5, 3}, 2), Error);
}

TEST(Vec, Arithmetic) {
  EXPECT_EQ(vec_add({1, 2}, {3, -4}), (IntVec{4, -2}));
  EXPECT_EQ(vec_sub({1, 2}, {3, -4}), (IntVec{-2, 6}));
  EXPECT_EQ(vec_scale(-2, {1, -2}), (IntVec{-2, 4}));
  EXPECT_EQ(vec_dot({1, 2, 3}, {4, 5, 6}), 32);
}

}  // namespace
}  // namespace inlt
