#include <gtest/gtest.h>

#include <random>

#include "linalg/gauss.hpp"
#include "linalg/hermite.hpp"
#include "linalg/smith.hpp"

namespace inlt {
namespace {

void expect_hnf_invariants(const IntMat& a) {
  HermiteResult hr = hermite_normal_form(a);
  // H = A * U and U unimodular.
  EXPECT_EQ(mat_mul(a, hr.u), hr.h);
  EXPECT_TRUE(is_unimodular(hr.u));
  // Echelon shape: pivots step strictly right-down; pivots positive;
  // entries left of a pivot reduced into [0, pivot).
  int prev_pivot_col = -1;
  for (int r = 0; r < hr.h.rows(); ++r) {
    int last_nonzero = -1;
    for (int c = 0; c < hr.h.cols(); ++c)
      if (hr.h(r, c) != 0) last_nonzero = c;
    if (last_nonzero < 0) continue;  // zero row
    if (last_nonzero > prev_pivot_col) {
      // this row introduces a new pivot at last_nonzero
      EXPECT_GT(hr.h(r, last_nonzero), 0);
      for (int c = 0; c < last_nonzero; ++c) {
        EXPECT_GE(hr.h(r, c), 0);
        EXPECT_LT(hr.h(r, c), hr.h(r, last_nonzero));
      }
      prev_pivot_col = last_nonzero;
    }
  }
}

TEST(Hermite, SimpleExamples) {
  expect_hnf_invariants(IntMat{{2, 4}, {1, 3}});
  expect_hnf_invariants(IntMat{{4, 6}});
  expect_hnf_invariants(IntMat{{0, 0}, {0, 0}});
  expect_hnf_invariants(IntMat{{1, 0, 0}, {0, 1, 0}});
}

TEST(Hermite, GcdShowsUp) {
  // Row [4, 6] has gcd 2: HNF pivot must be 2.
  HermiteResult hr = hermite_normal_form(IntMat{{4, 6}});
  EXPECT_EQ(hr.h(0, 0), 2);
  EXPECT_EQ(hr.h(0, 1), 0);
}

TEST(Hermite, UnimodularInputGivesIdentityLattice) {
  IntMat m{{1, 1}, {0, 1}};
  HermiteResult hr = hermite_normal_form(m);
  // The column lattice of a unimodular matrix is Z^2: pivots are 1.
  EXPECT_EQ(hr.h(0, 0), 1);
  EXPECT_EQ(hr.h(1, 1), 1);
}

TEST(Hermite, IsUnimodular) {
  EXPECT_TRUE(is_unimodular(IntMat{{1, 1}, {0, 1}}));
  EXPECT_TRUE(is_unimodular(IntMat{{0, 1}, {1, 0}}));
  EXPECT_FALSE(is_unimodular(IntMat{{2, 0}, {0, 1}}));
  EXPECT_FALSE(is_unimodular(IntMat(2, 3)));
}

TEST(Hermite, CompleteToNonsingular) {
  IntMat rows{{1, -1, 0}};
  IntMat full = complete_to_nonsingular(rows);
  EXPECT_EQ(full.rows(), 3);
  EXPECT_EQ(rank(full), 3);
  EXPECT_EQ(full.row(0), (IntVec{1, -1, 0}));
}

TEST(Hermite, CompleteDependentRowsThrows) {
  EXPECT_THROW(complete_to_nonsingular(IntMat{{1, 0}, {2, 0}}), Error);
}

void expect_snf_invariants(const IntMat& a) {
  SmithResult sr = smith_normal_form(a);
  EXPECT_TRUE(is_unimodular(sr.u));
  EXPECT_TRUE(is_unimodular(sr.v));
  EXPECT_EQ(mat_mul(mat_mul(sr.u, a), sr.v), sr.s);
  // Diagonal with divisibility chain.
  for (int i = 0; i < sr.s.rows(); ++i)
    for (int j = 0; j < sr.s.cols(); ++j)
      if (i != j) {
        EXPECT_EQ(sr.s(i, j), 0);
      }
  int n = std::min(sr.s.rows(), sr.s.cols());
  for (int i = 0; i + 1 < n; ++i) {
    EXPECT_GE(sr.s(i, i), 0);
    if (sr.s(i, i) != 0) {
      EXPECT_EQ(sr.s(i + 1, i + 1) % sr.s(i, i), 0);
    } else {
      EXPECT_EQ(sr.s(i + 1, i + 1), 0);
    }
  }
}

TEST(Smith, SimpleExamples) {
  expect_snf_invariants(IntMat{{2, 4, 4}, {-6, 6, 12}, {10, 4, 16}});
  expect_snf_invariants(IntMat{{2, 0}, {0, 3}});
  expect_snf_invariants(IntMat{{0, 0}, {0, 0}});
  expect_snf_invariants(IntMat{{6}});
}

TEST(Smith, KnownResult) {
  SmithResult sr = smith_normal_form(IntMat{{2, 0}, {0, 3}});
  // SNF of diag(2,3) is diag(1,6).
  EXPECT_EQ(sr.s(0, 0), 1);
  EXPECT_EQ(sr.s(1, 1), 6);
}

class NormalFormRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(NormalFormRandomTest, InvariantsHoldOnRandomMatrices) {
  std::mt19937 rng(GetParam() * 7919);
  std::uniform_int_distribution<int> dim(1, 4), val(-5, 5);
  for (int trial = 0; trial < 15; ++trial) {
    int r = dim(rng), c = dim(rng);
    IntMat m(r, c);
    for (int i = 0; i < r; ++i)
      for (int j = 0; j < c; ++j) m(i, j) = val(rng);
    expect_hnf_invariants(m);
    expect_snf_invariants(m);
    // HNF and SNF agree with Gauss on rank.
    SmithResult sr = smith_normal_form(m);
    int snf_rank = 0;
    for (int i = 0; i < std::min(r, c); ++i)
      if (sr.s(i, i) != 0) ++snf_rank;
    EXPECT_EQ(snf_rank, rank(m));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NormalFormRandomTest, ::testing::Range(1, 9));

}  // namespace
}  // namespace inlt
