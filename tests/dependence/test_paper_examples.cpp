// Reproduces the dependence analysis results of §3 and §5.4.
#include <gtest/gtest.h>

#include "dependence/analyzer.hpp"
#include "ir/gallery.hpp"

namespace inlt {
namespace {

// Find a dependence with the given endpoints and vector rendering.
bool has_dep(const DependenceSet& ds, const std::string& src,
             const std::string& dst, const std::string& vec) {
  for (const Dependence& d : ds.deps)
    if (d.src == src && d.dst == dst && dep_to_string(d.vector) == vec)
      return true;
  return false;
}

TEST(DependencePaper, Section3FlowDependence) {
  // "the flow dependence in the above example will be represented in
  // our framework as [0, 1, -1, +]'."
  Program p = gallery::simplified_cholesky();
  IvLayout layout(p);
  DependenceSet ds = analyze_dependences(layout);
  EXPECT_TRUE(has_dep(ds, "S1", "S2", "[0, 1, -1, +]")) << ds.to_string();
}

TEST(DependencePaper, Section3SecondColumn) {
  // The paper's second column is [1, -1, 1, 0]': flow from S2 (writing
  // A(J)) to S1 (reading A(I)). The distance printed in the paper is
  // the value-based (last-write) representative; the memory-based
  // projection the §3 procedure actually describes gives Δ_I = '+'
  // (every write S2(i, j) with i < j reaches the read S1(j), not just
  // i = j-1). Our analyzer reports the memory-based vector, which
  // subsumes the paper's column; EXPERIMENTS.md records the deviation.
  Program p = gallery::simplified_cholesky();
  IvLayout layout(p);
  DependenceSet ds = analyze_dependences(layout);
  EXPECT_TRUE(has_dep(ds, "S2", "S1", "[+, -1, 1, 0]")) << ds.to_string();
  // The paper's distance-1 instance is witnessed: S2(i, i+1) -> S1(i+1)
  // is inside the '+' direction (checked by the brute-force coverage
  // test in test_brute_force.cpp).
}

TEST(DependencePaper, AllVectorsLexicographicallyNonNegative) {
  // Theorem 1 ⇒ every dependence vector (dest − src in a legal source
  // program) is lexicographically positive.
  for (Program p : {gallery::simplified_cholesky(), gallery::cholesky(),
                    gallery::augmentation_example()}) {
    IvLayout layout(p);
    DependenceSet ds = analyze_dependences(layout);
    ASSERT_FALSE(ds.deps.empty());
    for (const Dependence& d : ds.deps) {
      LexStatus st = lex_status(d.vector);
      EXPECT_TRUE(st == LexStatus::kPositive || st == LexStatus::kUnknown)
          << dep_to_string(d.vector);
    }
  }
}

TEST(DependencePaper, Section54DependenceMatrix) {
  // §5.4: D = [[1,1],[0,-1],[0,1],[1,-1]] — two dependences:
  //  S1 self-dependence [1,0,0,1]' (B(I) = B(I-1) recurrence) and
  //  flow S2 -> S1 [1,-1,1,-1]'.
  //
  // Note the paper prints the columns as {[1,0,0,1], [1,-1,1,-1]};
  // our analyzer also reports them.
  Program p = gallery::augmentation_example();
  IvLayout layout(p);
  DependenceSet ds = analyze_dependences(layout);
  EXPECT_TRUE(has_dep(ds, "S1", "S1", "[1, 0, 0, 1]")) << ds.to_string();
  EXPECT_TRUE(has_dep(ds, "S2", "S1", "[1, -1, 1, -1]")) << ds.to_string();
}

TEST(DependencePaper, FlowKindsAreLabeled) {
  Program p = gallery::simplified_cholesky();
  IvLayout layout(p);
  DependenceSet ds = analyze_dependences(layout);
  bool saw_flow = false, saw_anti_or_output = false;
  for (const Dependence& d : ds.deps) {
    if (d.kind == DepKind::kFlow) saw_flow = true;
    if (d.kind != DepKind::kFlow) saw_anti_or_output = true;
  }
  EXPECT_TRUE(saw_flow);
  EXPECT_TRUE(saw_anti_or_output);
}

TEST(DependencePaper, ZeroPadAblationChangesVectors) {
  // DESIGN.md ablation: padding mode affects padded rows only.
  Program p = gallery::simplified_cholesky();
  IvLayout layout(p);
  DependenceSet diag = analyze_dependences(layout, {PadMode::kDiagonal, 8});
  DependenceSet zero = analyze_dependences(layout, {PadMode::kZero, 8});
  ASSERT_FALSE(diag.deps.empty());
  ASSERT_FALSE(zero.deps.empty());
  // The S1->S2 flow dependence differs in the padded J row: diagonal
  // pads give Δ_J = Jr - Iw = '+', zero pads give Δ_J = Jr - 0 = '+' as
  // well... but the S2->S1 dep [1,-1,1,0] becomes [1,-1,1,-] under
  // zero padding only in the padded row of S1. Just check both runs
  // produce the same number of dependences and at least one vector
  // differs.
  EXPECT_EQ(diag.deps.size(), zero.deps.size());
  bool any_diff = false;
  for (size_t i = 0; i < diag.deps.size(); ++i)
    if (dep_to_string(diag.deps[i].vector) !=
        dep_to_string(zero.deps[i].vector))
      any_diff = true;
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace inlt
