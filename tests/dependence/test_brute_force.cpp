// Soundness and precision of the analyzer against the execution
// oracle: every realized dependence is covered by an analyzer column
// (soundness), and every all-exact analyzer column is realized
// (precision of exact distances).
#include <gtest/gtest.h>

#include "common/brute_force.hpp"
#include "dependence/analyzer.hpp"
#include "ir/gallery.hpp"
#include "ir/parser.hpp"

namespace inlt {
namespace {

using testutil::covers;
using testutil::observe_dependences;
using testutil::observe_value_flow_dependences;

void check_soundness_and_precision(const Program& p, i64 n) {
  IvLayout layout(p);
  DependenceSet ds = analyze_dependences(layout);
  auto observed = observe_dependences(layout, {{"N", n}});
  ASSERT_FALSE(observed.empty());

  // Soundness: every observation is covered by a matching column.
  for (const auto& ob : observed) {
    bool found = false;
    for (const Dependence& d : ds.deps) {
      if (d.src != ob.src || d.dst != ob.dst || d.kind != ob.kind ||
          d.array != ob.array)
        continue;
      if (covers(d.vector, ob.diff)) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "uncovered " << dep_kind_name(ob.kind) << " "
                       << ob.src << " -> " << ob.dst << " diff "
                       << vec_to_string(ob.diff) << "\nanalyzer said:\n"
                       << ds.to_string();
  }

  // Precision: exact columns are witnessed.
  for (const Dependence& d : ds.deps) {
    bool all_exact = true;
    IntVec exact;
    for (const DepEntry& e : d.vector) {
      if (!e.is_exact()) {
        all_exact = false;
        break;
      }
      exact.push_back(e.lo());
    }
    if (!all_exact) continue;
    bool witnessed = false;
    for (const auto& ob : observed)
      if (ob.src == d.src && ob.dst == d.dst && ob.kind == d.kind &&
          ob.array == d.array && ob.diff == exact)
        witnessed = true;
    EXPECT_TRUE(witnessed) << "unwitnessed exact column "
                           << dep_to_string(d.vector) << " for " << d.src
                           << " -> " << d.dst;
  }
}

TEST(BruteForce, SimplifiedCholesky) {
  check_soundness_and_precision(gallery::simplified_cholesky(), 6);
}

TEST(BruteForce, FullCholesky) {
  check_soundness_and_precision(gallery::cholesky(), 5);
}

TEST(BruteForce, AugmentationExample) {
  check_soundness_and_precision(gallery::augmentation_example(), 6);
}

TEST(BruteForce, PerfectNest) {
  check_soundness_and_precision(gallery::fig3_perfect_nest(), 6);
}

TEST(BruteForce, PaperDistance1IsWitnessed) {
  // The §3 matrix prints column [1, -1, 1, 0]: the distance-1
  // realization of the S2 -> S1 flow dependence. Confirm it occurs.
  Program p = gallery::simplified_cholesky();
  IvLayout layout(p);
  auto observed = observe_dependences(layout, {{"N", 6}});
  bool found = false;
  for (const auto& ob : observed)
    if (ob.src == "S2" && ob.dst == "S1" && ob.kind == DepKind::kFlow &&
        ob.diff == IntVec{1, -1, 1, 0})
      found = true;
  EXPECT_TRUE(found);
}

// Parameterized sweep over a family of generated two-statement
// programs with shifted subscripts: analyzer must stay sound for all
// shift combinations.
class ShiftSweepTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ShiftSweepTest, AnalyzerCoversObservations) {
  auto [a, b] = GetParam();
  std::string src = R"(
param N
do I = 1, N
  S1: X(I) = X(I - )" + std::to_string(a) +
                    R"() + 1.0
  do J = 1, N
    S2: Y(I, J) = X(I - )" + std::to_string(b) +
                    R"() * 2.0
  end
end
)";
  Program p = parse_program(src);
  check_soundness_and_precision(p, 5);
}

INSTANTIATE_TEST_SUITE_P(Shifts, ShiftSweepTest,
                         ::testing::Combine(::testing::Values(0, 1, 2),
                                            ::testing::Values(0, 1, 3)));

TEST(ValueBased, PaperColumnsAreTheValueBasedRepresentatives) {
  // Interpretation check for the E1b/E9 deviations: the exact
  // distances the paper prints ([1,-1,1,0]' in §3; [1,-1,0,1,0,0,1]'
  // in §6) are precisely the value-based (last-write) dependence sets,
  // which our oracle computes by tracking each cell's reaching write.
  {
    Program p = gallery::simplified_cholesky();
    IvLayout layout(p);
    auto vb = observe_value_flow_dependences(layout, {{"N", 7}});
    for (const auto& d : vb)
      if (d.src == "S2" && d.dst == "S1") {
        EXPECT_EQ(d.diff, (IntVec{1, -1, 1, 0})) << vec_to_string(d.diff);
      }
    bool found = false;
    for (const auto& d : vb)
      if (d.src == "S2" && d.dst == "S1") found = true;
    EXPECT_TRUE(found);
  }
  {
    Program p = gallery::cholesky();
    IvLayout layout(p);
    auto vb = observe_value_flow_dependences(layout, {{"N", 6}});
    for (const auto& d : vb)
      if (d.src == "S3" && d.dst == "S1") {
        EXPECT_EQ(d.diff, (IntVec{1, -1, 0, 1, 0, 0, 1}))
            << vec_to_string(d.diff);
      }
    bool found = false;
    for (const auto& d : vb)
      if (d.src == "S3" && d.dst == "S1") found = true;
    EXPECT_TRUE(found);
  }
}

TEST(ValueBased, SubsetOfMemoryBased) {
  // Every value-based dependence is also memory-based and covered by
  // the analyzer's hulls.
  Program p = gallery::cholesky();
  IvLayout layout(p);
  DependenceSet ds = analyze_dependences(layout);
  for (const auto& d : observe_value_flow_dependences(layout, {{"N", 5}})) {
    bool covered = false;
    for (const Dependence& a : ds.deps)
      if (a.src == d.src && a.dst == d.dst && a.kind == DepKind::kFlow &&
          a.array == d.array && testutil::covers(a.vector, d.diff))
        covered = true;
    EXPECT_TRUE(covered) << d.src << "->" << d.dst << " "
                         << vec_to_string(d.diff);
  }
}

}  // namespace
}  // namespace inlt
