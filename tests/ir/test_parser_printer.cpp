#include <gtest/gtest.h>

#include "ir/gallery.hpp"
#include "ir/parser.hpp"
#include "ir/printer.hpp"

namespace inlt {
namespace {

TEST(Parser, SimplifiedCholeskyShape) {
  Program p = gallery::simplified_cholesky();
  EXPECT_EQ(p.params(), std::vector<std::string>{"N"});
  ASSERT_EQ(p.roots().size(), 1u);
  const Node& i = *p.roots()[0];
  ASSERT_TRUE(i.is_loop());
  EXPECT_EQ(i.var(), "I");
  ASSERT_EQ(i.num_children(), 2);
  EXPECT_TRUE(i.children()[0]->is_stmt());
  EXPECT_TRUE(i.children()[1]->is_loop());
  const Statement& s1 = i.children()[0]->stmt_data();
  EXPECT_EQ(s1.label, "S1");
  EXPECT_EQ(s1.lhs_array, "A");
  ASSERT_EQ(s1.lhs_subscripts.size(), 1u);
  EXPECT_EQ(s1.lhs_subscripts[0].to_string(), "I");
}

TEST(Parser, AffineExpressions) {
  EXPECT_EQ(parse_affine("2*I - J + 1").to_string(), "2*I - J + 1");
  EXPECT_EQ(parse_affine("I*3").coef("I"), 3);
  EXPECT_EQ(parse_affine("-I").coef("I"), -1);
  EXPECT_EQ(parse_affine("-(I - J)").coef("J"), 1);
  EXPECT_EQ(parse_affine("5").constant(), 5);
  EXPECT_EQ(parse_affine("2*(I + 1)").constant(), 2);
}

TEST(Parser, SyntaxErrorsCarryLineNumbers) {
  try {
    parse_program("param N\ndo I = 1 N\n  S1: A(I) = 1.0\nend\n");
    FAIL() << "expected parse error";
  } catch (const InvalidProgramError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }
}

TEST(Parser, RejectsDuplicateLabels) {
  EXPECT_THROW(parse_program(R"(
param N
do I = 1, N
  S1: A(I) = 1.0
  S1: B(I) = 2.0
end
)"),
               InvalidProgramError);
}

TEST(Parser, RejectsUnknownVariableInSubscript) {
  EXPECT_THROW(parse_program(R"(
param N
do I = 1, N
  S1: A(Q) = 1.0
end
)"),
               InvalidProgramError);
}

TEST(Parser, RejectsShadowedLoopVariable) {
  EXPECT_THROW(parse_program(R"(
param N
do I = 1, N
  do I = 1, N
    S1: A(I) = 1.0
  end
end
)"),
               InvalidProgramError);
}

TEST(Parser, FunctionCallVsArrayRef) {
  Program p = parse_program(R"(
param N
do I = 1, N
  S1: A(I) = f() + B(I - 1) + sqrt(A(I))
end
)");
  const Statement& s = p.statements()[0].stmt->stmt_data();
  auto reads = s.accesses();
  // write A(I), read B(I-1), read A(I); f() is a function, not an
  // array access.
  ASSERT_EQ(reads.size(), 3u);
  EXPECT_EQ(reads[0].array, "A");
  EXPECT_TRUE(reads[0].is_write);
}

TEST(Parser, GuardsAndCoverBounds) {
  Program p = parse_program(R"(
param N
do I = min(-N + 1, 0), 0
  if (I >= 0)
    S1: A(I) = 1.0
  endif
  if ((I) mod 2 == 0)
    S2: B(I) = 2.0
  endif
end
)");
  const Node& loop = *p.roots()[0];
  EXPECT_EQ(loop.lower().mode, Bound::Mode::kCover);
  EXPECT_EQ(loop.children()[0]->guards()[0].kind, Guard::Kind::kGeZero);
  EXPECT_EQ(loop.children()[1]->guards()[0].kind, Guard::Kind::kDivisible);
  EXPECT_EQ(loop.children()[1]->guards()[0].modulus, 2);
}

// Print -> parse -> print is a fixed point on every gallery program.
class RoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(RoundTripTest, PrintParsePrintFixedPoint) {
  Program p;
  switch (GetParam()) {
    case 0: p = gallery::fig1_running_example(); break;
    case 1: p = gallery::simplified_cholesky(); break;
    case 2: p = gallery::fig3_perfect_nest(); break;
    case 3: p = gallery::augmentation_example(); break;
    case 4: p = gallery::cholesky(); break;
    default: p = gallery::simplified_cholesky_distributed(); break;
  }
  std::string once = print_program(p);
  Program re = parse_program(once);
  EXPECT_EQ(print_program(re), once);
}

INSTANTIATE_TEST_SUITE_P(Gallery, RoundTripTest, ::testing::Range(0, 6));

TEST(Printer, StepAndGuardsRender) {
  Program p = parse_program(R"(
param N
do I = 1, N, 2
  S1: A(I) = 1.0
end
)");
  std::string text = print_program(p);
  EXPECT_NE(text.find("do I = 1, N, 2"), std::string::npos) << text;
}

TEST(Ast, CloneIsDeep) {
  Program p = gallery::simplified_cholesky();
  Program q = p;  // deep copy via operator=
  q.mutable_roots()[0]->set_var("Z");
  EXPECT_EQ(p.roots()[0]->var(), "I");
  EXPECT_EQ(q.roots()[0]->var(), "Z");
}

TEST(Ast, RenameLoopVar) {
  Program p = gallery::simplified_cholesky();
  rename_loop_var(*p.mutable_roots()[0], "I", "X");
  std::string text = print_program(p);
  EXPECT_EQ(text.find(" I "), std::string::npos) << text;
  EXPECT_NE(text.find("do X = 1, N"), std::string::npos) << text;
  EXPECT_NE(text.find("do J = X + 1, N"), std::string::npos) << text;
}

TEST(Ast, FindStatementThrowsOnMissing) {
  Program p = gallery::simplified_cholesky();
  EXPECT_THROW(p.find_statement("S99"), InvalidProgramError);
}

}  // namespace
}  // namespace inlt
