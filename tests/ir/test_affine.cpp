#include "ir/affine.hpp"

#include <gtest/gtest.h>

namespace inlt {
namespace {

TEST(Affine, ConstructionAndAccess) {
  AffineExpr e = AffineExpr::variable("I");
  e.add_term("J", 2).add_constant(-1);
  EXPECT_EQ(e.coef("I"), 1);
  EXPECT_EQ(e.coef("J"), 2);
  EXPECT_EQ(e.coef("K"), 0);
  EXPECT_EQ(e.constant(), -1);
  EXPECT_FALSE(e.is_constant());
  EXPECT_TRUE(AffineExpr(5).is_constant());
  EXPECT_TRUE(AffineExpr().is_zero());
}

TEST(Affine, TermsCancel) {
  AffineExpr e = AffineExpr::variable("I");
  e.add_term("I", -1);
  EXPECT_TRUE(e.is_zero());
}

TEST(Affine, Arithmetic) {
  AffineExpr i = AffineExpr::variable("I");
  AffineExpr j = AffineExpr::variable("J");
  AffineExpr e = i * 2 + j - AffineExpr(3);
  EXPECT_EQ(e.eval({{"I", 5}, {"J", 1}}), 8);
  EXPECT_EQ((-e).eval({{"I", 5}, {"J", 1}}), -8);
}

TEST(Affine, EvalUnboundThrows) {
  AffineExpr e = AffineExpr::variable("I");
  EXPECT_THROW(e.eval({}), Error);
}

TEST(Affine, Substitute) {
  // I + 2J with J := I - 1  ->  3I - 2
  AffineExpr e = AffineExpr::variable("I") + AffineExpr::variable("J") * 2;
  AffineExpr repl = AffineExpr::variable("I") - AffineExpr(1);
  AffineExpr r = e.substitute("J", repl);
  EXPECT_EQ(r.coef("I"), 3);
  EXPECT_EQ(r.constant(), -2);
  EXPECT_EQ(r.coef("J"), 0);
}

TEST(Affine, Renamed) {
  AffineExpr e = AffineExpr::variable("I") * 4;
  AffineExpr r = e.renamed("I", "X");
  EXPECT_EQ(r.coef("X"), 4);
  EXPECT_EQ(r.coef("I"), 0);
  EXPECT_EQ(e.renamed("Z", "Y"), e);  // absent: no-op
}

TEST(Affine, ToString) {
  AffineExpr e = AffineExpr::variable("I") * 2 - AffineExpr::variable("J") +
                 AffineExpr(7);
  EXPECT_EQ(e.to_string(), "2*I - J + 7");
  EXPECT_EQ(AffineExpr(0).to_string(), "0");
  EXPECT_EQ((AffineExpr::variable("I") * -1).to_string(), "-I");
}

TEST(Bound, TightEval) {
  Bound lo(std::vector<BoundTerm>{BoundTerm(AffineExpr(3)),
                                  BoundTerm(AffineExpr(5))});
  EXPECT_EQ(lo.eval_lower({}), 5);  // max for tight lower
  Bound hi(std::vector<BoundTerm>{BoundTerm(AffineExpr(3)),
                                  BoundTerm(AffineExpr(5))});
  EXPECT_EQ(hi.eval_upper({}), 3);  // min for tight upper
}

TEST(Bound, CoverEval) {
  Bound lo(std::vector<BoundTerm>{BoundTerm(AffineExpr(3)),
                                  BoundTerm(AffineExpr(5))},
           Bound::Mode::kCover);
  EXPECT_EQ(lo.eval_lower({}), 3);  // min for cover lower
  Bound hi(std::vector<BoundTerm>{BoundTerm(AffineExpr(3)),
                                  BoundTerm(AffineExpr(5))},
           Bound::Mode::kCover);
  EXPECT_EQ(hi.eval_upper({}), 5);  // max for cover upper
}

TEST(Bound, DivisionRounding) {
  // lower ceil(7/2) = 4, upper floor(7/2) = 3.
  Bound b(std::vector<BoundTerm>{BoundTerm(AffineExpr(7), 2)});
  EXPECT_EQ(b.eval_lower({}), 4);
  EXPECT_EQ(b.eval_upper({}), 3);
  EXPECT_EQ(b.to_string(true), "ceil(7, 2)");
  EXPECT_EQ(b.to_string(false), "floor(7, 2)");
}

TEST(Bound, ToStringModes) {
  Bound tight(std::vector<BoundTerm>{BoundTerm(AffineExpr(1)),
                                     BoundTerm(AffineExpr::variable("N"))});
  EXPECT_EQ(tight.to_string(true), "max(1, N)");
  EXPECT_EQ(tight.to_string(false), "min(1, N)");
  Bound cover = tight;
  cover.mode = Bound::Mode::kCover;
  EXPECT_EQ(cover.to_string(true), "min(1, N)");
  EXPECT_EQ(cover.to_string(false), "max(1, N)");
}

}  // namespace
}  // namespace inlt
