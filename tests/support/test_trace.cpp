// inlt::trace — the span tracer: disabled-by-default contract,
// nested spans with args, multi-threaded buffering, Chrome JSON
// export, and the per-category summary.
#include "support/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>
#include <vector>

namespace inlt {
namespace {

// Tracer state is process-global; every test starts from a clean,
// enabled (or deliberately disabled) slate.
class SpanTrace : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::global().disable();
    Tracer::global().clear();
  }
  void TearDown() override {
    Tracer::global().disable();
    Tracer::global().clear();
  }
};

TEST_F(SpanTrace, DisabledRecordsNothing) {
  ASSERT_FALSE(Tracer::enabled());
  {
    ScopedSpan outer("outer", "test");
    EXPECT_FALSE(outer.active());
    outer.arg("k", static_cast<i64>(1));  // no-op, must not crash
    ScopedSpan inner("inner", "test");
  }
  EXPECT_EQ(Tracer::global().event_count(), 0u);
  EXPECT_EQ(Tracer::global().chrome_trace_json().find("outer"),
            std::string::npos);
}

TEST_F(SpanTrace, EnableIsObservedByNewSpans) {
  Tracer::global().enable();
  ASSERT_TRUE(Tracer::enabled());
  { ScopedSpan s("on", "test"); EXPECT_TRUE(s.active()); }
  Tracer::global().disable();
  { ScopedSpan s("off", "test"); EXPECT_FALSE(s.active()); }
  EXPECT_EQ(Tracer::global().event_count(), 1u);
}

TEST_F(SpanTrace, NestedSpansRecordNamesCategoriesAndArgs) {
  Tracer::global().enable();
  {
    ScopedSpan outer("evaluate", "session");
    outer.arg("index", static_cast<i64>(42));
    outer.arg("legal", true);
    {
      ScopedSpan inner("eliminate", "fm");
      inner.arg("cache", "miss");
      inner.arg("detail", std::string("var \"x\""));
    }
  }
  std::vector<TraceEvent> evs = Tracer::global().events();
  ASSERT_EQ(evs.size(), 2u);
  // Sorted by start time: outer opened first.
  EXPECT_STREQ(evs[0].name, "evaluate");
  EXPECT_STREQ(evs[0].cat, "session");
  EXPECT_STREQ(evs[1].name, "eliminate");
  EXPECT_STREQ(evs[1].cat, "fm");
  // The inner span nests inside the outer one.
  EXPECT_GE(evs[1].start_ns, evs[0].start_ns);
  EXPECT_LE(evs[1].start_ns + evs[1].dur_ns, evs[0].start_ns + evs[0].dur_ns);
  ASSERT_EQ(evs[0].args.size(), 2u);
  EXPECT_STREQ(evs[0].args[0].key, "index");
  EXPECT_EQ(evs[0].args[0].value, "42");
  EXPECT_FALSE(evs[0].args[0].is_string);
  EXPECT_EQ(evs[0].args[1].value, "true");

  std::string json = Tracer::global().chrome_trace_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"evaluate\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"cache\":\"miss\""), std::string::npos) << json;
  // The quote inside the string arg must be escaped.
  EXPECT_NE(json.find("var \\\"x\\\""), std::string::npos) << json;
}

TEST_F(SpanTrace, FourThreadsGetDistinctTidsWithoutCorruption) {
  Tracer::global().enable();
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 250;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([t] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        ScopedSpan s("work", "mt");
        s.arg("thread", static_cast<i64>(t));
        s.arg("i", static_cast<i64>(i));
      }
    });
  }
  for (std::thread& t : pool) t.join();

  std::vector<TraceEvent> evs = Tracer::global().events();
  ASSERT_EQ(evs.size(), static_cast<size_t>(kThreads * kSpansPerThread));
  std::set<int> tids;
  for (const TraceEvent& e : evs) {
    tids.insert(e.tid);
    EXPECT_STREQ(e.name, "work");
    EXPECT_STREQ(e.cat, "mt");
    ASSERT_EQ(e.args.size(), 2u);
    EXPECT_STREQ(e.args[0].key, "thread");
    EXPECT_GE(e.dur_ns, 0);
  }
  EXPECT_EQ(tids.size(), static_cast<size_t>(kThreads));
  // Start-time ordering is a total order over the merged buffers.
  EXPECT_TRUE(std::is_sorted(
      evs.begin(), evs.end(),
      [](const TraceEvent& a, const TraceEvent& b) {
        return a.start_ns < b.start_ns;
      }));
}

TEST_F(SpanTrace, SummaryAggregatesPerCategoryAndName) {
  Tracer::global().enable();
  for (int i = 0; i < 3; ++i) ScopedSpan s("alpha", "catA");
  for (int i = 0; i < 2; ++i) ScopedSpan s("beta", "catA");
  { ScopedSpan s("gamma", "catB"); }

  std::string text = Tracer::global().summary_text();
  EXPECT_NE(text.find("catA"), std::string::npos) << text;
  EXPECT_NE(text.find("alpha"), std::string::npos) << text;
  EXPECT_NE(text.find("beta"), std::string::npos) << text;
  EXPECT_NE(text.find("catB"), std::string::npos) << text;

  std::string json = Tracer::global().summary_json();
  EXPECT_NE(json.find("\"categories\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"catA\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"count\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"gamma\""), std::string::npos) << json;
}

TEST_F(SpanTrace, ClearDropsEventsButKeepsRecording) {
  Tracer::global().enable();
  { ScopedSpan s("first", "test"); }
  EXPECT_EQ(Tracer::global().event_count(), 1u);
  Tracer::global().clear();
  EXPECT_EQ(Tracer::global().event_count(), 0u);
  { ScopedSpan s("second", "test"); }
  ASSERT_EQ(Tracer::global().event_count(), 1u);
  EXPECT_STREQ(Tracer::global().events()[0].name, "second");
}

TEST_F(SpanTrace, EmptyTraceIsStillValidJson) {
  std::string json = Tracer::global().chrome_trace_json();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos) << json;
}

TEST_F(SpanTrace, CounterSamplesExportAsCounterEvents) {
  // Disabled: counter() is a no-op.
  Tracer::global().counter("queue depth", "test", "depth", 3);
  EXPECT_EQ(Tracer::global().event_count(), 0u);

  Tracer::global().enable();
  Tracer::global().counter("queue depth", "test", "depth", 3);
  Tracer::global().counter("queue depth", "test", "depth", 1);

  std::vector<TraceEvent> evs = Tracer::global().events();
  ASSERT_EQ(evs.size(), 2u);
  EXPECT_EQ(evs[0].ph, 'C');
  EXPECT_STREQ(evs[0].name, "queue depth");
  EXPECT_EQ(evs[0].dur_ns, 0);
  ASSERT_EQ(evs[0].args.size(), 1u);
  EXPECT_STREQ(evs[0].args[0].key, "depth");
  EXPECT_EQ(evs[0].args[0].value, "3");
  EXPECT_FALSE(evs[0].args[0].is_string);
  EXPECT_EQ(evs[1].args[0].value, "1");

  std::string json = Tracer::global().chrome_trace_json();
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"depth\":3"), std::string::npos) << json;
  // Counter events carry no dur field.
  EXPECT_EQ(json.find("\"dur\""), std::string::npos) << json;
}

TEST_F(SpanTrace, SummariesCountSpansOnly) {
  Tracer::global().enable();
  { ScopedSpan s("alpha", "catA"); }
  Tracer::global().counter("gauge", "catA", "v", 7);
  // The counter sample shows up in the raw stream but not in the
  // per-category span aggregation.
  EXPECT_EQ(Tracer::global().event_count(), 2u);
  std::string json = Tracer::global().summary_json();
  EXPECT_NE(json.find("\"count\":1"), std::string::npos) << json;
  EXPECT_EQ(json.find("gauge"), std::string::npos) << json;
}

TEST_F(SpanTrace, ThreadNamesBecomeMetadataEvents) {
  Tracer::global().enable();
  Tracer::global().set_thread_name("main thread");
  { ScopedSpan s("work", "test"); }
  std::thread t([] {
    Tracer::global().set_thread_name("helper \"h1\"");
    ScopedSpan s("work", "test");
  });
  t.join();

  std::string json = Tracer::global().chrome_trace_json();
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"thread_name\""), std::string::npos) << json;
  EXPECT_NE(json.find("main thread"), std::string::npos) << json;
  // Names are JSON-escaped like any other string.
  EXPECT_NE(json.find("helper \\\"h1\\\""), std::string::npos) << json;
  // Metadata is synthesized at export; the event stream holds spans.
  EXPECT_EQ(Tracer::global().event_count(), 2u);

  // Renaming wins, and the name survives clear().
  Tracer::global().set_thread_name("renamed");
  Tracer::global().clear();
  json = Tracer::global().chrome_trace_json();
  EXPECT_NE(json.find("renamed"), std::string::npos) << json;
  EXPECT_EQ(json.find("main thread"), std::string::npos) << json;
}

}  // namespace
}  // namespace inlt
