// Stats registry: counters, timers, reset semantics, text/JSON dumps.
#include "support/stats.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace inlt {
namespace {

TEST(Stats, CountersAccumulateAndReset) {
  Stats s;
  EXPECT_EQ(s.value("a"), 0);
  s.add("a");
  s.add("a", 4);
  s.add("b", 2);
  EXPECT_EQ(s.value("a"), 5);
  EXPECT_EQ(s.value("b"), 2);
  s.reset();
  EXPECT_EQ(s.value("a"), 0);
  EXPECT_EQ(s.value("b"), 0);
}

TEST(Stats, CounterReferenceSurvivesResetAndGrowth) {
  Stats s;
  std::atomic<i64>& a = s.counter("ref.a");
  a.fetch_add(7);
  // Force map growth around it.
  for (int i = 0; i < 64; ++i) s.add("grow." + std::to_string(i));
  EXPECT_EQ(&a, &s.counter("ref.a"));
  EXPECT_EQ(s.value("ref.a"), 7);
  s.reset();
  EXPECT_EQ(a.load(), 0);  // same atomic, zeroed
  a.fetch_add(3);
  EXPECT_EQ(s.value("ref.a"), 3);
}

TEST(Stats, TimersAccumulate) {
  Stats s;
  EXPECT_EQ(s.time_ns("t"), 0);
  s.add_time_ns("t", 1000);
  s.add_time_ns("t", 500);
  EXPECT_EQ(s.time_ns("t"), 1500);
  s.reset();
  EXPECT_EQ(s.time_ns("t"), 0);
}

TEST(Stats, ConcurrentIncrementsAreExact) {
  Stats s;
  std::atomic<i64>& c = s.counter("mt");
  std::vector<std::thread> ts;
  for (int t = 0; t < 4; ++t)
    ts.emplace_back([&c] {
      for (int i = 0; i < 10000; ++i) c.fetch_add(1, std::memory_order_relaxed);
    });
  for (auto& t : ts) t.join();
  EXPECT_EQ(s.value("mt"), 40000);
}

TEST(Stats, TextDumpListsCountersAndTimers) {
  Stats s;
  s.add("fm.eliminations", 12);
  s.add_time_ns("codegen.build", 2'000'000);
  std::string text = s.to_text();
  EXPECT_NE(text.find("fm.eliminations"), std::string::npos) << text;
  EXPECT_NE(text.find("12"), std::string::npos) << text;
  EXPECT_NE(text.find("codegen.build"), std::string::npos) << text;
}

TEST(Stats, JsonDumpShape) {
  Stats s;
  s.add("c1", 3);
  s.add_time_ns("t1", 42);
  std::string j = s.to_json();
  EXPECT_NE(j.find("\"counters\""), std::string::npos) << j;
  EXPECT_NE(j.find("\"c1\":3"), std::string::npos) << j;
  EXPECT_NE(j.find("\"timers\""), std::string::npos) << j;
  EXPECT_NE(j.find("\"t1\""), std::string::npos) << j;
  EXPECT_NE(j.find("\"ns\":42"), std::string::npos) << j;
  EXPECT_NE(j.find("\"count\":1"), std::string::npos) << j;
}

TEST(Stats, SnapshotDeltaIsolatesOnePhase) {
  Stats s;
  s.add("phase.counter", 10);
  s.add_time_ns("phase.timer", 1000);
  StatsSnapshot before = s.snapshot();
  EXPECT_EQ(before.counter("phase.counter"), 10);
  EXPECT_EQ(before.counter("never.touched"), 0);

  s.add("phase.counter", 7);
  s.add("phase.fresh", 3);  // key born after the base snapshot
  s.add_time_ns("phase.timer", 500);

  StatsSnapshot delta = s.snapshot() - before;
  EXPECT_EQ(delta.counter("phase.counter"), 7);
  EXPECT_EQ(delta.counter("phase.fresh"), 3);
  EXPECT_EQ(delta.counter("never.touched"), 0);
  EXPECT_EQ(delta.timers.at("phase.timer").ns, 500);
  EXPECT_EQ(delta.timers.at("phase.timer").count, 1);
}

TEST(Stats, SnapshotUnaffectedByLaterMutation) {
  Stats s;
  s.add("snap.k", 1);
  StatsSnapshot snap = s.snapshot();
  s.add("snap.k", 100);
  s.reset();
  EXPECT_EQ(snap.counter("snap.k"), 1);  // a copy, not a view
}

TEST(Stats, HistBucketBoundaries) {
  EXPECT_EQ(hist_bucket(-5), 0);
  EXPECT_EQ(hist_bucket(0), 0);
  EXPECT_EQ(hist_bucket(1), 1);
  EXPECT_EQ(hist_bucket(2), 2);
  EXPECT_EQ(hist_bucket(3), 2);
  EXPECT_EQ(hist_bucket(4), 3);
  EXPECT_EQ(hist_bucket(1023), 10);
  EXPECT_EQ(hist_bucket(1024), 11);
  EXPECT_EQ(hist_bucket_lo(0), 0);
  EXPECT_EQ(hist_bucket_lo(1), 1);
  EXPECT_EQ(hist_bucket_lo(2), 2);
  EXPECT_EQ(hist_bucket_lo(11), 1024);
}

TEST(Stats, HistogramRecordsCountsSumsAndBuckets) {
  Stats s;
  HistogramCell& h = s.histogram("h");
  h.record(1);
  h.record(3);
  h.record(1000);
  s.add_sample("h", 0);
  EXPECT_EQ(h.count(), 4);
  EXPECT_EQ(h.sum(), 1004);
  EXPECT_EQ(h.bucket(0), 1);   // the 0 sample
  EXPECT_EQ(h.bucket(1), 1);   // 1
  EXPECT_EQ(h.bucket(2), 1);   // 3
  EXPECT_EQ(h.bucket(10), 1);  // 1000
  // The reference is stable and reset() zeroes in place.
  s.reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(&h, &s.histogram("h"));
}

TEST(Stats, HistogramAppearsInTextAndJson) {
  Stats s;
  s.add_sample("fm.sizes", 5);
  s.add_sample("fm.sizes", 6);
  std::string text = s.to_text();
  EXPECT_NE(text.find("fm.sizes"), std::string::npos) << text;
  EXPECT_NE(text.find("n=2"), std::string::npos) << text;
  std::string j = s.to_json();
  EXPECT_NE(j.find("\"histograms\""), std::string::npos) << j;
  EXPECT_NE(j.find("\"fm.sizes\""), std::string::npos) << j;
  EXPECT_NE(j.find("\"sum\":11"), std::string::npos) << j;
}

TEST(Stats, SnapshotDeltaSubtractsHistograms) {
  Stats s;
  s.add_sample("d.h", 4);
  StatsSnapshot before = s.snapshot();
  s.add_sample("d.h", 4);
  s.add_sample("d.h", 100);
  StatsSnapshot delta = s.snapshot() - before;
  const StatsSnapshot::HistogramValue& hv = delta.histograms.at("d.h");
  EXPECT_EQ(hv.count, 2);
  EXPECT_EQ(hv.sum, 104);
  EXPECT_EQ(hv.buckets[hist_bucket(4)], 1);
  EXPECT_EQ(hv.buckets[hist_bucket(100)], 1);
  EXPECT_DOUBLE_EQ(hv.mean(), 52.0);
}

TEST(Stats, SnapshotDeltaSubtractsTimerCounts) {
  Stats s;
  s.add_time_ns("sub.t", 100);
  s.add_time_ns("sub.t", 100);
  StatsSnapshot before = s.snapshot();
  s.add_time_ns("sub.t", 50);
  s.add_time_ns("sub.t", 50);
  s.add_time_ns("sub.t", 50);
  StatsSnapshot delta = s.snapshot() - before;
  EXPECT_EQ(delta.timers.at("sub.t").ns, 150);
  EXPECT_EQ(delta.timers.at("sub.t").count, 3);
  // Keys only in the base vanish from the delta rather than going
  // negative-from-zero.
  EXPECT_EQ(before.timers.at("sub.t").count, 2);
}

TEST(Stats, TimerTextIncludesMeanPerInvocation) {
  Stats s;
  s.add_time_ns("mean.t", 2'000'000);
  s.add_time_ns("mean.t", 4'000'000);
  std::string text = s.to_text();
  // 6 ms over 2 calls = 3000 us/call.
  EXPECT_NE(text.find("mean.t"), std::string::npos) << text;
  EXPECT_NE(text.find("us/call"), std::string::npos) << text;
  EXPECT_NE(text.find("3000.0"), std::string::npos) << text;
}

TEST(Stats, ScopedTimerRecordsIntoGlobal) {
  const std::string name = "test.scoped_timer_probe";
  i64 before_ns = Stats::global().time_ns(name);
  { ScopedTimer t(name); }
  { ScopedTimer t(name); }
  EXPECT_GE(Stats::global().time_ns(name), before_ns);
  // Two invocations recorded (count lives inside the timer entry; the
  // JSON dump is the public view of it).
  std::string j = Stats::global().to_json();
  EXPECT_NE(j.find("\"" + name + "\""), std::string::npos);
}

}  // namespace
}  // namespace inlt
