// support/profile — ProfileReport derived metrics, renderers, and the
// ExecProfiler collector (enable gate, report aggregation, merged()).
#include "support/profile.hpp"

#include <gtest/gtest.h>

#include <string>

namespace inlt {
namespace {

// Profiler state is process-global; every test starts clean.
class Profile : public ::testing::Test {
 protected:
  void SetUp() override {
    ExecProfiler::global().disable();
    ExecProfiler::global().clear();
  }
  void TearDown() override {
    ExecProfiler::global().disable();
    ExecProfiler::global().clear();
  }
};

// A hand-built two-worker report with easy numbers: wall 100us; worker
// 0 busy 40us + 10us wait, worker 1 busy 60us + 20us wait.
ProfileReport sample() {
  ProfileReport r;
  r.workers = 2;
  r.wall_ns = 100'000;
  WorkerProfile w0;
  w0.worker = 0;
  w0.busy_ns = 40'000;
  w0.barrier_wait_ns = 10'000;
  w0.chunks = 4;
  w0.instances = 40;
  WorkerProfile w1;
  w1.worker = 1;
  w1.busy_ns = 60'000;
  w1.barrier_wait_ns = 20'000;
  w1.chunks = 4;
  w1.empty_chunks = 1;
  w1.instances = 60;
  r.per_worker = {w0, w1};
  LevelProfile l;
  l.var = "J";
  l.activations = 4;
  l.chunks = 8;
  l.busy_ns = 100'000;
  l.max_worker_busy_ns = 60'000;
  r.levels = {l};
  return r;
}

TEST_F(Profile, DerivedMetrics) {
  ProfileReport r = sample();
  EXPECT_EQ(r.total_busy_ns(), 100'000);
  EXPECT_EQ(r.total_wait_ns(), 30'000);
  // Worker 0's residue: 100us wall - 40us busy - 10us wait = 50us.
  EXPECT_EQ(r.serial_ns(), 50'000);
  EXPECT_DOUBLE_EQ(r.utilization(0), 0.4);
  EXPECT_DOUBLE_EQ(r.utilization(1), 0.6);
  EXPECT_DOUBLE_EQ(r.avg_utilization(), 0.5);
  // max busy 60us / mean busy 50us.
  EXPECT_DOUBLE_EQ(r.load_imbalance(), 1.2);
  // 30us waited / (100us wall * 2 workers).
  EXPECT_DOUBLE_EQ(r.barrier_share(), 0.15);
  // 100us parallel work vs 50us serial residue.
  EXPECT_NEAR(r.measured_parallel_fraction(), 100.0 / 150.0, 1e-12);
}

TEST_F(Profile, EmptyReportIsAllZeros) {
  ProfileReport r;
  EXPECT_EQ(r.total_busy_ns(), 0);
  EXPECT_EQ(r.serial_ns(), 0);
  EXPECT_DOUBLE_EQ(r.avg_utilization(), 0.0);
  EXPECT_DOUBLE_EQ(r.load_imbalance(), 0.0);
  EXPECT_DOUBLE_EQ(r.measured_parallel_fraction(), 0.0);
  EXPECT_EQ(r.utilization(0), 0.0);   // out of range, not UB
  EXPECT_EQ(r.utilization(-1), 0.0);
}

TEST_F(Profile, TextReportCarriesTheHeadlineNumbers) {
  ProfileReport r = sample();
  r.predicted_parallel_fraction = 0.9;
  r.predicted_speedup = 1.8;
  std::string t = r.to_text();
  EXPECT_NE(t.find("workers: 2"), std::string::npos);
  EXPECT_NE(t.find("measured parallel fraction: 0.667"), std::string::npos);
  EXPECT_NE(t.find("model predicted: 0.900"), std::string::npos);
  EXPECT_NE(t.find("w0:"), std::string::npos);
  EXPECT_NE(t.find("w1:"), std::string::npos);
  EXPECT_NE(t.find("J: 4 activations"), std::string::npos);
}

TEST_F(Profile, JsonReportHasTheFields) {
  std::string j = sample().to_json();
  EXPECT_NE(j.find("\"workers\":2"), std::string::npos);
  EXPECT_NE(j.find("\"busy_ns\":100000"), std::string::npos);
  EXPECT_NE(j.find("\"per_worker\":["), std::string::npos);
  EXPECT_NE(j.find("\"var\":\"J\""), std::string::npos);
  // No prediction attached: the predicted keys are absent entirely.
  EXPECT_EQ(j.find("predicted_parallel_fraction"), std::string::npos);
}

TEST_F(Profile, EnabledGateAndCollector) {
  EXPECT_FALSE(ExecProfiler::enabled());
  ExecProfiler::global().enable();
  EXPECT_TRUE(ExecProfiler::enabled());
  EXPECT_EQ(ExecProfiler::global().report_count(), 0u);
  ExecProfiler::global().add_report(sample());
  ExecProfiler::global().add_report(sample());
  EXPECT_EQ(ExecProfiler::global().report_count(), 2u);
  ExecProfiler::global().clear();
  EXPECT_EQ(ExecProfiler::global().report_count(), 0u);
  // clear() drops reports but not the enable bit.
  EXPECT_TRUE(ExecProfiler::enabled());
}

TEST_F(Profile, MergedSumsRunsWorkersAndLevels) {
  ExecProfiler::global().add_report(sample());
  ProfileReport second = sample();
  second.predicted_parallel_fraction = 0.75;
  second.predicted_speedup = 1.6;
  ExecProfiler::global().add_report(second);

  ProfileReport m = ExecProfiler::global().merged();
  EXPECT_EQ(m.workers, 2);
  EXPECT_EQ(m.runs, 2);
  EXPECT_EQ(m.wall_ns, 200'000);
  ASSERT_EQ(m.per_worker.size(), 2u);
  EXPECT_EQ(m.per_worker[0].busy_ns, 80'000);
  EXPECT_EQ(m.per_worker[1].busy_ns, 120'000);
  EXPECT_EQ(m.per_worker[1].empty_chunks, 2);
  ASSERT_EQ(m.levels.size(), 1u);
  EXPECT_EQ(m.levels[0].var, "J");
  EXPECT_EQ(m.levels[0].chunks, 16);
  EXPECT_EQ(m.levels[0].busy_ns, 200'000);
  // Per-run maxima sum, so per-level imbalance stays >= 1 over runs.
  EXPECT_EQ(m.levels[0].max_worker_busy_ns, 120'000);
  // Ratios are unchanged by merging identical runs.
  EXPECT_DOUBLE_EQ(m.load_imbalance(), 1.2);
  EXPECT_NEAR(m.measured_parallel_fraction(), 200.0 / 300.0, 1e-12);
  // The later run's prediction wins.
  EXPECT_DOUBLE_EQ(m.predicted_parallel_fraction, 0.75);
  EXPECT_DOUBLE_EQ(m.predicted_speedup, 1.6);
}

TEST_F(Profile, MergedOfNothingIsDefault) {
  ProfileReport m = ExecProfiler::global().merged();
  EXPECT_EQ(m.workers, 0);
  EXPECT_TRUE(m.per_worker.empty());
  EXPECT_TRUE(m.levels.empty());
}

}  // namespace
}  // namespace inlt
