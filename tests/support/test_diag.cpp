// DiagnosticEngine: ordering, rendering, JSON, and the exception
// bridge at the public boundary.
#include "support/diag.hpp"

#include <gtest/gtest.h>

namespace inlt {
namespace {

Diagnostic make(Severity sev, Stage stage, const std::string& msg) {
  Diagnostic d;
  d.severity = sev;
  d.stage = stage;
  d.message = msg;
  return d;
}

TEST(Diag, NamesCoverEnums) {
  EXPECT_STREQ(severity_name(Severity::kNote), "note");
  EXPECT_STREQ(severity_name(Severity::kWarning), "warning");
  EXPECT_STREQ(severity_name(Severity::kError), "error");
  EXPECT_STREQ(stage_name(Stage::kParse), "parse");
  EXPECT_STREQ(stage_name(Stage::kLayout), "layout");
  EXPECT_STREQ(stage_name(Stage::kDependence), "dependence");
  EXPECT_STREQ(stage_name(Stage::kStructure), "structure");
  EXPECT_STREQ(stage_name(Stage::kLegality), "legality");
  EXPECT_STREQ(stage_name(Stage::kCompletion), "completion");
  EXPECT_STREQ(stage_name(Stage::kCodegen), "codegen");
}

TEST(Diag, RenderDependenceDiagnostic) {
  Diagnostic d = make(Severity::kError, Stage::kLegality, "not lex positive");
  d.src_stmt = "S2";
  d.dst_stmt = "S1";
  d.array = "A";
  d.dep_kind = "flow";
  std::string r = d.render();
  EXPECT_NE(r.find("error[legality]"), std::string::npos) << r;
  EXPECT_NE(r.find("flow S2 -> S1 on A"), std::string::npos) << r;
  EXPECT_NE(r.find("not lex positive"), std::string::npos) << r;
}

TEST(Diag, RenderPlainDiagnostic) {
  Diagnostic d = make(Severity::kWarning, Stage::kCodegen, "odd bounds");
  std::string r = d.render();
  EXPECT_NE(r.find("warning[codegen]"), std::string::npos) << r;
  EXPECT_NE(r.find("odd bounds"), std::string::npos) << r;
  // No dependence fields -> no stray arrow.
  EXPECT_EQ(r.find("->"), std::string::npos) << r;
}

TEST(Diag, SortedIsErrorsFirstAndStable) {
  DiagnosticEngine eng;
  eng.report(make(Severity::kNote, Stage::kCodegen, "n1"));
  eng.report(make(Severity::kError, Stage::kLegality, "e1"));
  eng.report(make(Severity::kWarning, Stage::kCodegen, "w1"));
  eng.report(make(Severity::kError, Stage::kStructure, "e2"));
  eng.report(make(Severity::kNote, Stage::kLayout, "n2"));

  std::vector<const Diagnostic*> s = eng.sorted();
  ASSERT_EQ(s.size(), 5u);
  EXPECT_EQ(s[0]->message, "e1");  // errors first, insertion order kept
  EXPECT_EQ(s[1]->message, "e2");
  EXPECT_EQ(s[2]->message, "w1");
  EXPECT_EQ(s[3]->message, "n1");
  EXPECT_EQ(s[4]->message, "n2");

  // all() keeps raw report order.
  EXPECT_EQ(eng.all().front().message, "n1");
  EXPECT_TRUE(eng.has_errors());
  EXPECT_EQ(eng.count(Severity::kError), 2u);
  EXPECT_EQ(eng.count(Severity::kWarning), 1u);
  EXPECT_EQ(eng.count(Severity::kNote), 2u);
}

TEST(Diag, RenderAllOnePerLineInSortedOrder) {
  DiagnosticEngine eng;
  eng.report(make(Severity::kNote, Stage::kCodegen, "after"));
  eng.report(make(Severity::kError, Stage::kLegality, "first"));
  std::string text = eng.render_all();
  size_t e = text.find("first");
  size_t n = text.find("after");
  ASSERT_NE(e, std::string::npos);
  ASSERT_NE(n, std::string::npos);
  EXPECT_LT(e, n);
  EXPECT_EQ(text.back(), '\n');
}

TEST(Diag, JsonIsWellFormedAndEscaped) {
  DiagnosticEngine eng;
  Diagnostic d = make(Severity::kError, Stage::kLegality, "say \"no\"\n");
  d.src_stmt = "S1";
  d.dep_index = 3;
  eng.report(d);
  std::string j = eng.to_json();
  EXPECT_EQ(j.front(), '[');
  EXPECT_EQ(j.back(), ']');
  EXPECT_NE(j.find("\"severity\":\"error\""), std::string::npos) << j;
  EXPECT_NE(j.find("\"stage\":\"legality\""), std::string::npos) << j;
  EXPECT_NE(j.find("\\\"no\\\""), std::string::npos) << j;
  EXPECT_NE(j.find("\\n"), std::string::npos) << j;
  EXPECT_NE(j.find("\"dep\":3"), std::string::npos) << j;
}

TEST(Diag, JsonEscape) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb"), "a\\nb");
  EXPECT_EQ(json_escape("a\tb"), "a\\tb");
  EXPECT_EQ(json_escape("a\001b"), "a\\u0001b");
}

TEST(Diag, ThrowDiagCarriesDiagnosticAndIsTransformError) {
  Diagnostic d = make(Severity::kError, Stage::kStructure, "bad block");
  d.loop = "I";
  try {
    throw_diag(d);
    FAIL() << "throw_diag returned";
  } catch (const TransformError& e) {  // old catch sites still work
    const auto* de = dynamic_cast<const DiagnosedTransformError*>(&e);
    ASSERT_NE(de, nullptr);
    ASSERT_EQ(de->diagnostics().size(), 1u);
    EXPECT_EQ(de->diagnostics()[0].loop, "I");
    EXPECT_STREQ(e.what(), "bad block");
  }
}

TEST(Diag, DiagnosedErrorKeepsProseWhat) {
  std::vector<Diagnostic> ds = {
      make(Severity::kError, Stage::kLegality, "v1"),
      make(Severity::kError, Stage::kLegality, "v2"),
  };
  DiagnosedTransformError e("matrix is illegal: 2 violations", ds);
  EXPECT_STREQ(e.what(), "matrix is illegal: 2 violations");
  EXPECT_EQ(e.diagnostics().size(), 2u);
}

TEST(Diag, ClearEmptiesEngine) {
  DiagnosticEngine eng;
  eng.report(make(Severity::kError, Stage::kLegality, "x"));
  EXPECT_FALSE(eng.empty());
  eng.clear();
  EXPECT_TRUE(eng.empty());
  EXPECT_FALSE(eng.has_errors());
  EXPECT_EQ(eng.to_json(), "[]");
}

}  // namespace
}  // namespace inlt
