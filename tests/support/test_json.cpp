// json_escape / json_quote: the one escaping routine every JSON
// emitter (diagnostics, stats, traces, bench reports) shares.
#include "support/json.hpp"

#include <gtest/gtest.h>

namespace inlt {
namespace {

TEST(JsonEscape, PlainStringsPassThrough) {
  EXPECT_EQ(json_escape(""), "");
  EXPECT_EQ(json_escape("hello world"), "hello world");
  EXPECT_EQ(json_escape("a[0] -> b{1}"), "a[0] -> b{1}");
}

TEST(JsonEscape, QuotesAndBackslashes) {
  EXPECT_EQ(json_escape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(json_escape("C:\\path\\file"), "C:\\\\path\\\\file");
  EXPECT_EQ(json_escape("\\\""), "\\\\\\\"");
}

TEST(JsonEscape, CommonControlShortForms) {
  EXPECT_EQ(json_escape("a\nb"), "a\\nb");
  EXPECT_EQ(json_escape("a\tb"), "a\\tb");
  EXPECT_EQ(json_escape("a\rb"), "a\\rb");
  EXPECT_EQ(json_escape("a\bb"), "a\\bb");
  EXPECT_EQ(json_escape("a\fb"), "a\\fb");
}

TEST(JsonEscape, OtherControlCharsAsUnicodeEscapes) {
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(json_escape(std::string(1, '\x1f')), "\\u001f");
  EXPECT_EQ(json_escape(std::string("x") + '\0' + "y"),
            "x\\u0000y");
}

TEST(JsonEscape, NonAsciiBytesUntouched) {
  // UTF-8 multibyte sequences are valid JSON as-is.
  std::string s = "\xce\x94-vector";  // Δ-vector
  EXPECT_EQ(json_escape(s), s);
}

TEST(JsonQuote, WrapsEscapedContent) {
  EXPECT_EQ(json_quote("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(json_quote(""), "\"\"");
}

}  // namespace
}  // namespace inlt
