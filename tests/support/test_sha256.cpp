// FIPS 180-4 known-answer vectors for the cache-key hash
// (support/sha256.hpp) plus streaming/chunking invariance — the native
// engine's compile cache depends on this digest being exactly SHA-256,
// not merely *a* hash, so cache directories stay valid across builds.
#include <gtest/gtest.h>

#include <string>

#include "support/sha256.hpp"

namespace inlt {
namespace {

TEST(Sha256, EmptyString) {
  EXPECT_EQ(sha256_hex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(sha256_hex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(sha256_hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnop"
                       "nopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  std::string a(1000000, 'a');
  EXPECT_EQ(sha256_hex(a),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, LengthExactlyOneBlock) {
  // 64 bytes: padding must spill into a second block.
  std::string m(64, 'x');
  EXPECT_EQ(sha256_hex(m), sha256_hex(m));
  EXPECT_NE(sha256_hex(m), sha256_hex(std::string(63, 'x')));
}

TEST(Sha256, StreamingMatchesOneShot) {
  std::string msg =
      "the quick brown fox jumps over the lazy dog, repeatedly, until the "
      "message spans several blocks and odd chunk boundaries matter";
  for (size_t chunk : {1u, 3u, 7u, 64u, 100u}) {
    Sha256 h;
    for (size_t i = 0; i < msg.size(); i += chunk)
      h.update(msg.substr(i, chunk));
    auto d = h.digest();
    std::string hex;
    static const char* k = "0123456789abcdef";
    for (auto b : d) {
      hex.push_back(k[b >> 4]);
      hex.push_back(k[b & 0xf]);
    }
    EXPECT_EQ(hex, sha256_hex(msg)) << "chunk=" << chunk;
  }
}

}  // namespace
}  // namespace inlt
