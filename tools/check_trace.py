#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file produced by --trace-out.

Checks that the file is valid JSON with the shape Perfetto / chrome://tracing
expect: a top-level "traceEvents" list of complete ("ph":"X") events, each
carrying name/cat/ts/dur/pid/tid with sane values.

Usage: check_trace.py TRACE.json [--min-events N] [--require-cat CAT ...]
Exits 0 when valid, 1 otherwise.
"""

import argparse
import json
import sys

REQUIRED_KEYS = ("name", "cat", "ph", "ts", "dur", "pid", "tid")


def fail(msg):
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("trace", help="Chrome trace-event JSON file")
    ap.add_argument("--min-events", type=int, default=1,
                    help="minimum number of trace events expected")
    ap.add_argument("--require-cat", action="append", default=[],
                    help="category that must appear at least once")
    args = ap.parse_args()

    try:
        with open(args.trace, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{args.trace}: {e}")

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail("top level must be an object with a 'traceEvents' key")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail("'traceEvents' must be a list")
    if len(events) < args.min_events:
        fail(f"expected at least {args.min_events} events, got {len(events)}")

    cats = set()
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            fail(f"event {i} is not an object")
        for key in REQUIRED_KEYS:
            if key not in ev:
                fail(f"event {i} missing key '{key}': {ev}")
        if ev["ph"] != "X":
            fail(f"event {i} has ph={ev['ph']!r}, expected complete event 'X'")
        if not isinstance(ev["ts"], (int, float)) or ev["ts"] < 0:
            fail(f"event {i} has invalid ts={ev['ts']!r}")
        if not isinstance(ev["dur"], (int, float)) or ev["dur"] < 0:
            fail(f"event {i} has negative dur={ev['dur']!r}")
        if not isinstance(ev["tid"], int) or ev["tid"] <= 0:
            fail(f"event {i} has invalid tid={ev['tid']!r}")
        if "args" in ev and not isinstance(ev["args"], dict):
            fail(f"event {i} has non-object args")
        cats.add(ev["cat"])

    for cat in args.require_cat:
        if cat not in cats:
            fail(f"required category '{cat}' absent (saw: {sorted(cats)})")

    print(f"check_trace: OK: {len(events)} events, "
          f"categories: {', '.join(sorted(cats))}")


if __name__ == "__main__":
    main()
