#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file produced by --trace-out.

Checks that the file is valid JSON with the shape Perfetto / chrome://tracing
expect: a top-level "traceEvents" list of complete ("ph":"X") span events,
counter ("ph":"C") samples, and thread-name ("ph":"M") metadata, each
carrying the keys its phase requires with sane values.

Usage: check_trace.py TRACE.json [--min-events N] [--require-cat CAT ...]
                      [--require-counter NAME ...]
                      [--require-thread-name SUBSTR ...]
Exits 0 when valid, 1 otherwise.
"""

import argparse
import json
import sys

SPAN_KEYS = ("name", "cat", "ph", "ts", "dur", "pid", "tid")
COUNTER_KEYS = ("name", "cat", "ph", "ts", "pid", "tid", "args")
META_KEYS = ("name", "ph", "pid", "tid", "args")


def fail(msg):
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_common(i, ev, keys):
    for key in keys:
        if key not in ev:
            fail(f"event {i} missing key '{key}': {ev}")
    if not isinstance(ev["tid"], int) or ev["tid"] <= 0:
        fail(f"event {i} has invalid tid={ev['tid']!r}")
    if "args" in ev and not isinstance(ev["args"], dict):
        fail(f"event {i} has non-object args")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("trace", help="Chrome trace-event JSON file")
    ap.add_argument("--min-events", type=int, default=1,
                    help="minimum number of trace events expected")
    ap.add_argument("--require-cat", action="append", default=[],
                    help="category that must appear at least once")
    ap.add_argument("--require-counter", action="append", default=[],
                    help="counter track name that must appear at least once")
    ap.add_argument("--require-thread-name", action="append", default=[],
                    help="substring that some thread_name metadata event "
                         "must contain")
    args = ap.parse_args()

    try:
        with open(args.trace, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{args.trace}: {e}")

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail("top level must be an object with a 'traceEvents' key")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail("'traceEvents' must be a list")
    if len(events) < args.min_events:
        fail(f"expected at least {args.min_events} events, got {len(events)}")

    cats = set()
    counters = set()
    thread_names = []
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            fail(f"event {i} is not an object")
        ph = ev.get("ph")
        if ph == "X":
            check_common(i, ev, SPAN_KEYS)
            if not isinstance(ev["ts"], (int, float)) or ev["ts"] < 0:
                fail(f"event {i} has invalid ts={ev['ts']!r}")
            if not isinstance(ev["dur"], (int, float)) or ev["dur"] < 0:
                fail(f"event {i} has negative dur={ev['dur']!r}")
            cats.add(ev["cat"])
        elif ph == "C":
            check_common(i, ev, COUNTER_KEYS)
            if not isinstance(ev["ts"], (int, float)) or ev["ts"] < 0:
                fail(f"event {i} has invalid ts={ev['ts']!r}")
            if not ev["args"]:
                fail(f"event {i} is a counter sample with empty args")
            for v in ev["args"].values():
                if not isinstance(v, (int, float)):
                    fail(f"event {i} counter value {v!r} is not numeric")
            counters.add(ev["name"])
            cats.add(ev["cat"])
        elif ph == "M":
            check_common(i, ev, META_KEYS)
            if ev["name"] != "thread_name":
                fail(f"event {i} is metadata with name={ev['name']!r}, "
                     "expected 'thread_name'")
            name = ev["args"].get("name")
            if not isinstance(name, str) or not name:
                fail(f"event {i} thread_name metadata lacks args.name")
            thread_names.append(name)
        else:
            fail(f"event {i} has ph={ph!r}, expected 'X', 'C' or 'M'")

    for cat in args.require_cat:
        if cat not in cats:
            fail(f"required category '{cat}' absent (saw: {sorted(cats)})")
    for name in args.require_counter:
        if name not in counters:
            fail(f"required counter '{name}' absent "
                 f"(saw: {sorted(counters)})")
    for sub in args.require_thread_name:
        if not any(sub in n for n in thread_names):
            fail(f"no thread_name metadata contains '{sub}' "
                 f"(saw: {thread_names})")

    print(f"check_trace: OK: {len(events)} events, "
          f"categories: {', '.join(sorted(cats))}"
          + (f", counters: {', '.join(sorted(counters))}" if counters else "")
          + (f", threads: {len(thread_names)}" if thread_names else ""))


if __name__ == "__main__":
    main()
