// inltc — command-line driver for the inlt loop-transformation
// framework.
//
//   inltc analyze   <file>                     dependence matrix, layout,
//                                              parallel loops
//   inltc transform <file> <op> [...ops]       apply transformations,
//                                              check legality, generate
//   inltc complete  <file> [loop names...]     §6 completion from partial
//                                              unit rows (outermost first)
//   inltc parallel  <file> [...ops]            §7 parallel directions and
//                                              the doall/wavefront schedule;
//                                              with ops, also the schedule
//                                              of the transformed nest
//   inltc search    <file>                     sweep permutations × skews
//                                              through the pruning search
//                                              driver, list legal candidates
//   inltc rank      <file>                     rank the search space by the
//                                              static cache-locality model,
//                                              print the best candidates
//   inltc explain   <file> <op> [...ops]       per-dependence legality
//                                              provenance: the Definition 6
//                                              walk in Δ-vector terms
//   inltc profile   <file> [...ops]            run the (transformed) nest
//                                              partitioned over --exec-threads
//                                              workers and report per-worker
//                                              utilization, barrier waits and
//                                              measured vs. model-predicted
//                                              parallel fraction
//   inltc tile      <file> [...ops]            tile a fully-permutable band
//                                              of the (transformed) nest:
//                                              --report lists the detected
//                                              bands; otherwise the tile plan
//                                              prints to stderr and the tiled
//                                              program to stdout
//
// Transformation ops (composed left to right):
//   interchange A B | skew T S k | reverse V | scale V k
//   reorder PARENT i0 i1 ... | align STMT LOOP k
//
// Flags: --verify N   run source and result on N-sized inputs and compare
//        --engine E   execution engine for --verify runs: vm (default,
//                     compiled bytecode), ast (reference tree walker) or
//                     native (C-compiled kernel; falls back to the VM
//                     with a warning when no compiler is available)
//        --raw        skip the simplification pass
//        --exact      use the exact ILP legality pipeline
//        --pad-zero   zero padding instead of diagonal (ablation)
//        --stats      dump pipeline counters and timers to stderr
//        --stats-json print the Stats snapshot (counters, timers,
//                     histograms — including per-worker sums) as JSON
//                     on stdout, matching the --diag-json convention
//        --diag-json  print structured diagnostics as JSON on stdout
//        --profile    enable the runtime execution profiler
//                     (support/profile.hpp) for every partitioned run
//                     of the command; the merged report prints to
//                     stderr at exit
//        --vm-profile per-opcode VM profiling for serial --verify runs
//                     (vm.op.* / vm.stmt.depth* histograms; see --stats)
//        profile: --n N (problem size, default 64) | --repeat R
//                 --profile-json (report as JSON on stdout)
//        --threads N  search/evaluate worker threads (positive; default
//                     is the hardware count)
//        --exec-threads N  execution-engine worker threads (positive;
//                     default 1 = serial): --verify runs and search
//                     verification chunk each doall level over a shared
//                     worker pool (exec/parallel.hpp), bit-identical to
//                     serial; rank/search scoring discounts the parallel
//                     share of each candidate by this thread count
//        --trace-out F  write a Chrome trace-event JSON of the run to F
//                       (load in Perfetto / chrome://tracing)
//        --trace-summary  per-category span table on stderr
//        --progress   periodic search progress on stderr
//        --search     alias for the search command
//        search/rank: --skew-bound B | --skew-depth D | --full
//                     --cost (score each hit with the cost model)
//                     --top K (keep the K best hits by cost; rank
//                     defaults to 5)
//        (--full generates and prints each legal candidate's program;
//         the default stops at legality verdicts)
//        tile: --tile-sizes B1,B2,..  explicit per-loop tile sizes
//              --tile-auto            sweep the size grid, keep the
//                                     modeled-traffic argmin
//              --tile-band K          tile detected band K (default:
//                                     the deepest band)
//              --tile-loops A,B,..    tile this loop chain instead
//              --report               print the band report and stop
//        search --full --tile / rank --tile: tile every hit's
//              generated program (search) or annotate each ranked hit
//              with its tile plan (rank); the tile flags above select
//              band and sizes
//
// All commands run through a TransformSession: the program is parsed
// and analyzed once, candidate matrices are evaluated against the
// cached analysis, and failures are reported as structured
// diagnostics (see src/support/diag.hpp). Driver-level failures —
// unknown commands or flags, malformed ops, unreadable files — are
// Stage::kCli diagnostics on stderr: exit 2 for bad invocations,
// exit 1 for runtime failures.
//
// <file> may be '-' for stdin.
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "exec/trace.hpp"
#include "exec/verify.hpp"
#include "ir/printer.hpp"
#include "model/cost.hpp"
#include "pipeline/search.hpp"
#include "pipeline/session.hpp"
#include "support/json.hpp"
#include "support/profile.hpp"
#include "support/stats.hpp"
#include "support/trace.hpp"
#include "tile/band.hpp"
#include "tile/plan.hpp"
#include "transform/completion.hpp"
#include "transform/legality.hpp"
#include "transform/parallel.hpp"
#include "transform/transforms.hpp"

namespace {

using namespace inlt;

[[noreturn]] void usage() {
  std::cerr <<
      R"(usage: inltc <command> <file|-> [args] [flags]
commands:
  analyze   <file>                 dependence matrix, layout, doall loops
  transform <file> <ops...>        apply ops, check legality, generate code
  complete  <file> [loops...]      complete a partial transformation (§6)
  parallel  <file> [ops...]        parallel directions and doall/wavefront
                                   schedule (§7), before and after ops
  search    <file>                 sweep permutations x skews, list legal ones
  rank      <file>                 rank the space by the static cost model
  explain   <file> <ops...>        per-dependence legality provenance
  profile   <file> [ops...]        run partitioned over --exec-threads workers,
                                   report per-worker utilization, barrier waits
                                   and measured vs. predicted parallel fraction
  tile      <file> [ops...]        tile a fully-permutable band of the
                                   (transformed) nest; --report lists bands
ops: interchange A B | skew T S k | reverse V | scale V k
     reorder PARENT i0 i1 ... | align STMT LOOP k
flags: --verify N | --engine {vm,ast,native} | --raw | --exact | --pad-zero
       --stats | --stats-json | --diag-json | --threads N | --exec-threads N
       --search | --trace-out F | --trace-summary | --progress
       --profile | --vm-profile
search/rank flags: --skew-bound B | --skew-depth D | --full | --cost | --top K
  (--full --verify N also semantically verifies every legal candidate)
tile flags: --tile-sizes B1,B2,.. | --tile-auto | --tile-band K
            --tile-loops A,B,.. | --report
  (--tile on search --full / rank tiles or annotates every hit)
profile flags: --n N | --repeat R | --profile-json | --engine E
  (--engine {vm,ast,native} profiles that serial engine instead of the
   partitioned run; native reports compile and run time separately)
)";
  std::exit(2);
}

// Driver-level failure: a structured Stage::kCli diagnostic on
// stderr, with a consistent exit code — 2 for bad invocations
// (unknown command/flag/op, malformed arguments), 1 for runtime
// failures (unreadable files).
[[noreturn]] void cli_error(const std::string& message, int rc) {
  Diagnostic d;
  d.stage = Stage::kCli;
  d.message = message;
  std::cerr << "inltc: " << d.render() << "\n";
  std::exit(rc);
}

std::string read_source(const std::string& path) {
  if (path == "-") {
    std::ostringstream os;
    os << std::cin.rdbuf();
    return os.str();
  }
  std::ifstream in(path);
  if (!in) cli_error("cannot open " + path, 1);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

struct Options {
  i64 verify_n = 0;
  ExecEngine engine = ExecEngine::kVm;  // --engine: verify execution engine
  bool raw = false;
  bool exact = false;
  bool stats = false;
  bool diag_json = false;
  PadMode pad = PadMode::kDiagonal;
  int threads = 0;        // SessionOptions::threads (0 = hardware)
  int exec_threads = 1;   // execution-engine workers (1 = serial)
  bool search_flag = false;  // --search: alias for the search command
  i64 skew_bound = 0;     // search space: skew coefficient bound
  int skew_depth = 1;     // search space: skewable window depth
  bool full = false;      // search: generate code for every hit
  bool cost = false;      // search: score each hit with the cost model
  i64 top_k = 0;          // search/rank: keep the K best hits by cost
  std::string trace_out;  // Chrome trace-event JSON destination
  bool trace_summary = false;  // per-category span table on stderr
  bool progress = false;  // search: periodic progress on stderr
  bool stats_json = false;   // Stats snapshot as JSON on stdout
  bool profile = false;      // runtime profiler on partitioned runs
  bool vm_profile = false;   // per-opcode VM profiling (serial runs)
  bool engine_set = false;   // --engine given (profile: serial engine mode)
  bool profile_json = false;  // profile command: JSON report on stdout
  i64 n = 64;                // profile command: problem size (binds N)
  i64 repeat = 1;            // profile command: profiled run count
  bool tile = false;              // search/rank: tile/annotate every hit
  std::vector<i64> tile_sizes;    // --tile-sizes: explicit per-loop sizes
  bool tile_auto = false;         // --tile-auto: sweep the size grid
  i64 tile_band = -1;             // --tile-band: detected band index
  std::vector<std::string> tile_loops;  // --tile-loops: explicit chain
  bool tile_report = false;       // tile --report: band report only
  std::vector<std::string> args;  // non-flag arguments
};

ExecEngine parse_engine(const std::string& name) {
  if (name == "vm") return ExecEngine::kVm;
  if (name == "ast") return ExecEngine::kAstWalker;
  if (name == "native") return ExecEngine::kNative;
  cli_error("unknown engine '" + name + "' (expected vm, ast or native)", 2);
}

// The one validated thread knob: every thread count in the driver —
// search workers (--threads) and the exec pool (--exec-threads) —
// parses through here, and zero or negative counts are rejected with a
// Stage::kCli diagnostic instead of silently meaning something.
int flag_threads(const std::string& flag, const std::string& value);

// The value of flag `flag`, parsed as a (possibly negative) integer.
i64 flag_int(const std::string& flag, const std::string& value) {
  size_t pos = 0;
  i64 v = 0;
  try {
    v = std::stoll(value, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (pos != value.size() || value.empty())
    cli_error("flag " + flag + " expects an integer, got '" + value + "'", 2);
  return v;
}

int flag_threads(const std::string& flag, const std::string& value) {
  i64 v = flag_int(flag, value);
  if (v <= 0)
    cli_error("flag " + flag + " expects a positive thread count, got '" +
                  value + "'",
              2);
  return static_cast<int>(v);
}

std::vector<std::string> split_commas(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == ',') {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

std::vector<i64> parse_tile_sizes(const std::string& flag,
                                  const std::string& value) {
  std::vector<i64> sizes;
  for (const std::string& part : split_commas(value)) {
    i64 v = flag_int(flag, part);
    if (v <= 0)
      cli_error("flag " + flag + " expects positive tile sizes, got '" +
                    part + "'",
                2);
    sizes.push_back(v);
  }
  return sizes;
}

Options parse_flags(int argc, char** argv, int first) {
  Options o;
  auto value = [&](int& i, const std::string& flag) -> std::string {
    if (++i >= argc) cli_error("flag " + flag + " requires a value", 2);
    return argv[i];
  };
  for (int i = first; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--verify") {
      o.verify_n = flag_int(a, value(i, a));
    } else if (a == "--engine") {
      o.engine = parse_engine(value(i, a));
      o.engine_set = true;
    } else if (a.rfind("--engine=", 0) == 0) {
      o.engine = parse_engine(a.substr(9));
      o.engine_set = true;
    } else if (a == "--raw") {
      o.raw = true;
    } else if (a == "--exact") {
      o.exact = true;
    } else if (a == "--pad-zero") {
      o.pad = PadMode::kZero;
    } else if (a == "--stats") {
      o.stats = true;
    } else if (a == "--diag-json") {
      o.diag_json = true;
    } else if (a == "--threads") {
      o.threads = flag_threads(a, value(i, a));
    } else if (a == "--exec-threads") {
      o.exec_threads = flag_threads(a, value(i, a));
    } else if (a == "--search") {
      o.search_flag = true;
    } else if (a == "--skew-bound") {
      o.skew_bound = flag_int(a, value(i, a));
    } else if (a == "--skew-depth") {
      o.skew_depth = static_cast<int>(flag_int(a, value(i, a)));
    } else if (a == "--full") {
      o.full = true;
    } else if (a == "--cost") {
      o.cost = true;
    } else if (a == "--top") {
      o.top_k = flag_int(a, value(i, a));
      if (o.top_k <= 0) cli_error("flag --top expects a positive count", 2);
    } else if (a == "--trace-out") {
      o.trace_out = value(i, a);
    } else if (a == "--trace-summary") {
      o.trace_summary = true;
    } else if (a == "--progress") {
      o.progress = true;
    } else if (a == "--stats-json") {
      o.stats_json = true;
    } else if (a == "--profile") {
      o.profile = true;
    } else if (a == "--vm-profile") {
      o.vm_profile = true;
    } else if (a == "--profile-json") {
      o.profile_json = true;
    } else if (a == "--n") {
      o.n = flag_int(a, value(i, a));
      if (o.n <= 0) cli_error("flag --n expects a positive size", 2);
    } else if (a == "--repeat") {
      o.repeat = flag_int(a, value(i, a));
      if (o.repeat <= 0) cli_error("flag --repeat expects a positive count", 2);
    } else if (a == "--tile") {
      o.tile = true;
    } else if (a == "--tile-sizes") {
      o.tile_sizes = parse_tile_sizes(a, value(i, a));
    } else if (a == "--tile-auto") {
      o.tile_auto = true;
    } else if (a == "--tile-band") {
      o.tile_band = flag_int(a, value(i, a));
      if (o.tile_band < 0)
        cli_error("flag --tile-band expects a non-negative band index", 2);
    } else if (a == "--tile-loops") {
      o.tile_loops = split_commas(value(i, a));
      for (const std::string& v : o.tile_loops)
        if (v.empty())
          cli_error("flag --tile-loops expects comma-separated loop names", 2);
    } else if (a == "--report") {
      o.tile_report = true;
    } else if (a.rfind("--", 0) == 0) {
      // Unknown flags used to fall through as positional arguments and
      // be silently ignored; fail loudly instead.
      cli_error("unknown flag '" + a + "'", 2);
    } else {
      o.args.push_back(a);
    }
  }
  return o;
}

IntMat parse_ops(const IvLayout& layout, const std::vector<std::string>& ops,
                 size_t from) {
  IntMat m = IntMat::identity(layout.size());
  size_t i = from;
  auto need = [&](size_t more) {
    if (i + more > ops.size())
      cli_error("malformed op near '" + ops[i - 1] + "'", 2);
  };
  while (i < ops.size()) {
    std::string op = ops[i++];
    if (op == "interchange") {
      need(2);
      m = mat_mul(loop_interchange(layout, ops[i], ops[i + 1]), m);
      i += 2;
    } else if (op == "skew") {
      need(3);
      m = mat_mul(
          loop_skew(layout, ops[i], ops[i + 1], std::stoll(ops[i + 2])), m);
      i += 3;
    } else if (op == "reverse") {
      need(1);
      m = mat_mul(loop_reversal(layout, ops[i]), m);
      i += 1;
    } else if (op == "scale") {
      need(2);
      m = mat_mul(loop_scaling(layout, ops[i], std::stoll(ops[i + 1])), m);
      i += 2;
    } else if (op == "align") {
      need(3);
      m = mat_mul(statement_alignment(layout, ops[i], ops[i + 1],
                                      std::stoll(ops[i + 2])),
                  m);
      i += 3;
    } else if (op == "reorder") {
      need(1);
      std::string parent = ops[i++];
      std::vector<int> perm;
      while (i < ops.size() && !ops[i].empty() &&
             (std::isdigit(static_cast<unsigned char>(ops[i][0]))))
        perm.push_back(std::stoi(ops[i++]));
      m = mat_mul(statement_reorder(layout, parent, perm), m);
    } else {
      cli_error("unknown op '" + op + "'", 2);
    }
  }
  return m;
}

// End-of-run telemetry: --stats counters, the Chrome trace file, and
// the span summary. Every exit path (success, diagnostics, errors)
// funnels through here so a partial run still leaves a usable trace.
void dump_stats(const Options& opts) {
  if (opts.stats) std::cerr << Stats::global().to_text();
  if (opts.stats_json) std::cout << Stats::global().to_json() << "\n";
  if (opts.profile && ExecProfiler::global().report_count() > 0)
    std::cerr << ExecProfiler::global().merged().to_text();
  if (!opts.trace_out.empty()) {
    std::ofstream out(opts.trace_out);
    if (!out) {
      std::cerr << "inltc: cannot write trace to " << opts.trace_out << "\n";
    } else {
      out << Tracer::global().chrome_trace_json() << "\n";
      std::cerr << "trace: " << Tracer::global().event_count()
                << " events -> " << opts.trace_out << "\n";
    }
  }
  if (opts.trace_summary) std::cerr << Tracer::global().summary_text();
}

// Progress line for long searches, rendered in place on stderr.
void render_progress(const SearchProgress& p) {
  std::ostringstream os;
  os << "search: " << p.done << "/" << p.total << " ("
     << static_cast<i64>(p.rate) << " cand/s, "
     << static_cast<i64>(p.prune_rate * 100) << "% pruned, " << p.legal
     << " legal, eta " << static_cast<i64>(p.eta_s) << "s)";
  std::cerr << "\r" << os.str() << (p.done >= p.total ? "\n" : "")
            << std::flush;
}

int emit_and_verify(const Program& source, const Program& result,
                    const Options& opts, const ExecPlan& plan) {
  std::cout << print_program(result);
  if (opts.verify_n > 0) {
    VerifyResult v =
        verify_equivalence(source, result, {{"N", opts.verify_n}},
                           FillKind::kSpd, 1, 1e-9, opts.engine, plan);
    TraceCheckResult t =
        check_dependence_order(source, result, {{"N", opts.verify_n}});
    std::cerr << "verify(N=" << opts.verify_n << "): " << v.to_string()
              << (t.ok ? "; dependence orders preserved"
                       : "; TRACE MISMATCH: " + t.diagnosis)
              << "\n";
    if (!v.equivalent || !t.ok) return 1;
  }
  return 0;
}

// Doall partitions for both sides of a --verify run at --exec-threads
// N: the source schedule as written and the candidate's target-space
// schedule. Analysis failures just mean serial verification.
ExecPlan exec_plan(TransformSession& session, const IntMat& m,
                   const Options& opts) {
  ExecPlan plan;
  plan.threads = opts.exec_threads;
  plan.vm_profile = opts.vm_profile;
  if (opts.exec_threads <= 1) return plan;
  const IvLayout& layout = session.layout();
  const DependenceSet& deps = session.dependences();
  try {
    plan.source_partition = source_parallel_schedule(layout, deps).partition;
    AstRecovery rec = recover_ast(layout, m);
    plan.target_partition =
        analyze_target_parallelism(layout, deps, m, rec).partition;
  } catch (const Error&) {
    plan.source_partition.clear();
    plan.target_partition.clear();
  }
  return plan;
}

// Evaluate `m` through the session; emit the program on success and
// the diagnostics (prose to stderr, or JSON to stdout under
// --diag-json) on failure.
int run_candidate(TransformSession& session, const IntMat& m,
                  const Options& opts) {
  CandidateResult r = session.evaluate(m);
  if (r.legal) {
    int rc = emit_and_verify(session.program(), *r.program, opts,
                             exec_plan(session, m, opts));
    dump_stats(opts);
    return rc;
  }
  if (opts.diag_json) {
    DiagnosticEngine render;
    for (const Diagnostic& d : r.diagnostics) render.report(d);
    std::cout << render.to_json() << "\n";
  } else {
    std::cerr << "inltc: " << r.error << "\n";
  }
  dump_stats(opts);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) usage();
  std::string cmd = argv[1];
  int first = 2;
  if (cmd.rfind("--", 0) == 0) {
    // Flags before any command: `inltc --search <file>` style.
    cmd.clear();
    first = 1;
  }
  Options opts = parse_flags(argc, argv, first);
  if (opts.search_flag) cmd = "search";
  if (cmd.empty() || opts.args.empty()) usage();
  // Reject unknown commands before any file is read or analyzed.
  if (cmd != "analyze" && cmd != "transform" && cmd != "explain" &&
      cmd != "complete" && cmd != "search" && cmd != "rank" &&
      cmd != "parallel" && cmd != "profile" && cmd != "tile")
    cli_error("unknown command '" + cmd + "'", 2);
  std::string path = opts.args[0];
  if (!opts.trace_out.empty() || opts.trace_summary)
    Tracer::global().enable();
  if (opts.profile || cmd == "profile") ExecProfiler::global().enable();

  try {
    SessionOptions sopts;
    sopts.analyzer = {opts.pad, 8};
    sopts.codegen = {opts.pad};
    sopts.exact = opts.exact;
    sopts.simplify = !opts.raw;
    sopts.threads = opts.threads;
    TransformSession session =
        TransformSession::from_source(read_source(path), sopts);
    const IvLayout& layout = session.layout();
    const DependenceSet& deps = session.dependences();

    if (cmd == "analyze") {
      std::cout << "instance-vector layout: " << layout.to_string() << "\n\n"
                << "dependences:\n";
      std::cout << deps.to_string();
      std::cout << "\ndoall loops:";
      for (const std::string& v : parallel_loops(layout, deps))
        std::cout << " " << v;
      std::cout << "\n";
      dump_stats(opts);
      return 0;
    }

    if (cmd == "transform") {
      IntMat m = parse_ops(layout, opts.args, 1);
      std::cerr << "matrix:\n" << mat_to_string(m) << "\n";
      return run_candidate(session, m, opts);
    }

    if (cmd == "explain") {
      IntMat m = parse_ops(layout, opts.args, 1);
      std::cerr << "matrix:\n" << mat_to_string(m) << "\n";
      AstRecovery rec = recover_ast(layout, m);
      LegalityTrace t = explain_legality(layout, deps, m, rec);
      std::cout << t.to_text(deps, *rec.target_layout);
      dump_stats(opts);
      return t.legal() ? 0 : 1;
    }

    if (cmd == "complete") {
      std::vector<IntVec> rows;
      for (size_t i = 1; i < opts.args.size(); ++i) {
        IntVec r(layout.size(), 0);
        r[layout.loop_position(opts.args[i])] = 1;
        rows.push_back(std::move(r));
      }
      CompletionResult res = complete_transformation(layout, deps, rows);
      std::cerr << "completed matrix:\n" << mat_to_string(res.matrix)
                << "\n";
      return run_candidate(session, res.matrix, opts);
    }

    if (cmd == "search" || cmd == "rank") {
      // `rank` is search configured as the rank pipeline: legality
      // filter + Complete + Cost stages, keeping the best K hits by
      // estimated cache lines (default 5).
      const bool rank = cmd == "rank";
      SearchSpace space{opts.skew_bound, opts.skew_depth};
      SearchOptions search_opts;
      search_opts.mode = opts.full && !rank ? SearchMode::kFull
                                            : SearchMode::kLegalityOnly;
      search_opts.cost = opts.cost || rank;
      search_opts.top_k = rank && opts.top_k == 0 ? 5 : opts.top_k;
      if (opts.progress) search_opts.progress = render_progress;
      search_opts.exec_threads = opts.exec_threads;
      if (opts.full && opts.verify_n > 0) {
        search_opts.verify_params = {{"N", opts.verify_n}};
        search_opts.verify_engine = opts.engine;
      }
      TileOptions tile_opts;
      tile_opts.sizes = opts.tile_sizes;
      tile_opts.band = static_cast<int>(opts.tile_band);
      tile_opts.loops = opts.tile_loops;
      tile_opts.auto_select = opts.tile_auto;
      if (opts.tile) {
        if (rank) {
          // Rank never generates code; hits are annotated with a tile
          // plan after the search instead (below).
        } else if (!opts.full) {
          cli_error("--tile on search requires --full (tiling rewrites "
                    "generated code)",
                    2);
        } else {
          search_opts.tile = true;
          search_opts.tile_opts = tile_opts;
        }
      }
      SearchResult res = session.search(space, search_opts);
      std::cout << "search space: " << res.stats.candidates_total
                << " candidates (skew bound " << opts.skew_bound << ", depth "
                << opts.skew_depth << ")\n"
                << "legal: " << res.stats.legal
                << "  evaluated: " << res.stats.evaluated
                << "  pruned: " << res.stats.pruned_candidates << " ("
                << res.stats.pruned_subtrees << " subtrees)\n";
      if (res.stats.verified > 0)
        std::cout << "verified: " << res.stats.verified << " (N="
                  << opts.verify_n << "), mismatches: "
                  << res.stats.verify_failed << "\n";
      if (res.rejections.rejected > 0)
        std::cout << res.rejections.to_text(deps);
      const bool ranked = search_opts.top_k > 0;
      if (ranked)
        std::cout << "ranking: best " << res.hits.size() << " of "
                  << res.stats.legal
                  << " legal candidates by estimated cache lines\n";
      i64 position = 0;
      for (const SearchHit& h : res.hits) {
        ++position;
        if (ranked)
          std::cout << "\nrank " << position << ": candidate #" << h.index
                    << "\n" << mat_to_string(h.matrix);
        else
          std::cout << "\nlegal candidate #" << h.index << ":\n"
                    << mat_to_string(h.matrix);
        if (h.cost) std::cout << h.cost->to_text();
        if (h.tile) std::cout << h.tile->to_text();
        if (rank && opts.tile) {
          // Annotate the ranked hit with a tile plan for its generated
          // program; plan failures report inline rather than aborting
          // the ranking.
          try {
            CandidateResult r = session.evaluate(h.matrix);
            if (r.legal && r.program)
              std::cout << apply_tile(*r.program, tile_opts).plan.to_text();
          } catch (const Error& e) {
            std::cout << "tile plan: error: " << e.what() << "\n";
          }
        }
        if (!h.result.legality.unsatisfied.empty()) {
          std::cout << "unsatisfied self-dependences:";
          for (int d : h.result.legality.unsatisfied) std::cout << " " << d;
          std::cout << "\n";
        }
        if (h.result.verify)
          std::cout << "verify: " << h.result.verify->to_string() << "\n";
        if (opts.full && !rank && h.result.program)
          std::cout << print_program(*h.result.program);
      }
      dump_stats(opts);
      return 0;
    }

    if (cmd == "profile") {
      // Two profiling modes. Default: measure the nest's partitioned
      // execution — serial reference run first, then --repeat profiled
      // runs at --exec-threads with the schedule's doall levels chunked
      // — the measured counterpart of `rank`'s static cost estimate.
      // With --engine E: time --repeat serial runs on that engine; the
      // native engine additionally splits its wall time into the
      // out-of-process C compile vs. kernel execution.
      IntMat m = opts.args.size() > 1 ? parse_ops(layout, opts.args, 1)
                                      : IntMat::identity(layout.size());
      Program prog = session.program();
      if (opts.args.size() > 1) {
        CandidateResult r = session.evaluate(m);
        if (!r.legal) {
          if (opts.diag_json) {
            DiagnosticEngine render;
            for (const Diagnostic& d : r.diagnostics) render.report(d);
            std::cout << render.to_json() << "\n";
          } else {
            std::cerr << "inltc: " << r.error << "\n";
          }
          dump_stats(opts);
          return 1;
        }
        prog = *r.program;
      }

      if (opts.engine_set) {
        if (opts.exec_threads > 1)
          cli_error("profile --engine is serial; drop --exec-threads", 2);
        std::map<std::string, i64> params{{"N", opts.n}};
        InterpOptions eng;
        eng.engine = opts.engine;
        StatsSnapshot s0 = Stats::global().snapshot();
        i64 wall = 0;
        InterpStats last{};
        for (i64 r = 0; r < opts.repeat; ++r) {
          Memory emem;
          declare_arrays(prog, params, emem);
          fill_spd(emem, 1);
          i64 t0 = profile_now_ns();
          last = interpret(prog, params, emem, eng);
          wall += profile_now_ns() - t0;
        }
        StatsSnapshot d = Stats::global().snapshot() - s0;
        auto timer_ns = [&](const char* key) {
          auto it = d.timers.find(key);
          return it == d.timers.end() ? i64{0} : it->second.ns;
        };
        const i64 compile_ns = timer_ns("exec.native.compile_ns");
        const i64 run_ns = timer_ns("exec.native.run_ns");
        const char* ename = opts.engine == ExecEngine::kVm ? "vm"
                            : opts.engine == ExecEngine::kAstWalker
                                ? "ast"
                                : "native";
        if (opts.profile_json) {
          std::ostringstream os;
          os << "{\"engine\":" << json_quote(ename) << ",\"n\":" << opts.n
             << ",\"repeat\":" << opts.repeat << ",\"wall_ns\":" << wall
             << ",\"instances\":" << last.instances
             << ",\"native\":{\"compile_ns\":" << compile_ns
             << ",\"run_ns\":" << run_ns
             << ",\"compiles\":" << d.counter("exec.native.compiles")
             << ",\"disk_hits\":" << d.counter("exec.native.disk_hits")
             << ",\"lru_hits\":" << d.counter("exec.native.lru_hits")
             << ",\"fallbacks\":" << d.counter("exec.native.fallbacks")
             << "}}";
          std::cout << os.str() << "\n";
        } else {
          std::cout << "engine: " << ename << "  N=" << opts.n << "  "
                    << opts.repeat << " run" << (opts.repeat == 1 ? "" : "s")
                    << "\nwall: " << std::fixed << std::setprecision(3)
                    << static_cast<double>(wall) / 1e6 << " ms  ("
                    << last.instances << " instances/run)\n";
          if (opts.engine == ExecEngine::kNative) {
            const i64 compiles = d.counter("exec.native.compiles");
            std::cout << "native compile: "
                      << static_cast<double>(compile_ns) / 1e6 << " ms ("
                      << compiles << " compile" << (compiles == 1 ? "" : "s")
                      << ", " << d.counter("exec.native.disk_hits")
                      << " disk + " << d.counter("exec.native.lru_hits")
                      << " lru hits)  kernel run: "
                      << static_cast<double>(run_ns) / 1e6 << " ms\n";
            if (d.counter("exec.native.fallbacks") > 0)
              std::cout << "native fallbacks: "
                        << d.counter("exec.native.fallbacks")
                        << " (the VM executed instead)\n";
          }
        }
        dump_stats(opts);
        return 0;
      }

      if (opts.exec_threads <= 1)
        cli_error("profile requires --exec-threads >= 2 (or --engine E)", 2);
      AstRecovery rec = recover_ast(layout, m);
      ParallelSchedule sched =
          analyze_target_parallelism(layout, deps, m, rec);
      if (sched.partition.empty())
        cli_error(
            "the schedule has no doall level to partition "
            "(see `inltc parallel`)",
            1);
      std::map<std::string, i64> params{{"N", opts.n}};

      Memory smem;
      declare_arrays(prog, params, smem);
      fill_spd(smem, 1);
      i64 t0 = profile_now_ns();
      interpret(prog, params, smem, {});
      i64 serial_wall = profile_now_ns() - t0;

      ExecProfiler::global().clear();
      InterpOptions par;
      par.num_threads = opts.exec_threads;
      par.partition = sched.partition;
      i64 par_wall = 0;
      for (i64 r = 0; r < opts.repeat; ++r) {
        Memory pmem;
        declare_arrays(prog, params, pmem);
        fill_spd(pmem, 1);
        i64 p0 = profile_now_ns();
        interpret(prog, params, pmem, par);
        par_wall += profile_now_ns() - p0;
      }

      ProfileReport rep = ExecProfiler::global().merged();
      ModelOptions mo;
      mo.exec_threads = opts.exec_threads;
      CostEstimate est = estimate_cost(layout, deps, m, rec, mo);
      rep.predicted_parallel_fraction = est.parallel_fraction;
      double f = est.parallel_fraction;
      rep.predicted_speedup =
          1.0 / ((1.0 - f) + f / static_cast<double>(opts.exec_threads));
      double measured_speedup =
          par_wall > 0 ? static_cast<double>(serial_wall) *
                             static_cast<double>(opts.repeat) /
                             static_cast<double>(par_wall)
                       : 0.0;

      if (opts.profile_json) {
        std::ostringstream os;
        os << "{\"n\":" << opts.n << ",\"threads\":" << opts.exec_threads
           << ",\"repeat\":" << opts.repeat << ",\"wavefront\":"
           << (sched.wavefront ? "true" : "false") << ",\"partition\":[";
        for (size_t i = 0; i < sched.partition.size(); ++i)
          os << (i ? "," : "") << json_quote(sched.partition[i]);
        os << "],\"serial_wall_ns\":" << serial_wall
           << ",\"parallel_wall_ns\":" << par_wall
           << ",\"measured_speedup\":" << measured_speedup
           << ",\"report\":" << rep.to_json() << "}";
        std::cout << os.str() << "\n";
      } else {
        std::cout << "schedule:";
        for (const std::string& v : sched.partition) std::cout << " " << v;
        std::cout << (sched.wavefront ? " (wavefront)" : " (doall)")
                  << "  N=" << opts.n << "\n"
                  << "serial wall: " << std::fixed << std::setprecision(3)
                  << static_cast<double>(serial_wall) / 1e6
                  << " ms  parallel wall: "
                  << static_cast<double>(par_wall) / 1e6 << " ms ("
                  << opts.repeat << " run" << (opts.repeat == 1 ? "" : "s")
                  << ")  measured speedup: " << std::setprecision(2)
                  << measured_speedup << "x\n"
                  << rep.to_text();
      }
      dump_stats(opts);
      return 0;
    }

    if (cmd == "tile") {
      // Transform first (ops compose exactly like `transform`), then
      // tile the resulting nest: detect fully-permutable bands on the
      // generated program, plan band + sizes, materialize the rewrite.
      IntMat m = opts.args.size() > 1 ? parse_ops(layout, opts.args, 1)
                                      : IntMat::identity(layout.size());
      Program prog = session.program();
      if (opts.args.size() > 1) {
        std::cerr << "matrix:\n" << mat_to_string(m) << "\n";
        CandidateResult r = session.evaluate(m);
        if (!r.legal) {
          if (opts.diag_json) {
            DiagnosticEngine render;
            for (const Diagnostic& d : r.diagnostics) render.report(d);
            std::cout << render.to_json() << "\n";
          } else {
            std::cerr << "inltc: " << r.error << "\n";
          }
          dump_stats(opts);
          return 1;
        }
        prog = *r.program;
      }

      if (opts.tile_report) {
        IvLayout tlayout(prog);
        DependenceSet tdeps;
        try {
          tdeps = analyze_dependences(tlayout, sopts.analyzer);
        } catch (const InvalidProgramError& e) {
          cli_error(
              std::string("cannot analyze the program for tiling: ") +
                  e.what(),
              1);
        }
        std::cout << detect_bands(tlayout, tdeps).to_text(tlayout, tdeps);
        dump_stats(opts);
        return 0;
      }

      TileOptions topts;
      topts.sizes = opts.tile_sizes;
      topts.band = static_cast<int>(opts.tile_band);
      topts.loops = opts.tile_loops;
      topts.auto_select = opts.tile_auto;
      // An explicit band or sizes is a direct request: apply it even
      // when the model predicts no gain. Auto mode lets the model
      // decide.
      topts.force = !opts.tile_sizes.empty() || !opts.tile_loops.empty() ||
                    opts.tile_band >= 0;
      ModelOptions tile_model;
      tile_model.exec_threads = opts.exec_threads;
      TiledProgram tp;
      try {
        tp = apply_tile(prog, topts, tile_model);
      } catch (const TileError& e) {
        const std::string what = e.what();
        // Out-of-range band indices are invocation errors (exit 2);
        // everything else (non-permutable chains, unsupported bound
        // shapes) is a legality/runtime failure (exit 1).
        cli_error(what, what.find("out of range") != std::string::npos ? 2
                                                                       : 1);
      }
      std::cerr << tp.plan.to_text();
      const Program& out = tp.program ? *tp.program : prog;
      ExecPlan eplan = exec_plan(session, m, opts);
      if (tp.plan.applied)
        eplan.target_partition = tiled_partition(
            eplan.target_partition, tp.plan.spec, tp.plan.tile_vars);
      int rc = emit_and_verify(session.program(), out, opts, eplan);
      dump_stats(opts);
      return rc;
    }

    if (cmd == "parallel") {
      std::cout << "doall loops:";
      for (const std::string& v : parallel_loops(layout, deps))
        std::cout << " " << v;
      std::cout << "\nparallel direction basis:\n";
      for (const IntVec& r : parallel_row_basis(layout, deps))
        std::cout << "  " << vec_to_string(r) << "\n";
      std::cout << "\nsource schedule:\n"
                << source_parallel_schedule(layout, deps).to_text(deps);
      if (opts.args.size() > 1) {
        IntMat m = parse_ops(layout, opts.args, 1);
        std::cerr << "matrix:\n" << mat_to_string(m) << "\n";
        AstRecovery rec = recover_ast(layout, m);
        std::cout << "\ntransformed schedule:\n"
                  << analyze_target_parallelism(layout, deps, m, rec)
                         .to_text(deps);
      }
      dump_stats(opts);
      return 0;
    }

    cli_error("unknown command '" + cmd + "'", 2);
  } catch (const DiagnosedTransformError& e) {
    if (opts.diag_json) {
      DiagnosticEngine render;
      for (const Diagnostic& d : e.diagnostics()) render.report(d);
      std::cout << render.to_json() << "\n";
    } else {
      std::cerr << "inltc: " << e.what() << "\n";
    }
    dump_stats(opts);
    return 1;
  } catch (const Error& e) {
    std::cerr << "inltc: " << e.what() << "\n";
    dump_stats(opts);
    return 1;
  }
}
