#!/usr/bin/env python3
"""Merge per-benchmark BENCH_*.json reports into one trajectory summary.

Every bench binary in bench/ writes a self-describing JSON report
(BENCH_search.json, BENCH_interp.json, BENCH_parallel.json, ...). CI
uploads each one, but the run's perf picture is easier to consume as a
single file: this script merges them into BENCH_trajectory.json with a
short headline per benchmark (the benchmark's own top-line ratio, when
its schema carries one) plus the full per-benchmark payloads.

Usage: collect_bench.py [--out BENCH_trajectory.json] BENCH_*.json
Missing or malformed inputs are recorded as errors in the summary, not
fatal: a partial trajectory still uploads. Exits 1 only when no input
could be read at all.
"""

import argparse
import json
import sys


def headline(report):
    """Best-effort one-line summary of one benchmark's report."""
    name = report.get("benchmark", "?")
    if report.get("unavailable"):
        return f"{name}: unavailable on this runner"
    if "geomean_native_vs_vm_at_largest" in report:
        return (f"{name}: geomean {report['geomean_native_vs_vm_at_largest']:.2f}x "
                f"vs vm, bit_identical={report.get('bit_identical')}, "
                f"recompiles_second_run={report.get('recompiles_second_run')}")
    kernels = report.get("kernels")
    if isinstance(kernels, list):
        parts = []
        for k in kernels:
            if not isinstance(k, dict):
                continue
            kname = k.get("name", "?")
            for key in ("speedup_8t_at_largest", "speedup_at_largest",
                        "speedup"):
                if key in k:
                    parts.append(f"{kname} {k[key]:.2f}x")
                    break
        if parts:
            return f"{name}: " + ", ".join(parts)
    for key in ("summary", "headline"):
        if key in report:
            return f"{name}: {report[key]}"
    return name


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("inputs", nargs="+", help="BENCH_*.json reports")
    ap.add_argument("--out", default="BENCH_trajectory.json",
                    help="merged output path")
    args = ap.parse_args()

    benchmarks = {}
    errors = {}
    for path in args.inputs:
        if path == args.out:
            continue  # a previous trajectory is not an input
        try:
            with open(path) as f:
                report = json.load(f)
        except (OSError, ValueError) as e:
            errors[path] = str(e)
            continue
        name = report.get("benchmark") or path
        benchmarks[name] = report

    if not benchmarks and errors:
        for path, err in errors.items():
            print(f"collect_bench: {path}: {err}", file=sys.stderr)
        print("collect_bench: no readable input", file=sys.stderr)
        return 1

    trajectory = {
        "benchmarks": benchmarks,
        "headlines": [headline(r) for r in benchmarks.values()],
    }
    if errors:
        trajectory["errors"] = errors

    with open(args.out, "w") as f:
        json.dump(trajectory, f, indent=1, sort_keys=True)
        f.write("\n")

    for line in trajectory["headlines"]:
        print(f"collect_bench: {line}")
    print(f"collect_bench: wrote {args.out} "
          f"({len(benchmarks)} benchmarks, {len(errors)} errors)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
