#!/usr/bin/env python3
"""Regression gate: diff fresh BENCH_*.json reports against a committed
baseline with per-metric tolerance.

The baseline (bench/baseline.json) lists gated metrics, each naming the
benchmark report it lives in, a path selecting the metric inside that
report, and the tolerated range. Only metrics that are machine-
independent (bit-identity flags, rank agreement) or generously floored
ratios (speedups that hold on any multi-core runner) belong in the
baseline — absolute seconds do not.

Path syntax (dotted segments over the report JSON):
    kernels[name=stencil_wavefront].speedup_8t_at_largest
    families[0].kendall_tau
    sizes[n=128].threads[threads=4].bit_identical
A `[key=value]` selector picks the first element of a list whose `key`
equals `value` (numbers compare numerically); `[i]` indexes.

Gate forms (any combination; all present must hold):
    {"expect": v}               fresh == v          (flags, booleans)
    {"min": x} / {"max": x}     absolute bounds
    {"value": v, "min_ratio": r}    fresh >= v * r  (relative floor)
    {"value": v, "max_ratio": r}    fresh <= v * r  (relative ceiling)

A gate may also carry {"skip_if": "path"}: the path is resolved in the
same report, and when it resolves to a truthy value the gate is skipped
rather than checked. This lets reports describe their own applicability
— e.g. BENCH_native.json sets "unavailable": true on runners without a
C compiler, and the native gates declare skip_if "unavailable".

Usage: compare_bench.py --baseline bench/baseline.json BENCH_*.json
       [--allow-missing]
Exits 1 when any gated metric regresses beyond tolerance (or, without
--allow-missing, when a gated benchmark report is absent).
"""

import argparse
import json
import re
import sys

SELECTOR = re.compile(r"^(?P<name>[^\[\]]*)(?P<sels>(\[[^\]]+\])*)$")


def parse_scalar(text):
    for conv in (int, float):
        try:
            return conv(text)
        except ValueError:
            pass
    if text in ("true", "True"):
        return True
    if text in ("false", "False"):
        return False
    return text


def resolve(doc, path):
    """Walk `path` through `doc`; raises KeyError with context."""
    node = doc
    for seg in path.split("."):
        m = SELECTOR.match(seg)
        if not m:
            raise KeyError(f"malformed path segment '{seg}'")
        name = m.group("name")
        if name:
            if not isinstance(node, dict) or name not in node:
                raise KeyError(f"key '{name}' not found (at '{seg}')")
            node = node[name]
        for sel in re.findall(r"\[([^\]]+)\]", m.group("sels")):
            if not isinstance(node, list):
                raise KeyError(f"selector [{sel}] applied to non-list "
                               f"(at '{seg}')")
            if "=" in sel:
                key, _, val = sel.partition("=")
                want = parse_scalar(val)
                for el in node:
                    if isinstance(el, dict) and el.get(key) == want:
                        node = el
                        break
                else:
                    raise KeyError(f"no element with {key}={val} "
                                   f"(at '{seg}')")
            else:
                idx = int(sel)
                if idx >= len(node):
                    raise KeyError(f"index {idx} out of range (at '{seg}')")
                node = node[idx]
    return node


def check_gate(gate, fresh):
    """Returns a list of failure strings (empty = pass)."""
    fails = []
    if "expect" in gate and fresh != gate["expect"]:
        fails.append(f"expected {gate['expect']!r}, got {fresh!r}")
    if "min" in gate and not (isinstance(fresh, (int, float))
                              and fresh >= gate["min"]):
        fails.append(f"{fresh!r} < min {gate['min']}")
    if "max" in gate and not (isinstance(fresh, (int, float))
                              and fresh <= gate["max"]):
        fails.append(f"{fresh!r} > max {gate['max']}")
    if "value" in gate:
        base = gate["value"]
        if "min_ratio" in gate:
            floor = base * gate["min_ratio"]
            if not (isinstance(fresh, (int, float)) and fresh >= floor):
                fails.append(f"{fresh!r} < baseline {base} * "
                             f"min_ratio {gate['min_ratio']} = {floor:.4g}")
        if "max_ratio" in gate:
            ceil = base * gate["max_ratio"]
            if not (isinstance(fresh, (int, float)) and fresh <= ceil):
                fails.append(f"{fresh!r} > baseline {base} * "
                             f"max_ratio {gate['max_ratio']} = {ceil:.4g}")
    return fails


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--baseline", required=True,
                    help="committed baseline with gated metrics")
    ap.add_argument("inputs", nargs="+", help="fresh BENCH_*.json reports")
    ap.add_argument("--allow-missing", action="store_true",
                    help="skip gates whose benchmark report was not given "
                         "(default: missing report fails the gate)")
    args = ap.parse_args()

    try:
        with open(args.baseline) as f:
            baseline = json.load(f)
    except (OSError, ValueError) as e:
        print(f"compare_bench: cannot read baseline: {e}", file=sys.stderr)
        return 1

    reports = {}
    for path in args.inputs:
        try:
            with open(path) as f:
                doc = json.load(f)
        except (OSError, ValueError) as e:
            print(f"compare_bench: skipping {path}: {e}", file=sys.stderr)
            continue
        name = doc.get("benchmark")
        if name:
            reports[name] = doc

    gates = baseline.get("gates", [])
    failures = []
    checked = 0
    skipped = 0
    for gate in gates:
        bench = gate.get("bench", "?")
        path = gate.get("path", "?")
        label = f"{bench}:{path}"
        if bench not in reports:
            if args.allow_missing:
                print(f"compare_bench: SKIP {label} (no {bench} report)")
                skipped += 1
                continue
            failures.append(f"{label}: benchmark report '{bench}' missing")
            continue
        skip_if = gate.get("skip_if")
        if skip_if:
            try:
                if resolve(reports[bench], skip_if):
                    print(f"compare_bench: SKIP {label} ({skip_if} is set)")
                    skipped += 1
                    continue
            except KeyError:
                pass  # marker absent: gate applies
        try:
            fresh = resolve(reports[bench], path)
        except KeyError as e:
            failures.append(f"{label}: {e}")
            continue
        fails = check_gate(gate, fresh)
        if fails:
            failures.extend(f"{label}: {f}" for f in fails)
        else:
            checked += 1
            print(f"compare_bench: OK {label} = {fresh!r}")

    for f in failures:
        print(f"compare_bench: FAIL {f}", file=sys.stderr)
    print(f"compare_bench: {checked} gates passed, {len(failures)} failed"
          + (f", {skipped} skipped" if skipped else ""))
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
