// C1 — explores all six orderings of full Cholesky's (K, J, L) update
// space through the completion procedure (§6), generating and
// verifying code for each expressible one, and reporting why the rest
// are not expressible under the paper's diagonal embedding.
#include <algorithm>
#include <iostream>

#include "codegen/generate.hpp"
#include "exec/verify.hpp"
#include "ir/gallery.hpp"
#include "ir/printer.hpp"
#include "transform/completion.hpp"

int main() {
  using namespace inlt;

  Program source = gallery::cholesky();
  std::cout << "=== source (right-looking Cholesky, Fig 8 left) ===\n"
            << print_program(source);
  IvLayout layout(source);
  DependenceSet deps = analyze_dependences(layout);
  std::cout << "\n=== dependence matrix (columns) ===\n" << deps.to_string();

  std::vector<std::string> vars = {"J", "K", "L"};
  std::sort(vars.begin(), vars.end());
  int legal = 0, verified = 0;
  do {
    std::string name = vars[0] + vars[1] + vars[2];
    std::vector<IntVec> rows;
    for (const std::string& v : vars) {
      IntVec r(7, 0);
      r[layout.loop_position(v)] = 1;
      rows.push_back(r);
    }
    std::cout << "\n--- ordering " << name << " ---\n";
    try {
      CompletionResult res = complete_transformation(layout, deps, rows);
      ++legal;
      CodegenResult cg = generate_code(layout, deps, res.matrix);
      VerifyResult v = verify_equivalence(source, cg.program, {{"N", 10}});
      if (v.equivalent) ++verified;
      std::cout << "legal; verification: " << v.to_string() << "\n";
      std::cout << "statement order:";
      for (const auto& sc : cg.program.statements())
        std::cout << " " << sc.label();
      std::cout << "\n";
      if (name == "LKJ") {
        std::cout << "\n=== generated left-looking code (cf. §6) ===\n"
                  << print_program(cg.program);
      }
    } catch (const TransformError& e) {
      std::cout << "not expressible: " << e.what() << "\n"
                << "(the J-outer bordered forms need a different statement "
                   "embedding — §2's unexplored alternative)\n";
    }
  } while (std::next_permutation(vars.begin(), vars.end()));

  std::cout << "\nsummary: " << legal << "/6 orderings expressible, "
            << verified << " verified semantically equivalent\n";
  return legal == 4 && verified == 4 ? 0 : 1;
}
