// C1 — explores all six orderings of full Cholesky's (K, J, L) update
// space through the completion procedure (§6), generating and
// verifying code for each expressible one, and reporting why the rest
// are not expressible under the paper's diagonal embedding.
//
// Analysis (layout + dependence matrix) runs once inside a
// TransformSession; each completed matrix is then evaluated against
// the cached analysis, and failures surface as structured diagnostics.
#include <algorithm>
#include <iostream>

#include "exec/verify.hpp"
#include "ir/gallery.hpp"
#include "ir/printer.hpp"
#include "pipeline/session.hpp"
#include "transform/completion.hpp"

int main() {
  using namespace inlt;

  SessionOptions opts;
  opts.simplify = false;  // keep the paper-shaped raw output
  TransformSession session(gallery::cholesky(), opts);
  const Program& source = session.program();
  std::cout << "=== source (right-looking Cholesky, Fig 8 left) ===\n"
            << print_program(source);
  const IvLayout& layout = session.layout();
  std::cout << "\n=== dependence matrix (columns) ===\n"
            << session.dependences().to_string();

  std::vector<std::string> vars = {"J", "K", "L"};
  std::sort(vars.begin(), vars.end());
  int legal = 0, verified = 0;
  do {
    std::string name = vars[0] + vars[1] + vars[2];
    std::vector<IntVec> rows;
    for (const std::string& v : vars) {
      IntVec r(7, 0);
      r[layout.loop_position(v)] = 1;
      rows.push_back(r);
    }
    std::cout << "\n--- ordering " << name << " ---\n";
    try {
      CompletionResult res =
          complete_transformation(layout, session.dependences(), rows);
      CandidateResult cand = session.evaluate(res.matrix);
      if (!cand.legal) throw TransformError(cand.error);
      ++legal;
      VerifyResult v = verify_equivalence(source, *cand.program, {{"N", 10}});
      if (v.equivalent) ++verified;
      std::cout << "legal; verification: " << v.to_string() << "\n";
      std::cout << "statement order:";
      for (const auto& sc : cand.program->statements())
        std::cout << " " << sc.label();
      std::cout << "\n";
      if (name == "LKJ") {
        std::cout << "\n=== generated left-looking code (cf. §6) ===\n"
                  << print_program(*cand.program);
      }
    } catch (const TransformError& e) {
      std::cout << "not expressible: " << e.what() << "\n"
                << "(the J-outer bordered forms need a different statement "
                   "embedding — §2's unexplored alternative)\n";
    }
  } while (std::next_permutation(vars.begin(), vars.end()));

  std::cout << "\nsummary: " << legal << "/6 orderings expressible, "
            << verified << " verified semantically equivalent\n"
            << "projection cache: " << session.projection_cache().size()
            << " entries; FM cache hits "
            << session.stats().value("fm.cache_hits") << "\n";
  return legal == 4 && verified == 4 ? 0 : 1;
}
