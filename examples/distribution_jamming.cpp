// §4.2: loop distribution and jamming as non-square matrices, on the
// simplified Cholesky fragment — the structural transformations the
// framework can express but (like the paper) does not use in the
// completion procedure.
#include <iostream>

#include "instance/enumerate.hpp"
#include "ir/gallery.hpp"
#include "ir/printer.hpp"
#include "transform/transforms.hpp"

int main() {
  using namespace inlt;

  Program source = gallery::simplified_cholesky();
  std::cout << "=== source ===\n" << print_program(source);
  IvLayout layout(source);
  std::cout << "layout: " << layout.to_string() << "\n";

  StructuralTransform dist = loop_distribution(layout, "I", 1);
  std::cout << "\n=== distribution matrix (5 x 4) ===\n"
            << mat_to_string(dist.matrix) << "\n";
  std::cout << "\n=== distributed program ===\n"
            << print_program(dist.target);
  std::cout << "(NOTE: distribution of this loop is illegal to execute —\n"
            << " S2 reads pivots S1 produces in later outer iterations;\n"
            << " the matrices demonstrate §4.2's representation.)\n";

  IvLayout mid(dist.target);
  std::cout << "\ndistributed layout: " << mid.to_string() << "\n";

  StructuralTransform jam = loop_jamming(mid, "I", "I_2");
  std::cout << "\n=== jamming matrix (4 x 5) ===\n"
            << mat_to_string(jam.matrix) << "\n";
  std::cout << "\n=== re-fused program ===\n" << print_program(jam.target);

  // Round trip: jam(distribute(P)) acts as the identity on instance
  // vectors.
  IntMat round = mat_mul(jam.matrix, dist.matrix);
  std::cout << "\njam * distribute =\n" << mat_to_string(round) << "\n";
  IvLayout fin(jam.target);
  bool ok = true;
  for (const DynamicInstance& di : all_instances(source, {{"N", 4}})) {
    IntVec mapped = mat_vec(round, layout.instance_vector(di));
    if (mapped != fin.instance_vector(di)) ok = false;
  }
  std::cout << "round trip preserves every instance vector (N=4): "
            << (ok ? "yes" : "NO") << "\n";
  return ok ? 0 : 1;
}
