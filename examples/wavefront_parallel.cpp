// The paper's motivating use case end to end (§1/§7): use the linear
// framework to ENHANCE PARALLELISM. A Gauss-Seidel-style stencil has
// no parallel loop as written; skewing the outer loop by the inner (wavefront time I+J)
// turns the inner loop into a doall — found via the nullspace of the
// dependence matrix, applied as a matrix, code-generated, and
// re-analyzed to confirm.
#include <iostream>

#include "codegen/generate.hpp"
#include "codegen/simplify.hpp"
#include "exec/verify.hpp"
#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "transform/parallel.hpp"
#include "transform/transforms.hpp"

int main() {
  using namespace inlt;

  Program source = parse_program(R"(
param N
do I = 1, N
  do J = 1, N
    S1: U(I, J) = U(I - 1, J) + U(I, J - 1)
  end
end
)");
  std::cout << "=== source (Gauss-Seidel sweep) ===\n"
            << print_program(source);

  IvLayout layout(source);
  DependenceSet deps = analyze_dependences(layout);
  std::cout << "\ndependences:\n" << deps.to_string();

  std::cout << "\nparallel loops as written: ";
  auto par = parallel_loops(layout, deps);
  std::cout << (par.empty() ? "(none)" : par[0]) << "\n";

  // §7: a parallel direction is a row in the nullspace of the
  // dependence matrix. Here there is none — every direction carries a
  // dependence — but skewing I by J makes the OUTER loop carry both
  // dependences, freeing the inner loop.
  IntMat m = loop_skew(layout, "I", "J", 1);
  std::cout << "\n=== transformation: skew I by +J (outer time = I+J) ===\n"
            << mat_to_string(m) << "\n";

  CodegenResult res = generate_code(layout, deps, m);
  Program wavefront = simplify_program(res.program);
  std::cout << "\n=== generated wavefront code ===\n"
            << print_program(wavefront);

  VerifyResult v = verify_equivalence(source, wavefront, {{"N", 20}},
                                      FillKind::kRandom);
  std::cout << "\nverification: " << v.to_string() << "\n";

  // Re-analyze the GENERATED program: the inner loop must now be
  // parallel (all dependences carried by the outer loop).
  IvLayout wl(wavefront);
  DependenceSet wdeps = analyze_dependences(wl);
  std::cout << "\ntransformed dependences:\n" << wdeps.to_string();
  auto wpar = parallel_loops(wl, wdeps);
  std::cout << "\nparallel loops after skewing:";
  for (const std::string& s : wpar) std::cout << " " << s;
  std::cout << "\n";

  bool inner_parallel = false;
  for (const std::string& s : wpar)
    if (s == "J") inner_parallel = true;
  return (v.equivalent && inner_parallel) ? 0 : 1;
}
