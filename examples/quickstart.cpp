// Quickstart: the full inlt pipeline on the paper's simplified
// Cholesky fragment (§3/§4) — parse, analyze dependences, build a
// transformation, check legality, generate code, and verify the
// result by execution.
#include <iostream>

#include "codegen/generate.hpp"
#include "exec/verify.hpp"
#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "transform/transforms.hpp"

int main() {
  using namespace inlt;

  // 1. A source program in the mini-language. Statements are labeled;
  //    bounds and subscripts are affine.
  Program source = parse_program(R"(
param N
do I = 1, N
  S1: A(I) = sqrt(A(I))
  do J = I + 1, N
    S2: A(J) = A(J) / A(I)
  end
end
)");
  std::cout << "=== source ===\n" << print_program(source);

  // 2. The instance-vector layout (§2) and dependence analysis (§3).
  IvLayout layout(source);
  std::cout << "\ninstance-vector layout: " << layout.to_string() << "\n";
  DependenceSet deps = analyze_dependences(layout);
  std::cout << "\n=== dependences ===\n" << deps.to_string();

  // 3. A transformation: interchange I and J. Alone it is illegal (S2
  //    feeds S1 within the new outer iteration), so compose the
  //    statement reordering that moves the J loop before S1.
  IntMat interchange = loop_interchange(layout, "I", "J");
  LegalityResult alone = check_legality(layout, deps, interchange);
  std::cout << "\ninterchange alone legal? " << (alone.legal() ? "yes" : "no")
            << "\n";
  if (!alone.legal())
    std::cout << "  reason: " << alone.violations.front() << "\n";

  IntMat m = mat_mul(statement_reorder(layout, "I", {1, 0}), interchange);
  LegalityResult composed = check_legality(layout, deps, m);
  std::cout << "interchange + reorder legal? "
            << (composed.legal() ? "yes" : "no") << "\n";

  // 4. Code generation (§5) and semantic verification by execution.
  CodegenResult res = generate_code(layout, deps, m);
  std::cout << "\n=== transformed ===\n" << print_program(res.program);
  VerifyResult v = verify_equivalence(source, res.program, {{"N", 12}});
  std::cout << "\nverification: " << v.to_string() << "\n";
  return v.equivalent ? 0 : 1;
}
