// Quickstart: the full inlt pipeline on the paper's simplified
// Cholesky fragment (§3/§4) — parse, analyze dependences, build a
// transformation, check legality, generate code, and verify the
// result by execution.
//
// The program is loaded into a TransformSession once; candidate
// matrices are then evaluated against the session's cached analysis,
// and an illegal candidate reports *which* dependence it violates as
// a structured diagnostic.
#include <iostream>

#include "exec/verify.hpp"
#include "ir/printer.hpp"
#include "pipeline/session.hpp"
#include "transform/transforms.hpp"

int main() {
  using namespace inlt;

  // 1. A source program in the mini-language. Statements are labeled;
  //    bounds and subscripts are affine. The session parses it and
  //    runs layout + dependence analysis once.
  SessionOptions opts;
  opts.simplify = false;
  TransformSession session = TransformSession::from_source(R"(
param N
do I = 1, N
  S1: A(I) = sqrt(A(I))
  do J = I + 1, N
    S2: A(J) = A(J) / A(I)
  end
end
)",
                                                           opts);
  std::cout << "=== source ===\n" << print_program(session.program());

  // 2. The instance-vector layout (§2) and dependence analysis (§3),
  //    computed by the session.
  const IvLayout& layout = session.layout();
  std::cout << "\ninstance-vector layout: " << layout.to_string() << "\n";
  std::cout << "\n=== dependences ===\n" << session.dependences().to_string();

  // 3. A transformation: interchange I and J. Alone it is illegal (S2
  //    feeds S1 within the new outer iteration), so compose the
  //    statement reordering that moves the J loop before S1.
  IntMat interchange = loop_interchange(layout, "I", "J");
  CandidateResult alone = session.evaluate(interchange);
  std::cout << "\ninterchange alone legal? " << (alone.legal ? "yes" : "no")
            << "\n";
  if (!alone.legal && !alone.diagnostics.empty()) {
    const Diagnostic& d = alone.diagnostics.front();
    std::cout << "  violated dependence: " << d.dep_kind << " " << d.src_stmt
              << " -> " << d.dst_stmt << " on " << d.array << "\n"
              << "  reason: " << d.message << "\n";
  }

  IntMat m = mat_mul(statement_reorder(layout, "I", {1, 0}), interchange);
  CandidateResult composed = session.evaluate(m);
  std::cout << "interchange + reorder legal? "
            << (composed.legal ? "yes" : "no") << "\n";
  if (!composed.legal) return 1;

  // 4. The session already generated code (§5); verify it by
  //    execution.
  std::cout << "\n=== transformed ===\n" << print_program(*composed.program);
  VerifyResult v =
      verify_equivalence(session.program(), *composed.program, {{"N", 12}});
  std::cout << "\nverification: " << v.to_string() << "\n";
  return v.equivalent ? 0 : 1;
}
