// §5.4/§5.5 walk-through: skewing the B/A example, augmentation of S1
// with an extra loop, singular-loop guards, and the generated code —
// every intermediate artifact the paper prints, reproduced.
#include <iostream>

#include "codegen/generate.hpp"
#include "exec/verify.hpp"
#include "ir/gallery.hpp"
#include "ir/printer.hpp"
#include "linalg/gauss.hpp"
#include "transform/per_statement.hpp"
#include "transform/transforms.hpp"

int main() {
  using namespace inlt;

  Program source = gallery::augmentation_example();
  std::cout << "=== source (§5.4) ===\n" << print_program(source);

  IvLayout layout(source);
  DependenceSet deps = analyze_dependences(layout);
  std::cout << "\n=== dependence matrix D ===\n" << deps.to_string();

  IntMat m = loop_skew(layout, "I", "J", -1);
  std::cout << "\n=== transformation M (skew I by -J) ===\n"
            << mat_to_string(m) << "\n";

  LegalityResult leg = check_legality(layout, deps, m);
  std::cout << "\nlegal: " << (leg.legal() ? "yes" : "no") << "; "
            << leg.unsatisfied.size()
            << " self-dependences left unsatisfied (S1's recurrence)\n";

  AstRecovery rec = recover_ast(layout, m);
  for (const char* s : {"S1", "S2"}) {
    PerStatement ps = per_statement_transform(layout, rec, m, s);
    std::cout << "\nper-statement transformation M_" << s << ":\n"
              << mat_to_string(ps.matrix) << "\n";
  }

  auto plans = plan_statements(layout, deps, m, rec, leg);
  std::cout << "\naugmented T'_S1 (Fig 7's Complete):\n"
            << mat_to_string(plans[0].t_full) << "\n"
            << "rank: " << rank(plans[0].t_full) << "\n";

  CodegenResult res = generate_code(layout, deps, m);
  std::cout << "\n=== generated code (cf. §5.5's first listing) ===\n"
            << print_program(res.program);

  VerifyResult v =
      verify_equivalence(source, res.program, {{"N", 16}}, FillKind::kRandom);
  std::cout << "\nverification: " << v.to_string() << "\n";
  return v.equivalent ? 0 : 1;
}
