// Hermite normal form and unimodular matrix utilities.
//
// Non-unimodular per-statement transformations (loop scaling, skewing
// by rational amounts cleared to integers) produce target iteration
// lattices that are proper sublattices of ℤ^k; the column HNF of N_S
// supplies the loop steps and the change of basis used by the bound
// generator (§5.5, following Li & Pingali [10]).
#pragma once

#include "linalg/matrix.hpp"

namespace inlt {

struct HermiteResult {
  IntMat h;  ///< Column-style HNF: lower triangular, positive pivots.
  IntMat u;  ///< Unimodular, with a * u == h.
};

/// Column-style Hermite normal form of an m x n integer matrix:
/// returns H = A U with U unimodular (n x n), H lower-triangular in the
/// echelon sense (pivot columns step down-right), pivots positive, and
/// entries left of a pivot reduced into [0, pivot).
HermiteResult hermite_normal_form(const IntMat& a);

/// True iff m is square with determinant +1 or -1.
bool is_unimodular(const IntMat& m);

/// Given k linearly independent rows (k x n), return an n x n
/// nonsingular integer matrix whose first k rows are the given rows.
/// The added rows are integer-nullspace completions — this is step 15
/// of the paper's Complete procedure (Fig 7).
IntMat complete_to_nonsingular(const IntMat& rows);

}  // namespace inlt
