// Systems of affine equalities and inequalities over named integer
// variables.
//
// Dependence analysis (§3) builds one of these per (write, read) pair:
// loop bounds, same-array-location equalities, ordering constraints,
// and the Δ definitions of Eq. (3). The Omega-style solver in
// `project.hpp` then answers integer feasibility / projection queries.
#pragma once

#include <string>
#include <vector>

#include "linalg/vec.hpp"
#include "support/small_vec.hpp"

namespace inlt {

/// Coefficient vector of one constraint. Dependence and codegen
/// systems have at most a dozen-odd variables, so the inline capacity
/// keeps the Fourier–Motzkin hot path off the heap; wider systems
/// (equality elimination adds $sigma variables) spill transparently.
using CoefVec = SmallVec<i64, 16>;

/// Elementwise helpers mirroring the IntVec ones in vec.hpp.
i64 vec_dot(const CoefVec& a, const IntVec& b);
i64 vec_gcd(const CoefVec& v);
bool vec_is_zero(const CoefVec& v);

/// coef · x + constant, over the owning system's variables.
struct LinExpr {
  CoefVec coef;
  i64 constant = 0;

  LinExpr() = default;
  LinExpr(CoefVec c, i64 k) : coef(std::move(c)), constant(k) {}
  LinExpr(const IntVec& c, i64 k) : constant(k) {
    coef.resize(c.size());
    for (size_t i = 0; i < c.size(); ++i) coef[i] = c[i];
  }

  /// True if no variable has a nonzero coefficient.
  bool is_constant() const { return vec_is_zero(coef); }

  friend bool operator==(const LinExpr&, const LinExpr&) = default;
};

class ConstraintSystem {
 public:
  ConstraintSystem() = default;
  explicit ConstraintSystem(std::vector<std::string> var_names);

  /// Re-initialize as an empty system over `var_names`, reusing the
  /// constraint buffers already owned by this object (the scratch-pool
  /// recycling hook of the Fourier–Motzkin hot path).
  void reset(const std::vector<std::string>& var_names);

  int num_vars() const { return static_cast<int>(vars_.size()); }
  const std::vector<std::string>& var_names() const { return vars_; }

  /// Index of a named variable; throws if absent.
  int var(const std::string& name) const;

  /// Index of a named variable, or -1.
  int find_var(const std::string& name) const;

  /// Append a fresh variable (coefficient 0 in existing constraints);
  /// returns its index. Used by the Omega equality-elimination step.
  int add_var(const std::string& name);

  /// expr == 0.
  void add_eq(LinExpr e);
  /// expr >= 0.
  void add_ge(LinExpr e);

  /// lhs == rhs for single variables/constants: coef_l*var_l + k == ...
  /// Convenience builders used heavily by the dependence analyzer.
  /// var >= bound
  void add_var_ge(int var_idx, i64 bound);
  /// var <= bound
  void add_var_le(int var_idx, i64 bound);
  /// a - b >= k  (i.e. a >= b + k)
  void add_diff_ge(int a_idx, int b_idx, i64 k);
  /// a == b + k
  void add_diff_eq(int a_idx, int b_idx, i64 k);

  /// Zero-valued expression sized to this system (fill in coefficients
  /// then pass to add_eq/add_ge).
  LinExpr zero_expr() const { return LinExpr(CoefVec(vars_.size(), 0), 0); }

  const std::vector<LinExpr>& equalities() const { return eqs_; }
  const std::vector<LinExpr>& inequalities() const { return ineqs_; }

  std::vector<LinExpr>& mutable_equalities() { return eqs_; }
  std::vector<LinExpr>& mutable_inequalities() { return ineqs_; }

  /// Human-readable rendering for diagnostics.
  std::string to_string() const;

  /// Structural equality (variables and constraints, in order) — the
  /// full-key verification behind the hashed ProjectionCache.
  friend bool operator==(const ConstraintSystem&,
                         const ConstraintSystem&) = default;

 private:
  std::vector<std::string> vars_;
  std::vector<LinExpr> eqs_;    // each == 0
  std::vector<LinExpr> ineqs_;  // each >= 0
};

}  // namespace inlt
