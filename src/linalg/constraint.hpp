// Systems of affine equalities and inequalities over named integer
// variables.
//
// Dependence analysis (§3) builds one of these per (write, read) pair:
// loop bounds, same-array-location equalities, ordering constraints,
// and the Δ definitions of Eq. (3). The Omega-style solver in
// `project.hpp` then answers integer feasibility / projection queries.
#pragma once

#include <string>
#include <vector>

#include "linalg/vec.hpp"

namespace inlt {

/// coef · x + constant, over the owning system's variables.
struct LinExpr {
  IntVec coef;
  i64 constant = 0;

  LinExpr() = default;
  LinExpr(IntVec c, i64 k) : coef(std::move(c)), constant(k) {}

  /// True if no variable has a nonzero coefficient.
  bool is_constant() const { return vec_is_zero(coef); }
};

class ConstraintSystem {
 public:
  ConstraintSystem() = default;
  explicit ConstraintSystem(std::vector<std::string> var_names);

  int num_vars() const { return static_cast<int>(vars_.size()); }
  const std::vector<std::string>& var_names() const { return vars_; }

  /// Index of a named variable; throws if absent.
  int var(const std::string& name) const;

  /// Index of a named variable, or -1.
  int find_var(const std::string& name) const;

  /// Append a fresh variable (coefficient 0 in existing constraints);
  /// returns its index. Used by the Omega equality-elimination step.
  int add_var(const std::string& name);

  /// expr == 0.
  void add_eq(LinExpr e);
  /// expr >= 0.
  void add_ge(LinExpr e);

  /// lhs == rhs for single variables/constants: coef_l*var_l + k == ...
  /// Convenience builders used heavily by the dependence analyzer.
  /// var >= bound
  void add_var_ge(int var_idx, i64 bound);
  /// var <= bound
  void add_var_le(int var_idx, i64 bound);
  /// a - b >= k  (i.e. a >= b + k)
  void add_diff_ge(int a_idx, int b_idx, i64 k);
  /// a == b + k
  void add_diff_eq(int a_idx, int b_idx, i64 k);

  /// Zero-valued expression sized to this system (fill in coefficients
  /// then pass to add_eq/add_ge).
  LinExpr zero_expr() const { return LinExpr(IntVec(vars_.size(), 0), 0); }

  const std::vector<LinExpr>& equalities() const { return eqs_; }
  const std::vector<LinExpr>& inequalities() const { return ineqs_; }

  std::vector<LinExpr>& mutable_equalities() { return eqs_; }
  std::vector<LinExpr>& mutable_inequalities() { return ineqs_; }

  /// Human-readable rendering for diagnostics.
  std::string to_string() const;

 private:
  std::vector<std::string> vars_;
  std::vector<LinExpr> eqs_;    // each == 0
  std::vector<LinExpr> ineqs_;  // each >= 0
};

}  // namespace inlt
