// Smith normal form over ℤ.
//
// S = U A V with U, V unimodular and S diagonal, each diagonal entry
// dividing the next. Used to reason about the image lattice of
// non-unimodular per-statement transformations (how many target points
// a scaled loop skips) and cross-checked against HNF in tests.
#pragma once

#include "linalg/matrix.hpp"

namespace inlt {

struct SmithResult {
  IntMat s;  ///< Diagonal, d_i >= 0, d_i | d_{i+1}.
  IntMat u;  ///< Unimodular row transform.
  IntMat v;  ///< Unimodular column transform; u * a * v == s.
};

/// Smith normal form of an arbitrary integer matrix.
SmithResult smith_normal_form(const IntMat& a);

}  // namespace inlt
