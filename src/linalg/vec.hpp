// Integer vectors and the lexicographic order the framework is built on.
//
// Instance vectors (§2), dependence distance vectors (§3) and matrix
// rows/columns are all IntVec. Lexicographic positivity of transformed
// dependence vectors is the heart of the legality test (§5.3).
#pragma once

#include <string>
#include <vector>

#include "support/checked_int.hpp"

namespace inlt {

using IntVec = std::vector<i64>;

/// a + b elementwise; sizes must match.
IntVec vec_add(const IntVec& a, const IntVec& b);

/// a - b elementwise; sizes must match.
IntVec vec_sub(const IntVec& a, const IntVec& b);

/// s * a elementwise.
IntVec vec_scale(i64 s, const IntVec& a);

/// Dot product.
i64 vec_dot(const IntVec& a, const IntVec& b);

/// True iff every entry is zero (also true for the empty vector).
bool vec_is_zero(const IntVec& v);

/// -1, 0, +1 for lexicographically negative / zero / positive.
int lex_sign(const IntVec& v);

/// True iff a precedes b lexicographically (strict).
bool lex_less(const IntVec& a, const IntVec& b);

/// Index of the first nonzero entry, or -1 if the vector is zero.
/// This is the `Height` function of the completion procedure (Fig 7) —
/// the paper numbers rows from 1, we index from 0.
int first_nonzero(const IntVec& v);

/// gcd of all entries (nonnegative; 0 for the zero vector).
i64 vec_gcd(const IntVec& v);

/// Divide every entry by g (must divide exactly).
IntVec vec_div_exact(const IntVec& v, i64 g);

/// "[a, b, c]" rendering.
std::string vec_to_string(const IntVec& v);

/// Vector over ℚ, used by rational elimination.
using RatVec = std::vector<class Rational>;

}  // namespace inlt
