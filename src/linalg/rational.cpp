#include "linalg/rational.hpp"

#include <ostream>
#include <sstream>

namespace inlt {

Rational::Rational(i64 n, i64 d) : num_(n), den_(d) {
  INLT_CHECK_MSG(d != 0, "rational with zero denominator");
  normalize();
}

void Rational::normalize() {
  if (den_ < 0) {
    num_ = checked_neg(num_);
    den_ = checked_neg(den_);
  }
  if (num_ == 0) {
    den_ = 1;
    return;
  }
  i64 g = gcd(num_, den_);
  num_ /= g;
  den_ /= g;
}

i64 Rational::as_integer() const {
  INLT_CHECK_MSG(den_ == 1, "rational " + to_string() + " is not an integer");
  return num_;
}

Rational Rational::operator-() const {
  Rational r;
  r.num_ = checked_neg(num_);
  r.den_ = den_;
  return r;
}

Rational& Rational::operator+=(const Rational& o) {
  // a/b + c/d = (a*(l/b) + c*(l/d)) / l with l = lcm(b,d); keeps
  // intermediates small compared to the naive cross-multiplication.
  i64 l = lcm(den_, o.den_);
  i64 n = checked_add(checked_mul(num_, l / den_),
                      checked_mul(o.num_, l / o.den_));
  num_ = n;
  den_ = l;
  normalize();
  return *this;
}

Rational& Rational::operator-=(const Rational& o) { return *this += -o; }

Rational& Rational::operator*=(const Rational& o) {
  // Cross-reduce before multiplying to avoid transient overflow.
  i64 g1 = gcd(num_, o.den_);
  i64 g2 = gcd(o.num_, den_);
  num_ = checked_mul(num_ / g1, o.num_ / g2);
  den_ = checked_mul(den_ / g2, o.den_ / g1);
  normalize();
  return *this;
}

Rational& Rational::operator/=(const Rational& o) {
  INLT_CHECK_MSG(!o.is_zero(), "rational division by zero");
  return *this *= Rational(o.den_, o.num_);
}

std::strong_ordering operator<=>(const Rational& a, const Rational& b) {
  // a.num/a.den <=> b.num/b.den  with positive denominators.
  i64 lhs = checked_mul(a.num_, b.den_);
  i64 rhs = checked_mul(b.num_, a.den_);
  return lhs <=> rhs;
}

std::string Rational::to_string() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Rational& r) {
  os << r.num();
  if (r.den() != 1) os << '/' << r.den();
  return os;
}

}  // namespace inlt
