#include "linalg/vec.hpp"

#include <sstream>

#include "support/check.hpp"
#include "support/strings.hpp"

namespace inlt {

IntVec vec_add(const IntVec& a, const IntVec& b) {
  INLT_CHECK(a.size() == b.size());
  IntVec r(a.size());
  for (size_t i = 0; i < a.size(); ++i) r[i] = checked_add(a[i], b[i]);
  return r;
}

IntVec vec_sub(const IntVec& a, const IntVec& b) {
  INLT_CHECK(a.size() == b.size());
  IntVec r(a.size());
  for (size_t i = 0; i < a.size(); ++i) r[i] = checked_sub(a[i], b[i]);
  return r;
}

IntVec vec_scale(i64 s, const IntVec& a) {
  IntVec r(a.size());
  for (size_t i = 0; i < a.size(); ++i) r[i] = checked_mul(s, a[i]);
  return r;
}

i64 vec_dot(const IntVec& a, const IntVec& b) {
  INLT_CHECK(a.size() == b.size());
  i64 acc = 0;
  for (size_t i = 0; i < a.size(); ++i)
    acc = checked_add(acc, checked_mul(a[i], b[i]));
  return acc;
}

bool vec_is_zero(const IntVec& v) {
  for (i64 x : v)
    if (x != 0) return false;
  return true;
}

int lex_sign(const IntVec& v) {
  for (i64 x : v) {
    if (x > 0) return 1;
    if (x < 0) return -1;
  }
  return 0;
}

bool lex_less(const IntVec& a, const IntVec& b) {
  INLT_CHECK(a.size() == b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] < b[i]) return true;
    if (a[i] > b[i]) return false;
  }
  return false;
}

int first_nonzero(const IntVec& v) {
  for (size_t i = 0; i < v.size(); ++i)
    if (v[i] != 0) return static_cast<int>(i);
  return -1;
}

i64 vec_gcd(const IntVec& v) {
  i64 g = 0;
  for (i64 x : v) g = gcd(g, x);
  return g;
}

IntVec vec_div_exact(const IntVec& v, i64 g) {
  INLT_CHECK(g != 0);
  IntVec r(v.size());
  for (size_t i = 0; i < v.size(); ++i) {
    INLT_CHECK_MSG(v[i] % g == 0, "vec_div_exact: entry not divisible");
    r[i] = v[i] / g;
  }
  return r;
}

std::string vec_to_string(const IntVec& v) {
  std::ostringstream os;
  os << '[' << join(v, ", ") << ']';
  return os.str();
}

}  // namespace inlt
