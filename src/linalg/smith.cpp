#include "linalg/smith.hpp"

#include <algorithm>
#include <cstdlib>

namespace inlt {

namespace {

void swap_rows(IntMat& m, int a, int b) {
  for (int j = 0; j < m.cols(); ++j) std::swap(m(a, j), m(b, j));
}
void swap_cols(IntMat& m, int a, int b) {
  for (int i = 0; i < m.rows(); ++i) std::swap(m(i, a), m(i, b));
}
void negate_row(IntMat& m, int r) {
  for (int j = 0; j < m.cols(); ++j) m(r, j) = checked_neg(m(r, j));
}
// row[dst] -= q * row[src]
void axpy_row(IntMat& m, int dst, int src, i64 q) {
  if (q == 0) return;
  for (int j = 0; j < m.cols(); ++j)
    m(dst, j) = checked_sub(m(dst, j), checked_mul(q, m(src, j)));
}
// col[dst] -= q * col[src]
void axpy_col(IntMat& m, int dst, int src, i64 q) {
  if (q == 0) return;
  for (int i = 0; i < m.rows(); ++i)
    m(i, dst) = checked_sub(m(i, dst), checked_mul(q, m(i, src)));
}

}  // namespace

SmithResult smith_normal_form(const IntMat& a) {
  IntMat s = a;
  IntMat u = IntMat::identity(a.rows());
  IntMat v = IntMat::identity(a.cols());
  int n = std::min(a.rows(), a.cols());

  for (int t = 0; t < n; ++t) {
    // Find a pivot: smallest-magnitude nonzero in the trailing block.
    int pr = -1, pc = -1;
    for (int i = t; i < s.rows(); ++i)
      for (int j = t; j < s.cols(); ++j) {
        if (s(i, j) == 0) continue;
        if (pr < 0 || std::llabs(s(i, j)) < std::llabs(s(pr, pc))) {
          pr = i;
          pc = j;
        }
      }
    if (pr < 0) break;  // trailing block is zero
    if (pr != t) {
      swap_rows(s, t, pr);
      swap_rows(u, t, pr);
    }
    if (pc != t) {
      swap_cols(s, t, pc);
      swap_cols(v, t, pc);
    }

    // Clear row t and column t; pivot may shrink, so iterate.
    for (;;) {
      bool clean = true;
      for (int i = t + 1; i < s.rows(); ++i) {
        if (s(i, t) == 0) continue;
        i64 q = floor_div(s(i, t), s(t, t));
        axpy_row(s, i, t, q);
        axpy_row(u, i, t, q);
        if (s(i, t) != 0) {
          // Remainder smaller than pivot: promote it.
          swap_rows(s, t, i);
          swap_rows(u, t, i);
          clean = false;
        }
      }
      for (int j = t + 1; j < s.cols(); ++j) {
        if (s(t, j) == 0) continue;
        i64 q = floor_div(s(t, j), s(t, t));
        axpy_col(s, j, t, q);
        axpy_col(v, j, t, q);
        if (s(t, j) != 0) {
          swap_cols(s, t, j);
          swap_cols(v, t, j);
          clean = false;
        }
      }
      if (clean) break;
    }
    if (s(t, t) < 0) {
      negate_row(s, t);
      negate_row(u, t);
    }

    // Enforce the divisibility chain: if some trailing entry is not
    // divisible by the pivot, fold its column into column t and redo.
    bool redo = false;
    for (int i = t + 1; i < s.rows() && !redo; ++i)
      for (int j = t + 1; j < s.cols() && !redo; ++j)
        if (s(i, j) % s(t, t) != 0) {
          axpy_col(s, t, j, -1);
          axpy_col(v, t, j, -1);
          redo = true;
        }
    if (redo) --t;  // re-run this pivot position
  }
  return {s, u, v};
}

}  // namespace inlt
