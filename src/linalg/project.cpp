#include "linalg/project.hpp"

#include <algorithm>
#include <cstdlib>

#include "support/check.hpp"
#include "support/stats.hpp"
#include "support/trace.hpp"

namespace inlt {

namespace {

// Thread-local so concurrent sessions (and evaluate_all workers) can
// install independent or shared caches without synchronizing here.
thread_local ProjectionCache* tl_projection_cache = nullptr;

// Hot-path counters: resolve the registry slot once, then relaxed
// atomic increments only.
std::atomic<i64>& stat_eliminations() {
  static std::atomic<i64>& c = Stats::global().counter("fm.eliminations");
  return c;
}
std::atomic<i64>& stat_tightened() {
  static std::atomic<i64>& c =
      Stats::global().counter("fm.constraints_tightened");
  return c;
}
std::atomic<i64>& stat_splinters() {
  static std::atomic<i64>& c =
      Stats::global().counter("fm.dark_shadow_splinters");
  return c;
}
std::atomic<i64>& stat_cache_hits() {
  static std::atomic<i64>& c = Stats::global().counter("fm.cache_hits");
  return c;
}
std::atomic<i64>& stat_cache_misses() {
  static std::atomic<i64>& c = Stats::global().counter("fm.cache_misses");
  return c;
}
std::atomic<i64>& stat_cache_collisions() {
  static std::atomic<i64>& c =
      Stats::global().counter("fm.cache_key_collisions");
  return c;
}
std::atomic<i64>& stat_pool_reuse() {
  static std::atomic<i64>& c = Stats::global().counter("fm.scratch_reuse");
  return c;
}
// Sizes (constraint counts) of the systems fed to the eliminator,
// log2-bucketed — the shape of the FM workload at a glance.
HistogramCell& hist_system_size() {
  static HistogramCell& h = Stats::global().histogram("fm.system_size");
  return h;
}

// Per-thread pool of ConstraintSystem shells: shadow() and the
// elimination chain create and discard one system per step, and the
// recycled objects keep their constraint-vector capacity, so steady-
// state elimination performs no outer-vector allocations.
class SystemPool {
 public:
  ConstraintSystem acquire(const std::vector<std::string>& var_names) {
    if (pool_.empty()) return ConstraintSystem(var_names);
    ConstraintSystem cs = std::move(pool_.back());
    pool_.pop_back();
    cs.reset(var_names);
    stat_pool_reuse().fetch_add(1, std::memory_order_relaxed);
    return cs;
  }
  void release(ConstraintSystem&& cs) {
    if (pool_.size() < kMaxPooled) pool_.push_back(std::move(cs));
  }

 private:
  static constexpr size_t kMaxPooled = 32;
  std::vector<ConstraintSystem> pool_;
};

SystemPool& tls_pool() {
  thread_local SystemPool pool;
  return pool;
}

// Recursion guard: dependence systems are tiny; anything deeper than
// this indicates a bug, not a hard problem.
constexpr int kMaxDepth = 128;

// Symmetric residue in (-b/2, b/2].
i64 mod_hat(i64 a, i64 b) {
  i64 r = floor_mod(a, b);
  if (2 * r > b) r -= b;
  return r;
}

// Substitute variable j using the unit-coefficient equality
//   s * x_j + rest(x) + c == 0   (s = ±1)
// i.e. x_j = -s * (rest(x) + c), into expression f; clears f.coef[j].
void substitute_unit(LinExpr& f, const LinExpr& eq, int j, i64 s) {
  i64 fj = f.coef[j];
  if (fj == 0) return;
  i64 scale = checked_mul(fj, s);
  for (size_t i = 0; i < f.coef.size(); ++i) {
    if (static_cast<int>(i) == j) continue;
    f.coef[i] = checked_sub(f.coef[i], checked_mul(scale, eq.coef[i]));
  }
  f.constant = checked_sub(f.constant, checked_mul(scale, eq.constant));
  f.coef[j] = 0;
}

// Eliminate all equalities from cs (Pugh's method). Returns false if
// the system is detected infeasible in the process.
bool eliminate_equalities(ConstraintSystem& cs) {
  int guard = 0;
  while (!cs.equalities().empty()) {
    if (++guard > 1000)
      throw Error("omega: equality elimination did not terminate");
    if (!normalize_system(cs)) return false;
    if (cs.equalities().empty()) break;

    // Prefer an equality with a unit coefficient.
    auto& eqs = cs.mutable_equalities();
    int pick = -1, unit_var = -1;
    for (size_t e = 0; e < eqs.size() && pick < 0; ++e)
      for (size_t i = 0; i < eqs[e].coef.size(); ++i)
        if (eqs[e].coef[i] == 1 || eqs[e].coef[i] == -1) {
          pick = static_cast<int>(e);
          unit_var = static_cast<int>(i);
          break;
        }

    if (pick >= 0) {
      LinExpr eq = eqs[pick];
      i64 s = eq.coef[unit_var];
      eqs.erase(eqs.begin() + pick);
      for (LinExpr& f : cs.mutable_equalities())
        substitute_unit(f, eq, unit_var, s);
      for (LinExpr& f : cs.mutable_inequalities())
        substitute_unit(f, eq, unit_var, s);
      continue;
    }

    // No unit coefficient anywhere: apply the mod-hat substitution to
    // the first equality to manufacture one.
    LinExpr eq = eqs.front();
    int k = -1;
    for (size_t i = 0; i < eq.coef.size(); ++i) {
      if (eq.coef[i] == 0) continue;
      if (k < 0 || std::llabs(eq.coef[i]) < std::llabs(eq.coef[k]))
        k = static_cast<int>(i);
    }
    INLT_CHECK(k >= 0);  // normalize_system removed constant equalities
    i64 m = std::llabs(eq.coef[k]) + 1;
    int sigma = cs.add_var("$sigma" + std::to_string(cs.num_vars()));
    // New equality: sum_i mod_hat(a_i, m) x_i - m*sigma + mod_hat(c, m) == 0.
    // Its x_k coefficient is -sign(a_k), a unit; the loop above will
    // pick it up on the next iteration and substitute.
    LinExpr ne = cs.zero_expr();
    // (cs.add_var resized existing constraints; re-read eq with padding)
    for (size_t i = 0; i < eq.coef.size(); ++i)
      ne.coef[i] = mod_hat(eq.coef[i], m);
    ne.coef[sigma] = -m;
    ne.constant = mod_hat(eq.constant, m);
    // The old equality must also be rewritten: a_i = m*floor(...)+mhat,
    // so substituting sigma's definition transforms it. Pugh keeps the
    // original equality and lets the unit substitution update it; we do
    // the same — just append the new one.
    cs.mutable_equalities().push_back(std::move(ne));
  }
  return normalize_system(cs);
}

// Index-based partition of the inequalities on variable j — no
// constraint copies; the caller indexes back into cs.inequalities().
struct PartitionIdx {
  std::vector<int> lower;  // coef[j] > 0
  std::vector<int> upper;  // coef[j] < 0
};

void partition_indices(const ConstraintSystem& cs, int j, PartitionIdx& p) {
  p.lower.clear();
  p.upper.clear();
  const auto& ineqs = cs.inequalities();
  for (size_t i = 0; i < ineqs.size(); ++i) {
    i64 c = ineqs[i].coef[j];
    if (c > 0)
      p.lower.push_back(static_cast<int>(i));
    else if (c < 0)
      p.upper.push_back(static_cast<int>(i));
  }
}

// Shadow of eliminating variable j. dark=false gives the real shadow,
// dark=true subtracts (a-1)(b-1) from each combined constant.
ConstraintSystem shadow(const ConstraintSystem& cs, int j, bool dark) {
  stat_eliminations().fetch_add(1, std::memory_order_relaxed);
  thread_local PartitionIdx part;
  partition_indices(cs, j, part);
  const auto& ineqs = cs.inequalities();
  ConstraintSystem out = tls_pool().acquire(cs.var_names());
  for (const LinExpr& e : cs.equalities()) {
    INLT_CHECK_MSG(e.coef[j] == 0,
                   "shadow: equalities must not mention the variable");
    out.add_eq(e);
  }
  for (const LinExpr& e : ineqs)
    if (e.coef[j] == 0) out.add_ge(e);
  for (int li : part.lower) {
    const LinExpr& l = ineqs[li];
    i64 a = l.coef[j];
    for (int ui : part.upper) {
      const LinExpr& u = ineqs[ui];
      i64 b = checked_neg(u.coef[j]);
      // a*beta + b*alpha >= (dark ? (a-1)(b-1) : 0), with alpha/beta the
      // j-free parts of l and u.
      LinExpr c = out.zero_expr();
      for (int i = 0; i < cs.num_vars(); ++i) {
        if (i == j) continue;
        c.coef[i] = checked_add(checked_mul(a, u.coef[i]),
                                checked_mul(b, l.coef[i]));
      }
      c.constant = checked_add(checked_mul(a, u.constant),
                               checked_mul(b, l.constant));
      if (dark)
        c.constant =
            checked_sub(c.constant, checked_mul(a - 1, b - 1));
      out.add_ge(std::move(c));
    }
  }
  return out;
}

// Per-variable elimination statistics, gathered for every variable in
// one pass over the inequalities (the old code re-partitioned — with
// full constraint copies — once per variable).
struct VarStat {
  long lower = 0;
  long upper = 0;
  bool lower_unit = true;
  bool upper_unit = true;

  // Is eliminating this variable exact (real shadow == integer
  // projection)? True when every lower-bound coefficient is 1 or every
  // upper-bound coefficient is 1, or one side is empty.
  bool exact() const {
    return lower == 0 || upper == 0 || lower_unit || upper_unit;
  }
  long cost() const { return lower * upper; }
};

bool feasible_rec(ConstraintSystem cs, int depth) {
  if (depth > kMaxDepth) throw Error("omega: recursion depth exceeded");
  if (!eliminate_equalities(cs)) {
    tls_pool().release(std::move(cs));
    return false;
  }

  for (;;) {
    if (!normalize_system(cs)) {
      tls_pool().release(std::move(cs));
      return false;
    }
    // Gather every variable's bound counts in a single pass.
    int nvars = cs.num_vars();
    std::vector<VarStat> stats(nvars);
    bool any = false;
    for (const LinExpr& e : cs.inequalities())
      for (int i = 0; i < nvars; ++i) {
        i64 c = e.coef[i];
        if (c == 0) continue;
        any = true;
        if (c > 0) {
          ++stats[i].lower;
          if (c != 1) stats[i].lower_unit = false;
        } else {
          ++stats[i].upper;
          if (c != -1) stats[i].upper_unit = false;
        }
      }
    if (!any) {
      tls_pool().release(std::move(cs));
      return true;  // only constant constraints, all satisfied
    }

    // Prefer a variable whose elimination is exact; otherwise minimize
    // the number of shadow constraints generated.
    int best = -1;
    long best_cost = 0;
    bool best_exact = false;
    for (int i = 0; i < nvars; ++i) {
      if (stats[i].lower + stats[i].upper == 0) continue;
      bool exact = stats[i].exact();
      long cost = stats[i].cost();
      if (best < 0 || (exact && !best_exact) ||
          (exact == best_exact && cost < best_cost)) {
        best = i;
        best_cost = cost;
        best_exact = exact;
      }
    }

    if (best_exact) {
      ConstraintSystem next = shadow(cs, best, /*dark=*/false);
      tls_pool().release(std::move(cs));
      cs = std::move(next);
      continue;
    }

    // Inexact elimination: Omega's dark shadow + splintering.
    ConstraintSystem dark = shadow(cs, best, /*dark=*/true);
    if (feasible_rec(std::move(dark), depth + 1)) return true;
    ConstraintSystem real = shadow(cs, best, /*dark=*/false);
    if (!feasible_rec(std::move(real), depth + 1)) {
      tls_pool().release(std::move(cs));
      return false;
    }

    // Real shadow feasible, dark infeasible: any integer solution is
    // pinned near a lower bound. For each lower bound a*x_j + alpha >= 0
    // try the equalities a*x_j + alpha == i, 0 <= i <= (a*bmax-a-bmax)/bmax.
    thread_local PartitionIdx part;
    partition_indices(cs, best, part);
    i64 bmax = 0;
    for (int ui : part.upper)
      bmax = std::max(bmax, checked_neg(cs.inequalities()[ui].coef[best]));
    INLT_CHECK(bmax >= 1);
    // The index lists must survive the recursive calls below, which
    // reuse the thread-local scratch: copy out the lower list.
    std::vector<int> lower = part.lower;
    for (int li : lower) {
      const LinExpr& l = cs.inequalities()[li];
      i64 a = l.coef[best];
      i64 hi = floor_div(checked_sub(checked_mul(a, bmax),
                                     checked_add(a, bmax)),
                         bmax);
      for (i64 i = 0; i <= hi; ++i) {
        stat_splinters().fetch_add(1, std::memory_order_relaxed);
        ConstraintSystem sp = tls_pool().acquire(cs.var_names());
        sp = cs;
        LinExpr eq = l;
        eq.constant = checked_sub(eq.constant, i);
        sp.add_eq(std::move(eq));
        if (feasible_rec(std::move(sp), depth + 1)) return true;
      }
    }
    tls_pool().release(std::move(cs));
    return false;
  }
}

}  // namespace

bool normalize_system(ConstraintSystem& cs) {
  // Equalities: GCD test + reduction, compacted in place.
  auto& eqs = cs.mutable_equalities();
  size_t w = 0;
  for (size_t r = 0; r < eqs.size(); ++r) {
    LinExpr& e = eqs[r];
    i64 g = vec_gcd(e.coef);
    if (g == 0) {
      if (e.constant != 0) return false;
      continue;  // 0 == 0
    }
    if (floor_mod(e.constant, g) != 0) return false;  // GCD test
    if (g != 1) {
      for (i64& c : e.coef) c /= g;
      e.constant /= g;
    }
    if (w != r) eqs[w] = std::move(e);
    ++w;
  }
  eqs.resize(w);

  // Inequalities: tighten constants in place, then sort by coefficient
  // vector and keep the strongest (minimum constant) per direction —
  // the same canonical order the old std::map produced, without the
  // per-constraint node allocations.
  auto& ineqs = cs.mutable_inequalities();
  w = 0;
  for (size_t r = 0; r < ineqs.size(); ++r) {
    LinExpr& e = ineqs[r];
    i64 g = vec_gcd(e.coef);
    if (g == 0) {
      if (e.constant < 0) return false;  // 0 >= positive
      continue;                          // tautology
    }
    i64 c0 = e.constant;
    if (g != 1) {
      for (i64& c : e.coef) c /= g;
      e.constant = floor_div(c0, g);
      // A non-divisible constant means the floor division strictly
      // tightened the constraint (the integer GCD cut).
      if (c0 != checked_mul(e.constant, g))
        stat_tightened().fetch_add(1, std::memory_order_relaxed);
    }
    if (w != r) ineqs[w] = std::move(e);
    ++w;
  }
  ineqs.resize(w);
  std::sort(ineqs.begin(), ineqs.end(), [](const LinExpr& a, const LinExpr& b) {
    if (a.coef < b.coef) return true;
    if (b.coef < a.coef) return false;
    return a.constant < b.constant;
  });
  w = 0;
  for (size_t r = 0; r < ineqs.size(); ++r) {
    if (w > 0 && ineqs[w - 1].coef == ineqs[r].coef) continue;  // weaker dup
    if (w != r) ineqs[w] = std::move(ineqs[r]);
    ++w;
  }
  ineqs.resize(w);

  // Contradicting pair coef·x + c1 >= 0 and -coef·x + c2 >= 0 with
  // c1 + c2 < 0 means the interval is empty.
  CoefVec neg;
  for (const LinExpr& e : ineqs) {
    neg.resize(e.coef.size());
    for (size_t i = 0; i < e.coef.size(); ++i) neg[i] = -e.coef[i];
    auto it = std::lower_bound(
        ineqs.begin(), ineqs.end(), neg,
        [](const LinExpr& a, const CoefVec& key) { return a.coef < key; });
    if (it != ineqs.end() && it->coef == neg &&
        checked_add(e.constant, it->constant) < 0)
      return false;
  }
  return true;
}

bool integer_feasible(const ConstraintSystem& cs) {
  ConstraintSystem work = tls_pool().acquire(cs.var_names());
  work = cs;
  return feasible_rec(std::move(work), 0);
}

namespace {

ConstraintSystem eliminate_var_real_uncached(const ConstraintSystem& cs,
                                             int var_idx) {
  INLT_CHECK(var_idx >= 0 && var_idx < cs.num_vars());
  // Equalities mentioning the variable: substitute if a unit
  // coefficient exists, otherwise demote to a pair of inequalities.
  ConstraintSystem work = tls_pool().acquire(cs.var_names());
  std::vector<LinExpr> pending_eqs;
  LinExpr subst;
  i64 subst_sign = 0;
  for (const LinExpr& e : cs.equalities()) {
    if (e.coef[var_idx] == 1 || e.coef[var_idx] == -1) {
      if (subst_sign == 0) {
        subst = e;
        subst_sign = e.coef[var_idx];
        continue;  // consumed as the definition of var_idx
      }
    }
    pending_eqs.push_back(e);
  }
  std::vector<LinExpr> pending_ineqs(cs.inequalities().begin(),
                                     cs.inequalities().end());
  if (subst_sign != 0) {
    for (LinExpr& f : pending_eqs) substitute_unit(f, subst, var_idx, subst_sign);
    for (LinExpr& f : pending_ineqs)
      substitute_unit(f, subst, var_idx, subst_sign);
    for (LinExpr& f : pending_eqs) work.add_eq(std::move(f));
    for (LinExpr& f : pending_ineqs) work.add_ge(std::move(f));
    return work;
  }
  // No unit equality: split equalities that mention the variable.
  for (LinExpr& e : pending_eqs) {
    if (e.coef[var_idx] == 0) {
      work.add_eq(std::move(e));
      continue;
    }
    LinExpr ge = e;
    LinExpr le = e;
    for (i64& c : le.coef) c = checked_neg(c);
    le.constant = checked_neg(le.constant);
    work.add_ge(std::move(ge));
    work.add_ge(std::move(le));
  }
  for (LinExpr& f : pending_ineqs) work.add_ge(std::move(f));
  ConstraintSystem out = shadow(work, var_idx, /*dark=*/false);
  tls_pool().release(std::move(work));
  normalize_system(out);  // infeasibility shows up as 0 >= k<0 constraints
  return out;
}

}  // namespace

ConstraintSystem eliminate_var_real(const ConstraintSystem& cs, int var_idx) {
  hist_system_size().record(
      static_cast<i64>(cs.equalities().size() + cs.inequalities().size()));
  ScopedSpan span("fm.eliminate", "fm");
  if (span.active()) {
    span.arg("vars", static_cast<i64>(cs.num_vars()));
    span.arg("eqs", static_cast<i64>(cs.equalities().size()));
    span.arg("ineqs", static_cast<i64>(cs.inequalities().size()));
  }
  ProjectionCache* cache = tl_projection_cache;
  if (!cache) {
    if (span.active()) span.arg("cache", "off");
    return eliminate_var_real_uncached(cs, var_idx);
  }
  if (std::optional<ConstraintSystem> hit = cache->find(cs, var_idx)) {
    stat_cache_hits().fetch_add(1, std::memory_order_relaxed);
    if (span.active()) span.arg("cache", "hit");
    return *std::move(hit);
  }
  stat_cache_misses().fetch_add(1, std::memory_order_relaxed);
  if (span.active()) span.arg("cache", "miss");
  ConstraintSystem out = eliminate_var_real_uncached(cs, var_idx);
  cache->insert(cs, var_idx, out);
  return out;
}

std::uint64_t ProjectionCache::hash_key(const ConstraintSystem& cs,
                                        int var_idx) {
  // FNV-1a, streamed over the normalized encoding of the key: the
  // eliminated index, the variable names, and every constraint's
  // coefficients and constant, with tags separating the sections.
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t x) {
    h ^= x;
    h *= 1099511628211ull;
  };
  mix(static_cast<std::uint64_t>(var_idx));
  mix(cs.var_names().size());
  for (const std::string& v : cs.var_names()) {
    mix(v.size());
    for (char c : v) mix(static_cast<unsigned char>(c));
  }
  auto mix_exprs = [&](const std::vector<LinExpr>& es, std::uint64_t tag) {
    mix(tag);
    mix(es.size());
    for (const LinExpr& e : es) {
      for (i64 c : e.coef) mix(static_cast<std::uint64_t>(c));
      mix(static_cast<std::uint64_t>(e.constant));
    }
  };
  mix_exprs(cs.equalities(), 'e');
  mix_exprs(cs.inequalities(), 'i');
  return h;
}

std::optional<ConstraintSystem> ProjectionCache::find(
    const ConstraintSystem& cs, int var_idx) const {
  std::uint64_t h = hash_(cs, var_idx);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = buckets_.find(h);
  if (it == buckets_.end()) return std::nullopt;
  for (const Entry& e : it->second)
    if (e.var_idx == var_idx && e.key == cs) return e.value;
  stat_cache_collisions().fetch_add(1, std::memory_order_relaxed);
  return std::nullopt;
}

void ProjectionCache::insert(const ConstraintSystem& cs, int var_idx,
                             const ConstraintSystem& value) {
  std::uint64_t h = hash_(cs, var_idx);
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Entry>& bucket = buckets_[h];
  for (const Entry& e : bucket)
    if (e.var_idx == var_idx && e.key == cs) return;  // lost a race
  bucket.push_back(Entry{cs, var_idx, value});
  ++size_;
}

size_t ProjectionCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return size_;
}

void ProjectionCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  buckets_.clear();
  size_ = 0;
}

ProjectionCache* set_projection_cache(ProjectionCache* cache) {
  ProjectionCache* prev = tl_projection_cache;
  tl_projection_cache = cache;
  return prev;
}

ConstraintSystem project_onto(const ConstraintSystem& cs,
                              const std::vector<int>& keep) {
  std::vector<bool> keep_mask(cs.num_vars(), false);
  for (int k : keep) {
    INLT_CHECK(k >= 0 && k < cs.num_vars());
    keep_mask[k] = true;
  }
  ConstraintSystem work = cs;
  for (int i = 0; i < cs.num_vars(); ++i) {
    if (keep_mask[i]) continue;
    ConstraintSystem next = eliminate_var_real(work, i);
    tls_pool().release(std::move(work));
    work = std::move(next);
  }

  // Re-index onto the kept variables in the requested order.
  std::vector<std::string> names;
  names.reserve(keep.size());
  for (int k : keep) names.push_back(cs.var_names()[k]);
  ConstraintSystem out(names);
  auto reindex = [&](const LinExpr& e) {
    LinExpr r = out.zero_expr();
    r.constant = e.constant;
    for (size_t i = 0; i < keep.size(); ++i) r.coef[i] = e.coef[keep[i]];
    // Eliminated variables must not appear anymore.
    for (int v = 0; v < work.num_vars(); ++v)
      if (v < cs.num_vars() && !keep_mask[v])
        INLT_CHECK_MSG(e.coef[v] == 0, "projection left a residue");
    return r;
  };
  for (const LinExpr& e : work.equalities()) out.add_eq(reindex(e));
  for (const LinExpr& e : work.inequalities()) out.add_ge(reindex(e));
  return out;
}

}  // namespace inlt
