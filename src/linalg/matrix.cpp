#include "linalg/matrix.hpp"

#include <sstream>

namespace inlt {

IntMat mat_mul(const IntMat& a, const IntMat& b) {
  INLT_CHECK_MSG(a.cols() == b.rows(), "matrix product dimension mismatch");
  IntMat c(a.rows(), b.cols());
  for (int i = 0; i < a.rows(); ++i)
    for (int k = 0; k < a.cols(); ++k) {
      i64 aik = a(i, k);
      if (aik == 0) continue;
      for (int j = 0; j < b.cols(); ++j)
        c(i, j) = checked_add(c(i, j), checked_mul(aik, b(k, j)));
    }
  return c;
}

RatMat mat_mul(const RatMat& a, const RatMat& b) {
  INLT_CHECK_MSG(a.cols() == b.rows(), "matrix product dimension mismatch");
  RatMat c(a.rows(), b.cols());
  for (int i = 0; i < a.rows(); ++i)
    for (int k = 0; k < a.cols(); ++k) {
      const Rational& aik = a(i, k);
      if (aik.is_zero()) continue;
      for (int j = 0; j < b.cols(); ++j) c(i, j) += aik * b(k, j);
    }
  return c;
}

IntVec mat_vec(const IntMat& a, const IntVec& x) {
  INLT_CHECK_MSG(a.cols() == static_cast<int>(x.size()),
                 "matrix-vector dimension mismatch");
  IntVec y(a.rows(), 0);
  for (int i = 0; i < a.rows(); ++i)
    for (int j = 0; j < a.cols(); ++j)
      y[i] = checked_add(y[i], checked_mul(a(i, j), x[j]));
  return y;
}

bool is_permutation_matrix(const IntMat& m) {
  if (m.rows() != m.cols()) return false;
  std::vector<int> row_ones(m.rows(), 0), col_ones(m.cols(), 0);
  for (int i = 0; i < m.rows(); ++i)
    for (int j = 0; j < m.cols(); ++j) {
      if (m(i, j) == 0) continue;
      if (m(i, j) != 1) return false;
      ++row_ones[i];
      ++col_ones[j];
    }
  for (int i = 0; i < m.rows(); ++i)
    if (row_ones[i] != 1 || col_ones[i] != 1) return false;
  return true;
}

bool is_identity(const IntMat& m) {
  if (m.rows() != m.cols()) return false;
  for (int i = 0; i < m.rows(); ++i)
    for (int j = 0; j < m.cols(); ++j)
      if (m(i, j) != (i == j ? 1 : 0)) return false;
  return true;
}

RatMat to_rational(const IntMat& m) {
  RatMat r(m.rows(), m.cols());
  for (int i = 0; i < m.rows(); ++i)
    for (int j = 0; j < m.cols(); ++j) r(i, j) = Rational(m(i, j));
  return r;
}

IntMat to_integer(const RatMat& m) {
  IntMat r(m.rows(), m.cols());
  for (int i = 0; i < m.rows(); ++i)
    for (int j = 0; j < m.cols(); ++j) r(i, j) = m(i, j).as_integer();
  return r;
}

namespace {
template <typename M>
std::string render(const M& m) {
  std::ostringstream os;
  for (int i = 0; i < m.rows(); ++i) {
    os << (i == 0 ? "[" : " ");
    for (int j = 0; j < m.cols(); ++j) {
      if (j) os << ' ';
      os << m(i, j);
    }
    os << (i + 1 == m.rows() ? "]" : "\n");
  }
  if (m.rows() == 0) os << "[]";
  return os.str();
}
}  // namespace

std::string mat_to_string(const IntMat& m) { return render(m); }
std::string mat_to_string(const RatMat& m) { return render(m); }

}  // namespace inlt
