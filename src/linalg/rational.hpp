// Exact rational arithmetic on overflow-checked int64.
//
// Used wherever the compiler path needs division: Gaussian elimination,
// per-statement transformation inverses, singular-loop coefficient
// recovery. Always kept normalized (gcd(num,den) == 1, den > 0) so
// equality is structural.
#pragma once

#include <compare>
#include <iosfwd>
#include <string>

#include "support/checked_int.hpp"

namespace inlt {

class Rational {
 public:
  /// Zero.
  Rational() : num_(0), den_(1) {}

  /// Integer n/1. Intentionally implicit: integers embed in ℚ.
  Rational(i64 n) : num_(n), den_(1) {}  // NOLINT(google-explicit-constructor)

  /// n/d, d != 0. Normalizes sign and gcd.
  Rational(i64 n, i64 d);

  i64 num() const { return num_; }
  i64 den() const { return den_; }

  bool is_zero() const { return num_ == 0; }
  bool is_integer() const { return den_ == 1; }

  /// Sign: -1, 0, or +1.
  int sign() const { return num_ < 0 ? -1 : (num_ > 0 ? 1 : 0); }

  /// The integer value; throws unless is_integer().
  i64 as_integer() const;

  /// Largest integer <= this.
  i64 floor() const { return floor_div(num_, den_); }
  /// Smallest integer >= this.
  i64 ceil() const { return ceil_div(num_, den_); }

  Rational operator-() const;
  Rational& operator+=(const Rational& o);
  Rational& operator-=(const Rational& o);
  Rational& operator*=(const Rational& o);
  Rational& operator/=(const Rational& o);

  friend Rational operator+(Rational a, const Rational& b) { return a += b; }
  friend Rational operator-(Rational a, const Rational& b) { return a -= b; }
  friend Rational operator*(Rational a, const Rational& b) { return a *= b; }
  friend Rational operator/(Rational a, const Rational& b) { return a /= b; }

  friend bool operator==(const Rational& a, const Rational& b) {
    return a.num_ == b.num_ && a.den_ == b.den_;
  }
  friend std::strong_ordering operator<=>(const Rational& a,
                                          const Rational& b);

  std::string to_string() const;

 private:
  void normalize();

  i64 num_;
  i64 den_;
};

std::ostream& operator<<(std::ostream& os, const Rational& r);

}  // namespace inlt
