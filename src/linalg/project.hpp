// Integer feasibility and projection for affine constraint systems.
//
// This is the stand-in for the Omega tool-kit [11] the paper uses: an
// implementation of Pugh's Omega test. `integer_feasible` is exact —
// normalization with GCD tightening, integer equality elimination via
// the symmetric-mod substitution, Fourier–Motzkin with exact/dark
// shadows and splintering when shadows disagree. `eliminate_var_real`
// and `project_onto` perform rational FM with integer tightening, used
// for loop-bound generation (§5.5) where conservative projection is
// the right tool.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "linalg/constraint.hpp"

namespace inlt {

/// Memo table for `eliminate_var_real`, keyed by a 64-bit hash of the
/// normalized encoding of (constraint system, eliminated variable).
/// Every hit verifies the full key (structural equality of the stored
/// system) before being served, so hash collisions can never leak a
/// wrong projection — the stored value is exactly what the uncached
/// computation produced, and a hit is bit-identical to a
/// recomputation. Thread-safe; shared by the worker threads of
/// TransformSession::evaluate_all.
class ProjectionCache {
 public:
  using Hasher = std::uint64_t (*)(const ConstraintSystem&, int);

  ProjectionCache() = default;
  /// Test seam: substitute a (possibly degenerate) hash function. All
  /// lookups still verify the full key, so results stay exact even
  /// under a constant hash.
  explicit ProjectionCache(Hasher hasher) : hash_(hasher) {}

  /// 64-bit FNV-1a over var names, equalities, inequalities and the
  /// eliminated variable's index — no string serialization.
  static std::uint64_t hash_key(const ConstraintSystem& cs, int var_idx);

  std::optional<ConstraintSystem> find(const ConstraintSystem& cs,
                                       int var_idx) const;
  void insert(const ConstraintSystem& cs, int var_idx,
              const ConstraintSystem& value);

  size_t size() const;
  void clear();

 private:
  struct Entry {
    ConstraintSystem key;
    int var_idx;
    ConstraintSystem value;
  };
  mutable std::mutex mu_;
  // Hash -> entries sharing it (verified by full-key comparison).
  std::unordered_map<std::uint64_t, std::vector<Entry>> buckets_;
  size_t size_ = 0;
  Hasher hash_ = &hash_key;
};

/// Install `cache` as the elimination memo for the current thread;
/// returns the previously installed cache (nullptr if none). While a
/// cache is installed, `eliminate_var_real` consults it and records
/// hits/misses on the global Stats ("fm.cache_hits"/"fm.cache_misses").
ProjectionCache* set_projection_cache(ProjectionCache* cache);

/// RAII install/restore of the thread's projection cache.
class ScopedProjectionCache {
 public:
  explicit ScopedProjectionCache(ProjectionCache* cache)
      : prev_(set_projection_cache(cache)) {}
  ~ScopedProjectionCache() { set_projection_cache(prev_); }
  ScopedProjectionCache(const ScopedProjectionCache&) = delete;
  ScopedProjectionCache& operator=(const ScopedProjectionCache&) = delete;

 private:
  ProjectionCache* prev_;
};

/// Exact: does the system have an integer solution?
bool integer_feasible(const ConstraintSystem& cs);

/// Rational Fourier–Motzkin elimination of one variable, with GCD
/// normalization of the results. The output is implied by the input
/// (every integer solution of the input maps to one of the output);
/// it may admit extra integer points when coefficients exceed 1.
ConstraintSystem eliminate_var_real(const ConstraintSystem& cs, int var_idx);

/// Project onto the named subset of variables (in the given order),
/// eliminating all others with eliminate_var_real. Equalities whose
/// support is entirely within `keep` are preserved as equalities.
ConstraintSystem project_onto(const ConstraintSystem& cs,
                              const std::vector<int>& keep);

/// Normalize in place: GCD-tighten, drop tautologies, deduplicate.
/// Returns false if a constraint is unsatisfiable on its face
/// (0 >= positive, or an equality failing the GCD test).
bool normalize_system(ConstraintSystem& cs);

}  // namespace inlt
