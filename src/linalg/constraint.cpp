#include "linalg/constraint.hpp"

#include <sstream>

#include "support/check.hpp"

namespace inlt {

ConstraintSystem::ConstraintSystem(std::vector<std::string> var_names)
    : vars_(std::move(var_names)) {}

void ConstraintSystem::reset(const std::vector<std::string>& var_names) {
  vars_ = var_names;
  eqs_.clear();
  ineqs_.clear();
}

i64 vec_dot(const CoefVec& a, const IntVec& b) {
  INLT_CHECK(a.size() == b.size());
  i64 acc = 0;
  for (size_t i = 0; i < a.size(); ++i)
    acc = checked_add(acc, checked_mul(a[i], b[i]));
  return acc;
}

i64 vec_gcd(const CoefVec& v) {
  i64 g = 0;
  for (i64 x : v) g = gcd(g, x);
  return g;
}

bool vec_is_zero(const CoefVec& v) {
  for (i64 x : v)
    if (x != 0) return false;
  return true;
}

int ConstraintSystem::var(const std::string& name) const {
  int i = find_var(name);
  INLT_CHECK_MSG(i >= 0, "unknown constraint variable: " + name);
  return i;
}

int ConstraintSystem::find_var(const std::string& name) const {
  for (size_t i = 0; i < vars_.size(); ++i)
    if (vars_[i] == name) return static_cast<int>(i);
  return -1;
}

int ConstraintSystem::add_var(const std::string& name) {
  vars_.push_back(name);
  for (LinExpr& e : eqs_) e.coef.push_back(0);
  for (LinExpr& e : ineqs_) e.coef.push_back(0);
  return static_cast<int>(vars_.size()) - 1;
}

void ConstraintSystem::add_eq(LinExpr e) {
  INLT_CHECK(e.coef.size() == vars_.size());
  eqs_.push_back(std::move(e));
}

void ConstraintSystem::add_ge(LinExpr e) {
  INLT_CHECK(e.coef.size() == vars_.size());
  ineqs_.push_back(std::move(e));
}

void ConstraintSystem::add_var_ge(int var_idx, i64 bound) {
  LinExpr e = zero_expr();
  e.coef[var_idx] = 1;
  e.constant = checked_neg(bound);
  add_ge(std::move(e));
}

void ConstraintSystem::add_var_le(int var_idx, i64 bound) {
  LinExpr e = zero_expr();
  e.coef[var_idx] = -1;
  e.constant = bound;
  add_ge(std::move(e));
}

void ConstraintSystem::add_diff_ge(int a_idx, int b_idx, i64 k) {
  LinExpr e = zero_expr();
  e.coef[a_idx] = checked_add(e.coef[a_idx], 1);
  e.coef[b_idx] = checked_sub(e.coef[b_idx], 1);
  e.constant = checked_neg(k);
  add_ge(std::move(e));
}

void ConstraintSystem::add_diff_eq(int a_idx, int b_idx, i64 k) {
  LinExpr e = zero_expr();
  e.coef[a_idx] = checked_add(e.coef[a_idx], 1);
  e.coef[b_idx] = checked_sub(e.coef[b_idx], 1);
  e.constant = checked_neg(k);
  add_eq(std::move(e));
}

namespace {
void render_expr(std::ostream& os, const LinExpr& e,
                 const std::vector<std::string>& vars) {
  bool any = false;
  for (size_t i = 0; i < e.coef.size(); ++i) {
    i64 c = e.coef[i];
    if (c == 0) continue;
    if (any)
      os << (c > 0 ? " + " : " - ");
    else if (c < 0)
      os << "-";
    any = true;
    i64 mag = c < 0 ? -c : c;
    if (mag != 1) os << mag << "*";
    os << vars[i];
  }
  if (e.constant != 0 || !any) {
    if (any) os << (e.constant >= 0 ? " + " : " - ");
    os << (e.constant < 0 && any ? -e.constant : e.constant);
  }
}
}  // namespace

std::string ConstraintSystem::to_string() const {
  std::ostringstream os;
  for (const LinExpr& e : eqs_) {
    render_expr(os, e, vars_);
    os << " == 0\n";
  }
  for (const LinExpr& e : ineqs_) {
    render_expr(os, e, vars_);
    os << " >= 0\n";
  }
  return os.str();
}

}  // namespace inlt
