#include "linalg/gauss.hpp"

#include <algorithm>

namespace inlt {

RatMat rref(RatMat m) {
  int lead = 0;
  for (int r = 0; r < m.rows() && lead < m.cols(); ++r) {
    // Find a pivot in column `lead` at or below row r.
    int pivot = -1;
    while (lead < m.cols()) {
      for (int i = r; i < m.rows(); ++i) {
        if (!m(i, lead).is_zero()) {
          pivot = i;
          break;
        }
      }
      if (pivot >= 0) break;
      ++lead;
    }
    if (pivot < 0) break;
    if (pivot != r)
      for (int j = 0; j < m.cols(); ++j) std::swap(m(r, j), m(pivot, j));
    Rational inv = Rational(1) / m(r, lead);
    for (int j = 0; j < m.cols(); ++j) m(r, j) *= inv;
    for (int i = 0; i < m.rows(); ++i) {
      if (i == r || m(i, lead).is_zero()) continue;
      Rational f = m(i, lead);
      for (int j = 0; j < m.cols(); ++j) m(i, j) -= f * m(r, j);
    }
    ++lead;
  }
  return m;
}

int rank(const RatMat& m) {
  RatMat e = rref(m);
  int r = 0;
  for (int i = 0; i < e.rows(); ++i) {
    bool nonzero = false;
    for (int j = 0; j < e.cols(); ++j)
      if (!e(i, j).is_zero()) {
        nonzero = true;
        break;
      }
    if (nonzero) ++r;
  }
  return r;
}

int rank(const IntMat& m) { return rank(to_rational(m)); }

RatMat inverse(const RatMat& m) {
  INLT_CHECK_MSG(m.rows() == m.cols(), "inverse of non-square matrix");
  int n = m.rows();
  // Eliminate on [M | I]; left half becomes I iff M is nonsingular.
  RatMat aug(n, 2 * n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) aug(i, j) = m(i, j);
    aug(i, n + i) = Rational(1);
  }
  aug = rref(aug);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      if (aug(i, j) != Rational(i == j ? 1 : 0))
        throw TransformError("matrix is singular, cannot invert");
  return aug.block(0, n, n, 2 * n);
}

std::optional<RatVec> solve(const RatMat& a, const RatVec& b) {
  INLT_CHECK(a.rows() == static_cast<int>(b.size()));
  RatMat aug(a.rows(), a.cols() + 1);
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = 0; j < a.cols(); ++j) aug(i, j) = a(i, j);
    aug(i, a.cols()) = b[i];
  }
  aug = rref(aug);
  RatVec x(a.cols(), Rational(0));
  for (int i = 0; i < aug.rows(); ++i) {
    int pivot = -1;
    for (int j = 0; j < a.cols(); ++j)
      if (!aug(i, j).is_zero()) {
        pivot = j;
        break;
      }
    if (pivot < 0) {
      if (!aug(i, a.cols()).is_zero()) return std::nullopt;  // 0 = nonzero
      continue;
    }
    x[pivot] = aug(i, a.cols());
  }
  return x;
}

std::vector<IntVec> integer_nullspace(const IntMat& a) {
  RatMat e = rref(to_rational(a));
  int n = a.cols();
  // Identify pivot columns.
  std::vector<int> pivot_col_of_row;
  std::vector<bool> is_pivot(n, false);
  for (int i = 0; i < e.rows(); ++i) {
    int p = -1;
    for (int j = 0; j < n; ++j)
      if (!e(i, j).is_zero()) {
        p = j;
        break;
      }
    if (p < 0) break;
    pivot_col_of_row.push_back(p);
    is_pivot[p] = true;
  }
  std::vector<IntVec> basis;
  for (int freeCol = 0; freeCol < n; ++freeCol) {
    if (is_pivot[freeCol]) continue;
    // Rational solution with this free variable = 1, others 0.
    RatVec v(n, Rational(0));
    v[freeCol] = Rational(1);
    for (size_t r = 0; r < pivot_col_of_row.size(); ++r)
      v[pivot_col_of_row[r]] = -e(static_cast<int>(r), freeCol);
    // Clear denominators and reduce to a primitive integer vector.
    i64 l = 1;
    for (const Rational& q : v) l = lcm(l, q.den());
    IntVec iv(n);
    for (int j = 0; j < n; ++j)
      iv[j] = checked_mul(v[j].num(), l / v[j].den());
    i64 g = vec_gcd(iv);
    if (g > 1) iv = vec_div_exact(iv, g);
    basis.push_back(std::move(iv));
  }
  return basis;
}

std::vector<int> independent_row_indices(const IntMat& m) {
  std::vector<int> kept;
  RatMat acc(0, m.cols());
  for (int i = 0; i < m.rows(); ++i) {
    RatMat trial = acc;
    std::vector<Rational> row(m.cols());
    for (int j = 0; j < m.cols(); ++j) row[j] = Rational(m(i, j));
    trial.append_row(row);
    if (rank(trial) > rank(acc)) {
      kept.push_back(i);
      acc = std::move(trial);
    }
  }
  return kept;
}

std::optional<RatVec> express_in_span(const IntVec& row,
                                      const std::vector<IntVec>& basis) {
  if (basis.empty())
    return vec_is_zero(row) ? std::optional<RatVec>(RatVec{}) : std::nullopt;
  int n = static_cast<int>(row.size());
  // Solve B^T c = row where B's rows are the basis vectors.
  RatMat bt(n, static_cast<int>(basis.size()));
  for (size_t k = 0; k < basis.size(); ++k) {
    INLT_CHECK(static_cast<int>(basis[k].size()) == n);
    for (int i = 0; i < n; ++i) bt(i, static_cast<int>(k)) = Rational(basis[k][i]);
  }
  RatVec rhs(n);
  for (int i = 0; i < n; ++i) rhs[i] = Rational(row[i]);
  auto c = solve(bt, rhs);
  if (!c) return std::nullopt;
  // solve() finds *a* least-structured solution; verify it reproduces row
  // exactly (it does unless the system was inconsistent, which solve
  // already rejects — this is a cheap belt-and-braces check).
  for (int i = 0; i < n; ++i) {
    Rational acc(0);
    for (size_t k = 0; k < basis.size(); ++k)
      acc += (*c)[k] * Rational(basis[k][i]);
    if (acc != Rational(row[i])) return std::nullopt;
  }
  return c;
}

Rational determinant(const RatMat& m) {
  INLT_CHECK_MSG(m.rows() == m.cols(), "determinant of non-square matrix");
  RatMat a = m;
  int n = a.rows();
  Rational det(1);
  for (int c = 0; c < n; ++c) {
    int pivot = -1;
    for (int i = c; i < n; ++i)
      if (!a(i, c).is_zero()) {
        pivot = i;
        break;
      }
    if (pivot < 0) return Rational(0);
    if (pivot != c) {
      for (int j = 0; j < n; ++j) std::swap(a(c, j), a(pivot, j));
      det = -det;
    }
    det *= a(c, c);
    Rational inv = Rational(1) / a(c, c);
    for (int i = c + 1; i < n; ++i) {
      if (a(i, c).is_zero()) continue;
      Rational f = a(i, c) * inv;
      for (int j = c; j < n; ++j) a(i, j) -= f * a(c, j);
    }
  }
  return det;
}

i64 determinant(const IntMat& m) {
  return determinant(to_rational(m)).as_integer();
}

}  // namespace inlt
