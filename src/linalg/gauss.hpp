// Exact Gaussian elimination over ℚ.
//
// Supplies the rank/nullspace/inverse machinery the framework needs:
//  - rank of per-statement transformations (§5.4, Theorem 3),
//  - the rows of N_S retained from T_S (Def 8: drop zero rows and rows
//    that are linear combinations of previous rows),
//  - the coefficients m_1..m_l expressing a singular loop's row as a
//    combination of earlier independent rows (§5.5),
//  - nullspace bases for completion (Fig 7, step 15) and for finding
//    parallel loops ("a row in the nullspace of the dependence matrix").
#pragma once

#include <optional>
#include <vector>

#include "linalg/matrix.hpp"

namespace inlt {

/// Reduced row echelon form.
RatMat rref(RatMat m);

/// Rank via elimination (exact).
int rank(const RatMat& m);
int rank(const IntMat& m);

/// Inverse of a square nonsingular matrix; throws TransformError if
/// singular.
RatMat inverse(const RatMat& m);

/// Solve A x = b; nullopt if inconsistent. If underdetermined, returns
/// the solution with free variables set to zero.
std::optional<RatVec> solve(const RatMat& a, const RatVec& b);

/// Basis of the rational nullspace of A, scaled to primitive integer
/// vectors (each basis vector's entries have gcd 1). Vectors satisfy
/// A v = 0.
std::vector<IntVec> integer_nullspace(const IntMat& a);

/// Indices of rows that are NOT zero and NOT linear combinations of
/// previous rows — exactly the rows Def 8 keeps when building the
/// non-singular per-statement transformation N_S from T_S.
std::vector<int> independent_row_indices(const IntMat& m);

/// Coefficients c with row = sum_j c[j] * basis[j]; nullopt if row is
/// outside the span. Powers the singular-loop guard of §5.5.
std::optional<RatVec> express_in_span(const IntVec& row,
                                      const std::vector<IntVec>& basis);

/// Determinant of a square matrix (exact).
Rational determinant(const RatMat& m);
i64 determinant(const IntMat& m);

}  // namespace inlt
