#include "linalg/hermite.hpp"

#include <algorithm>
#include <cstdlib>

#include "linalg/gauss.hpp"

namespace inlt {

namespace {

// Column operations applied in lockstep to H and U keep the invariant
// H = A * U throughout.
void swap_cols(IntMat& m, int a, int b) {
  for (int i = 0; i < m.rows(); ++i) std::swap(m(i, a), m(i, b));
}

void negate_col(IntMat& m, int c) {
  for (int i = 0; i < m.rows(); ++i) m(i, c) = checked_neg(m(i, c));
}

// col[dst] -= q * col[src]
void axpy_col(IntMat& m, int dst, int src, i64 q) {
  if (q == 0) return;
  for (int i = 0; i < m.rows(); ++i)
    m(i, dst) = checked_sub(m(i, dst), checked_mul(q, m(i, src)));
}

}  // namespace

HermiteResult hermite_normal_form(const IntMat& a) {
  IntMat h = a;
  IntMat u = IntMat::identity(a.cols());
  int pc = 0;  // next pivot column
  for (int r = 0; r < h.rows() && pc < h.cols(); ++r) {
    // Does row r have a nonzero entry at or right of pc?
    bool any = false;
    for (int c = pc; c < h.cols(); ++c)
      if (h(r, c) != 0) {
        any = true;
        break;
      }
    if (!any) continue;
    // Euclid on row r across columns [pc, n): reduce until a single
    // nonzero remains in column pc.
    for (;;) {
      int best = -1;
      for (int c = pc; c < h.cols(); ++c) {
        if (h(r, c) == 0) continue;
        if (best < 0 || std::llabs(h(r, c)) < std::llabs(h(r, best))) best = c;
      }
      if (best != pc) {
        swap_cols(h, pc, best);
        swap_cols(u, pc, best);
      }
      if (h(r, pc) < 0) {
        negate_col(h, pc);
        negate_col(u, pc);
      }
      bool done = true;
      for (int c = pc + 1; c < h.cols(); ++c) {
        if (h(r, c) == 0) continue;
        i64 q = floor_div(h(r, c), h(r, pc));
        axpy_col(h, c, pc, q);
        axpy_col(u, c, pc, q);
        if (h(r, c) != 0) done = false;
      }
      if (done) break;
    }
    // Reduce entries to the left of the pivot into [0, pivot).
    for (int c = 0; c < pc; ++c) {
      i64 q = floor_div(h(r, c), h(r, pc));
      axpy_col(h, c, pc, q);
      axpy_col(u, c, pc, q);
    }
    ++pc;
  }
  return {h, u};
}

bool is_unimodular(const IntMat& m) {
  if (m.rows() != m.cols()) return false;
  i64 d = determinant(m);
  return d == 1 || d == -1;
}

IntMat complete_to_nonsingular(const IntMat& rows) {
  int n = rows.cols();
  INLT_CHECK_MSG(rank(rows) == rows.rows(),
                 "complete_to_nonsingular requires independent rows");
  IntMat out = rows;
  for (const IntVec& v : integer_nullspace(rows)) out.append_row(v);
  INLT_CHECK_MSG(out.rows() == n, "completion did not reach full rank");
  INLT_CHECK(rank(out) == n);
  return out;
}

}  // namespace inlt
