// Dense row-major matrices over ℤ (IntMat) and ℚ (RatMat).
//
// Transformation matrices (§4), dependence matrices (§3, columns are
// dependence vectors) and per-statement transformations (§5.4) are all
// IntMat; rational matrices appear only inside elimination routines.
#pragma once

#include <initializer_list>
#include <string>
#include <vector>

#include "linalg/rational.hpp"
#include "linalg/vec.hpp"
#include "support/check.hpp"

namespace inlt {

template <typename T>
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}

  /// rows x cols, zero-filled.
  Matrix(int rows, int cols)
      : rows_(rows), cols_(cols), data_(static_cast<size_t>(rows) * cols) {
    INLT_CHECK(rows >= 0 && cols >= 0);
  }

  /// Row-major literal: Matrix<i64>{{1,0},{0,1}}.
  Matrix(std::initializer_list<std::initializer_list<T>> rows) {
    rows_ = static_cast<int>(rows.size());
    cols_ = rows_ == 0 ? 0 : static_cast<int>(rows.begin()->size());
    data_.reserve(static_cast<size_t>(rows_) * cols_);
    for (const auto& r : rows) {
      INLT_CHECK_MSG(static_cast<int>(r.size()) == cols_,
                     "ragged matrix literal");
      data_.insert(data_.end(), r.begin(), r.end());
    }
  }

  static Matrix identity(int n) {
    Matrix m(n, n);
    for (int i = 0; i < n; ++i) m(i, i) = T(1);
    return m;
  }

  /// Build from a list of row vectors.
  static Matrix from_rows(const std::vector<std::vector<T>>& rows) {
    if (rows.empty()) return Matrix();
    Matrix m(static_cast<int>(rows.size()), static_cast<int>(rows[0].size()));
    for (int i = 0; i < m.rows(); ++i) {
      INLT_CHECK_MSG(rows[i].size() == rows[0].size(), "ragged rows");
      for (int j = 0; j < m.cols(); ++j) m(i, j) = rows[i][j];
    }
    return m;
  }

  /// Build from a list of column vectors (how the paper writes
  /// dependence matrices: one column per dependence).
  static Matrix from_cols(const std::vector<std::vector<T>>& cols) {
    if (cols.empty()) return Matrix();
    Matrix m(static_cast<int>(cols[0].size()), static_cast<int>(cols.size()));
    for (int j = 0; j < m.cols(); ++j) {
      INLT_CHECK_MSG(cols[j].size() == cols[0].size(), "ragged columns");
      for (int i = 0; i < m.rows(); ++i) m(i, j) = cols[j][i];
    }
    return m;
  }

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  T& operator()(int r, int c) {
    INLT_CHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  const T& operator()(int r, int c) const {
    INLT_CHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }

  std::vector<T> row(int r) const {
    INLT_CHECK(r >= 0 && r < rows_);
    return {data_.begin() + static_cast<size_t>(r) * cols_,
            data_.begin() + static_cast<size_t>(r + 1) * cols_};
  }

  std::vector<T> col(int c) const {
    INLT_CHECK(c >= 0 && c < cols_);
    std::vector<T> v(rows_);
    for (int i = 0; i < rows_; ++i) v[i] = (*this)(i, c);
    return v;
  }

  void set_row(int r, const std::vector<T>& v) {
    INLT_CHECK(static_cast<int>(v.size()) == cols_);
    for (int j = 0; j < cols_; ++j) (*this)(r, j) = v[j];
  }

  void append_row(const std::vector<T>& v) {
    if (rows_ == 0 && cols_ == 0) cols_ = static_cast<int>(v.size());
    INLT_CHECK(static_cast<int>(v.size()) == cols_);
    data_.insert(data_.end(), v.begin(), v.end());
    ++rows_;
  }

  /// Submatrix of rows [r0, r1) and columns [c0, c1).
  Matrix block(int r0, int r1, int c0, int c1) const {
    INLT_CHECK(0 <= r0 && r0 <= r1 && r1 <= rows_);
    INLT_CHECK(0 <= c0 && c0 <= c1 && c1 <= cols_);
    Matrix m(r1 - r0, c1 - c0);
    for (int i = r0; i < r1; ++i)
      for (int j = c0; j < c1; ++j) m(i - r0, j - c0) = (*this)(i, j);
    return m;
  }

  Matrix transposed() const {
    Matrix m(cols_, rows_);
    for (int i = 0; i < rows_; ++i)
      for (int j = 0; j < cols_; ++j) m(j, i) = (*this)(i, j);
    return m;
  }

  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

 private:
  int rows_;
  int cols_;
  std::vector<T> data_;
};

using IntMat = Matrix<i64>;
using RatMat = Matrix<Rational>;

/// Matrix product (checked dimensions, overflow-checked for IntMat).
IntMat mat_mul(const IntMat& a, const IntMat& b);
RatMat mat_mul(const RatMat& a, const RatMat& b);

/// Matrix-vector product A*x.
IntVec mat_vec(const IntMat& a, const IntVec& x);

/// True iff the matrix is a permutation matrix (square, 0/1 entries,
/// exactly one 1 per row and per column). Used by the block-structure
/// check of §5.2.
bool is_permutation_matrix(const IntMat& m);

/// True iff m equals the identity.
bool is_identity(const IntMat& m);

/// Exact ℚ view of an integer matrix.
RatMat to_rational(const IntMat& m);

/// Convert a rational matrix whose entries are all integers back to ℤ;
/// throws if any entry has a denominator.
IntMat to_integer(const RatMat& m);

/// Pretty multi-line rendering for diagnostics.
std::string mat_to_string(const IntMat& m);
std::string mat_to_string(const RatMat& m);

}  // namespace inlt
