// Candidate-space search over transformation matrices.
//
// The paper's workflow evaluates many candidate matrices against one
// analyzed nest. `TransformSession::search()` walks a candidate space
// depth-first, one loop row at a time, through the IncrementalLegality
// engine: prefixes shared by many candidates are tested once, and a
// prefix that already violates a dependence prunes its whole subtree
// without materializing a single matrix. Only candidates the engine
// cannot reject are evaluated through the full pipeline, so every
// reported result is bit-identical to a sequential `evaluate()` call
// on the same matrix.
//
// Candidate indices: candidates are numbered in depth-first
// enumeration order (the order `materialize_candidates` produces), and
// pruned subtrees advance the index by their exact leaf count, so a
// hit's `index` always addresses the same matrix in the materialized
// list — pruning never shifts the numbering.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "instance/layout.hpp"
#include "linalg/matrix.hpp"
#include "model/cost.hpp"
#include "pipeline/session.hpp"
#include "tile/plan.hpp"

namespace inlt {

/// A candidate space enumerated one loop row at a time. Slot s is the
/// s-th loop position of the layout (`all_loop_positions()` order,
/// outermost first); edge rows are fixed to identity by the driver, so
/// every generated candidate preserves the AST shape.
///
/// Contract: `num_options(depth)` must not depend on the pushed
/// prefix — candidate indexing (and therefore pruning accounting)
/// relies on subtree sizes being a function of depth alone.
class CandidateGenerator {
 public:
  virtual ~CandidateGenerator() = default;

  /// Loop rows per candidate (== number of loop positions).
  virtual int num_slots() const = 0;
  /// Branching factor at a depth, prefix-independent.
  virtual i64 num_options(int depth) const = 0;
  /// Full-width row for option k at the current depth.
  virtual IntVec row(i64 k) const = 0;
  /// Commit option k and descend one level.
  virtual void push(i64 k) = 0;
  /// Undo the latest push.
  virtual void pop() = 0;
};

/// Permutations of the nest's loops, each row optionally skewed
/// against the previously placed loops: the row placing variable v at
/// slot t is e_v + Σ c_s·e_{v_s} with c_s ∈ [-skew_bound, skew_bound]
/// over the last `skew_depth` placed variables. skew_bound = 0 gives
/// the pure order sweep (n! candidates).
struct SearchSpace {
  i64 skew_bound = 0;
  int skew_depth = 1;
};

class PermutationSkewGenerator : public CandidateGenerator {
 public:
  explicit PermutationSkewGenerator(const IvLayout& layout,
                                    SearchSpace space = {});

  int num_slots() const override;
  i64 num_options(int depth) const override;
  IntVec row(i64 k) const override;
  void push(i64 k) override;
  void pop() override;

 private:
  int skew_window(int depth) const;
  /// Index into slots_ of the k-th still-unplaced variable.
  int unused_at(i64 var_choice) const;

  const IvLayout& layout_;
  SearchSpace space_;
  std::vector<int> slots_;        // loop positions, ascending
  std::vector<int> chosen_;       // per depth: index into slots_
  std::vector<std::uint8_t> used_;
};

/// Periodic search telemetry, delivered through
/// `SearchOptions::progress` roughly every `progress_interval`
/// candidates (and once more when the walk finishes, with
/// done == total). Rates are measured from the start of the search.
struct SearchProgress {
  i64 done = 0;        ///< candidates decided so far (evaluated + pruned)
  i64 total = 0;       ///< size of the whole candidate space
  i64 legal = 0;       ///< legal candidates found so far
  i64 pruned = 0;      ///< candidates pruned so far
  double elapsed_s = 0;    ///< seconds since the search started
  double rate = 0;         ///< candidates decided per second
  double prune_rate = 0;   ///< pruned / done
  double eta_s = 0;        ///< remaining / rate (0 when rate is 0)
};

using SearchProgressFn = std::function<void(const SearchProgress&)>;

/// Where rejected candidates died: provenance aggregated over the
/// whole search (SearchResult::rejections). A candidate rejected by
/// the incremental engine is attributed to the dependence that killed
/// it and to the row (slot) where the lexicographic walk decided;
/// candidates rejected only at completion (zero projection with the
/// source not preceding the destination) land in the final `by_row`
/// bucket, index num_slots().
struct RejectionBreakdown {
  /// Rejected candidates per dependence index (size = deps.size()).
  std::vector<i64> by_dependence;
  /// Rejected candidates per deciding slot, outermost first; the extra
  /// trailing bucket counts completion-time rejections (size =
  /// num_slots() + 1).
  std::vector<i64> by_row;
  /// Total candidates attributed (== stats.pruned_candidates plus the
  /// evaluated-illegal candidates a legality diagnostic localizes).
  i64 rejected = 0;

  std::string to_text(const DependenceSet& deps) const;
};

/// Search accounting. `candidates_total` = `evaluated` +
/// `pruned_candidates`; `evaluated` = `legal` + `illegal_evaluated`.
struct SearchStats {
  i64 candidates_total = 0;
  /// Candidates decided at the leaf — full pipeline in
  /// SearchMode::kFull, legality verdict alone in kLegalityOnly.
  i64 evaluated = 0;
  i64 legal = 0;
  /// Evaluated but rejected by the full pipeline (exact-mode
  /// rejections, structure errors, codegen failures).
  i64 illegal_evaluated = 0;
  /// Candidates skipped because the engine rejected them (at a shared
  /// prefix or at the leaf) — all provably illegal.
  i64 pruned_candidates = 0;
  /// Interior prefixes whose whole subtree was pruned at once.
  i64 pruned_subtrees = 0;
  /// Legal candidates semantically verified against the source
  /// (full mode with SearchOptions::verify_params only).
  i64 verified = 0;
  /// Verified candidates whose execution did NOT match the source —
  /// always 0 unless something upstream (legality, codegen) is wrong.
  i64 verify_failed = 0;

  /// Total candidates classified illegal, evaluated or not.
  i64 illegal() const { return illegal_evaluated + pruned_candidates; }
};

/// One legal candidate, streamed in enumeration order.
struct SearchHit {
  i64 index = 0;   ///< position in the depth-first enumeration
  IntMat matrix;   ///< the candidate
  /// SearchMode::kFull: identical to evaluate(matrix).
  /// SearchMode::kLegalityOnly: legal flag + legality.unsatisfied
  /// only; no generated program.
  CandidateResult result;
  /// Static cache-locality estimate (model/cost.hpp); set when
  /// SearchOptions::cost (or top_k) is active and the estimate
  /// succeeded.
  std::optional<CostEstimate> cost;
  /// Tile plan for the generated program; set when SearchOptions::tile
  /// is active and the candidate generated code. When the plan
  /// applied, `result.program` IS the tiled program.
  std::optional<TilePlan> tile;
};

struct SearchResult {
  /// Legal candidates: ascending index, except under
  /// SearchOptions::top_k where only the K best survive, sorted by
  /// ascending (cost, index).
  std::vector<SearchHit> hits;
  SearchStats stats;
  /// Where the rejected candidates died (dependence × row).
  RejectionBreakdown rejections;
};

/// Called for each legal candidate as soon as it is found.
using SearchSink = std::function<void(const SearchHit&)>;

/// Knobs for TransformSession::search. The two-argument overloads are
/// shorthands for an options struct carrying only `sink` and `mode`.
struct SearchOptions {
  SearchMode mode = SearchMode::kFull;
  /// Receives each legal candidate as soon as it is found.
  SearchSink sink;
  /// Periodic telemetry callback; never called when unset.
  SearchProgressFn progress;
  /// Candidates between progress reports (approximate: a pruned
  /// subtree advances the count in one step). Must be positive.
  i64 progress_interval = 1 << 16;
  /// Full mode only: when non-empty, semantically verify every legal
  /// candidate's generated program against the source at these
  /// parameter bindings (exec/verify.hpp); the outcome lands in
  /// `CandidateResult::verify` and the `verified` / `verify_failed`
  /// stats. Verification shares the deferred evaluation stage, so it
  /// runs on the session's worker threads.
  std::map<std::string, i64> verify_params;
  /// Input fill for verification runs.
  FillKind verify_fill = FillKind::kSpd;
  /// Seed for verification inputs.
  unsigned verify_seed = 1;
  /// Execution engine for verification runs.
  ExecEngine verify_engine = ExecEngine::kVm;
  /// Worker threads for each verification run (exec/parallel.hpp):
  /// with > 1, the source reference and every candidate execute with
  /// their doall levels chunked over the shared exec pool (the
  /// candidate's partition comes from analyze_target_parallelism on
  /// its completed matrix). Results are bit-identical to serial at any
  /// value, so hits and stats do not depend on it. Also forwarded to
  /// the cost model's parallel-work term when `cost` is active.
  int exec_threads = 1;
  /// Run the static cost model (model/cost.hpp) on every legal
  /// candidate: adds the Complete + Cost stages to the candidate
  /// pipeline (deferred, on the session's worker threads) and fills
  /// each hit's `cost`. Works in both modes; kLegalityOnly + cost is
  /// "rank mode" — scores without generating code.
  bool cost = false;
  /// Model knobs when `cost` is active. The pad mode is taken from
  /// the session's codegen options, not from here.
  ModelOptions model;
  /// Keep only the K best hits, ordered by ascending
  /// (cost.total_lines, index) — a bounded heap, so ranking a huge
  /// space is O(K) memory. Implies `cost`; 0 keeps every hit.
  /// Stats still count all legal candidates and the sink still sees
  /// every one of them.
  i64 top_k = 0;
  /// Full mode only: tile every legal candidate's generated program.
  /// After codegen the generated nest is re-analyzed fresh, a band and
  /// sizes are planned (tile/plan.hpp) and, when the plan applies, the
  /// hit's program is replaced by the tiled rewrite — so verification
  /// (verify_params) checks the *tiled* program against the source and
  /// its doall partition is remapped to the tile loops
  /// (tiled_partition). Candidates whose generated program cannot be
  /// analyzed or tiled keep their untiled program, with the reason in
  /// the hit's `tile->note`.
  bool tile = false;
  /// Band/size/auto knobs when `tile` is active.
  TileOptions tile_opts;
};

/// Enumerate the generator's full candidate space in search order —
/// the reference list `SearchHit::index` points into. Restores the
/// generator to depth 0.
std::vector<IntMat> materialize_candidates(const IvLayout& layout,
                                           CandidateGenerator& gen);

}  // namespace inlt
