// TransformSession — the persistent pipeline layer.
//
// The paper's workflow is many transformations probed against one
// program: analyze a nest once, then evaluate many candidate matrices
// (completion seeds, permutations, skews) for legality and generated
// code. The free functions (`analyze_dependences`, `check_legality`,
// `generate_code`) recompute layout recovery, dependence analysis and
// Fourier–Motzkin projections from scratch on every call; a session
// amortizes them:
//
//  * the Program, IvLayout and DependenceSet are computed once and
//    owned by the session;
//  * Fourier–Motzkin eliminations are memoized in a ProjectionCache
//    keyed by a canonical serialization of the constraint system, so
//    repeated candidate evaluations (and the per-row elimination
//    chains inside a single code generation) reuse projections;
//  * every candidate's outcome is reported as structured Diagnostics
//    collected in a per-session DiagnosticEngine;
//  * `evaluate_all` fans a batch of candidates across a small thread
//    pool (the per-candidate paths are side-effect-free; results are
//    deterministic and index-aligned with the input).
//
// Instrumentation (FM eliminations, cache hits/misses, legality
// checks, per-stage codegen time) accumulates on Stats::global().
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "codegen/generate.hpp"
#include "exec/verify.hpp"
#include "linalg/project.hpp"
#include "support/diag.hpp"
#include "support/stats.hpp"

namespace inlt {

class CandidateGenerator;
class IncrementalLegality;
struct SearchHit;
struct SearchOptions;
struct SearchResult;
struct SearchSpace;

struct SessionOptions {
  AnalyzerOptions analyzer;
  CodegenOptions codegen;
  /// Use the exact ILP legality pipeline instead of direction-vector
  /// hulls (accepts some matrices the hull test rejects; slower).
  bool exact = false;
  /// Run the simplification pass on generated programs.
  bool simplify = true;
  /// Worker threads for evaluate_all; 0 = use hardware concurrency,
  /// 1 = sequential, n > 1 = exactly n workers.
  int threads = 0;
  /// Ceiling applied when `threads` is resolved from hardware
  /// concurrency (0 = no ceiling). Explicit `threads` requests are
  /// never capped.
  int max_threads = 0;
};

/// How much work search() invests per surviving candidate.
///
///  * kFull — run the complete pipeline (codegen + simplify) on every
///    candidate the engine cannot reject; each hit's result is
///    bit-identical to `evaluate()` on the same matrix.
///  * kLegalityOnly — stop at the legality verdict: hits carry the
///    legal flag and the unsatisfied-dependence indices but no
///    generated program. This is the high-throughput filter mode —
///    decide a whole space, then `evaluate()` only the chosen
///    winners. Verdicts (hit indices, legal flags, unsatisfied sets)
///    are identical to kFull wherever the full pipeline would not
///    fail *after* the legality stage (codegen errors surface only
///    when code is actually generated).
enum class SearchMode {
  kFull,
  kLegalityOnly,
};

/// Outcome of evaluating one candidate matrix.
struct CandidateResult {
  bool legal = false;
  /// Hull legality result (empty when opts.exact — see diagnostics).
  LegalityResult legality;
  /// Generated (optionally simplified) program; set iff legal.
  std::optional<Program> program;
  /// Structured diagnostics for this candidate: legality violations,
  /// structure errors, codegen failures. Empty for a clean candidate.
  std::vector<Diagnostic> diagnostics;
  /// what() of the error that stopped the pipeline, empty otherwise.
  std::string error;
  /// Semantic verification against the source program; set only by
  /// full-mode search() when SearchOptions::verify_params is non-empty
  /// and the candidate generated code.
  std::optional<VerifyResult> verify;
};

/// Resolve a worker-thread request against hardware concurrency, an
/// optional ceiling and the number of work items (the semantics of
/// SessionOptions::threads / max_threads). Shared by evaluate_all and
/// the deferred evaluation stage of full-mode search().
int resolve_threads(int requested, int ceiling, size_t work_items);

class TransformSession {
 public:
  /// Parse `source_text` and analyze it. Throws on parse/analysis
  /// errors (same exceptions as the free functions).
  static TransformSession from_source(const std::string& source_text,
                                      SessionOptions opts = {});

  explicit TransformSession(Program program, SessionOptions opts = {});
  ~TransformSession();

  const Program& program() const { return *program_; }
  const IvLayout& layout() const { return *layout_; }
  const DependenceSet& dependences() const { return deps_; }
  const SessionOptions& options() const { return opts_; }

  /// Evaluate one candidate: legality plus, when legal, generated
  /// code. Never throws for candidate-specific failures — they land in
  /// the result's diagnostics (and in diags()).
  CandidateResult evaluate(const IntMat& m);

  /// Evaluate a batch across the session thread pool. Results are
  /// index-aligned with `candidates` and identical to sequential
  /// evaluate() calls (cached projections are bit-identical to
  /// uncached ones).
  std::vector<CandidateResult> evaluate_all(
      const std::vector<IntMat>& candidates);

  /// Walk a candidate space depth-first through the incremental
  /// legality engine: prefixes whose partial transformed dependences
  /// are already lexicographically negative prune their whole subtree;
  /// surviving candidates are evaluated exactly like `evaluate()` (the
  /// reported results are bit-identical and index-aligned with the
  /// enumeration order — see search.hpp). `sink`, when set, receives
  /// each legal candidate as it is found. In exact mode the hull
  /// engine cannot prune (the ILP test accepts more matrices), so
  /// every candidate is evaluated.
  ///
  /// The engine's memo trie lives on the session: repeated searches —
  /// and overlapping spaces — reuse each other's per-prefix work.
  /// Not safe to call concurrently on one session.
  SearchResult search(CandidateGenerator& gen,
                      const std::function<void(const SearchHit&)>& sink = {},
                      SearchMode mode = SearchMode::kFull);
  /// Convenience: permutation × bounded-skew space over this layout.
  SearchResult search(const SearchSpace& space,
                      const std::function<void(const SearchHit&)>& sink = {},
                      SearchMode mode = SearchMode::kFull);

  /// Full-option search: mode + sink + periodic progress telemetry
  /// (see SearchOptions in search.hpp). The two-argument overloads
  /// above are shorthands for this one.
  SearchResult search(CandidateGenerator& gen, const SearchOptions& sopts);
  SearchResult search(const SearchSpace& space, const SearchOptions& sopts);

  /// All diagnostics reported by evaluations so far.
  DiagnosticEngine& diags() { return diags_; }

  /// The FM projection memo. Clearing it turns the next evaluation
  /// cold again (bench_session measures exactly this).
  ProjectionCache& projection_cache() { return cache_; }

  /// Process-wide instrumentation registry (counters incremented by
  /// this session's work among everything else).
  Stats& stats() const { return Stats::global(); }

 private:
  CandidateResult evaluate_impl(const IntMat& m);

  SessionOptions opts_;
  std::unique_ptr<Program> program_;  // stable address: layout_ points in
  std::unique_ptr<IvLayout> layout_;
  DependenceSet deps_;
  ProjectionCache cache_;
  // Created lazily by the first search(); owns the prefix memo trie.
  std::unique_ptr<IncrementalLegality> engine_;
  std::mutex diag_mu_;  // evaluate_all workers report concurrently
  DiagnosticEngine diags_;
};

}  // namespace inlt
