// The candidate pipeline — one record, one stage list, one
// accumulator.
//
// search() used to interleave three concerns in one recursive walk:
// deciding candidates (legality / codegen / verification, with the
// work differing by mode), accounting for them (stats, rejection
// provenance, hit collection — assembled in three separate places) and
// scheduling them (inline at the leaf vs. deferred to worker threads).
// This header separates them:
//
//  * `Candidate` is the first-class record a candidate accumulates as
//    it moves through the stages: index, matrix, CandidateResult,
//    optional cost estimate, plus inter-stage scratch (the recovered
//    AST).
//  * `CandidatePipeline` is an ordered list of named stages
//    (Legality -> Complete -> Cost -> Codegen -> Verify). Full mode,
//    the legality-only filter and rank mode are *configurations* of
//    this list — which stages are present and what each one runs —
//    not separate code paths. Stages marked deferred run after the
//    sequential legality walk, fanned across worker threads; a stage
//    that rejects a candidate stops its remaining stages.
//  * `CandidateAccumulator` is the single merge point for every
//    decided candidate: it owns the SearchResult, the rejection
//    provenance (pruned subtrees, pruned leaves, evaluated-illegal
//    diagnostics) and the hit list — including the bounded best-K
//    heap rank mode uses, ordered by (cost, index) so results are
//    deterministic at any thread count.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "model/cost.hpp"
#include "pipeline/search.hpp"

namespace inlt {

/// The named stages a candidate can pass through, in pipeline order.
enum class StageKind {
  kLegality,  ///< legality verdict (engine, or exact ILP)
  kComplete,  ///< recover the transformed AST skeleton (rank/cost)
  kCost,      ///< static cache-locality estimate (model/cost.hpp)
  kCodegen,   ///< full code generation + simplify (evaluate_impl)
  kTile,      ///< tile the generated program (tile/plan.hpp)
  kVerify,    ///< semantic verification against the source program
};

const char* stage_kind_name(StageKind k);

/// One candidate moving through the pipeline.
struct Candidate {
  i64 index = -1;  ///< position in the depth-first enumeration
  IntMat matrix;
  CandidateResult result;
  /// Cost-model estimate (kCost stage; unset if the stage is absent
  /// or the estimate failed).
  std::optional<CostEstimate> cost;
  /// Inter-stage scratch: the recovered AST (kComplete stage) the
  /// cost stage consumes. Dropped when the candidate settles.
  std::optional<AstRecovery> recovery;
  /// Tile plan for the generated program (kTile stage; unset if the
  /// stage is absent or the candidate generated no code).
  std::optional<TilePlan> tile;
  /// Set by a stage that definitively rejects the candidate; the
  /// remaining stages are skipped. Distinct from `result.legal`
  /// because exact-mode codegen decides legality *inside* its stage —
  /// `legal == false` before that stage ran means "undecided".
  bool rejected = false;
};

/// An ordered list of named stages over Candidate. Leaf stages run
/// inline during the sequential legality walk (they may read the
/// stateful incremental engine); deferred stages run after the walk,
/// per candidate, possibly on worker threads (they must be
/// thread-safe and independent per candidate).
class CandidatePipeline {
 public:
  using StageFn = std::function<void(Candidate&)>;

  void add(StageKind kind, bool deferred, StageFn run);

  /// Run the leaf (non-deferred) stages in order; stops early when a
  /// stage rejects the candidate.
  void run_leaf(Candidate& c) const { run(c, /*deferred=*/false); }
  /// Run the deferred stages in order; stops early on rejection.
  void run_deferred(Candidate& c) const { run(c, /*deferred=*/true); }

  bool has(StageKind kind) const;
  bool has_deferred() const;
  /// "legality -> complete -> cost" — the configured stage list.
  std::string describe() const;

 private:
  struct Stage {
    StageKind kind;
    bool deferred;
    StageFn fn;
  };
  void run(Candidate& c, bool deferred) const;

  std::vector<Stage> stages_;
};

/// The single merge point for decided candidates: owns the
/// SearchResult and all bookkeeping that used to be assembled ad hoc
/// at three separate sites in search(). Not thread-safe — the walk
/// and the post-walk merge both run on the calling thread, in
/// enumeration order, which is what makes results deterministic.
class CandidateAccumulator {
 public:
  /// `pos_to_slot` maps a layout position to its slot index (for
  /// converting a legality diagnostic's deciding row into a by_row
  /// bucket); `nslots` indexes the trailing completion bucket.
  CandidateAccumulator(size_t num_deps, int nslots,
                       std::vector<int> pos_to_slot,
                       const SearchOptions& sopts);

  SearchStats& stats() { return out_.stats; }

  /// A viable prefix at `depth` turned illegal: its whole subtree of
  /// `leaves` candidates is pruned, attributed to dependence `dep`
  /// decided at slot `row`.
  void prune_subtree(int dep, int row, i64 leaves);
  /// A viable prefix with an illegal completion died at the leaf.
  void prune_leaf(int dep);
  /// A candidate reached the leaf and will be decided by the pipeline.
  void note_evaluated() { ++out_.stats.evaluated; }

  /// Merge one pipeline-decided candidate: legal candidates feed the
  /// hit list (or the bounded best-K heap), the sink and the
  /// verification counters; rejected ones feed illegal_evaluated and
  /// the diagnostic-localized rejection provenance. Must be called in
  /// ascending index order — the (cost, index) tiebreak relies on it.
  void settle(Candidate&& c);

  /// Finalize (sorts the best-K heap by ascending cost, index) and
  /// move the result out.
  SearchResult take();

 private:
  void attribute(int dep, int row, i64 n);

  SearchResult out_;
  const SearchOptions& sopts_;
  std::vector<int> pos_to_slot_;
  int nslots_;
};

}  // namespace inlt
