#include "pipeline/search.hpp"

#include "support/check.hpp"
#include "support/stats.hpp"
#include "transform/exact_legality.hpp"
#include "transform/incremental.hpp"

namespace inlt {

PermutationSkewGenerator::PermutationSkewGenerator(const IvLayout& layout,
                                                   SearchSpace space)
    : layout_(layout),
      space_(space),
      slots_(layout.all_loop_positions()),
      used_(slots_.size(), 0) {
  INLT_CHECK_MSG(space_.skew_bound >= 0, "negative skew bound");
  INLT_CHECK_MSG(space_.skew_depth >= 0, "negative skew depth");
}

int PermutationSkewGenerator::num_slots() const {
  return static_cast<int>(slots_.size());
}

int PermutationSkewGenerator::skew_window(int depth) const {
  return std::min(depth, space_.skew_depth);
}

i64 PermutationSkewGenerator::num_options(int depth) const {
  i64 n = static_cast<i64>(slots_.size()) - depth;  // unplaced variables
  i64 base = 2 * space_.skew_bound + 1;
  for (int w = skew_window(depth); w > 0; --w) n = checked_mul(n, base);
  return n;
}

int PermutationSkewGenerator::unused_at(i64 var_choice) const {
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (used_[i]) continue;
    if (var_choice-- == 0) return static_cast<int>(i);
  }
  INLT_CHECK_MSG(false, "option index out of range");
  return -1;
}

IntVec PermutationSkewGenerator::row(i64 k) const {
  int depth = static_cast<int>(chosen_.size());
  int window = skew_window(depth);
  i64 base = 2 * space_.skew_bound + 1;
  i64 nskew = 1;
  for (int w = 0; w < window; ++w) nskew *= base;
  INLT_CHECK(k >= 0 && k < num_options(depth));
  i64 var_choice = k / nskew;
  i64 combo = k % nskew;

  IntVec r(layout_.size(), 0);
  r[slots_[unused_at(var_choice)]] = 1;
  // Skew coefficients for the window of most recently placed
  // variables, earliest slot's digit most significant.
  for (int w = 0; w < window; ++w) {
    nskew /= base;
    i64 c = combo / nskew - space_.skew_bound;
    combo %= nskew;
    int s = depth - window + w;  // slot whose variable we skew against
    r[slots_[chosen_[s]]] += c;
  }
  return r;
}

void PermutationSkewGenerator::push(i64 k) {
  int window = skew_window(static_cast<int>(chosen_.size()));
  i64 base = 2 * space_.skew_bound + 1;
  i64 nskew = 1;
  for (int w = 0; w < window; ++w) nskew *= base;
  int slot = unused_at(k / nskew);
  used_[slot] = 1;
  chosen_.push_back(slot);
}

void PermutationSkewGenerator::pop() {
  INLT_CHECK(!chosen_.empty());
  used_[chosen_.back()] = 0;
  chosen_.pop_back();
}

std::vector<IntMat> materialize_candidates(const IvLayout& layout,
                                           CandidateGenerator& gen) {
  std::vector<IntMat> out;
  IntMat m = IntMat::identity(layout.size());
  std::vector<int> slots = layout.all_loop_positions();
  INLT_CHECK(static_cast<int>(slots.size()) == gen.num_slots());

  std::function<void(int)> rec = [&](int depth) {
    if (depth == gen.num_slots()) {
      out.push_back(m);
      return;
    }
    for (i64 k = 0; k < gen.num_options(depth); ++k) {
      IntVec r = gen.row(k);
      for (int j = 0; j < layout.size(); ++j) m(slots[depth], j) = r[j];
      gen.push(k);
      rec(depth + 1);
      gen.pop();
    }
  };
  rec(0);
  return out;
}

SearchResult TransformSession::search(
    CandidateGenerator& gen, const std::function<void(const SearchHit&)>& sink,
    SearchMode mode) {
  const int nslots = gen.num_slots();
  INLT_CHECK_MSG(nslots == static_cast<int>(layout_->all_loop_positions().size()),
                 "generator slot count does not match the layout");
  // Hull prefixes cannot prune exact-mode candidates: the ILP test
  // accepts matrices the hull rejects, so in exact mode the engine is
  // bypassed and every candidate is evaluated.
  const bool prune = !opts_.exact;
  if (prune && !engine_)
    engine_ = std::make_unique<IncrementalLegality>(*layout_, deps_);

  SearchResult out;
  // Exact subtree sizes per depth (prefix-independent by the
  // generator contract) — what index arithmetic under pruning uses.
  std::vector<i64> leaves_below(nslots + 1, 1);
  for (int d = nslots; d-- > 0;)
    leaves_below[d] = checked_mul(leaves_below[d + 1], gen.num_options(d));
  out.stats.candidates_total = leaves_below[0];

  IntMat m = IntMat::identity(layout_->size());
  const std::vector<int>& slots = layout_->all_loop_positions();
  i64 index = 0;

  std::function<void(int)> rec = [&](int depth) {
    if (depth == nslots) {
      if (prune && !engine_->current_legal()) {
        ++out.stats.pruned_candidates;
        ++index;
        return;
      }
      ++out.stats.evaluated;
      CandidateResult r;
      if (mode == SearchMode::kLegalityOnly) {
        if (prune) {
          // The engine's full-depth verdict IS the hull legality test
          // (test_incremental proves the equivalence) — no pipeline
          // work left to do for a verdict-only hit.
          r.legal = true;
          r.legality.unsatisfied = engine_->current_unsatisfied();
        } else {
          // Exact mode: decide legality by the ILP test, skipping
          // plan/build/simplify.
          ScopedProjectionCache install(&cache_);
          AstRecovery rec = recover_ast(*layout_, m);
          r.legal =
              check_legality_exact(*layout_, m, rec, opts_.codegen.pad).legal();
        }
      } else {
        r = evaluate_impl(m);
      }
      if (r.legal) {
        ++out.stats.legal;
        out.hits.push_back(SearchHit{index, m, std::move(r)});
        if (sink) sink(out.hits.back());
      } else {
        ++out.stats.illegal_evaluated;
      }
      ++index;
      return;
    }
    for (i64 k = 0; k < gen.num_options(depth); ++k) {
      IntVec r = gen.row(k);
      for (int j = 0; j < layout_->size(); ++j) m(slots[depth], j) = r[j];
      gen.push(k);
      bool viable = true;
      if (prune) viable = engine_->push_row(r);
      if (!viable) {
        ++out.stats.pruned_subtrees;
        out.stats.pruned_candidates += leaves_below[depth + 1];
        index += leaves_below[depth + 1];
      } else {
        rec(depth + 1);
      }
      if (prune) engine_->pop_row();
      gen.pop();
    }
  };
  rec(0);

  Stats::global().add("search.candidates", out.stats.candidates_total);
  Stats::global().add("search.evaluated", out.stats.evaluated);
  Stats::global().add("search.pruned", out.stats.pruned_candidates);
  return out;
}

SearchResult TransformSession::search(
    const SearchSpace& space,
    const std::function<void(const SearchHit&)>& sink, SearchMode mode) {
  PermutationSkewGenerator gen(*layout_, space);
  return search(gen, sink, mode);
}

}  // namespace inlt
