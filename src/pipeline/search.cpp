#include "pipeline/search.hpp"

#include <atomic>
#include <chrono>
#include <limits>
#include <sstream>
#include <thread>

#include "dependence/direction.hpp"
#include "pipeline/candidate.hpp"
#include "support/check.hpp"
#include "support/stats.hpp"
#include "support/trace.hpp"
#include "transform/exact_legality.hpp"
#include "transform/incremental.hpp"
#include "transform/parallel.hpp"

namespace inlt {

std::string RejectionBreakdown::to_text(const DependenceSet& deps) const {
  std::ostringstream os;
  os << "rejected candidates: " << rejected << "\n";
  os << "  by dependence:\n";
  for (size_t d = 0; d < by_dependence.size(); ++d) {
    if (by_dependence[d] == 0) continue;
    const Dependence& dep = deps.deps[d];
    os << "    [" << d << "] " << dep_kind_name(dep.kind) << " " << dep.src
       << " -> " << dep.dst << " " << dep_to_string(dep.vector) << ": "
       << by_dependence[d] << "\n";
  }
  os << "  by row:\n";
  for (size_t r = 0; r + 1 < by_row.size(); ++r)
    if (by_row[r] != 0) os << "    row " << r << ": " << by_row[r] << "\n";
  if (!by_row.empty() && by_row.back() != 0)
    os << "    completion: " << by_row.back() << "\n";
  return os.str();
}

PermutationSkewGenerator::PermutationSkewGenerator(const IvLayout& layout,
                                                   SearchSpace space)
    : layout_(layout),
      space_(space),
      slots_(layout.all_loop_positions()),
      used_(slots_.size(), 0) {
  INLT_CHECK_MSG(space_.skew_bound >= 0, "negative skew bound");
  INLT_CHECK_MSG(space_.skew_depth >= 0, "negative skew depth");
}

int PermutationSkewGenerator::num_slots() const {
  return static_cast<int>(slots_.size());
}

int PermutationSkewGenerator::skew_window(int depth) const {
  return std::min(depth, space_.skew_depth);
}

i64 PermutationSkewGenerator::num_options(int depth) const {
  i64 n = static_cast<i64>(slots_.size()) - depth;  // unplaced variables
  i64 base = 2 * space_.skew_bound + 1;
  for (int w = skew_window(depth); w > 0; --w) n = checked_mul(n, base);
  return n;
}

int PermutationSkewGenerator::unused_at(i64 var_choice) const {
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (used_[i]) continue;
    if (var_choice-- == 0) return static_cast<int>(i);
  }
  INLT_CHECK_MSG(false, "option index out of range");
  return -1;
}

IntVec PermutationSkewGenerator::row(i64 k) const {
  int depth = static_cast<int>(chosen_.size());
  int window = skew_window(depth);
  i64 base = 2 * space_.skew_bound + 1;
  i64 nskew = 1;
  for (int w = 0; w < window; ++w) nskew *= base;
  INLT_CHECK(k >= 0 && k < num_options(depth));
  i64 var_choice = k / nskew;
  i64 combo = k % nskew;

  IntVec r(layout_.size(), 0);
  r[slots_[unused_at(var_choice)]] = 1;
  // Skew coefficients for the window of most recently placed
  // variables, earliest slot's digit most significant.
  for (int w = 0; w < window; ++w) {
    nskew /= base;
    i64 c = combo / nskew - space_.skew_bound;
    combo %= nskew;
    int s = depth - window + w;  // slot whose variable we skew against
    r[slots_[chosen_[s]]] += c;
  }
  return r;
}

void PermutationSkewGenerator::push(i64 k) {
  int window = skew_window(static_cast<int>(chosen_.size()));
  i64 base = 2 * space_.skew_bound + 1;
  i64 nskew = 1;
  for (int w = 0; w < window; ++w) nskew *= base;
  int slot = unused_at(k / nskew);
  used_[slot] = 1;
  chosen_.push_back(slot);
}

void PermutationSkewGenerator::pop() {
  INLT_CHECK(!chosen_.empty());
  used_[chosen_.back()] = 0;
  chosen_.pop_back();
}

std::vector<IntMat> materialize_candidates(const IvLayout& layout,
                                           CandidateGenerator& gen) {
  std::vector<IntMat> out;
  IntMat m = IntMat::identity(layout.size());
  std::vector<int> slots = layout.all_loop_positions();
  INLT_CHECK(static_cast<int>(slots.size()) == gen.num_slots());

  std::function<void(int)> rec = [&](int depth) {
    if (depth == gen.num_slots()) {
      out.push_back(m);
      return;
    }
    for (i64 k = 0; k < gen.num_options(depth); ++k) {
      IntVec r = gen.row(k);
      for (int j = 0; j < layout.size(); ++j) m(slots[depth], j) = r[j];
      gen.push(k);
      rec(depth + 1);
      gen.pop();
    }
  };
  rec(0);
  return out;
}

SearchResult TransformSession::search(CandidateGenerator& gen,
                                      const SearchOptions& sopts) {
  const int nslots = gen.num_slots();
  INLT_CHECK_MSG(nslots == static_cast<int>(layout_->all_loop_positions().size()),
                 "generator slot count does not match the layout");
  INLT_CHECK_MSG(sopts.progress_interval > 0,
                 "progress_interval must be positive");
  INLT_CHECK_MSG(sopts.top_k >= 0, "top_k must be non-negative");
  // Hull prefixes cannot prune exact-mode candidates: the ILP test
  // accepts matrices the hull rejects, so in exact mode the engine is
  // bypassed and every candidate is evaluated.
  const bool prune = !opts_.exact;
  const bool full = sopts.mode == SearchMode::kFull;
  const bool cost = sopts.cost || sopts.top_k > 0;
  if (prune && !engine_)
    engine_ = std::make_unique<IncrementalLegality>(*layout_, deps_);

  ScopedSpan run_span("search.run", "search");
  const auto t0 = std::chrono::steady_clock::now();

  // Exact subtree sizes per depth (prefix-independent by the
  // generator contract) — what index arithmetic under pruning uses.
  std::vector<i64> leaves_below(nslots + 1, 1);
  for (int d = nslots; d-- > 0;)
    leaves_below[d] = checked_mul(leaves_below[d + 1], gen.num_options(d));

  IntMat m = IntMat::identity(layout_->size());
  const std::vector<int>& slots = layout_->all_loop_positions();
  // Layout position -> slot index, for converting a legality
  // diagnostic's deciding row into a by_row bucket.
  std::vector<int> pos_to_slot(layout_->size(), -1);
  for (int s = 0; s < nslots; ++s) pos_to_slot[slots[s]] = s;

  CandidateAccumulator acc(deps_.deps.size(), nslots, pos_to_slot, sopts);
  acc.stats().candidates_total = leaves_below[0];

  // -- pipeline configuration ---------------------------------------
  // Full mode, the legality-only filter and rank mode are the same
  // stage list with different members: which stages exist and what
  // each runs is decided here, once, instead of being interleaved
  // with the walk.
  std::optional<VerifyReference> ref;  // outlives the kVerify stage
  CandidatePipeline pipe;
  if (prune) {
    // The engine's full-depth verdict IS the hull legality test
    // (test_incremental proves the equivalence); in full mode the
    // codegen stage rebuilds the result from scratch anyway, so the
    // leaf verdict records only the flag.
    if (full) {
      pipe.add(StageKind::kLegality, /*deferred=*/false,
               [](Candidate& c) { c.result.legal = true; });
    } else {
      pipe.add(StageKind::kLegality, /*deferred=*/false, [this](Candidate& c) {
        c.result.legal = true;
        c.result.legality.unsatisfied = engine_->current_unsatisfied();
      });
    }
  } else if (!full) {
    // Exact filter mode: decide legality by the ILP test at the leaf,
    // skipping plan/build/simplify.
    pipe.add(StageKind::kLegality, /*deferred=*/false, [this](Candidate& c) {
      ScopedProjectionCache install(&cache_);
      AstRecovery rec = recover_ast(*layout_, c.matrix);
      c.result.legal =
          check_legality_exact(*layout_, c.matrix, rec, opts_.codegen.pad)
              .legal();
      c.rejected = !c.result.legal;
    });
  }
  // (Exact full mode has no standalone legality stage: the ILP
  // verdict is produced inside codegen by generate_code_exact.)
  if (cost) {
    ModelOptions mopts = sopts.model;
    mopts.pad = opts_.codegen.pad;
    mopts.exec_threads = sopts.exec_threads;
    HistogramCell* cost_hist = &Stats::global().histogram("search.cost_ns");
    pipe.add(StageKind::kComplete, /*deferred=*/true, [this](Candidate& c) {
      try {
        c.recovery.emplace(recover_ast(*layout_, c.matrix));
      } catch (const Error& e) {
        // Engine-legal candidates are block-structured by the
        // generator contract; a recovery failure is a structure error
        // and rejects the candidate like evaluate() would.
        c.result.legal = false;
        c.rejected = true;
        c.result.error = e.what();
      }
    });
    pipe.add(StageKind::kCost, /*deferred=*/true,
             [this, mopts, cost_hist](Candidate& c) {
               if (!c.recovery) return;
               const auto s0 = std::chrono::steady_clock::now();
               try {
                 c.cost.emplace(estimate_cost(*layout_, deps_, c.matrix,
                                              *c.recovery, mopts));
               } catch (const Error&) {
                 // Unrankable, not illegal: the hit survives with no
                 // estimate and sorts after every scored one.
               }
               cost_hist->record(
                   std::chrono::duration_cast<std::chrono::nanoseconds>(
                       std::chrono::steady_clock::now() - s0)
                       .count());
             });
  }
  if (full) {
    pipe.add(StageKind::kCodegen, /*deferred=*/true, [this](Candidate& c) {
      c.result = evaluate_impl(c.matrix);
      c.rejected = !c.result.legal;
    });
    if (sopts.tile) {
      const TileOptions topts = sopts.tile_opts;
      ModelOptions tmopts = sopts.model;
      pipe.add(StageKind::kTile, /*deferred=*/true,
               [topts, tmopts](Candidate& c) {
                 if (!(c.result.legal && c.result.program)) return;
                 try {
                   TiledProgram tp =
                       apply_tile(*c.result.program, topts, tmopts);
                   if (tp.program) c.result.program = std::move(*tp.program);
                   c.tile.emplace(std::move(tp.plan));
                 } catch (const Error& e) {
                   // Per-candidate structural mismatch (e.g. a band
                   // index valid for one candidate's shape but not
                   // another's): keep the untiled program, record why.
                   TilePlan failed;
                   failed.note = e.what();
                   c.tile.emplace(std::move(failed));
                 }
               });
    }
    if (!sopts.verify_params.empty()) {
      const int exec_threads = sopts.exec_threads;
      pipe.add(StageKind::kVerify, /*deferred=*/true,
               [this, &ref, exec_threads](Candidate& c) {
                 if (!(c.result.legal && ref && c.result.program)) return;
                 // Candidate doall partition for the parallel engine;
                 // any analysis failure just verifies serially (the
                 // verdict is thread-count independent either way).
                 std::vector<std::string> partition;
                 if (exec_threads > 1) {
                   try {
                     AstRecovery rec = c.recovery
                                           ? std::move(*c.recovery)
                                           : recover_ast(*layout_, c.matrix);
                     partition = analyze_target_parallelism(*layout_, deps_,
                                                            c.matrix, rec)
                                     .partition;
                     c.recovery.emplace(std::move(rec));
                     // A tiled hit's program loops over tiles: remap
                     // partitioned band variables to their tile loops.
                     if (c.tile && c.tile->applied)
                       partition = tiled_partition(partition, c.tile->spec,
                                                   c.tile->tile_vars);
                   } catch (const Error&) {
                     partition.clear();
                   }
                 }
                 c.result.verify = ref->check(*c.result.program, partition);
               });
    }
  }
  const bool deferred = pipe.has_deferred();
  if (run_span.active()) run_span.arg("pipeline", pipe.describe());

  // Per-candidate decision time is recorded only in full mode: the
  // legality-only filter decides millions of candidates per second and
  // even two clock reads per leaf would dominate it.
  HistogramCell* cand_hist =
      full ? &Stats::global().histogram("search.candidate_ns") : nullptr;

  // Survivors of the legality walk, in enumeration order, finished
  // after the walk (the IncrementalLegality engine is stateful, so the
  // walk itself stays sequential; the deferred stages are not).
  std::vector<Candidate> pending;

  i64 index = 0;
  i64 next_report = sopts.progress ? sopts.progress_interval
                                   : std::numeric_limits<i64>::max();
  auto emit_progress = [&](i64 done) {
    SearchProgress p;
    p.done = done;
    p.total = acc.stats().candidates_total;
    p.legal = acc.stats().legal;
    p.pruned = acc.stats().pruned_candidates;
    p.elapsed_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    p.rate = p.elapsed_s > 0 ? static_cast<double>(done) / p.elapsed_s : 0;
    p.prune_rate = done > 0 ? static_cast<double>(p.pruned) / done : 0;
    p.eta_s = p.rate > 0 ? static_cast<double>(p.total - done) / p.rate : 0;
    sopts.progress(p);
  };

  std::function<void(int)> rec = [&](int depth) {
    if (depth == nslots) {
      if (prune && !engine_->current_legal()) {
        // Viable prefix, illegal completion: the zero projection of
        // leaf_killer() is what rejected it.
        acc.prune_leaf(engine_->leaf_killer());
        ++index;
        if (index >= next_report) {
          emit_progress(index);
          next_report = index + sopts.progress_interval;
        }
        return;
      }
      acc.note_evaluated();
      Candidate c;
      c.index = index;
      c.matrix = m;
      pipe.run_leaf(c);
      if (deferred && !c.rejected) {
        // Deferred stages pending: batch the survivor for the
        // post-walk worker threads.
        pending.push_back(std::move(c));
      } else {
        acc.settle(std::move(c));
      }
      ++index;
      if (index >= next_report) {
        emit_progress(index);
        next_report = index + sopts.progress_interval;
      }
      return;
    }
    for (i64 k = 0; k < gen.num_options(depth); ++k) {
      IntVec r = gen.row(k);
      for (int j = 0; j < layout_->size(); ++j) m(slots[depth], j) = r[j];
      gen.push(k);
      bool viable = true;
      if (prune) viable = engine_->push_row(r);
      if (!viable) {
        i64 n = leaves_below[depth + 1];
        acc.prune_subtree(engine_->killer(), engine_->killer_row(), n);
        if (Tracer::enabled()) {
          ScopedSpan ps("search.prune", "search");
          ps.arg("depth", static_cast<i64>(depth));
          ps.arg("dep", static_cast<i64>(engine_->killer()));
          ps.arg("pruned", n);
        }
        index += n;
        if (index >= next_report) {
          emit_progress(index);
          next_report = index + sopts.progress_interval;
        }
      } else {
        rec(depth + 1);
      }
      if (prune) engine_->pop_row();
      gen.pop();
    }
  };
  rec(0);

  // Deferred stages (codegen + simplify + optional verification in
  // full mode, completion + cost in rank mode) for every survivor,
  // fanned over the session's worker threads. Results are merged back
  // in enumeration order, so hits, stats and rejection provenance are
  // bit-identical to the sequential path regardless of thread count.
  if (!pending.empty()) {
    ScopedSpan eval_span("search.evaluate", "search");
    if (!sopts.verify_params.empty()) {
      ExecPlan plan;
      plan.threads = sopts.exec_threads;
      if (sopts.exec_threads > 1)
        plan.source_partition =
            source_parallel_schedule(*layout_, deps_).partition;
      ref.emplace(*program_, sopts.verify_params, sopts.verify_fill,
                  sopts.verify_seed, /*tolerance=*/1e-9, sopts.verify_engine,
                  plan);
    }
    auto eval_one = [&](size_t i) {
      Candidate& c = pending[i];
      ScopedSpan cs("search.candidate", "search");
      const auto c0 = std::chrono::steady_clock::now();
      pipe.run_deferred(c);
      if (cand_hist)
        cand_hist->record(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              std::chrono::steady_clock::now() - c0)
                              .count());
      if (cs.active()) {
        cs.arg("index", c.index);
        cs.arg("legal", c.result.legal);
      }
    };
    int nthreads =
        resolve_threads(opts_.threads, opts_.max_threads, pending.size());
    if (nthreads == 1) {
      for (size_t i = 0; i < pending.size(); ++i) eval_one(i);
    } else {
      std::atomic<size_t> next{0};
      auto worker = [&] {
        for (;;) {
          size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= pending.size()) return;
          eval_one(i);
        }
      };
      std::vector<std::thread> workers;
      workers.reserve(static_cast<size_t>(nthreads));
      for (int t = 0; t < nthreads; ++t) workers.emplace_back(worker);
      for (std::thread& t : workers) t.join();
    }
    if (eval_span.active()) {
      eval_span.arg("candidates", static_cast<i64>(pending.size()));
      eval_span.arg("threads", static_cast<i64>(nthreads));
    }
    for (Candidate& c : pending) acc.settle(std::move(c));
  }

  // Final report: done == total, so consumers can close their display.
  if (sopts.progress) emit_progress(index);

  if (run_span.active()) {
    run_span.arg("total", acc.stats().candidates_total);
    run_span.arg("evaluated", acc.stats().evaluated);
    run_span.arg("legal", acc.stats().legal);
    run_span.arg("pruned", acc.stats().pruned_candidates);
  }
  Stats::global().add("search.candidates", acc.stats().candidates_total);
  Stats::global().add("search.evaluated", acc.stats().evaluated);
  Stats::global().add("search.pruned", acc.stats().pruned_candidates);
  return acc.take();
}

SearchResult TransformSession::search(
    CandidateGenerator& gen, const std::function<void(const SearchHit&)>& sink,
    SearchMode mode) {
  SearchOptions sopts;
  sopts.mode = mode;
  sopts.sink = sink;
  return search(gen, sopts);
}

SearchResult TransformSession::search(const SearchSpace& space,
                                      const SearchOptions& sopts) {
  PermutationSkewGenerator gen(*layout_, space);
  return search(gen, sopts);
}

SearchResult TransformSession::search(
    const SearchSpace& space,
    const std::function<void(const SearchHit&)>& sink, SearchMode mode) {
  PermutationSkewGenerator gen(*layout_, space);
  return search(gen, sink, mode);
}

}  // namespace inlt
