#include "pipeline/candidate.hpp"

#include <algorithm>
#include <limits>
#include <sstream>
#include <utility>

namespace inlt {

const char* stage_kind_name(StageKind k) {
  switch (k) {
    case StageKind::kLegality: return "legality";
    case StageKind::kComplete: return "complete";
    case StageKind::kCost:     return "cost";
    case StageKind::kCodegen:  return "codegen";
    case StageKind::kTile:     return "tile";
    case StageKind::kVerify:   return "verify";
  }
  return "?";
}

void CandidatePipeline::add(StageKind kind, bool deferred, StageFn run) {
  stages_.push_back(Stage{kind, deferred, std::move(run)});
}

bool CandidatePipeline::has(StageKind kind) const {
  for (const Stage& s : stages_)
    if (s.kind == kind) return true;
  return false;
}

bool CandidatePipeline::has_deferred() const {
  for (const Stage& s : stages_)
    if (s.deferred) return true;
  return false;
}

std::string CandidatePipeline::describe() const {
  std::ostringstream os;
  for (size_t i = 0; i < stages_.size(); ++i) {
    if (i) os << " -> ";
    os << stage_kind_name(stages_[i].kind);
  }
  return os.str();
}

void CandidatePipeline::run(Candidate& c, bool deferred) const {
  for (const Stage& s : stages_) {
    if (s.deferred != deferred) continue;
    if (c.rejected) return;
    s.fn(c);
  }
}

namespace {

// Missing estimates (cost stage absent, or the estimate failed) sort
// last; exact cost ties break by ascending candidate index, which
// settle()'s in-order contract makes deterministic.
double hit_lines(const SearchHit& h) {
  return h.cost ? h.cost->total_lines : std::numeric_limits<double>::infinity();
}

bool hit_better(const SearchHit& a, const SearchHit& b) {
  double la = hit_lines(a), lb = hit_lines(b);
  if (la != lb) return la < lb;
  return a.index < b.index;
}

}  // namespace

CandidateAccumulator::CandidateAccumulator(size_t num_deps, int nslots,
                                           std::vector<int> pos_to_slot,
                                           const SearchOptions& sopts)
    : sopts_(sopts), pos_to_slot_(std::move(pos_to_slot)), nslots_(nslots) {
  out_.rejections.by_dependence.assign(num_deps, 0);
  out_.rejections.by_row.assign(static_cast<size_t>(nslots) + 1, 0);
}

// Rejection provenance: n candidates killed by dependence `dep`,
// decided at slot `row` (nslots == decided only at completion).
void CandidateAccumulator::attribute(int dep, int row, i64 n) {
  if (dep >= 0 && dep < static_cast<int>(out_.rejections.by_dependence.size()))
    out_.rejections.by_dependence[dep] += n;
  if (row < 0 || row > nslots_) row = nslots_;
  out_.rejections.by_row[row] += n;
  out_.rejections.rejected += n;
}

void CandidateAccumulator::prune_subtree(int dep, int row, i64 leaves) {
  ++out_.stats.pruned_subtrees;
  out_.stats.pruned_candidates += leaves;
  attribute(dep, row, leaves);
}

void CandidateAccumulator::prune_leaf(int dep) {
  ++out_.stats.pruned_candidates;
  attribute(dep, nslots_, 1);
}

void CandidateAccumulator::settle(Candidate&& c) {
  if (c.result.legal) {
    ++out_.stats.legal;
    if (c.result.verify) {
      ++out_.stats.verified;
      if (!c.result.verify->equivalent) ++out_.stats.verify_failed;
    }
    SearchHit h{c.index, std::move(c.matrix), std::move(c.result),
                std::move(c.cost), std::move(c.tile)};
    if (sopts_.sink) sopts_.sink(h);
    const i64 k = sopts_.top_k;
    if (k <= 0) {
      out_.hits.push_back(std::move(h));
    } else if (static_cast<i64>(out_.hits.size()) < k) {
      out_.hits.push_back(std::move(h));
      std::push_heap(out_.hits.begin(), out_.hits.end(), hit_better);
    } else if (hit_better(h, out_.hits.front())) {
      std::pop_heap(out_.hits.begin(), out_.hits.end(), hit_better);
      out_.hits.back() = std::move(h);
      std::push_heap(out_.hits.begin(), out_.hits.end(), hit_better);
    }
    return;
  }
  ++out_.stats.illegal_evaluated;
  // Attribute through the first localized legality diagnostic
  // (codegen-stage failures carry no dependence provenance).
  for (const Diagnostic& dg : c.result.legality.diagnostics) {
    if (dg.stage != Stage::kLegality || dg.dep_index < 0) continue;
    int slot = dg.row >= 0 && dg.row < static_cast<int>(pos_to_slot_.size())
                   ? pos_to_slot_[dg.row]
                   : -1;
    attribute(dg.dep_index, slot < 0 ? nslots_ : slot, 1);
    break;
  }
}

SearchResult CandidateAccumulator::take() {
  if (sopts_.top_k > 0)
    std::sort(out_.hits.begin(), out_.hits.end(), hit_better);
  return std::move(out_);
}

}  // namespace inlt
