#include "pipeline/session.hpp"

#include <atomic>
#include <thread>

#include "codegen/simplify.hpp"
#include "ir/parser.hpp"
#include "support/trace.hpp"
#include "transform/incremental.hpp"

namespace inlt {

int resolve_threads(int requested, int ceiling, size_t work_items) {
  int n = requested;
  if (n <= 0) {
    // Default to the machine's parallelism; `max_threads` is the
    // session's opt-in ceiling (0 = none). An explicit request is
    // honored as-is.
    unsigned hw = std::thread::hardware_concurrency();
    n = hw == 0 ? 1 : static_cast<int>(hw);
    if (ceiling > 0) n = std::min(n, ceiling);
  }
  return std::max(1, std::min(n, static_cast<int>(work_items)));
}

TransformSession TransformSession::from_source(const std::string& source_text,
                                               SessionOptions opts) {
  Program program = [&] {
    ScopedSpan span("session.parse", "session");
    return parse_program(source_text);
  }();
  return TransformSession(std::move(program), std::move(opts));
}

TransformSession::TransformSession(Program program, SessionOptions opts)
    : opts_(std::move(opts)),
      program_(std::make_unique<Program>(std::move(program))) {
  {
    ScopedSpan span("session.layout", "session");
    layout_ = std::make_unique<IvLayout>(*program_);
  }
  ScopedTimer t("session.analyze");
  ScopedSpan span("session.analyze", "session");
  deps_ = analyze_dependences(*layout_, opts_.analyzer);
  if (span.active())
    span.arg("deps", static_cast<i64>(deps_.deps.size()));
}

// Out of line: IncrementalLegality is incomplete in the header.
TransformSession::~TransformSession() = default;

CandidateResult TransformSession::evaluate_impl(const IntMat& m) {
  Stats::global().add("session.evaluations");
  ScopedSpan span("session.evaluate", "session");
  ScopedProjectionCache install(&cache_);
  CandidateResult r;
  try {
    if (opts_.exact) {
      ExactCodegenResult res = generate_code_exact(*layout_, m, opts_.codegen);
      r.legal = true;
      r.program = opts_.simplify ? simplify_program(res.program)
                                 : std::move(res.program);
    } else {
      CodegenResult res = generate_code(*layout_, deps_, m, opts_.codegen);
      r.legal = true;
      r.legality = std::move(res.legality);
      r.program = opts_.simplify ? simplify_program(res.program)
                                 : std::move(res.program);
    }
  } catch (const DiagnosedTransformError& e) {
    r.error = e.what();
    r.diagnostics = e.diagnostics();
    // An illegal matrix is the common failure: surface it on the
    // legality member too so callers can treat both paths uniformly.
    for (const Diagnostic& d : r.diagnostics)
      if (d.stage == Stage::kLegality) r.legality.violations.push_back(d.message);
    r.legality.diagnostics = r.diagnostics;
  } catch (const Error& e) {
    r.error = e.what();
    Diagnostic d;
    d.stage = Stage::kCodegen;
    d.message = e.what();
    r.diagnostics.push_back(std::move(d));
  }
  if (!r.diagnostics.empty()) {
    std::lock_guard<std::mutex> lock(diag_mu_);
    for (const Diagnostic& d : r.diagnostics) diags_.report(d);
  }
  if (span.active()) span.arg("legal", r.legal);
  return r;
}

CandidateResult TransformSession::evaluate(const IntMat& m) {
  return evaluate_impl(m);
}

std::vector<CandidateResult> TransformSession::evaluate_all(
    const std::vector<IntMat>& candidates) {
  std::vector<CandidateResult> out(candidates.size());
  if (candidates.empty()) return out;
  int nthreads =
      resolve_threads(opts_.threads, opts_.max_threads, candidates.size());
  if (nthreads == 1) {
    for (size_t i = 0; i < candidates.size(); ++i)
      out[i] = evaluate_impl(candidates[i]);
    return out;
  }
  std::atomic<size_t> next{0};
  auto worker = [&] {
    for (;;) {
      size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= candidates.size()) return;
      out[i] = evaluate_impl(candidates[i]);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(nthreads));
  for (int t = 0; t < nthreads; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  return out;
}

}  // namespace inlt
