// Tile planning: pick a band, pick sizes, decide profitability.
//
// plan_tile glues the three tiling layers together: band detection
// (tile/band.hpp) for legality, the traffic model (model/tile_cost.hpp)
// for profitability, and the rewrite spec (tile/rewrite.hpp) as
// output. The search is deterministic: explicit sizes are taken as
// given; auto mode sweeps a small power-of-two grid per band dimension
// ({8, 16, 32, 64}, uniform sizes only above depth 3) and keeps the
// size vector with the lowest modeled traffic, breaking exact ties by
// lexicographically smaller sizes. A plan whose best tiled traffic is
// no better than the untiled point of the same model reports
// applied == false with the reason in `note` — callers then skip the
// rewrite rather than pay tile-loop overhead for nothing.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "dependence/analyzer.hpp"
#include "instance/layout.hpp"
#include "model/cost.hpp"
#include "tile/band.hpp"
#include "tile/rewrite.hpp"

namespace inlt {

struct TileOptions {
  /// Explicit per-loop sizes (outermost first). Empty with
  /// auto_select == false: default size 32 per band loop.
  std::vector<i64> sizes;
  /// Which detected band to tile (index into BandReport::bands);
  /// -1 picks the deepest band (ties: first in report order).
  int band = -1;
  /// Explicit loop chain; overrides `band` when non-empty. Must be
  /// fully permutable (band_reject_reason empty).
  std::vector<std::string> loops;
  /// Sweep the size grid and keep the traffic argmin.
  bool auto_select = false;
  /// Apply the rewrite even when the model predicts no gain.
  bool force = false;
};

struct TilePlan {
  TileSpec spec;  ///< chosen band vars + sizes
  /// Generated tile-loop names; filled by apply_tile on
  /// materialization (empty for an unapplied plan or identity
  /// rewrite). What tiled_partition consumes.
  std::vector<std::string> tile_vars;
  /// Whether the plan recommends tiling (model predicts a gain, or
  /// force). When false, `note` says why.
  bool applied = false;
  std::string note;
  double untiled_traffic = 0;
  double tiled_traffic = 0;
  double footprint_lines = 0;
  bool fits_cache = true;
  /// Bands that were considered (the full report, for --report).
  BandReport bands;

  /// Human-readable plan: chosen band, sizes, modeled traffic ratio.
  std::string to_text() const;
};

/// Plan tiling for the layout's program under its dependences. Throws
/// TransformError when opts.loops names a non-chain, TileError when
/// opts.band is out of range or opts.loops is not permutable.
TilePlan plan_tile(const IvLayout& layout, const DependenceSet& deps,
                   const TileOptions& opts, const ModelOptions& mopts = {});

/// A plan together with its materialized program.
struct TiledProgram {
  TilePlan plan;
  /// The tiled program; set iff plan.applied (the identity rewrite —
  /// every size 1 — still sets it, to an unchanged clone).
  std::optional<Program> program;
};

/// One-call driver: analyze `p` fresh (layout + dependences), plan,
/// and materialize the rewrite when the plan applies. A program the
/// dependence analyzer rejects (guards, non-unit steps, divided
/// bounds) degrades to a not-applied plan with the reason in `note`;
/// so does a band whose bounds the rewrite's hull cannot handle.
/// Explicit option errors (bad sizes, band index out of range,
/// non-permutable opts.loops) still throw TileError / TransformError.
TiledProgram apply_tile(const Program& p, const TileOptions& opts,
                        const ModelOptions& mopts = {});

}  // namespace inlt
