// Fully-permutable loop band detection — the legality layer of tiling.
//
// A band is a chain of nested loops L1 ⊃ L2 ⊃ ... ⊃ Lk along one path
// of the AST (intermediate non-band loops and imperfect pre/post
// statements between the levels are allowed — this is the imperfectly
// nested setting the paper's instance-vector machinery exists for).
// Tiled execution reorders instances within the band[0] subtree into
// lexicographic (tile-coordinate, original-order) order, where a
// statement's tile coordinate along a band dimension it is not
// enclosed by is its diagonally *padded* coordinate (Definition 4) —
// exactly the coordinate the dependence analyzer already assigns it.
//
// That gives the legality rule, per dependence with both endpoints in
// the band[0] subtree:
//
//  * if the dependence's projection onto the loops strictly enclosing
//    band[0] is definitely lexicographically positive, it is carried
//    outside the band and tiling cannot violate it — skip;
//  * otherwise every component at a band loop position must be
//    definitely non-negative (DepEntry::definitely_non_negative).
//    Non-negative padded components make tile coordinates monotone, so
//    the destination's tile never precedes the source's, and within a
//    tile the original order is preserved.
//
// A single loop is trivially a band: strip-mining alone never reorders
// anything.
#pragma once

#include <string>
#include <vector>

#include "dependence/analyzer.hpp"
#include "instance/layout.hpp"

namespace inlt {

/// One maximal fully-permutable band: a chain of nested loops,
/// outermost first. Node pointers point into the analyzed program.
struct LoopBand {
  std::vector<const Node*> loops;
  std::vector<std::string> vars;
  std::vector<int> positions;  ///< layout positions, parallel to loops
  /// Why the band could not be extended one path level deeper; empty
  /// when the path simply ends here. Detection provenance for
  /// `inltc tile --report`.
  std::string boundary_note;

  int depth() const { return static_cast<int>(loops.size()); }
};

struct BandReport {
  /// Maximal bands in path order (outer paths first); bands that are a
  /// strict prefix of a reported band are dropped.
  std::vector<LoopBand> bands;

  /// Human-readable report: per band, the loop chain, the statements
  /// it covers and the dependence blocking its extension (if any).
  std::string to_text(const IvLayout& layout,
                      const DependenceSet& deps) const;
};

/// Detect every maximal fully-permutable band of the layout's program
/// under the given dependences (vectors in the layout's coordinates).
BandReport detect_bands(const IvLayout& layout, const DependenceSet& deps);

/// Same, with the dependence vectors overridden — the candidate-space
/// entry point: pass M·d columns in the *target* layout's coordinates
/// (target position p carries row p of M) together with the target
/// layout to detect bands of a transformed-but-not-yet-generated nest.
BandReport detect_bands(const IvLayout& layout,
                        const std::vector<Dependence>& deps,
                        const std::vector<DepVector>& vectors);

/// Is the named loop chain a fully-permutable band? Returns the empty
/// string when it is, otherwise the reason it is not (the violated
/// dependence and component) — the message behind the CLI's
/// "tiling a non-permutable band" error. Throws TransformError when
/// the vars do not name a nested loop chain of the program.
std::string band_reject_reason(const IvLayout& layout,
                               const DependenceSet& deps,
                               const std::vector<std::string>& vars);

}  // namespace inlt
