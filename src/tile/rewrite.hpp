// Strip-mine-and-interchange tiling as a pure Program → Program
// rewrite.
//
// Given a fully-permutable band L1 ⊃ ... ⊃ Lk (tile/band.hpp decides
// permutability; this file only materializes the rewrite), tiling
// replaces the band[0] subtree with
//
//   do L1T = cover_lo_1, cover_hi_1, s1·B1
//     ...
//     do LkT = cover_lo_k, cover_hi_k, sk·Bk
//       <band[0] subtree with>
//         do Li = max(LiT, orig_lo_i), min(LiT + si·Bi − si, orig_hi_i), si
//         and guards LiT <= pad <= LiT + si·Bi − 1 on every subtree
//         not enclosed by Li
//
// where cover_lo/cover_hi are cover-mode rectangular hulls of the
// band loops' ranges (band-interior variables eliminated by
// sign-directed substitution of their own hulls) *extended by the
// hulls of every pad-source variable* — the ancestor loop whose value
// diagonally pads a non-enclosed statement's coordinate. The extension
// guarantees each padded statement's guard window exists even when its
// own band loop is zero-trip, and the guard window [LiT, LiT+si·Bi−1]
// tiles the integers contiguously, so every pad value lands in exactly
// one tile.
//
// The result is an ordinary Program: the AST walker, the bytecode VM,
// the native engine and the parallel driver execute it unchanged, and
// — because tiling is a dependence-preserving reorder of statement
// instances whose bodies are untouched — bit-identically to the
// untiled original.
#pragma once

#include <string>
#include <vector>

#include "ir/ast.hpp"
#include "support/check.hpp"

namespace inlt {

/// Raised when a band cannot be tiled for structural reasons (bounds
/// too complex to hull, cover-mode band bounds, unsupported step
/// shapes). Distinct from legality: callers check permutability with
/// tile/band.hpp first.
class TileError : public Error {
 public:
  explicit TileError(const std::string& what) : Error(what) {}
};

/// What to tile: the band's loop variables (outermost first, a nested
/// chain) and the per-loop tile sizes in iterations of that loop.
struct TileSpec {
  std::vector<std::string> vars;
  std::vector<i64> sizes;  ///< same length as vars; every size >= 1
};

struct TileResult {
  Program program;
  /// Names of the generated tile loops, parallel to spec.vars. Empty
  /// when the rewrite was the identity (every size == 1).
  std::vector<std::string> tile_vars;
  bool identity = false;
};

/// Tile the band. Pure function: `p` is not modified. Throws TileError
/// on non-positive sizes, vars that are not a nested loop chain, or
/// bound shapes the hull computation does not support. Does NOT check
/// permutability — pair with detect_bands / band_reject_reason.
TileResult tile_band(const Program& p, const TileSpec& spec);

/// Map a doall partition through the rewrite: a partitioned variable
/// that is a band variable is upgraded to its tile loop (the tile
/// loop of a doall level is itself doall — a dependence between
/// different tiles along it would need a nonzero component there), so
/// the parallel driver chunks whole tiles: coarser chunks, fewer
/// barriers. Non-band variables pass through unchanged.
std::vector<std::string> tiled_partition(
    const std::vector<std::string>& partition, const TileSpec& spec,
    const std::vector<std::string>& tile_vars);

}  // namespace inlt
