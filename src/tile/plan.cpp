#include "tile/plan.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "model/tile_cost.hpp"
#include "support/check.hpp"

namespace inlt {

namespace {

constexpr i64 kDefaultTileSize = 32;
const i64 kSizeGrid[] = {8, 16, 32, 64};
constexpr size_t kFullGridMaxDepth = 3;  // 4^3 combos; uniform above

// Enumerate candidate size vectors for a band of depth k.
std::vector<std::vector<i64>> size_candidates(size_t k) {
  std::vector<std::vector<i64>> out;
  if (k <= kFullGridMaxDepth) {
    std::vector<i64> cur(k, kSizeGrid[0]);
    std::vector<size_t> idx(k, 0);
    for (;;) {
      for (size_t i = 0; i < k; ++i) cur[i] = kSizeGrid[idx[i]];
      out.push_back(cur);
      size_t i = k;
      while (i-- > 0) {
        if (++idx[i] < std::size(kSizeGrid)) break;
        idx[i] = 0;
        if (i == 0) return out;
      }
    }
  }
  for (i64 s : kSizeGrid) out.emplace_back(k, s);
  return out;
}

const LoopBand* pick_band(const BandReport& report, int requested) {
  if (report.bands.empty()) return nullptr;
  if (requested >= 0) {
    if (static_cast<size_t>(requested) >= report.bands.size())
      throw TileError("band index " + std::to_string(requested) +
                      " out of range: program has " +
                      std::to_string(report.bands.size()) +
                      " band(s); run with --report to list them");
    return &report.bands[static_cast<size_t>(requested)];
  }
  const LoopBand* best = &report.bands.front();
  for (const LoopBand& b : report.bands)
    if (b.depth() > best->depth()) best = &b;
  return best;
}

}  // namespace

TilePlan plan_tile(const IvLayout& layout, const DependenceSet& deps,
                   const TileOptions& opts, const ModelOptions& mopts) {
  TilePlan plan;
  plan.bands = detect_bands(layout, deps);

  // Resolve the band to tile.
  std::vector<const Node*> band_loops;
  if (!opts.loops.empty()) {
    const std::string reason = band_reject_reason(layout, deps, opts.loops);
    if (!reason.empty())
      throw TileError("loops are not a fully permutable band: " + reason);
    // Find the nodes by name.
    for (const std::string& v : opts.loops) {
      const Node* found = nullptr;
      walk(layout.program(),
           [&](const Node& n, const std::vector<const Node*>&) {
             if (n.is_loop() && n.var() == v) found = &n;
           });
      INLT_CHECK(found != nullptr);  // band_reject_reason resolved them
      band_loops.push_back(found);
    }
    plan.spec.vars = opts.loops;
  } else {
    const LoopBand* band = pick_band(plan.bands, opts.band);
    if (band == nullptr) {
      plan.note = "no loop bands detected";
      return plan;
    }
    band_loops = band->loops;
    plan.spec.vars = band->vars;
  }
  const size_t k = band_loops.size();

  if (!opts.sizes.empty() && opts.sizes.size() != k)
    throw TileError("tile spec needs one size per band loop (" +
                    std::to_string(k) + " loops, " +
                    std::to_string(opts.sizes.size()) + " sizes)");
  for (i64 s : opts.sizes)
    if (s < 1)
      throw TileError("tile sizes must be positive (got " +
                      std::to_string(s) + ")");

  const TileTraffic untiled =
      estimate_untiled_traffic(layout.program(), band_loops, mopts);
  plan.untiled_traffic = untiled.traffic_lines;

  if (!opts.sizes.empty()) {
    plan.spec.sizes = opts.sizes;
  } else if (opts.auto_select) {
    double best = -1;
    for (const std::vector<i64>& cand : size_candidates(k)) {
      const TileTraffic t =
          estimate_tile_traffic(layout.program(), band_loops, cand, mopts);
      // Strictly-better traffic wins; candidates arrive in
      // lexicographic order, so exact ties keep the earlier (smaller)
      // sizes.
      if (best < 0 || t.traffic_lines < best) {
        best = t.traffic_lines;
        plan.spec.sizes = cand;
      }
    }
  } else {
    plan.spec.sizes.assign(k, kDefaultTileSize);
  }

  const TileTraffic tiled = estimate_tile_traffic(
      layout.program(), band_loops, plan.spec.sizes, mopts);
  plan.tiled_traffic = tiled.traffic_lines;
  plan.footprint_lines = tiled.footprint_lines;
  plan.fits_cache = tiled.fits_cache;

  if (plan.tiled_traffic < plan.untiled_traffic || opts.force) {
    plan.applied = true;
    if (plan.tiled_traffic >= plan.untiled_traffic)
      plan.note = "model predicts no traffic reduction (forced)";
  } else {
    plan.note = "model predicts no traffic reduction";
  }
  return plan;
}

TiledProgram apply_tile(const Program& p, const TileOptions& opts,
                        const ModelOptions& mopts) {
  TiledProgram out;
  IvLayout layout(p);
  DependenceSet deps;
  try {
    deps = analyze_dependences(layout);
  } catch (const InvalidProgramError& e) {
    out.plan.note =
        std::string("program is not analyzable for tiling: ") + e.what();
    return out;
  }
  out.plan = plan_tile(layout, deps, opts, mopts);
  if (!out.plan.applied) return out;
  try {
    TileResult tr = tile_band(p, out.plan.spec);
    out.plan.tile_vars = tr.tile_vars;
    if (tr.identity) out.plan.note = "identity rewrite (all tile sizes 1)";
    out.program.emplace(std::move(tr.program));
  } catch (const TileError& e) {
    out.plan.applied = false;
    out.plan.note = e.what();
  }
  return out;
}

std::string TilePlan::to_text() const {
  std::ostringstream os;
  if (spec.vars.empty()) {
    os << "tile plan: none (" << (note.empty() ? "no band" : note) << ")\n";
    return os.str();
  }
  os << "tile plan: band";
  for (size_t i = 0; i < spec.vars.size(); ++i)
    os << (i ? ", " : " ") << spec.vars[i];
  os << " sizes";
  for (size_t i = 0; i < spec.sizes.size(); ++i)
    os << (i ? "x" : " ") << spec.sizes[i];
  os << (applied ? "" : " (not applied)") << "\n";
  auto fmt = [&os](const char* name, double v) {
    os << "  " << name << ": " << static_cast<long long>(std::llround(v))
       << " lines\n";
  };
  fmt("modeled untiled traffic", untiled_traffic);
  fmt("modeled tiled traffic", tiled_traffic);
  if (untiled_traffic > 0)
    os << "  traffic ratio: "
       << static_cast<long long>(
              std::llround(100.0 * tiled_traffic / untiled_traffic))
       << "% of untiled\n";
  fmt("per-tile footprint", footprint_lines);
  os << "  fits cache: " << (fits_cache ? "yes" : "no") << "\n";
  if (!note.empty()) os << "  note: " << note << "\n";
  return os.str();
}

}  // namespace inlt
