#include "tile/band.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "dependence/direction.hpp"
#include "support/check.hpp"

namespace inlt {

namespace {

// Statement labels inside a subtree.
void collect_labels(const Node* n, std::vector<std::string>& out) {
  if (n->is_stmt()) {
    out.push_back(n->stmt_data().label);
    return;
  }
  for (const NodePtr& c : n->children()) collect_labels(c.get(), out);
}

struct PathCollector {
  // Every root-to-deepest loop chain of the program, plus the loop
  // positions strictly enclosing each chain member (ancestors above
  // the chain's own prefix are shared with the chain).
  std::vector<std::vector<const Node*>> paths;

  void walk(const Node* n, std::vector<const Node*>& chain) {
    if (!n->is_loop()) return;
    chain.push_back(n);
    bool has_loop_child = false;
    for (const NodePtr& c : n->children()) {
      if (c->is_loop()) {
        has_loop_child = true;
        walk(c.get(), chain);
      }
    }
    if (!has_loop_child) paths.push_back(chain);
    chain.pop_back();
  }
};

struct BandContext {
  const IvLayout* layout = nullptr;
  const std::vector<Dependence>* deps = nullptr;
  const std::vector<DepVector>* vectors = nullptr;
  // Per dependence: labels of src/dst resolved once.
  // Per subtree root: the labels it contains (memoized).
  mutable std::map<const Node*, std::set<std::string>> subtree_labels;

  const std::set<std::string>& labels_of(const Node* root) const {
    auto it = subtree_labels.find(root);
    if (it != subtree_labels.end()) return it->second;
    std::vector<std::string> v;
    collect_labels(root, v);
    return subtree_labels.emplace(root, std::set<std::string>(v.begin(), v.end()))
        .first->second;
  }
};

// Positions of the loops strictly enclosing `chain[first]`: the chain
// prefix plus nothing else (chains start at root loops).
std::vector<int> enclosing_positions(const IvLayout& layout,
                                     const std::vector<const Node*>& chain,
                                     size_t first) {
  std::vector<int> out;
  for (size_t a = 0; a < first; ++a)
    out.push_back(layout.loop_position(chain[a]->var()));
  return out;
}

// Can the window chain[first..last] absorb component checks for the
// dependence at index di? Returns true when the dependence is
// irrelevant to the window (endpoint outside the subtree, or carried
// by an enclosing loop).
bool skip_dependence(const BandContext& ctx, const Dependence& d,
                     const DepVector& v, const Node* band_root,
                     const std::vector<int>& enclosing) {
  const std::set<std::string>& labels = ctx.labels_of(band_root);
  if (!labels.count(d.src) || !labels.count(d.dst)) return true;
  if (!enclosing.empty() &&
      lex_status(project_dep(v, enclosing)) == LexStatus::kPositive)
    return true;
  return false;
}

// First violation of the full-permutability condition for the window
// chain[first..last], or empty when the window is a band. `reason`
// format matches band_reject_reason's contract.
std::string window_violation(const BandContext& ctx,
                             const std::vector<const Node*>& chain,
                             size_t first, size_t last) {
  const IvLayout& layout = *ctx.layout;
  const std::vector<int> enclosing = enclosing_positions(layout, chain, first);
  std::vector<int> band_pos;
  for (size_t i = first; i <= last; ++i)
    band_pos.push_back(layout.loop_position(chain[i]->var()));

  for (size_t di = 0; di < ctx.deps->size(); ++di) {
    const Dependence& d = (*ctx.deps)[di];
    const DepVector& v = (*ctx.vectors)[di];
    if (skip_dependence(ctx, d, v, chain[first], enclosing)) continue;
    for (size_t i = first; i <= last; ++i) {
      const DepEntry& e = v[static_cast<size_t>(band_pos[i - first])];
      if (!e.definitely_non_negative()) {
        std::ostringstream os;
        os << "dependence #" << di << " (" << dep_kind_name(d.kind) << " "
           << d.src << " -> " << d.dst << " on " << d.array
           << ") has component " << e.to_string() << " at loop "
           << chain[i]->var();
        return os.str();
      }
    }
  }
  return {};
}

BandReport detect_impl(const BandContext& ctx) {
  const IvLayout& layout = *ctx.layout;
  PathCollector pc;
  std::vector<const Node*> chain;
  for (const NodePtr& r : layout.program().roots()) pc.walk(r.get(), chain);

  BandReport report;
  std::set<std::vector<const Node*>> seen;
  for (const std::vector<const Node*>& path : pc.paths) {
    // Maximal windows by two-pointer. Validity of [i..j] implies
    // validity of [i+1..j] (a deeper start has more enclosing loops,
    // so the skip rule only widens, and fewer components to check),
    // so the farthest legal end is monotone in the start: [i..maxj(i)]
    // is maximal exactly when maxj strictly advanced. A single loop is
    // always a band (strip-mining preserves order), so every window
    // has depth >= 1.
    size_t j = 0;
    bool have_prev = false;
    size_t prev_maxj = 0;
    for (size_t i = 0; i < path.size(); ++i) {
      if (j < i) j = i;
      std::string note;
      while (j + 1 < path.size()) {
        note = window_violation(ctx, path, i, j + 1);
        if (!note.empty()) break;
        ++j;
      }
      if (have_prev && prev_maxj >= j) continue;  // contained in previous
      have_prev = true;
      prev_maxj = j;
      LoopBand band;
      for (size_t k = i; k <= j; ++k) {
        band.loops.push_back(path[k]);
        band.vars.push_back(path[k]->var());
        band.positions.push_back(layout.loop_position(path[k]->var()));
      }
      band.boundary_note = note;
      if (seen.insert(band.loops).second)
        report.bands.push_back(std::move(band));
    }
  }

  // Drop bands that are a strict prefix of another reported band.
  // Decide first, move after: moving while comparing would leave
  // moved-from empty chains matching everything.
  std::vector<bool> drop(report.bands.size(), false);
  for (size_t i = 0; i < report.bands.size(); ++i) {
    const LoopBand& b = report.bands[i];
    for (const LoopBand& o : report.bands) {
      if (o.loops.size() > b.loops.size() &&
          std::equal(b.loops.begin(), b.loops.end(), o.loops.begin())) {
        drop[i] = true;
        break;
      }
    }
  }
  std::vector<LoopBand> kept;
  for (size_t i = 0; i < report.bands.size(); ++i)
    if (!drop[i]) kept.push_back(std::move(report.bands[i]));
  report.bands = std::move(kept);
  return report;
}

}  // namespace

BandReport detect_bands(const IvLayout& layout, const DependenceSet& deps) {
  std::vector<DepVector> vectors;
  vectors.reserve(deps.deps.size());
  for (const Dependence& d : deps.deps) vectors.push_back(d.vector);
  return detect_bands(layout, deps.deps, vectors);
}

BandReport detect_bands(const IvLayout& layout,
                        const std::vector<Dependence>& deps,
                        const std::vector<DepVector>& vectors) {
  INLT_CHECK_MSG(deps.size() == vectors.size(),
                 "detect_bands: one vector per dependence required");
  for (const DepVector& v : vectors)
    INLT_CHECK_MSG(static_cast<int>(v.size()) == layout.size(),
                   "detect_bands: vector width must match the layout");
  BandContext ctx;
  ctx.layout = &layout;
  ctx.deps = &deps;
  ctx.vectors = &vectors;
  return detect_impl(ctx);
}

std::string band_reject_reason(const IvLayout& layout,
                               const DependenceSet& deps,
                               const std::vector<std::string>& vars) {
  if (vars.empty())
    throw TransformError("band_reject_reason: empty loop chain");
  // Resolve the chain: each var must name a loop nested (not
  // necessarily immediately) inside the previous one.
  PathCollector pc;
  std::vector<const Node*> walk_chain;
  for (const NodePtr& r : layout.program().roots()) pc.walk(r.get(), walk_chain);
  for (const std::vector<const Node*>& path : pc.paths) {
    // Match vars as a subsequence of this path starting anywhere.
    for (size_t start = 0; start < path.size(); ++start) {
      if (path[start]->var() != vars[0]) continue;
      std::vector<const Node*> chain;
      size_t pi = start;
      size_t vi = 0;
      while (pi < path.size() && vi < vars.size()) {
        if (path[pi]->var() == vars[vi]) {
          chain.push_back(path[pi]);
          ++vi;
        }
        ++pi;
      }
      if (vi != vars.size()) continue;
      // Found the chain on this path. Window = the contiguous path
      // segment from the first to the last chain member (intermediate
      // loops are part of the subtree, not of the band).
      std::vector<DepVector> vectors;
      for (const Dependence& d : deps.deps) vectors.push_back(d.vector);
      BandContext ctx;
      ctx.layout = &layout;
      ctx.deps = &deps.deps;
      ctx.vectors = &vectors;
      // Check non-negativity at exactly the named loops.
      const std::vector<int> enclosing =
          enclosing_positions(layout, path, start);
      for (size_t di = 0; di < deps.deps.size(); ++di) {
        const Dependence& d = deps.deps[di];
        const DepVector& v = vectors[di];
        if (skip_dependence(ctx, d, v, chain[0], enclosing)) continue;
        for (const Node* loop : chain) {
          const DepEntry& e =
              v[static_cast<size_t>(layout.loop_position(loop->var()))];
          if (!e.definitely_non_negative()) {
            std::ostringstream os;
            os << "dependence #" << di << " (" << dep_kind_name(d.kind)
               << " " << d.src << " -> " << d.dst << " on " << d.array
               << ") has component " << e.to_string() << " at loop "
               << loop->var();
            return os.str();
          }
        }
      }
      return {};
    }
  }
  throw TransformError("band loops do not form a nested chain: " +
                       [&] {
                         std::string s;
                         for (const std::string& v : vars)
                           s += (s.empty() ? "" : ", ") + v;
                         return s;
                       }());
}

std::string BandReport::to_text(const IvLayout& layout,
                                const DependenceSet& deps) const {
  (void)deps;
  std::ostringstream os;
  if (bands.empty()) {
    os << "no loop bands detected\n";
    return os.str();
  }
  for (size_t bi = 0; bi < bands.size(); ++bi) {
    const LoopBand& b = bands[bi];
    os << "band " << bi << ": loops";
    for (size_t i = 0; i < b.vars.size(); ++i)
      os << (i ? ", " : " ") << b.vars[i];
    os << " (depth " << b.depth() << ") — fully permutable\n";
    std::vector<std::string> labels;
    collect_labels(b.loops.front(), labels);
    os << "  covers statements:";
    for (size_t i = 0; i < labels.size(); ++i)
      os << (i ? ", " : " ") << labels[i];
    os << "\n";
    if (!b.boundary_note.empty())
      os << "  extension blocked: " << b.boundary_note << "\n";
  }
  (void)layout;
  return os.str();
}

}  // namespace inlt
