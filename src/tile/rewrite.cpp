#include "tile/rewrite.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <sstream>

#include "support/checked_int.hpp"

namespace inlt {

namespace {

// Hard cap on cover-bound terms after hull expansion; a band whose
// rectangular hull needs more is rejected rather than exploded.
constexpr size_t kMaxHullTerms = 16;

struct LoopInfo {
  Node* node = nullptr;
  std::vector<Node*> ancestors;  // enclosing loops, outermost first
};

// Collect every loop node with its ancestor chain.
void collect_loops(Node* n, std::vector<Node*>& stack,
                   std::map<std::string, LoopInfo>& out) {
  if (!n->is_loop()) return;
  out[n->var()] = LoopInfo{n, stack};
  stack.push_back(n);
  for (NodePtr& c : n->mutable_children()) collect_loops(c.get(), stack, out);
  stack.pop_back();
}

void collect_idents(const Node* n, std::set<std::string>& out) {
  if (n->is_loop()) {
    out.insert(n->var());
    for (const NodePtr& c : n->children()) collect_idents(c.get(), out);
  }
}

// The rectangular hull of one eliminated variable's range: cover-mode
// term lists (lower = MIN of terms, upper = MAX of terms) free of
// every eliminated variable. Sound, not tight: point-loop clamps and
// pad guards restore exactness, extra empty tiles execute nothing.
struct Hull {
  std::vector<AffineExpr> lo;
  std::vector<AffineExpr> hi;
};

class HullBuilder {
 public:
  HullBuilder(const std::map<std::string, LoopInfo>& loops,
              std::set<std::string> eliminated)
      : loops_(loops), eliminated_(std::move(eliminated)) {}

  const Hull& hull(const std::string& var) {
    auto it = memo_.find(var);
    if (it != memo_.end()) return it->second;
    INLT_CHECK_MSG(!in_progress_.count(var),
                   "cyclic loop bound reference");  // validate() precludes it
    in_progress_.insert(var);
    const Node* loop = loops_.at(var).node;
    Hull h;
    h.lo = expand_bound(loop->lower(), /*lower=*/true, var);
    h.hi = expand_bound(loop->upper(), /*lower=*/false, var);
    in_progress_.erase(var);
    return memo_.emplace(var, std::move(h)).first->second;
  }

  // Eliminate every eliminated-variable reference from `e`, in the
  // given direction: the result terms' MIN (lower) / MAX (upper)
  // bounds e's range over the eliminated variables' ranges.
  std::vector<AffineExpr> expand_expr(const AffineExpr& e, bool lower,
                                      const std::string& context_var) {
    // Find an eliminated variable referenced by e.
    const std::string* var = nullptr;
    i64 coef = 0;
    for (const auto& [name, c] : e.terms()) {
      if (eliminated_.count(name)) {
        var = &name;
        coef = c;
        break;
      }
    }
    if (!var) return {e};
    const Hull& h = hull(*var);
    // coef > 0: the extreme of e in the `lower` direction uses the
    // same-direction extreme of var; coef < 0 uses the opposite.
    const std::vector<AffineExpr>& repl =
        (coef > 0) == lower ? h.lo : h.hi;
    if (repl.empty())
      throw TileError("cannot hull bounds of loop " + context_var +
                      ": no usable bound for " + *var);
    std::vector<AffineExpr> out;
    for (const AffineExpr& r : repl) {
      AffineExpr substituted = e.substitute(*var, r);
      std::vector<AffineExpr> rec = expand_expr(substituted, lower, context_var);
      out.insert(out.end(), rec.begin(), rec.end());
      if (out.size() > kMaxHullTerms)
        throw TileError("bounds of loop " + context_var +
                        " are too complex to tile (hull exceeds " +
                        std::to_string(kMaxHullTerms) + " terms)");
    }
    return out;
  }

 private:
  std::vector<AffineExpr> expand_bound(const Bound& b, bool lower,
                                       const std::string& var) {
    if (b.mode != Bound::Mode::kTight)
      throw TileError("loop " + var +
                      " has cover-mode bounds; tiling such a band is "
                      "not supported");
    std::vector<AffineExpr> out;
    for (const BoundTerm& t : b.terms) {
      bool refs_eliminated = false;
      for (const auto& [name, c] : t.expr.terms()) {
        (void)c;
        if (eliminated_.count(name)) refs_eliminated = true;
      }
      if (t.den != 1 && refs_eliminated)
        throw TileError("loop " + var +
                        " has a divided bound over band-interior "
                        "variables; tiling is not supported");
      if (t.den != 1)
        throw TileError("loop " + var +
                        " has a divided bound; tiling is not supported");
      std::vector<AffineExpr> terms = expand_expr(t.expr, lower, var);
      out.insert(out.end(), terms.begin(), terms.end());
      if (out.size() > kMaxHullTerms)
        throw TileError("bounds of loop " + var +
                        " are too complex to tile (hull exceeds " +
                        std::to_string(kMaxHullTerms) + " terms)");
    }
    return out;
  }

  const std::map<std::string, LoopInfo>& loops_;
  std::set<std::string> eliminated_;
  std::map<std::string, Hull> memo_;
  std::set<std::string> in_progress_;
};

// All loop vars inside a subtree (including the root loop itself).
void subtree_loop_vars(const Node* n, std::set<std::string>& out) {
  if (!n->is_loop()) return;
  out.insert(n->var());
  for (const NodePtr& c : n->children()) subtree_loop_vars(c.get(), out);
}

// Does the subtree rooted at `n` contain the node `target`?
bool contains(const Node* n, const Node* target) {
  if (n == target) return true;
  if (!n->is_loop()) return false;
  for (const NodePtr& c : n->children())
    if (contains(c.get(), target)) return true;
  return false;
}

// Does the subtree contain at least one statement?
bool has_statement(const Node* n) {
  if (n->is_stmt()) return true;
  for (const NodePtr& c : n->children())
    if (has_statement(c.get())) return true;
  return false;
}

void dedup_terms(std::vector<AffineExpr>& terms) {
  std::vector<AffineExpr> out;
  for (AffineExpr& t : terms)
    if (std::find(out.begin(), out.end(), t) == out.end())
      out.push_back(std::move(t));
  terms = std::move(out);
}

Bound cover_bound(std::vector<AffineExpr> terms) {
  dedup_terms(terms);
  std::vector<BoundTerm> bt;
  for (AffineExpr& t : terms) bt.emplace_back(std::move(t));
  return Bound(std::move(bt), Bound::Mode::kCover);
}

}  // namespace

TileResult tile_band(const Program& p, const TileSpec& spec) {
  const size_t k = spec.vars.size();
  if (k == 0) throw TileError("empty tile band");
  if (spec.sizes.size() != k)
    throw TileError("tile spec needs one size per band loop (" +
                    std::to_string(k) + " loops, " +
                    std::to_string(spec.sizes.size()) + " sizes)");
  for (size_t i = 0; i < k; ++i)
    if (spec.sizes[i] < 1)
      throw TileError("tile size for loop " + spec.vars[i] +
                      " must be positive (got " +
                      std::to_string(spec.sizes[i]) + ")");

  TileResult result;
  result.program = p;  // deep copy (Program copy ctor clones)
  if (std::all_of(spec.sizes.begin(), spec.sizes.end(),
                  [](i64 b) { return b == 1; })) {
    // Every tile holds one iteration: the identity rewrite.
    result.identity = true;
    return result;
  }

  // -- locate the band chain in the copy ----------------------------
  std::map<std::string, LoopInfo> loops;
  {
    std::vector<Node*> stack;
    for (NodePtr& r : result.program.mutable_roots())
      collect_loops(r.get(), stack, loops);
  }
  std::vector<Node*> band;
  for (size_t i = 0; i < k; ++i) {
    auto it = loops.find(spec.vars[i]);
    if (it == loops.end())
      throw TileError("no loop named " + spec.vars[i]);
    Node* n = it->second.node;
    if (i > 0 && !contains(band.back(), n))
      throw TileError("band loops are not a nested chain: " + spec.vars[i] +
                      " is not inside " + spec.vars[i - 1]);
    if (n->step() < 1)
      throw TileError("loop " + spec.vars[i] +
                      " has a non-positive step; tiling is not supported");
    band.push_back(n);
  }
  Node* band_root = band.front();

  // -- rectangular hulls over the band-subtree variables -------------
  std::set<std::string> eliminated;
  subtree_loop_vars(band_root, eliminated);
  HullBuilder hulls(loops, eliminated);

  // Pad sources per band loop: ancestors A of L_i inside the band
  // subtree that have a child subtree without L_i but with statements.
  // Those subtrees' statements are diagonally padded by A's value at
  // L_i's position, so (a) the tile range must cover A's range and
  // (b) the subtree gets the guard window of L_i's tile.
  struct GuardSite {
    Node* node;         // subtree root the guards attach to
    std::string pad;    // A.var — the pad-source variable
  };
  std::vector<std::vector<GuardSite>> guard_sites(k);
  std::vector<std::set<std::string>> pad_vars(k);
  for (size_t i = 0; i < k; ++i) {
    Node* li = band[i];
    // Ancestors of L_i from band_root (inclusive) downward.
    std::vector<Node*> chain = loops.at(li->var()).ancestors;
    auto it = std::find(chain.begin(), chain.end(), band_root);
    std::vector<Node*> inner(it, chain.end());
    for (Node* a : inner) {
      for (NodePtr& c : a->mutable_children()) {
        if (contains(c.get(), li)) continue;
        if (!has_statement(c.get())) continue;
        guard_sites[i].push_back(GuardSite{c.get(), a->var()});
        pad_vars[i].insert(a->var());
      }
    }
  }

  // -- tile loop bounds ----------------------------------------------
  std::set<std::string> taken;
  for (const NodePtr& r : result.program.roots()) collect_idents(r.get(), taken);
  for (const std::string& prm : result.program.params()) taken.insert(prm);

  std::vector<std::string> tile_vars(k);
  std::vector<Bound> tlo(k), thi(k);
  std::vector<i64> tstep(k);
  for (size_t i = 0; i < k; ++i) {
    Node* li = band[i];
    const i64 s = li->step();
    const i64 b = spec.sizes[i];
    if (s > 1) {
      // Alignment: tile origins must hit the loop's own lattice
      // {lo + m·s}, so the lower bound must be a single term,
      // invariant in the band subtree, and no pad extension may move
      // the cover start off-phase.
      if (!li->lower().single())
        throw TileError("loop " + li->var() +
                        " has a non-unit step and a multi-term lower "
                        "bound; tiling is not supported");
      const BoundTerm& lt = li->lower().terms.front();
      for (const auto& [name, c] : lt.expr.terms()) {
        (void)c;
        if (eliminated.count(name))
          throw TileError("loop " + li->var() +
                          " has a non-unit step and a band-dependent "
                          "lower bound; tiling is not supported");
      }
      if (!pad_vars[i].empty())
        throw TileError("loop " + li->var() +
                        " has a non-unit step and imperfect statements "
                        "between band levels; tiling is not supported");
    }
    std::vector<AffineExpr> lo_terms;
    std::vector<AffineExpr> hi_terms;
    {
      const Hull& h = hulls.hull(li->var());
      lo_terms.insert(lo_terms.end(), h.lo.begin(), h.lo.end());
      hi_terms.insert(hi_terms.end(), h.hi.begin(), h.hi.end());
    }
    for (const std::string& pv : pad_vars[i]) {
      const Hull& h = hulls.hull(pv);
      lo_terms.insert(lo_terms.end(), h.lo.begin(), h.lo.end());
      hi_terms.insert(hi_terms.end(), h.hi.begin(), h.hi.end());
    }
    if (lo_terms.size() > kMaxHullTerms || hi_terms.size() > kMaxHullTerms)
      throw TileError("bounds of loop " + li->var() +
                      " are too complex to tile (hull exceeds " +
                      std::to_string(kMaxHullTerms) + " terms)");
    tlo[i] = cover_bound(std::move(lo_terms));
    thi[i] = cover_bound(std::move(hi_terms));
    tstep[i] = checked_mul(s, b);

    std::string name = li->var() + "T";
    while (taken.count(name)) name += "_";
    taken.insert(name);
    tile_vars[i] = name;
  }

  // -- rewrite point loops and attach guards -------------------------
  for (size_t i = 0; i < k; ++i) {
    Node* li = band[i];
    const i64 s = li->step();
    const i64 b = spec.sizes[i];
    const AffineExpr tv = AffineExpr::variable(tile_vars[i]);

    // Lower: max(T_i, original terms). Upper: min(T_i + s·B − s,
    // original terms). Original dens are preserved — they are kept as
    // terms, never substituted into.
    std::vector<BoundTerm> lo = li->lower().terms;
    lo.insert(lo.begin(), BoundTerm(tv));
    std::vector<BoundTerm> hi = li->upper().terms;
    AffineExpr last = tv;
    last.add_constant(checked_sub(checked_mul(s, b), s));
    hi.insert(hi.begin(), BoundTerm(last));
    li->set_bounds(Bound(std::move(lo), Bound::Mode::kTight),
                   Bound(std::move(hi), Bound::Mode::kTight), s);

    // Guard window [T_i, T_i + s·B − 1] on every non-enclosed subtree:
    // contiguous over the integers, so each pad value lands in exactly
    // one tile.
    for (const GuardSite& gs : guard_sites[i]) {
      AffineExpr pad = AffineExpr::variable(gs.pad);
      Guard g1;
      g1.kind = Guard::Kind::kGeZero;
      g1.expr = pad - tv;  // pad >= T_i
      Guard g2;
      g2.kind = Guard::Kind::kGeZero;
      g2.expr = tv - pad;  // T_i + s·B − 1 >= pad
      g2.expr.add_constant(checked_sub(checked_mul(s, b), 1));
      gs.node->add_guard(std::move(g1));
      gs.node->add_guard(std::move(g2));
    }
  }

  // -- wrap the band subtree in the tile loops -----------------------
  // Find the owning slot of band_root.
  std::vector<NodePtr>* slot_vec = nullptr;
  size_t slot_idx = 0;
  {
    std::function<bool(std::vector<NodePtr>&)> find =
        [&](std::vector<NodePtr>& vec) {
          for (size_t ci = 0; ci < vec.size(); ++ci) {
            if (vec[ci].get() == band_root) {
              slot_vec = &vec;
              slot_idx = ci;
              return true;
            }
            if (vec[ci]->is_loop() && find(vec[ci]->mutable_children()))
              return true;
          }
          return false;
        };
    find(result.program.mutable_roots());
  }
  INLT_CHECK(slot_vec != nullptr);

  NodePtr detached = std::move((*slot_vec)[slot_idx]);
  for (size_t i = k; i-- > 0;) {
    NodePtr t = Node::loop(tile_vars[i], tlo[i], thi[i], tstep[i]);
    t->add_child(std::move(detached));
    detached = std::move(t);
  }
  (*slot_vec)[slot_idx] = std::move(detached);

  result.program.validate();
  result.tile_vars = std::move(tile_vars);
  return result;
}

std::vector<std::string> tiled_partition(
    const std::vector<std::string>& partition, const TileSpec& spec,
    const std::vector<std::string>& tile_vars) {
  if (tile_vars.empty()) return partition;  // identity rewrite
  INLT_CHECK(tile_vars.size() == spec.vars.size());
  std::vector<std::string> out;
  for (const std::string& v : partition) {
    auto it = std::find(spec.vars.begin(), spec.vars.end(), v);
    if (it == spec.vars.end()) {
      out.push_back(v);
    } else {
      out.push_back(tile_vars[static_cast<size_t>(it - spec.vars.begin())]);
    }
  }
  return out;
}

}  // namespace inlt
