// Exact legality via integer linear programming — an extension beyond
// the paper.
//
// §1 frames the design space: general frameworks need "relatively
// expensive tests based on techniques like parametric integer
// programming", while this paper trades generality for cheap
// distance/direction tests. Direction vectors are per-position convex
// hulls, so they lose cross-position correlation: a transformation row
// like t = J + I - K can be legal even though t·d straddles zero on
// the hulls. This module re-runs Definition 6 exactly: for every
// conflicting access pair and ordering disjunct, it asks the Omega
// solver directly whether the transformed destination can fail to
// follow the transformed source. Costlier than the interval test
// (bench_framework quantifies the gap) but complete for fixed
// matrices — it accepts, for instance, the bordered Cholesky forms
// that hull-based legality cannot (see test_exact_legality.cpp).
#pragma once

#include <map>

#include "dependence/system.hpp"
#include "support/diag.hpp"
#include "transform/block_structure.hpp"

namespace inlt {

struct ExactLegalityResult {
  std::vector<std::string> violations;
  /// Structured form of `violations` (index-aligned): kLegality-stage
  /// errors naming the access pair and array.
  std::vector<Diagnostic> diagnostics;
  /// Per statement: its unsatisfied self-dependences (source and
  /// target mapped to the same instance), projected onto the
  /// statement's own loop positions — the input Fig 7's Complete
  /// needs for augmentation.
  std::map<std::string, std::vector<DepVector>> unsatisfied_self;

  bool legal() const { return violations.empty(); }
};

/// Definition 6, decided exactly per conflicting access pair.
ExactLegalityResult check_legality_exact(const IvLayout& src,
                                         const IntMat& m,
                                         const AstRecovery& rec,
                                         PadMode pad = PadMode::kDiagonal);

}  // namespace inlt
