// Completion procedure for imperfectly nested loops (§6).
//
// Given the dependence matrix and a partial transformation — desired
// rows for the outermost target loops — the procedure appends rows for
// the remaining loops and chooses a statement reordering per AST node
// so that every dependence is satisfied by a loop or by syntactic
// order. It generalizes Li & Pingali's completion [10] to the
// block-structured matrices of this framework: loop rows are chosen
// greedily from unit candidates at dependence heights, and the child
// permutations come from a topological sort of the syntactic-order
// constraints that zero projections impose.
#pragma once

#include <optional>

#include "transform/legality.hpp"

namespace inlt {

struct CompletionOptions {
  PadMode pad = PadMode::kDiagonal;
};

struct CompletionResult {
  IntMat matrix;       ///< the completed transformation (legal)
  AstRecovery recovery;
  LegalityResult legality;
};

/// Complete a partial transformation. `partial_loop_rows[i]` is the
/// desired row (over source instance-vector positions) for the i-th
/// target loop in source-layout loop order; pass fewer rows than loops
/// to let the procedure choose the rest. Throws TransformError when no
/// completion exists (a partial row reverses a dependence, or the
/// syntactic-order constraints are cyclic).
CompletionResult complete_transformation(
    const IvLayout& src, const DependenceSet& deps,
    const std::vector<IntVec>& partial_loop_rows,
    const CompletionOptions& opts = {});

}  // namespace inlt
