// Constructors for the transformation matrices of §4: permutation,
// reversal, skewing, scaling, alignment, statement reordering, loop
// distribution and loop jamming.
//
// Square transformations map one instance-vector space to itself (the
// AST shape is preserved up to child reordering); distribution and
// jamming are non-square and also produce the target program.
#pragma once

#include "dependence/analyzer.hpp"
#include "instance/layout.hpp"
#include "linalg/matrix.hpp"

namespace inlt {

/// Interchange two loops: the permutation matrix swapping their
/// instance-vector positions (§4.1's first example).
IntMat loop_interchange(const IvLayout& layout, const std::string& a,
                        const std::string& b);

/// General loop permutation: `order[i]` names the loop whose values
/// land in the i-th loop position (loop positions enumerated in layout
/// order). Must be a permutation of all loop variables.
IntMat loop_permutation(const IvLayout& layout,
                        const std::vector<std::string>& order);

/// Reversal: identity with -1 at the loop's diagonal entry.
IntMat loop_reversal(const IvLayout& layout, const std::string& var);

/// Scaling: identity with `factor` (>= 1) at the loop's diagonal entry.
IntMat loop_scaling(const IvLayout& layout, const std::string& var,
                    i64 factor);

/// Skewing `target` by `factor` times `source` (§4.1's second example:
/// skewing the outer loop by the inner is loop_skew(.., "I", "J", -1)).
IntMat loop_skew(const IvLayout& layout, const std::string& target,
                 const std::string& source, i64 factor);

/// Statement reordering (§4.2): permute the children of `parent_var`'s
/// loop (or of the program root when parent_var is empty). `perm[old]`
/// = new child index. The matrix swaps edge positions and moves the
/// child subtree blocks accordingly (Fig 5's block structure).
IntMat statement_reorder(const IvLayout& layout,
                         const std::string& parent_var,
                         const std::vector<int>& perm);

/// Statement alignment (§4.3): identity plus `offset` at (row = loop
/// position, column = the statement's deepest path-edge position), so
/// instances of that statement shift by `offset` in the loop while
/// other statements are untouched. The statement must have a path edge
/// (alignment of the only statement of a perfect nest is a plain loop
/// shift, which is not a linear map on instance vectors).
///
/// Note: the paper's §4.3 display puts the extra entry in the *other*
/// statement's edge column, which contradicts its own before/after
/// vectors; we match the vectors.
IntMat statement_alignment(const IvLayout& layout, const std::string& label,
                           const std::string& var, i64 offset);

/// Result of a structural (non-square) transformation.
struct StructuralTransform {
  IntMat matrix;    ///< target-size x source-size
  Program target;   ///< the transformed program (bounds copied, then
                    ///< adjusted by the caller / code generator)
};

/// Loop distribution (§4.2): split the loop `var` into two copies, the
/// first receiving children [0, split) and the second [split, m).
/// The loop must be a root of the program (the paper distributes
/// outermost loops; distributing an inner loop changes the parent
/// node's arity, which the instance-vector formulation models the same
/// way — we support root loops, which covers the paper's uses).
StructuralTransform loop_distribution(const IvLayout& layout,
                                      const std::string& var, int split);

/// Loop jamming (§4.2): fuse two adjacent root loops `first` and
/// `second` into one (the inverse of distribution). The fused loop
/// takes `first`'s variable name and bounds.
StructuralTransform loop_jamming(const IvLayout& layout,
                                 const std::string& first,
                                 const std::string& second);

/// §1: "loop distribution is not always legal; in particular, it is
/// not legal in any of the matrix factorization codes." Distribution
/// of root loop `var` at `split` runs the first child group entirely
/// before the second, so it is legal iff no dependence runs from a
/// statement in the second group to one in the first. Returns a
/// diagnostic naming the offending dependence, empty when legal.
std::string check_distribution_legality(const IvLayout& layout,
                                        const DependenceSet& deps,
                                        const std::string& var, int split);

}  // namespace inlt
