#include "transform/per_statement.hpp"

#include <algorithm>

#include "linalg/gauss.hpp"
#include "support/check.hpp"

namespace inlt {

namespace {

// IV = A_S * I_S + b_S for statement `label` in the source layout.
void statement_embedding(const IvLayout& src, const std::string& label,
                         PadMode pad, IntMat* a_s, IntVec* b_s) {
  const IvLayout::StmtInfo& info = src.stmt_info(label);
  int n = src.size();
  int k = static_cast<int>(info.loop_positions.size());
  *a_s = IntMat(n, k);
  *b_s = IntVec(n, 0);
  for (int j = 0; j < k; ++j) (*a_s)(info.loop_positions[j], j) = 1;
  for (int e : info.path_edge_positions) (*b_s)[e] = 1;
  if (pad == PadMode::kDiagonal) {
    for (size_t q = 0; q < info.padded_positions.size(); ++q) {
      int srcidx = info.pad_source[q];
      if (srcidx < 0) srcidx = k > 0 ? 0 : -1;
      if (srcidx >= 0) (*a_s)(info.padded_positions[q], srcidx) = 1;
    }
  }
}

}  // namespace

PerStatement per_statement_transform(const IvLayout& src,
                                     const AstRecovery& rec, const IntMat& m,
                                     const std::string& label, PadMode pad) {
  IntMat a_s;
  IntVec b_s;
  statement_embedding(src, label, pad, &a_s, &b_s);
  IntMat ma = mat_mul(m, a_s);
  IntVec mb = mat_vec(m, b_s);
  const auto& tinfo = rec.target_layout->stmt_info(label);
  PerStatement out;
  out.matrix = IntMat(static_cast<int>(tinfo.loop_positions.size()),
                      a_s.cols());
  out.offset.resize(tinfo.loop_positions.size());
  for (size_t r = 0; r < tinfo.loop_positions.size(); ++r) {
    int p = tinfo.loop_positions[r];
    for (int c = 0; c < a_s.cols(); ++c)
      out.matrix(static_cast<int>(r), c) = ma(p, c);
    out.offset[r] = mb[p];
  }
  return out;
}

IntMat complete_rows(const IntMat& t_s, std::vector<DepVector> d_s) {
  int k = t_s.cols();
  IntMat t = t_s;
  int r = rank(t);

  // Step 1 (Fig 7 lines 3-12): unit rows at dependence heights.
  while (!d_s.empty() && r < k) {
    // Height of the whole set: the first position at which some vector
    // is non-zero; by Theorem 1 that entry is positive for dependence
    // projections.
    int h = -1;
    for (const DepVector& d : d_s) {
      int fh = -1;
      for (size_t q = 0; q < d.size(); ++q)
        if (!d[q].is_zero()) {
          fh = static_cast<int>(q);
          break;
        }
      INLT_CHECK_MSG(fh >= 0, "unsatisfied dependence projected to zero");
      if (h < 0 || fh < h) h = fh;
    }
    // Sanity: a dependence's leading entry must be definitely positive
    // for the appended unit row to satisfy it.
    for (const DepVector& d : d_s) {
      int fh = -1;
      for (size_t q = 0; q < d.size(); ++q)
        if (!d[q].is_zero()) {
          fh = static_cast<int>(q);
          break;
        }
      if (fh == h)
        INLT_CHECK_MSG(d[h].definitely_positive(),
                       "leading entry of an unsatisfied self-dependence is "
                       "not provably positive");
    }
    IntVec e(k, 0);
    e[h] = 1;
    t.append_row(e);
    int nr = rank(t);
    INLT_CHECK_MSG(nr > r, "height row did not increase rank");
    r = nr;
    // Delete all vectors of height h.
    std::vector<DepVector> rest;
    for (DepVector& d : d_s) {
      int fh = -1;
      for (size_t q = 0; q < d.size(); ++q)
        if (!d[q].is_zero()) {
          fh = static_cast<int>(q);
          break;
        }
      if (fh != h) rest.push_back(std::move(d));
    }
    d_s = std::move(rest);
  }
  INLT_CHECK_MSG(d_s.empty(),
                 "rank reached k with unsatisfied dependences remaining");

  // Step 2 (lines 14-16): nullspace rows to reach full rank.
  if (r < k) {
    for (const IntVec& v : integer_nullspace(t)) t.append_row(v);
    INLT_CHECK(rank(t) == k);
  }
  return t;
}

std::vector<StatementPlan> plan_statements_from_self(
    const IvLayout& src, const IntMat& m, const AstRecovery& rec,
    const std::map<std::string, std::vector<DepVector>>& unsatisfied_self,
    PadMode pad) {
  std::vector<StatementPlan> plans;
  for (const std::string& label : src.stmt_labels()) {
    const IvLayout::StmtInfo& info = src.stmt_info(label);
    int k = static_cast<int>(info.loop_positions.size());

    PerStatement ps = per_statement_transform(src, rec, m, label, pad);

    std::vector<DepVector> d_s;
    auto it = unsatisfied_self.find(label);
    if (it != unsatisfied_self.end()) d_s = it->second;

    StatementPlan plan;
    plan.label = label;
    plan.num_tree_rows = ps.matrix.rows();
    plan.t_full = complete_rows(ps.matrix, std::move(d_s));
    plan.offset_full = ps.offset;
    plan.offset_full.resize(plan.t_full.rows(), 0);
    plan.nonsingular_rows = independent_row_indices(plan.t_full);
    INLT_CHECK_MSG(static_cast<int>(plan.nonsingular_rows.size()) == k,
                   "N_S is not k x k for statement " + label);
    plans.push_back(std::move(plan));
  }
  return plans;
}

std::vector<StatementPlan> plan_statements(const IvLayout& src,
                                           const DependenceSet& deps,
                                           const IntMat& m,
                                           const AstRecovery& rec,
                                           const LegalityResult& legality,
                                           PadMode pad) {
  INLT_CHECK_MSG(legality.legal(), "cannot plan an illegal transformation");
  // Project the unsatisfied self-dependences onto each statement's own
  // loop entries.
  std::map<std::string, std::vector<DepVector>> self;
  for (int idx : legality.unsatisfied) {
    const Dependence& d = deps.deps[idx];
    const IvLayout::StmtInfo& info = src.stmt_info(d.src);
    self[d.src].push_back(project_dep(d.vector, info.loop_positions));
  }
  return plan_statements_from_self(src, m, rec, self, pad);
}

}  // namespace inlt
