#include "transform/legality.hpp"

#include <sstream>

#include "instance/program_order.hpp"
#include "support/stats.hpp"

namespace inlt {

namespace {

// Record one violated dependence as both a structured diagnostic and
// its rendered prose (the two vectors stay index-aligned).
void add_violation(LegalityResult& out, const Dependence& d, size_t dep_index,
                   const std::string& message) {
  Diagnostic diag;
  diag.severity = Severity::kError;
  diag.stage = Stage::kLegality;
  diag.message = message;
  diag.src_stmt = d.src;
  diag.dst_stmt = d.dst;
  diag.array = d.array;
  diag.dep_kind = dep_kind_name(d.kind);
  diag.dep_index = static_cast<int>(dep_index);
  out.violations.push_back(message);
  out.diagnostics.push_back(std::move(diag));
}

}  // namespace

LegalityResult check_legality(const IvLayout& src, const DependenceSet& deps,
                              const IntMat& m, const AstRecovery& rec) {
  return check_legality_with_target(src, deps, m, *rec.target_layout);
}

LegalityResult check_legality_with_target(const IvLayout& /*src*/,
                                          const DependenceSet& deps,
                                          const IntMat& m,
                                          const IvLayout& tl) {
  Stats::global().add("legality.checks");
  LegalityResult out;
  for (size_t i = 0; i < deps.deps.size(); ++i) {
    const Dependence& d = deps.deps[i];
    DepVector td = transform_dep(m, d.vector);
    // Loops common to the two statements in the *transformed* program.
    // Linear transformations preserve the tree, so these are the same
    // tree loops at their (possibly reordered) target positions.
    std::vector<int> common = tl.common_loop_positions(d.src, d.dst);
    DepVector p = project_dep(td, common);
    switch (lex_status(p)) {
      case LexStatus::kPositive:
        break;  // satisfied by a common loop
      case LexStatus::kNonNegative:
        // P may be zero: the zero case must be covered exactly like
        // kZero; the positive case is already fine.
        [[fallthrough]];
      case LexStatus::kZero:
        if (d.src == d.dst) {
          out.unsatisfied.push_back(static_cast<int>(i));
        } else if (!(syntactically_before(tl, d.src, d.dst) &&
                     d.src != d.dst)) {
          std::ostringstream os;
          os << dep_kind_name(d.kind) << " " << d.src << " -> " << d.dst
             << " " << dep_to_string(d.vector)
             << ": projection zero but " << d.src
             << " does not precede " << d.dst << " in the new AST";
          add_violation(out, d, i, os.str());
        }
        break;
      case LexStatus::kNegative: {
        std::ostringstream os;
        os << dep_kind_name(d.kind) << " " << d.src << " -> " << d.dst << " "
           << dep_to_string(d.vector) << ": transformed projection "
           << dep_to_string(p) << " is lexicographically negative";
        add_violation(out, d, i, os.str());
        break;
      }
      case LexStatus::kUnknown: {
        std::ostringstream os;
        os << dep_kind_name(d.kind) << " " << d.src << " -> " << d.dst << " "
           << dep_to_string(d.vector) << ": transformed projection "
           << dep_to_string(p)
           << " cannot be proven lexicographically non-negative";
        add_violation(out, d, i, os.str());
        break;
      }
    }
  }
  return out;
}

LegalityResult check_legality(const IvLayout& src, const DependenceSet& deps,
                              const IntMat& m) {
  AstRecovery rec = recover_ast(src, m);
  return check_legality(src, deps, m, rec);
}

}  // namespace inlt
