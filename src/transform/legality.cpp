#include "transform/legality.hpp"

#include <sstream>

#include "instance/program_order.hpp"
#include "support/stats.hpp"
#include "support/trace.hpp"

namespace inlt {

namespace {

// Record one violated dependence as both a structured diagnostic and
// its rendered prose (the two vectors stay index-aligned).
void add_violation(LegalityResult& out, const Dependence& d, size_t dep_index,
                   int row, const std::string& message) {
  Diagnostic diag;
  diag.severity = Severity::kError;
  diag.stage = Stage::kLegality;
  diag.message = message;
  diag.src_stmt = d.src;
  diag.dst_stmt = d.dst;
  diag.array = d.array;
  diag.dep_kind = dep_kind_name(d.kind);
  diag.dep_index = static_cast<int>(dep_index);
  diag.row = row;
  out.violations.push_back(message);
  out.diagnostics.push_back(std::move(diag));
}

// The Definition 6 walk for one dependence, with full provenance:
// the single source of truth both check_legality_with_target and
// explain_legality derive their verdicts from.
DependenceTrace trace_dependence(const DependenceSet& deps, size_t i,
                                 const IntMat& m, const IvLayout& tl) {
  const Dependence& d = deps.deps[i];
  DependenceTrace t;
  t.dep_index = static_cast<int>(i);
  t.transformed = transform_dep(m, d.vector);
  // Loops common to the two statements in the *transformed* program.
  // Linear transformations preserve the tree, so these are the same
  // tree loops at their (possibly reordered) target positions.
  t.common = tl.common_loop_positions(d.src, d.dst);
  t.projected = project_dep(t.transformed, t.common);
  int at = -1;
  t.status = lex_status_at(t.projected, &at);
  if (at >= 0) t.decided_row = t.common[at];
  switch (t.status) {
    case LexStatus::kPositive:
      t.legal = true;
      break;
    case LexStatus::kNonNegative:
      // P may be zero: the zero case must be covered exactly like
      // kZero; the positive case is already fine.
      [[fallthrough]];
    case LexStatus::kZero:
      if (d.src == d.dst) {
        t.legal = true;
        t.unsatisfied = true;
      } else {
        t.legal = syntactically_before(tl, d.src, d.dst);
      }
      break;
    case LexStatus::kNegative:
    case LexStatus::kUnknown:
      t.legal = false;
      break;
  }
  return t;
}

}  // namespace

LegalityResult check_legality(const IvLayout& src, const DependenceSet& deps,
                              const IntMat& m, const AstRecovery& rec) {
  return check_legality_with_target(src, deps, m, *rec.target_layout);
}

LegalityResult check_legality_with_target(const IvLayout& /*src*/,
                                          const DependenceSet& deps,
                                          const IntMat& m,
                                          const IvLayout& tl) {
  Stats::global().add("legality.checks");
  ScopedSpan span("legality.check", "legality");
  LegalityResult out;
  for (size_t i = 0; i < deps.deps.size(); ++i) {
    const Dependence& d = deps.deps[i];
    DependenceTrace t = trace_dependence(deps, i, m, tl);
    if (t.legal) {
      if (t.unsatisfied) out.unsatisfied.push_back(static_cast<int>(i));
      continue;
    }
    std::ostringstream os;
    os << dep_kind_name(d.kind) << " " << d.src << " -> " << d.dst << " "
       << dep_to_string(d.vector);
    switch (t.status) {
      case LexStatus::kNegative:
        os << ": transformed projection " << dep_to_string(t.projected)
           << " is lexicographically negative";
        break;
      case LexStatus::kUnknown:
        os << ": transformed projection " << dep_to_string(t.projected)
           << " cannot be proven lexicographically non-negative";
        break;
      default:
        os << ": projection zero but " << d.src << " does not precede "
           << d.dst << " in the new AST";
        break;
    }
    add_violation(out, d, i, t.decided_row, os.str());
  }
  if (span.active()) {
    span.arg("deps", static_cast<i64>(deps.deps.size()));
    span.arg("violations", static_cast<i64>(out.violations.size()));
  }
  return out;
}

LegalityResult check_legality(const IvLayout& src, const DependenceSet& deps,
                              const IntMat& m) {
  AstRecovery rec = recover_ast(src, m);
  return check_legality(src, deps, m, rec);
}

bool LegalityTrace::legal() const {
  for (const DependenceTrace& t : deps)
    if (!t.legal) return false;
  return true;
}

std::vector<int> LegalityTrace::violated() const {
  std::vector<int> out;
  for (const DependenceTrace& t : deps)
    if (!t.legal) out.push_back(t.dep_index);
  return out;
}

std::string LegalityTrace::to_text(const DependenceSet& ds,
                                   const IvLayout& tl) const {
  std::ostringstream os;
  size_t violated_n = 0, unsatisfied_n = 0;
  for (const DependenceTrace& t : deps) {
    const Dependence& d = ds.deps[t.dep_index];
    os << "dependence " << t.dep_index << ": " << dep_kind_name(d.kind) << " "
       << d.src << " -> " << d.dst << " on " << d.array << "\n";
    os << "  d       = " << dep_to_string(d.vector) << "\n";
    os << "  M.d     = " << dep_to_string(t.transformed) << "\n";
    os << "  common  = {";
    for (size_t c = 0; c < t.common.size(); ++c)
      os << (c ? ", " : "") << tl.positions()[t.common[c]].name;
    os << "} rows {";
    for (size_t c = 0; c < t.common.size(); ++c)
      os << (c ? ", " : "") << t.common[c];
    os << "}\n";
    os << "  P       = " << dep_to_string(t.projected) << "  ("
       << lex_status_name(t.status);
    if (t.decided_row >= 0)
      os << ", decided at row " << t.decided_row << " ("
         << tl.positions()[t.decided_row].name << ")";
    os << ")\n";
    os << "  verdict = ";
    if (!t.legal) {
      ++violated_n;
      switch (t.status) {
        case LexStatus::kNegative:
          os << "VIOLATED: projection lexicographically negative";
          break;
        case LexStatus::kUnknown:
          os << "VIOLATED: projection cannot be proven non-negative";
          break;
        default:
          os << "VIOLATED: zero projection but " << d.src
             << " does not precede " << d.dst << " in the new AST";
          break;
      }
      if (t.decided_row >= 0)
        os << " (killed at row " << t.decided_row << ")";
    } else if (t.unsatisfied) {
      ++unsatisfied_n;
      os << "unsatisfied self-dependence: zero projection; augmentation "
            "must carry it";
    } else if (t.status == LexStatus::kPositive) {
      os << "satisfied: carried by common loop "
         << (t.decided_row >= 0 ? tl.positions()[t.decided_row].name
                                : std::string("?"));
    } else {
      os << "satisfied: zero projection, " << d.src << " precedes " << d.dst
         << " syntactically";
    }
    os << "\n\n";
  }
  os << "legality: " << (violated_n == 0 ? "LEGAL" : "ILLEGAL") << " ("
     << violated_n << " violated, " << unsatisfied_n
     << " unsatisfied self-dependence" << (unsatisfied_n == 1 ? "" : "s")
     << ")\n";
  return os.str();
}

LegalityTrace explain_legality(const IvLayout& src, const DependenceSet& deps,
                               const IntMat& m) {
  return explain_legality(src, deps, m, recover_ast(src, m));
}

LegalityTrace explain_legality(const IvLayout& /*src*/,
                               const DependenceSet& deps, const IntMat& m,
                               const AstRecovery& rec) {
  const IvLayout& tl = *rec.target_layout;
  LegalityTrace out;
  out.deps.reserve(deps.deps.size());
  for (size_t i = 0; i < deps.deps.size(); ++i)
    out.deps.push_back(trace_dependence(deps, i, m, tl));
  return out;
}

}  // namespace inlt
