#include "transform/schedule_baseline.hpp"

#include "linalg/project.hpp"
#include "support/check.hpp"

namespace inlt {

namespace {

// θ_side as a LinExpr over the pair system's variables.
LinExpr theta_expr(const ConstraintSystem& cs, const IvLayout& layout,
                   const std::string& label, const StatementSchedule& s,
                   bool src_side) {
  const auto& info = layout.stmt_info(label);
  LinExpr e = cs.zero_expr();
  e.constant = s.offset;
  for (size_t j = 0; j < info.loop_positions.size(); ++j) {
    if (s.coef[j] == 0) continue;
    std::string v = layout.positions()[info.loop_positions[j]].loop->var();
    int idx = cs.var((src_side ? "s$" : "d$") + v);
    e.coef[idx] = checked_add(e.coef[idx], s.coef[j]);
  }
  return e;
}

// Strict satisfaction: no solution with θ_dst - θ_src <= 0.
bool dep_strictly_satisfied(const PairSystem& ps, const IvLayout& layout,
                            const StatementSchedule& src_sched,
                            const StatementSchedule& dst_sched) {
  ConstraintSystem cs = ps.base;
  LinExpr dst = theta_expr(cs, layout, ps.dst, dst_sched, false);
  LinExpr src = theta_expr(cs, layout, ps.src, src_sched, true);
  // violated iff feasible: src - dst >= 0.
  LinExpr viol = cs.zero_expr();
  for (int i = 0; i < cs.num_vars(); ++i)
    viol.coef[i] = checked_sub(src.coef[i], dst.coef[i]);
  viol.constant = checked_sub(src.constant, dst.constant);
  cs.add_ge(viol);
  return !integer_feasible(cs);
}

struct Searcher {
  const IvLayout& layout;
  const ScheduleSearchOptions& opts;
  ScheduleSearchStats* stats;
  std::vector<PairSystem> pairs;
  std::vector<std::string> labels;  // syntactic order
  ScheduleMap assigned;

  bool consistent_with(const std::string& just_assigned) {
    for (const PairSystem& ps : pairs) {
      if (ps.src != just_assigned && ps.dst != just_assigned) continue;
      auto si = assigned.find(ps.src);
      auto di = assigned.find(ps.dst);
      if (si == assigned.end() || di == assigned.end()) continue;
      if (stats) ++stats->candidates_checked;
      if (!dep_strictly_satisfied(ps, layout, si->second, di->second))
        return false;
    }
    return true;
  }

  bool assign(size_t idx) {
    if (idx == labels.size()) return true;
    const std::string& label = labels[idx];
    int k = static_cast<int>(
        layout.stmt_info(label).loop_positions.size());
    StatementSchedule cand;
    cand.coef.assign(k, opts.coef_min);
    cand.offset = opts.offset_min;
    for (;;) {
      assigned[label] = cand;
      if (consistent_with(label) && assign(idx + 1)) return true;
      assigned.erase(label);
      // Advance the candidate (odometer over coef entries + offset).
      int d = 0;
      while (d < k && cand.coef[d] == opts.coef_max)
        cand.coef[d++] = opts.coef_min;
      if (d < k) {
        ++cand.coef[d];
        continue;
      }
      if (cand.offset < opts.offset_max) {
        for (int q = 0; q < k; ++q) cand.coef[q] = opts.coef_min;
        ++cand.offset;
        continue;
      }
      return false;
    }
  }
};

}  // namespace

std::optional<ScheduleMap> find_schedule(const IvLayout& layout,
                                         const ScheduleSearchOptions& opts,
                                         ScheduleSearchStats* stats) {
  Searcher s{layout, opts, stats, build_pair_systems(layout),
             layout.stmt_labels(), {}};
  if (s.assign(0)) return s.assigned;
  return std::nullopt;
}

bool schedule_is_valid(const IvLayout& layout, const ScheduleMap& sched) {
  for (const PairSystem& ps : build_pair_systems(layout)) {
    auto si = sched.find(ps.src);
    auto di = sched.find(ps.dst);
    INLT_CHECK_MSG(si != sched.end() && di != sched.end(),
                   "schedule missing a statement");
    if (!dep_strictly_satisfied(ps, layout, si->second, di->second))
      return false;
  }
  return true;
}

}  // namespace inlt
