#include "transform/exact_legality.hpp"

#include <sstream>

#include "instance/program_order.hpp"
#include "linalg/project.hpp"
#include "support/check.hpp"
#include "support/stats.hpp"

namespace inlt {

namespace {

LinExpr scaled_add(const ConstraintSystem& cs, const LinExpr& acc,
                   const LinExpr& e, i64 w) {
  LinExpr r = acc;
  for (int i = 0; i < cs.num_vars(); ++i)
    r.coef[i] = checked_add(r.coef[i], checked_mul(w, e.coef[i]));
  r.constant = checked_add(r.constant, checked_mul(w, e.constant));
  return r;
}

LinExpr negate(const ConstraintSystem& cs, const LinExpr& e) {
  LinExpr r = cs.zero_expr();
  for (int i = 0; i < cs.num_vars(); ++i) r.coef[i] = checked_neg(e.coef[i]);
  r.constant = checked_neg(e.constant);
  return r;
}

void add_violation(ExactLegalityResult& out, const PairSystem& ps,
                   const std::string& message) {
  Diagnostic d;
  d.severity = Severity::kError;
  d.stage = Stage::kLegality;
  d.message = message;
  d.src_stmt = ps.src;
  d.dst_stmt = ps.dst;
  d.array = ps.array;
  d.dep_kind = dep_kind_name(ps.kind);
  out.violations.push_back(message);
  out.diagnostics.push_back(std::move(d));
}

}  // namespace

ExactLegalityResult check_legality_exact(const IvLayout& src,
                                         const IntMat& m,
                                         const AstRecovery& rec,
                                         PadMode pad) {
  Stats::global().add("legality.exact_checks");
  ExactLegalityResult out;
  const IvLayout& tl = *rec.target_layout;

  for (const PairSystem& ps : build_pair_systems(src)) {
    const ConstraintSystem& cs = ps.base;

    // Δ_q for every source instance-vector position.
    std::vector<LinExpr> delta;
    delta.reserve(src.size());
    for (int q = 0; q < src.size(); ++q) {
      LinExpr dv = position_value_expr(cs, src, ps.dst, q, false, pad);
      LinExpr sv = position_value_expr(cs, src, ps.src, q, true, pad);
      delta.push_back(lin_subtract(cs, dv, sv));
    }

    // P_t = row(common target loop t of the pair) · Δ.
    std::vector<int> common = tl.common_loop_positions(ps.src, ps.dst);
    std::vector<LinExpr> p;
    for (int pos : common) {
      LinExpr acc = cs.zero_expr();
      for (int q = 0; q < src.size(); ++q)
        if (m(pos, q) != 0) acc = scaled_add(cs, acc, delta[q], m(pos, q));
      p.push_back(std::move(acc));
    }

    // Violation: some solution has the projection lexicographically
    // negative — P_0..P_{t-1} == 0 and P_t <= -1 for some level t.
    for (size_t t = 0; t < p.size(); ++t) {
      ConstraintSystem q = cs;
      for (size_t k = 0; k < t; ++k) q.add_eq(p[k]);
      LinExpr le = negate(q, p[t]);
      le.constant = checked_sub(le.constant, 1);  // -P_t - 1 >= 0
      q.add_ge(le);
      if (integer_feasible(q)) {
        std::ostringstream os;
        os << dep_kind_name(ps.kind) << " " << ps.src << " -> " << ps.dst
           << " on " << ps.array << ": transformed projection can be "
           << "lexicographically negative at level " << t;
        add_violation(out, ps, os.str());
        break;
      }
    }

    // All-zero case: decided by syntactic order (distinct statements)
    // or left to augmentation (self-dependences).
    ConstraintSystem zero_sys = cs;
    for (const LinExpr& e : p) zero_sys.add_eq(e);
    if (!integer_feasible(zero_sys)) continue;
    if (ps.src == ps.dst) {
      // Project Δ onto the statement's own loop positions under the
      // all-equal condition; Complete consumes these.
      const auto& own = src.stmt_info(ps.src).loop_positions;
      DepVector proj;
      for (int q : own)
        proj.push_back(classify_delta(zero_sys, delta[q], 8));
      out.unsatisfied_self[ps.src].push_back(std::move(proj));
    } else if (!(syntactically_before(tl, ps.src, ps.dst) &&
                 ps.src != ps.dst)) {
      std::ostringstream os;
      os << dep_kind_name(ps.kind) << " " << ps.src << " -> " << ps.dst
         << " on " << ps.array << ": projection can be zero but " << ps.src
         << " does not precede " << ps.dst << " in the new AST";
      add_violation(out, ps, os.str());
    }
  }
  return out;
}

}  // namespace inlt
