// Block structure of transformation matrices and AST recovery
// (Fig 5, Fig 6: procedure NewAST).
//
// A square transformation matrix is structurally valid when, for every
// multi-child node, the submatrix over that node's edge positions is a
// permutation matrix (with zeroes elsewhere in those rows) and the
// child subtree blocks are mapped block-to-block following the same
// permutation. Loop rows are unconstrained — they carry the linear
// loop transformation. From a valid matrix the transformed AST (source
// AST with children recursively reordered) is recovered.
#pragma once

#include <map>
#include <memory>

#include "instance/layout.hpp"
#include "linalg/matrix.hpp"

namespace inlt {

/// Result of NewAST: the recovered target program plus bookkeeping
/// linking it back to the source.
struct AstRecovery {
  /// The transformed program. Loop bounds are copied from the source
  /// verbatim; code generation recomputes them.
  std::unique_ptr<Program> target;
  /// Layout of the target program (points into *target).
  std::unique_ptr<IvLayout> target_layout;
  /// target position -> source position for loop labels: the target
  /// loop at position p carries row p of M; this maps each target loop
  /// position to the source segment it structurally corresponds to.
  std::map<int, int> loop_pos_map;
};

/// Is the matrix block-structured for this source layout? Returns a
/// diagnostic string (empty = valid).
std::string check_block_structure(const IvLayout& src, const IntMat& m);

/// Procedure NewAST (Fig 6): recover the transformed AST. Throws
/// TransformError if the matrix is not block-structured.
AstRecovery recover_ast(const IvLayout& src, const IntMat& m);

}  // namespace inlt
