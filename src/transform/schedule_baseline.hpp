// Baseline: per-statement affine schedules (the general frameworks of
// §1's related work — Feautrier [6,7], Kelly & Pugh [8] — in
// miniature).
//
// Each statement S gets its own one-dimensional affine schedule
// θ_S(i) = c·i + d; the schedule is valid when every dependence is
// strictly satisfied: θ_dst(dst) − θ_src(src) >= 1 for all dependent
// instance pairs. Validity of a candidate is an integer-infeasibility
// query per dependence (exactly the "expensive tests based on
// techniques like parametric integer programming" the paper contrasts
// its framework with); finding a schedule is a search over per-
// statement coefficient assignments. bench_framework measures the cost
// gap against the paper's completion procedure.
#pragma once

#include <map>
#include <optional>

#include "dependence/system.hpp"

namespace inlt {

/// θ_S: coefficients over the statement's loops (outermost first) plus
/// a constant offset.
struct StatementSchedule {
  IntVec coef;
  i64 offset = 0;
};

using ScheduleMap = std::map<std::string, StatementSchedule>;

struct ScheduleSearchOptions {
  i64 coef_min = 0;
  i64 coef_max = 2;
  i64 offset_min = 0;
  i64 offset_max = 2;
};

struct ScheduleSearchStats {
  i64 candidates_checked = 0;  ///< ILP validity queries issued
};

/// Exhaustive (pruned) search for a valid one-dimensional schedule.
/// Returns nullopt when none exists within the coefficient box — for
/// most imperfect nests multidimensional schedules would be required,
/// which is itself part of the comparison story.
std::optional<ScheduleMap> find_schedule(
    const IvLayout& layout, const ScheduleSearchOptions& opts = {},
    ScheduleSearchStats* stats = nullptr);

/// Is the given schedule valid (every dependence strictly satisfied)?
bool schedule_is_valid(const IvLayout& layout, const ScheduleMap& sched);

}  // namespace inlt
