// Incremental legality for candidate search.
//
// The Definition 6 hull test is a per-dependence walk of the projected
// vector P = (M·d) | common-loops. Each entry of P is one transformed
// row dotted with d, and the lex-status walk consumes entries outermost
// first — so legality can be decided *row by row* as a candidate matrix
// is built up, and two candidates sharing leading rows share all of the
// per-dependence work on that prefix. IncrementalLegality memoizes that
// shared work in a trie keyed by row content, with two properties the
// search driver exploits:
//
//  * Early rejection is final: once a dependence's walk hits a
//    definitely-negative (or undecidable) entry, no extension of the
//    prefix can recover — the whole subtree of candidates below the
//    prefix is illegal and can be pruned.
//  * Dependences are tested in move-to-front order: the dependence
//    that most recently killed a candidate is tried first, so typical
//    sweeps reject a dead prefix after one dot product.
//
// Scope: the engine models candidates that preserve the AST shape —
// square matrices whose edge rows are identity rows. For those,
// NewAST recovers the source tree with children in source order, so
// the target program's common-loop positions and syntactic order equal
// the source's, and the engine's verdict coincides exactly with
// check_legality. (`supports()` tests the precondition.) For matrices
// the engine accepts but recover_ast rejects as non-block-structured,
// rejection is still sound: such candidates fail evaluation anyway.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "dependence/analyzer.hpp"
#include "instance/layout.hpp"

namespace inlt {

class IncrementalLegality {
 public:
  /// Both references must outlive the engine.
  IncrementalLegality(const IvLayout& layout, const DependenceSet& deps);

  /// Number of loop rows a candidate supplies, in push order: slot s
  /// is the loop position all_loop_positions()[s], outermost first.
  int num_slots() const { return static_cast<int>(slots_.size()); }
  /// Layout position of slot s.
  int slot_position(int s) const { return slots_[s]; }

  /// Can this engine decide the matrix? True for square matrices of
  /// layout width whose edge rows are identity rows (loop rows are
  /// unconstrained — permutations, skews, alignments all qualify).
  bool supports(const IntMat& m) const;

  // --- Stack API (used by the pruning search driver) ---

  /// Push the full-width row for the next slot. Returns the viability
  /// of the new prefix: false means every completion is illegal.
  bool push_row(const IntVec& row);
  void pop_row();
  /// Rows currently pushed.
  int depth() const { return static_cast<int>(path_.size()) - 1; }
  bool prefix_viable() const;
  /// Index of the dependence that killed the prefix (-1 if viable).
  int killer() const;
  /// Slot (row) at which the prefix died (-1 if viable). Slots number
  /// pushed rows 0..num_slots()-1, outermost first; convert to a
  /// layout position with slot_position().
  int killer_row() const;

  /// After a full-depth push with current_legal() == false on a
  /// *viable* leaf: the first dependence whose zero projection is not
  /// acceptable (the provenance of a completion-time rejection).
  /// -1 when the leaf is legal or died earlier.
  int leaf_killer() const;

  /// Verdict for the complete candidate; requires depth()==num_slots().
  /// Equals check_legality(...).legal() for supported matrices.
  bool current_legal() const;

  /// Indices (into deps.deps, ascending) of self-dependences the
  /// current complete candidate leaves unsatisfied — matches
  /// LegalityResult::unsatisfied. Requires current_legal().
  std::vector<int> current_unsatisfied() const;

  // --- Batch API ---

  /// Check a complete matrix (must satisfy supports()), reusing the
  /// memo trie. The stack is left where it was.
  bool check(const IntMat& m);

  /// Drop the memo trie (the stack must be empty).
  void clear();

  /// Nodes in the memo trie (root included).
  size_t memo_size() const { return node_count_; }

 private:
  // Automaton state of one dependence after consuming a row prefix;
  // mirrors the lex_status walk in direction.cpp.
  enum State : std::uint8_t {
    kRun = 0,     // all entries so far exactly zero
    kRunNonNeg,   // saw a non-negative (possibly-zero) entry
    kAccept,      // definitely positive: satisfied, final
    kReject,      // definitely negative or undecidable: final
  };

  struct Node {
    // Per-dependence states, in dependence-set order. Only populated
    // while the node is viable; a dead node stores just the killer.
    std::vector<std::uint8_t> states;
    bool viable = true;
    int killer = -1;
    // Slot index of the row that killed the node (-1 while viable);
    // inherited by extensions of a dead prefix.
    int killer_row = -1;
    // Memoized leaf verdict: -1 unknown, else 0/1.
    int leaf_legal = -1;
    // Dependence whose unacceptable zero projection rejected a viable
    // leaf (-1 otherwise); memoized with leaf_legal.
    int leaf_killer = -1;
    std::map<IntVec, std::unique_ptr<Node>> children;
  };

  State step(State s, const DepEntry& e) const;

  const IvLayout& layout_;
  const DependenceSet& deps_;
  std::vector<int> slots_;  // loop positions, ascending (outermost first)
  // Per dependence d, per slot s: does slot s's position belong to the
  // common loops of d's statement pair?
  std::vector<std::vector<std::uint8_t>> in_common_;
  // Zero/non-negative final projection acceptable? (self-dependence —
  // left unsatisfied — or source syntactically before destination.)
  std::vector<std::uint8_t> zero_ok_;
  // Self-dependence flag, for current_unsatisfied().
  std::vector<std::uint8_t> is_self_;
  // Move-to-front testing order over dependence indices.
  std::vector<int> order_;

  std::unique_ptr<Node> root_;
  std::vector<Node*> path_;  // path_[0] == root_; back() == current
  size_t node_count_ = 1;
};

}  // namespace inlt
