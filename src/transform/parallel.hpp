// Parallelism detection (§1/§7): "parallelizing a loop requires
// finding a row in the nullspace of the dependence matrix".
//
// A target loop whose row annihilates every dependence column carries
// no dependence: its iterations can run in parallel (a doall). This
// module computes an integer basis of such rows, restricted to the
// positions where every dependence entry is an exact distance (a
// direction entry can only be annihilated by a zero coefficient).
#pragma once

#include "dependence/analyzer.hpp"

namespace inlt {

/// Basis of full-width rows r (supported on loop positions) with
/// r · d == 0 for every dependence column d. Empty when every loop
/// direction carries some dependence.
std::vector<IntVec> parallel_row_basis(const IvLayout& layout,
                                       const DependenceSet& deps);

/// Names of the source loops that are doall as written: their unit row
/// is (up to scale) in the parallel basis.
std::vector<std::string> parallel_loops(const IvLayout& layout,
                                        const DependenceSet& deps);

}  // namespace inlt
