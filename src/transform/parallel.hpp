// Parallelism detection (§1/§7): "parallelizing a loop requires
// finding a row in the nullspace of the dependence matrix".
//
// A target loop whose row annihilates every dependence column carries
// no dependence: its iterations can run in parallel (a doall). This
// module computes an integer basis of such rows, restricted to the
// positions where every dependence entry is an exact distance (a
// direction entry can only be annihilated by a zero coefficient).
#pragma once

#include "dependence/analyzer.hpp"
#include "transform/block_structure.hpp"

namespace inlt {

/// Basis of full-width rows r (supported on loop positions) with
/// r · d == 0 for every dependence column d. Empty when every loop
/// direction carries some dependence.
std::vector<IntVec> parallel_row_basis(const IvLayout& layout,
                                       const DependenceSet& deps);

/// Names of the source loops that are doall as written: their unit row
/// is (up to scale) in the parallel basis.
std::vector<std::string> parallel_loops(const IvLayout& layout,
                                        const DependenceSet& deps);

/// Classification of one loop level of the transformed nest.
struct TargetLevel {
  int position = -1;   ///< position in the target layout
  std::string var;     ///< loop variable in the target AST
  int depth = 0;       ///< number of enclosing target loops
  bool doall = false;  ///< no dependence is carried at this level
  /// Index into deps.deps of the first dependence carried here
  /// (meaningful only when !doall).
  int carrier = -1;
  /// Sequential only because an outer interval entry could not be
  /// resolved (the carrier *may* be carried here, not *is*).
  bool ambiguous = false;
  /// Selected for chunked parallel execution: the outermost doall
  /// level on its nest path.
  bool partitioned = false;
};

/// A doall/wavefront execution schedule for a transformed nest (§1/§7:
/// a doall level is a row annihilating every transformed dependence
/// column that its statements share).
struct ParallelSchedule {
  /// Target loop levels in syntactic (depth-first) order.
  std::vector<TargetLevel> levels;
  /// Variables of the partitioned levels, syntactic order. Empty means
  /// serial execution: no doall level exists.
  std::vector<std::string> partition;
  /// Sequential target loops enclosing some partitioned level,
  /// outermost first — the wavefront's time loops.
  std::vector<std::string> time_loops;
  /// Some partitioned level runs under a sequential time loop (skewed
  /// nests: outer time, inner parallel).
  bool wavefront = false;

  /// Human-readable report; `deps` names the carried dependences.
  std::string to_text(const DependenceSet& deps) const;
};

/// Map the dependence columns into target space (M·d) and classify
/// every transformed loop level as doall or sequential; pick the
/// outermost doall on each nest path as the partition and derive the
/// wavefront structure. `rec` must be recover_ast(src, m).
ParallelSchedule analyze_target_parallelism(const IvLayout& src,
                                            const DependenceSet& deps,
                                            const IntMat& m,
                                            const AstRecovery& rec);

/// Schedule of the source nest as written (identity transform).
ParallelSchedule source_parallel_schedule(const IvLayout& layout,
                                          const DependenceSet& deps);

}  // namespace inlt
