#include "transform/parallel.hpp"

#include "linalg/gauss.hpp"

namespace inlt {

std::vector<IntVec> parallel_row_basis(const IvLayout& layout,
                                       const DependenceSet& deps) {
  // Positions a parallel row may use: loop positions where every
  // dependence entry is exact.
  std::vector<int> allowed;
  for (int q : layout.all_loop_positions()) {
    bool ok = true;
    for (const Dependence& d : deps.deps)
      if (!d.vector[q].is_exact()) ok = false;
    if (ok) allowed.push_back(q);
  }
  if (allowed.empty()) return {};

  // r · d == 0 for every dependence: r (restricted to `allowed`) lies
  // in the nullspace of the dependence matrix's transpose.
  IntMat constraints(static_cast<int>(deps.deps.size()),
                     static_cast<int>(allowed.size()));
  for (size_t i = 0; i < deps.deps.size(); ++i)
    for (size_t k = 0; k < allowed.size(); ++k)
      constraints(static_cast<int>(i), static_cast<int>(k)) =
          deps.deps[i].vector[allowed[k]].lo();

  std::vector<IntVec> out;
  for (const IntVec& v : integer_nullspace(constraints)) {
    IntVec full(layout.size(), 0);
    for (size_t k = 0; k < allowed.size(); ++k) full[allowed[k]] = v[k];
    out.push_back(std::move(full));
  }
  // No dependences at all: every loop direction is parallel.
  if (deps.deps.empty()) {
    out.clear();
    for (int q : layout.all_loop_positions()) {
      IntVec full(layout.size(), 0);
      full[q] = 1;
      out.push_back(std::move(full));
    }
  }
  return out;
}

std::vector<std::string> parallel_loops(const IvLayout& layout,
                                        const DependenceSet& deps) {
  // A loop is doall when no dependence is *carried at* it: for every
  // dependence whose statements it encloses, either an outer common
  // loop definitely carries the dependence first, or the entry at this
  // loop is exactly zero.
  std::vector<std::string> out;
  for (int q : layout.all_loop_positions()) {
    bool carries = false;
    for (const Dependence& d : deps.deps) {
      std::vector<int> common = layout.common_loop_positions(d.src, d.dst);
      bool encloses = false;
      for (int c : common)
        if (c == q) encloses = true;
      if (!encloses) continue;  // the dependence lives elsewhere
      bool carried_outside = false;
      bool ambiguous_prefix = false;
      for (int c : common) {
        if (c == q) break;
        const DepEntry& e = d.vector[c];
        if (e.definitely_positive()) {
          carried_outside = true;
          break;
        }
        if (!e.is_zero()) ambiguous_prefix = true;  // may or may not carry
      }
      if (carried_outside) continue;
      const DepEntry& here = d.vector[q];
      if (ambiguous_prefix || !here.is_zero()) carries = true;
    }
    if (!carries) out.push_back(layout.positions()[q].loop->var());
  }
  return out;
}

}  // namespace inlt
