#include "transform/parallel.hpp"

#include <algorithm>
#include <sstream>

#include "linalg/gauss.hpp"

namespace inlt {

std::vector<IntVec> parallel_row_basis(const IvLayout& layout,
                                       const DependenceSet& deps) {
  // Positions a parallel row may use: loop positions where every
  // dependence entry is exact.
  std::vector<int> allowed;
  for (int q : layout.all_loop_positions()) {
    bool ok = true;
    for (const Dependence& d : deps.deps)
      if (!d.vector[q].is_exact()) ok = false;
    if (ok) allowed.push_back(q);
  }
  if (allowed.empty()) return {};

  // r · d == 0 for every dependence: r (restricted to `allowed`) lies
  // in the nullspace of the dependence matrix's transpose.
  IntMat constraints(static_cast<int>(deps.deps.size()),
                     static_cast<int>(allowed.size()));
  for (size_t i = 0; i < deps.deps.size(); ++i)
    for (size_t k = 0; k < allowed.size(); ++k)
      constraints(static_cast<int>(i), static_cast<int>(k)) =
          deps.deps[i].vector[allowed[k]].lo();

  std::vector<IntVec> out;
  for (const IntVec& v : integer_nullspace(constraints)) {
    IntVec full(layout.size(), 0);
    for (size_t k = 0; k < allowed.size(); ++k) full[allowed[k]] = v[k];
    out.push_back(std::move(full));
  }
  // No dependences at all: every loop direction is parallel.
  if (deps.deps.empty()) {
    out.clear();
    for (int q : layout.all_loop_positions()) {
      IntVec full(layout.size(), 0);
      full[q] = 1;
      out.push_back(std::move(full));
    }
  }
  return out;
}

std::vector<std::string> parallel_loops(const IvLayout& layout,
                                        const DependenceSet& deps) {
  // A loop is doall when no dependence is *carried at* it: for every
  // dependence whose statements it encloses, either an outer common
  // loop definitely carries the dependence first, or the entry at this
  // loop is exactly zero.
  std::vector<std::string> out;
  for (int q : layout.all_loop_positions()) {
    bool carries = false;
    for (const Dependence& d : deps.deps) {
      std::vector<int> common = layout.common_loop_positions(d.src, d.dst);
      bool encloses = false;
      for (int c : common)
        if (c == q) encloses = true;
      if (!encloses) continue;  // the dependence lives elsewhere
      bool carried_outside = false;
      bool ambiguous_prefix = false;
      for (int c : common) {
        if (c == q) break;
        const DepEntry& e = d.vector[c];
        if (e.definitely_positive()) {
          carried_outside = true;
          break;
        }
        if (!e.is_zero()) ambiguous_prefix = true;  // may or may not carry
      }
      if (carried_outside) continue;
      const DepEntry& here = d.vector[q];
      if (ambiguous_prefix || !here.is_zero()) carries = true;
    }
    if (!carries) out.push_back(layout.positions()[q].loop->var());
  }
  return out;
}

namespace {

// The "carried at" walk of parallel_loops, in target space: level q of
// the transformed nest is doall iff for every dependence whose common
// loops include q, either an outer common entry of M·d is definitely
// positive (carried further out) or the entry at q is exactly zero
// with an all-zero resolvable prefix.
TargetLevel classify_level(const IvLayout& tgt,
                           const DependenceSet& deps,
                           const std::vector<DepVector>& tdeps, int q) {
  TargetLevel lvl;
  lvl.position = q;
  lvl.doall = true;
  for (size_t i = 0; i < deps.deps.size(); ++i) {
    const Dependence& d = deps.deps[i];
    std::vector<int> common = tgt.common_loop_positions(d.src, d.dst);
    if (std::find(common.begin(), common.end(), q) == common.end())
      continue;  // the dependence lives elsewhere
    bool carried_outside = false;
    bool ambiguous_prefix = false;
    for (int c : common) {
      if (c == q) break;
      const DepEntry& e = tdeps[i][c];
      if (e.definitely_positive()) {
        carried_outside = true;
        break;
      }
      if (!e.is_zero()) ambiguous_prefix = true;  // may or may not carry
    }
    if (carried_outside) continue;
    const DepEntry& here = tdeps[i][q];
    if (ambiguous_prefix || !here.is_zero()) {
      lvl.doall = false;
      if (lvl.carrier < 0) {
        lvl.carrier = static_cast<int>(i);
        lvl.ambiguous = ambiguous_prefix && here.is_zero();
      }
    }
  }
  return lvl;
}

struct ScheduleWalk {
  const IvLayout& tgt;
  const DependenceSet& deps;
  const std::vector<DepVector>& tdeps;
  ParallelSchedule& out;

  // `seq_enclosing` are the sequential target loops on the path to
  // `n`, outermost first; `under_partition` is true once an enclosing
  // level has been partitioned (inner doalls then stay unpartitioned —
  // the chunked driver only splits the outermost parallel level).
  void walk(const Node* n, int depth, bool under_partition,
            std::vector<std::string>& seq_enclosing) {
    if (!n->is_loop()) return;
    int q = tgt.segment(n).loop_pos;
    TargetLevel lvl = classify_level(tgt, deps, tdeps, q);
    lvl.var = n->var();
    lvl.depth = depth;
    bool child_under = under_partition;
    if (lvl.doall && !under_partition) {
      lvl.partitioned = true;
      out.partition.push_back(lvl.var);
      for (const std::string& t : seq_enclosing)
        if (std::find(out.time_loops.begin(), out.time_loops.end(), t) ==
            out.time_loops.end())
          out.time_loops.push_back(t);
      if (!seq_enclosing.empty()) out.wavefront = true;
      child_under = true;
    }
    out.levels.push_back(lvl);
    bool pushed = !lvl.doall;
    if (pushed) seq_enclosing.push_back(lvl.var);
    for (const NodePtr& c : n->children())
      walk(c.get(), depth + 1, child_under, seq_enclosing);
    if (pushed) seq_enclosing.pop_back();
  }
};

}  // namespace

ParallelSchedule analyze_target_parallelism(const IvLayout& /*src*/,
                                            const DependenceSet& deps,
                                            const IntMat& m,
                                            const AstRecovery& rec) {
  const IvLayout& tgt = *rec.target_layout;
  std::vector<DepVector> tdeps;
  tdeps.reserve(deps.deps.size());
  for (const Dependence& d : deps.deps)
    tdeps.push_back(transform_dep(m, d.vector));

  ParallelSchedule out;
  ScheduleWalk w{tgt, deps, tdeps, out};
  std::vector<std::string> seq;
  for (const NodePtr& root : tgt.program().roots())
    w.walk(root.get(), 0, false, seq);
  return out;
}

ParallelSchedule source_parallel_schedule(const IvLayout& layout,
                                          const DependenceSet& deps) {
  IntMat id = IntMat::identity(layout.size());
  AstRecovery rec = recover_ast(layout, id);
  return analyze_target_parallelism(layout, deps, id, rec);
}

std::string ParallelSchedule::to_text(const DependenceSet& deps) const {
  std::ostringstream os;
  os << "target levels:\n";
  for (const TargetLevel& lvl : levels) {
    os << "  ";
    for (int i = 0; i < lvl.depth; ++i) os << "  ";
    os << lvl.var << ": ";
    if (lvl.doall) {
      os << (lvl.partitioned ? "doall (partitioned)" : "doall");
    } else {
      os << "sequential";
      if (lvl.carrier >= 0 &&
          lvl.carrier < static_cast<int>(deps.deps.size())) {
        const Dependence& d = deps.deps[static_cast<size_t>(lvl.carrier)];
        os << " (" << (lvl.ambiguous ? "may carry " : "carries ")
           << dep_kind_name(d.kind) << " " << d.src << " -> " << d.dst
           << " on " << d.array << ")";
      }
    }
    os << "\n";
  }
  if (partition.empty()) {
    os << "schedule: serial (no doall level)\n";
    return os.str();
  }
  os << "partition:";
  for (const std::string& v : partition) os << " " << v;
  os << "\n";
  if (wavefront) {
    os << "schedule: wavefront (time";
    for (const std::string& t : time_loops) os << " " << t;
    os << " -> parallel";
    for (const std::string& v : partition) os << " " << v;
    os << ")\n";
  } else {
    os << "schedule: outer doall\n";
  }
  return os.str();
}

}  // namespace inlt
