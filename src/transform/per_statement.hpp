// Per-statement transformations (Definition 7) and augmentation with
// extra loops (§5.4, Theorem 3, Fig 7).
//
// A statement S nested in k loops has source instance vectors that are
// an affine function of its iteration vector: IV = A_S·I_S + b_S. The
// transformed labels of S's loops are therefore M_S·I_S + c_S with
// M_S = proj(M·A_S) and c_S = proj(M·b_S). When rank(M_S) < k,
// multiple source instances collapse onto one target instance and the
// Complete procedure appends rows (new loops around S) that carry the
// self-dependences M left unsatisfied.
#pragma once

#include <map>

#include "dependence/analyzer.hpp"
#include "transform/legality.hpp"

namespace inlt {

struct PerStatement {
  /// k_tree x k: target tree-loop labels (outermost first) as a
  /// function of the source iteration vector.
  IntMat matrix;
  /// Constant part (from edge labels and alignment offsets).
  IntVec offset;
};

/// Definition 7's per-statement transformation for one statement.
PerStatement per_statement_transform(const IvLayout& src,
                                     const AstRecovery& rec, const IntMat& m,
                                     const std::string& label,
                                     PadMode pad = PadMode::kDiagonal);

/// Fig 7's Complete procedure: extend `t_s` (rows orthogonal to every
/// unsatisfied self-dependence) to full column rank by appending unit
/// rows at dependence heights, then nullspace rows. The appended unit
/// rows make every vector of `d_s` lexicographically positive under
/// the extended matrix (Theorem 3 part 2).
IntMat complete_rows(const IntMat& t_s, std::vector<DepVector> d_s);

/// The full per-statement plan for code generation: tree rows followed
/// by augmentation rows.
struct StatementPlan {
  std::string label;
  IntMat t_full;      ///< (k_tree + augmented) x k
  IntVec offset_full; ///< row offsets (augmented rows have offset 0)
  int num_tree_rows = 0;
  /// Rows kept in N_S (Definition 8): not zero and not linear
  /// combinations of previous rows. Rows absent here are singular
  /// loops and receive equality guards (§5.5).
  std::vector<int> nonsingular_rows;
};

/// Build the plan for every statement: per-statement transform,
/// augmentation driven by the legality result's unsatisfied
/// dependences, and the N_S row selection.
std::vector<StatementPlan> plan_statements(const IvLayout& src,
                                           const DependenceSet& deps,
                                           const IntMat& m,
                                           const AstRecovery& rec,
                                           const LegalityResult& legality,
                                           PadMode pad = PadMode::kDiagonal);

/// Same, driven by explicit per-statement unsatisfied self-dependence
/// projections (as the exact legality checker produces).
std::vector<StatementPlan> plan_statements_from_self(
    const IvLayout& src, const IntMat& m, const AstRecovery& rec,
    const std::map<std::string, std::vector<DepVector>>& unsatisfied_self,
    PadMode pad = PadMode::kDiagonal);

}  // namespace inlt
