#include "transform/completion.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <set>

#include "support/check.hpp"
#include "support/diag.hpp"
#include "support/trace.hpp"

namespace inlt {

namespace {

enum class DepState { kPending, kSatisfied, kViolated };

// Root-to-statement path as (node, child-index) pairs; node == nullptr
// is the virtual root.
std::vector<std::pair<const Node*, int>> path_of(const Program& p,
                                                 const Node* stmt) {
  std::vector<std::pair<const Node*, int>> path;
  std::function<bool(const Node*, const std::vector<NodePtr>&)> dfs =
      [&](const Node* parent, const std::vector<NodePtr>& ch) -> bool {
    for (int i = 0; i < static_cast<int>(ch.size()); ++i) {
      path.emplace_back(parent, i);
      if (ch[i].get() == stmt) return true;
      if (ch[i]->is_loop() && dfs(ch[i].get(), ch[i]->children()))
        return true;
      path.pop_back();
    }
    return false;
  };
  bool found = dfs(nullptr, p.roots());
  INLT_CHECK(found);
  return path;
}

// Evaluate row · d as an interval.
DepEntry row_dot(const IntVec& row, const DepVector& d) {
  DepEntry acc = DepEntry::exact(0);
  for (size_t i = 0; i < row.size(); ++i)
    if (row[i] != 0) acc = acc + d[i] * row[i];
  return acc;
}

}  // namespace

CompletionResult complete_transformation(
    const IvLayout& src, const DependenceSet& deps,
    const std::vector<IntVec>& partial_loop_rows,
    const CompletionOptions& opts) {
  (void)opts;
  ScopedSpan span("transform.complete", "transform");
  if (span.active()) {
    span.arg("partial_rows", static_cast<i64>(partial_loop_rows.size()));
    span.arg("deps", static_cast<i64>(deps.deps.size()));
  }
  const Program& prog = src.program();
  int n = src.size();
  std::vector<int> loop_positions = src.all_loop_positions();
  INLT_CHECK_MSG(partial_loop_rows.size() <= loop_positions.size(),
                 "more partial rows than loops");
  for (const IntVec& r : partial_loop_rows)
    INLT_CHECK_MSG(static_cast<int>(r.size()) == n,
                   "partial row has wrong width");

  // Common source loop positions per dependence, and state.
  std::vector<std::vector<int>> common(deps.deps.size());
  std::vector<DepState> state(deps.deps.size(), DepState::kPending);
  for (size_t i = 0; i < deps.deps.size(); ++i)
    common[i] = src.common_loop_positions(deps.deps[i].src, deps.deps[i].dst);

  // Choose a row for each loop, in layout (DFS) order — ancestors come
  // before descendants, so each dependence sees its common loops
  // outermost-first.
  std::map<int, IntVec> chosen;  // loop position -> row
  for (size_t li = 0; li < loop_positions.size(); ++li) {
    int pl = loop_positions[li];
    // Dependences this loop can order: still pending, with pl among
    // their common loops.
    std::vector<int> relevant;
    for (size_t i = 0; i < deps.deps.size(); ++i) {
      if (state[i] != DepState::kPending) continue;
      if (std::find(common[i].begin(), common[i].end(), pl) !=
          common[i].end())
        relevant.push_back(static_cast<int>(i));
    }

    auto apply_row = [&](const IntVec& row, bool commit,
                         int* satisfied_count) -> bool {
      int sat = 0;
      for (int i : relevant) {
        DepEntry v = row_dot(row, deps.deps[i].vector);
        if (v.definitely_positive()) {
          ++sat;
          if (commit) state[i] = DepState::kSatisfied;
        } else if (v.is_zero() || v.definitely_non_negative()) {
          // Stays pending: a non-negative entry is sound because the
          // zero case falls through to inner loops or syntactic order
          // and the positive case is already ordered.
        } else {
          if (commit) state[i] = DepState::kViolated;
          return false;
        }
      }
      if (satisfied_count) *satisfied_count = sat;
      return true;
    };

    if (li < partial_loop_rows.size()) {
      const IntVec& row = partial_loop_rows[li];
      if (!apply_row(row, /*commit=*/false, nullptr)) {
        std::ostringstream os;
        os << "partial row " << li << " (" << vec_to_string(row)
           << ") reverses or blurs a dependence";
        Diagnostic d;
        d.stage = Stage::kCompletion;
        d.loop = src.positions()[pl].name;
        d.message = os.str();
        throw_diag(std::move(d));
      }
      apply_row(row, /*commit=*/true, nullptr);
      chosen[pl] = row;
      continue;
    }

    // Candidates: unit rows at loop positions, preferring positions no
    // earlier row used (keeps per-statement transformations
    // nonsingular so augmentation is only needed when genuinely
    // unavoidable), the loop's own position first; negated units last
    // (reversal completions).
    std::vector<IntVec> candidates;
    auto unit = [&](int q, i64 s) {
      IntVec e(n, 0);
      e[q] = s;
      return e;
    };
    std::set<int> used;
    for (const auto& [lp, row] : chosen) {
      (void)lp;
      int fz = first_nonzero(row);
      if (fz >= 0 && row[fz] == 1) {
        bool is_unit = true;
        for (size_t q = 0; q < row.size(); ++q)
          if (static_cast<int>(q) != fz && row[q] != 0) is_unit = false;
        if (is_unit) used.insert(fz);
      }
    }
    if (!used.count(pl)) candidates.push_back(unit(pl, 1));
    for (int q : loop_positions)
      if (q != pl && !used.count(q)) candidates.push_back(unit(q, 1));
    if (used.count(pl)) candidates.push_back(unit(pl, 1));
    for (int q : loop_positions)
      if (q != pl && used.count(q)) candidates.push_back(unit(q, 1));
    for (int q : loop_positions) candidates.push_back(unit(q, -1));

    const IntVec* best = nullptr;
    int best_sat = -1;
    for (const IntVec& cand : candidates) {
      int sat = 0;
      if (!apply_row(cand, /*commit=*/false, &sat)) continue;
      if (sat > best_sat) {
        best_sat = sat;
        best = &cand;
        if (!relevant.empty() &&
            sat == static_cast<int>(relevant.size()))
          break;  // cannot do better
      }
    }
    if (!best) {
      Diagnostic d;
      d.stage = Stage::kCompletion;
      d.loop = src.positions()[pl].name;
      d.message =
          "no unit row can legally fill loop " + src.positions()[pl].name;
      throw_diag(std::move(d));
    }
    IntVec row = *best;
    apply_row(row, /*commit=*/true, nullptr);
    chosen[pl] = std::move(row);
  }

  // Syntactic-order constraints from dependences whose common-loop
  // projection stayed zero: at the divergence node, the source's child
  // must precede the destination's child in the new order.
  std::map<const Node*, std::vector<std::pair<int, int>>> must_precede;
  for (size_t i = 0; i < deps.deps.size(); ++i) {
    if (state[i] != DepState::kPending) continue;
    const Dependence& d = deps.deps[i];
    if (d.src == d.dst) continue;  // handled by augmentation
    auto pa = path_of(prog, src.stmt_info(d.src).stmt);
    auto pb = path_of(prog, src.stmt_info(d.dst).stmt);
    size_t t = 0;
    while (t < pa.size() && t < pb.size() && pa[t] == pb[t]) ++t;
    INLT_CHECK(t < pa.size() && t < pb.size());
    INLT_CHECK(pa[t].first == pb[t].first);
    must_precede[pa[t].first].emplace_back(pa[t].second, pb[t].second);
  }

  // Stable topological sort of each constrained node's children.
  std::map<const Node*, std::vector<int>> child_perm;  // perm[old] = new
  for (const auto& [node, edges] : must_precede) {
    int m = node ? node->num_children()
                 : static_cast<int>(prog.roots().size());
    std::vector<std::vector<int>> succ(m);
    std::vector<int> indegree(m, 0);
    for (auto [a, b] : edges) {
      succ[a].push_back(b);
      ++indegree[b];
    }
    std::vector<int> order;  // order[new] = old
    std::vector<bool> done(m, false);
    for (int step = 0; step < m; ++step) {
      int pick = -1;
      for (int c = 0; c < m; ++c)
        if (!done[c] && indegree[c] == 0) {
          pick = c;
          break;  // smallest original index: stable
        }
      if (pick < 0) {
        Diagnostic d;
        d.stage = Stage::kCompletion;
        d.message =
            "syntactic-order constraints are cyclic; no statement "
            "reordering satisfies the remaining dependences";
        throw_diag(std::move(d));
      }
      done[pick] = true;
      order.push_back(pick);
      for (int s : succ[pick]) --indegree[s];
    }
    std::vector<int> perm(m);
    for (int newc = 0; newc < m; ++newc) perm[order[newc]] = newc;
    child_perm[node] = std::move(perm);
  }

  // Assemble the matrix by walking the permuted structure exactly as
  // the target layout will (Eq. 1 order).
  IntMat mat(n, n);
  int cursor = 0;
  std::function<void(const Node*, const std::vector<NodePtr>&)> emit =
      [&](const Node* node, const std::vector<NodePtr>& children) {
        if (node) {
          mat.set_row(cursor++, chosen.at(src.segment(node).loop_pos));
        }
        int m = static_cast<int>(children.size());
        std::vector<int> inv(m);
        auto it = child_perm.find(node);
        if (it != child_perm.end()) {
          for (int o = 0; o < m; ++o) inv[it->second[o]] = o;
        } else {
          for (int c = 0; c < m; ++c) inv[c] = c;
        }
        const IvLayout::Segment& seg = src.segment(node);
        if (m > 1) {
          for (int k = 0; k < m; ++k) {
            int new_index = m - 1 - k;
            IntVec row(n, 0);
            row[seg.child_edge_pos[inv[new_index]]] = 1;
            mat.set_row(cursor++, row);
          }
        }
        for (int newc = m - 1; newc >= 0; --newc) {
          const Node* child = children[inv[newc]].get();
          if (child->is_loop()) emit(child, child->children());
        }
      };
  emit(nullptr, prog.roots());
  INLT_CHECK(cursor == n);

  AstRecovery rec = recover_ast(src, mat);
  CompletionResult result{std::move(mat), std::move(rec), {}};
  result.legality = check_legality(src, deps, result.matrix, result.recovery);
  if (!result.legality.legal()) {
    std::ostringstream os;
    os << "completion produced an illegal matrix:";
    for (const std::string& v : result.legality.violations) os << "\n  " << v;
    throw DiagnosedTransformError(os.str(), result.legality.diagnostics);
  }
  return result;
}

}  // namespace inlt
