#include "transform/incremental.hpp"

#include <algorithm>

#include "instance/program_order.hpp"
#include "support/check.hpp"
#include "support/stats.hpp"

namespace inlt {

namespace {

std::atomic<i64>& stat_pushes() {
  static std::atomic<i64>& c = Stats::global().counter("incremental.pushes");
  return c;
}
std::atomic<i64>& stat_memo_hits() {
  static std::atomic<i64>& c =
      Stats::global().counter("incremental.memo_hits");
  return c;
}
std::atomic<i64>& stat_rows_evaluated() {
  static std::atomic<i64>& c =
      Stats::global().counter("incremental.rows_evaluated");
  return c;
}

}  // namespace

IncrementalLegality::IncrementalLegality(const IvLayout& layout,
                                         const DependenceSet& deps)
    : layout_(layout), deps_(deps), slots_(layout.all_loop_positions()) {
  size_t nd = deps_.deps.size();
  in_common_.resize(nd);
  zero_ok_.resize(nd);
  is_self_.resize(nd);
  order_.resize(nd);
  for (size_t d = 0; d < nd; ++d) {
    const Dependence& dep = deps_.deps[d];
    // For structure-preserving candidates the target tree equals the
    // source tree, so the projection target and the syntactic order
    // are source-layout facts, computable once up front.
    std::vector<int> common = layout_.common_loop_positions(dep.src, dep.dst);
    std::vector<std::uint8_t>& mask = in_common_[d];
    mask.assign(slots_.size(), 0);
    size_t ci = 0;  // both lists ascend: merge walk
    for (size_t s = 0; s < slots_.size(); ++s) {
      while (ci < common.size() && common[ci] < slots_[s]) ++ci;
      if (ci < common.size() && common[ci] == slots_[s]) mask[s] = 1;
    }
    is_self_[d] = dep.src == dep.dst;
    zero_ok_[d] =
        is_self_[d] || syntactically_before(layout_, dep.src, dep.dst);
    order_[d] = static_cast<int>(d);
  }
  root_ = std::make_unique<Node>();
  root_->states.assign(nd, kRun);
  path_.push_back(root_.get());
}

bool IncrementalLegality::supports(const IntMat& m) const {
  if (m.rows() != layout_.size() || m.cols() != layout_.size()) return false;
  for (int p = 0; p < layout_.size(); ++p) {
    if (layout_.positions()[p].kind != PositionKind::kEdge) continue;
    for (int j = 0; j < m.cols(); ++j)
      if (m(p, j) != (j == p ? 1 : 0)) return false;
  }
  return true;
}

IncrementalLegality::State IncrementalLegality::step(State s,
                                                     const DepEntry& e) const {
  // One transition of the lex_status walk (direction.cpp): the final
  // states absorb, zero entries are skipped, a definitely-positive
  // entry accepts, a definitely-negative or mixed-sign entry rejects
  // (negative after a possibly-zero entry is kUnknown there — also a
  // rejection), and a non-negative entry marks "may still be zero".
  if (s == kAccept || s == kReject) return s;
  if (e.is_zero()) return s;
  if (e.definitely_positive()) return kAccept;
  if (e.definitely_negative()) return kReject;
  if (e.definitely_non_negative()) return kRunNonNeg;
  return kReject;  // undecidable interval
}

bool IncrementalLegality::push_row(const IntVec& row) {
  INLT_CHECK_MSG(depth() < num_slots(), "push_row past the last slot");
  INLT_CHECK(row.size() == static_cast<size_t>(layout_.size()));
  stat_pushes().fetch_add(1, std::memory_order_relaxed);
  Node* cur = path_.back();
  auto it = cur->children.find(row);
  if (it != cur->children.end()) {
    stat_memo_hits().fetch_add(1, std::memory_order_relaxed);
    path_.push_back(it->second.get());
    return it->second->viable;
  }

  auto child = std::make_unique<Node>();
  Node* node = child.get();
  if (!cur->viable) {
    // Extending a dead prefix: stay dead, no work.
    node->viable = false;
    node->killer = cur->killer;
    node->killer_row = cur->killer_row;
  } else {
    stat_rows_evaluated().fetch_add(1, std::memory_order_relaxed);
    node->states = cur->states;
    int slot = depth();
    for (int d : order_) {
      if (!in_common_[d][slot]) continue;
      State s = static_cast<State>(node->states[d]);
      if (s == kAccept || s == kReject) continue;
      // Entry of the transformed projection at this slot: row · d.
      const DepVector& v = deps_.deps[d].vector;
      DepEntry acc = DepEntry::exact(0);
      for (size_t j = 0; j < row.size(); ++j)
        if (row[j] != 0) acc = acc + v[j] * row[j];
      State ns = step(s, acc);
      node->states[d] = ns;
      if (ns == kReject) {
        node->viable = false;
        node->killer = d;
        node->killer_row = slot;
        node->states.clear();  // dead nodes carry no states
        // Move-to-front: this dependence just proved it prunes; try
        // it first on future prefixes.
        auto pos = std::find(order_.begin(), order_.end(), d);
        order_.erase(pos);
        order_.insert(order_.begin(), d);
        break;
      }
    }
  }
  path_.push_back(node);
  ++node_count_;
  cur->children.emplace(row, std::move(child));
  return node->viable;
}

void IncrementalLegality::pop_row() {
  INLT_CHECK_MSG(path_.size() > 1, "pop_row on an empty stack");
  path_.pop_back();
}

bool IncrementalLegality::prefix_viable() const {
  return path_.back()->viable;
}

int IncrementalLegality::killer() const { return path_.back()->killer; }

int IncrementalLegality::killer_row() const {
  return path_.back()->killer_row;
}

int IncrementalLegality::leaf_killer() const {
  return path_.back()->leaf_killer;
}

bool IncrementalLegality::current_legal() const {
  INLT_CHECK_MSG(depth() == num_slots(),
                 "current_legal needs a complete candidate");
  Node* leaf = path_.back();
  if (!leaf->viable) return false;
  if (leaf->leaf_legal < 0) {
    // Dependences still undecided after all rows project to zero (or
    // to a possibly-zero non-negative): legal iff the zero case is
    // acceptable for the pair.
    bool legal = true;
    for (size_t d = 0; d < deps_.deps.size(); ++d) {
      State s = static_cast<State>(leaf->states[d]);
      if ((s == kRun || s == kRunNonNeg) && !zero_ok_[d]) {
        legal = false;
        leaf->leaf_killer = static_cast<int>(d);
        break;
      }
    }
    leaf->leaf_legal = legal ? 1 : 0;
  }
  return leaf->leaf_legal == 1;
}

std::vector<int> IncrementalLegality::current_unsatisfied() const {
  INLT_CHECK_MSG(depth() == num_slots(),
                 "current_unsatisfied needs a complete candidate");
  const Node* leaf = path_.back();
  INLT_CHECK(leaf->viable);
  std::vector<int> out;
  for (size_t d = 0; d < deps_.deps.size(); ++d) {
    State s = static_cast<State>(leaf->states[d]);
    if ((s == kRun || s == kRunNonNeg) && is_self_[d])
      out.push_back(static_cast<int>(d));
  }
  return out;
}

bool IncrementalLegality::check(const IntMat& m) {
  INLT_CHECK_MSG(supports(m), "matrix outside the engine's supported class");
  INLT_CHECK_MSG(path_.size() == 1, "check() needs an empty row stack");
  int pushed = 0;
  bool viable = true;
  for (int s = 0; s < num_slots() && viable; ++s) {
    IntVec row(m.cols());
    for (int j = 0; j < m.cols(); ++j) row[j] = m(slots_[s], j);
    viable = push_row(row);
    ++pushed;
  }
  bool legal = viable && current_legal();
  for (int s = 0; s < pushed; ++s) pop_row();
  return legal;
}

void IncrementalLegality::clear() {
  INLT_CHECK_MSG(path_.size() == 1, "clear with rows still pushed");
  root_->children.clear();
  root_->leaf_legal = -1;
  root_->leaf_killer = -1;
  path_.back() = root_.get();
  node_count_ = 1;
}

}  // namespace inlt
