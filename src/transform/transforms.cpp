#include "transform/transforms.hpp"

#include <algorithm>
#include <functional>
#include <map>

#include "support/check.hpp"
#include "support/diag.hpp"

namespace inlt {

namespace {

const Node* find_root_loop(const Program& p, const std::string& var,
                           int* index = nullptr) {
  for (size_t i = 0; i < p.roots().size(); ++i)
    if (p.roots()[i]->is_loop() && p.roots()[i]->var() == var) {
      if (index) *index = static_cast<int>(i);
      return p.roots()[i].get();
    }
  Diagnostic d;
  d.stage = Stage::kStructure;
  d.loop = var;
  d.message = "loop " + var + " is not a root loop";
  throw_diag(std::move(d));
}

const Node* find_loop(const Program& p, const std::string& var) {
  const Node* found = nullptr;
  walk(p, [&](const Node& n, const std::vector<const Node*>&) {
    if (n.is_loop() && n.var() == var) found = &n;
  });
  if (!found) {
    Diagnostic d;
    d.stage = Stage::kStructure;
    d.loop = var;
    d.message = "no loop named " + var;
    throw_diag(std::move(d));
  }
  return found;
}

// Size of the instance-vector block contributed by a child node:
// 0 for a statement leaf, the node's segment size for a loop.
int block_size(const IvLayout& layout, const Node* child) {
  if (child->is_stmt()) return 0;
  const IvLayout::Segment& s = layout.segment(child);
  return s.end - s.start;
}

}  // namespace

IntMat loop_interchange(const IvLayout& layout, const std::string& a,
                        const std::string& b) {
  int pa = layout.loop_position(a);
  int pb = layout.loop_position(b);
  IntMat m = IntMat::identity(layout.size());
  m(pa, pa) = 0;
  m(pb, pb) = 0;
  m(pa, pb) = 1;
  m(pb, pa) = 1;
  return m;
}

IntMat loop_permutation(const IvLayout& layout,
                        const std::vector<std::string>& order) {
  std::vector<int> loop_pos = layout.all_loop_positions();
  INLT_CHECK_MSG(order.size() == loop_pos.size(),
                 "loop_permutation needs one name per loop");
  IntMat m = IntMat::identity(layout.size());
  for (int p : loop_pos)
    for (int q : loop_pos) m(p, q) = 0;
  for (size_t i = 0; i < order.size(); ++i)
    m(loop_pos[i], layout.loop_position(order[i])) = 1;
  INLT_CHECK_MSG(is_permutation_matrix(m), "order is not a permutation");
  return m;
}

IntMat loop_reversal(const IvLayout& layout, const std::string& var) {
  IntMat m = IntMat::identity(layout.size());
  int p = layout.loop_position(var);
  m(p, p) = -1;
  return m;
}

IntMat loop_scaling(const IvLayout& layout, const std::string& var,
                    i64 factor) {
  INLT_CHECK_MSG(factor >= 1, "scale factor must be >= 1");
  IntMat m = IntMat::identity(layout.size());
  int p = layout.loop_position(var);
  m(p, p) = factor;
  return m;
}

IntMat loop_skew(const IvLayout& layout, const std::string& target,
                 const std::string& source, i64 factor) {
  INLT_CHECK_MSG(target != source, "cannot skew a loop by itself");
  IntMat m = IntMat::identity(layout.size());
  m(layout.loop_position(target), layout.loop_position(source)) = factor;
  return m;
}

IntMat statement_reorder(const IvLayout& layout,
                         const std::string& parent_var,
                         const std::vector<int>& perm) {
  const Program& p = layout.program();
  const Node* parent =
      parent_var.empty() ? nullptr : find_loop(p, parent_var);
  const IvLayout::Segment& seg = layout.segment(parent);
  const std::vector<NodePtr>& children =
      parent ? parent->children() : p.roots();
  int m = static_cast<int>(children.size());
  INLT_CHECK_MSG(static_cast<int>(perm.size()) == m,
                 "permutation arity mismatch");
  std::vector<int> inv(m, -1);  // inv[new] = old
  for (int o = 0; o < m; ++o) {
    INLT_CHECK_MSG(perm[o] >= 0 && perm[o] < m && inv[perm[o]] < 0,
                   "perm is not a permutation");
    inv[perm[o]] = o;
  }

  IntMat mat(layout.size(), layout.size());
  // Identity outside the affected ranges.
  std::vector<bool> handled(layout.size(), false);

  // Edge rows: the k-th edge slot (position order) holds the edge to
  // new child (m-1-k); it reads the source edge of old child
  // inv[m-1-k].
  if (m > 1) {
    for (int newc = 0; newc < m; ++newc) {
      int slot_pos = seg.child_edge_pos[newc];  // same slot layout
      int src_pos = seg.child_edge_pos[inv[newc]];
      mat(slot_pos, src_pos) = 1;
      handled[slot_pos] = true;
    }
  }

  // Subtree blocks: target lists new children right-to-left; each block
  // is the identity over the old child's source block.
  int cursor = (m > 1) ? seg.child_edge_pos[0] + 1
                       : (seg.loop_pos >= 0 ? seg.loop_pos + 1 : seg.start);
  for (int newc = m - 1; newc >= 0; --newc) {
    const Node* old_child = children[inv[newc]].get();
    int size = block_size(layout, old_child);
    if (size == 0) continue;
    int src_start = layout.segment(old_child).start;
    for (int k = 0; k < size; ++k) {
      mat(cursor + k, src_start + k) = 1;
      handled[cursor + k] = true;
    }
    cursor += size;
  }

  // Positions outside this node's child area keep identity.
  for (int i = 0; i < layout.size(); ++i) {
    if (handled[i]) continue;
    bool already = false;
    for (int j = 0; j < layout.size(); ++j)
      if (mat(i, j) != 0) already = true;
    if (!already) mat(i, i) = 1;
  }
  return mat;
}

IntMat statement_alignment(const IvLayout& layout, const std::string& label,
                           const std::string& var, i64 offset) {
  const IvLayout::StmtInfo& info = layout.stmt_info(label);
  INLT_CHECK_MSG(!info.path_edge_positions.empty(),
                 "statement " + label +
                     " has no path edge; alignment is not a linear map "
                     "on this layout");
  int edge = info.path_edge_positions.back();  // deepest edge
  IntMat m = IntMat::identity(layout.size());
  m(layout.loop_position(var), edge) = offset;
  return m;
}

StructuralTransform loop_distribution(const IvLayout& layout,
                                      const std::string& var, int split) {
  const Program& src = layout.program();
  int root_idx = -1;
  const Node* loop = find_root_loop(src, var, &root_idx);
  int m = loop->num_children();
  INLT_CHECK_MSG(split > 0 && split < m, "split must cut the child list");
  INLT_CHECK_MSG(src.roots().size() == 1,
                 "distribution implemented for single-root programs");

  // Build the target program: two copies of the loop.
  Program target;
  for (const std::string& p : src.params()) target.add_param(p);
  NodePtr a = Node::loop(loop->var(), loop->lower(), loop->upper(),
                         loop->step());
  std::string var_b = loop->var() + "_2";
  NodePtr b = Node::loop(var_b, loop->lower(), loop->upper(), loop->step());
  for (int c = 0; c < m; ++c) {
    NodePtr copy = loop->children()[c]->clone();
    if (c >= split) {
      rename_loop_var(*copy, loop->var(), var_b);
      b->add_child(std::move(copy));
    } else {
      a->add_child(std::move(copy));
    }
  }
  // Keep pointers to the copied children before moving the loops in.
  std::vector<const Node*> copy_of(m);
  for (int c = 0; c < split; ++c) copy_of[c] = a->children()[c].get();
  for (int c = split; c < m; ++c)
    copy_of[c] = b->children()[c - split].get();
  const Node* loop_a = target.add_root(std::move(a));
  const Node* loop_b = target.add_root(std::move(b));
  target.validate();

  IvLayout tl(target);
  IntMat mat(tl.size(), layout.size());
  const IvLayout::Segment& src_seg = layout.segment(loop);
  const IvLayout::Segment& root_seg = tl.segment(nullptr);

  // Virtual-root edge rows: the edge to each copy is the sum of the
  // source edge labels of the children it received.
  auto fill_root_edge = [&](int target_row, int lo, int hi) {
    for (int c = lo; c < hi; ++c)
      mat(target_row, src_seg.child_edge_pos[c]) = 1;
  };
  fill_root_edge(root_seg.child_edge_pos[0], 0, split);
  fill_root_edge(root_seg.child_edge_pos[1], split, m);

  // Per-copy recursive mapping: loop labels come from the original
  // loop, inner edges from the matching source edges, inner loop
  // positions from the matching source loops.
  //
  // Because each copied subtree has the same internal shape as its
  // source, segments align position-by-position.
  auto map_copy = [&](const Node* copy_loop, int child_lo, int child_hi) {
    const IvLayout::Segment& tseg = tl.segment(copy_loop);
    mat(tseg.loop_pos, src_seg.loop_pos) = 1;
    // Edges inside the copy (if it has several children).
    int tm = copy_loop->num_children();
    if (tm > 1)
      for (int c = 0; c < tm; ++c)
        mat(tl.segment(copy_loop).child_edge_pos[c],
            src_seg.child_edge_pos[child_lo + c]) = 1;
    // Child subtree blocks.
    for (int c = child_lo; c < child_hi; ++c) {
      const Node* src_child = loop->children()[c].get();
      const Node* dst_child = copy_of[c];
      int size = block_size(layout, src_child);
      if (size == 0) continue;
      int s0 = layout.segment(src_child).start;
      int t0 = tl.segment(dst_child).start;
      for (int k = 0; k < size; ++k) mat(t0 + k, s0 + k) = 1;
    }
  };
  map_copy(loop_a, 0, split);
  map_copy(loop_b, split, m);
  (void)root_idx;
  return {std::move(mat), std::move(target)};
}

std::string check_distribution_legality(const IvLayout& layout,
                                        const DependenceSet& deps,
                                        const std::string& var, int split) {
  const Program& p = layout.program();
  const Node* loop = find_root_loop(p, var);
  // Child index under `loop` for each statement beneath it.
  std::map<std::string, int> group;
  for (int c = 0; c < loop->num_children(); ++c) {
    const Node* child = loop->children()[c].get();
    if (child->is_stmt()) {
      group[child->stmt_data().label] = c;
    } else {
      std::function<void(const Node&)> collect = [&](const Node& n) {
        if (n.is_stmt()) {
          group[n.stmt_data().label] = c;
          return;
        }
        for (const NodePtr& ch : n.children()) collect(*ch);
      };
      collect(*child);
    }
  }
  for (const Dependence& d : deps.deps) {
    auto si = group.find(d.src);
    auto di = group.find(d.dst);
    if (si == group.end() || di == group.end()) continue;
    bool src_second = si->second >= split;
    bool dst_first = di->second < split;
    if (src_second && dst_first) {
      return dep_kind_name(d.kind) + " dependence " + d.src + " -> " +
             d.dst + " on " + d.array +
             " runs from the second group to the first: distribution at " +
             "this split reverses it";
    }
  }
  return "";
}

StructuralTransform loop_jamming(const IvLayout& layout,
                                 const std::string& first,
                                 const std::string& second) {
  const Program& src = layout.program();
  INLT_CHECK_MSG(src.roots().size() == 2,
                 "jamming implemented for two-root programs");
  int ia = -1, ib = -1;
  const Node* la = find_root_loop(src, first, &ia);
  const Node* lb = find_root_loop(src, second, &ib);
  INLT_CHECK_MSG(ia == 0 && ib == 1, "loops must be the two roots in order");

  Program target;
  for (const std::string& p : src.params()) target.add_param(p);
  NodePtr fused =
      Node::loop(la->var(), la->lower(), la->upper(), la->step());
  int ma = la->num_children(), mb = lb->num_children();
  std::vector<const Node*> copy_of_a(ma), copy_of_b(mb);
  for (int c = 0; c < ma; ++c) {
    NodePtr copy = la->children()[c]->clone();
    copy_of_a[c] = fused->add_child(std::move(copy));
  }
  for (int c = 0; c < mb; ++c) {
    NodePtr copy = lb->children()[c]->clone();
    rename_loop_var(*copy, lb->var(), la->var());
    copy_of_b[c] = fused->add_child(std::move(copy));
  }
  const Node* fused_ptr = target.add_root(std::move(fused));
  target.validate();

  IvLayout tl(target);
  IntMat mat(tl.size(), layout.size());
  const IvLayout::Segment& tseg = tl.segment(fused_ptr);
  const IvLayout::Segment& sa = layout.segment(la);
  const IvLayout::Segment& sb = layout.segment(lb);
  const IvLayout::Segment& sroot = layout.segment(nullptr);

  // Fused loop label: the first copy's loop (diagonal padding makes
  // either choice agree on every instance).
  mat(tseg.loop_pos, sa.loop_pos) = 1;

  // Fused edges: a child coming from copy X keeps its inner edge if X
  // had several children, otherwise it is identified by X's root edge.
  auto edge_source = [&](const IvLayout::Segment& sseg, int root_edge,
                         int inner_children, int inner_index) {
    return inner_children > 1 ? sseg.child_edge_pos[inner_index] : root_edge;
  };
  for (int c = 0; c < ma + mb; ++c) {
    int row = tseg.child_edge_pos[c];
    if (row < 0) continue;  // fused loop has a single child: no edges
    int col = c < ma ? edge_source(sa, sroot.child_edge_pos[0], ma, c)
                     : edge_source(sb, sroot.child_edge_pos[1], mb, c - ma);
    mat(row, col) = 1;
  }

  // Subtree blocks.
  auto map_children = [&](const Node* src_loop,
                          const std::vector<const Node*>& copies) {
    for (int c = 0; c < static_cast<int>(copies.size()); ++c) {
      const Node* src_child = src_loop->children()[c].get();
      int size = block_size(layout, src_child);
      if (size == 0) continue;
      int s0 = layout.segment(src_child).start;
      int t0 = tl.segment(copies[c]).start;
      for (int k = 0; k < size; ++k) mat(t0 + k, s0 + k) = 1;
    }
  };
  map_children(la, copy_of_a);
  map_children(lb, copy_of_b);
  return {std::move(mat), std::move(target)};
}

}  // namespace inlt
