// The legality test of Definition 6.
//
// A block-structured matrix M is legal when, for every dependence d
// from S1 to S2, the projection P of M·d onto the loops common to S1
// and S2 (in the transformed program) is lexicographically positive,
// or is zero with S1 syntactically before S2 in the new AST. A zero
// projection with S1 == S2 leaves d *unsatisfied*: the augmentation
// step must add loops around S1 that carry it (§5.4).
#pragma once

#include <string>
#include <vector>

#include "dependence/analyzer.hpp"
#include "support/diag.hpp"
#include "transform/block_structure.hpp"

namespace inlt {

struct LegalityResult {
  /// Empty violations == legal. Each entry is the rendered message of
  /// the corresponding entry of `diagnostics` (kept for callers that
  /// only want prose).
  std::vector<std::string> violations;
  /// Structured form of the violations: one kLegality-stage error per
  /// violated dependence, naming source/destination statement, array,
  /// kind and the index into the DependenceSet.
  std::vector<Diagnostic> diagnostics;
  /// Indices into deps.deps of self-dependences left unsatisfied
  /// (projection exactly zero) — input to augmentation.
  std::vector<int> unsatisfied;

  bool legal() const { return violations.empty(); }
};

/// Check Definition 6 for a recovered transformation. `rec` must come
/// from recover_ast(src, m).
LegalityResult check_legality(const IvLayout& src, const DependenceSet& deps,
                              const IntMat& m, const AstRecovery& rec);

/// Convenience: recover + check in one step.
LegalityResult check_legality(const IvLayout& src, const DependenceSet& deps,
                              const IntMat& m);

/// Definition 6 against an explicit target layout — works for the
/// non-square matrices of loop distribution and jamming too (m maps
/// source instance vectors to target ones; the projection target is
/// the pair's common loops in the supplied target program).
LegalityResult check_legality_with_target(const IvLayout& src,
                                          const DependenceSet& deps,
                                          const IntMat& m,
                                          const IvLayout& target_layout);

}  // namespace inlt
