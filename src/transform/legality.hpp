// The legality test of Definition 6.
//
// A block-structured matrix M is legal when, for every dependence d
// from S1 to S2, the projection P of M·d onto the loops common to S1
// and S2 (in the transformed program) is lexicographically positive,
// or is zero with S1 syntactically before S2 in the new AST. A zero
// projection with S1 == S2 leaves d *unsatisfied*: the augmentation
// step must add loops around S1 that carry it (§5.4).
#pragma once

#include <string>
#include <vector>

#include "dependence/analyzer.hpp"
#include "support/diag.hpp"
#include "transform/block_structure.hpp"

namespace inlt {

struct LegalityResult {
  /// Empty violations == legal. Each entry is the rendered message of
  /// the corresponding entry of `diagnostics` (kept for callers that
  /// only want prose).
  std::vector<std::string> violations;
  /// Structured form of the violations: one kLegality-stage error per
  /// violated dependence, naming source/destination statement, array,
  /// kind and the index into the DependenceSet.
  std::vector<Diagnostic> diagnostics;
  /// Indices into deps.deps of self-dependences left unsatisfied
  /// (projection exactly zero) — input to augmentation.
  std::vector<int> unsatisfied;

  bool legal() const { return violations.empty(); }
};

/// Check Definition 6 for a recovered transformation. `rec` must come
/// from recover_ast(src, m).
LegalityResult check_legality(const IvLayout& src, const DependenceSet& deps,
                              const IntMat& m, const AstRecovery& rec);

/// Convenience: recover + check in one step.
LegalityResult check_legality(const IvLayout& src, const DependenceSet& deps,
                              const IntMat& m);

/// Definition 6 against an explicit target layout — works for the
/// non-square matrices of loop distribution and jamming too (m maps
/// source instance vectors to target ones; the projection target is
/// the pair's common loops in the supplied target program).
LegalityResult check_legality_with_target(const IvLayout& src,
                                          const DependenceSet& deps,
                                          const IntMat& m,
                                          const IvLayout& target_layout);

/// Full provenance of one dependence's Definition 6 walk: the
/// transformed vector M·d, its projection P onto the common loops,
/// and where/how the lexicographic verdict was decided.
struct DependenceTrace {
  int dep_index = -1;      ///< index into DependenceSet::deps
  DepVector transformed;   ///< M·d (full instance-vector width)
  std::vector<int> common; ///< common-loop positions (target layout order)
  DepVector projected;     ///< P = (M·d) | common
  LexStatus status = LexStatus::kZero;
  /// Target-layout position (transformed row) whose entry decided the
  /// verdict; -1 when the verdict needed the whole projection (zero /
  /// possibly-zero walks).
  int decided_row = -1;
  bool legal = false;       ///< this dependence's verdict
  bool unsatisfied = false; ///< self-dependence with zero projection
};

/// Per-dependence legality provenance for one candidate — what the
/// `inltc explain` command renders. Entry i describes deps.deps[i];
/// the overall verdict matches check_legality on the same inputs.
struct LegalityTrace {
  std::vector<DependenceTrace> deps;

  bool legal() const;
  /// Indices of violated dependences, ascending.
  std::vector<int> violated() const;

  /// Human-readable rendering in the paper's Δ-vector terms. Needs the
  /// dependence set (statement/array/kind names) and the target layout
  /// (loop names per position).
  std::string to_text(const DependenceSet& deps,
                      const IvLayout& target_layout) const;
};

/// Trace Definition 6 for every dependence. Throws (like recover_ast)
/// when the matrix is not block-structured.
LegalityTrace explain_legality(const IvLayout& src, const DependenceSet& deps,
                               const IntMat& m);

/// Same, against an already-recovered AST (`rec` must come from
/// recover_ast(src, m)) — lets callers keep the target layout for
/// rendering without recovering twice.
LegalityTrace explain_legality(const IvLayout& src, const DependenceSet& deps,
                               const IntMat& m, const AstRecovery& rec);

}  // namespace inlt
