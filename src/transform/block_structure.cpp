#include "transform/block_structure.hpp"

#include <sstream>

#include "support/check.hpp"
#include "support/diag.hpp"

namespace inlt {

namespace {

// Matrix-structure failures (Fig 6 recovery): kStructure-stage errors.
[[noreturn]] void throw_structure(const std::string& message) {
  Diagnostic d;
  d.stage = Stage::kStructure;
  d.message = message;
  throw_diag(std::move(d));
}

struct RecoverState {
  const IvLayout* src;
  const IntMat* m;
  std::map<int, int> loop_pos_map;
  int cursor = 0;
};

// Recover the permutation of `node`'s children from the edge rows at
// the cursor. Returns inv: inv[new_index] = old_index.
std::vector<int> recover_child_perm(RecoverState& st, const Node* node,
                                    int num_children) {
  const IvLayout::Segment& seg = st.src->segment(node);
  std::vector<int> inv(num_children, -1);
  if (num_children <= 1) {
    if (num_children == 1) inv[0] = 0;
    return inv;
  }
  std::vector<bool> used(num_children, false);
  for (int k = 0; k < num_children; ++k) {
    int row = st.cursor + k;
    int new_index = num_children - 1 - k;  // slot order is e_m .. e_1
    int src_edge = -1;
    for (int col = 0; col < st.m->cols(); ++col) {
      i64 v = (*st.m)(row, col);
      if (v == 0) continue;
      // The only allowed entry is a single 1 at one of this node's
      // edge columns.
      int old_child = -1;
      for (int c = 0; c < num_children; ++c)
        if (seg.child_edge_pos[c] == col) old_child = c;
      if (v != 1 || old_child < 0)
        throw_structure("edge row " + std::to_string(row) +
                        " is not a unit selection of a sibling edge column");
      if (src_edge >= 0)
        throw_structure("edge row " + std::to_string(row) +
                        " selects multiple columns");
      src_edge = old_child;
    }
    if (src_edge < 0)
      throw_structure("edge row " + std::to_string(row) +
                      " selects no edge column");
    if (used[src_edge])
      throw_structure("edge rows select old child " +
                      std::to_string(src_edge) + " twice");
    used[src_edge] = true;
    inv[new_index] = src_edge;
  }
  st.cursor += num_children;
  return inv;
}

NodePtr recover_rec(RecoverState& st, const Node* node);

// Recover the (possibly reordered) children of `node` and attach them
// to `out` (a loop node) or return them for the root.
std::vector<NodePtr> recover_children(RecoverState& st, const Node* node,
                                      const std::vector<NodePtr>& children) {
  int m = static_cast<int>(children.size());
  std::vector<int> inv = recover_child_perm(st, node, m);
  std::vector<NodePtr> out(m);
  // Subtrees are consumed right-to-left in new-index order.
  for (int newc = m - 1; newc >= 0; --newc) {
    const Node* old_child = children[inv[newc]].get();
    if (old_child->is_stmt())
      out[newc] = old_child->clone();
    else
      out[newc] = recover_rec(st, old_child);
  }
  return out;
}

NodePtr recover_rec(RecoverState& st, const Node* node) {
  // The node's label row.
  int target_pos = st.cursor++;
  st.loop_pos_map[target_pos] = st.src->segment(node).loop_pos;
  NodePtr fresh = Node::loop(node->var(), node->lower(), node->upper(),
                             node->step());
  for (NodePtr& c : recover_children(st, node, node->children()))
    fresh->add_child(std::move(c));
  return fresh;
}

}  // namespace

AstRecovery recover_ast(const IvLayout& src, const IntMat& m) {
  if (m.rows() != src.size() || m.cols() != src.size())
    throw_structure(
        "transformation matrix must be square over the instance-vector "
        "space (structural transforms use loop_distribution/loop_jamming)");
  RecoverState st{&src, &m, {}, 0};

  auto target = std::make_unique<Program>();
  for (const std::string& p : src.program().params()) target->add_param(p);
  for (NodePtr& r :
       recover_children(st, nullptr, src.program().roots()))
    target->add_root(std::move(r));
  INLT_CHECK_MSG(st.cursor == src.size(),
                 "AST recovery did not consume every row");
  target->validate();

  AstRecovery out;
  out.target = std::move(target);
  out.target_layout = std::make_unique<IvLayout>(*out.target);
  out.loop_pos_map = std::move(st.loop_pos_map);
  return out;
}

std::string check_block_structure(const IvLayout& src, const IntMat& m) {
  try {
    recover_ast(src, m);
    return "";
  } catch (const TransformError& e) {
    return e.what();
  }
}

}  // namespace inlt
