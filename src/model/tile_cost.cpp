#include "model/tile_cost.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "support/check.hpp"

namespace inlt {

namespace {

// Per-variable extent class seen from inside one tile.
enum class VarScope {
  kBand,    // a band variable: extent = its tile size
  kInner,   // a non-band loop inside the band subtree: full trip
  kOuter,   // outside the band subtree (or a parameter): constant
};

bool subtree_contains(const Node* root, const Node* target) {
  if (root == target) return true;
  if (!root->is_loop()) return false;
  for (const NodePtr& c : root->children())
    if (subtree_contains(c.get(), target)) return true;
  return false;
}

double dim_lines(double extent, bool contiguous, const ModelOptions& opts) {
  if (!contiguous) return std::max(1.0, extent);
  return std::max(1.0, extent / static_cast<double>(opts.line_elems));
}

}  // namespace

double loop_trip_estimate(const Node* loop, const ModelOptions& opts) {
  const Bound& lo = loop->lower();
  const Bound& hi = loop->upper();
  if (lo.single() && hi.single() && lo.terms.front().den == 1 &&
      hi.terms.front().den == 1 && lo.terms.front().expr.is_constant() &&
      hi.terms.front().expr.is_constant()) {
    const i64 l = lo.terms.front().expr.constant();
    const i64 h = hi.terms.front().expr.constant();
    if (h < l) return 0;
    return static_cast<double>((h - l) / loop->step() + 1);
  }
  return static_cast<double>(opts.nominal_trip);
}

TileTraffic estimate_tile_traffic(const Program& p,
                                  const std::vector<const Node*>& band_loops,
                                  const std::vector<i64>& sizes,
                                  const ModelOptions& opts) {
  const size_t k = band_loops.size();
  INLT_CHECK_MSG(k > 0 && sizes.size() == k,
                 "estimate_tile_traffic: one size per band loop");
  const Node* band_root = band_loops.front();

  // Band variable -> (dim index, clamped tile size, trip).
  std::map<std::string, size_t> band_dim;
  std::vector<double> trip(k), tile(k);
  for (size_t i = 0; i < k; ++i) {
    band_dim[band_loops[i]->var()] = i;
    trip[i] = loop_trip_estimate(band_loops[i], opts);
    tile[i] = std::min(static_cast<double>(std::max<i64>(sizes[i], 1)),
                       std::max(trip[i], 1.0));
  }

  TileTraffic out;
  for (const StatementContext& sc : p.statements()) {
    // Only statements under the band root are reordered by tiling.
    bool inside = false;
    for (const Node* l : sc.loops)
      if (l == band_root) inside = true;
    if (!inside) continue;

    // Scope of every variable a subscript of this statement may use.
    std::map<std::string, VarScope> scope;
    std::map<std::string, double> inner_trip;
    for (const Node* l : sc.loops) {
      if (band_dim.count(l->var())) {
        scope[l->var()] = VarScope::kBand;
      } else if (subtree_contains(band_root, l)) {
        scope[l->var()] = VarScope::kInner;
        inner_trip[l->var()] = loop_trip_estimate(l, opts);
      } else {
        scope[l->var()] = VarScope::kOuter;
      }
    }

    // Which band dims enclose this statement (imperfect statements sit
    // between band levels: dims below them never re-fetch their data).
    std::set<size_t> enclosing_dims;
    for (const Node* l : sc.loops) {
      auto it = band_dim.find(l->var());
      if (it != band_dim.end()) enclosing_dims.insert(it->second);
    }

    std::set<std::string> seen;  // dedup textually identical refs
    for (const ArrayAccess& a : sc.stmt->stmt_data().accesses()) {
      std::string key = a.array;
      for (const AffineExpr& s : a.subscripts) key += "[" + s.to_string() + "]";
      const bool dup = !seen.insert(key).second;

      RefTraffic rt;
      rt.stmt = sc.label();
      rt.array = a.array;
      rt.is_write = a.is_write;

      // Footprint: per-dimension extent 1 + sum |coef| * (ext(v) - 1).
      double tile_fp = 1, total_fp = 1;
      std::set<size_t> indexing_dims;
      for (size_t d = 0; d < a.subscripts.size(); ++d) {
        double tile_ext = 1, total_ext = 1;
        for (const auto& [v, c] : a.subscripts[d].terms()) {
          const double ac = std::abs(static_cast<double>(c));
          auto it = scope.find(v);
          if (it == scope.end()) continue;  // parameter: constant
          switch (it->second) {
            case VarScope::kBand: {
              const size_t dim = band_dim.at(v);
              indexing_dims.insert(dim);
              tile_ext += ac * (tile[dim] - 1);
              total_ext += ac * (std::max(trip[dim], 1.0) - 1);
              break;
            }
            case VarScope::kInner:
              tile_ext += ac * (std::max(inner_trip.at(v), 1.0) - 1);
              total_ext += ac * (std::max(inner_trip.at(v), 1.0) - 1);
              break;
            case VarScope::kOuter:
              break;
          }
        }
        const bool contiguous = d + 1 == a.subscripts.size();
        tile_fp *= dim_lines(tile_ext, contiguous, opts);
        total_fp *= dim_lines(total_ext, contiguous, opts);
      }

      rt.tile_lines = dup ? 0 : tile_fp;
      rt.lines_total = total_fp;
      rt.refetch = 1;
      for (size_t i = 0; i < k; ++i) {
        if (!enclosing_dims.count(i)) continue;
        if (indexing_dims.count(i)) continue;
        rt.refetch *= std::max(1.0, trip[i] / tile[i]);
      }

      out.footprint_lines += rt.tile_lines;
      if (!dup) out.raw_traffic += rt.lines_total * rt.refetch;
      out.refs.push_back(std::move(rt));
    }
  }

  const double cap = static_cast<double>(kCacheCapacityLines);
  out.fits_cache = out.footprint_lines <= cap;
  out.traffic_lines = out.raw_traffic;
  if (!out.fits_cache && cap > 0)
    out.traffic_lines = out.raw_traffic * (out.footprint_lines / cap);
  return out;
}

TileTraffic estimate_untiled_traffic(
    const Program& p, const std::vector<const Node*>& band_loops,
    const ModelOptions& opts) {
  std::vector<i64> sizes(band_loops.size(), 1);
  const double t = loop_trip_estimate(band_loops.back(), opts);
  sizes.back() = std::max<i64>(1, static_cast<i64>(t));
  return estimate_tile_traffic(p, band_loops, sizes, opts);
}

}  // namespace inlt
