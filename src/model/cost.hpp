// Static cache-locality cost model — the profitability layer.
//
// The paper's motivating observation (§1, §5.5) is that many legal
// transformations of one nest have very different performance; the
// legality machinery alone cannot say which candidate to pick. This
// model ranks candidates without generating or running code: for each
// statement it expresses the source iteration variables in terms of
// the *transformed* loops (per-statement transformation N_S, completed
// to a nonsingular basis with the HNF/nullspace machinery of linalg),
// reads off the per-array-reference stride against the innermost
// target loop, classifies the reference's reuse, and charges an
// estimated number of distinct cache lines touched:
//
//   temporal  — no subscript moves with the innermost loop: the
//               reference stays on one line for the whole inner loop.
//   spatial   — only the last (row-major contiguous) subscript moves,
//               by |g| < line_elems per iteration: a new line every
//               line_elems/|g| iterations.
//   none      — an outer subscript moves (row jumps), or the
//               contiguous stride is a whole line or more: a new line
//               every iteration.
//
// Scores are symbolic-size estimates: every loop is assumed to run
// `nominal_trip` iterations, so a statement at depth k charges
// nominal_trip^(k-1) executions of its innermost loop. The resulting
// CostEstimate is totally ordered (fewer estimated lines = better;
// rank search breaks exact ties by candidate index) and renders both
// as prose (`explain`) and JSON. Ground truth: the VM's cache-line
// probe (exec/interp.hpp CacheProbe) counts the lines a candidate
// actually touches; bench_model keeps the two in rank agreement.
#pragma once

#include <string>
#include <vector>

#include "dependence/analyzer.hpp"
#include "instance/layout.hpp"
#include "linalg/rational.hpp"
#include "support/cache_geometry.hpp"
#include "transform/block_structure.hpp"

namespace inlt {

struct ModelOptions {
  /// Array elements (doubles) per cache line — shared with the VM's
  /// CacheProbe and the tile model via support/cache_geometry.hpp.
  i64 line_elems = kCacheLineElems;
  /// Assumed iterations per loop — the stand-in for symbolic N.
  i64 nominal_trip = 64;
  PadMode pad = PadMode::kDiagonal;
  /// Threads assumed available to the parallel execution engine
  /// (exec/parallel.hpp). With > 1, the dependence-aware overload
  /// discounts the line count of statements under a partitioned doall
  /// level by Amdahl's law (CostEstimate::effective_lines), so ranking
  /// prefers candidates that expose an outer doall. 1 leaves
  /// effective_lines == total_lines and the ordering unchanged.
  int exec_threads = 1;
};

/// Reuse classification of one reference w.r.t. the innermost loop.
enum class ReuseClass {
  kTemporal,  ///< subscripts invariant in the innermost loop
  kSpatial,   ///< contiguous subscript moves by less than a line
  kNone,      ///< a new cache line (nearly) every iteration
};

const char* reuse_class_name(ReuseClass c);

/// Cost of one array reference of one statement.
struct RefCost {
  std::string stmt;
  std::string array;
  bool is_write = false;
  /// Per-subscript-dimension stride for one step of the statement's
  /// innermost transformed loop (exact, in elements of that dimension).
  std::vector<Rational> stride_dims;
  ReuseClass reuse = ReuseClass::kNone;
  /// Estimated distinct cache lines this reference touches over the
  /// whole nest (nominal_trip iterations per loop).
  double lines = 0;
};

/// Totally ordered cost of one candidate: fewer estimated distinct
/// cache lines is better.
struct CostEstimate {
  double total_lines = 0;
  std::vector<RefCost> refs;  ///< statement (syntactic) order, write first

  // Parallel-work term (dependence-aware overload only; otherwise
  // effective_lines == total_lines and the rest stay at defaults).
  /// Amdahl-adjusted lines at `exec_threads`: serial share at full
  /// cost, the share under a partitioned doall divided by the threads.
  double effective_lines = 0;
  /// Fraction of total_lines charged to statements under a
  /// partitioned doall level of the transformed nest.
  double parallel_fraction = 0;
  int exec_threads = 1;
  /// Partitioned doall levels of the candidate (see ParallelSchedule).
  std::vector<std::string> partition;

  /// Strict weak order: by effective_lines (== total_lines whenever
  /// the parallel term is off), then total_lines. Exact ties compare
  /// equal; rank search breaks them by candidate index.
  friend bool operator<(const CostEstimate& a, const CostEstimate& b) {
    if (a.effective_lines != b.effective_lines)
      return a.effective_lines < b.effective_lines;
    return a.total_lines < b.total_lines;
  }

  /// Per-reference breakdown, one line each, statement-grouped.
  std::string to_text() const;
  /// {"total_lines":..,"refs":[{...},...]} (no trailing newline).
  std::string to_json() const;
};

/// Estimate the cost of candidate `m` against the source layout. `rec`
/// must come from recover_ast(src, m). Pure static analysis: no code
/// generation, no execution. Statements whose per-statement
/// transformation is rank-deficient are completed with nullspace rows
/// (the innermost loops augmentation would add); see DESIGN.md for the
/// model's known inaccuracies.
CostEstimate estimate_cost(const IvLayout& src, const IntMat& m,
                           const AstRecovery& rec,
                           const ModelOptions& opts = {});

/// Convenience: recover the AST, then estimate. Throws (like
/// recover_ast) when the matrix is not block-structured.
CostEstimate estimate_cost(const IvLayout& src, const IntMat& m,
                           const ModelOptions& opts = {});

/// Dependence-aware estimate: the base estimate plus the parallel-work
/// term. The candidate's doall partition (analyze_target_parallelism)
/// decides which statements parallelize; their line share is divided
/// by `opts.exec_threads` in effective_lines. With exec_threads == 1
/// this is exactly the base estimate.
CostEstimate estimate_cost(const IvLayout& src, const DependenceSet& deps,
                           const IntMat& m, const AstRecovery& rec,
                           const ModelOptions& opts = {});

}  // namespace inlt
