// Tile-aware working-set and traffic model — the profitability layer
// of the tiling subsystem.
//
// The base cost model (model/cost.hpp) ranks *orders* of one nest; it
// assumes the inner loop sweeps each reference once and cannot see the
// benefit of blocking. This model estimates, for a fully-permutable
// band and a candidate tile-size vector B, the number of cache-line
// transfers the whole nest performs:
//
//   traffic = sum over array references R of
//       distinct_lines(R) * product over band dims i that R does not
//                           depend on of (trip_i / B_i)
//
// i.e. every line of R is fetched once per tile pass along each band
// dimension that does not index it (the classic blocked-matmul
// argument: shrinking a non-indexing dimension's pass count by B_i
// cuts R's traffic by B_i). The estimate is charged a capacity
// penalty — multiplied by footprint/capacity — when the per-tile
// working set (distinct lines all references touch inside one tile,
// inner non-band loops at their full nominal trip) exceeds the shared
// cache geometry's capacity_lines, so ever-larger tiles stop looking
// free exactly when they stop fitting.
//
// Untiled execution is the point B = (1, .., 1, trip_k) of the same
// family — the innermost band loop swept in full, nothing blocked —
// which makes tiled-vs-untiled ratios apples-to-apples. All sizes are
// symbolic-nominal like the base model: constant loop bounds give
// exact trips, anything else falls back to ModelOptions::nominal_trip.
#pragma once

#include <string>
#include <vector>

#include "ir/ast.hpp"
#include "model/cost.hpp"

namespace inlt {

/// Traffic of one array reference under one tile-size choice.
struct RefTraffic {
  std::string stmt;
  std::string array;
  bool is_write = false;
  /// Distinct lines the reference touches over the whole band.
  double lines_total = 0;
  /// Tile passes that re-fetch those lines (product of trip_i/B_i over
  /// non-indexing band dims).
  double refetch = 1;
  /// Distinct lines inside one tile (footprint share).
  double tile_lines = 0;
};

struct TileTraffic {
  /// Capacity-penalized estimated line transfers for the whole nest.
  double traffic_lines = 0;
  /// Same before the capacity penalty.
  double raw_traffic = 0;
  /// Per-tile working set, distinct lines, all references.
  double footprint_lines = 0;
  bool fits_cache = true;
  std::vector<RefTraffic> refs;
};

/// Estimate traffic for tiling `band_loops` (a nested chain inside
/// `p`, outermost first — LoopBand::loops) with per-loop sizes
/// `sizes`. Statements outside the band subtree are ignored: tiling
/// does not change their traffic.
TileTraffic estimate_tile_traffic(const Program& p,
                                  const std::vector<const Node*>& band_loops,
                                  const std::vector<i64>& sizes,
                                  const ModelOptions& opts = {});

/// The untiled point of the same model: B = (1, .., 1, trip_k).
TileTraffic estimate_untiled_traffic(
    const Program& p, const std::vector<const Node*>& band_loops,
    const ModelOptions& opts = {});

/// Trip count of a loop: exact when both bounds are single constant
/// tight terms, ModelOptions::nominal_trip otherwise (zero-trip floors
/// at 0).
double loop_trip_estimate(const Node* loop, const ModelOptions& opts);

}  // namespace inlt
