#include "model/cost.hpp"

#include <cmath>
#include <set>
#include <sstream>

#include "linalg/gauss.hpp"
#include "linalg/hermite.hpp"
#include "support/json.hpp"
#include "support/stats.hpp"
#include "support/trace.hpp"
#include "transform/parallel.hpp"
#include "transform/per_statement.hpp"

namespace inlt {

const char* reuse_class_name(ReuseClass c) {
  switch (c) {
    case ReuseClass::kTemporal: return "temporal";
    case ReuseClass::kSpatial: return "spatial";
    case ReuseClass::kNone: return "none";
  }
  return "?";
}

namespace {

Rational rat_abs(const Rational& r) { return r.sign() < 0 ? -r : r; }

double rat_double(const Rational& r) {
  return static_cast<double>(r.num()) / static_cast<double>(r.den());
}

// Stride of each subscript dimension of `a` for one step of the
// statement's innermost transformed loop, where `dir` is that step
// expressed in source iteration variables (`vars` order).
std::vector<Rational> subscript_strides(const ArrayAccess& a,
                                        const std::vector<std::string>& vars,
                                        const std::vector<Rational>& dir) {
  std::vector<Rational> out;
  out.reserve(a.subscripts.size());
  for (const AffineExpr& sub : a.subscripts) {
    Rational s = 0;
    for (size_t j = 0; j < vars.size(); ++j) {
      i64 c = sub.coef(vars[j]);
      if (c != 0) s += Rational(c) * dir[j];
    }
    out.push_back(s);
  }
  return out;
}

}  // namespace

CostEstimate estimate_cost(const IvLayout& src, const IntMat& m,
                           const AstRecovery& rec, const ModelOptions& opts) {
  ScopedTimer timer("model.estimate_ns");
  ScopedSpan span("model.estimate", "model");
  Stats::global().add("model.estimates");
  CostEstimate est;
  const Rational line(opts.line_elems);
  const double trip = static_cast<double>(opts.nominal_trip);

  for (const std::string& label : src.stmt_labels()) {
    const StatementContext sc = src.program().find_statement(label);
    const std::vector<std::string> vars = sc.loop_vars();
    const int k = static_cast<int>(vars.size());
    const std::vector<ArrayAccess> accesses = sc.stmt->stmt_data().accesses();

    // Source iteration delta for one step of the statement's innermost
    // transformed loop: complete the independent rows of M_S to a
    // nonsingular basis T (dropped singular rows are guarded
    // single-iteration loops; appended nullspace rows are the loops
    // augmentation would add, innermost), then the innermost target
    // label steps by the last HNF diagonal of T on its lattice and the
    // source vars move by T^{-1} · (step · e_last).
    std::vector<Rational> dir(static_cast<size_t>(k), Rational(0));
    if (k > 0) {
      PerStatement ps = per_statement_transform(src, rec, m, label, opts.pad);
      IntMat kept;
      for (int r : independent_row_indices(ps.matrix))
        kept.append_row(ps.matrix.row(r));
      IntMat t_full =
          kept.rows() == 0 ? IntMat::identity(k) : complete_to_nonsingular(kept);
      RatMat t_inv = inverse(to_rational(t_full));
      HermiteResult h = hermite_normal_form(t_full);
      Rational step = h.h(k - 1, k - 1);
      for (int i = 0; i < k; ++i) dir[i] = t_inv(i, k - 1) * step;
    }

    // Executions of the statement's innermost loop over the whole nest.
    const double inner_runs = k > 1 ? std::pow(trip, k - 1) : 1.0;

    for (const ArrayAccess& a : accesses) {
      RefCost rc;
      rc.stmt = label;
      rc.array = a.array;
      rc.is_write = a.is_write;
      rc.stride_dims = subscript_strides(a, vars, dir);

      bool outer_moves = false;
      for (size_t d = 0; d + 1 < rc.stride_dims.size(); ++d)
        if (!rc.stride_dims[d].is_zero()) outer_moves = true;
      const Rational contiguous =
          rc.stride_dims.empty() ? Rational(0) : rat_abs(rc.stride_dims.back());

      double lines_per_inner_run;
      if (k == 0 || (!outer_moves && contiguous.is_zero())) {
        rc.reuse = ReuseClass::kTemporal;
        lines_per_inner_run = 1.0;
      } else if (!outer_moves && contiguous < line) {
        rc.reuse = ReuseClass::kSpatial;
        lines_per_inner_run =
            std::max(1.0, trip * rat_double(contiguous) /
                              static_cast<double>(opts.line_elems));
      } else {
        rc.reuse = ReuseClass::kNone;
        lines_per_inner_run = trip;
      }
      rc.lines = (k == 0 ? 1.0 : inner_runs) * lines_per_inner_run;
      est.total_lines += rc.lines;
      est.refs.push_back(std::move(rc));
    }
  }
  est.exec_threads = opts.exec_threads;
  est.effective_lines = est.total_lines;
  if (span.active()) {
    span.arg("refs", static_cast<i64>(est.refs.size()));
    span.arg("lines", static_cast<i64>(est.total_lines));
  }
  return est;
}

CostEstimate estimate_cost(const IvLayout& src, const IntMat& m,
                           const ModelOptions& opts) {
  AstRecovery rec = recover_ast(src, m);
  return estimate_cost(src, m, rec, opts);
}

namespace {

// Labels of the statements under some partitioned doall level of the
// target AST — the statements whose work the exec pool chunks.
void collect_partitioned_stmts(const Node* n,
                               const std::set<std::string>& partition,
                               bool under, std::set<std::string>& out) {
  if (n->is_stmt()) {
    if (under) out.insert(n->stmt_data().label);
    return;
  }
  if (n->is_loop() && partition.count(n->var())) under = true;
  for (const NodePtr& c : n->children())
    collect_partitioned_stmts(c.get(), partition, under, out);
}

}  // namespace

CostEstimate estimate_cost(const IvLayout& src, const DependenceSet& deps,
                           const IntMat& m, const AstRecovery& rec,
                           const ModelOptions& opts) {
  CostEstimate est = estimate_cost(src, m, rec, opts);
  ParallelSchedule sched = analyze_target_parallelism(src, deps, m, rec);
  est.partition = sched.partition;
  if (sched.partition.empty() || est.total_lines <= 0) return est;

  const std::set<std::string> part(sched.partition.begin(),
                                   sched.partition.end());
  std::set<std::string> par_stmts;
  for (const NodePtr& root : rec.target->roots())
    collect_partitioned_stmts(root.get(), part, false, par_stmts);

  double par_lines = 0;
  for (const RefCost& r : est.refs)
    if (par_stmts.count(r.stmt)) par_lines += r.lines;
  est.parallel_fraction = par_lines / est.total_lines;
  const double t = static_cast<double>(opts.exec_threads > 0
                                           ? opts.exec_threads
                                           : 1);
  est.effective_lines =
      est.total_lines * ((1.0 - est.parallel_fraction) +
                         est.parallel_fraction / t);
  return est;
}

std::string CostEstimate::to_text() const {
  std::ostringstream os;
  os << "estimated distinct cache lines: " << total_lines << "\n";
  std::string current;
  for (const RefCost& r : refs) {
    if (r.stmt != current) {
      current = r.stmt;
      os << "  " << r.stmt << ":\n";
    }
    os << "    " << (r.is_write ? "write " : "read  ") << r.array << "(";
    for (size_t d = 0; d < r.stride_dims.size(); ++d)
      os << (d ? "," : "") << r.stride_dims[d].to_string();
    os << ")  " << reuse_class_name(r.reuse) << "  lines=" << r.lines << "\n";
  }
  if (exec_threads > 1) {
    os << "parallel work: threads=" << exec_threads
       << "  fraction=" << parallel_fraction
       << "  effective lines=" << effective_lines << "\n";
    if (!partition.empty()) {
      os << "  partition:";
      for (const std::string& v : partition) os << " " << v;
      os << "\n";
    }
  }
  return os.str();
}

std::string CostEstimate::to_json() const {
  std::ostringstream os;
  os << "{\"total_lines\":" << total_lines
     << ",\"effective_lines\":" << effective_lines
     << ",\"parallel_fraction\":" << parallel_fraction
     << ",\"exec_threads\":" << exec_threads << ",\"partition\":[";
  for (size_t i = 0; i < partition.size(); ++i)
    os << (i ? "," : "") << "\"" << json_escape(partition[i]) << "\"";
  os << "],\"refs\":[";
  for (size_t i = 0; i < refs.size(); ++i) {
    const RefCost& r = refs[i];
    os << (i ? "," : "") << "{\"stmt\":\"" << json_escape(r.stmt)
       << "\",\"array\":\"" << json_escape(r.array)
       << "\",\"write\":" << (r.is_write ? "true" : "false")
       << ",\"stride\":[";
    for (size_t d = 0; d < r.stride_dims.size(); ++d)
      os << (d ? "," : "") << "\"" << r.stride_dims[d].to_string() << "\"";
    os << "],\"reuse\":\"" << reuse_class_name(r.reuse)
       << "\",\"lines\":" << r.lines << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace inlt
