// Native engine driver (see native.hpp): compiler discovery, the
// content-addressed on-disk cache, the dlopen handle LRU, and the
// Memory <-> kernel ABI packing.
#include "exec/native.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "exec/cgen.hpp"
#include "support/check.hpp"
#include "support/sha256.hpp"
#include "support/stats.hpp"
#include "support/trace.hpp"

#if !defined(_WIN32)
#include <dlfcn.h>
#include <sys/types.h>
#include <unistd.h>
#define INLT_HAS_DLOPEN 1
#else
#define INLT_HAS_DLOPEN 0
#endif

namespace inlt {

namespace fs = std::filesystem;

/// Compilation flags baked into every kernel build AND into the cache
/// key. -ffp-contract=off matches the inlt_exec build (bit-identical
/// float semantics, no FMA contraction); -fwrapv makes the emitted
/// unchecked int64 arithmetic defined (wrapping) instead of UB.
static constexpr const char* kNativeFlags =
    "-O3 -fPIC -shared -ffp-contract=off -fwrapv";

using KernelFn = i64 (*)(double**, const i64*, const i64*, i64, i64*, char*,
                         i64);

/// An open compiled kernel: the dlopen handle, the entry point and the
/// argument-binding spec. Held by shared_ptr so LRU eviction can
/// dlclose lazily — the library stays mapped until the last running
/// kernel drops its reference.
class NativeKernel {
 public:
  NativeKernel(void* handle, KernelFn fn, NativeKernelSource spec)
      : handle_(handle), fn_(fn), spec_(std::move(spec)) {}
  ~NativeKernel() {
#if INLT_HAS_DLOPEN
    if (handle_) dlclose(handle_);
#endif
  }
  NativeKernel(const NativeKernel&) = delete;
  NativeKernel& operator=(const NativeKernel&) = delete;

  KernelFn fn() const { return fn_; }
  const NativeKernelSource& spec() const { return spec_; }

 private:
  void* handle_;
  KernelFn fn_;
  NativeKernelSource spec_;
};

namespace {

std::string getenv_str(const char* name) {
  const char* v = std::getenv(name);
  return v ? std::string(v) : std::string();
}

/// First stdout line of a shell command, empty on any failure.
std::string first_line_of(const std::string& cmd) {
#if INLT_HAS_DLOPEN
  FILE* f = ::popen((cmd + " 2>/dev/null").c_str(), "r");
  if (!f) return "";
  char buf[512];
  std::string line;
  if (std::fgets(buf, sizeof(buf), f)) line = buf;
  int rc = ::pclose(f);
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r'))
    line.pop_back();
  if (rc != 0) return "";
  return line;
#else
  (void)cmd;
  return "";
#endif
}

/// Memoized `<compiler> --version` probe; the empty string means "no
/// usable compiler behind that command". Keyed by the command string,
/// so tests flipping $INLTC_CC get a fresh probe per value.
std::string compiler_id(const std::string& cmd) {
  static std::mutex mu;
  static std::unordered_map<std::string, std::string> cache;
  std::lock_guard<std::mutex> lock(mu);
  auto it = cache.find(cmd);
  if (it != cache.end()) return it->second;
  std::string id = first_line_of(cmd + " --version");
  cache[cmd] = id;
  return id;
}

Diagnostic exec_warning(std::string message) {
  Diagnostic d;
  d.severity = Severity::kWarning;
  d.stage = Stage::kExec;
  d.message = std::move(message);
  return d;
}

std::string cache_key_for(const NativeKernelSource& src,
                          const std::string& comp_id) {
  Sha256 h;
  h.update(src.code);
  h.update("\0", 1);
  h.update(comp_id);
  h.update("\0", 1);
  h.update(kNativeFlags);
  auto d = h.digest();
  static const char* hex = "0123456789abcdef";
  std::string out;
  out.reserve(64);
  for (std::uint8_t b : d) {
    out.push_back(hex[b >> 4]);
    out.push_back(hex[b & 0xf]);
  }
  return out;
}

// ---- in-process LRU of open handles ----

struct HandleLru {
  std::mutex mu;
  // Most-recently-used at the front.
  std::list<std::pair<std::string, std::shared_ptr<NativeKernel>>> order;
  std::unordered_map<
      std::string,
      std::list<std::pair<std::string, std::shared_ptr<NativeKernel>>>::iterator>
      by_key;

  static size_t capacity() {
    std::string v = getenv_str("INLTC_NATIVE_LRU");
    if (!v.empty()) {
      long n = std::atol(v.c_str());
      if (n >= 1) return static_cast<size_t>(n);
    }
    return 64;
  }

  std::shared_ptr<NativeKernel> get(const std::string& key) {
    std::lock_guard<std::mutex> lock(mu);
    auto it = by_key.find(key);
    if (it == by_key.end()) return nullptr;
    order.splice(order.begin(), order, it->second);
    return order.front().second;
  }

  // Insert (or adopt the racing winner's entry); evicts beyond
  // capacity. Evicted kernels dlclose when their last user finishes.
  std::shared_ptr<NativeKernel> put(const std::string& key,
                                    std::shared_ptr<NativeKernel> k) {
    std::lock_guard<std::mutex> lock(mu);
    auto it = by_key.find(key);
    if (it != by_key.end()) {
      order.splice(order.begin(), order, it->second);
      return order.front().second;
    }
    order.emplace_front(key, std::move(k));
    by_key[key] = order.begin();
    size_t cap = capacity();
    while (order.size() > cap) {
      by_key.erase(order.back().first);
      order.pop_back();
    }
    return order.front().second;
  }

  void clear() {
    std::lock_guard<std::mutex> lock(mu);
    by_key.clear();
    order.clear();
  }
};

HandleLru& lru() {
  static HandleLru* l = new HandleLru();
  return *l;
}

std::atomic<std::uint64_t> temp_seq{0};

/// dlopen + dlsym one cache file; null on any failure.
std::shared_ptr<NativeKernel> open_kernel(const std::string& path,
                                          const NativeKernelSource& spec,
                                          std::string* why) {
#if INLT_HAS_DLOPEN
  void* h = dlopen(path.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (!h) {
    const char* e = dlerror();
    if (why) *why = e ? e : "dlopen failed";
    return nullptr;
  }
  void* sym = dlsym(h, kNativeKernelSymbol);
  if (!sym) {
    const char* e = dlerror();
    if (why) *why = e ? e : "dlsym failed";
    dlclose(h);
    return nullptr;
  }
  KernelFn fn;
  static_assert(sizeof(fn) == sizeof(sym));
  std::memcpy(&fn, &sym, sizeof(fn));
  return std::make_shared<NativeKernel>(h, fn, spec);
#else
  (void)path;
  (void)spec;
  if (why) *why = "dlopen is not available on this platform";
  return nullptr;
#endif
}

}  // namespace

std::string native_compiler() {
  std::string cc = getenv_str("INLTC_CC");
  if (!cc.empty()) return cc;
  cc = getenv_str("CC");
  if (!cc.empty()) return cc;
  return "cc";
}

bool native_available(std::string* why) {
#if !INLT_HAS_DLOPEN
  if (why) *why = "dlopen is not available on this platform";
  return false;
#else
  std::string cc = native_compiler();
  if (compiler_id(cc).empty()) {
    if (why)
      *why = "no usable C compiler: '" + cc +
             " --version' failed (set $INLTC_CC or $CC)";
    return false;
  }
  return true;
#endif
}

std::string native_cache_dir() {
  std::string dir = getenv_str("INLTC_CACHE_DIR");
  if (dir.empty()) {
    std::string xdg = getenv_str("XDG_CACHE_HOME");
    if (!xdg.empty()) {
      dir = xdg + "/inltc";
    } else {
      std::string home = getenv_str("HOME");
      if (!home.empty()) {
        dir = home + "/.cache/inltc";
      } else {
#if INLT_HAS_DLOPEN
        dir = "/tmp/inltc-cache-" + std::to_string(::getuid());
#else
        dir = "inltc-cache";
#endif
      }
    }
  }
  std::error_code ec;
  fs::create_directories(dir, ec);  // best effort; open/write will report
  return dir;
}

std::string native_cache_key(const Program& p) {
  NativeKernelSource src = emit_native_c(p);
  return cache_key_for(src, compiler_id(native_compiler()));
}

std::shared_ptr<NativeKernel> native_prepare(const Program& p,
                                             Diagnostic* why) {
  NativeKernelSource src;
  try {
    src = emit_native_c(p);
  } catch (const Error& e) {
    if (why)
      *why = exec_warning(std::string("native engine: cannot lower program (") +
                          e.what() + "); using the VM");
    Stats::global().add("exec.native.emit_unsupported");
    return nullptr;
  }

  std::string avail_why;
  if (!native_available(&avail_why)) {
    if (why)
      *why = exec_warning("native engine unavailable: " + avail_why +
                          "; using the VM");
    return nullptr;
  }

  const std::string cc = native_compiler();
  const std::string key = cache_key_for(src, compiler_id(cc));

  if (std::shared_ptr<NativeKernel> k = lru().get(key)) {
    Stats::global().add("exec.native.lru_hits");
    return k;
  }

  const std::string dir = native_cache_dir();
  const std::string so_path = dir + "/" + key + ".so";

  std::error_code ec;
  if (fs::exists(so_path, ec)) {
    std::string open_why;
    if (std::shared_ptr<NativeKernel> k = open_kernel(so_path, src, &open_why)) {
      Stats::global().add("exec.native.disk_hits");
      return lru().put(key, std::move(k));
    }
    // Corrupted or foreign entry: never trusted — delete and recompile.
    Stats::global().add("exec.native.cache_bad");
    fs::remove(so_path, ec);
    fs::remove(dir + "/" + key + ".c", ec);
  }

  ScopedSpan span("native.compile", "exec");
  ScopedTimer timer("exec.native.compile_ns");
  Stats::global().add("exec.native.compiles");

  const std::string tag =
#if INLT_HAS_DLOPEN
      std::to_string(::getpid()) + "." +
#endif
      std::to_string(temp_seq.fetch_add(1, std::memory_order_relaxed));
  const std::string tmp_c = dir + "/" + key + "." + tag + ".c";
  const std::string tmp_so = dir + "/" + key + "." + tag + ".so";
  const std::string tmp_err = dir + "/" + key + "." + tag + ".err";

  {
    std::ofstream f(tmp_c, std::ios::binary);
    f << src.code;
    if (!f) {
      if (why)
        *why = exec_warning("native engine: cannot write " + tmp_c +
                            "; using the VM");
      fs::remove(tmp_c, ec);
      return nullptr;
    }
  }

  const std::string cmd = cc + " " + kNativeFlags + " -o \"" + tmp_so +
                          "\" \"" + tmp_c + "\" -lm 2> \"" + tmp_err + "\"";
  int rc = std::system(cmd.c_str());
  if (rc != 0) {
    std::string detail;
    {
      std::ifstream f(tmp_err);
      char buf[400];
      f.read(buf, sizeof(buf) - 1);
      buf[f.gcount()] = '\0';
      detail = buf;
    }
    if (why)
      *why = exec_warning("native engine: compile failed (" + cc + "): " +
                          (detail.empty() ? "exit status " + std::to_string(rc)
                                          : detail) +
                          "; using the VM");
    Stats::global().add("exec.native.compile_failures");
    fs::remove(tmp_c, ec);
    fs::remove(tmp_so, ec);
    fs::remove(tmp_err, ec);
    return nullptr;
  }
  fs::remove(tmp_err, ec);

  // Atomic publication: rename within one directory. Concurrent
  // sessions may both compile; whichever renames last wins and both
  // loaded copies are byte-equivalent.
  fs::rename(tmp_so, so_path, ec);
  if (ec) {
    if (why)
      *why = exec_warning("native engine: cannot publish " + so_path + " (" +
                          ec.message() + "); using the VM");
    fs::remove(tmp_c, ec);
    fs::remove(tmp_so, ec);
    return nullptr;
  }
  fs::rename(tmp_c, dir + "/" + key + ".c", ec);  // kept for debugging

  std::string open_why;
  std::shared_ptr<NativeKernel> k = open_kernel(so_path, src, &open_why);
  if (!k) {
    if (why)
      *why = exec_warning("native engine: dlopen failed for freshly built " +
                          so_path + " (" + open_why + "); using the VM");
    return nullptr;
  }
  return lru().put(key, std::move(k));
}

InterpStats native_run(const NativeKernel& kernel,
                       const std::map<std::string, i64>& params, Memory& mem,
                       const InterpOptions& opts) {
  const NativeKernelSource& spec = kernel.spec();
  std::vector<double*> aptr;
  std::vector<i64> shapes;
  aptr.reserve(spec.arrays.size());
  for (size_t i = 0; i < spec.arrays.size(); ++i) {
    const std::string& name = spec.arrays[i];
    if (!mem.has(name)) {
      // Only reachable from zero-trip/guarded-off subtrees; an executed
      // access faults inside the kernel like the VM's undeclared check.
      aptr.push_back(nullptr);
      shapes.insert(shapes.end(), static_cast<size_t>(3 * spec.ranks[i]), 0);
      continue;
    }
    DenseArray& a = mem.at(name);
    INLT_CHECK_MSG(a.rank() == spec.ranks[i],
                   "native engine: rank mismatch for array " + name);
    aptr.push_back(a.raw_data());
    for (int d = 0; d < a.rank(); ++d) {
      shapes.push_back(a.lo(d));
      shapes.push_back(a.hi(d));
      shapes.push_back(a.stride(d));
    }
  }
  std::vector<i64> prm;
  prm.reserve(spec.params.size());
  for (const std::string& name : spec.params) {
    auto it = params.find(name);
    INLT_CHECK_MSG(it != params.end(), "unbound variable " + name);
    prm.push_back(it->second);
  }

  ScopedSpan span("native.run", "exec");
  ScopedTimer timer("exec.native.run_ns");
  i64 stats[3] = {0, 0, 0};
  char err[256] = {0};
  i64 rc = kernel.fn()(aptr.data(), shapes.data(), prm.data(),
                       opts.max_instances, stats, err,
                       static_cast<i64>(sizeof(err)));
  if (rc != 0)
    throw Error(err[0] ? std::string(err)
                       : "native kernel failed with status " +
                             std::to_string(rc));
  InterpStats st;
  st.instances = stats[0];
  st.loop_iterations = stats[1];
  st.guard_failures = stats[2];
  Stats::global().add("exec.native.runs");
  Stats::global().add("exec.native.instances", st.instances);
  return st;
}

bool native_try_run(const Program& p, const std::map<std::string, i64>& params,
                    Memory& mem, const InterpOptions& opts, InterpStats* out,
                    Diagnostic* why) {
  std::shared_ptr<NativeKernel> k = native_prepare(p, why);
  if (!k) {
    Stats::global().add("exec.native.fallbacks");
    return false;
  }
  *out = native_run(*k, params, mem, opts);
  return true;
}

void native_lru_clear() { lru().clear(); }

}  // namespace inlt
