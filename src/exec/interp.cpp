#include "exec/interp.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include <iostream>
#include <mutex>
#include <set>

#include "exec/native.hpp"
#include "exec/parallel.hpp"
#include "exec/ufhash.hpp"
#include "exec/vm.hpp"
#include "support/check.hpp"

namespace inlt {

namespace {

using Env = std::map<std::string, i64>;

// Local aliases for the shared hash primitives (exec/ufhash.hpp);
// the VM inlines the identical definitions.
constexpr auto hash_to_unit = uf_hash_to_unit;
constexpr auto mix = uf_mix;

double eval_scalar(const ScalarExpr& e, const Env& env, const Memory& mem) {
  switch (e.op) {
    case ScalarOp::kConst:
      return e.constant;
    case ScalarOp::kVar: {
      auto it = env.find(e.name);
      INLT_CHECK_MSG(it != env.end(), "unbound variable " + e.name);
      return static_cast<double>(it->second);
    }
    case ScalarOp::kAffine:
      return static_cast<double>(e.subscripts[0].eval(env));
    case ScalarOp::kArrayRef: {
      std::vector<i64> idx;
      idx.reserve(e.subscripts.size());
      for (const AffineExpr& s : e.subscripts) idx.push_back(s.eval(env));
      return mem.at(e.name).get(idx);
    }
    case ScalarOp::kAdd:
      return eval_scalar(*e.args[0], env, mem) +
             eval_scalar(*e.args[1], env, mem);
    case ScalarOp::kSub:
      return eval_scalar(*e.args[0], env, mem) -
             eval_scalar(*e.args[1], env, mem);
    case ScalarOp::kMul:
      return eval_scalar(*e.args[0], env, mem) *
             eval_scalar(*e.args[1], env, mem);
    case ScalarOp::kDiv:
      return eval_scalar(*e.args[0], env, mem) /
             eval_scalar(*e.args[1], env, mem);
    case ScalarOp::kNeg:
      return -eval_scalar(*e.args[0], env, mem);
    case ScalarOp::kSqrt:
      return std::sqrt(eval_scalar(*e.args[0], env, mem));
    case ScalarOp::kFunc: {
      // A pure function of its name and argument values only — NOT of
      // the enclosing loop environment, so transformed programs
      // evaluating the same dynamic instance get the same value.
      std::uint64_t h = std::hash<std::string>{}(e.name);
      for (const auto& a : e.args)
        h = mix(h, uf_double_bits(eval_scalar(*a, env, mem)));
      return hash_to_unit(h);
    }
  }
  throw Error("unreachable scalar op");
}

struct Runner {
  const InterpOptions& opts;
  Memory& mem;
  InterpStats stats;

  void run(const Node& n, Env& env) {
    for (const Guard& g : n.guards()) {
      if (!g.holds(env)) {
        ++stats.guard_failures;
        return;
      }
    }
    if (n.is_stmt()) {
      const Statement& s = n.stmt_data();
      double v = s.rhs ? eval_scalar(*s.rhs, env, mem) : 0.0;
      std::vector<i64> idx;
      idx.reserve(s.lhs_subscripts.size());
      for (const AffineExpr& e : s.lhs_subscripts) idx.push_back(e.eval(env));
      if (opts.observer) {
        std::vector<ArrayAccess> reads;
        if (s.rhs) collect_reads(*s.rhs, reads);
        for (const ArrayAccess& a : reads) {
          AccessEvent ev{s.label, a.array, {}, false};
          for (const AffineExpr& e : a.subscripts)
            ev.index.push_back(e.eval(env));
          opts.observer(ev);
        }
        opts.observer({s.label, s.lhs_array, idx, true});
      }
      mem.at(s.lhs_array).set(idx, v);
      ++stats.instances;
      INLT_CHECK_MSG(stats.instances <= opts.max_instances,
                     "interpreter instance budget exceeded");
      return;
    }
    i64 lo = n.lower().eval_lower(env);
    i64 hi = n.upper().eval_upper(env);
    for (i64 v = lo; v <= hi; v += n.step()) {
      ++stats.loop_iterations;
      env[n.var()] = v;
      for (const NodePtr& c : n.children()) run(*c, env);
      env.erase(n.var());
    }
  }
};

// A native-engine fallback is worth a warning, but not once per
// verification run of a 10^4-candidate search: each distinct reason is
// reported to stderr exactly once per process.
void warn_native_fallback_once(const Diagnostic& d) {
  static std::mutex mu;
  static std::set<std::string> seen;
  std::lock_guard<std::mutex> lock(mu);
  if (seen.insert(d.message).second) std::cerr << d.render() << "\n";
}

}  // namespace

InterpStats interpret(const Program& p, const std::map<std::string, i64>& params,
                      Memory& mem, const InterpOptions& opts) {
  // The VM produces no per-access events, so an installed observer
  // forces the reference walker regardless of the requested engine.
  // The cache probe is VM-only (it rides the resolved flat offsets),
  // so the two are mutually exclusive.
  INLT_CHECK_MSG(!(opts.observer && opts.cache_probe),
                 "cache_probe requires the VM engine; observer forces the "
                 "AST walker");
  // The native engine covers the plain serial path; the probe rides
  // the VM's resolved offsets and a parallel partition rides the VM's
  // worker pool, so both divert to the VM below. Preparation failures
  // (no compiler, compile error) warn once and fall back; runtime
  // failures of a prepared kernel (bounds, budget) throw like any
  // other engine's.
  if (opts.engine == ExecEngine::kNative && !opts.observer &&
      !opts.cache_probe && !(opts.num_threads > 1 && !opts.partition.empty())) {
    InterpStats st;
    Diagnostic why;
    if (native_try_run(p, params, mem, opts, &st, &why)) return st;
    warn_native_fallback_once(why);
  }
  if ((opts.engine != ExecEngine::kAstWalker || opts.cache_probe) &&
      !opts.observer) {
    if (opts.num_threads > 1 && !opts.partition.empty() && !opts.cache_probe)
      return run_partitioned(p, params, mem, opts.partition, opts.num_threads,
                             opts);
    VmProgram vm(p, params, mem);
    return vm.run(opts);
  }
  Runner r{opts, mem, {}};
  Env env = params;
  for (const NodePtr& root : p.roots()) r.run(*root, env);
  return r.stats;
}

void declare_arrays(const Program& p, const std::map<std::string, i64>& params,
                    Memory& mem) {
  // Probe subscript extremes with the VM (vm.hpp): overflow-checked
  // and with leaf loops collapsed to their endpoint iterations.
  for (auto& [name, r] : VmProgram::probe_ranges(p, params)) {
    if (mem.has(name)) continue;
    mem.declare(name, std::move(r.lo), std::move(r.hi));
  }
}

void randomize(Memory& mem, unsigned seed) {
  for (auto& [name, arr] : mem.arrays()) {
    std::uint64_t h0 = mix(seed, std::hash<std::string>{}(name));
    std::uint64_t counter = 0;
    std::vector<std::pair<std::vector<i64>, double>> writes;
    arr.for_each_index([&](const std::vector<i64>& idx) {
      writes.emplace_back(idx, hash_to_unit(mix(h0, ++counter)));
    });
    for (auto& [idx, v] : writes) arr.set(idx, v);
  }
}

void fill_spd(Memory& mem, unsigned seed) {
  for (auto& [name, arr] : mem.arrays()) {
    std::uint64_t h0 = mix(seed ^ 0xabcdef, std::hash<std::string>{}(name));
    if (arr.rank() == 2 && arr.lo(0) == arr.lo(1) && arr.hi(0) == arr.hi(1)) {
      // Symmetric, strongly diagonally dominant => positive definite.
      i64 n = arr.hi(0) - arr.lo(0) + 1;
      for (i64 i = arr.lo(0); i <= arr.hi(0); ++i)
        for (i64 j = arr.lo(1); j <= i; ++j) {
          double v = 0.5 * hash_to_unit(mix(h0, mix(static_cast<std::uint64_t>(
                                                        i + 1000),
                                                    static_cast<std::uint64_t>(
                                                        j + 1000))));
          if (i == j) v += static_cast<double>(n) + 1.0;
          arr.set({i, j}, v);
          arr.set({j, i}, v);
        }
    } else {
      std::uint64_t counter = 0;
      std::vector<std::pair<std::vector<i64>, double>> writes;
      arr.for_each_index([&](const std::vector<i64>& idx) {
        writes.emplace_back(idx, 1.0 + hash_to_unit(mix(h0, ++counter)));
      });
      for (auto& [idx, v] : writes) arr.set(idx, v);
    }
  }
}

}  // namespace inlt
