// VmProgram execution (see vm.hpp for the design; compile.cpp builds
// the tables).
//
// run() is the hot path of semantic verification: a flat dispatch loop
// over control instructions with no recursion, no name lookups and no
// per-access subscript evaluation — fast accesses ride incrementally
// maintained flat offsets whose bounds were checked at loop entry.
// Everything still observable (InterpStats, guard semantics, iteration
// order, the uninterpreted-function hash) matches the AST walker bit
// for bit.
#include <algorithm>
#include <cmath>
#include <optional>
#include <string>

#include "exec/parallel.hpp"
#include "exec/ufhash.hpp"
#include "exec/vm.hpp"
#include "support/check.hpp"
#include "support/profile.hpp"
#include "support/stats.hpp"
#include "support/trace.hpp"

namespace inlt {

i64 VmProgram::eval(const LinExpr& e) const {
  i64 v = e.constant;
  for (const auto& [slot, coef] : e.terms)
    v = checked_add(v, checked_mul(coef, env_[slot]));
  return v;
}

i64 VmProgram::eval_lower(const CBound& b) const {
  bool first = true;
  i64 best = 0;
  for (const CBoundTerm& t : b.terms) {
    i64 v = ceil_div(eval(t.expr), t.den);
    best = first ? v : (b.tight ? std::max(best, v) : std::min(best, v));
    first = false;
  }
  return best;
}

i64 VmProgram::eval_upper(const CBound& b) const {
  bool first = true;
  i64 best = 0;
  for (const CBoundTerm& t : b.terms) {
    i64 v = floor_div(eval(t.expr), t.den);
    best = first ? v : (b.tight ? std::min(best, v) : std::max(best, v));
    first = false;
  }
  return best;
}

bool VmProgram::guards_hold(const GuardSet& g) const {
  for (int i = g.begin; i != g.end; ++i) {
    const CGuard& cg = guards_[i];
    i64 v = eval(cg.expr);
    switch (cg.kind) {
      case Guard::Kind::kEqZero:
        if (v != 0) return false;
        break;
      case Guard::Kind::kGeZero:
        if (v < 0) return false;
        break;
      case Guard::Kind::kDivisible:
        if (floor_mod(v, cg.modulus) != 0) return false;
        break;
    }
  }
  return true;
}

void VmProgram::bounds_fail(const Access& a, int dim, i64 idx) const {
  const ArrayInfo& arr = arrays_[a.array];
  throw Error("array index out of bounds: " + arr.name + " dim " +
              std::to_string(dim) + " index " + std::to_string(idx) +
              " not in [" + std::to_string(arr.lo[dim]) + ", " +
              std::to_string(arr.hi[dim]) + "]");
}

// Initialize offset registers and run the hoisted endpoint bounds
// checks for one entry of `loop` (env already holds v = lo).
void VmProgram::enter_loop(const LoopInfo& loop, i64 lo, i64 hi) {
  for (int i = loop.init_begin; i != loop.init_end; ++i) {
    const Access& a = accesses_[inits_[i].access];
    offs_[a.reg] = eval(a.offset);
  }
  if (loop.check_begin == loop.check_end) return;
  // Value of the final executed iteration; every per-dim subscript is
  // affine (monotonic) in the loop variable, so in-range endpoints
  // imply in-range everywhere between.
  i64 last = checked_add(
      lo, checked_mul(floor_div(checked_sub(hi, lo), loop.step), loop.step));
  i64 span = checked_sub(last, lo);
  for (int i = loop.check_begin; i != loop.check_end; ++i) {
    const EntryCheck& ck = checks_[i];
    const Access& a = accesses_[ck.access];
    const ArrayInfo& arr = arrays_[a.array];
    i64 first = eval(dims_[a.first_dim + ck.dim].expr);
    i64 final = checked_add(first, checked_mul(ck.coef, span));
    i64 mn = std::min(first, final), mx = std::max(first, final);
    if (mn < arr.lo[ck.dim]) bounds_fail(a, ck.dim, mn);
    if (mx > arr.hi[ck.dim]) bounds_fail(a, ck.dim, mx);
  }
}

// Exact, fully checked offsets for one execution of a slow (guarded or
// loop-less) statement.
void VmProgram::slow_access_offsets(const StmtInfo& s) {
  for (int i = s.first_access; i != s.first_access + s.naccesses; ++i) {
    const Access& a = accesses_[i];
    const ArrayInfo& arr = arrays_[a.array];
    INLT_CHECK_MSG(arr.data != nullptr, "undeclared array " + arr.name);
    i64 off = 0;
    for (int d = 0; d < a.ndims; ++d) {
      i64 idx = eval(dims_[a.first_dim + d].expr);
      if (idx < arr.lo[d] || idx > arr.hi[d]) bounds_fail(a, d, idx);
      off = checked_add(off, checked_mul(checked_sub(idx, arr.lo[d]),
                                         arr.strides[d]));
    }
    offs_[a.reg] = off;
  }
}

void VmProgram::exec_stmt(const StmtInfo& s, InterpStats& st,
                          i64 max_instances) {
  if (!s.fast) slow_access_offsets(s);
  double v = 0.0;
  if (s.result_reg >= 0) {
    for (int i = s.scalar_begin; i != s.scalar_end; ++i) {
      const SInst& si = scode_[i];
      switch (si.op) {
        case SOp::kConst:
          sregs_[si.dst] = si.imm;
          break;
        case SOp::kVar:
          sregs_[si.dst] = static_cast<double>(env_[si.payload]);
          break;
        case SOp::kAffine:
          sregs_[si.dst] = static_cast<double>(eval(lins_[si.payload]));
          break;
        case SOp::kLoad: {
          const Access& a = accesses_[si.payload];
          sregs_[si.dst] = arrays_[a.array].data[offs_[a.reg]];
          break;
        }
        case SOp::kAdd:
          sregs_[si.dst] = sregs_[si.a] + sregs_[si.b];
          break;
        case SOp::kSub:
          sregs_[si.dst] = sregs_[si.a] - sregs_[si.b];
          break;
        case SOp::kMul:
          sregs_[si.dst] = sregs_[si.a] * sregs_[si.b];
          break;
        case SOp::kDiv:
          sregs_[si.dst] = sregs_[si.a] / sregs_[si.b];
          break;
        case SOp::kNeg:
          sregs_[si.dst] = -sregs_[si.a];
          break;
        case SOp::kSqrt:
          sregs_[si.dst] = std::sqrt(sregs_[si.a]);
          break;
        case SOp::kFunc: {
          const FuncSite& f = func_sites_[si.payload];
          std::uint64_t h = f.name_hash;
          for (int j = f.args_begin; j != f.args_end; ++j)
            h = uf_mix(h, uf_double_bits(sregs_[func_args_[j]]));
          sregs_[si.dst] = uf_hash_to_unit(h);
          break;
        }
      }
    }
    v = sregs_[s.result_reg];
  }
  const Access& w = accesses_[s.first_access];
  arrays_[w.array].data[offs_[w.reg]] = v;
  ++st.instances;
  INLT_CHECK_MSG(st.instances <= max_instances,
                 "interpreter instance budget exceeded");
  if (probe_) probe_lines(s);
}

// Feed every access of one executed statement instance to the cache
// probe: logical line = (array identity, element offset / line_elems),
// so counts are deterministic and machine-independent.
void VmProgram::probe_lines(const StmtInfo& s) {
  for (int i = s.first_access; i != s.first_access + s.naccesses; ++i) {
    const Access& a = accesses_[i];
    probe_->touch((static_cast<std::uint64_t>(a.array) << 44) |
                  (static_cast<std::uint64_t>(offs_[a.reg]) >> probe_shift_));
  }
}

namespace {

// Cached per-opcode / per-depth histogram cells for the profiled
// dispatch loop (run_impl<true>). HistogramCell references from the
// global registry are stable forever, so one lookup per name suffices.
struct OpHists {
  HistogramCell* guards;
  HistogramCell* loop_enter;
  HistogramCell* loop_next;
  HistogramCell* stmt;
  std::vector<HistogramCell*> depth;

  OpHists()
      : guards(&Stats::global().histogram("vm.op.guards_ns")),
        loop_enter(&Stats::global().histogram("vm.op.loop_enter_ns")),
        loop_next(&Stats::global().histogram("vm.op.loop_next_ns")),
        stmt(&Stats::global().histogram("vm.op.stmt_ns")) {}

  HistogramCell* depth_cell(int d) {
    if (static_cast<size_t>(d) >= depth.size())
      depth.resize(static_cast<size_t>(d) + 1, nullptr);
    if (!depth[d])
      depth[d] = &Stats::global().histogram("vm.stmt.depth" +
                                            std::to_string(d) + "_ns");
    return depth[d];
  }
};

}  // namespace

template <bool kProfile>
InterpStats VmProgram::run_impl(const InterpOptions& opts) {
  InterpStats st;
  const i64 max_instances = opts.max_instances;
  // Per-run cell cache: name lookups happen once per profiled run, and
  // keeping it run-local (not static) makes concurrent profiled runs
  // race-free — the cells themselves are atomic.
  std::optional<OpHists> cells;
  if constexpr (kProfile) cells.emplace();
  OpHists* hist = cells ? &*cells : nullptr;
  int depth = 0;  // loop nesting depth of the current pc (profiled only)
  (void)hist;     // unused in the !kProfile instantiation
  (void)depth;
  size_t pc = 0;
  for (;;) {
    const CInst& in = code_[pc];
    i64 t0 = 0;
    if constexpr (kProfile) t0 = profile_now_ns();
    switch (in.op) {
      case COp::kGuards:
        if (guards_hold(guard_sets_[in.arg])) {
          ++pc;
        } else {
          ++st.guard_failures;
          pc = static_cast<size_t>(in.jump);
        }
        break;
      case COp::kLoopEnter: {
        const LoopInfo& L = loops_[in.arg];
        i64 lo = eval_lower(L.lower);
        i64 hi = eval_upper(L.upper);
        if (lo > hi) {
          pc = static_cast<size_t>(in.jump);
          break;
        }
        env_[L.slot] = lo;
        hi_[in.arg] = hi;
        enter_loop(L, lo, hi);
        ++st.loop_iterations;
        if constexpr (kProfile) ++depth;
        ++pc;
        break;
      }
      case COp::kLoopNext: {
        const LoopInfo& L = loops_[in.arg];
        i64 v = checked_add(env_[L.slot], L.step);
        if (v > hi_[in.arg]) {
          if constexpr (kProfile) --depth;
          ++pc;  // loop done; falls out past the back-edge
          break;
        }
        env_[L.slot] = v;
        ++st.loop_iterations;
        for (int i = L.adv_begin; i != L.adv_end; ++i)
          offs_[advances_[i].reg] += advances_[i].delta;
        pc = static_cast<size_t>(in.jump);
        break;
      }
      case COp::kStmt:
        exec_stmt(stmts_[in.arg], st, max_instances);
        ++pc;
        break;
      case COp::kHalt:
        return st;
    }
    if constexpr (kProfile) {
      i64 dt = profile_now_ns() - t0;
      switch (in.op) {
        case COp::kGuards:
          hist->guards->record(dt);
          break;
        case COp::kLoopEnter:
          hist->loop_enter->record(dt);
          break;
        case COp::kLoopNext:
          hist->loop_next->record(dt);
          break;
        case COp::kStmt:
          hist->stmt->record(dt);
          hist->depth_cell(depth)->record(dt);
          break;
        case COp::kHalt:
          break;  // unreachable: kHalt returned above
      }
    }
  }
}

InterpStats VmProgram::run(const InterpOptions& opts) {
  ScopedSpan span("vm.run", "exec");
  ScopedTimer timer("exec.vm.run_ns");
  probe_ = opts.cache_probe;
  if (probe_) {
    INLT_CHECK_MSG(probe_->line_elems > 0 &&
                       (probe_->line_elems & (probe_->line_elems - 1)) == 0,
                   "CacheProbe::line_elems must be a power of two");
    probe_shift_ = 0;
    while ((i64{1} << probe_shift_) < probe_->line_elems) ++probe_shift_;
  }
  InterpStats st =
      opts.profile ? run_impl<true>(opts) : run_impl<false>(opts);
  Stats::global().add("exec.vm.runs");
  Stats::global().add("exec.vm.instances", st.instances);
  return st;
}

int VmProgram::mark_partition(const std::vector<std::string>& vars) {
  marked_.assign(loops_.size(), 0);
  reach_marked_.assign(loops_.size(), 0);
  for (size_t i = 0; i < loops_.size(); ++i)
    for (const std::string& v : vars)
      if (loops_[i].var == v) marked_[i] = 1;
  // Only the outermost marked loop on any nest path splits; a mark
  // under another mark is dropped. reach_marked_ records, per loop,
  // whether its subtree contains a surviving mark (itself included) —
  // the "is there any work for workers != 0 below here" test.
  std::vector<int> stack;
  int count = 0;
  for (const CInst& in : code_) {
    if (in.op == COp::kLoopEnter) {
      bool under = false;
      for (int a : stack)
        if (marked_[a]) under = true;
      if (under) marked_[in.arg] = 0;
      if (marked_[in.arg]) {
        ++count;
        reach_marked_[in.arg] = 1;
        for (int a : stack) reach_marked_[a] = 1;
      }
      stack.push_back(in.arg);
    } else if (in.op == COp::kLoopNext) {
      stack.pop_back();
    }
  }
  return count;
}

std::vector<std::pair<int, std::string>> VmProgram::marked_loops() const {
  std::vector<std::pair<int, std::string>> out;
  for (const CInst& in : code_)
    if (in.op == COp::kLoopEnter && in.arg < static_cast<int>(marked_.size()) &&
        marked_[in.arg])
      out.emplace_back(in.arg, loops_[in.arg].var);
  return out;
}

InterpStats VmProgram::run_worker(int worker, int nworkers,
                                  ExecBarrier& barrier,
                                  const InterpOptions& opts) {
  // Mirror of run() with chunking on the marked loops; see the header
  // contract. The probe and observer paths are serial-only.
  INLT_CHECK_MSG(marked_.size() == loops_.size(),
                 "run_worker requires mark_partition() first");
  InterpStats st;
  probe_ = nullptr;
  const i64 max_instances = opts.max_instances;
  const bool main_worker = worker == 0;
  bool in_chunk = false;  // inside this worker's chunk of a marked loop
  size_t pc = 0;
  for (;;) {
    const CInst& in = code_[pc];
    switch (in.op) {
      case COp::kGuards:
        if (guards_hold(guard_sets_[in.arg])) {
          ++pc;
        } else {
          if (in_chunk || main_worker) ++st.guard_failures;
          pc = static_cast<size_t>(in.jump);
        }
        break;
      case COp::kLoopEnter: {
        const LoopInfo& L = loops_[in.arg];
        if (!in_chunk && marked_[in.arg]) {
          // One activation of a partitioned loop. The whole per-chunk
          // cost of disabled instrumentation is these two gates: a
          // plain pointer test and one relaxed atomic load.
          WorkerProfile* prof = instr_.prof;
          const bool traced = Tracer::enabled();
          // Entry barrier first: serial writes preceding the loop
          // (worker 0) must be visible before any chunk starts
          // reading.
          i64 t0 = prof ? profile_now_ns() : 0;
          barrier.arrive_and_wait();
          if (prof) {
            i64 waited = profile_now_ns() - t0;
            prof->barrier_wait_ns += waited;
            if (instr_.wait_ns) instr_.wait_ns->record(waited);
          }
          i64 lo = eval_lower(L.lower);
          i64 hi = eval_upper(L.upper);
          if (lo > hi) {
            // Zero trip: every worker sees the same bounds and skips
            // without the exit barrier.
            pc = static_cast<size_t>(in.jump);
            break;
          }
          i64 count =
              floor_div(checked_sub(hi, lo), L.step) + 1;  // executed iters
          i64 b = count * worker / nworkers;
          i64 e = count * (worker + 1) / nworkers;
          if (prof) {
            if (prof->levels.size() < loops_.size())
              prof->levels.resize(loops_.size());
            ++prof->levels[in.arg].activations;
          }
          if (b >= e) {
            // Empty chunk (more workers than iterations): arrive at
            // the exit barrier immediately and move past the loop.
            i64 t1 = prof ? profile_now_ns() : 0;
            if (prof) ++prof->empty_chunks;
            barrier.arrive_and_wait();
            if (prof) {
              i64 waited = profile_now_ns() - t1;
              prof->barrier_wait_ns += waited;
              if (instr_.wait_ns) instr_.wait_ns->record(waited);
            }
            pc = static_cast<size_t>(in.jump);
            break;
          }
          i64 clo = checked_add(lo, checked_mul(b, L.step));
          i64 chi = checked_add(lo, checked_mul(e - 1, L.step));
          env_[L.slot] = clo;
          hi_[in.arg] = chi;
          enter_loop(L, clo, chi);
          ++st.loop_iterations;
          in_chunk = true;
          chunk_profiled_ = prof != nullptr;
          chunk_traced_ = traced;
          if (prof) chunk_t0_ = profile_now_ns();
          if (traced) {
            chunk_trace_t0_ = Tracer::global().now_ns();
            if (instr_.active_workers) {
              int a = instr_.active_workers->fetch_add(
                          1, std::memory_order_relaxed) +
                      1;
              Tracer::global().counter("active workers", "exec.par",
                                       "workers", a);
            }
          }
          ++pc;
          break;
        }
        if (!in_chunk && !main_worker && !reach_marked_[in.arg]) {
          pc = static_cast<size_t>(in.jump);  // no work below for us
          break;
        }
        i64 lo = eval_lower(L.lower);
        i64 hi = eval_upper(L.upper);
        if (lo > hi) {
          pc = static_cast<size_t>(in.jump);
          break;
        }
        env_[L.slot] = lo;
        hi_[in.arg] = hi;
        enter_loop(L, lo, hi);
        if (in_chunk || main_worker) ++st.loop_iterations;
        ++pc;
        break;
      }
      case COp::kLoopNext: {
        const LoopInfo& L = loops_[in.arg];
        i64 v = checked_add(env_[L.slot], L.step);
        if (v > hi_[in.arg]) {
          if (in_chunk && marked_[in.arg]) {
            // Chunk complete. Exit barrier: code after the loop may
            // read what other workers' chunks wrote.
            in_chunk = false;
            WorkerProfile* prof = chunk_profiled_ ? instr_.prof : nullptr;
            i64 t1 = 0;
            if (prof) {
              t1 = profile_now_ns();
              i64 dur = t1 - chunk_t0_;
              prof->busy_ns += dur;
              ++prof->chunks;
              LevelTally& lt = prof->levels[in.arg];
              ++lt.chunks;
              lt.busy_ns += dur;
              if (instr_.chunk_ns) instr_.chunk_ns->record(dur);
            }
            if (chunk_traced_) {
              Tracer& tr = Tracer::global();
              TraceEvent ev;
              ev.name = "chunk";
              ev.cat = "exec.worker";
              ev.start_ns = chunk_trace_t0_;
              ev.dur_ns = tr.now_ns() - chunk_trace_t0_;
              ev.args.push_back(TraceArg{"loop", L.var, true});
              ev.args.push_back(
                  TraceArg{"worker", std::to_string(worker), false});
              tr.record(std::move(ev));
              if (instr_.active_workers) {
                int a = instr_.active_workers->fetch_sub(
                            1, std::memory_order_relaxed) -
                        1;
                tr.counter("active workers", "exec.par", "workers", a);
              }
              if (instr_.chunks_done) {
                i64 c = instr_.chunks_done->fetch_add(
                            1, std::memory_order_relaxed) +
                        1;
                tr.counter("chunks done", "exec.par", "chunks", c);
              }
            }
            barrier.arrive_and_wait();
            if (prof) {
              i64 waited = profile_now_ns() - t1;
              prof->barrier_wait_ns += waited;
              if (instr_.wait_ns) instr_.wait_ns->record(waited);
            }
          }
          ++pc;  // loop done; falls out past the back-edge
          break;
        }
        env_[L.slot] = v;
        if (in_chunk || main_worker) ++st.loop_iterations;
        for (int i = L.adv_begin; i != L.adv_end; ++i)
          offs_[advances_[i].reg] += advances_[i].delta;
        pc = static_cast<size_t>(in.jump);
        break;
      }
      case COp::kStmt:
        if (in_chunk || main_worker)
          exec_stmt(stmts_[in.arg], st, max_instances);
        ++pc;
        break;
      case COp::kHalt:
        return st;
    }
  }
}

void VmProgram::probe_note(ProbeState& ps, const Access& a) {
  ProbeState::ArrayRange& r = ps.ranges[a.array];
  if (!r.init) {
    r.lo.resize(a.ndims);
    r.hi.resize(a.ndims);
    for (int d = 0; d < a.ndims; ++d)
      r.lo[d] = r.hi[d] = eval(dims_[a.first_dim + d].expr);
    r.init = true;
    return;
  }
  for (int d = 0; d < a.ndims; ++d) {
    i64 idx = eval(dims_[a.first_dim + d].expr);
    r.lo[d] = std::min(r.lo[d], idx);
    r.hi[d] = std::max(r.hi[d], idx);
  }
}

// The probe interpreter: same control flow as run() but statements
// only record subscript extremes, and a loop whose children are all
// unguarded statements is collapsed to its two endpoint iterations
// (affine subscripts are monotonic in the loop variable, so endpoints
// bound the whole range) — array sizing drops an order of complexity.
void VmProgram::run_probe(ProbeState& ps) {
  size_t pc = 0;
  for (;;) {
    const CInst& in = code_[pc];
    switch (in.op) {
      case COp::kGuards:
        pc = guards_hold(guard_sets_[in.arg]) ? pc + 1
                                              : static_cast<size_t>(in.jump);
        break;
      case COp::kLoopEnter: {
        const LoopInfo& L = loops_[in.arg];
        i64 lo = eval_lower(L.lower);
        i64 hi = eval_upper(L.upper);
        if (lo > hi) {
          pc = static_cast<size_t>(in.jump);
          break;
        }
        if (L.probe_collapse) {
          i64 last = checked_add(
              lo,
              checked_mul(floor_div(checked_sub(hi, lo), L.step), L.step));
          for (i64 v : {lo, last}) {
            env_[L.slot] = v;
            for (int i = L.probe_begin; i != L.probe_end; ++i)
              probe_note(ps, accesses_[i]);
          }
          pc = static_cast<size_t>(in.jump);
          break;
        }
        env_[L.slot] = lo;
        hi_[in.arg] = hi;
        ++pc;
        break;
      }
      case COp::kLoopNext: {
        const LoopInfo& L = loops_[in.arg];
        i64 v = checked_add(env_[L.slot], L.step);
        if (v > hi_[in.arg]) {
          ++pc;
        } else {
          env_[L.slot] = v;
          pc = static_cast<size_t>(in.jump);
        }
        break;
      }
      case COp::kStmt: {
        const StmtInfo& s = stmts_[in.arg];
        for (int i = s.first_access; i != s.first_access + s.naccesses; ++i)
          probe_note(ps, accesses_[i]);
        ++pc;
        break;
      }
      case COp::kHalt:
        return;
    }
  }
}

}  // namespace inlt
