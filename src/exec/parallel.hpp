// Parallel VM driver: doall/wavefront execution over a worker pool.
//
// The paper's payoff for exposing a doall level (§1/§7) is running it
// on multiple cores. run_partitioned() executes a program with the
// named doall loops block-chunked across a persistent worker pool:
// every worker runs a private VmProgram clone over the *shared*
// Memory, marked loops iterate only the worker's contiguous chunk
// (synchronized by an entry and an exit barrier per activation, which
// is exactly the wavefront schedule when the marked loop sits under a
// sequential time loop), and everything outside a chunk executes on
// worker 0 alone. A doall level writes disjoint locations per
// iteration, so the final Memory is bit-identical to the serial
// engine at any thread count; InterpStats sum to the serial stats.
//
// The pool is process-wide and serialized: concurrent callers (e.g.
// search worker threads verifying candidates) take turns instead of
// multiplying thread counts.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "exec/interp.hpp"

namespace inlt {

/// Reusable rendezvous for one team of workers. arrive_and_wait()
/// blocks until all `parties` workers arrive, then releases the
/// generation together. abort() releases everyone immediately and
/// permanently — every pending and future wait throws Error — so a
/// worker that fails cannot strand the others at a barrier.
class ExecBarrier {
 public:
  explicit ExecBarrier(int parties);

  void arrive_and_wait();
  void abort();

  /// The message carried by Error after abort(); the driver uses it to
  /// tell the original failure from its echoes in released workers.
  static const char* aborted_message();

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int parties_;
  int waiting_ = 0;
  std::uint64_t generation_ = 0;
  bool aborted_ = false;
};

/// Persistent team of worker threads. run() dispatches task(w) for
/// w in [0, parties) onto dedicated threads and blocks until all
/// return; the pool grows on demand and threads persist across runs,
/// so steady-state dispatch cost is one wakeup per worker. Tasks must
/// not throw (run_partitioned catches inside the task). Concurrent
/// run() callers are serialized.
class WorkerPool {
 public:
  WorkerPool() = default;
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  void run(int parties, const std::function<void(int)>& task);

  /// The process-wide pool used by run_partitioned.
  static WorkerPool& shared();

 private:
  void grow(int n);
  void thread_main(int id, std::uint64_t seen);

  std::mutex run_mu_;  // serializes run() callers
  std::mutex mu_;      // protects round state below
  std::condition_variable start_cv_, done_cv_;
  std::vector<std::thread> threads_;
  const std::function<void(int)>* task_ = nullptr;
  std::uint64_t round_ = 0;
  int parties_ = 0;
  int remaining_ = 0;
  bool shutdown_ = false;
};

/// Execute `p` with the loops named in `partition` chunked across
/// `num_threads` workers of the shared pool. Falls back to the serial
/// VM when num_threads <= 1 or no named loop exists in the program.
/// The partition must be doall levels of `p` (see
/// analyze_target_parallelism); stats are the exact serial stats
/// (summed over workers), and Memory ends bit-identical to a serial
/// run. Worker failures (bounds, overflow, budget) abort the team and
/// rethrow here. Only max_instances is consulted from `opts`, and the
/// instance budget is enforced per worker. When the execution
/// profiler is enabled (support/profile.hpp), each partitioned run
/// appends a ProfileReport — per-worker busy/barrier-wait time, chunk
/// counts and per-level tallies — to ExecProfiler::global().
InterpStats run_partitioned(const Program& p,
                            const std::map<std::string, i64>& params,
                            Memory& mem,
                            const std::vector<std::string>& partition,
                            int num_threads, const InterpOptions& opts = {});

}  // namespace inlt
