#include "exec/trace.hpp"

#include <algorithm>
#include <map>
#include <sstream>

namespace inlt {

namespace {

// Per cell: the sequence of write labels, and for each epoch (before
// the first write, after write 0, after write 1, ...) the sorted list
// of read labels.
struct CellTrace {
  std::vector<std::string> writes;
  std::vector<std::vector<std::string>> read_epochs{1};
};

std::map<std::string, CellTrace> trace_of(
    const Program& p, const std::map<std::string, i64>& params) {
  std::map<std::string, CellTrace> cells;
  Memory mem;
  declare_arrays(p, params, mem);
  fill_spd(mem, 1);
  InterpOptions opts;
  opts.observer = [&](const AccessEvent& ev) {
    std::string key = ev.array;
    for (i64 i : ev.index) key += "," + std::to_string(i);
    CellTrace& ct = cells[key];
    if (ev.is_write) {
      ct.writes.push_back(ev.stmt);
      ct.read_epochs.emplace_back();
    } else {
      ct.read_epochs.back().push_back(ev.stmt);
    }
  };
  interpret(p, params, mem, opts);
  for (auto& [key, ct] : cells)
    for (auto& epoch : ct.read_epochs)
      std::sort(epoch.begin(), epoch.end());
  return cells;
}

}  // namespace

TraceCheckResult check_dependence_order(
    const Program& source, const Program& transformed,
    const std::map<std::string, i64>& params) {
  auto a = trace_of(source, params);
  auto b = trace_of(transformed, params);

  std::ostringstream os;
  if (a.size() != b.size()) {
    os << "different sets of touched cells (" << a.size() << " vs "
       << b.size() << ")";
    return {false, os.str()};
  }
  for (const auto& [cell, ta] : a) {
    auto it = b.find(cell);
    if (it == b.end()) {
      os << "cell " << cell << " untouched in transformed program";
      return {false, os.str()};
    }
    const CellTrace& tb = it->second;
    if (ta.writes != tb.writes) {
      os << "cell " << cell << ": write order differs (source ";
      for (const auto& w : ta.writes) os << w << " ";
      os << "vs transformed ";
      for (const auto& w : tb.writes) os << w << " ";
      os << ")";
      return {false, os.str()};
    }
    for (size_t e = 0; e < ta.read_epochs.size(); ++e) {
      if (ta.read_epochs[e] != tb.read_epochs[e]) {
        os << "cell " << cell << ": reads after write " << e
           << " differ — a read observes a different producer";
        return {false, os.str()};
      }
    }
  }
  return {true, ""};
}

}  // namespace inlt
