// Worker pool, barrier and partitioned-run driver (see parallel.hpp).
#include "exec/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <string>
#include <utility>

#include "exec/vm.hpp"
#include "support/check.hpp"
#include "support/profile.hpp"
#include "support/stats.hpp"
#include "support/trace.hpp"

namespace inlt {

namespace {
constexpr const char* kAborted = "parallel execution aborted";
}

ExecBarrier::ExecBarrier(int parties) : parties_(parties) {
  INLT_CHECK_MSG(parties >= 1, "ExecBarrier needs at least one party");
}

const char* ExecBarrier::aborted_message() { return kAborted; }

void ExecBarrier::arrive_and_wait() {
  std::unique_lock<std::mutex> lk(mu_);
  if (aborted_) throw Error(kAborted);
  if (++waiting_ == parties_) {
    waiting_ = 0;
    ++generation_;
    cv_.notify_all();
    return;
  }
  std::uint64_t gen = generation_;
  cv_.wait(lk, [&] { return aborted_ || generation_ != gen; });
  if (aborted_) throw Error(kAborted);
}

void ExecBarrier::abort() {
  std::lock_guard<std::mutex> lk(mu_);
  aborted_ = true;
  cv_.notify_all();
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

WorkerPool& WorkerPool::shared() {
  static WorkerPool pool;
  return pool;
}

void WorkerPool::grow(int n) {
  // Called with mu_ held; new threads capture the current round so
  // they don't mistake history for a start signal.
  while (static_cast<int>(threads_.size()) < n) {
    int id = static_cast<int>(threads_.size());
    threads_.emplace_back(
        [this, id, seen = round_] { thread_main(id, seen); });
  }
}

void WorkerPool::thread_main(int id, std::uint64_t seen) {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    start_cv_.wait(lk, [&] { return shutdown_ || round_ != seen; });
    if (shutdown_) return;
    seen = round_;
    if (id < parties_) {
      const std::function<void(int)>* task = task_;
      lk.unlock();
      (*task)(id);
      lk.lock();
      if (--remaining_ == 0) done_cv_.notify_all();
    }
  }
}

void WorkerPool::run(int parties, const std::function<void(int)>& task) {
  INLT_CHECK_MSG(parties >= 1, "WorkerPool::run needs at least one party");
  std::lock_guard<std::mutex> serial(run_mu_);
  {
    std::lock_guard<std::mutex> lk(mu_);
    grow(parties);
    task_ = &task;
    parties_ = parties;
    remaining_ = parties;
    ++round_;
  }
  start_cv_.notify_all();
  std::unique_lock<std::mutex> lk(mu_);
  done_cv_.wait(lk, [&] { return remaining_ == 0; });
  task_ = nullptr;
}

InterpStats run_partitioned(const Program& p,
                            const std::map<std::string, i64>& params,
                            Memory& mem,
                            const std::vector<std::string>& partition,
                            int num_threads, const InterpOptions& opts) {
  INLT_CHECK_MSG(!opts.observer && !opts.cache_probe,
                 "partitioned execution is VM-only: no observer or probe");
  VmProgram proto(p, params, mem);
  int marked = proto.mark_partition(partition);
  if (marked == 0 || num_threads <= 1) return proto.run(opts);

  ScopedSpan span("vm.run_parallel", "exec");
  ScopedTimer timer("exec.par.run_ns");
  const int n = num_threads;
  // Worker 0 drives the prototype; the others get private clones bound
  // to the same Memory (marks copy along).
  std::vector<VmProgram> clones(static_cast<size_t>(n) - 1, proto);
  ExecBarrier barrier(n);
  std::vector<InterpStats> st(static_cast<size_t>(n));
  std::vector<std::string> errors(static_cast<size_t>(n));

  // Profiling is decided once per run: workers only carry a sink when
  // the profiler was enabled at dispatch. The counter-track atomics
  // are installed whenever either profiler or tracer is on — workers
  // re-check Tracer::enabled() per chunk before touching them.
  const bool profiled = ExecProfiler::enabled();
  const bool traced = Tracer::enabled();
  std::vector<WorkerProfile> wp;
  HistogramCell* chunk_hist = nullptr;
  HistogramCell* wait_hist = nullptr;
  std::atomic<int> active_workers{0};
  std::atomic<i64> chunks_done{0};
  if (profiled) {
    wp.resize(static_cast<size_t>(n));
    for (int w = 0; w < n; ++w) wp[static_cast<size_t>(w)].worker = w;
    chunk_hist = &Stats::global().histogram("exec.par.chunk_ns");
    wait_hist = &Stats::global().histogram("exec.par.barrier_wait_ns");
  }
  if (profiled || traced) {
    for (int w = 0; w < n; ++w) {
      VmProgram::WorkerInstr wi;
      if (profiled) {
        wi.prof = &wp[static_cast<size_t>(w)];
        wi.chunk_ns = chunk_hist;
        wi.wait_ns = wait_hist;
      }
      wi.active_workers = &active_workers;
      wi.chunks_done = &chunks_done;
      VmProgram& vm = w == 0 ? proto : clones[static_cast<size_t>(w) - 1];
      vm.set_instrumentation(wi);
    }
  }

  const i64 wall_t0 = profiled ? profile_now_ns() : 0;
  WorkerPool::shared().run(n, [&](int w) {
    if (traced)
      Tracer::global().set_thread_name("exec worker " + std::to_string(w));
    try {
      VmProgram& vm = w == 0 ? proto : clones[static_cast<size_t>(w) - 1];
      st[static_cast<size_t>(w)] = vm.run_worker(w, n, barrier, opts);
    } catch (const std::exception& e) {
      errors[static_cast<size_t>(w)] = e.what();
      barrier.abort();  // release the team; their waits throw kAborted
    }
  });
  const i64 wall_ns = profiled ? profile_now_ns() - wall_t0 : 0;

  // Report the originating failure, not the abort echoes it caused.
  for (const std::string& e : errors)
    if (!e.empty() && e != kAborted) throw Error(e);
  for (const std::string& e : errors)
    if (!e.empty()) throw Error(e);

  InterpStats total;
  for (const InterpStats& s : st) {
    total.instances += s.instances;
    total.loop_iterations += s.loop_iterations;
    total.guard_failures += s.guard_failures;
  }
  Stats::global().add("exec.par.runs");
  Stats::global().add("exec.par.workers", n);
  Stats::global().add("exec.par.instances", total.instances);

  if (profiled) {
    ProfileReport rep;
    rep.workers = n;
    rep.wall_ns = wall_ns;
    // Named levels in nest order; per-worker level tallies (indexed by
    // internal VM loop id while recording) fold onto them here.
    std::vector<std::pair<int, std::string>> marks = proto.marked_loops();
    for (const auto& [id, var] : marks) {
      LevelProfile lp;
      lp.var = var;
      rep.levels.push_back(std::move(lp));
    }
    for (int w = 0; w < n; ++w) {
      WorkerProfile& p = wp[static_cast<size_t>(w)];
      p.instances = st[static_cast<size_t>(w)].instances;
      p.loop_iterations = st[static_cast<size_t>(w)].loop_iterations;
      std::vector<LevelTally> by_level(marks.size());
      for (size_t m = 0; m < marks.size(); ++m) {
        int id = marks[m].first;
        if (static_cast<size_t>(id) < p.levels.size())
          by_level[m] = p.levels[static_cast<size_t>(id)];
        LevelProfile& lp = rep.levels[m];
        lp.chunks += by_level[m].chunks;
        lp.busy_ns += by_level[m].busy_ns;
        lp.max_worker_busy_ns =
            std::max(lp.max_worker_busy_ns, by_level[m].busy_ns);
        // Every worker sees every activation; count it once (worker 0).
        if (w == 0) lp.activations = by_level[m].activations;
      }
      p.levels = std::move(by_level);
      Stats::global().add(
          "exec.par.worker" + std::to_string(w) + ".busy_ns", p.busy_ns);
      Stats::global().add(
          "exec.par.worker" + std::to_string(w) + ".chunks", p.chunks);
      rep.per_worker.push_back(std::move(p));
    }
    ExecProfiler::global().add_report(std::move(rep));
  }
  return total;
}

}  // namespace inlt
