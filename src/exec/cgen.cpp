// Program -> C lowering for the native engine (see cgen.hpp).
//
// The emitted text is deterministic for a given Program — arrays and
// params are bound in sorted order, loop variables are numbered in
// visit order — because the text IS the cache identity: exec/native
// keys compiled objects by sha256(source, compiler, flags).
#include "exec/cgen.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <map>
#include <set>

#include "support/check.hpp"

namespace inlt {

namespace {

// C-identifier-safe rendering of a source-level name (loop variable,
// array, parameter). Uniqueness comes from the numeric prefix the
// caller adds, so collapsing odd characters to '_' is harmless.
std::string san(const std::string& name) {
  std::string out;
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out.empty() ? std::string("_") : out;
}

std::string i64lit(i64 v) {
  if (v == INT64_MIN) return "(-9223372036854775807LL - 1)";
  return std::to_string(v) + "LL";
}

// Exact double literal: hex-float for finite values (round-trips bit
// for bit per C99 6.4.4.2), raw bit pattern otherwise.
std::string dlit(double v) {
  char buf[64];
  if (!std::isfinite(v)) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    std::snprintf(buf, sizeof(buf), "inltc_from_bits(0x%016" PRIx64 "ULL)",
                  bits);
    return buf;
  }
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

class Emitter {
 public:
  explicit Emitter(const Program& p) : prog_(&p) {}

  NativeKernelSource run() {
    std::vector<std::string> loops;
    for (const NodePtr& root : prog_->roots()) collect_node(*root, loops);

    NativeKernelSource out;
    int shape_off = 0;
    for (const auto& [name, rank] : arrays_) {
      ArrayBinding b;
      b.cname = "a" + std::to_string(out.arrays.size()) + "_" + san(name);
      b.rank = rank;
      b.index = static_cast<int>(out.arrays.size());
      b.shape_off = shape_off;
      shape_off += 3 * rank;
      binding_[name] = b;
      out.arrays.push_back(name);
      out.ranks.push_back(rank);
    }
    for (const std::string& name : free_) {
      pname_[name] = "p" + std::to_string(out.params.size()) + "_" + san(name);
      out.params.push_back(name);
    }

    emit_preamble();
    emit_kernel_open();
    for (const NodePtr& root : prog_->roots()) emit_node(*root);
    line("INLTC_DONE(0);");
    indent_ = 0;
    line("}");
    out.code = std::move(code_);
    return out;
  }

 private:
  struct ArrayBinding {
    std::string cname;
    int rank = 0;
    int index = 0;
    int shape_off = 0;  // first shapes[] slot of this array's lo/hi/st triples
  };

  // ---- collection: array uses and free (parameter) variables ----

  void note_array(const std::string& name, int rank) {
    auto it = arrays_.find(name);
    if (it == arrays_.end()) {
      arrays_[name] = rank;
    } else if (it->second != rank) {
      throw Error("native emitter: array " + name + " used with rank " +
                  std::to_string(rank) + " and rank " +
                  std::to_string(it->second));
    }
  }

  void note_affine(const AffineExpr& e, const std::vector<std::string>& loops) {
    for (const auto& [name, coef] : e.terms()) {
      (void)coef;
      bool is_loop = false;
      for (const std::string& v : loops)
        if (v == name) is_loop = true;
      if (!is_loop) free_.insert(name);
    }
  }

  void note_var(const std::string& name, const std::vector<std::string>& loops) {
    for (const std::string& v : loops)
      if (v == name) return;
    free_.insert(name);
  }

  void note_scalar(const ScalarExpr& e, const std::vector<std::string>& loops) {
    switch (e.op) {
      case ScalarOp::kVar:
        note_var(e.name, loops);
        break;
      case ScalarOp::kAffine:
        note_affine(e.subscripts[0], loops);
        break;
      case ScalarOp::kArrayRef:
        note_array(e.name, static_cast<int>(e.subscripts.size()));
        for (const AffineExpr& s : e.subscripts) note_affine(s, loops);
        break;
      default:
        break;
    }
    for (const ScalarExprPtr& a : e.args) note_scalar(*a, loops);
  }

  void collect_node(const Node& n, std::vector<std::string>& loops) {
    for (const Guard& g : n.guards()) note_affine(g.expr, loops);
    if (n.is_stmt()) {
      const Statement& s = n.stmt_data();
      note_array(s.lhs_array, static_cast<int>(s.lhs_subscripts.size()));
      for (const AffineExpr& e : s.lhs_subscripts) note_affine(e, loops);
      if (s.rhs) note_scalar(*s.rhs, loops);
      return;
    }
    for (const BoundTerm& t : n.lower().terms) note_affine(t.expr, loops);
    for (const BoundTerm& t : n.upper().terms) note_affine(t.expr, loops);
    loops.push_back(n.var());
    for (const NodePtr& c : n.children()) collect_node(*c, loops);
    loops.pop_back();
  }

  // ---- emission ----

  void raw(const std::string& s) { code_ += s; }

  void line(const std::string& s) {
    code_.append(static_cast<size_t>(indent_) * 2, ' ');
    code_ += s;
    code_ += '\n';
  }

  void emit_preamble() {
    raw(
        "/* inltc native kernel, emitter v1 — generated; do not edit.\n"
        " * Semantics mirror exec/interp.cpp + exec/vm.cpp bit for bit;\n"
        " * compile with -O3 -ffp-contract=off -fwrapv (exec/native.cpp). */\n"
        "#include <math.h>\n"
        "#include <stdint.h>\n"
        "#include <stdio.h>\n"
        "\n"
        "typedef int64_t i64;\n"
        "typedef uint64_t u64;\n"
        "\n"
        "static i64 inltc_fdiv(i64 a, i64 b) { /* floor division */\n"
        "  i64 q = a / b;\n"
        "  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;\n"
        "  return q;\n"
        "}\n"
        "static i64 inltc_cdiv(i64 a, i64 b) { /* ceiling division */\n"
        "  i64 q = a / b;\n"
        "  if ((a % b != 0) && ((a < 0) == (b < 0))) ++q;\n"
        "  return q;\n"
        "}\n"
        "static i64 inltc_fmod(i64 a, i64 b) { return a - inltc_fdiv(a, b) * b; }\n"
        "static i64 inltc_imin(i64 a, i64 b) { return a < b ? a : b; }\n"
        "static i64 inltc_imax(i64 a, i64 b) { return a > b ? a : b; }\n"
        "\n"
        "/* Shared uninterpreted-function hash (src/exec/ufhash.hpp). */\n"
        "static double inltc_uf_unit(u64 h) {\n"
        "  h ^= h >> 33;\n"
        "  h *= 0xff51afd7ed558ccdULL;\n"
        "  h ^= h >> 33;\n"
        "  h *= 0xc4ceb9fe1a85ec53ULL;\n"
        "  h ^= h >> 33;\n"
        "  return (double)(h >> 11) * (1.0 / 9007199254740992.0);\n"
        "}\n"
        "static u64 inltc_uf_mix(u64 a, u64 b) {\n"
        "  return a * 0x9e3779b97f4a7c15ULL + b + (a << 6) + (a >> 2);\n"
        "}\n"
        "static u64 inltc_uf_bits(double v) {\n"
        "  union { double d; u64 u; } x;\n"
        "  x.d = v;\n"
        "  return x.u;\n"
        "}\n"
        "static double inltc_from_bits(u64 bits) {\n"
        "  union { double d; u64 u; } x;\n"
        "  x.u = bits;\n"
        "  return x.d;\n"
        "}\n"
        "\n"
        "#define INLTC_DONE(rc_)                                          \\\n"
        "  do {                                                           \\\n"
        "    stats[0] = st_inst;                                          \\\n"
        "    stats[1] = st_iter;                                          \\\n"
        "    stats[2] = st_guard;                                         \\\n"
        "    return (rc_);                                                \\\n"
        "  } while (0)\n"
        "#define INLTC_FAIL(rc_, ...)                                     \\\n"
        "  do {                                                           \\\n"
        "    if (errcap > 0) snprintf(err, (size_t)errcap, __VA_ARGS__);  \\\n"
        "    INLTC_DONE(rc_);                                             \\\n"
        "  } while (0)\n"
        "#define INLTC_OOB(arr_, dim_, idx_, lo_, hi_)                    \\\n"
        "  INLTC_FAIL(2,                                                  \\\n"
        "             \"array index out of bounds: %s dim %d index %lld \"  \\\n"
        "             \"not in [%lld, %lld]\",                              \\\n"
        "             arr_, dim_, (long long)(idx_), (long long)(lo_),    \\\n"
        "             (long long)(hi_))\n"
        "#define INLTC_BUDGET() INLTC_FAIL(3, \"interpreter instance budget exceeded\")\n"
        "#define INLTC_UNDECL(arr_) INLTC_FAIL(4, \"undeclared array %s\", arr_)\n"
        "\n");
  }

  void emit_kernel_open() {
    raw(
        "i64 inltc_kernel(double** arrays, const i64* shapes, const i64* params,\n"
        "                 i64 max_instances, i64* stats, char* err, i64 errcap) {\n");
    indent_ = 1;
    line("i64 st_inst = 0, st_iter = 0, st_guard = 0;");
    line("(void)arrays; (void)shapes; (void)params;");
    line("(void)max_instances; (void)err; (void)errcap;");
    for (const auto& [name, b] : binding_) {
      line("double* restrict " + b.cname + " = arrays[" +
           std::to_string(b.index) + "];  /* " + san(name) + " */");
      for (int d = 0; d < b.rank; ++d) {
        int off = b.shape_off + 3 * d;
        line("const i64 " + b.cname + "_lo" + std::to_string(d) + " = shapes[" +
             std::to_string(off) + "], " + b.cname + "_hi" + std::to_string(d) +
             " = shapes[" + std::to_string(off + 1) + "], " + b.cname + "_st" +
             std::to_string(d) + " = shapes[" + std::to_string(off + 2) + "];");
      }
    }
    for (const auto& [name, cname] : pname_)
      line("const i64 " + cname + " = params[" +
           std::to_string(param_index(name)) + "];  /* " + san(name) + " */");
  }

  int param_index(const std::string& name) const {
    int i = 0;
    for (const std::string& p : free_) {
      if (p == name) return i;
      ++i;
    }
    throw Error("native emitter: unknown parameter " + name);
  }

  // Integer rendering of a name at an expression site: enclosing loop
  // variable or bound parameter; anything else is the walker's
  // "unbound variable" error, surfaced at emission time.
  std::string name_c(const std::string& name) const {
    for (auto it = scope_.rbegin(); it != scope_.rend(); ++it)
      if (it->first == name) return it->second;
    auto it = pname_.find(name);
    if (it != pname_.end()) return it->second;
    throw Error("native emitter: unbound variable " + name);
  }

  std::string affine_c(const AffineExpr& e) const {
    std::string out = "(" + i64lit(e.constant());
    for (const auto& [name, coef] : e.terms()) {
      if (coef == 1) {
        out += " + " + name_c(name);
      } else if (coef == -1) {
        out += " - " + name_c(name);
      } else {
        out += " + " + i64lit(coef) + " * " + name_c(name);
      }
    }
    out += ")";
    return out;
  }

  // max (tight) / min (cover) over ceil(expr/den) — Bound::eval_lower.
  std::string lower_c(const Bound& b) const {
    return fold_terms(b, /*lower=*/true);
  }
  // min (tight) / max (cover) over floor(expr/den) — Bound::eval_upper.
  std::string upper_c(const Bound& b) const {
    return fold_terms(b, /*lower=*/false);
  }

  std::string fold_terms(const Bound& b, bool lower) const {
    INLT_CHECK_MSG(!b.terms.empty(), "native emitter: empty bound");
    bool tight = b.mode == Bound::Mode::kTight;
    // tight lower = max, cover lower = min; flipped for uppers.
    const char* comb = (lower == tight) ? "inltc_imax" : "inltc_imin";
    std::string out;
    for (const BoundTerm& t : b.terms) {
      std::string term =
          t.den == 1 ? affine_c(t.expr)
                     : std::string(lower ? "inltc_cdiv" : "inltc_fdiv") + "(" +
                           affine_c(t.expr) + ", " + i64lit(t.den) + ")";
      out = out.empty() ? term
                        : std::string(comb) + "(" + out + ", " + term + ")";
    }
    return out;
  }

  std::string guard_c(const Guard& g) const {
    switch (g.kind) {
      case Guard::Kind::kEqZero:
        return "(" + affine_c(g.expr) + " == 0)";
      case Guard::Kind::kGeZero:
        return "(" + affine_c(g.expr) + " >= 0)";
      case Guard::Kind::kDivisible:
        return "(inltc_fmod(" + affine_c(g.expr) + ", " + i64lit(g.modulus) +
               ") == 0)";
    }
    throw Error("native emitter: unreachable guard kind");
  }

  // Emit subscript evaluation, bounds checks and the flat-offset temp
  // for one access; returns the offset temp's name.
  std::string emit_access(const std::string& array,
                          const std::vector<AffineExpr>& subs) {
    const ArrayBinding& b = binding_.at(array);
    std::string off = "o" + std::to_string(temp_++);
    std::string sum;
    for (int d = 0; d < static_cast<int>(subs.size()); ++d) {
      std::string idx = "x" + std::to_string(temp_++);
      std::string ds = std::to_string(d);
      line("const i64 " + idx + " = " + affine_c(subs[d]) + ";");
      line("if (" + idx + " < " + b.cname + "_lo" + ds + " || " + idx + " > " +
           b.cname + "_hi" + ds + ")");
      line("  INLTC_OOB(\"" + san(array) + "\", " + ds + ", " + idx + ", " +
           b.cname + "_lo" + ds + ", " + b.cname + "_hi" + ds + ");");
      std::string delta =
          "(" + idx + " - " + b.cname + "_lo" + ds + ") * " + b.cname + "_st" + ds;
      sum = sum.empty() ? delta : sum + " + " + delta;
    }
    if (sum.empty()) sum = "0";
    line("const i64 " + off + " = " + sum + ";");
    return off;
  }

  void collect_refs(const ScalarExpr& e, std::vector<const ScalarExpr*>& out) {
    if (e.op == ScalarOp::kArrayRef) out.push_back(&e);
    for (const ScalarExprPtr& a : e.args) collect_refs(*a, out);
  }

  std::string scalar_c(const ScalarExpr& e,
                       const std::map<const ScalarExpr*, std::string>& offs) {
    switch (e.op) {
      case ScalarOp::kConst:
        return dlit(e.constant);
      case ScalarOp::kVar:
        return "(double)" + name_c(e.name);
      case ScalarOp::kAffine:
        return "(double)" + affine_c(e.subscripts[0]);
      case ScalarOp::kArrayRef:
        return binding_.at(e.name).cname + "[" + offs.at(&e) + "]";
      case ScalarOp::kAdd:
        return "(" + scalar_c(*e.args[0], offs) + " + " +
               scalar_c(*e.args[1], offs) + ")";
      case ScalarOp::kSub:
        return "(" + scalar_c(*e.args[0], offs) + " - " +
               scalar_c(*e.args[1], offs) + ")";
      case ScalarOp::kMul:
        return "(" + scalar_c(*e.args[0], offs) + " * " +
               scalar_c(*e.args[1], offs) + ")";
      case ScalarOp::kDiv:
        return "(" + scalar_c(*e.args[0], offs) + " / " +
               scalar_c(*e.args[1], offs) + ")";
      case ScalarOp::kNeg:
        return "(-" + scalar_c(*e.args[0], offs) + ")";
      case ScalarOp::kSqrt:
        return "sqrt(" + scalar_c(*e.args[0], offs) + ")";
      case ScalarOp::kFunc: {
        // h = mix(hash(name), bits(arg0)); h = mix(h, bits(arg1)); ...
        // rendered as a nested call chain so evaluation order is fixed.
        char buf[32];
        std::snprintf(buf, sizeof(buf), "0x%016" PRIx64 "ULL",
                      static_cast<std::uint64_t>(
                          std::hash<std::string>{}(e.name)));
        std::string h = buf;
        for (const ScalarExprPtr& a : e.args)
          h = "inltc_uf_mix(" + h + ", inltc_uf_bits(" +
              scalar_c(*a, offs) + "))";
        return "inltc_uf_unit(" + h + ")";
      }
    }
    throw Error("native emitter: unreachable scalar op");
  }

  void emit_stmt(const Statement& s) {
    line("{ /* " + san(s.label) + " */");
    ++indent_;
    // Undeclared-array faults: arrays only touched inside zero-trip or
    // guarded-off subtrees are never declared in Memory; the host then
    // passes NULL and an executed access must fail like the VM's.
    std::set<std::string> used{s.lhs_array};
    std::vector<const ScalarExpr*> refs;
    if (s.rhs) collect_refs(*s.rhs, refs);
    for (const ScalarExpr* r : refs) used.insert(r->name);
    for (const std::string& a : used)
      line("if (!" + binding_.at(a).cname + ") INLTC_UNDECL(\"" + san(a) +
           "\");");
    // Offsets and bounds checks first — write, then reads in tree
    // order — matching the VM's per-statement slow path.
    std::string woff = emit_access(s.lhs_array, s.lhs_subscripts);
    std::map<const ScalarExpr*, std::string> offs;
    for (const ScalarExpr* r : refs)
      offs[r] = emit_access(r->name, r->subscripts);
    if (s.rhs) {
      line("const double val = " + scalar_c(*s.rhs, offs) + ";");
      line(binding_.at(s.lhs_array).cname + "[" + woff + "] = val;");
    } else {
      line(binding_.at(s.lhs_array).cname + "[" + woff + "] = 0.0;");
    }
    line("++st_inst;");
    line("if (st_inst > max_instances) INLTC_BUDGET();");
    --indent_;
    line("}");
  }

  void emit_loop(const Node& n) {
    std::string cv = "v" + std::to_string(loop_count_++) + "_" + san(n.var());
    line("{");
    ++indent_;
    line("const i64 " + cv + "_lo = " + lower_c(n.lower()) + ";");
    line("const i64 " + cv + "_hi = " + upper_c(n.upper()) + ";");
    line("for (i64 " + cv + " = " + cv + "_lo; " + cv + " <= " + cv +
         "_hi; " + cv + " += " + i64lit(n.step()) + ") {");
    ++indent_;
    line("++st_iter;");
    scope_.emplace_back(n.var(), cv);
    for (const NodePtr& c : n.children()) emit_node(*c);
    scope_.pop_back();
    --indent_;
    line("}");
    --indent_;
    line("}");
  }

  void emit_node(const Node& n) {
    if (!n.guards().empty()) {
      // One guard_failures increment per suppressed node, however many
      // guards it carries — the && chain preserves evaluation order.
      std::string cond;
      for (const Guard& g : n.guards())
        cond = cond.empty() ? guard_c(g) : cond + " && " + guard_c(g);
      line("if (" + cond + ") {");
      ++indent_;
      emit_body(n);
      --indent_;
      line("} else {");
      line("  ++st_guard;");
      line("}");
      return;
    }
    emit_body(n);
  }

  void emit_body(const Node& n) {
    if (n.is_stmt()) {
      emit_stmt(n.stmt_data());
    } else {
      emit_loop(n);
    }
  }

  const Program* prog_;
  // name -> rank, sorted — binding order of the arrays argument.
  std::map<std::string, int> arrays_;
  // free (non-loop) names, sorted — binding order of params.
  std::set<std::string> free_;
  std::map<std::string, ArrayBinding> binding_;
  std::map<std::string, std::string> pname_;
  std::vector<std::pair<std::string, std::string>> scope_;  // loop var -> C name
  std::string code_;
  int indent_ = 0;
  int temp_ = 0;
  int loop_count_ = 0;
};

}  // namespace

NativeKernelSource emit_native_c(const Program& p) {
  Emitter e(p);
  return e.run();
}

}  // namespace inlt
