// End-to-end semantic verification of transformations.
//
// A transformed program is equivalent to its source when, run against
// identical initial memory, it executes the same number of statement
// instances and leaves every array in the same state. Cholesky-style
// bodies (sqrt, division, subtraction chains) are order-sensitive in
// floating point only up to reassociation noise, so comparison uses a
// small tolerance.
#pragma once

#include "exec/interp.hpp"

namespace inlt {

enum class FillKind {
  kRandom,  ///< independent uniform values
  kSpd,     ///< symmetric diagonally-dominant square matrices
};

struct VerifyResult {
  bool equivalent = false;
  double max_diff = 0.0;
  i64 src_instances = 0;
  i64 dst_instances = 0;

  std::string to_string() const;
};

/// Run source and transformed programs on identical inputs and compare
/// final memory. Arrays are sized from the source program's accesses.
VerifyResult verify_equivalence(const Program& source,
                                const Program& transformed,
                                const std::map<std::string, i64>& params,
                                FillKind fill = FillKind::kSpd,
                                unsigned seed = 1,
                                double tolerance = 1e-9);

}  // namespace inlt
