// End-to-end semantic verification of transformations.
//
// A transformed program is equivalent to its source when, run against
// identical initial memory, it executes the same number of statement
// instances and leaves every array in the same state. Cholesky-style
// bodies (sqrt, division, subtraction chains) are order-sensitive in
// floating point only up to reassociation noise, so comparison uses a
// small tolerance.
#pragma once

#include "exec/interp.hpp"

namespace inlt {

enum class FillKind {
  kRandom,  ///< independent uniform values
  kSpd,     ///< symmetric diagonally-dominant square matrices
};

/// Parallel-execution plan for verification runs (exec/parallel.hpp).
/// With threads > 1, each side executes with its doall partition
/// chunked over the shared worker pool — bit-identical to serial, so
/// verification verdicts are unchanged, just faster. A side with an
/// empty partition runs serially.
struct ExecPlan {
  int threads = 1;
  std::vector<std::string> source_partition;
  std::vector<std::string> target_partition;
  /// Forwarded to InterpOptions::profile: per-opcode VM profiling of
  /// the serial executions (the partitioned driver profiles per worker
  /// instead — support/profile.hpp). Results unchanged.
  bool vm_profile = false;
};

struct VerifyResult {
  bool equivalent = false;
  double max_diff = 0.0;
  i64 src_instances = 0;
  i64 dst_instances = 0;
  /// Non-empty when the candidate failed to execute at all (out of
  /// bounds, instance budget, overflow) — only VerifyReference::check
  /// captures errors; verify_equivalence propagates them.
  std::string error;

  std::string to_string() const;
};

/// Run source and transformed programs on identical inputs and compare
/// final memory. Arrays are sized from the source program's accesses.
VerifyResult verify_equivalence(const Program& source,
                                const Program& transformed,
                                const std::map<std::string, i64>& params,
                                FillKind fill = FillKind::kSpd,
                                unsigned seed = 1,
                                double tolerance = 1e-9,
                                ExecEngine engine = ExecEngine::kVm,
                                const ExecPlan& plan = {});

/// The source side of verify_equivalence, computed once: declared and
/// filled initial memory plus the source program's final state. Checks
/// of candidate programs against it are independent and thread-safe
/// (each check runs on its own copy of the initial memory), which is
/// what lets full-mode search verify candidates on worker threads.
class VerifyReference {
 public:
  VerifyReference(const Program& source,
                  const std::map<std::string, i64>& params,
                  FillKind fill = FillKind::kSpd, unsigned seed = 1,
                  double tolerance = 1e-9,
                  ExecEngine engine = ExecEngine::kVm,
                  ExecPlan plan = {});

  /// Verify one candidate. Execution failures (bounds, budget,
  /// overflow) are captured in VerifyResult::error, not thrown — a
  /// wrong candidate must not abort a search over many. The candidate
  /// executes with the plan's target partition.
  VerifyResult check(const Program& transformed) const;

  /// Same, with a per-candidate doall partition overriding the plan's
  /// target partition (search computes one per legal hit).
  VerifyResult check(const Program& transformed,
                     const std::vector<std::string>& partition) const;

  const std::map<std::string, i64>& params() const { return params_; }

 private:
  std::map<std::string, i64> params_;
  double tolerance_;
  ExecEngine engine_;
  ExecPlan plan_;
  Memory initial_;  ///< declared from the source, filled
  Memory final_;    ///< source-final state
  i64 src_instances_ = 0;
};

}  // namespace inlt
