// Dependence-order oracle on execution traces.
//
// Stronger diagnosis than final-memory comparison: for every array
// cell, a correct transformation must preserve (a) the exact sequence
// of writes and (b) which write each read observes. This detects
// reorderings that happen to cancel numerically and names the first
// cell where the orders diverge.
#pragma once

#include "exec/interp.hpp"

namespace inlt {

struct TraceCheckResult {
  bool ok = false;
  std::string diagnosis;  ///< empty when ok
};

/// Run source and transformed programs and compare per-cell access
/// orders: the write sequences must be identical (labels, in order)
/// and the multiset of reads between consecutive writes must match.
TraceCheckResult check_dependence_order(
    const Program& source, const Program& transformed,
    const std::map<std::string, i64>& params);

}  // namespace inlt
