// Dense multi-dimensional double arrays for the interpreter.
//
// Each dimension carries an explicit [lo, hi] index range (programs
// address arrays with arbitrary affine subscripts, including negative
// ones near boundaries). Accesses are bounds-checked so a wrong
// transformation fails loudly instead of corrupting memory.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "support/checked_int.hpp"

namespace inlt {

class DenseArray {
 public:
  DenseArray() = default;
  /// Valid indices of dimension d run over [lo[d], hi[d]] inclusive.
  DenseArray(std::vector<i64> lo, std::vector<i64> hi);

  int rank() const { return static_cast<int>(lo_.size()); }
  i64 lo(int d) const { return lo_[d]; }
  i64 hi(int d) const { return hi_[d]; }
  /// Row-major element stride of dimension d (innermost is 1).
  i64 stride(int d) const { return strides_[d]; }

  /// Raw storage, for execution engines that precompute flat offsets;
  /// element order matches for_each_index.
  double* raw_data() { return data_.data(); }

  double get(const std::vector<i64>& idx) const;
  void set(const std::vector<i64>& idx, double v);

  /// Visit every index tuple (row-major).
  void for_each_index(
      const std::function<void(const std::vector<i64>&)>& fn) const;

  /// Elementwise maximum absolute difference; shapes must match.
  double max_abs_diff(const DenseArray& o) const;

  const std::vector<double>& data() const { return data_; }

 private:
  size_t flat(const std::vector<i64>& idx) const;

  std::vector<i64> lo_, hi_;
  std::vector<i64> strides_;
  std::vector<double> data_;
};

/// A named collection of arrays: the memory a program runs against.
class Memory {
 public:
  void declare(const std::string& name, std::vector<i64> lo,
               std::vector<i64> hi);
  DenseArray& at(const std::string& name);
  const DenseArray& at(const std::string& name) const;
  bool has(const std::string& name) const { return arrays_.count(name) > 0; }

  std::map<std::string, DenseArray>& arrays() { return arrays_; }
  const std::map<std::string, DenseArray>& arrays() const { return arrays_; }

  /// Max abs difference across all arrays (shapes must match).
  double max_abs_diff(const Memory& o) const;

 private:
  std::map<std::string, DenseArray> arrays_;
};

}  // namespace inlt
