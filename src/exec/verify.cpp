#include "exec/verify.hpp"

#include <sstream>

#include "support/trace.hpp"

namespace inlt {

std::string VerifyResult::to_string() const {
  std::ostringstream os;
  os << (equivalent ? "equivalent" : "NOT equivalent")
     << " (max diff " << max_diff << ", instances " << src_instances << " vs "
     << dst_instances << ")";
  return os.str();
}

VerifyResult verify_equivalence(const Program& source,
                                const Program& transformed,
                                const std::map<std::string, i64>& params,
                                FillKind fill, unsigned seed,
                                double tolerance) {
  ScopedSpan span("exec.verify", "exec");
  Memory mem;
  declare_arrays(source, params, mem);
  // The transformed program may touch cells the source sizing missed
  // only through a bug; declare_arrays skips already-declared arrays,
  // so running it for the transformed program just catches new arrays.
  declare_arrays(transformed, params, mem);
  if (fill == FillKind::kSpd)
    fill_spd(mem, seed);
  else
    randomize(mem, seed);
  Memory mem2 = mem;

  VerifyResult r;
  r.src_instances = interpret(source, params, mem).instances;
  r.dst_instances = interpret(transformed, params, mem2).instances;
  r.max_diff = mem.max_abs_diff(mem2);
  r.equivalent =
      r.max_diff <= tolerance && r.src_instances == r.dst_instances;
  if (span.active()) {
    span.arg("equivalent", r.equivalent);
    span.arg("instances", r.src_instances);
  }
  return r;
}

}  // namespace inlt
