#include "exec/verify.hpp"

#include <sstream>
#include <utility>

#include "support/check.hpp"
#include "support/stats.hpp"
#include "support/trace.hpp"

namespace inlt {

std::string VerifyResult::to_string() const {
  std::ostringstream os;
  os << (equivalent ? "equivalent" : "NOT equivalent");
  if (!error.empty()) {
    os << " (execution failed: " << error << ")";
    return os.str();
  }
  os << " (max diff " << max_diff << ", instances " << src_instances << " vs "
     << dst_instances << ")";
  return os.str();
}

namespace {

void fill(Memory& mem, FillKind kind, unsigned seed) {
  if (kind == FillKind::kSpd)
    fill_spd(mem, seed);
  else
    randomize(mem, seed);
}

}  // namespace

VerifyResult verify_equivalence(const Program& source,
                                const Program& transformed,
                                const std::map<std::string, i64>& params,
                                FillKind fill_kind, unsigned seed,
                                double tolerance, ExecEngine engine,
                                const ExecPlan& plan) {
  ScopedSpan span("exec.verify", "exec");
  Memory mem;
  declare_arrays(source, params, mem);
  // The transformed program may touch cells the source sizing missed
  // only through a bug; declare_arrays skips already-declared arrays,
  // so running it for the transformed program just catches new arrays.
  declare_arrays(transformed, params, mem);
  fill(mem, fill_kind, seed);
  Memory mem2 = mem;

  InterpOptions opts;
  opts.engine = engine;
  opts.num_threads = plan.threads;
  opts.profile = plan.vm_profile;
  VerifyResult r;
  opts.partition = plan.source_partition;
  r.src_instances = interpret(source, params, mem, opts).instances;
  opts.partition = plan.target_partition;
  r.dst_instances = interpret(transformed, params, mem2, opts).instances;
  r.max_diff = mem.max_abs_diff(mem2);
  r.equivalent =
      r.max_diff <= tolerance && r.src_instances == r.dst_instances;
  if (span.active()) {
    span.arg("equivalent", r.equivalent);
    span.arg("instances", r.src_instances);
  }
  return r;
}

VerifyReference::VerifyReference(const Program& source,
                                 const std::map<std::string, i64>& params,
                                 FillKind fill_kind, unsigned seed,
                                 double tolerance, ExecEngine engine,
                                 ExecPlan plan)
    : params_(params),
      tolerance_(tolerance),
      engine_(engine),
      plan_(std::move(plan)) {
  ScopedSpan span("exec.verify_reference", "exec");
  declare_arrays(source, params_, initial_);
  fill(initial_, fill_kind, seed);
  final_ = initial_;
  InterpOptions opts;
  opts.engine = engine_;
  opts.num_threads = plan_.threads;
  opts.profile = plan_.vm_profile;
  opts.partition = plan_.source_partition;
  src_instances_ = interpret(source, params_, final_, opts).instances;
}

VerifyResult VerifyReference::check(const Program& transformed) const {
  return check(transformed, plan_.target_partition);
}

VerifyResult VerifyReference::check(
    const Program& transformed,
    const std::vector<std::string>& partition) const {
  ScopedTimer timer("exec.verify.check_ns");
  VerifyResult r;
  r.src_instances = src_instances_;
  try {
    Memory mem = initial_;
    // A candidate that touches arrays or cells the source never sized
    // would need fresh declarations; any such access makes it
    // non-equivalent anyway, and shows up as an execution error or a
    // shape mismatch below.
    InterpOptions opts;
    opts.engine = engine_;
    opts.num_threads = plan_.threads;
    opts.profile = plan_.vm_profile;
    opts.partition = partition;
    r.dst_instances = interpret(transformed, params_, mem, opts).instances;
    r.max_diff = mem.max_abs_diff(final_);
    r.equivalent =
        r.max_diff <= tolerance_ && r.src_instances == r.dst_instances;
  } catch (const Error& e) {
    r.error = e.what();
    r.equivalent = false;
    Stats::global().add("exec.verify.errors");
  }
  return r;
}

}  // namespace inlt
