// Lowering a Program to standalone C for the native execution engine.
//
// emit_native_c walks the (possibly transformed) loop forest exactly
// like the AST walker does — the same bounds rounding, guard order,
// statement-instance accounting and uninterpreted-function hash — and
// renders it as one self-contained C translation unit with raw-pointer
// array accesses. Compiled with `-O3 -ffp-contract=off` (exec/native),
// the resulting kernel produces bit-identical Memory and InterpStats
// to the VM and the walker: every floating-point operation keeps the
// operand pairing of the ScalarExpr tree, so under IEEE double
// semantics with contraction disabled each intermediate rounds the
// same way in all three engines.
//
// The kernel ABI is position-based so one compiled object serves every
// parameter binding and Memory instance:
//
//   int64_t inltc_kernel(double** arrays, const int64_t* shapes,
//                        const int64_t* params, int64_t max_instances,
//                        int64_t* stats, char* err, int64_t errcap);
//
//   arrays  — base pointers, one per NativeKernelSource::arrays entry
//             (NULL when the program never declared the array; the
//             kernel faults politely if such an access executes);
//   shapes  — per array, per dimension: lo, hi, element stride;
//   params  — one value per NativeKernelSource::params entry;
//   stats   — out: {instances, loop_iterations, guard_failures};
//   err     — out: failure message when the return value is nonzero
//             (0 ok, 2 bounds, 3 instance budget, 4 undeclared array).
//
// Array subscripts are bounds-checked per executed access, as in the
// VM's guarded path, so a wrong candidate still fails loudly instead
// of scribbling memory. Integer arithmetic is NOT overflow-checked
// (the kernel is compiled with -fwrapv); adversarial parameter values
// belong on the checked VM.
#pragma once

#include <string>
#include <vector>

#include "ir/ast.hpp"

namespace inlt {

/// One emitted kernel: the C source plus the binding order the host
/// must honor when packing the arrays/shapes/params arguments.
struct NativeKernelSource {
  std::string code;
  /// Array names in binding order (sorted); ranks[i] is the rank the
  /// kernel was emitted for — the Memory side must match.
  std::vector<std::string> arrays;
  std::vector<int> ranks;
  /// Free (non-loop) variable names in binding order (sorted).
  std::vector<std::string> params;
};

/// Exported symbol name of the emitted kernel.
inline constexpr const char* kNativeKernelSymbol = "inltc_kernel";

/// Render `p` as a C translation unit. Throws Error on programs the
/// emitter cannot express (rank-inconsistent array uses); callers
/// treat that as "native unavailable" and fall back to the VM.
NativeKernelSource emit_native_c(const Program& p);

}  // namespace inlt
