// Bytecode execution engine for inlt programs.
//
// The AST walker in interp.cpp re-walks every ScalarExpr, re-evaluates
// every affine subscript through std::map environments and resolves
// every array by name on every access — fine for unit tests, dominant
// for full-mode search once legality itself is fast. VmProgram compiles
// a (Program, parameter binding, Memory) triple once:
//
//  * affine subscripts are lowered to a flat base offset plus one
//    stride per enclosing loop; the running offset of each access is a
//    register that is initialized when its owning loop is entered and
//    *incremented* on every loop advance — no per-access subscript
//    evaluation at all on the hot path;
//  * arrays are resolved once to raw double* with row-major strides;
//    for unguarded statements the per-dimension bounds checks are
//    hoisted to the owning loop's entry (both range endpoints of every
//    affine subscript are checked once per entry — exact, because an
//    affine function of the loop variable is monotonic), guarded
//    statements keep exact per-access checks so wrong transformations
//    still fail loudly;
//  * statement bodies become linear register bytecode; the
//    uninterpreted-function hash (exec/ufhash.hpp) is inlined;
//  * control flow is a flat instruction array driven by a program
//    counter — no recursion, loop state lives in per-loop slots.
//
// Results are bit-identical to the AST walker (the differential suite
// in tests/exec/test_vm.cpp enforces this), including InterpStats.
// All compile-time constant folding (parameter substitution, stride
// multiplication, advance deltas) uses checked_int arithmetic, so
// absurd parameter values fail with OverflowError instead of wrapping.
//
// probe_ranges() is the same machinery in "probe" mode: it sizes
// arrays for declare_arrays without touching memory, and collapses
// leaf loops whose children are all unguarded statements into two
// endpoint evaluations per entry — declare_arrays drops from the full
// iteration count to the iteration count of the outer nest.
#pragma once

#include <atomic>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "exec/interp.hpp"

namespace inlt {

class ExecBarrier;    // exec/parallel.hpp
class HistogramCell;  // support/stats.hpp
struct WorkerProfile;  // support/profile.hpp

class VmProgram {
 public:
  /// Compile `p` for the given parameter binding and bind array
  /// references to the (pre-declared) arrays of `mem`. Throws on
  /// unbound variables, undeclared arrays, inconsistent array ranks,
  /// or compile-time arithmetic overflow.
  VmProgram(const Program& p, const std::map<std::string, i64>& params,
            Memory& mem);

  /// Execute. Only `max_instances` is consulted from `opts` — callers
  /// with an observer must use the AST walker (interpret() dispatches
  /// automatically).
  InterpStats run(const InterpOptions& opts = {});

  /// Re-point array references at another Memory with identical
  /// shapes (e.g. a fresh copy of the same prototype); everything
  /// compiled stays valid.
  void rebind(Memory& mem);

  /// Mark the loops whose variables appear in `vars` for chunked
  /// partitioning by run_worker. A mark nested inside another mark is
  /// dropped — only the outermost parallel level on any path splits.
  /// Returns the number of loops left marked. Marks survive copying,
  /// so per-worker clones of a marked prototype agree on the schedule.
  int mark_partition(const std::vector<std::string>& vars);

  /// SPMD worker body for partitioned execution (driven by
  /// run_partitioned in exec/parallel.hpp; `this` must be worker `w`'s
  /// private clone of a marked prototype, all clones bound to the same
  /// Memory). Every worker executes the full control flow so loop
  /// environments stay consistent, but:
  ///
  ///  * a marked loop's iteration range is block-split: worker w runs
  ///    the contiguous chunk [count*w/n, count*(w+1)/n) of each
  ///    activation, with a barrier on entry (preceding serial writes
  ///    must be visible) and on exit (following reads must wait);
  ///    zero-trip activations are skipped by every worker without
  ///    barriers (bounds only involve enclosing-loop variables, so all
  ///    workers agree);
  ///  * outside any chunk, statements execute on worker 0 only, and
  ///    workers != 0 skip whole subtrees that contain no marked loop;
  ///  * stats are counted iff the executing worker owns the work
  ///    (inside its chunk, or worker 0 elsewhere), so the sum over
  ///    workers equals the serial run's InterpStats exactly.
  ///
  /// A marked loop must be doall: chunks write disjoint locations, so
  /// the final Memory is bit-identical to the serial run at any worker
  /// count. The caller must abort the barrier if any worker throws.
  InterpStats run_worker(int worker, int nworkers, ExecBarrier& barrier,
                         const InterpOptions& opts);

  /// Instrumentation sinks for run_worker, installed per clone by the
  /// parallel driver (exec/parallel.cpp) when the execution profiler
  /// or tracer is active. All pointers null by default; a null `prof`
  /// plus a disabled tracer keeps the worker's per-chunk cost at one
  /// plain pointer test and one relaxed atomic load — no clock reads.
  struct WorkerInstr {
    WorkerProfile* prof = nullptr;    ///< this worker's profile sink
    HistogramCell* chunk_ns = nullptr;  ///< exec.par.chunk_ns
    HistogramCell* wait_ns = nullptr;   ///< exec.par.barrier_wait_ns
    /// Shared live counters for Chrome-trace counter tracks; workers
    /// emit a 'C' sample on every transition when tracing is enabled.
    std::atomic<int>* active_workers = nullptr;
    std::atomic<i64>* chunks_done = nullptr;
  };
  void set_instrumentation(const WorkerInstr& wi) { instr_ = wi; }

  /// The loops mark_partition() left marked, in nest (code) order:
  /// (internal loop id, loop variable). The driver uses this to map
  /// per-worker level tallies onto named report levels.
  std::vector<std::pair<int, std::string>> marked_loops() const;

  // -- introspection (tests, benchmarks) --
  /// Accesses whose bounds checks were hoisted to loop entry.
  i64 hoisted_accesses() const { return hoisted_accesses_; }
  /// Accesses that kept exact per-execution checks.
  i64 checked_accesses() const { return checked_accesses_; }

  /// Per-array subscript extremes over the program's execution, the
  /// sizing information declare_arrays needs. Pure: touches no Memory.
  struct Range {
    std::vector<i64> lo, hi;
  };
  static std::map<std::string, Range> probe_ranges(
      const Program& p, const std::map<std::string, i64>& params);

 private:
  friend class VmCompiler;  // compile.cpp builds the tables below

  // Compiled affine expression over loop slots; parameter terms are
  // folded into the constant at compile time.
  struct LinExpr {
    i64 constant = 0;
    std::vector<std::pair<int, i64>> terms;  // (env slot, coefficient)
  };

  struct CBoundTerm {
    LinExpr expr;
    i64 den = 1;
  };
  struct CBound {
    std::vector<CBoundTerm> terms;
    bool tight = true;
  };

  struct CGuard {
    Guard::Kind kind = Guard::Kind::kEqZero;
    LinExpr expr;
    i64 modulus = 1;
  };
  struct GuardSet {
    int begin = 0, end = 0;  // into guards_
  };

  struct ArrayInfo {
    std::string name;
    int rank = 0;
    // Bound at resolve time (exec mode only):
    double* data = nullptr;
    std::vector<i64> lo, hi, strides;
  };

  // One subscript dimension of one access, kept for bounds checks and
  // probe mode.
  struct AccessDim {
    LinExpr expr;
  };

  struct Access {
    int array = -1;
    int first_dim = 0, ndims = 0;  // into dims_
    // Exec mode: flat offset expression (array strides and origins
    // folded in); the access's running offset lives in offs_[reg].
    LinExpr offset;
    int reg = -1;
    // Fast accesses: offs_[reg] += step_delta on owner-loop advance.
    i64 step_delta = 0;
  };

  struct StmtInfo {
    int first_access = 0, naccesses = 0;  // accesses_; [0] is the write
    int scalar_begin = 0, scalar_end = 0;  // into scode_
    int result_reg = -1;                   // -1: statement has no rhs
    // Fast statements (unguarded, directly inside a loop) rely on
    // loop-entry offset initialization, advance deltas and hoisted
    // checks; slow statements recompute and check every access.
    bool fast = false;
  };

  struct EntryInit {
    int access = 0;  // offs_[access.reg] = eval(access.offset)
  };
  struct EntryCheck {
    int access = 0;
    int dim = 0;     // which dimension of the access
    i64 coef = 0;    // subscript coefficient of the owning loop's var
  };
  struct Advance {
    int reg = 0;
    i64 delta = 0;
  };

  struct LoopInfo {
    int slot = 0;
    std::string var;  ///< loop variable (partition marks match on it)
    i64 step = 1;
    CBound lower, upper;
    int init_begin = 0, init_end = 0;    // into inits_
    int check_begin = 0, check_end = 0;  // into checks_
    int adv_begin = 0, adv_end = 0;      // into advances_
    // Probe mode: all children are unguarded statements, so one
    // endpoint evaluation per entry covers the whole iteration range.
    bool probe_collapse = false;
    int probe_begin = 0, probe_end = 0;  // collapsed accesses (accesses_)
  };

  enum class COp : unsigned char {
    kGuards,     // arg: guard set; jump: target on failure
    kLoopEnter,  // arg: loop; jump: loop exit (past kLoopNext)
    kLoopNext,   // arg: loop; jump: body start
    kStmt,       // arg: statement
    kHalt,
  };
  struct CInst {
    COp op = COp::kHalt;
    int arg = 0;
    int jump = 0;
  };

  enum class SOp : unsigned char {
    kConst,   // dst <- imm
    kVar,     // dst <- double(env[payload])
    kAffine,  // dst <- double(eval(lins_[payload]))
    kLoad,    // dst <- array data at accesses_[payload]'s offset
    kAdd, kSub, kMul, kDiv,  // dst <- a op b
    kNeg, kSqrt,             // dst <- op a
    kFunc,    // dst <- uf hash of func_sites_[payload] over arg regs
  };
  struct SInst {
    SOp op = SOp::kConst;
    int dst = 0, a = 0, b = 0;
    double imm = 0.0;
    i64 payload = 0;
  };
  struct FuncSite {
    std::uint64_t name_hash = 0;
    int args_begin = 0, args_end = 0;  // into func_args_ (register ids)
  };

  VmProgram() = default;

  /// The dispatch loop of run(), compiled twice: kProfile adds clock
  /// reads around every instruction and buckets them into the Stats
  /// per-opcode / per-depth histograms; the !kProfile instantiation is
  /// the unchanged hot path.
  template <bool kProfile>
  InterpStats run_impl(const InterpOptions& opts);

  i64 eval(const LinExpr& e) const;  // checked
  i64 eval_lower(const CBound& b) const;
  i64 eval_upper(const CBound& b) const;
  bool guards_hold(const GuardSet& g) const;
  void enter_loop(const LoopInfo& loop, i64 lo, i64 hi);
  void exec_stmt(const StmtInfo& s, InterpStats& st, i64 max_instances);
  void probe_lines(const StmtInfo& s);
  void slow_access_offsets(const StmtInfo& s);
  [[noreturn]] void bounds_fail(const Access& a, int dim, i64 idx) const;

  // -- compiled tables --
  std::vector<CInst> code_;
  std::vector<LoopInfo> loops_;
  std::vector<StmtInfo> stmts_;
  std::vector<GuardSet> guard_sets_;
  std::vector<CGuard> guards_;
  std::vector<ArrayInfo> arrays_;
  std::vector<Access> accesses_;
  std::vector<AccessDim> dims_;
  std::vector<EntryInit> inits_;
  std::vector<EntryCheck> checks_;
  std::vector<Advance> advances_;
  std::vector<SInst> scode_;
  std::vector<LinExpr> lins_;      // kAffine payloads
  std::vector<FuncSite> func_sites_;
  std::vector<int> func_args_;
  int num_slots_ = 0;
  int max_sregs_ = 0;
  i64 hoisted_accesses_ = 0;
  i64 checked_accesses_ = 0;

  // Partition marks (mark_partition): per loop, whether it is chunked
  // by run_worker, and whether its subtree contains a marked loop
  // (marked loops count as containing themselves).
  std::vector<std::uint8_t> marked_;
  std::vector<std::uint8_t> reach_marked_;

  // -- runtime state --
  // Cache-line probe for the current run (null = disabled); shift is
  // log2(line_elems), precomputed when the probe is installed.
  CacheProbe* probe_ = nullptr;
  int probe_shift_ = 0;
  // Worker instrumentation (run_worker only; per-clone, so unshared).
  WorkerInstr instr_;
  i64 chunk_t0_ = 0;        // profile clock at current chunk start
  i64 chunk_trace_t0_ = 0;  // tracer clock at current chunk start
  bool chunk_profiled_ = false;
  bool chunk_traced_ = false;
  std::vector<i64> env_;    // loop variable values, by slot
  std::vector<i64> hi_;     // per active loop: current upper bound
  std::vector<i64> last_;   // per active loop: last executed value
  std::vector<i64> offs_;   // per access: running flat offset
  std::vector<double> sregs_;

  // Probe-mode accumulator, parallel to arrays_.
  struct ProbeState {
    struct ArrayRange {
      std::vector<i64> lo, hi;
      bool init = false;
    };
    std::vector<ArrayRange> ranges;
  };
  void run_probe(ProbeState& ps);
  void probe_note(ProbeState& ps, const Access& a);
};

}  // namespace inlt
