// The deterministic value function for uninterpreted functions.
//
// Both execution engines (the AST walker in interp.cpp and the bytecode
// VM in vm.cpp) must assign f(args...) the exact same double, bit for
// bit, or differential verification of the engines themselves would
// drown in false mismatches. The shared definition lives here.
#pragma once

#include <cstdint>
#include <cstring>

namespace inlt {

/// Deterministic "random" double in [0,1) from a 64-bit state
/// (SplitMix-style finalizer).
inline double uf_hash_to_unit(std::uint64_t h) {
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
}

/// Order-dependent combiner (boost::hash_combine shape).
inline std::uint64_t uf_mix(std::uint64_t a, std::uint64_t b) {
  return a * 0x9e3779b97f4a7c15ULL + b + (a << 6) + (a >> 2);
}

/// The bit pattern an argument value contributes to the hash.
inline std::uint64_t uf_double_bits(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

}  // namespace inlt
