#include "exec/array.hpp"

#include <cmath>

#include "support/check.hpp"

namespace inlt {

DenseArray::DenseArray(std::vector<i64> lo, std::vector<i64> hi)
    : lo_(std::move(lo)), hi_(std::move(hi)) {
  INLT_CHECK(lo_.size() == hi_.size());
  i64 total = 1;
  strides_.resize(lo_.size());
  for (int d = static_cast<int>(lo_.size()) - 1; d >= 0; --d) {
    INLT_CHECK_MSG(hi_[d] >= lo_[d], "array dimension has empty range");
    strides_[d] = total;
    // Extent itself is overflow-checked: [lo, hi] can span nearly the
    // whole i64 range when a probe ran with absurd parameter values.
    total = checked_mul(total, checked_add(checked_sub(hi_[d], lo_[d]), 1));
  }
  data_.assign(static_cast<size_t>(total), 0.0);
}

size_t DenseArray::flat(const std::vector<i64>& idx) const {
  INLT_CHECK_MSG(idx.size() == lo_.size(), "array rank mismatch");
  i64 off = 0;
  for (size_t d = 0; d < idx.size(); ++d) {
    INLT_CHECK_MSG(idx[d] >= lo_[d] && idx[d] <= hi_[d],
                   "array index out of bounds");
    off = checked_add(off, checked_mul(idx[d] - lo_[d], strides_[d]));
  }
  return static_cast<size_t>(off);
}

double DenseArray::get(const std::vector<i64>& idx) const {
  return data_[flat(idx)];
}

void DenseArray::set(const std::vector<i64>& idx, double v) {
  data_[flat(idx)] = v;
}

void DenseArray::for_each_index(
    const std::function<void(const std::vector<i64>&)>& fn) const {
  std::vector<i64> idx = lo_;
  if (lo_.empty()) return;
  for (;;) {
    fn(idx);
    int d = rank() - 1;
    while (d >= 0 && idx[d] == hi_[d]) {
      idx[d] = lo_[d];
      --d;
    }
    if (d < 0) break;
    ++idx[d];
  }
}

double DenseArray::max_abs_diff(const DenseArray& o) const {
  INLT_CHECK_MSG(data_.size() == o.data_.size(), "array shape mismatch");
  double m = 0.0;
  for (size_t i = 0; i < data_.size(); ++i)
    m = std::max(m, std::fabs(data_[i] - o.data_[i]));
  return m;
}

void Memory::declare(const std::string& name, std::vector<i64> lo,
                     std::vector<i64> hi) {
  arrays_[name] = DenseArray(std::move(lo), std::move(hi));
}

DenseArray& Memory::at(const std::string& name) {
  auto it = arrays_.find(name);
  INLT_CHECK_MSG(it != arrays_.end(), "undeclared array " + name);
  return it->second;
}

const DenseArray& Memory::at(const std::string& name) const {
  auto it = arrays_.find(name);
  INLT_CHECK_MSG(it != arrays_.end(), "undeclared array " + name);
  return it->second;
}

double Memory::max_abs_diff(const Memory& o) const {
  INLT_CHECK_MSG(arrays_.size() == o.arrays_.size(), "memory shape mismatch");
  double m = 0.0;
  for (const auto& [name, arr] : arrays_)
    m = std::max(m, arr.max_abs_diff(o.at(name)));
  return m;
}

}  // namespace inlt
