// Interpreter for inlt programs.
//
// Executes a Program against a Memory, giving transformations an
// executable semantics: a transformed program is correct when it
// leaves memory in the same state as the source program on the same
// inputs. Uninterpreted functions (f(), g(), ...) evaluate to a
// deterministic hash of the function name, the evaluated arguments and
// the current loop environment, so they are pure and order-independent
// — exactly what comparing two statement orders requires.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "exec/array.hpp"
#include "ir/ast.hpp"
#include "support/cache_geometry.hpp"

namespace inlt {

/// One array access performed by an executed statement instance.
struct AccessEvent {
  std::string stmt;   ///< statement label
  std::string array;
  std::vector<i64> index;
  bool is_write = false;
};

/// Which execution engine interpret() uses. All three produce
/// bit-identical results (memory state, InterpStats, the
/// uninterpreted-function values); the VM is roughly an order of
/// magnitude faster than the walker, and the native engine compiles
/// the program to machine code for another large factor — at the cost
/// of one out-of-process C compile on first sight of a program (cached
/// on disk afterwards; see exec/native.hpp).
enum class ExecEngine {
  kVm,         ///< compile to bytecode and run it (exec/vm.hpp)
  kAstWalker,  ///< recursive tree walk (reference semantics)
  kNative,     ///< lower to C, compile, dlopen and run (exec/native.hpp);
               ///< falls back to the VM (with a Stage::kExec warning on
               ///< stderr) when no C compiler or dlopen is available.
               ///< Serial only: an observer forces the walker, and the
               ///< cache probe or a parallel partition rides the VM.
};

/// Bucketed distinct-cache-line estimator — the VM's ground-truth
/// probe for the static cost model (model/cost.hpp). Every executed
/// array access maps to a deterministic logical line (array identity
/// plus element offset / line_elems; arrays are treated as
/// line-aligned), and lines are tracked in a direct-mapped tag table
/// of 2^bucket_bits entries: a tag change counts one line. With the
/// table generously sized relative to the working set, `lines`
/// approximates the number of distinct lines touched; undersized, it
/// approximates the miss count of a direct-mapped cache of that many
/// lines. Results are machine-independent (no real addresses).
///
/// Geometry defaults come from support/cache_geometry.hpp so the
/// probe, the static cost model and the tile working-set model all
/// measure the same machine.
struct CacheProbe {
  /// Elements per line; must be a power of two.
  i64 line_elems = kCacheLineElems;
  /// log2 of tag-table entries.
  int bucket_bits = kCacheProbeBucketBits;

  // -- results --
  i64 accesses = 0;  ///< array accesses observed
  i64 lines = 0;     ///< estimated distinct lines touched

  /// Record one access to logical line `line_id`. Lazily sizes the
  /// tag table on first use.
  void touch(std::uint64_t line_id) {
    if (tags.empty()) tags.assign(std::size_t{1} << bucket_bits, 0);
    ++accesses;
    const std::uint64_t tag = line_id + 1;  // 0 = empty bucket
    std::uint64_t& slot =
        tags[(line_id * 0x9E3779B97F4A7C15ull) >> (64 - bucket_bits)];
    if (slot != tag) {
      slot = tag;
      ++lines;
    }
  }

  std::vector<std::uint64_t> tags;  ///< direct-mapped line tags
};

struct InterpOptions {
  /// Bound on executed statement instances (runaway guard).
  i64 max_instances = 50'000'000;
  /// Optional access observer (drives the dependence-order oracle in
  /// exec/trace.hpp). Reads are reported before the write. Installing
  /// an observer forces the AST walker: the VM does not materialize
  /// per-access events, and the oracle needs their exact order.
  std::function<void(const AccessEvent&)> observer;
  /// Engine selection; ignored (walker used) when `observer` is set.
  ExecEngine engine = ExecEngine::kVm;
  /// When set, count cache lines touched during execution. VM engine
  /// only (interpret() rejects the combination with an observer);
  /// results accumulate into the pointed-to probe, so one probe can
  /// span several runs.
  CacheProbe* cache_probe = nullptr;
  /// Partitioned parallel execution (exec/parallel.hpp). When
  /// num_threads > 1 and `partition` names at least one loop of the
  /// program, the VM chunks those (doall) loops across a shared
  /// worker pool — bit-identical Memory, summed InterpStats, and the
  /// instance budget enforced per worker. Serial otherwise. VM engine
  /// only: an observer or cache probe forces the serial path.
  int num_threads = 1;
  std::vector<std::string> partition;
  /// Opt-in per-opcode VM profiling: bucket the nanoseconds spent in
  /// each bytecode op (guards, loop enter/advance, statements) and in
  /// statements by loop depth into the Stats log₂ histograms
  /// (`vm.op.*_ns`, `vm.stmt.depth*_ns`). VM engine, serial path only
  /// (the partitioned driver has its own per-worker profiler —
  /// support/profile.hpp). Execution results are unchanged; the
  /// instrumented dispatch loop is compiled separately so the default
  /// path pays nothing.
  bool profile = false;
};

struct InterpStats {
  i64 instances = 0;       ///< statement instances executed
  i64 loop_iterations = 0; ///< loop header iterations executed
  i64 guard_failures = 0;  ///< guard evaluations that suppressed a subtree
};

/// Run the program. `params` binds symbolic parameters; arrays must be
/// pre-declared in `mem` (see declare_arrays below).
InterpStats interpret(const Program& p, const std::map<std::string, i64>& params,
                      Memory& mem, const InterpOptions& opts = {});

/// Declare every array the program touches, sized so all subscripts at
/// the given parameter values are in range (probed conservatively from
/// the subscript expressions).
void declare_arrays(const Program& p, const std::map<std::string, i64>& params,
                    Memory& mem);

/// Fill every declared array with deterministic pseudo-random values
/// (seeded), e.g. as common input for source/target comparison.
void randomize(Memory& mem, unsigned seed);

/// Fill arrays so matrices are symmetric positive definite when square
/// — diagonally dominant values — letting Cholesky-like codes run
/// without NaNs.
void fill_spd(Memory& mem, unsigned seed);

}  // namespace inlt
