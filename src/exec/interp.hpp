// Interpreter for inlt programs.
//
// Executes a Program against a Memory, giving transformations an
// executable semantics: a transformed program is correct when it
// leaves memory in the same state as the source program on the same
// inputs. Uninterpreted functions (f(), g(), ...) evaluate to a
// deterministic hash of the function name, the evaluated arguments and
// the current loop environment, so they are pure and order-independent
// — exactly what comparing two statement orders requires.
#pragma once

#include <functional>
#include <map>
#include <string>

#include "exec/array.hpp"
#include "ir/ast.hpp"

namespace inlt {

/// One array access performed by an executed statement instance.
struct AccessEvent {
  std::string stmt;   ///< statement label
  std::string array;
  std::vector<i64> index;
  bool is_write = false;
};

/// Which execution engine interpret() uses. Both produce bit-identical
/// results (memory state, InterpStats, the uninterpreted-function
/// values); the VM is roughly an order of magnitude faster.
enum class ExecEngine {
  kVm,         ///< compile to bytecode and run it (exec/vm.hpp)
  kAstWalker,  ///< recursive tree walk (reference semantics)
};

struct InterpOptions {
  /// Bound on executed statement instances (runaway guard).
  i64 max_instances = 50'000'000;
  /// Optional access observer (drives the dependence-order oracle in
  /// exec/trace.hpp). Reads are reported before the write. Installing
  /// an observer forces the AST walker: the VM does not materialize
  /// per-access events, and the oracle needs their exact order.
  std::function<void(const AccessEvent&)> observer;
  /// Engine selection; ignored (walker used) when `observer` is set.
  ExecEngine engine = ExecEngine::kVm;
};

struct InterpStats {
  i64 instances = 0;       ///< statement instances executed
  i64 loop_iterations = 0; ///< loop header iterations executed
  i64 guard_failures = 0;  ///< guard evaluations that suppressed a subtree
};

/// Run the program. `params` binds symbolic parameters; arrays must be
/// pre-declared in `mem` (see declare_arrays below).
InterpStats interpret(const Program& p, const std::map<std::string, i64>& params,
                      Memory& mem, const InterpOptions& opts = {});

/// Declare every array the program touches, sized so all subscripts at
/// the given parameter values are in range (probed conservatively from
/// the subscript expressions).
void declare_arrays(const Program& p, const std::map<std::string, i64>& params,
                    Memory& mem);

/// Fill every declared array with deterministic pseudo-random values
/// (seeded), e.g. as common input for source/target comparison.
void randomize(Memory& mem, unsigned seed);

/// Fill arrays so matrices are symmetric positive definite when square
/// — diagonally dominant values — letting Cholesky-like codes run
/// without NaNs.
void fill_spd(Memory& mem, unsigned seed);

}  // namespace inlt
