// The native execution engine: C codegen -> shared object -> dlopen.
//
// The third engine behind InterpOptions::engine (after the AST walker
// and the bytecode VM). A Program is lowered to standalone C
// (exec/cgen.hpp), compiled out of process with the system C compiler
// (`$INLTC_CC`, else `$CC`, else `cc`) at `-O3 -fPIC -shared
// -ffp-contract=off -fwrapv`, and loaded with dlopen; the kernel then
// runs against the same Memory the VM uses and produces bit-identical
// array state and InterpStats.
//
// Compiled kernels are content-addressed on disk:
//
//   key   = sha256(emitted C source, compiler id line, flags)
//   path  = $INLTC_CACHE_DIR | $XDG_CACHE_HOME/inltc | ~/.cache/inltc
//           | /tmp/inltc-cache-$UID, file <key>.so (+ <key>.c beside it)
//
// Writes go through a process-unique temp file and rename(2), so
// concurrent sessions sharing a cache directory never observe a
// half-written object — at worst both compile and the second rename
// wins. A cache entry that fails to dlopen/dlsym (truncated, foreign
// ABI) is deleted and recompiled, never trusted. Open handles live in
// an in-process LRU (INLTC_NATIVE_LRU entries, default 64) of
// refcounted handles; eviction dlcloses once the last running kernel
// is done.
//
// Failure split: anything that prevents *preparing* a kernel (no
// compiler, compile error, dlopen unsupported) makes native_prepare
// return null with a Stage::kExec diagnostic — interpret() then falls
// back to the VM. Errors while *running* a prepared kernel (bounds,
// instance budget, undeclared array) throw inlt::Error exactly like
// the other engines: a wrong candidate must fail, not fall back.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "exec/interp.hpp"
#include "support/diag.hpp"

namespace inlt {

class NativeKernel;  // opaque: an open, runnable compiled kernel

/// True when kernels can be prepared right now (dlopen supported and
/// the resolved compiler answers `--version`). `why` gets the reason
/// when false.
bool native_available(std::string* why = nullptr);

/// The compiler command the engine would use: $INLTC_CC, else $CC,
/// else "cc" (re-read from the environment on every call).
std::string native_compiler();

/// The cache directory (created on demand): $INLTC_CACHE_DIR, else
/// $XDG_CACHE_HOME/inltc, else $HOME/.cache/inltc, else a per-uid
/// directory under /tmp.
std::string native_cache_dir();

/// The content-address of `p`'s kernel under the current compiler and
/// flags — the basename (sans extension) of its cache files.
std::string native_cache_key(const Program& p);

/// Compile (or fetch from cache) the kernel for `p`. Returns null and
/// fills `why` (severity kWarning, Stage::kExec) when the engine is
/// unavailable or the compile fails; never throws for those cases.
std::shared_ptr<NativeKernel> native_prepare(const Program& p,
                                             Diagnostic* why = nullptr);

/// Run a prepared kernel: binds `params`, packs array pointers and
/// shapes from `mem`, executes, and returns the stats. Throws Error on
/// runtime failure (out of bounds, instance budget, undeclared array,
/// unbound parameter) with the same messages the VM produces.
InterpStats native_run(const NativeKernel& kernel,
                       const std::map<std::string, i64>& params, Memory& mem,
                       const InterpOptions& opts);

/// Convenience used by interpret(): prepare + run. Returns false (and
/// fills `why`) when the engine could not be prepared — the caller
/// falls back to the VM. Runtime errors propagate as Error.
bool native_try_run(const Program& p, const std::map<std::string, i64>& params,
                    Memory& mem, const InterpOptions& opts, InterpStats* out,
                    Diagnostic* why);

/// Drop every cached open handle (dlclosing ones not currently
/// running). Tests use this to force the disk-cache path.
void native_lru_clear();

}  // namespace inlt
