// Program -> VmProgram compiler (see vm.hpp for the design).
//
// All arithmetic that folds parameters, array strides or loop steps
// into compiled constants is overflow-checked: a parameter binding
// large enough to wrap i64 offsets must throw OverflowError at compile
// time, never address memory through a wrapped offset.
#include <algorithm>
#include <utility>

#include "exec/vm.hpp"
#include "support/check.hpp"
#include "support/stats.hpp"
#include "support/trace.hpp"

namespace inlt {

class VmCompiler {
 public:
  // `mem == nullptr` selects probe mode: no array binding, no scalar
  // code — just loops, guards and subscript expressions.
  VmCompiler(const Program& p, const std::map<std::string, i64>& params,
             Memory* mem, VmProgram& vm)
      : p_(p), params_(params), mem_(mem), vm_(vm) {}

  void compile() {
    for (const NodePtr& root : p_.roots()) compile_node(*root);
    vm_.code_.push_back({VmProgram::COp::kHalt, 0, 0});
    finalize_loop_actions();
    vm_.num_slots_ = next_slot_;
    vm_.env_.assign(static_cast<size_t>(std::max(next_slot_, 1)), 0);
    vm_.hi_.assign(std::max<size_t>(vm_.loops_.size(), 1), 0);
    vm_.last_.assign(std::max<size_t>(vm_.loops_.size(), 1), 0);
    vm_.offs_.assign(std::max<size_t>(vm_.accesses_.size(), 1), 0);
    vm_.sregs_.assign(static_cast<size_t>(std::max(vm_.max_sregs_, 1)), 0.0);
  }

 private:
  using LinExpr = VmProgram::LinExpr;
  using COp = VmProgram::COp;
  using SOp = VmProgram::SOp;

  // -- expression lowering --

  // Merge a term into a LinExpr (slots stay unique).
  static void add_term(LinExpr& e, int slot, i64 coef) {
    if (coef == 0) return;
    for (auto& [s, c] : e.terms) {
      if (s == slot) {
        c = checked_add(c, coef);
        return;
      }
    }
    e.terms.emplace_back(slot, coef);
  }

  int find_slot(const std::string& name) const {
    for (auto it = scope_.rbegin(); it != scope_.rend(); ++it)
      if (it->first == name) return it->second;
    return -1;
  }

  LinExpr lin(const AffineExpr& e) const {
    LinExpr r;
    r.constant = e.constant();
    for (const auto& [name, coef] : e.terms()) {
      auto it = params_.find(name);
      if (it != params_.end()) {
        r.constant = checked_add(r.constant, checked_mul(coef, it->second));
        continue;
      }
      int slot = find_slot(name);
      INLT_CHECK_MSG(slot >= 0, "unbound variable in eval: " + name);
      r.terms.emplace_back(slot, coef);
    }
    return r;
  }

  VmProgram::CBound cbound(const Bound& b, bool lower) const {
    INLT_CHECK_MSG(!b.terms.empty(),
                   lower ? "lower bound with no terms" : "upper bound with no terms");
    VmProgram::CBound r;
    r.tight = (b.mode == Bound::Mode::kTight);
    for (const BoundTerm& t : b.terms) r.terms.push_back({lin(t.expr), t.den});
    return r;
  }

  // -- arrays and accesses --

  int array_index(const std::string& name, int rank) {
    auto it = array_ids_.find(name);
    if (it != array_ids_.end()) {
      const VmProgram::ArrayInfo& a = vm_.arrays_[it->second];
      INLT_CHECK_MSG(a.rank == rank,
                     mem_ ? "array rank mismatch"
                          : "array " + name + " used with inconsistent rank");
      return it->second;
    }
    VmProgram::ArrayInfo a;
    a.name = name;
    a.rank = rank;
    // An array missing from `mem` stays unbound (data == nullptr): the
    // walker only resolves arrays at access time, so a program whose
    // accesses all sit in zero-trip loops runs fine — executing an
    // unbound access throws, matching Memory::at.
    if (mem_ && mem_->has(name)) {
      DenseArray& arr = mem_->at(name);
      INLT_CHECK_MSG(arr.rank() == rank, "array rank mismatch");
      a.data = arr.raw_data();
      for (int d = 0; d < rank; ++d) {
        a.lo.push_back(arr.lo(d));
        a.hi.push_back(arr.hi(d));
        a.strides.push_back(arr.stride(d));
      }
    }
    int id = static_cast<int>(vm_.arrays_.size());
    vm_.arrays_.push_back(std::move(a));
    array_ids_.emplace(name, id);
    return id;
  }

  int add_access(const std::string& name, const std::vector<AffineExpr>& subs) {
    int ai = array_index(name, static_cast<int>(subs.size()));
    VmProgram::Access acc;
    acc.array = ai;
    acc.first_dim = static_cast<int>(vm_.dims_.size());
    acc.ndims = static_cast<int>(subs.size());
    const VmProgram::ArrayInfo& arr = vm_.arrays_[ai];
    for (size_t d = 0; d < subs.size(); ++d) {
      LinExpr le = lin(subs[d]);
      if (arr.data != nullptr) {
        // offset += stride_d * (subscript_d - lo_d), folded per term.
        acc.offset.constant = checked_add(
            acc.offset.constant,
            checked_mul(arr.strides[d], checked_sub(le.constant, arr.lo[d])));
        for (const auto& [slot, coef] : le.terms)
          add_term(acc.offset, slot, checked_mul(coef, arr.strides[d]));
      }
      vm_.dims_.push_back({std::move(le)});
    }
    int id = static_cast<int>(vm_.accesses_.size());
    acc.reg = id;
    vm_.accesses_.push_back(std::move(acc));
    return id;
  }

  // -- scalar bytecode --

  void emit_s(SOp op, int dst, int a = 0, int b = 0, double imm = 0.0,
              i64 payload = 0) {
    vm_.scode_.push_back({op, dst, a, b, imm, payload});
  }

  // Compiles `e` into register `base`; scratch registers are base+1...
  int compile_scalar(const ScalarExpr& e, int base) {
    vm_.max_sregs_ = std::max(vm_.max_sregs_, base + 1);
    switch (e.op) {
      case ScalarOp::kConst:
        emit_s(SOp::kConst, base, 0, 0, e.constant);
        break;
      case ScalarOp::kVar: {
        auto it = params_.find(e.name);
        if (it != params_.end()) {
          emit_s(SOp::kConst, base, 0, 0, static_cast<double>(it->second));
          break;
        }
        int slot = find_slot(e.name);
        INLT_CHECK_MSG(slot >= 0, "unbound variable " + e.name);
        emit_s(SOp::kVar, base, 0, 0, 0.0, slot);
        break;
      }
      case ScalarOp::kAffine: {
        vm_.lins_.push_back(lin(e.subscripts[0]));
        emit_s(SOp::kAffine, base, 0, 0, 0.0,
               static_cast<i64>(vm_.lins_.size()) - 1);
        break;
      }
      case ScalarOp::kArrayRef:
        emit_s(SOp::kLoad, base, 0, 0, 0.0, add_access(e.name, e.subscripts));
        break;
      case ScalarOp::kAdd:
      case ScalarOp::kSub:
      case ScalarOp::kMul:
      case ScalarOp::kDiv: {
        compile_scalar(*e.args[0], base);
        compile_scalar(*e.args[1], base + 1);
        SOp op = e.op == ScalarOp::kAdd   ? SOp::kAdd
                 : e.op == ScalarOp::kSub ? SOp::kSub
                 : e.op == ScalarOp::kMul ? SOp::kMul
                                          : SOp::kDiv;
        emit_s(op, base, base, base + 1);
        break;
      }
      case ScalarOp::kNeg:
      case ScalarOp::kSqrt:
        compile_scalar(*e.args[0], base);
        emit_s(e.op == ScalarOp::kNeg ? SOp::kNeg : SOp::kSqrt, base, base);
        break;
      case ScalarOp::kFunc: {
        // Arg i lands in base+i; its scratch (base+i+1...) never
        // clobbers earlier results.
        VmProgram::FuncSite site;
        site.name_hash = std::hash<std::string>{}(e.name);
        site.args_begin = static_cast<int>(vm_.func_args_.size());
        for (size_t i = 0; i < e.args.size(); ++i) {
          compile_scalar(*e.args[i], base + static_cast<int>(i));
          vm_.func_args_.push_back(base + static_cast<int>(i));
        }
        site.args_end = static_cast<int>(vm_.func_args_.size());
        vm_.func_sites_.push_back(site);
        emit_s(SOp::kFunc, base, 0, 0, 0.0,
               static_cast<i64>(vm_.func_sites_.size()) - 1);
        break;
      }
    }
    return base;
  }

  // -- statements and loops --

  void compile_stmt(const Node& n) {
    const Statement& s = n.stmt_data();
    VmProgram::StmtInfo st;
    st.first_access = static_cast<int>(vm_.accesses_.size());
    if (!mem_) {
      // Probe mode: accesses only (write first, matching the walker).
      for (const ArrayAccess& a : s.accesses()) add_access(a.array, a.subscripts);
      st.naccesses = static_cast<int>(vm_.accesses_.size()) - st.first_access;
      vm_.stmts_.push_back(std::move(st));
      emit_c(COp::kStmt, static_cast<int>(vm_.stmts_.size()) - 1);
      return;
    }
    add_access(s.lhs_array, s.lhs_subscripts);
    st.scalar_begin = static_cast<int>(vm_.scode_.size());
    if (s.rhs) st.result_reg = compile_scalar(*s.rhs, 0);
    st.scalar_end = static_cast<int>(vm_.scode_.size());
    st.naccesses = static_cast<int>(vm_.accesses_.size()) - st.first_access;
    bool all_bound = true;
    for (int i = st.first_access; i < st.first_access + st.naccesses; ++i)
      if (vm_.arrays_[vm_.accesses_[i].array].data == nullptr)
        all_bound = false;
    st.fast = all_bound && n.guards().empty() && !loop_stack_.empty();
    if (st.fast) {
      int owner = loop_stack_.back();
      const VmProgram::LoopInfo& L = vm_.loops_[owner];
      for (int i = st.first_access; i < st.first_access + st.naccesses; ++i) {
        VmProgram::Access& a = vm_.accesses_[i];
        loop_inits_[owner].push_back({i});
        i64 ocoef = 0;
        for (const auto& [slot, coef] : a.offset.terms)
          if (slot == L.slot) ocoef = coef;
        a.step_delta = checked_mul(ocoef, L.step);
        if (a.step_delta != 0)
          loop_advances_[owner].push_back({a.reg, a.step_delta});
        for (int d = 0; d < a.ndims; ++d) {
          i64 dcoef = 0;
          for (const auto& [slot, coef] :
               vm_.dims_[a.first_dim + d].expr.terms)
            if (slot == L.slot) dcoef = coef;
          loop_checks_[owner].push_back({i, d, dcoef});
        }
      }
      vm_.hoisted_accesses_ += st.naccesses;
    } else {
      vm_.checked_accesses_ += st.naccesses;
    }
    vm_.stmts_.push_back(std::move(st));
    emit_c(COp::kStmt, static_cast<int>(vm_.stmts_.size()) - 1);
  }

  void compile_loop(const Node& n) {
    int idx = static_cast<int>(vm_.loops_.size());
    vm_.loops_.emplace_back();
    loop_inits_.emplace_back();
    loop_checks_.emplace_back();
    loop_advances_.emplace_back();
    {
      VmProgram::LoopInfo& L = vm_.loops_[idx];
      L.slot = next_slot_++;
      L.var = n.var();
      L.step = n.step();
      INLT_CHECK_MSG(L.step != 0, "loop step must be nonzero");
      L.lower = cbound(n.lower(), /*lower=*/true);
      L.upper = cbound(n.upper(), /*lower=*/false);
    }
    int enter_pc = emit_c(COp::kLoopEnter, idx);
    scope_.emplace_back(n.var(), vm_.loops_[idx].slot);
    loop_stack_.push_back(idx);
    int body_pc = static_cast<int>(vm_.code_.size());
    int acc_before = static_cast<int>(vm_.accesses_.size());
    for (const NodePtr& c : n.children()) compile_node(*c);
    emit_c(COp::kLoopNext, idx, body_pc);
    vm_.code_[enter_pc].jump = static_cast<int>(vm_.code_.size());
    loop_stack_.pop_back();
    scope_.pop_back();

    bool collapse = true;
    for (const NodePtr& c : n.children())
      if (!c->is_stmt() || !c->guards().empty()) collapse = false;
    VmProgram::LoopInfo& L = vm_.loops_[idx];
    L.probe_collapse = collapse;
    L.probe_begin = acc_before;
    L.probe_end = static_cast<int>(vm_.accesses_.size());
  }

  void compile_node(const Node& n) {
    int guard_pc = -1;
    if (!n.guards().empty()) {
      VmProgram::GuardSet gs{static_cast<int>(vm_.guards_.size()), 0};
      for (const Guard& g : n.guards())
        vm_.guards_.push_back({g.kind, lin(g.expr), g.modulus});
      gs.end = static_cast<int>(vm_.guards_.size());
      vm_.guard_sets_.push_back(gs);
      guard_pc = emit_c(COp::kGuards,
                        static_cast<int>(vm_.guard_sets_.size()) - 1);
    }
    if (n.is_stmt())
      compile_stmt(n);
    else
      compile_loop(n);
    if (guard_pc >= 0)
      vm_.code_[guard_pc].jump = static_cast<int>(vm_.code_.size());
  }

  int emit_c(COp op, int arg, int jump = 0) {
    vm_.code_.push_back({op, arg, jump});
    return static_cast<int>(vm_.code_.size()) - 1;
  }

  // Per-loop action lists accumulate out of order (statements of one
  // loop body interleave with nested loops); flatten them into the
  // contiguous ranges LoopInfo indexes.
  void finalize_loop_actions() {
    for (size_t i = 0; i < vm_.loops_.size(); ++i) {
      VmProgram::LoopInfo& L = vm_.loops_[i];
      L.init_begin = static_cast<int>(vm_.inits_.size());
      for (const auto& e : loop_inits_[i]) vm_.inits_.push_back(e);
      L.init_end = static_cast<int>(vm_.inits_.size());
      L.check_begin = static_cast<int>(vm_.checks_.size());
      for (const auto& e : loop_checks_[i]) vm_.checks_.push_back(e);
      L.check_end = static_cast<int>(vm_.checks_.size());
      L.adv_begin = static_cast<int>(vm_.advances_.size());
      for (const auto& e : loop_advances_[i]) vm_.advances_.push_back(e);
      L.adv_end = static_cast<int>(vm_.advances_.size());
    }
  }

  const Program& p_;
  const std::map<std::string, i64>& params_;
  Memory* mem_;
  VmProgram& vm_;
  std::vector<std::pair<std::string, int>> scope_;  // (var, slot), inner last
  std::vector<int> loop_stack_;                     // loop ids, inner last
  std::map<std::string, int> array_ids_;
  int next_slot_ = 0;
  std::vector<std::vector<VmProgram::EntryInit>> loop_inits_;
  std::vector<std::vector<VmProgram::EntryCheck>> loop_checks_;
  std::vector<std::vector<VmProgram::Advance>> loop_advances_;
};

VmProgram::VmProgram(const Program& p, const std::map<std::string, i64>& params,
                     Memory& mem) {
  ScopedSpan span("vm.compile", "exec");
  ScopedTimer timer("exec.vm.compile_ns");
  VmCompiler c(p, params, &mem, *this);
  c.compile();
  Stats::global().add("exec.vm.compiles");
  Stats::global().add_sample("exec.vm.code_len",
                             static_cast<i64>(code_.size() + scode_.size()));
}

void VmProgram::rebind(Memory& mem) {
  for (ArrayInfo& a : arrays_) {
    if (a.data == nullptr) continue;  // unbound at compile time stays so
    DenseArray& arr = mem.at(a.name);
    INLT_CHECK_MSG(arr.rank() == a.rank, "rebind: array rank mismatch");
    for (int d = 0; d < a.rank; ++d)
      INLT_CHECK_MSG(arr.lo(d) == a.lo[d] && arr.hi(d) == a.hi[d],
                     "rebind: array shape mismatch for " + a.name);
    a.data = arr.raw_data();
  }
}

std::map<std::string, VmProgram::Range> VmProgram::probe_ranges(
    const Program& p, const std::map<std::string, i64>& params) {
  ScopedSpan span("vm.probe", "exec");
  ScopedTimer timer("exec.vm.probe_ns");
  VmProgram vm;
  VmCompiler c(p, params, nullptr, vm);
  c.compile();
  ProbeState ps;
  ps.ranges.resize(vm.arrays_.size());
  vm.run_probe(ps);
  std::map<std::string, Range> out;
  for (size_t i = 0; i < vm.arrays_.size(); ++i) {
    if (!ps.ranges[i].init) continue;  // never executed
    out.emplace(vm.arrays_[i].name,
                Range{std::move(ps.ranges[i].lo), std::move(ps.ranges[i].hi)});
  }
  return out;
}

}  // namespace inlt
