#include "dependence/analyzer.hpp"

#include <set>
#include <sstream>

#include "dependence/system.hpp"
#include "support/check.hpp"
#include "support/trace.hpp"

namespace inlt {

std::vector<DepVector> DependenceSet::columns() const {
  std::vector<DepVector> out;
  out.reserve(deps.size());
  for (const Dependence& d : deps) out.push_back(d.vector);
  return out;
}

std::string DependenceSet::to_string() const {
  std::ostringstream os;
  for (const Dependence& d : deps)
    os << dep_kind_name(d.kind) << " " << d.src << " -> " << d.dst << " on "
       << d.array << ": " << dep_to_string(d.vector) << "\n";
  return os.str();
}

namespace {

// Dedup key for analyzed dependences: the identifying fields compared
// directly — no per-dependence string rendering on the analysis path
// (dep_to_string alone dominated dedup cost on wide layouts).
struct DepKey {
  std::string src, dst, array;
  DepKind kind;
  DepVector vector;

  explicit DepKey(const Dependence& d)
      : src(d.src), dst(d.dst), array(d.array), kind(d.kind),
        vector(d.vector) {}

  friend bool operator<(const DepKey& a, const DepKey& b) {
    if (int c = a.src.compare(b.src)) return c < 0;
    if (int c = a.dst.compare(b.dst)) return c < 0;
    if (a.kind != b.kind) return a.kind < b.kind;
    if (int c = a.array.compare(b.array)) return c < 0;
    return a.vector < b.vector;  // lexicographic over DepEntry
  }
};

}  // namespace

DependenceSet analyze_dependences(const IvLayout& layout,
                                  const AnalyzerOptions& opts) {
  DependenceSet result;
  std::set<DepKey> seen;
  for (const PairSystem& ps : build_pair_systems(layout)) {
    ScopedSpan span("dep.pair", "dependence");
    if (span.active()) {
      span.arg("src", ps.src);
      span.arg("dst", ps.dst);
      span.arg("array", ps.array);
      span.arg("kind", dep_kind_name(ps.kind));
    }
    DepVector vec;
    vec.reserve(layout.size());
    for (int q = 0; q < layout.size(); ++q) {
      LinExpr dv = position_value_expr(ps.base, layout, ps.dst, q,
                                       /*src_side=*/false, opts.pad);
      LinExpr sv = position_value_expr(ps.base, layout, ps.src, q,
                                       /*src_side=*/true, opts.pad);
      vec.push_back(classify_delta(ps.base, lin_subtract(ps.base, dv, sv),
                                   opts.distance_scan_limit));
    }
    Dependence dep;
    dep.src = ps.src;
    dep.dst = ps.dst;
    dep.kind = ps.kind;
    dep.array = ps.array;
    dep.vector = std::move(vec);
    if (seen.emplace(dep).second) result.deps.push_back(std::move(dep));
  }
  return result;
}

}  // namespace inlt
