// Dependence analysis over instance vectors (§3).
//
// For every pair of accesses to the same array (at least one a write),
// the analyzer builds the affine system of §3 — loop bounds, same-
// location equalities, and execution-order constraints — introduces the
// Δ variables of Eq. (3) for every instance-vector position, and uses
// the Omega-test substrate to classify each Δ as an exact distance or
// a direction. The result is the paper's dependence matrix: one column
// per dependence, rows indexed by instance-vector positions.
#pragma once

#include <string>
#include <vector>

#include "dependence/direction.hpp"
#include "instance/layout.hpp"

namespace inlt {

struct Dependence {
  std::string src;  ///< label of the source statement
  std::string dst;  ///< label of the destination statement
  DepKind kind = DepKind::kFlow;
  std::string array;  ///< the array inducing the dependence
  DepVector vector;   ///< length == layout.size()
};

struct DependenceSet {
  std::vector<Dependence> deps;

  /// Columns of the paper's dependence matrix.
  std::vector<DepVector> columns() const;

  std::string to_string() const;
};

struct AnalyzerOptions {
  PadMode pad = PadMode::kDiagonal;
  /// Window for exact-distance detection; a |Δ| beyond this is reported
  /// as an unbounded direction. 8 comfortably covers real loop nests.
  i64 distance_scan_limit = 8;
};

/// Run dependence analysis. The program must be a source program:
/// unit steps, no guards, affine bounds with denominator 1. Throws
/// InvalidProgramError otherwise.
DependenceSet analyze_dependences(const IvLayout& layout,
                                  const AnalyzerOptions& opts = {});

}  // namespace inlt
