// Shared constraint-system construction for dependence queries.
//
// Both the direction-vector analyzer (§3) and the exact ILP legality
// checker build, for each pair of conflicting accesses and each
// execution-order disjunct, the affine system of §3: loop bounds for
// both sides, same-array-location equalities, and the source-precedes-
// destination ordering. Source-side loop variables are prefixed "s$",
// destination-side "d$"; parameters keep their names.
#pragma once

#include <vector>

#include "dependence/direction.hpp"
#include "instance/layout.hpp"
#include "linalg/constraint.hpp"

namespace inlt {

/// One feasible (access pair, ordering disjunct) system.
struct PairSystem {
  std::string src;  ///< source statement label
  std::string dst;  ///< destination statement label
  DepKind kind = DepKind::kFlow;
  std::string array;
  /// Ordering disjunct: number of common loops constrained equal
  /// before the strict inequality (== common count for the syntactic
  /// disjunct).
  int level = 0;
  ConstraintSystem base;
};

/// Enumerate every integer-feasible pair system of the program.
std::vector<PairSystem> build_pair_systems(const IvLayout& layout);

/// The value of instance-vector position q for statement `label`, as a
/// LinExpr over `cs`'s variables (uses "s$"/"d$" prefixes per side).
LinExpr position_value_expr(const ConstraintSystem& cs,
                            const IvLayout& layout, const std::string& label,
                            int q, bool src_side, PadMode pad);

/// Convex hull of the values `delta` takes over the (feasible) system,
/// clipped to [-limit, limit] with unbounded ends detected by
/// feasibility queries.
DepEntry classify_delta(const ConstraintSystem& cs, const LinExpr& delta,
                        i64 limit);

/// a - b over cs's variable space.
LinExpr lin_subtract(const ConstraintSystem& cs, const LinExpr& a,
                     const LinExpr& b);

}  // namespace inlt
