#include "dependence/direction.hpp"

#include <sstream>

#include "support/check.hpp"

namespace inlt {

std::string dep_kind_name(DepKind k) {
  switch (k) {
    case DepKind::kFlow:
      return "flow";
    case DepKind::kAnti:
      return "anti";
    case DepKind::kOutput:
      return "output";
  }
  return "?";
}

DepEntry DepEntry::range(i64 lo, i64 hi) {
  INLT_CHECK_MSG(lo <= hi, "empty dependence interval");
  return DepEntry(lo, hi, false, false);
}

DepEntry DepEntry::operator+(const DepEntry& o) const {
  bool lo_inf = lo_inf_ || o.lo_inf_;
  bool hi_inf = hi_inf_ || o.hi_inf_;
  i64 lo = lo_inf ? 0 : checked_add(lo_, o.lo_);
  i64 hi = hi_inf ? 0 : checked_add(hi_, o.hi_);
  return DepEntry(lo, hi, lo_inf, hi_inf);
}

DepEntry DepEntry::operator*(i64 s) const {
  if (s == 0) return exact(0);
  if (s > 0) {
    return DepEntry(lo_inf_ ? 0 : checked_mul(lo_, s),
                    hi_inf_ ? 0 : checked_mul(hi_, s), lo_inf_, hi_inf_);
  }
  // Negative scale swaps the ends.
  return DepEntry(hi_inf_ ? 0 : checked_mul(hi_, s),
                  lo_inf_ ? 0 : checked_mul(lo_, s), hi_inf_, lo_inf_);
}

std::string DepEntry::to_string() const {
  if (is_exact()) return std::to_string(lo_);
  if (lo_inf_ && hi_inf_) return "*";
  if (!lo_inf_ && hi_inf_) {
    if (lo_ == 1) return "+";
    if (lo_ == 0) return "0+";
    return "[" + std::to_string(lo_) + ",inf)";
  }
  if (lo_inf_ && !hi_inf_) {
    if (hi_ == -1) return "-";
    if (hi_ == 0) return "0-";
    return "(-inf," + std::to_string(hi_) + "]";
  }
  return "[" + std::to_string(lo_) + "," + std::to_string(hi_) + "]";
}

LexStatus lex_status_at(const DepVector& v, int* decided_at) {
  // Walk leading entries. A non-negative entry splits into two cases
  // (zero: the rest decides; positive: done), so the vector is
  // lexicographically positive when the rest is — a sound refinement
  // that matters for dependences whose carrying level is an inner one.
  if (decided_at) *decided_at = -1;
  bool saw_non_neg = false;
  for (size_t i = 0; i < v.size(); ++i) {
    const DepEntry& e = v[i];
    if (e.is_zero()) continue;
    if (decided_at) *decided_at = static_cast<int>(i);
    if (e.definitely_positive()) return LexStatus::kPositive;
    if (e.definitely_negative())
      return saw_non_neg ? LexStatus::kUnknown : LexStatus::kNegative;
    if (e.definitely_non_negative()) {
      saw_non_neg = true;
      continue;
    }
    return LexStatus::kUnknown;
  }
  // Ran off the end without a verdict entry: the status is a property
  // of the whole (zero / possibly-zero) vector, not one position.
  if (decided_at) *decided_at = -1;
  return saw_non_neg ? LexStatus::kNonNegative : LexStatus::kZero;
}

LexStatus lex_status(const DepVector& v) { return lex_status_at(v, nullptr); }

const char* lex_status_name(LexStatus s) {
  switch (s) {
    case LexStatus::kZero: return "zero";
    case LexStatus::kPositive: return "positive";
    case LexStatus::kNonNegative: return "non-negative";
    case LexStatus::kNegative: return "negative";
    case LexStatus::kUnknown: return "unknown";
  }
  return "unknown";
}

DepVector transform_dep(const IntMat& m, const DepVector& d) {
  INLT_CHECK(m.cols() == static_cast<int>(d.size()));
  DepVector out;
  out.reserve(m.rows());
  for (int i = 0; i < m.rows(); ++i) {
    DepEntry acc = DepEntry::exact(0);
    for (int j = 0; j < m.cols(); ++j) acc = acc + d[j] * m(i, j);
    out.push_back(acc);
  }
  return out;
}

DepVector project_dep(const DepVector& d, const std::vector<int>& positions) {
  DepVector out;
  out.reserve(positions.size());
  for (int p : positions) {
    INLT_CHECK(p >= 0 && p < static_cast<int>(d.size()));
    out.push_back(d[p]);
  }
  return out;
}

DepVector dep_from_ints(const IntVec& v) {
  DepVector out;
  out.reserve(v.size());
  for (i64 x : v) out.push_back(DepEntry::exact(x));
  return out;
}

std::string dep_to_string(const DepVector& v) {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < v.size(); ++i) {
    if (i) os << ", ";
    os << v[i].to_string();
  }
  os << "]";
  return os.str();
}

}  // namespace inlt
