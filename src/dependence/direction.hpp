// Dependence vector entries: exact distances and directions (§3).
//
// An entry is a (possibly unbounded) integer interval — the convex
// hull of the values the instance-vector difference can take at that
// position. Exact distances are singleton intervals; the paper's '+'
// is [1, ∞), '-' is (-∞, -1]. Linear combinations (needed to form
// M·d during legality testing) are interval arithmetic.
#pragma once

#include <string>
#include <vector>

#include "linalg/matrix.hpp"

namespace inlt {

/// The classical dependence kinds.
enum class DepKind { kFlow, kAnti, kOutput };

std::string dep_kind_name(DepKind k);

class DepEntry {
 public:
  /// Default: the unconstrained entry '*'.
  DepEntry() = default;

  static DepEntry exact(i64 v) { return DepEntry(v, v, false, false); }
  static DepEntry plus() { return DepEntry(1, 0, false, true); }     // [1, ∞)
  static DepEntry minus() { return DepEntry(0, -1, true, false); }   // (-∞, -1]
  static DepEntry star() { return DepEntry(0, 0, true, true); }      // (-∞, ∞)
  static DepEntry non_neg() { return DepEntry(0, 0, false, true); }  // [0, ∞)
  static DepEntry non_pos() { return DepEntry(0, 0, true, false); }  // (-∞, 0]
  static DepEntry at_least(i64 lo) { return DepEntry(lo, 0, false, true); }
  static DepEntry at_most(i64 hi) { return DepEntry(0, hi, true, false); }
  static DepEntry range(i64 lo, i64 hi);

  bool lo_unbounded() const { return lo_inf_; }
  bool hi_unbounded() const { return hi_inf_; }
  /// Finite lower bound; only meaningful when !lo_unbounded().
  i64 lo() const { return lo_; }
  i64 hi() const { return hi_; }

  bool is_exact() const { return !lo_inf_ && !hi_inf_ && lo_ == hi_; }
  bool is_zero() const { return is_exact() && lo_ == 0; }
  /// Entire interval >= 1?
  bool definitely_positive() const { return !lo_inf_ && lo_ >= 1; }
  /// Entire interval <= -1?
  bool definitely_negative() const { return !hi_inf_ && hi_ <= -1; }
  /// Entire interval >= 0?
  bool definitely_non_negative() const { return !lo_inf_ && lo_ >= 0; }

  DepEntry operator+(const DepEntry& o) const;
  DepEntry operator*(i64 s) const;

  friend bool operator==(const DepEntry&, const DepEntry&) = default;

  /// Arbitrary-but-strict ordering so DepEntry (and DepVector) can key
  /// ordered containers — the analyzer's dedup set. Well-defined
  /// because the representation is canonical: unbounded ends always
  /// store 0.
  friend bool operator<(const DepEntry& a, const DepEntry& b) {
    if (a.lo_inf_ != b.lo_inf_) return a.lo_inf_ < b.lo_inf_;
    if (a.hi_inf_ != b.hi_inf_) return a.hi_inf_ < b.hi_inf_;
    if (a.lo_ != b.lo_) return a.lo_ < b.lo_;
    return a.hi_ < b.hi_;
  }

  /// "3", "+", "-", "*", "0+", "0-", or "[a,b]".
  std::string to_string() const;

 private:
  DepEntry(i64 lo, i64 hi, bool lo_inf, bool hi_inf)
      : lo_(lo), hi_(hi), lo_inf_(lo_inf), hi_inf_(hi_inf) {}

  i64 lo_ = 0;
  i64 hi_ = 0;
  bool lo_inf_ = true;
  bool hi_inf_ = true;
};

using DepVector = std::vector<DepEntry>;

/// Lexicographic status of a (projected) dependence vector whose
/// entries are intervals.
enum class LexStatus {
  kZero,         ///< every entry is exactly 0
  kPositive,     ///< definitely lexicographically positive
  kNonNegative,  ///< definitely >= 0 lexicographically, may be zero
  kNegative,     ///< definitely lexicographically negative
  kUnknown,      ///< cannot be decided from the intervals
};

LexStatus lex_status(const DepVector& v);

/// lex_status, additionally reporting the index of the entry that
/// decided the verdict through `decided_at` (may be null): the
/// definitely-positive entry for kPositive, the entry that broke the
/// walk for kNegative/kUnknown, -1 when the status is a property of
/// the whole vector (kZero, kNonNegative).
LexStatus lex_status_at(const DepVector& v, int* decided_at);

/// "positive", "zero", "non-negative", "negative", "unknown".
const char* lex_status_name(LexStatus s);

/// M * d with interval entries.
DepVector transform_dep(const IntMat& m, const DepVector& d);

/// Project onto a subset of positions, in the given order.
DepVector project_dep(const DepVector& d, const std::vector<int>& positions);

/// Build from exact integers.
DepVector dep_from_ints(const IntVec& v);

std::string dep_to_string(const DepVector& v);

}  // namespace inlt
