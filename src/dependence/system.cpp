#include "dependence/system.hpp"

#include "linalg/project.hpp"
#include "support/check.hpp"

namespace inlt {

namespace {

std::string src_var(const std::string& v) { return "s$" + v; }
std::string dst_var(const std::string& v) { return "d$" + v; }

LinExpr to_lin(const ConstraintSystem& cs, const AffineExpr& e,
               const Program& prog, bool src_side) {
  LinExpr r = cs.zero_expr();
  r.constant = e.constant();
  for (const auto& [name, coef] : e.terms()) {
    std::string v =
        prog.is_param(name) ? name : (src_side ? src_var(name) : dst_var(name));
    r.coef[cs.var(v)] = checked_add(r.coef[cs.var(v)], coef);
  }
  return r;
}

LinExpr lin_sub(const ConstraintSystem& cs, const LinExpr& a,
                const LinExpr& b) {
  LinExpr r = cs.zero_expr();
  for (int i = 0; i < cs.num_vars(); ++i)
    r.coef[i] = checked_sub(a.coef[i], b.coef[i]);
  r.constant = checked_sub(a.constant, b.constant);
  return r;
}

void add_loop_bounds(ConstraintSystem& cs, const Program& prog,
                     const StatementContext& sc, bool src_side) {
  for (const Node* l : sc.loops) {
    if (l->step() != 1)
      throw InvalidProgramError(
          "dependence analysis requires unit loop steps");
    if (!l->guards().empty() || !sc.stmt->guards().empty())
      throw InvalidProgramError(
          "dependence analysis requires guard-free source programs");
    std::string v = src_side ? src_var(l->var()) : dst_var(l->var());
    int vi = cs.var(v);
    for (const BoundTerm& t : l->lower().terms) {
      if (t.den != 1)
        throw InvalidProgramError(
            "dependence analysis requires denominator-1 bounds");
      LinExpr lo = to_lin(cs, t.expr, prog, src_side);
      LinExpr e = cs.zero_expr();
      e.coef[vi] = 1;
      cs.add_ge(lin_sub(cs, e, lo));
    }
    for (const BoundTerm& t : l->upper().terms) {
      if (t.den != 1)
        throw InvalidProgramError(
            "dependence analysis requires denominator-1 bounds");
      LinExpr hi = to_lin(cs, t.expr, prog, src_side);
      LinExpr e = cs.zero_expr();
      e.coef[vi] = 1;
      cs.add_ge(lin_sub(cs, hi, e));
    }
  }
}

}  // namespace

LinExpr position_value_expr(const ConstraintSystem& cs,
                            const IvLayout& layout, const std::string& label,
                            int q, bool src_side, PadMode pad) {
  const IvLayout::StmtInfo& info = layout.stmt_info(label);
  const IvPosition& pos = layout.positions()[q];
  LinExpr r = cs.zero_expr();
  if (pos.kind == PositionKind::kEdge) {
    for (int e : info.path_edge_positions)
      if (e == q) {
        r.constant = 1;
        return r;
      }
    return r;  // 0
  }
  const auto& lps = info.loop_positions;
  for (size_t k = 0; k < lps.size(); ++k)
    if (lps[k] == q) {
      std::string v = layout.positions()[q].loop->var();
      r.coef[cs.var(src_side ? src_var(v) : dst_var(v))] = 1;
      return r;
    }
  if (pad == PadMode::kZero) return r;  // 0
  for (size_t k = 0; k < info.padded_positions.size(); ++k) {
    if (info.padded_positions[k] != q) continue;
    int srcidx = info.pad_source[k];
    if (srcidx < 0) {
      if (lps.empty()) return r;  // no loops: pad 0
      srcidx = 0;                 // fallback: outermost loop label
    }
    std::string v = layout.positions()[lps[srcidx]].loop->var();
    r.coef[cs.var(src_side ? src_var(v) : dst_var(v))] = 1;
    return r;
  }
  throw Error("position not classified for statement " + label);
}

std::vector<PairSystem> build_pair_systems(const IvLayout& layout) {
  const Program& prog = layout.program();
  std::vector<PairSystem> out;

  std::vector<StatementContext> stmts = prog.statements();
  for (const StatementContext& sa : stmts) {
    for (const StatementContext& sb : stmts) {
      size_t c = 0;
      while (c < sa.loops.size() && c < sb.loops.size() &&
             sa.loops[c] == sb.loops[c])
        ++c;
      int syn_a = layout.stmt_info(sa.label()).syntactic_index;
      int syn_b = layout.stmt_info(sb.label()).syntactic_index;

      std::vector<ArrayAccess> aaccs = sa.stmt->stmt_data().accesses();
      std::vector<ArrayAccess> baccs = sb.stmt->stmt_data().accesses();
      for (const ArrayAccess& a : aaccs) {
        for (const ArrayAccess& b : baccs) {
          if (a.array != b.array) continue;
          if (!a.is_write && !b.is_write) continue;
          if (a.subscripts.size() != b.subscripts.size())
            throw InvalidProgramError("array " + a.array +
                                      " used with inconsistent rank");

          std::vector<std::string> vars;
          for (const std::string& p : prog.params()) vars.push_back(p);
          for (const Node* l : sa.loops) vars.push_back(src_var(l->var()));
          for (const Node* l : sb.loops) vars.push_back(dst_var(l->var()));
          ConstraintSystem base(vars);
          add_loop_bounds(base, prog, sa, /*src_side=*/true);
          add_loop_bounds(base, prog, sb, /*src_side=*/false);
          for (size_t dim = 0; dim < a.subscripts.size(); ++dim) {
            LinExpr ea = to_lin(base, a.subscripts[dim], prog, true);
            LinExpr eb = to_lin(base, b.subscripts[dim], prog, false);
            base.add_eq(lin_sub(base, ea, eb));
          }

          for (size_t t = 0; t <= c; ++t) {
            if (t == c && syn_a >= syn_b) continue;
            ConstraintSystem cs = base;
            for (size_t k = 0; k < t; ++k) {
              const std::string& v = sa.loops[k]->var();
              cs.add_diff_eq(cs.var(dst_var(v)), cs.var(src_var(v)), 0);
            }
            if (t < c) {
              const std::string& v = sa.loops[t]->var();
              cs.add_diff_ge(cs.var(dst_var(v)), cs.var(src_var(v)), 1);
            }
            if (!integer_feasible(cs)) continue;

            PairSystem ps;
            ps.src = sa.label();
            ps.dst = sb.label();
            ps.kind = a.is_write ? (b.is_write ? DepKind::kOutput
                                               : DepKind::kFlow)
                                 : DepKind::kAnti;
            ps.array = a.array;
            ps.level = static_cast<int>(t);
            ps.base = std::move(cs);
            out.push_back(std::move(ps));
          }
        }
      }
    }
  }
  return out;
}


namespace {

bool feasible_with(const ConstraintSystem& base, LinExpr extra_ge) {
  ConstraintSystem cs = base;
  cs.add_ge(std::move(extra_ge));
  return integer_feasible(cs);
}

LinExpr shifted(const LinExpr& e, i64 k) {
  LinExpr r = e;
  r.constant = checked_sub(r.constant, k);
  return r;
}

LinExpr negated(const ConstraintSystem& cs, const LinExpr& e) {
  LinExpr r = cs.zero_expr();
  for (int i = 0; i < cs.num_vars(); ++i) r.coef[i] = checked_neg(e.coef[i]);
  r.constant = checked_neg(e.constant);
  return r;
}

}  // namespace

// Classify delta over the (feasible) system: the convex hull of its
// values, clipped to [-limit, limit] with unbounded ends detected.
DepEntry classify_delta(const ConstraintSystem& cs, const LinExpr& delta,
                        i64 limit) {
  if (delta.is_constant()) return DepEntry::exact(delta.constant);

  // feas_ge(k): can delta >= k?  (monotone decreasing in k)
  auto feas_ge = [&](i64 k) { return feasible_with(cs, shifted(delta, k)); };
  // feas_le(k): can delta <= k?  (monotone increasing in k)
  auto feas_le = [&](i64 k) {
    return feasible_with(cs, negated(cs, shifted(delta, k)));
  };

  bool hi_inf = feas_ge(limit + 1);
  bool lo_inf = feas_le(-limit - 1);

  i64 hi = 0, lo = 0;
  if (!hi_inf) {
    hi = -limit - 1;  // provisional: all values below the window
    for (i64 k = limit; k >= -limit; --k)
      if (feas_ge(k)) {
        hi = k;
        break;
      }
  }
  if (!lo_inf) {
    lo = limit + 1;
    for (i64 k = -limit; k <= limit; ++k)
      if (feas_le(k)) {
        lo = k;
        break;
      }
  }

  if (lo_inf && hi_inf) return DepEntry::star();
  if (lo_inf) return DepEntry::at_most(hi);
  if (hi_inf) return DepEntry::at_least(lo);
  if (lo > hi)
    throw Error("dependence classification found an empty interval");
  return DepEntry::range(lo, hi);
}

LinExpr lin_subtract(const ConstraintSystem& cs, const LinExpr& a,
                     const LinExpr& b) {
  return lin_sub(cs, a, b);
}

}  // namespace inlt

