// Program order on dynamic instances (Definitions 1 and 2).
#pragma once

#include "instance/layout.hpp"

namespace inlt {

/// ⪯ₛ of Definition 1: does statement `a` occur syntactically before
/// (or equal to) statement `b` in the depth-first AST walk?
bool syntactically_before(const IvLayout& layout, const std::string& a,
                          const std::string& b);

/// Definition 2's execution order: -1 if d1 executes before d2, 0 if
/// they are the same instance, +1 if after. Compares the common-loop
/// label vectors lexicographically, breaking ties by syntactic order.
int compare_execution_order(const IvLayout& layout, const DynamicInstance& d1,
                            const DynamicInstance& d2);

}  // namespace inlt
