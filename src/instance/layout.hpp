// Instance-vector coordinate system (§2).
//
// An IvLayout fixes, for one Program, the mapping between dynamic
// instances and integer instance vectors: which vector position holds
// which loop's label, which positions are statement-choice edge
// labels, and how padded positions are filled. It implements the
// functions L (Definition 3), M (the padding procedure), R (Eq. 1)
// and L⁻¹ (Definition 5), plus the single-edge optimization of §2.2.
//
// Faithfulness note: Eq. (1) collects both edge labels and child
// subtrees right-to-left. The paper's §6 Cholesky dependence matrix is
// consistent with that order ([K, e3, e2, e1, J, L, I]); its §4.2
// distribution/jamming display orders sibling subtrees left-to-right
// instead. We follow Eq. (1) everywhere and note the §4.2 discrepancy
// in DESIGN.md.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "ir/ast.hpp"
#include "linalg/vec.hpp"

namespace inlt {

enum class PositionKind {
  kLoop,  ///< label of a loop node
  kEdge,  ///< 0/1 label of an edge to one child of a multi-child node
};

/// How procedure M fills loop positions that are unlabeled for a given
/// statement (Definition 4's padded positions).
enum class PadMode {
  /// The paper's choice: an unlabeled loop takes the label of its
  /// nearest labeled ancestor (the 'diagonal embedding'). Loops with no
  /// labeled ancestor (sibling subtrees of a multi-root program) take
  /// the statement's outermost loop label, 0 if there is none — the
  /// convention the paper's §4.2 vectors use.
  kDiagonal,
  /// Ablation alternative mentioned in §2: pad with 0.
  kZero,
};

struct IvPosition {
  PositionKind kind = PositionKind::kLoop;
  const Node* loop = nullptr;    ///< kLoop: the loop node
  const Node* parent = nullptr;  ///< kEdge: the multi-child node (null = virtual root)
  int child_index = -1;          ///< kEdge: index of the child this edge reaches
  std::string name;              ///< "I", or "e2@I" for the edge to child 2 of loop I
};

/// A dynamic instance named symbolically: statement label + values of
/// its enclosing loops, outermost first.
struct DynamicInstance {
  std::string label;
  IntVec iter;

  friend bool operator==(const DynamicInstance&,
                         const DynamicInstance&) = default;
};

class IvLayout {
 public:
  /// Builds the layout; stores pointers into `p`, which must outlive
  /// the layout.
  explicit IvLayout(const Program& p);

  int size() const { return static_cast<int>(positions_.size()); }
  const std::vector<IvPosition>& positions() const { return positions_; }
  const Program& program() const { return *program_; }

  /// Position index of a loop by variable name; throws if absent.
  int loop_position(const std::string& var) const;

  /// Position indices of all loop positions, in vector order.
  std::vector<int> all_loop_positions() const;

  /// Per-statement facts.
  struct StmtInfo {
    const Node* stmt = nullptr;
    int syntactic_index = 0;  ///< rank in the ⪯ₛ depth-first order
    /// Positions of the statement's enclosing loops, outermost first.
    std::vector<int> loop_positions;
    /// Edge positions labeled 1 on the root-to-statement path.
    std::vector<int> path_edge_positions;
    /// Loop positions NOT enclosing the statement (Definition 4).
    std::vector<int> padded_positions;
    /// For each padded position: index into loop_positions of the pad
    /// source under diagonal padding, or -1 when the fallback applies
    /// (no labeled ancestor; pads with loop_positions[0], or 0 if the
    /// statement has no enclosing loop).
    std::vector<int> pad_source;
  };

  const StmtInfo& stmt_info(const std::string& label) const;
  const std::vector<std::string>& stmt_labels() const { return labels_; }

  /// The contiguous run of positions contributed by one AST node (the
  /// R(N) of Eq. 1) — the 'block' of Fig 5's block-structure argument.
  struct Segment {
    const Node* node = nullptr;  ///< loop node; nullptr = virtual root
    int start = 0;               ///< first position of the segment
    int end = 0;                 ///< one past the last position
    int loop_pos = -1;           ///< position of the node's own label
    /// Edge position per child index (-1 when the single-edge
    /// optimization removed it, i.e. the node has one child).
    std::vector<int> child_edge_pos;
  };

  /// Segment of a loop node, or of the virtual root (pass nullptr).
  const Segment& segment(const Node* node) const;

  /// L: instance vector of a dynamic instance (Definition 3).
  IntVec instance_vector(const DynamicInstance& di,
                         PadMode pad = PadMode::kDiagonal) const;

  /// L⁻¹: recover the dynamic instance from a vector produced by L
  /// (Definition 5). Only the statement identity (edge pattern) and the
  /// statement's own loop positions are consulted; padded entries are
  /// ignored, as §4.1 requires.
  DynamicInstance invert(const IntVec& iv) const;

  /// Positions of the loops common to two statements, outermost first
  /// (the projection target of the legality test, Definition 6).
  std::vector<int> common_loop_positions(const std::string& a,
                                         const std::string& b) const;

  std::string to_string() const;

 private:
  void build(const Node* parent, const std::vector<NodePtr>& children);

  const Program* program_;
  std::vector<IvPosition> positions_;
  std::vector<std::string> labels_;           // syntactic order
  std::map<std::string, StmtInfo> stmt_info_;
  std::map<const Node*, Segment> segments_;
};

}  // namespace inlt
