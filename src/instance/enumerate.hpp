// Enumeration of a program's dynamic instances in execution order.
//
// Drives property tests of Theorem 1 (L is one-to-one and order-
// preserving): enumerate instances by directly executing the loop
// structure, then check instance vectors are strictly increasing.
// Guards are honored, so transformed programs enumerate correctly too.
#pragma once

#include <functional>
#include <map>

#include "instance/layout.hpp"

namespace inlt {

/// Visit every dynamic instance in execution order. `params` binds the
/// program's symbolic parameters.
void enumerate_instances(
    const Program& p, const std::map<std::string, i64>& params,
    const std::function<void(const DynamicInstance&)>& visit);

/// Convenience: collect into a vector.
std::vector<DynamicInstance> all_instances(
    const Program& p, const std::map<std::string, i64>& params);

}  // namespace inlt
