#include "instance/layout.hpp"

#include <algorithm>
#include <sstream>

#include "support/check.hpp"

namespace inlt {

namespace {

/// Ancestor loop chains (outermost first) for every loop node.
void collect_ancestors(const std::vector<NodePtr>& children,
                       std::vector<const Node*>& chain,
                       std::map<const Node*, std::vector<const Node*>>& out) {
  for (const NodePtr& c : children) {
    if (!c->is_loop()) continue;
    out[c.get()] = chain;
    chain.push_back(c.get());
    collect_ancestors(c->children(), chain, out);
    chain.pop_back();
  }
}

}  // namespace

IvLayout::IvLayout(const Program& p) : program_(&p) {
  p.validate();
  build(nullptr, p.roots());

  // Ancestor chains for pad-source resolution.
  std::map<const Node*, std::vector<const Node*>> ancestors;
  std::vector<const Node*> chain;
  collect_ancestors(p.roots(), chain, ancestors);

  // Per-statement info, in syntactic (depth-first, left-to-right) order.
  int syn = 0;
  for (const StatementContext& sc : p.statements()) {
    StmtInfo info;
    info.stmt = sc.stmt;
    info.syntactic_index = syn++;

    for (const Node* l : sc.loops) {
      int pos = -1;
      for (size_t q = 0; q < positions_.size(); ++q)
        if (positions_[q].kind == PositionKind::kLoop &&
            positions_[q].loop == l)
          pos = static_cast<int>(q);
      INLT_CHECK(pos >= 0);
      info.loop_positions.push_back(pos);
    }

    // Edge positions on the root-to-statement path: reconstruct the
    // path as (parent, child-index) pairs.
    std::vector<std::pair<const Node*, int>> path;
    {
      // Depth-first search for the statement node.
      std::function<bool(const Node*, const std::vector<NodePtr>&)> dfs =
          [&](const Node* parent, const std::vector<NodePtr>& ch) -> bool {
        for (int i = 0; i < static_cast<int>(ch.size()); ++i) {
          if (ch[i].get() == sc.stmt) {
            path.emplace_back(parent, i);
            return true;
          }
          if (ch[i]->is_loop()) {
            path.emplace_back(parent, i);
            if (dfs(ch[i].get(), ch[i]->children())) return true;
            path.pop_back();
          }
        }
        return false;
      };
      bool found = dfs(nullptr, p.roots());
      INLT_CHECK(found);
    }
    for (const auto& [parent, idx] : path) {
      for (size_t q = 0; q < positions_.size(); ++q)
        if (positions_[q].kind == PositionKind::kEdge &&
            positions_[q].parent == parent && positions_[q].child_index == idx)
          info.path_edge_positions.push_back(static_cast<int>(q));
    }

    // Padded loop positions and their diagonal pad sources.
    std::vector<const Node*> own(sc.loops.begin(), sc.loops.end());
    for (size_t q = 0; q < positions_.size(); ++q) {
      if (positions_[q].kind != PositionKind::kLoop) continue;
      const Node* l = positions_[q].loop;
      if (std::find(own.begin(), own.end(), l) != own.end()) continue;
      info.padded_positions.push_back(static_cast<int>(q));
      // Nearest labeled ancestor: deepest ancestor of l that encloses
      // the statement.
      const std::vector<const Node*>& anc = ancestors.at(l);
      int src = -1;
      for (int a = static_cast<int>(anc.size()) - 1; a >= 0 && src < 0; --a)
        for (size_t k = 0; k < own.size(); ++k)
          if (own[k] == anc[a]) {
            src = static_cast<int>(k);
            break;
          }
      info.pad_source.push_back(src);
    }

    labels_.push_back(sc.label());
    stmt_info_.emplace(sc.label(), std::move(info));
  }
}

void IvLayout::build(const Node* parent, const std::vector<NodePtr>& children) {
  Segment seg;
  seg.node = parent;
  // A loop's own label was pushed by the caller just before build().
  seg.loop_pos =
      parent == nullptr ? -1 : static_cast<int>(positions_.size()) - 1;
  seg.start = parent == nullptr ? 0 : seg.loop_pos;

  int m = static_cast<int>(children.size());
  seg.child_edge_pos.assign(m, -1);
  // Single-edge optimization (§2.2): only multi-child nodes contribute
  // edge positions. Eq. (1) collects edge labels e_m .. e_1.
  if (m > 1) {
    for (int c = m - 1; c >= 0; --c) {
      IvPosition pos;
      pos.kind = PositionKind::kEdge;
      pos.parent = parent;
      pos.child_index = c;
      std::ostringstream name;
      name << "e" << (c + 1) << "@" << (parent ? parent->var() : "root");
      pos.name = name.str();
      seg.child_edge_pos[c] = static_cast<int>(positions_.size());
      positions_.push_back(std::move(pos));
    }
  }
  // Subtrees R(n_m) .. R(n_1), right to left per Eq. (1).
  for (int c = m - 1; c >= 0; --c) {
    const Node* n = children[c].get();
    if (!n->is_loop()) continue;
    IvPosition pos;
    pos.kind = PositionKind::kLoop;
    pos.loop = n;
    pos.name = n->var();
    positions_.push_back(std::move(pos));
    build(n, n->children());
  }
  seg.end = static_cast<int>(positions_.size());
  segments_[parent] = std::move(seg);
}

int IvLayout::loop_position(const std::string& var) const {
  for (size_t q = 0; q < positions_.size(); ++q)
    if (positions_[q].kind == PositionKind::kLoop &&
        positions_[q].loop->var() == var)
      return static_cast<int>(q);
  throw Error("no loop named " + var + " in layout");
}

std::vector<int> IvLayout::all_loop_positions() const {
  std::vector<int> out;
  for (size_t q = 0; q < positions_.size(); ++q)
    if (positions_[q].kind == PositionKind::kLoop)
      out.push_back(static_cast<int>(q));
  return out;
}

const IvLayout::Segment& IvLayout::segment(const Node* node) const {
  auto it = segments_.find(node);
  INLT_CHECK_MSG(it != segments_.end(), "node has no layout segment");
  return it->second;
}

const IvLayout::StmtInfo& IvLayout::stmt_info(const std::string& label) const {
  auto it = stmt_info_.find(label);
  INLT_CHECK_MSG(it != stmt_info_.end(), "unknown statement " + label);
  return it->second;
}

IntVec IvLayout::instance_vector(const DynamicInstance& di,
                                 PadMode pad) const {
  const StmtInfo& info = stmt_info(di.label);
  INLT_CHECK_MSG(di.iter.size() == info.loop_positions.size(),
                 "iteration vector arity mismatch for " + di.label);
  IntVec v(positions_.size(), 0);
  for (size_t k = 0; k < info.loop_positions.size(); ++k)
    v[info.loop_positions[k]] = di.iter[k];
  for (int e : info.path_edge_positions) v[e] = 1;
  if (pad == PadMode::kDiagonal) {
    for (size_t k = 0; k < info.padded_positions.size(); ++k) {
      int src = info.pad_source[k];
      i64 val = 0;
      if (src >= 0)
        val = di.iter[src];
      else if (!di.iter.empty())
        val = di.iter[0];
      v[info.padded_positions[k]] = val;
    }
  }
  return v;
}

DynamicInstance IvLayout::invert(const IntVec& iv) const {
  INLT_CHECK_MSG(static_cast<int>(iv.size()) == size(),
                 "instance vector has wrong length");
  DynamicInstance di;
  const Node* parent = nullptr;
  const std::vector<NodePtr>* children = &program_->roots();
  for (;;) {
    int m = static_cast<int>(children->size());
    int chosen = 0;
    if (m > 1) {
      chosen = -1;
      for (size_t q = 0; q < positions_.size(); ++q) {
        const IvPosition& p = positions_[q];
        if (p.kind != PositionKind::kEdge || p.parent != parent) continue;
        if (iv[q] == 1) {
          INLT_CHECK_MSG(chosen < 0,
                         "instance vector selects multiple children");
          chosen = p.child_index;
        } else {
          INLT_CHECK_MSG(iv[q] == 0, "edge label must be 0 or 1");
        }
      }
      INLT_CHECK_MSG(chosen >= 0, "instance vector selects no child");
    }
    const Node* next = (*children)[chosen].get();
    if (next->is_stmt()) {
      di.label = next->stmt_data().label;
      return di;
    }
    di.iter.push_back(iv[loop_position(next->var())]);
    parent = next;
    children = &next->children();
  }
}

std::vector<int> IvLayout::common_loop_positions(const std::string& a,
                                                 const std::string& b) const {
  const StmtInfo& ia = stmt_info(a);
  const StmtInfo& ib = stmt_info(b);
  // Common loops are the shared prefix of the two loop chains.
  std::vector<int> out;
  size_t n = std::min(ia.loop_positions.size(), ib.loop_positions.size());
  for (size_t k = 0; k < n; ++k) {
    if (ia.loop_positions[k] != ib.loop_positions[k]) break;
    out.push_back(ia.loop_positions[k]);
  }
  return out;
}

std::string IvLayout::to_string() const {
  std::ostringstream os;
  os << "[";
  for (size_t q = 0; q < positions_.size(); ++q) {
    if (q) os << ", ";
    os << positions_[q].name;
  }
  os << "]";
  return os.str();
}

}  // namespace inlt
