#include "instance/program_order.hpp"

namespace inlt {

bool syntactically_before(const IvLayout& layout, const std::string& a,
                          const std::string& b) {
  return layout.stmt_info(a).syntactic_index <=
         layout.stmt_info(b).syntactic_index;
}

int compare_execution_order(const IvLayout& layout, const DynamicInstance& d1,
                            const DynamicInstance& d2) {
  const auto& i1 = layout.stmt_info(d1.label);
  const auto& i2 = layout.stmt_info(d2.label);
  size_t common = 0;
  while (common < i1.loop_positions.size() &&
         common < i2.loop_positions.size() &&
         i1.loop_positions[common] == i2.loop_positions[common])
    ++common;
  for (size_t k = 0; k < common; ++k) {
    if (d1.iter[k] < d2.iter[k]) return -1;
    if (d1.iter[k] > d2.iter[k]) return 1;
  }
  if (i1.syntactic_index != i2.syntactic_index)
    return i1.syntactic_index < i2.syntactic_index ? -1 : 1;
  // Same statement: remaining loop labels decide; equal labels mean
  // the identical dynamic instance.
  for (size_t k = common; k < d1.iter.size(); ++k) {
    if (d1.iter[k] < d2.iter[k]) return -1;
    if (d1.iter[k] > d2.iter[k]) return 1;
  }
  return 0;
}

}  // namespace inlt
