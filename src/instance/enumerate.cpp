#include "instance/enumerate.hpp"

namespace inlt {

namespace {

void run_node(const Node& n, std::map<std::string, i64>& env,
              IntVec& iter_stack,
              const std::function<void(const DynamicInstance&)>& visit) {
  for (const Guard& g : n.guards())
    if (!g.holds(env)) return;
  if (n.is_stmt()) {
    visit({n.stmt_data().label, iter_stack});
    return;
  }
  i64 lo = n.lower().eval_lower(env);
  i64 hi = n.upper().eval_upper(env);
  for (i64 v = lo; v <= hi; v += n.step()) {
    env[n.var()] = v;
    iter_stack.push_back(v);
    for (const NodePtr& c : n.children()) run_node(*c, env, iter_stack, visit);
    iter_stack.pop_back();
    env.erase(n.var());
  }
}

}  // namespace

void enumerate_instances(
    const Program& p, const std::map<std::string, i64>& params,
    const std::function<void(const DynamicInstance&)>& visit) {
  std::map<std::string, i64> env = params;
  IntVec iter_stack;
  for (const NodePtr& r : p.roots()) run_node(*r, env, iter_stack, visit);
}

std::vector<DynamicInstance> all_instances(
    const Program& p, const std::map<std::string, i64>& params) {
  std::vector<DynamicInstance> out;
  enumerate_instances(p, params,
                      [&](const DynamicInstance& di) { out.push_back(di); });
  return out;
}

}  // namespace inlt
