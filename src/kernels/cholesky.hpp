// The six loop orderings of dense Cholesky factorization (C2/C3).
//
// §1 motivates the framework with exactly this family: "All six
// permutations of these three loops compute the same result, but their
// performance, even on sequential machines, can be quite different."
// Each function factors the lower triangle of a row-major SPD matrix
// in place (A -> L with A = L L^T); the strict upper triangle is left
// untouched. Names follow the classical (outer, middle, inner) index
// convention with k the reduction index, j the column and i the row.
#pragma once

#include "kernels/util.hpp"

namespace inlt::kernels {

/// kij: right-looking, row-order trailing update (the paper's §6
/// source code shape: S3 runs j (rows) outer, l (columns) inner).
void cholesky_kij(Matrix& a, std::size_t n);

/// kji: right-looking, column-order trailing update.
void cholesky_kji(Matrix& a, std::size_t n);

/// jki: left-looking by columns (the §6 completion target, Fig 8).
void cholesky_jki(Matrix& a, std::size_t n);

/// jik: left-looking with inner-product innermost loop.
void cholesky_jik(Matrix& a, std::size_t n);

/// ijk: bordered / row-oriented with inner products.
void cholesky_ijk(Matrix& a, std::size_t n);

/// ikj: bordered / row-oriented with row-sweep updates.
void cholesky_ikj(Matrix& a, std::size_t n);

using CholeskyFn = void (*)(Matrix&, std::size_t);

struct CholeskyVariant {
  const char* name;
  CholeskyFn fn;
};

/// All six variants, in {kij, kji, jki, jik, ijk, ikj} order.
const std::vector<CholeskyVariant>& cholesky_variants();

}  // namespace inlt::kernels
