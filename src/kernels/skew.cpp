#include "kernels/skew.hpp"

#include <cstdint>

namespace inlt::kernels {

double skew_f(std::size_t i, std::size_t j) {
  std::uint64_t h = i * 0x9e3779b97f4a7c15ULL + j + 0x12345;
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
}

void skew_source(std::vector<double>& a, std::vector<double>& b,
                 std::size_t n) {
  std::size_t stride = n + 2;
  for (std::size_t i = 1; i <= n; ++i) {
    b[i] = b[i - 1] + a[(i - 1) * stride + (i + 1)];
    for (std::size_t j = i; j <= n; ++j) a[i * stride + j] = skew_f(i, j);
  }
}

void skew_transformed(std::vector<double>& a, std::vector<double>& b,
                      std::size_t n) {
  std::size_t stride = n + 2;
  // do I = 1-N..-1 { do J = 1-I..N: A(I+J, J) = f(I+J, J) }
  for (std::ptrdiff_t i = 1 - static_cast<std::ptrdiff_t>(n); i <= -1; ++i) {
    for (std::ptrdiff_t j = 1 - i; j <= static_cast<std::ptrdiff_t>(n); ++j)
      a[static_cast<std::size_t>(i + j) * stride + static_cast<std::size_t>(j)] =
          skew_f(static_cast<std::size_t>(i + j), static_cast<std::size_t>(j));
  }
  // do J = 1..N: A(J, J) = f(J, J)
  for (std::size_t j = 1; j <= n; ++j) a[j * stride + j] = skew_f(j, j);
  // do I2 = 1..N: B(I2) = B(I2-1) + A(I2-1, I2+1)
  for (std::size_t i = 1; i <= n; ++i)
    b[i] = b[i - 1] + a[(i - 1) * stride + (i + 1)];
}

}  // namespace inlt::kernels
