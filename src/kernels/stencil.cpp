#include "kernels/stencil.hpp"

#include <algorithm>

namespace inlt::kernels {

void gauss_seidel(std::vector<double>& u, std::size_t n) {
  std::size_t s = n + 1;
  for (std::size_t i = 1; i <= n; ++i)
    for (std::size_t j = 1; j <= n; ++j)
      u[i * s + j] = u[(i - 1) * s + j] + u[i * s + j - 1];
}

void gauss_seidel_wavefront(std::vector<double>& u, std::size_t n) {
  std::size_t s = n + 1;
  for (std::size_t t = 2; t <= 2 * n; ++t) {
    std::size_t ilo = t > n ? t - n : 1;
    std::size_t ihi = std::min(t - 1, n);
    for (std::size_t i = ilo; i <= ihi; ++i) {
      std::size_t j = t - i;
      u[i * s + j] = u[(i - 1) * s + j] + u[i * s + j - 1];
    }
  }
}

}  // namespace inlt::kernels
