// LU factorization (no pivoting) loop orderings.
//
// §1 names "matrix factorization codes" generally as the motivating
// imperfect nests; LU is the second classical member. Each function
// overwrites A with L (unit lower, stored without the diagonal) and U
// (upper including diagonal). Inputs must be factorizable without
// pivoting (make_dd produces such matrices).
#pragma once

#include "kernels/util.hpp"

namespace inlt::kernels {

/// kij: right-looking, row-order update.
void lu_kij(Matrix& a, std::size_t n);

/// kji: right-looking, column-order update.
void lu_kji(Matrix& a, std::size_t n);

/// jki: left-looking by columns.
void lu_jki(Matrix& a, std::size_t n);

/// ikj: by rows (Doolittle row sweep).
void lu_ikj(Matrix& a, std::size_t n);

using LuFn = void (*)(Matrix&, std::size_t);

struct LuVariant {
  const char* name;
  LuFn fn;
};

const std::vector<LuVariant>& lu_variants();

}  // namespace inlt::kernels
