#include "kernels/cholesky.hpp"

#include <cmath>

namespace inlt::kernels {

void cholesky_kij(Matrix& a, std::size_t n) {
  for (std::size_t k = 0; k < n; ++k) {
    a[k * n + k] = std::sqrt(a[k * n + k]);
    double piv = a[k * n + k];
    for (std::size_t i = k + 1; i < n; ++i) a[i * n + k] /= piv;
    for (std::size_t i = k + 1; i < n; ++i) {
      double aik = a[i * n + k];
      for (std::size_t j = k + 1; j <= i; ++j)
        a[i * n + j] -= aik * a[j * n + k];
    }
  }
}

void cholesky_kji(Matrix& a, std::size_t n) {
  for (std::size_t k = 0; k < n; ++k) {
    a[k * n + k] = std::sqrt(a[k * n + k]);
    double piv = a[k * n + k];
    for (std::size_t i = k + 1; i < n; ++i) a[i * n + k] /= piv;
    for (std::size_t j = k + 1; j < n; ++j) {
      double ajk = a[j * n + k];
      for (std::size_t i = j; i < n; ++i)
        a[i * n + j] -= a[i * n + k] * ajk;
    }
  }
}

void cholesky_jki(Matrix& a, std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t k = 0; k < j; ++k) {
      double ajk = a[j * n + k];
      for (std::size_t i = j; i < n; ++i)
        a[i * n + j] -= a[i * n + k] * ajk;
    }
    a[j * n + j] = std::sqrt(a[j * n + j]);
    double piv = a[j * n + j];
    for (std::size_t i = j + 1; i < n; ++i) a[i * n + j] /= piv;
  }
}

void cholesky_jik(Matrix& a, std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = j; i < n; ++i) {
      double acc = a[i * n + j];
      for (std::size_t k = 0; k < j; ++k)
        acc -= a[i * n + k] * a[j * n + k];
      a[i * n + j] = acc;
    }
    a[j * n + j] = std::sqrt(a[j * n + j]);
    double piv = a[j * n + j];
    for (std::size_t i = j + 1; i < n; ++i) a[i * n + j] /= piv;
  }
}

void cholesky_ijk(Matrix& a, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double acc = a[i * n + j];
      for (std::size_t k = 0; k < j; ++k)
        acc -= a[i * n + k] * a[j * n + k];
      if (j == i)
        a[i * n + i] = std::sqrt(acc);
      else
        a[i * n + j] = acc / a[j * n + j];
    }
  }
}

void cholesky_ikj(Matrix& a, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < i; ++k) {
      a[i * n + k] /= a[k * n + k];
      double aik = a[i * n + k];
      for (std::size_t j = k + 1; j <= i; ++j)
        a[i * n + j] -= aik * a[j * n + k];
    }
    a[i * n + i] = std::sqrt(a[i * n + i]);
  }
}

const std::vector<CholeskyVariant>& cholesky_variants() {
  static const std::vector<CholeskyVariant> v = {
      {"kij", cholesky_kij}, {"kji", cholesky_kji}, {"jki", cholesky_jki},
      {"jik", cholesky_jik}, {"ijk", cholesky_ijk}, {"ikj", cholesky_ikj},
  };
  return v;
}

}  // namespace inlt::kernels
