#include "kernels/lu.hpp"

namespace inlt::kernels {

void lu_kij(Matrix& a, std::size_t n) {
  for (std::size_t k = 0; k + 1 < n; ++k) {
    double piv = a[k * n + k];
    for (std::size_t i = k + 1; i < n; ++i) {
      a[i * n + k] /= piv;
      double lik = a[i * n + k];
      for (std::size_t j = k + 1; j < n; ++j)
        a[i * n + j] -= lik * a[k * n + j];
    }
  }
}

void lu_kji(Matrix& a, std::size_t n) {
  for (std::size_t k = 0; k + 1 < n; ++k) {
    double piv = a[k * n + k];
    for (std::size_t i = k + 1; i < n; ++i) a[i * n + k] /= piv;
    for (std::size_t j = k + 1; j < n; ++j) {
      double akj = a[k * n + j];
      for (std::size_t i = k + 1; i < n; ++i)
        a[i * n + j] -= a[i * n + k] * akj;
    }
  }
}

void lu_jki(Matrix& a, std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t k = 0; k < j; ++k) {
      double akj = a[k * n + j];
      for (std::size_t i = k + 1; i < n; ++i)
        a[i * n + j] -= a[i * n + k] * akj;
    }
    double piv = a[j * n + j];
    for (std::size_t i = j + 1; i < n; ++i) a[i * n + j] /= piv;
  }
}

void lu_ikj(Matrix& a, std::size_t n) {
  for (std::size_t i = 1; i < n; ++i) {
    for (std::size_t k = 0; k < i; ++k) {
      a[i * n + k] /= a[k * n + k];
      double lik = a[i * n + k];
      for (std::size_t j = k + 1; j < n; ++j)
        a[i * n + j] -= lik * a[k * n + j];
    }
  }
}

const std::vector<LuVariant>& lu_variants() {
  static const std::vector<LuVariant> v = {
      {"kij", lu_kij},
      {"kji", lu_kji},
      {"jki", lu_jki},
      {"ikj", lu_ikj},
  };
  return v;
}

}  // namespace inlt::kernels
