// Native versions of the §5.4/§5.5 example, for C4.
//
// The source imperfect nest interleaves a recurrence over B with a
// triangular fill of A; the transformed code (skew + simplification,
// §5.5's second listing) separates them into three perfect loops. The
// transformation was motivated structurally; the benchmark measures
// what it buys on a real machine.
#pragma once

#include <cstddef>
#include <vector>

namespace inlt::kernels {

/// Original §5.4 code:
///   do I = 1..N { B(I) = B(I-1) + A(I-1, I+1); do J = I..N: A(I,J) = f() }
/// `a` is (n+2) x (n+2) row-major with 1-based logical indexing; `b`
/// has n+1 entries (index 0 is the boundary).
void skew_source(std::vector<double>& a, std::vector<double>& b,
                 std::size_t n);

/// §5.5's simplified transformed code (two triangular fills + the
/// recurrence as a separate loop).
void skew_transformed(std::vector<double>& a, std::vector<double>& b,
                      std::size_t n);

/// The pure generator the statements call (deterministic in (i, j)).
double skew_f(std::size_t i, std::size_t j);

}  // namespace inlt::kernels
