// Shared helpers for the native benchmark kernels: SPD matrix
// generation and factorization residuals.
//
// Kernels operate on dense row-major n x n matrices in flat
// std::vector<double> storage; only the lower triangle is meaningful
// for the Cholesky variants.
#pragma once

#include <cstddef>
#include <vector>

namespace inlt::kernels {

using Matrix = std::vector<double>;  // row-major n*n

/// Symmetric positive definite matrix (diagonally dominant).
Matrix make_spd(std::size_t n, unsigned seed);

/// General nonsingular-ish matrix for LU (diagonally dominant, so no
/// pivoting is needed).
Matrix make_dd(std::size_t n, unsigned seed);

/// max |(L L^T)[i][j] - A[i][j]| over the lower triangle, where L is
/// the lower triangle of `factored` and A the original SPD matrix.
double cholesky_residual(const Matrix& factored, const Matrix& original,
                         std::size_t n);

/// max |(L U)[i][j] - A[i][j]| where L (unit diagonal) and U are packed
/// in `factored`.
double lu_residual(const Matrix& factored, const Matrix& original,
                   std::size_t n);

/// max |a[i] - b[i]|.
double max_abs_diff(const Matrix& a, const Matrix& b);

}  // namespace inlt::kernels
