// Gauss-Seidel sweep kernels: original row-major order vs the skewed
// wavefront traversal the framework generates (see
// examples/wavefront_parallel.cpp). Sequential timings quantify what
// the wavefront order costs in locality — the price paid for making
// the inner loop a doall.
#pragma once

#include <cstddef>
#include <vector>

namespace inlt::kernels {

/// u is (n+1) x (n+1) row-major with a boundary row/column 0.
/// Original: for i: for j: u(i,j) = u(i-1,j) + u(i,j-1).
void gauss_seidel(std::vector<double>& u, std::size_t n);

/// Wavefront order: for t = 2..2n: for i on the anti-diagonal.
void gauss_seidel_wavefront(std::vector<double>& u, std::size_t n);

}  // namespace inlt::kernels
