#include "kernels/util.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace inlt::kernels {

namespace {
double unit_hash(std::uint64_t h) {
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
}
}  // namespace

Matrix make_spd(std::size_t n, unsigned seed) {
  Matrix a(n * n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j <= i; ++j) {
      double v = 0.5 * unit_hash((static_cast<std::uint64_t>(seed) << 40) ^
                                 (i * 1000003 + j));
      if (i == j) v += static_cast<double>(n) + 1.0;
      a[i * n + j] = v;
      a[j * n + i] = v;
    }
  return a;
}

Matrix make_dd(std::size_t n, unsigned seed) {
  Matrix a(n * n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      double v = unit_hash((static_cast<std::uint64_t>(seed) << 40) ^
                           (i * 1000003 + j)) -
                 0.5;
      if (i == j) v += static_cast<double>(n) + 1.0;
      a[i * n + j] = v;
    }
  return a;
}

double cholesky_residual(const Matrix& factored, const Matrix& original,
                         std::size_t n) {
  double worst = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j <= i; ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k <= j; ++k)
        acc += factored[i * n + k] * factored[j * n + k];
      worst = std::max(worst, std::fabs(acc - original[i * n + j]));
    }
  return worst;
}

double lu_residual(const Matrix& factored, const Matrix& original,
                   std::size_t n) {
  double worst = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      std::size_t kmax = std::min(i, j);
      for (std::size_t k = 0; k < kmax; ++k)
        acc += factored[i * n + k] * factored[k * n + j];
      // L has unit diagonal: L[i][i] = 1.
      if (i <= j)
        acc += factored[i * n + j];  // k == i term: 1 * U[i][j]
      else
        acc += factored[i * n + j] * factored[j * n + j];  // k == j term
      worst = std::max(worst, std::fabs(acc - original[i * n + j]));
    }
  return worst;
}

double max_abs_diff(const Matrix& a, const Matrix& b) {
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size() && i < b.size(); ++i)
    worst = std::max(worst, std::fabs(a[i] - b[i]));
  return worst;
}

}  // namespace inlt::kernels
