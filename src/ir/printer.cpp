#include "ir/printer.hpp"

#include <sstream>

namespace inlt {

namespace {

void indent_to(std::ostringstream& os, int n) {
  for (int i = 0; i < n; ++i) os << "  ";
}

void print_rec(std::ostringstream& os, const Node& n, int indent) {
  int body_indent = indent;
  for (const Guard& g : n.guards()) {
    indent_to(os, body_indent);
    os << "if (" << g.to_string() << ")\n";
    ++body_indent;
  }
  if (n.is_stmt()) {
    const Statement& s = n.stmt_data();
    indent_to(os, body_indent);
    os << s.label << ": " << s.lhs_array << "(";
    for (size_t i = 0; i < s.lhs_subscripts.size(); ++i) {
      if (i) os << ", ";
      os << s.lhs_subscripts[i].to_string();
    }
    os << ") = " << (s.rhs ? s.rhs->to_string() : "0") << "\n";
  } else {
    indent_to(os, body_indent);
    os << "do " << n.var() << " = " << n.lower().to_string(/*lower=*/true)
       << ", " << n.upper().to_string(/*lower=*/false);
    if (n.step() != 1) os << ", " << n.step();
    os << "\n";
    for (const NodePtr& c : n.children()) print_rec(os, *c, body_indent + 1);
    indent_to(os, body_indent);
    os << "end\n";
  }
  for (int i = static_cast<int>(n.guards().size()); i > 0; --i) {
    indent_to(os, indent + i - 1);
    os << "endif\n";
  }
}

}  // namespace

std::string print_node(const Node& n, int indent) {
  std::ostringstream os;
  print_rec(os, n, indent);
  return os.str();
}

std::string print_program(const Program& p) {
  std::ostringstream os;
  for (const std::string& param : p.params()) os << "param " << param << "\n";
  for (const NodePtr& r : p.roots()) os << print_node(*r, 0);
  return os.str();
}

}  // namespace inlt
