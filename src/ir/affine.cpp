#include "ir/affine.hpp"

#include <algorithm>
#include <sstream>

#include "support/check.hpp"

namespace inlt {

AffineExpr AffineExpr::variable(const std::string& name) {
  AffineExpr e;
  e.terms_[name] = 1;
  return e;
}

i64 AffineExpr::coef(const std::string& name) const {
  auto it = terms_.find(name);
  return it == terms_.end() ? 0 : it->second;
}

AffineExpr& AffineExpr::add_term(const std::string& name, i64 coef) {
  if (coef == 0) return *this;
  i64 c = checked_add(this->coef(name), coef);
  if (c == 0)
    terms_.erase(name);
  else
    terms_[name] = c;
  return *this;
}

AffineExpr& AffineExpr::add_constant(i64 k) {
  constant_ = checked_add(constant_, k);
  return *this;
}

AffineExpr AffineExpr::operator+(const AffineExpr& o) const {
  AffineExpr r = *this;
  for (const auto& [n, c] : o.terms_) r.add_term(n, c);
  r.add_constant(o.constant_);
  return r;
}

AffineExpr AffineExpr::operator-(const AffineExpr& o) const {
  return *this + (o * -1);
}

AffineExpr AffineExpr::operator*(i64 s) const {
  AffineExpr r;
  if (s == 0) return r;
  for (const auto& [n, c] : terms_) r.terms_[n] = checked_mul(c, s);
  r.constant_ = checked_mul(constant_, s);
  return r;
}

i64 AffineExpr::eval(const std::map<std::string, i64>& env) const {
  i64 acc = constant_;
  for (const auto& [n, c] : terms_) {
    auto it = env.find(n);
    INLT_CHECK_MSG(it != env.end(), "unbound variable in eval: " + n);
    acc = checked_add(acc, checked_mul(c, it->second));
  }
  return acc;
}

AffineExpr AffineExpr::substitute(const std::string& name,
                                  const AffineExpr& repl) const {
  auto it = terms_.find(name);
  if (it == terms_.end()) return *this;
  i64 c = it->second;
  AffineExpr r = *this;
  r.terms_.erase(name);
  return r + repl * c;
}

AffineExpr AffineExpr::renamed(const std::string& from,
                               const std::string& to) const {
  return substitute(from, AffineExpr::variable(to));
}

std::string AffineExpr::to_string() const {
  std::ostringstream os;
  bool any = false;
  for (const auto& [n, c] : terms_) {
    if (any)
      os << (c > 0 ? " + " : " - ");
    else if (c < 0)
      os << "-";
    i64 mag = c < 0 ? -c : c;
    if (mag != 1) os << mag << "*";
    os << n;
    any = true;
  }
  if (constant_ != 0 || !any) {
    if (any) {
      os << (constant_ > 0 ? " + " : " - ");
      os << (constant_ < 0 ? -constant_ : constant_);
    } else {
      os << constant_;
    }
  }
  return os.str();
}

i64 Bound::eval_lower(const std::map<std::string, i64>& env) const {
  INLT_CHECK_MSG(!terms.empty(), "lower bound with no terms");
  bool take_max = (mode == Mode::kTight);
  i64 best = 0;
  bool first = true;
  for (const BoundTerm& t : terms) {
    i64 v = ceil_div(t.expr.eval(env), t.den);
    best = first ? v : (take_max ? std::max(best, v) : std::min(best, v));
    first = false;
  }
  return best;
}

i64 Bound::eval_upper(const std::map<std::string, i64>& env) const {
  INLT_CHECK_MSG(!terms.empty(), "upper bound with no terms");
  bool take_min = (mode == Mode::kTight);
  i64 best = 0;
  bool first = true;
  for (const BoundTerm& t : terms) {
    i64 v = floor_div(t.expr.eval(env), t.den);
    best = first ? v : (take_min ? std::min(best, v) : std::max(best, v));
    first = false;
  }
  return best;
}

std::string Bound::to_string(bool lower) const {
  auto render_term = [&](const BoundTerm& t) {
    if (t.den == 1) return t.expr.to_string();
    std::ostringstream os;
    os << (lower ? "ceil(" : "floor(") << t.expr.to_string() << ", " << t.den
       << ")";
    return os.str();
  };
  if (terms.size() == 1) return render_term(terms[0]);
  bool render_max = lower == (mode == Mode::kTight);
  std::ostringstream os;
  os << (render_max ? "max(" : "min(");
  for (size_t i = 0; i < terms.size(); ++i) {
    if (i) os << ", ";
    os << render_term(terms[i]);
  }
  os << ")";
  return os.str();
}

}  // namespace inlt
