// The paper's running examples, as ready-made Programs.
//
// Tests, examples and benchmarks all operate on these; each function
// documents which section of the paper the code comes from.
#pragma once

#include "ir/ast.hpp"

namespace inlt::gallery {

/// §2.1 running example (Fig 1): two statements in an inner loop plus
/// a trailing statement in the outer loop. The paper's bounds are the
/// symbolic f(I)..g(I); dependence analysis is never run on this
/// program, so we use J = 1..N (the instance-vector math only needs
/// the AST shape).
///
///   do I = 1..N { do J = 1..N { S1; S2 }  S3 }
Program fig1_running_example();

/// §3 simplified Cholesky (also §4's running example):
///
///   do I = 1..N
///     S1: A(I) = sqrt(A(I))
///     do J = I+1..N
///       S2: A(J) = A(J) / A(I)
Program simplified_cholesky();

/// Fig 3's perfectly nested loop:
///
///   do I = 1..N
///     do J = I+1..N
///       S1: A(J) = A(J) / A(I)
Program fig3_perfect_nest();

/// §5.4 augmentation example:
///
///   do I = 1..N
///     S1: B(I) = B(I-1) + A(I-1, I+1)
///     do J = I..N
///       S2: A(I,J) = f()
Program augmentation_example();

/// §6 full Cholesky factorization (right-looking, kij form):
///
///   do K = 1..N
///     S1: A(K,K) = sqrt(A(K,K))
///     do I = K+1..N
///       S2: A(I,K) = A(I,K) / A(K,K)
///     do J = K+1..N
///       do L = K+1..J
///         S3: A(J,L) = A(J,L) - A(J,K)*A(L,K)
Program cholesky();

/// §4.2 simplified Cholesky after loop distribution: two top-level
/// loops.
Program simplified_cholesky_distributed();

/// LU factorization without pivoting (right-looking, kij form) — the
/// other classical "matrix factorization code" of §1:
///
///   do K = 1..N
///     do I = K+1..N
///       S1: A(I,K) = A(I,K) / A(K,K)
///     do J = K+1..N
///       do L = K+1..N
///         S2: A(J,L) = A(J,L) - A(J,K)*A(K,L)
Program lu();

}  // namespace inlt::gallery
