// Parser for the inlt mini-language.
//
// The paper's implementation target was the Polaris Fortran test-bed;
// our stand-in front end is a small loop language covering exactly the
// program class the framework handles — imperfect nests of do-loops
// with affine bounds and affine array subscripts:
//
//   param N
//   do I = 1, N
//     S1: A(I) = sqrt(A(I))
//     do J = I + 1, N
//       S2: A(J) = A(J) / A(I)
//     end
//   end
//
// Generated programs (with max/min/ceil/floor bounds and `if` guards,
// as produced by the printer) parse too, so print → parse round-trips.
#pragma once

#include <string>

#include "ir/ast.hpp"

namespace inlt {

/// Parse a program; throws InvalidProgramError with a line number on
/// syntax errors. The result has been validate()d.
Program parse_program(const std::string& source);

/// Parse a single affine expression, e.g. "2*I - J + 1".
AffineExpr parse_affine(const std::string& source);

}  // namespace inlt
