// Affine expressions over loop variables and symbolic parameters.
//
// Everything the framework manipulates symbolically — loop bounds,
// array subscripts, singular-loop guards — is an affine function of
// enclosing loop variables and program parameters (N, M, ...), which is
// exactly the class of programs the paper's machinery handles.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "support/checked_int.hpp"

namespace inlt {

/// sum_i coef_i * name_i + constant. Variable names cover both loop
/// variables and parameters; the Program knows which is which.
class AffineExpr {
 public:
  AffineExpr() = default;
  /// Constant expression.
  explicit AffineExpr(i64 constant) : constant_(constant) {}
  /// Single variable with coefficient 1.
  static AffineExpr variable(const std::string& name);

  i64 constant() const { return constant_; }
  /// Coefficient of a variable (0 if absent).
  i64 coef(const std::string& name) const;
  const std::map<std::string, i64>& terms() const { return terms_; }

  bool is_constant() const { return terms_.empty(); }
  bool is_zero() const { return terms_.empty() && constant_ == 0; }

  AffineExpr& add_term(const std::string& name, i64 coef);
  AffineExpr& add_constant(i64 k);

  AffineExpr operator+(const AffineExpr& o) const;
  AffineExpr operator-(const AffineExpr& o) const;
  AffineExpr operator*(i64 s) const;
  AffineExpr operator-() const { return *this * -1; }

  friend bool operator==(const AffineExpr& a, const AffineExpr& b) = default;

  /// Evaluate with every variable bound in env; throws on a free
  /// variable.
  i64 eval(const std::map<std::string, i64>& env) const;

  /// Replace a variable by an expression.
  AffineExpr substitute(const std::string& name,
                        const AffineExpr& repl) const;

  /// Rename a variable (no-op if absent).
  AffineExpr renamed(const std::string& from, const std::string& to) const;

  /// "I + 2*J - 1" rendering; "0" for the zero expression.
  std::string to_string() const;

 private:
  std::map<std::string, i64> terms_;  // name -> coefficient (nonzero)
  i64 constant_ = 0;
};

/// One candidate bound: (expr / den), rounded up (lower bounds) or down
/// (upper bounds) when den > 1. Source programs always have den == 1;
/// code generation for non-unimodular transformations produces den > 1.
struct BoundTerm {
  AffineExpr expr;
  i64 den = 1;

  BoundTerm() = default;
  BoundTerm(AffineExpr e) : expr(std::move(e)) {}  // NOLINT
  BoundTerm(AffineExpr e, i64 d) : expr(std::move(e)), den(d) {
    INLT_CHECK(d >= 1);
  }
  friend bool operator==(const BoundTerm&, const BoundTerm&) = default;
};

/// A loop bound. In the usual (tight) mode a lower bound is the max of
/// its terms and an upper bound the min — the intersection of the
/// constraints. Code generation for loops shared by statements with
/// different iteration ranges emits cover-mode bounds: the lower bound
/// is the MIN of the statements' lowers (and upper the MAX), a superset
/// of the union; per-statement guards then restore exactness (§5.5).
struct Bound {
  enum class Mode { kTight, kCover };

  std::vector<BoundTerm> terms;
  Mode mode = Mode::kTight;

  Bound() = default;
  Bound(AffineExpr e) { terms.emplace_back(std::move(e)); }  // NOLINT
  explicit Bound(std::vector<BoundTerm> t, Mode mo = Mode::kTight)
      : terms(std::move(t)), mode(mo) {}

  bool single() const { return terms.size() == 1; }
  friend bool operator==(const Bound&, const Bound&) = default;

  /// Evaluate as a lower bound: max (tight) / min (cover) over
  /// ceil(expr/den).
  i64 eval_lower(const std::map<std::string, i64>& env) const;
  /// Evaluate as an upper bound: min (tight) / max (cover) over
  /// floor(expr/den).
  i64 eval_upper(const std::map<std::string, i64>& env) const;

  std::string to_string(bool lower) const;
};

}  // namespace inlt
