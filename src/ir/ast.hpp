// The loop-nest abstract syntax tree of §2.1.
//
// Internal nodes are loops, leaves are atomic statements; subtree
// structure is syntactic nesting and left-to-right child order is
// execution order. A Program owns a forest of top-level nodes (one
// loop for the paper's examples; several after loop distribution).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ir/affine.hpp"
#include "ir/scalar.hpp"

namespace inlt {

/// A guard attached to a node by code generation: the subtree executes
/// only when the condition holds (§5.5's singular-loop conditions).
struct Guard {
  enum class Kind {
    kEqZero,     ///< expr == 0
    kGeZero,     ///< expr >= 0
    kDivisible,  ///< expr ≡ 0 (mod modulus)
  };
  Kind kind = Kind::kEqZero;
  AffineExpr expr;
  i64 modulus = 1;  ///< used by kDivisible

  bool holds(const std::map<std::string, i64>& env) const;
  std::string to_string() const;
};

class Node;
using NodePtr = std::unique_ptr<Node>;

/// An atomic assignment statement: lhs_array(lhs_subscripts) = rhs.
struct Statement {
  std::string label;  ///< e.g. "S1"; unique within a Program
  std::string lhs_array;
  std::vector<AffineExpr> lhs_subscripts;
  ScalarExprPtr rhs;

  Statement clone() const;

  /// The write access plus every read access in the body, write first.
  std::vector<ArrayAccess> accesses() const;
};

class Node {
 public:
  enum class Kind { kLoop, kStmt };

  /// Make a loop node `do var = lower, upper, step`.
  static NodePtr loop(std::string var, Bound lower, Bound upper,
                      i64 step = 1);
  /// Make a statement leaf.
  static NodePtr stmt(Statement s);

  Kind kind() const { return kind_; }
  bool is_loop() const { return kind_ == Kind::kLoop; }
  bool is_stmt() const { return kind_ == Kind::kStmt; }

  // -- loop accessors --
  const std::string& var() const;
  const Bound& lower() const;
  const Bound& upper() const;
  i64 step() const;
  void set_var(std::string v);
  void set_bounds(Bound lower, Bound upper, i64 step = 1);

  const std::vector<NodePtr>& children() const { return children_; }
  std::vector<NodePtr>& mutable_children() { return children_; }
  Node* add_child(NodePtr c);
  int num_children() const { return static_cast<int>(children_.size()); }

  // -- statement accessors --
  const Statement& stmt_data() const;
  Statement& mutable_stmt_data();

  // -- guards (any node) --
  const std::vector<Guard>& guards() const { return guards_; }
  std::vector<Guard>& mutable_guards() { return guards_; }
  void add_guard(Guard g) { guards_.push_back(std::move(g)); }

  NodePtr clone() const;

 private:
  Node() = default;

  Kind kind_ = Kind::kStmt;
  // loop fields
  std::string var_;
  Bound lower_, upper_;
  i64 step_ = 1;
  std::vector<NodePtr> children_;
  // statement field
  Statement stmt_;
  // guards
  std::vector<Guard> guards_;
};

/// A statement together with its enclosing loops, outermost first.
struct StatementContext {
  const Node* stmt = nullptr;
  std::vector<const Node*> loops;

  const std::string& label() const { return stmt->stmt_data().label; }
  int depth() const { return static_cast<int>(loops.size()); }
  /// Names of the enclosing loop variables, outermost first.
  std::vector<std::string> loop_vars() const;
};

/// A whole program: parameters plus a forest of top-level nodes.
class Program {
 public:
  Program() = default;

  Program(const Program& o) { *this = o; }
  Program& operator=(const Program& o);
  Program(Program&&) = default;
  Program& operator=(Program&&) = default;

  void add_param(std::string p) { params_.push_back(std::move(p)); }
  const std::vector<std::string>& params() const { return params_; }
  bool is_param(const std::string& name) const;

  Node* add_root(NodePtr n);
  const std::vector<NodePtr>& roots() const { return roots_; }
  std::vector<NodePtr>& mutable_roots() { return roots_; }

  /// All statements in syntactic (depth-first, left-to-right) order —
  /// the ⪯ₛ order of Definition 1.
  std::vector<StatementContext> statements() const;

  /// Statement context by label; throws if absent.
  StatementContext find_statement(const std::string& label) const;

  /// Structural sanity checks: unique loop variables on any root-to-
  /// leaf path, unique statement labels, subscripts only over enclosing
  /// loop variables and parameters. Throws InvalidProgramError.
  void validate() const;

 private:
  std::vector<std::string> params_;
  std::vector<NodePtr> roots_;
};

/// Visit every node; `pre` runs before children (loops only have
/// children). The loop stack holds enclosing loops, outermost first.
void walk(const Program& p,
          const std::function<void(const Node&,
                                   const std::vector<const Node*>&)>& pre);

/// Rename a loop variable throughout a subtree: bounds, guards, array
/// subscripts and statement bodies.
void rename_loop_var(Node& n, const std::string& from, const std::string& to);

}  // namespace inlt
