#include "ir/parser.hpp"

#include <cctype>
#include <optional>
#include <sstream>

#include "support/check.hpp"

namespace inlt {

namespace {

enum class Tok {
  kIdent,
  kInt,
  kFloat,
  kSym,  // single-char symbol or "=="
  kEnd,  // end of input
};

struct Token {
  Tok kind = Tok::kEnd;
  std::string text;
  i64 int_val = 0;
  double float_val = 0.0;
  int line = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& src) : src_(src) { advance(); }

  const Token& peek() const { return cur_; }

  Token next() {
    Token t = cur_;
    advance();
    return t;
  }

  [[noreturn]] void fail(const std::string& msg) const {
    std::ostringstream os;
    os << "parse error at line " << cur_.line << ": " << msg;
    if (cur_.kind != Tok::kEnd) os << " (near '" << cur_.text << "')";
    throw InvalidProgramError(os.str());
  }

  /// Save/restore for backtracking (array-ref vs function-call
  /// disambiguation).
  struct State {
    size_t pos;
    int line;
    Token cur;
  };
  State save() const { return {pos_, line_, cur_}; }
  void restore(const State& s) {
    pos_ = s.pos;
    line_ = s.line;
    cur_ = s.cur;
  }

 private:
  void advance() {
    // Skip whitespace and ! comments.
    for (;;) {
      while (pos_ < src_.size() &&
             std::isspace(static_cast<unsigned char>(src_[pos_]))) {
        if (src_[pos_] == '\n') ++line_;
        ++pos_;
      }
      if (pos_ < src_.size() && src_[pos_] == '!') {
        while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
        continue;
      }
      break;
    }
    cur_.line = line_;
    if (pos_ >= src_.size()) {
      cur_.kind = Tok::kEnd;
      cur_.text.clear();
      return;
    }
    char c = src_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = pos_;
      while (pos_ < src_.size() &&
             (std::isalnum(static_cast<unsigned char>(src_[pos_])) ||
              src_[pos_] == '_'))
        ++pos_;
      cur_.kind = Tok::kIdent;
      cur_.text = src_.substr(start, pos_ - start);
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = pos_;
      while (pos_ < src_.size() &&
             std::isdigit(static_cast<unsigned char>(src_[pos_])))
        ++pos_;
      bool is_float = false;
      if (pos_ < src_.size() && src_[pos_] == '.') {
        is_float = true;
        ++pos_;
        while (pos_ < src_.size() &&
               std::isdigit(static_cast<unsigned char>(src_[pos_])))
          ++pos_;
      }
      cur_.text = src_.substr(start, pos_ - start);
      if (is_float) {
        cur_.kind = Tok::kFloat;
        cur_.float_val = std::stod(cur_.text);
      } else {
        cur_.kind = Tok::kInt;
        cur_.int_val = std::stoll(cur_.text);
      }
      return;
    }
    if (c == '=' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '=') {
      cur_.kind = Tok::kSym;
      cur_.text = "==";
      pos_ += 2;
      return;
    }
    if (c == '>' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '=') {
      cur_.kind = Tok::kSym;
      cur_.text = ">=";
      pos_ += 2;
      return;
    }
    cur_.kind = Tok::kSym;
    cur_.text = std::string(1, c);
    ++pos_;
  }

  const std::string& src_;
  size_t pos_ = 0;
  int line_ = 1;
  Token cur_;
};

class Parser {
 public:
  explicit Parser(const std::string& src) : lx_(src) {}

  Program parse() {
    Program p;
    while (accept_ident("param")) p.add_param(expect_ident());
    while (lx_.peek().kind != Tok::kEnd) p.add_root(parse_node());
    p.validate();
    return p;
  }

  AffineExpr parse_affine_only() {
    AffineExpr e = parse_affine();
    if (lx_.peek().kind != Tok::kEnd) lx_.fail("trailing input");
    return e;
  }

 private:
  bool peek_ident(const std::string& kw) const {
    return lx_.peek().kind == Tok::kIdent && lx_.peek().text == kw;
  }
  bool peek_sym(const std::string& s) const {
    return lx_.peek().kind == Tok::kSym && lx_.peek().text == s;
  }
  bool accept_ident(const std::string& kw) {
    if (!peek_ident(kw)) return false;
    lx_.next();
    return true;
  }
  bool accept_sym(const std::string& s) {
    if (!peek_sym(s)) return false;
    lx_.next();
    return true;
  }
  void expect_sym(const std::string& s) {
    if (!accept_sym(s)) lx_.fail("expected '" + s + "'");
  }
  std::string expect_ident() {
    if (lx_.peek().kind != Tok::kIdent) lx_.fail("expected identifier");
    return lx_.next().text;
  }
  i64 expect_int() {
    bool neg = accept_sym("-");
    if (lx_.peek().kind != Tok::kInt) lx_.fail("expected integer");
    i64 v = lx_.next().int_val;
    return neg ? -v : v;
  }

  NodePtr parse_node() {
    if (peek_ident("do")) return parse_loop();
    if (peek_ident("if")) return parse_guarded();
    return parse_stmt();
  }

  NodePtr parse_loop() {
    accept_ident("do");
    std::string var = expect_ident();
    expect_sym("=");
    Bound lower = parse_bound(/*lower=*/true);
    expect_sym(",");
    Bound upper = parse_bound(/*lower=*/false);
    i64 step = 1;
    if (accept_sym(",")) step = expect_int();
    NodePtr loop = Node::loop(std::move(var), std::move(lower),
                              std::move(upper), step);
    while (!peek_ident("end")) {
      if (lx_.peek().kind == Tok::kEnd) lx_.fail("missing 'end'");
      loop->add_child(parse_node());
    }
    accept_ident("end");
    return loop;
  }

  NodePtr parse_guarded() {
    accept_ident("if");
    expect_sym("(");
    Guard g = parse_guard_cond();
    expect_sym(")");
    NodePtr inner = parse_node();
    if (!accept_ident("endif")) lx_.fail("missing 'endif'");
    // Guards are conjunctive; evaluation order is irrelevant.
    inner->add_guard(std::move(g));
    return inner;
  }

  Guard parse_guard_cond() {
    // Forms:  <affine> == 0     |    ( <affine> ) mod <int> == 0
    if (accept_sym("(")) {
      AffineExpr e = parse_affine();
      expect_sym(")");
      if (accept_ident("mod")) {
        i64 m = expect_int();
        expect_sym("==");
        i64 z = expect_int();
        if (z != 0) lx_.fail("mod guard must compare to 0");
        Guard g;
        g.kind = Guard::Kind::kDivisible;
        g.expr = std::move(e);
        g.modulus = m;
        return g;
      }
      bool ge = peek_sym(">=");
      if (ge)
        accept_sym(">=");
      else
        expect_sym("==");
      i64 rhs = expect_int();
      Guard g;
      g.kind = ge ? Guard::Kind::kGeZero : Guard::Kind::kEqZero;
      g.expr = std::move(e);
      g.expr.add_constant(-rhs);
      return g;
    }
    AffineExpr e = parse_affine();
    bool ge = peek_sym(">=");
    if (ge)
      accept_sym(">=");
    else
      expect_sym("==");
    i64 rhs = expect_int();
    Guard g;
    g.kind = ge ? Guard::Kind::kGeZero : Guard::Kind::kEqZero;
    g.expr = std::move(e);
    g.expr.add_constant(-rhs);
    return g;
  }

  Bound parse_bound(bool lower) {
    // max(..) on a lower bound (or min on an upper) is a tight bound;
    // the swapped combinator is a cover-mode bound (see Bound::Mode).
    bool tight_kw = (lower && peek_ident("max")) || (!lower && peek_ident("min"));
    bool cover_kw = (lower && peek_ident("min")) || (!lower && peek_ident("max"));
    if (tight_kw || cover_kw) {
      lx_.next();
      expect_sym("(");
      std::vector<BoundTerm> terms;
      terms.push_back(parse_bound_term(lower));
      while (accept_sym(",")) terms.push_back(parse_bound_term(lower));
      expect_sym(")");
      return Bound(std::move(terms),
                   tight_kw ? Bound::Mode::kTight : Bound::Mode::kCover);
    }
    return Bound(std::vector<BoundTerm>{parse_bound_term(lower)});
  }

  BoundTerm parse_bound_term(bool lower) {
    if ((lower && peek_ident("ceil")) || (!lower && peek_ident("floor"))) {
      lx_.next();
      expect_sym("(");
      AffineExpr e = parse_affine();
      expect_sym(",");
      i64 d = expect_int();
      expect_sym(")");
      return BoundTerm(std::move(e), d);
    }
    return BoundTerm(parse_affine());
  }

  AffineExpr parse_affine() {
    AffineExpr e;
    bool neg = accept_sym("-");
    e = parse_affine_term(neg);
    for (;;) {
      if (accept_sym("+"))
        e = e + parse_affine_term(false);
      else if (accept_sym("-"))
        e = e + parse_affine_term(true);
      else
        break;
    }
    return e;
  }

  AffineExpr parse_affine_term(bool neg) {
    i64 sign = neg ? -1 : 1;
    if (lx_.peek().kind == Tok::kInt) {
      i64 v = lx_.next().int_val;
      if (accept_sym("*")) {
        if (accept_sym("(")) {
          AffineExpr inner = parse_affine();
          expect_sym(")");
          return inner * checked_mul(sign, v);
        }
        std::string var = expect_ident();
        AffineExpr e;
        e.add_term(var, checked_mul(sign, v));
        return e;
      }
      return AffineExpr(checked_mul(sign, v));
    }
    if (accept_sym("(")) {
      AffineExpr inner = parse_affine();
      expect_sym(")");
      return inner * sign;
    }
    std::string var = expect_ident();
    if (accept_sym("*")) {
      i64 v = expect_int();
      AffineExpr e;
      e.add_term(var, checked_mul(sign, v));
      return e;
    }
    AffineExpr e;
    e.add_term(var, sign);
    return e;
  }

  NodePtr parse_stmt() {
    std::string label = expect_ident();
    expect_sym(":");
    std::string array = expect_ident();
    expect_sym("(");
    std::vector<AffineExpr> subs;
    if (!peek_sym(")")) {
      subs.push_back(parse_affine());
      while (accept_sym(",")) subs.push_back(parse_affine());
    }
    expect_sym(")");
    expect_sym("=");
    ScalarExprPtr rhs = parse_scalar_expr();
    Statement s;
    s.label = std::move(label);
    s.lhs_array = std::move(array);
    s.lhs_subscripts = std::move(subs);
    s.rhs = std::move(rhs);
    return Node::stmt(std::move(s));
  }

  ScalarExprPtr parse_scalar_expr() {
    ScalarExprPtr e = parse_scalar_term();
    for (;;) {
      if (accept_sym("+"))
        e = ScalarExpr::binary(ScalarOp::kAdd, std::move(e),
                               parse_scalar_term());
      else if (accept_sym("-"))
        e = ScalarExpr::binary(ScalarOp::kSub, std::move(e),
                               parse_scalar_term());
      else
        break;
    }
    return e;
  }

  ScalarExprPtr parse_scalar_term() {
    ScalarExprPtr e = parse_scalar_factor();
    for (;;) {
      if (accept_sym("*"))
        e = ScalarExpr::binary(ScalarOp::kMul, std::move(e),
                               parse_scalar_factor());
      else if (accept_sym("/"))
        e = ScalarExpr::binary(ScalarOp::kDiv, std::move(e),
                               parse_scalar_factor());
      else
        break;
    }
    return e;
  }

  ScalarExprPtr parse_scalar_factor() {
    if (accept_sym("-"))
      return ScalarExpr::unary(ScalarOp::kNeg, parse_scalar_factor());
    if (lx_.peek().kind == Tok::kInt) {
      Token t = lx_.next();
      return ScalarExpr::number(static_cast<double>(t.int_val));
    }
    if (lx_.peek().kind == Tok::kFloat)
      return ScalarExpr::number(lx_.next().float_val);
    if (accept_sym("(")) {
      ScalarExprPtr e = parse_scalar_expr();
      expect_sym(")");
      return e;
    }
    if (peek_ident("sqrt")) {
      lx_.next();
      expect_sym("(");
      ScalarExprPtr a = parse_scalar_expr();
      expect_sym(")");
      return ScalarExpr::unary(ScalarOp::kSqrt, std::move(a));
    }
    std::string name = expect_ident();
    if (!peek_sym("(")) return ScalarExpr::var(std::move(name));

    // name(...) — array reference if every argument parses as an
    // affine expression, otherwise a function call. Zero arguments is
    // always a function call (f()).
    Lexer::State mark = lx_.save();
    accept_sym("(");
    if (accept_sym(")"))
      return ScalarExpr::func(std::move(name), {});
    std::vector<AffineExpr> subs;
    bool affine_ok = true;
    try {
      subs.push_back(parse_affine());
      while (accept_sym(",")) subs.push_back(parse_affine());
      if (!accept_sym(")")) affine_ok = false;
    } catch (const InvalidProgramError&) {
      affine_ok = false;
    }
    if (affine_ok)
      return ScalarExpr::array(std::move(name), std::move(subs));

    // Re-parse as a function call with scalar arguments.
    lx_.restore(mark);
    accept_sym("(");
    std::vector<ScalarExprPtr> args;
    args.push_back(parse_scalar_expr());
    while (accept_sym(",")) args.push_back(parse_scalar_expr());
    expect_sym(")");
    return ScalarExpr::func(std::move(name), std::move(args));
  }

  Lexer lx_;
};

}  // namespace

Program parse_program(const std::string& source) {
  return Parser(source).parse();
}

AffineExpr parse_affine(const std::string& source) {
  return Parser(source).parse_affine_only();
}

}  // namespace inlt
