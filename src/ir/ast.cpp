#include "ir/ast.hpp"

#include <set>
#include <sstream>

#include "support/check.hpp"

namespace inlt {

bool Guard::holds(const std::map<std::string, i64>& env) const {
  i64 v = expr.eval(env);
  switch (kind) {
    case Kind::kEqZero:
      return v == 0;
    case Kind::kGeZero:
      return v >= 0;
    case Kind::kDivisible:
      return floor_mod(v, modulus) == 0;
  }
  return false;
}

std::string Guard::to_string() const {
  std::ostringstream os;
  switch (kind) {
    case Kind::kEqZero:
      os << expr.to_string() << " == 0";
      break;
    case Kind::kGeZero:
      os << expr.to_string() << " >= 0";
      break;
    case Kind::kDivisible:
      os << "(" << expr.to_string() << ") mod " << modulus << " == 0";
      break;
  }
  return os.str();
}

Statement Statement::clone() const {
  Statement s;
  s.label = label;
  s.lhs_array = lhs_array;
  s.lhs_subscripts = lhs_subscripts;
  s.rhs = rhs ? rhs->clone() : nullptr;
  return s;
}

std::vector<ArrayAccess> Statement::accesses() const {
  std::vector<ArrayAccess> out;
  out.push_back({lhs_array, lhs_subscripts, /*is_write=*/true});
  if (rhs) collect_reads(*rhs, out);
  return out;
}

NodePtr Node::loop(std::string var, Bound lower, Bound upper, i64 step) {
  INLT_CHECK_MSG(step >= 1, "loop step must be >= 1");
  auto n = NodePtr(new Node());
  n->kind_ = Kind::kLoop;
  n->var_ = std::move(var);
  n->lower_ = std::move(lower);
  n->upper_ = std::move(upper);
  n->step_ = step;
  return n;
}

NodePtr Node::stmt(Statement s) {
  auto n = NodePtr(new Node());
  n->kind_ = Kind::kStmt;
  n->stmt_ = std::move(s);
  return n;
}

const std::string& Node::var() const {
  INLT_CHECK(is_loop());
  return var_;
}
const Bound& Node::lower() const {
  INLT_CHECK(is_loop());
  return lower_;
}
const Bound& Node::upper() const {
  INLT_CHECK(is_loop());
  return upper_;
}
i64 Node::step() const {
  INLT_CHECK(is_loop());
  return step_;
}
void Node::set_var(std::string v) {
  INLT_CHECK(is_loop());
  var_ = std::move(v);
}
void Node::set_bounds(Bound lower, Bound upper, i64 step) {
  INLT_CHECK(is_loop());
  INLT_CHECK(step >= 1);
  lower_ = std::move(lower);
  upper_ = std::move(upper);
  step_ = step;
}

Node* Node::add_child(NodePtr c) {
  INLT_CHECK_MSG(is_loop(), "only loops have children");
  children_.push_back(std::move(c));
  return children_.back().get();
}

const Statement& Node::stmt_data() const {
  INLT_CHECK(is_stmt());
  return stmt_;
}
Statement& Node::mutable_stmt_data() {
  INLT_CHECK(is_stmt());
  return stmt_;
}

NodePtr Node::clone() const {
  auto n = NodePtr(new Node());
  n->kind_ = kind_;
  n->var_ = var_;
  n->lower_ = lower_;
  n->upper_ = upper_;
  n->step_ = step_;
  n->stmt_ = stmt_.clone();
  n->guards_ = guards_;
  n->children_.reserve(children_.size());
  for (const NodePtr& c : children_) n->children_.push_back(c->clone());
  return n;
}

std::vector<std::string> StatementContext::loop_vars() const {
  std::vector<std::string> vs;
  vs.reserve(loops.size());
  for (const Node* l : loops) vs.push_back(l->var());
  return vs;
}

Program& Program::operator=(const Program& o) {
  if (this == &o) return *this;
  params_ = o.params_;
  roots_.clear();
  roots_.reserve(o.roots_.size());
  for (const NodePtr& r : o.roots_) roots_.push_back(r->clone());
  return *this;
}

bool Program::is_param(const std::string& name) const {
  for (const std::string& p : params_)
    if (p == name) return true;
  return false;
}

Node* Program::add_root(NodePtr n) {
  roots_.push_back(std::move(n));
  return roots_.back().get();
}

namespace {
void collect_statements(const Node& n, std::vector<const Node*>& loops,
                        std::vector<StatementContext>& out) {
  if (n.is_stmt()) {
    out.push_back({&n, loops});
    return;
  }
  loops.push_back(&n);
  for (const NodePtr& c : n.children()) collect_statements(*c, loops, out);
  loops.pop_back();
}
}  // namespace

std::vector<StatementContext> Program::statements() const {
  std::vector<StatementContext> out;
  std::vector<const Node*> loops;
  for (const NodePtr& r : roots_) collect_statements(*r, loops, out);
  return out;
}

StatementContext Program::find_statement(const std::string& label) const {
  for (const StatementContext& sc : statements())
    if (sc.label() == label) return sc;
  throw InvalidProgramError("no statement labeled " + label);
}

namespace {
void check_affine_vars(const AffineExpr& e, const std::set<std::string>& ok,
                       const std::string& where) {
  for (const auto& [name, coef] : e.terms()) {
    (void)coef;
    if (!ok.count(name))
      throw InvalidProgramError("variable '" + name + "' used in " + where +
                                " is not an enclosing loop variable or "
                                "parameter");
  }
}

void check_scalar_vars(const ScalarExpr& e, const std::set<std::string>& ok,
                       const std::string& where) {
  for (const AffineExpr& s : e.subscripts) check_affine_vars(s, ok, where);
  for (const auto& a : e.args) check_scalar_vars(*a, ok, where);
}

void validate_node(const Node& n, std::set<std::string>& scope,
                   std::set<std::string>& labels) {
  if (n.is_stmt()) {
    const Statement& s = n.stmt_data();
    if (s.label.empty())
      throw InvalidProgramError("statement with empty label");
    if (!labels.insert(s.label).second)
      throw InvalidProgramError("duplicate statement label " + s.label);
    std::string where = "statement " + s.label;
    for (const AffineExpr& e : s.lhs_subscripts)
      check_affine_vars(e, scope, where);
    if (s.rhs) check_scalar_vars(*s.rhs, scope, where);
    for (const Guard& g : n.guards()) check_affine_vars(g.expr, scope, where);
    return;
  }
  if (scope.count(n.var()))
    throw InvalidProgramError("loop variable '" + n.var() +
                              "' shadows an enclosing variable");
  std::string where = "bounds of loop " + n.var();
  for (const BoundTerm& t : n.lower().terms)
    check_affine_vars(t.expr, scope, where);
  for (const BoundTerm& t : n.upper().terms)
    check_affine_vars(t.expr, scope, where);
  for (const Guard& g : n.guards()) check_affine_vars(g.expr, scope, where);
  if (n.num_children() == 0)
    throw InvalidProgramError("empty loop " + n.var());
  scope.insert(n.var());
  for (const NodePtr& c : n.children()) validate_node(*c, scope, labels);
  scope.erase(n.var());
}
}  // namespace

void Program::validate() const {
  std::set<std::string> scope(params_.begin(), params_.end());
  std::set<std::string> labels;
  for (const NodePtr& r : roots_) validate_node(*r, scope, labels);
}

namespace {
void walk_node(const Node& n, std::vector<const Node*>& loops,
               const std::function<void(const Node&,
                                        const std::vector<const Node*>&)>& f) {
  f(n, loops);
  if (!n.is_loop()) return;
  loops.push_back(&n);
  for (const NodePtr& c : n.children()) walk_node(*c, loops, f);
  loops.pop_back();
}
}  // namespace

void walk(const Program& p,
          const std::function<void(const Node&,
                                   const std::vector<const Node*>&)>& pre) {
  std::vector<const Node*> loops;
  for (const NodePtr& r : p.roots()) walk_node(*r, loops, pre);
}

void rename_loop_var(Node& n, const std::string& from, const std::string& to) {
  for (Guard& g : n.mutable_guards()) g.expr = g.expr.renamed(from, to);
  if (n.is_stmt()) {
    Statement& s = n.mutable_stmt_data();
    for (AffineExpr& e : s.lhs_subscripts) e = e.renamed(from, to);
    if (s.rhs) s.rhs->rename_var(from, to);
    return;
  }
  if (n.var() == from) n.set_var(to);
  Bound lo = n.lower(), hi = n.upper();
  for (BoundTerm& t : lo.terms) t.expr = t.expr.renamed(from, to);
  for (BoundTerm& t : hi.terms) t.expr = t.expr.renamed(from, to);
  n.set_bounds(std::move(lo), std::move(hi), n.step());
  for (NodePtr& c : n.mutable_children()) rename_loop_var(*c, from, to);
}

}  // namespace inlt
