#include "ir/scalar.hpp"

#include <sstream>

#include "support/check.hpp"

namespace inlt {

ScalarExprPtr ScalarExpr::number(double v) {
  auto e = std::make_unique<ScalarExpr>();
  e->op = ScalarOp::kConst;
  e->constant = v;
  return e;
}

ScalarExprPtr ScalarExpr::var(std::string var_name) {
  auto e = std::make_unique<ScalarExpr>();
  e->op = ScalarOp::kVar;
  e->name = std::move(var_name);
  return e;
}

ScalarExprPtr ScalarExpr::affine(AffineExpr e) {
  auto r = std::make_unique<ScalarExpr>();
  r->op = ScalarOp::kAffine;
  r->subscripts.push_back(std::move(e));
  return r;
}

ScalarExprPtr ScalarExpr::array(std::string array_name,
                                std::vector<AffineExpr> subs) {
  auto e = std::make_unique<ScalarExpr>();
  e->op = ScalarOp::kArrayRef;
  e->name = std::move(array_name);
  e->subscripts = std::move(subs);
  return e;
}

ScalarExprPtr ScalarExpr::binary(ScalarOp op, ScalarExprPtr l,
                                 ScalarExprPtr r) {
  INLT_CHECK(op == ScalarOp::kAdd || op == ScalarOp::kSub ||
             op == ScalarOp::kMul || op == ScalarOp::kDiv);
  auto e = std::make_unique<ScalarExpr>();
  e->op = op;
  e->args.push_back(std::move(l));
  e->args.push_back(std::move(r));
  return e;
}

ScalarExprPtr ScalarExpr::unary(ScalarOp op, ScalarExprPtr a) {
  INLT_CHECK(op == ScalarOp::kNeg || op == ScalarOp::kSqrt);
  auto e = std::make_unique<ScalarExpr>();
  e->op = op;
  e->args.push_back(std::move(a));
  return e;
}

ScalarExprPtr ScalarExpr::func(std::string fn,
                               std::vector<ScalarExprPtr> as) {
  auto e = std::make_unique<ScalarExpr>();
  e->op = ScalarOp::kFunc;
  e->name = std::move(fn);
  e->args = std::move(as);
  return e;
}

ScalarExprPtr ScalarExpr::clone() const {
  auto e = std::make_unique<ScalarExpr>();
  e->op = op;
  e->constant = constant;
  e->name = name;
  e->subscripts = subscripts;
  e->args.reserve(args.size());
  for (const auto& a : args) e->args.push_back(a->clone());
  return e;
}

void ScalarExpr::rename_var(const std::string& from, const std::string& to) {
  if (op == ScalarOp::kVar && name == from) name = to;
  for (AffineExpr& s : subscripts) s = s.renamed(from, to);
  for (auto& a : args) a->rename_var(from, to);
}

void ScalarExpr::substitute_var(const std::string& vname,
                                const AffineExpr& repl) {
  if (op == ScalarOp::kVar && name == vname) {
    op = ScalarOp::kAffine;
    name.clear();
    subscripts.clear();
    subscripts.push_back(repl);
    return;
  }
  for (AffineExpr& s : subscripts) s = s.substitute(vname, repl);
  for (auto& a : args) a->substitute_var(vname, repl);
}

std::string ScalarExpr::to_string() const {
  std::ostringstream os;
  switch (op) {
    case ScalarOp::kConst:
      os << constant;
      break;
    case ScalarOp::kArrayRef: {
      os << name << "(";
      for (size_t i = 0; i < subscripts.size(); ++i) {
        if (i) os << ", ";
        os << subscripts[i].to_string();
      }
      os << ")";
      break;
    }
    case ScalarOp::kAdd:
    case ScalarOp::kSub:
    case ScalarOp::kMul:
    case ScalarOp::kDiv: {
      const char* sym = op == ScalarOp::kAdd   ? " + "
                        : op == ScalarOp::kSub ? " - "
                        : op == ScalarOp::kMul ? " * "
                                               : " / ";
      os << "(" << args[0]->to_string() << sym << args[1]->to_string() << ")";
      break;
    }
    case ScalarOp::kNeg:
      os << "(-" << args[0]->to_string() << ")";
      break;
    case ScalarOp::kSqrt:
      os << "sqrt(" << args[0]->to_string() << ")";
      break;
    case ScalarOp::kVar:
      os << name;
      break;
    case ScalarOp::kAffine:
      os << "(" << subscripts[0].to_string() << ")";
      break;
    case ScalarOp::kFunc: {
      os << name << "(";
      for (size_t i = 0; i < args.size(); ++i) {
        if (i) os << ", ";
        os << args[i]->to_string();
      }
      os << ")";
      break;
    }
  }
  return os.str();
}

std::string ArrayAccess::to_string() const {
  std::ostringstream os;
  os << (is_write ? "W " : "R ") << array << "(";
  for (size_t i = 0; i < subscripts.size(); ++i) {
    if (i) os << ", ";
    os << subscripts[i].to_string();
  }
  os << ")";
  return os.str();
}

void collect_reads(const ScalarExpr& e, std::vector<ArrayAccess>& out) {
  if (e.op == ScalarOp::kArrayRef)
    out.push_back({e.name, e.subscripts, /*is_write=*/false});
  for (const auto& a : e.args) collect_reads(*a, out);
}

}  // namespace inlt
