#include "ir/gallery.hpp"

#include "ir/parser.hpp"

namespace inlt::gallery {

Program fig1_running_example() {
  return parse_program(R"(
param N
do I = 1, N
  do J = 1, N
    S1: X(I, J) = f()
    S2: Y(I, J) = g()
  end
  S3: Z(I) = h()
end
)");
}

Program simplified_cholesky() {
  return parse_program(R"(
param N
do I = 1, N
  S1: A(I) = sqrt(A(I))
  do J = I + 1, N
    S2: A(J) = A(J) / A(I)
  end
end
)");
}

Program fig3_perfect_nest() {
  return parse_program(R"(
param N
do I = 1, N
  do J = I + 1, N
    S1: A(J) = A(J) / A(I)
  end
end
)");
}

Program augmentation_example() {
  return parse_program(R"(
param N
do I = 1, N
  S1: B(I) = B(I - 1) + A(I - 1, I + 1)
  do J = I, N
    S2: A(I, J) = f()
  end
end
)");
}

Program cholesky() {
  return parse_program(R"(
param N
do K = 1, N
  S1: A(K, K) = sqrt(A(K, K))
  do I = K + 1, N
    S2: A(I, K) = A(I, K) / A(K, K)
  end
  do J = K + 1, N
    do L = K + 1, J
      S3: A(J, L) = A(J, L) - A(J, K) * A(L, K)
    end
  end
end
)");
}

Program simplified_cholesky_distributed() {
  return parse_program(R"(
param N
do I = 1, N
  S1: A(I) = sqrt(A(I))
end
do I2 = 1, N
  do J = I2 + 1, N
    S2: A(J) = A(J) / A(I2)
  end
end
)");
}

Program lu() {
  return parse_program(R"(
param N
do K = 1, N
  do I = K + 1, N
    S1: A(I, K) = A(I, K) / A(K, K)
  end
  do J = K + 1, N
    do L = K + 1, N
      S2: A(J, L) = A(J, L) - A(J, K) * A(K, L)
    end
  end
end
)");
}

}  // namespace inlt::gallery
