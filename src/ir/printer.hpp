// Pretty printer: renders a Program in the mini-language accepted by
// the parser (guards render as `if (...)` wrappers, which the parser
// also accepts, so print → parse round-trips).
#pragma once

#include <string>

#include "ir/ast.hpp"

namespace inlt {

/// Render the whole program.
std::string print_program(const Program& p);

/// Render a single node subtree at the given indent level.
std::string print_node(const Node& n, int indent = 0);

}  // namespace inlt
