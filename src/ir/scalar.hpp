// Statement-body expression trees.
//
// The paper treats assignment statements as atomic; we additionally
// record their arithmetic so the interpreter (src/exec) can execute
// source and transformed programs and verify they compute identical
// array states. Array subscripts are affine in enclosing loop
// variables and parameters — the class of programs the framework
// covers.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ir/affine.hpp"

namespace inlt {

enum class ScalarOp {
  kConst,     ///< double literal
  kArrayRef,  ///< A(e1, ..., ek) with affine subscripts
  kAdd,
  kSub,
  kMul,
  kDiv,
  kNeg,
  kSqrt,
  kVar,     ///< a loop variable or parameter used as a value
  kAffine,  ///< an affine expression used as a value (subscripts[0]);
            ///< produced by code generation when a source loop
            ///< variable is rewritten in terms of target loops
  kFunc,  ///< uninterpreted pure function; the interpreter supplies a
          ///< deterministic value from the function name, evaluated
          ///< arguments and the current loop environment
};

struct ScalarExpr;
using ScalarExprPtr = std::unique_ptr<ScalarExpr>;

struct ScalarExpr {
  ScalarOp op = ScalarOp::kConst;
  double constant = 0.0;                ///< kConst
  std::string name;                     ///< array (kArrayRef) or function (kFunc)
  std::vector<AffineExpr> subscripts;   ///< kArrayRef
  std::vector<ScalarExprPtr> args;      ///< operands / call arguments

  ScalarExpr() = default;

  static ScalarExprPtr number(double v);
  static ScalarExprPtr var(std::string var_name);
  static ScalarExprPtr affine(AffineExpr e);
  static ScalarExprPtr array(std::string array_name,
                             std::vector<AffineExpr> subs);
  static ScalarExprPtr binary(ScalarOp op, ScalarExprPtr l, ScalarExprPtr r);
  static ScalarExprPtr unary(ScalarOp op, ScalarExprPtr a);
  static ScalarExprPtr func(std::string fn, std::vector<ScalarExprPtr> as);

  ScalarExprPtr clone() const;

  /// Rename a loop variable everywhere in subscripts (recursively).
  void rename_var(const std::string& from, const std::string& to);

  /// Replace a loop variable by an affine expression everywhere:
  /// subscripts substitute directly; kVar references become kAffine.
  void substitute_var(const std::string& name, const AffineExpr& repl);

  std::string to_string() const;
};

/// One array reference with its access direction; the unit of
/// dependence analysis (§3).
struct ArrayAccess {
  std::string array;
  std::vector<AffineExpr> subscripts;
  bool is_write = false;

  std::string to_string() const;
};

/// Collect every array read inside an expression tree.
void collect_reads(const ScalarExpr& e, std::vector<ArrayAccess>& out);

}  // namespace inlt
