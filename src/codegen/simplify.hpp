// Post-codegen simplification — the "standard optimizations" §5.5
// invokes to turn the raw generated code into its clean final form.
//
// Using the Omega-test substrate, the pass drops every bound term and
// guard that is implied by its context (enclosing loop bounds, guards
// on the path, and optional positivity assumptions on parameters), and
// deletes subtrees whose guards can never hold. Cover-mode union
// bounds whose dominated terms disappear collapse back to tight
// single-term bounds, reproducing e.g. §5.5's outer `do I = 1-N..0`
// from the raw `do I = min(1-N, 0)..0`.
#pragma once

#include "ir/ast.hpp"

namespace inlt {

struct SimplifyOptions {
  /// Assume every program parameter is >= this value (the paper's
  /// examples implicitly assume N >= 1). Set to INT64_MIN to disable.
  i64 param_at_least = 1;
};

/// Returns the simplified program (the input is not modified).
Program simplify_program(const Program& p, const SimplifyOptions& opts = {});

}  // namespace inlt
