// Code generation (§5): from a legal transformation matrix to an
// executable transformed program.
//
// Pipeline:
//  1. NewAST recovers the transformed AST (Fig 6).
//  2. Definition 6's legality test runs; illegal matrices are rejected.
//  3. Per-statement transformations are computed and augmented with
//     extra loops for unsatisfied self-dependences (Fig 7, Theorem 3).
//  4. N_S (Definition 8) selects the non-singular loops; loop bounds
//     come from Fourier–Motzkin elimination over each statement's
//     transformed iteration polyhedron (Lemma 3); singular loops
//     (Definition 9) collapse to a single guarded iteration computed
//     from the linear combination of §5.5.
//  5. Loops shared by statements with different ranges get cover-mode
//     union bounds plus per-statement guards; statement bodies are
//     rewritten in terms of the new loop variables.
//  6. Non-unimodular per-statement transformations (loop scaling)
//     generate single-iteration reconstruction loops whose ceil/floor
//     bounds encode both the source iteration value and the stride
//     (lattice-membership) condition.
#pragma once

#include "transform/exact_legality.hpp"
#include "transform/per_statement.hpp"

namespace inlt {

struct CodegenOptions {
  PadMode pad = PadMode::kDiagonal;
};

struct CodegenResult {
  Program program;  ///< executable transformed program
  LegalityResult legality;
  std::vector<StatementPlan> plans;
};

/// Generate the transformed program for a legal transformation matrix.
/// Throws TransformError for illegal or unsupported matrices.
CodegenResult generate_code(const IvLayout& src, const DependenceSet& deps,
                            const IntMat& m, const CodegenOptions& opts = {});

struct ExactCodegenResult {
  Program program;
  ExactLegalityResult legality;
  std::vector<StatementPlan> plans;
};

/// Like generate_code, but legality (and the unsatisfied-dependence
/// detection that drives augmentation) is decided by the exact ILP
/// test of transform/exact_legality.hpp instead of direction-vector
/// hulls. Accepts some matrices the hull test conservatively rejects.
ExactCodegenResult generate_code_exact(const IvLayout& src, const IntMat& m,
                                       const CodegenOptions& opts = {});

}  // namespace inlt
