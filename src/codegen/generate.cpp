#include "codegen/generate.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "linalg/gauss.hpp"
#include "linalg/project.hpp"
#include "support/check.hpp"
#include "support/diag.hpp"
#include "support/stats.hpp"
#include "support/trace.hpp"

namespace inlt {

namespace {

// Everything code generation needs to know about one statement.
struct StmtCodegen {
  std::string label;
  int k = 0;                          // source nesting depth
  std::vector<std::string> src_vars;  // source loop variables, outer first
  std::vector<std::string> row_vars;  // per t_full row: target loop variable
  std::vector<bool> row_nonsingular;
  std::map<std::string, AffineExpr> sub;  // source var -> target affine
  std::vector<std::vector<BoundTerm>> lower, upper;  // per t_full row
  int num_tree_rows = 0;
  /// Non-unimodular N_S (loop scaling): each source iteration variable
  /// is reconstructed by a single-iteration innermost loop whose
  /// ceil/floor bounds encode both the value N_S⁻¹(x - c) and its
  /// integrality (a non-lattice x makes ceil > floor: zero
  /// iterations). Pairs of (fresh variable, bound term).
  std::vector<std::pair<std::string, BoundTerm>> recon_loops;
};

AffineExpr lin_to_affine(const LinExpr& e,
                         const std::vector<std::string>& names) {
  AffineExpr a(e.constant);
  for (size_t i = 0; i < e.coef.size(); ++i)
    if (e.coef[i] != 0) a.add_term(names[i], e.coef[i]);
  return a;
}

LinExpr affine_to_lin(const ConstraintSystem& cs, const AffineExpr& e) {
  LinExpr r = cs.zero_expr();
  r.constant = e.constant();
  for (const auto& [name, coef] : e.terms())
    r.coef[cs.var(name)] = checked_add(r.coef[cs.var(name)], coef);
  return r;
}

std::string fresh_name(std::set<std::string>& taken, const std::string& base) {
  for (int i = 2;; ++i) {
    std::string cand = base + std::to_string(i);
    if (taken.insert(cand).second) return cand;
  }
}

// Canonical key for a set of bound terms, for cross-statement
// comparison.
std::string terms_key(std::vector<BoundTerm> ts) {
  std::vector<std::string> rendered;
  for (const BoundTerm& t : ts)
    rendered.push_back(t.expr.to_string() + "/" + std::to_string(t.den));
  std::sort(rendered.begin(), rendered.end());
  std::string key;
  for (const std::string& s : rendered) key += s + "|";
  return key;
}

void dedup_terms(std::vector<BoundTerm>& ts) {
  std::vector<BoundTerm> out;
  for (BoundTerm& t : ts) {
    bool dup = false;
    for (const BoundTerm& o : out)
      if (o == t) dup = true;
    if (!dup) out.push_back(std::move(t));
  }
  ts = std::move(out);
}

StmtCodegen build_stmt_codegen(const IvLayout& src, const StatementPlan& plan,
                               std::set<std::string>& names_taken) {
  const Program& prog = src.program();
  StmtCodegen cg;
  cg.label = plan.label;
  cg.num_tree_rows = plan.num_tree_rows;

  const IvLayout::StmtInfo& info = src.stmt_info(plan.label);
  cg.k = static_cast<int>(info.loop_positions.size());
  for (int p : info.loop_positions)
    cg.src_vars.push_back(src.positions()[p].loop->var());

  // Row -> target loop variable. Tree rows keep the (cloned) tree loop
  // names, which equal the source names; augmented rows get fresh
  // names derived from the statement's outermost source variable
  // (matching the paper's I2 in §5.5).
  int rows = plan.t_full.rows();
  cg.row_vars.resize(rows);
  cg.row_nonsingular.assign(rows, false);
  for (int r = 0; r < plan.num_tree_rows; ++r) cg.row_vars[r] = cg.src_vars[r];
  for (int r = plan.num_tree_rows; r < rows; ++r)
    cg.row_vars[r] = fresh_name(
        names_taken, cg.src_vars.empty() ? plan.label : cg.src_vars[0]);
  for (int r : plan.nonsingular_rows) cg.row_nonsingular[r] = true;

  if (cg.k == 0) return cg;  // loopless statement: nothing to compute

  // N_S and its inverse. i_j = sum_r n_inv[j][r] * (x_r - c_r); when
  // the inverse is integral this is a direct affine substitution.
  // Otherwise (non-unit loop scaling) each i_j is reconstructed by a
  // fresh single-iteration loop y_j whose tight bounds are
  // ceil/floor((num_j · (x - c)), den_j): y_j equals i_j when den_j
  // divides the numerator, and the loop is empty (ceil > floor) on
  // non-lattice target points — encoding the stride condition exactly.
  IntMat n_s(0, cg.k);
  IntVec c_ns;
  for (int r : plan.nonsingular_rows) {
    n_s.append_row(plan.t_full.row(r));
    c_ns.push_back(plan.offset_full[r]);
  }
  RatMat n_inv_q = inverse(to_rational(n_s));  // throws if singular

  // Per source variable: den_of[j] * i_j == num_of[j](x).
  std::vector<AffineExpr> num_of;
  std::vector<i64> den_of;

  for (int j = 0; j < cg.k; ++j) {
    // Common denominator of row j of N_S⁻¹.
    i64 den = 1;
    for (int r = 0; r < cg.k; ++r) den = lcm(den, n_inv_q(j, r).den());
    AffineExpr num;  // den * i_j as an integer affine expression
    for (int r = 0; r < cg.k; ++r) {
      const Rational& q = n_inv_q(j, r);
      if (q.is_zero()) continue;
      i64 w = checked_mul(q.num(), den / q.den());
      num.add_term(cg.row_vars[plan.nonsingular_rows[r]], w);
      num.add_constant(checked_mul(-w, c_ns[r]));
    }
    if (den == 1) {
      cg.sub.emplace(cg.src_vars[j], num);
    } else {
      std::string y = fresh_name(names_taken, cg.src_vars[j]);
      cg.recon_loops.emplace_back(y, BoundTerm(num, den));
      cg.sub.emplace(cg.src_vars[j], AffineExpr::variable(y));
    }
    num_of.push_back(std::move(num));
    den_of.push_back(den);
  }

  // Constraint system over params + non-singular target variables, in
  // row (outermost-first) order.
  std::vector<std::string> vars;
  for (const std::string& p : prog.params()) vars.push_back(p);
  std::vector<int> x_var_index;  // per ns row: index in cs
  for (int r : plan.nonsingular_rows) {
    x_var_index.push_back(static_cast<int>(vars.size()));
    vars.push_back(cg.row_vars[r]);
  }
  ConstraintSystem cs(vars);

  // Source loop bounds, with loop variables replaced by their target
  // expressions. Replacements are fractions num/den (den > 1 under
  // loop scaling); constraints are cleared to integer form, a rational
  // relaxation whose extra lattice points the reconstruction loops
  // filter out. Simultaneous substitution: source names collide with
  // target loop names, so rename to unique temporaries first.
  auto substituted_frac =
      [&](const AffineExpr& e) -> std::pair<AffineExpr, i64> {
    AffineExpr r = e;
    for (int q = 0; q < cg.k; ++q)
      r = r.renamed(cg.src_vars[q], "$s" + cg.src_vars[q]);
    i64 den = 1;
    for (int q = 0; q < cg.k; ++q)
      if (r.coef("$s" + cg.src_vars[q]) != 0) den = lcm(den, den_of[q]);
    AffineExpr out(checked_mul(r.constant(), den));
    for (const auto& [name, coef] : r.terms()) {
      bool was_src = false;
      for (int q = 0; q < cg.k; ++q) {
        if (name != "$s" + cg.src_vars[q]) continue;
        out = out + num_of[q] * checked_mul(coef, den / den_of[q]);
        was_src = true;
        break;
      }
      if (!was_src) out.add_term(name, checked_mul(coef, den));
    }
    return {out, den};
  };
  const StatementContext sc = prog.find_statement(plan.label);
  for (int j = 0; j < cg.k; ++j) {
    const Node* l = sc.loops[j];
    INLT_CHECK_MSG(l->step() == 1,
                   "codegen requires unit-step source loops");
    for (const BoundTerm& t : l->lower().terms) {
      INLT_CHECK_MSG(t.den == 1, "source bounds must have denominator 1");
      auto [lo_num, lo_den] = substituted_frac(t.expr);
      // i_j >= lo  <=>  num_j * lo_den - lo_num * den_j >= 0
      cs.add_ge(affine_to_lin(cs, num_of[j] * lo_den - lo_num * den_of[j]));
    }
    for (const BoundTerm& t : l->upper().terms) {
      INLT_CHECK_MSG(t.den == 1, "source bounds must have denominator 1");
      auto [hi_num, hi_den] = substituted_frac(t.expr);
      cs.add_ge(affine_to_lin(cs, hi_num * den_of[j] - num_of[j] * hi_den));
    }
  }

  // Bounds for non-singular rows: eliminate inner target variables,
  // then read off the constraints on this row's variable (Lemma 3).
  cg.lower.resize(rows);
  cg.upper.resize(rows);
  int ns_count = static_cast<int>(plan.nonsingular_rows.size());
  for (int t = 0; t < ns_count; ++t) {
    ConstraintSystem work = cs;
    for (int inner = ns_count - 1; inner > t; --inner)
      work = eliminate_var_real(work, x_var_index[inner]);
    if (!normalize_system(work)) {
      Diagnostic d;
      d.stage = Stage::kCodegen;
      d.stmt = plan.label;
      d.message =
          "transformed iteration space of " + plan.label + " is empty";
      throw_diag(std::move(d));
    }
    int xv = x_var_index[t];
    int row = plan.nonsingular_rows[t];
    for (const LinExpr& e : work.inequalities()) {
      i64 a = e.coef[xv];
      if (a == 0) continue;
      LinExpr rest = e;
      rest.coef[xv] = 0;
      AffineExpr rest_a = lin_to_affine(rest, work.var_names());
      if (a > 0)
        cg.lower[row].emplace_back(-rest_a, a);  // x >= -rest/a
      else
        cg.upper[row].emplace_back(rest_a, -a);  // x <= rest/(-a)
    }
    dedup_terms(cg.lower[row]);
    dedup_terms(cg.upper[row]);
    if (cg.lower[row].empty() || cg.upper[row].empty()) {
      Diagnostic d;
      d.stage = Stage::kCodegen;
      d.stmt = plan.label;
      d.loop = cg.row_vars[row];
      d.message = "loop " + cg.row_vars[row] + " of " + plan.label +
                  " is unbounded after transformation";
      throw_diag(std::move(d));
    }
  }

  // Singular rows: x_r = (sum over earlier independent rows)/D, a
  // single guarded iteration (§5.5). An empty combination (zero row)
  // pins the loop to its offset.
  for (int r = 0; r < rows; ++r) {
    if (cg.row_nonsingular[r]) continue;
    std::vector<IntVec> basis;
    std::vector<int> basis_rows;
    for (int q : plan.nonsingular_rows)
      if (q < r) {
        basis.push_back(plan.t_full.row(q));
        basis_rows.push_back(q);
      }
    auto coeffs = express_in_span(plan.t_full.row(r), basis);
    INLT_CHECK_MSG(coeffs.has_value(),
                   "singular row is not spanned by previous rows");
    i64 d = 1;
    for (const Rational& c : *coeffs) d = lcm(d, c.den());
    AffineExpr e;
    Rational const_part(plan.offset_full[r]);
    for (size_t j = 0; j < coeffs->size(); ++j) {
      const Rational& c = (*coeffs)[j];
      if (c.is_zero()) continue;
      i64 w = checked_mul(c.num(), d / c.den());
      e.add_term(cg.row_vars[basis_rows[j]], w);
      const_part -= c * Rational(plan.offset_full[basis_rows[j]]);
    }
    Rational scaled = const_part * Rational(d);
    e.add_constant(scaled.as_integer());
    cg.lower[r] = {BoundTerm(e, d)};
    cg.upper[r] = {BoundTerm(e, d)};
  }
  return cg;
}

// Collect loop variable names and params already used in a program.
std::set<std::string> collect_names(const Program& p) {
  std::set<std::string> names(p.params().begin(), p.params().end());
  walk(p, [&](const Node& n, const std::vector<const Node*>&) {
    if (n.is_loop()) names.insert(n.var());
  });
  return names;
}

}  // namespace

namespace {

// The common back half of code generation: from per-statement plans to
// the final program.
Program build_program(const IvLayout& src, const AstRecovery& rec,
                      const std::vector<StatementPlan>& plans) {
  Program out = *rec.target;  // deep copy we are free to mutate
  std::set<std::string> names = collect_names(out);

  std::map<std::string, StmtCodegen> cgs;
  for (const StatementPlan& plan : plans)
    cgs.emplace(plan.label, build_stmt_codegen(src, plan, names));

  // --- Tree loop bounds: tight when all statements beneath agree,
  // --- cover-union plus per-statement guards otherwise.
  std::set<std::string> guarded;  // "label@row" needing guards
  {
    // Map loop node -> (statement label, row index) pairs.
    std::vector<StatementContext> stmts = out.statements();
    std::function<void(Node&)> fix_loops = [&](Node& n) {
      if (!n.is_loop()) return;
      std::vector<std::pair<std::string, int>> users;
      for (const StatementContext& sc : stmts)
        for (size_t d = 0; d < sc.loops.size(); ++d)
          if (sc.loops[d] == &n)
            users.emplace_back(sc.label(), static_cast<int>(d));
      INLT_CHECK(!users.empty());
      bool agree = true;
      const StmtCodegen& first = cgs.at(users[0].first);
      std::string lo_key = terms_key(first.lower[users[0].second]);
      std::string hi_key = terms_key(first.upper[users[0].second]);
      for (const auto& [label, row] : users) {
        const StmtCodegen& cg = cgs.at(label);
        if (terms_key(cg.lower[row]) != lo_key ||
            terms_key(cg.upper[row]) != hi_key)
          agree = false;
      }
      if (agree) {
        n.set_bounds(Bound(first.lower[users[0].second]),
                     Bound(first.upper[users[0].second]));
      } else {
        std::vector<BoundTerm> lo, hi;
        for (const auto& [label, row] : users) {
          const StmtCodegen& cg = cgs.at(label);
          lo.insert(lo.end(), cg.lower[row].begin(), cg.lower[row].end());
          hi.insert(hi.end(), cg.upper[row].begin(), cg.upper[row].end());
          guarded.insert(label + "@" + std::to_string(row));
        }
        dedup_terms(lo);
        dedup_terms(hi);
        n.set_bounds(Bound(std::move(lo), Bound::Mode::kCover),
                     Bound(std::move(hi), Bound::Mode::kCover));
      }
      for (NodePtr& c : n.mutable_children()) fix_loops(*c);
    };
    for (NodePtr& r : out.mutable_roots()) fix_loops(*r);
  }

  // --- Per statement: rewrite the body, attach guards, and wrap with
  // --- augmented loops.
  std::function<void(NodePtr&)> rewrite = [&](NodePtr& node) {
    if (node->is_loop()) {
      for (NodePtr& c : node->mutable_children()) rewrite(c);
      return;
    }
    Statement& st = node->mutable_stmt_data();
    const StmtCodegen& cg = cgs.at(st.label);

    // Simultaneous substitution via unique temporaries: source loop
    // variable names collide with target loop names.
    for (const std::string& v : cg.src_vars) {
      for (AffineExpr& e : st.lhs_subscripts) e = e.renamed(v, "$s" + v);
      if (st.rhs) st.rhs->rename_var(v, "$s" + v);
    }
    for (const std::string& v : cg.src_vars) {
      const AffineExpr& repl = cg.sub.at(v);
      for (AffineExpr& e : st.lhs_subscripts)
        e = e.substitute("$s" + v, repl);
      if (st.rhs) st.rhs->substitute_var("$s" + v, repl);
    }

    // Reconstruction loops (loop scaling) sit innermost: one guarded
    // iteration recovering each source variable from the scaled target
    // coordinates.
    NodePtr wrapped = std::move(node);
    for (int r = static_cast<int>(cg.recon_loops.size()) - 1; r >= 0; --r) {
      const auto& [var, term] = cg.recon_loops[r];
      NodePtr loop =
          Node::loop(var, Bound(std::vector<BoundTerm>{term}),
                     Bound(std::vector<BoundTerm>{term}));
      loop->add_child(std::move(wrapped));
      wrapped = std::move(loop);
    }

    // Augmented loops wrap the result, outermost augmentation row
    // first.
    for (int r = static_cast<int>(cg.row_vars.size()) - 1;
         r >= cg.num_tree_rows; --r) {
      NodePtr loop = Node::loop(cg.row_vars[r], Bound(cg.lower[r]),
                                Bound(cg.upper[r]));
      loop->add_child(std::move(wrapped));
      wrapped = std::move(loop);
    }

    // Guards for shared tree loops whose emitted bounds are the cover
    // union: re-impose this statement's own constraints. Attached to
    // the outermost wrapper (the augmented loop chain if present, else
    // the leaf), i.e. checked once per enclosing-loop iteration.
    for (int r = 0; r < cg.num_tree_rows; ++r) {
      if (!guarded.count(cg.label + "@" + std::to_string(r))) continue;
      AffineExpr x = AffineExpr::variable(cg.row_vars[r]);
      for (const BoundTerm& t : cg.lower[r]) {
        Guard g;
        g.kind = Guard::Kind::kGeZero;
        g.expr = x * t.den - t.expr;  // den*x - e >= 0  <=>  x >= e/den
        wrapped->add_guard(std::move(g));
      }
      for (const BoundTerm& t : cg.upper[r]) {
        Guard g;
        g.kind = Guard::Kind::kGeZero;
        g.expr = t.expr - x * t.den;
        wrapped->add_guard(std::move(g));
      }
    }
    node = std::move(wrapped);
  };
  for (NodePtr& r : out.mutable_roots()) rewrite(r);

  out.validate();
  return out;
}

}  // namespace

CodegenResult generate_code(const IvLayout& src, const DependenceSet& deps,
                            const IntMat& m, const CodegenOptions& opts) {
  ScopedSpan span("codegen.generate", "codegen");
  AstRecovery rec = [&] {
    ScopedTimer t("codegen.recover_ast");
    return recover_ast(src, m);
  }();
  LegalityResult legality = [&] {
    ScopedTimer t("codegen.legality");
    return check_legality(src, deps, m, rec);
  }();
  if (!legality.legal()) {
    std::ostringstream os;
    os << "transformation is illegal:";
    for (const std::string& v : legality.violations) os << "\n  " << v;
    throw DiagnosedTransformError(os.str(), legality.diagnostics);
  }
  std::vector<StatementPlan> plans = [&] {
    ScopedTimer t("codegen.plan");
    return plan_statements(src, deps, m, rec, legality, opts.pad);
  }();
  ScopedTimer t("codegen.build");
  Program out = build_program(src, rec, plans);
  return {std::move(out), std::move(legality), std::move(plans)};
}

ExactCodegenResult generate_code_exact(const IvLayout& src, const IntMat& m,
                                       const CodegenOptions& opts) {
  ScopedSpan span("codegen.generate_exact", "codegen");
  AstRecovery rec = [&] {
    ScopedTimer t("codegen.recover_ast");
    return recover_ast(src, m);
  }();
  ExactLegalityResult legality = [&] {
    ScopedTimer t("codegen.legality");
    return check_legality_exact(src, m, rec, opts.pad);
  }();
  if (!legality.legal()) {
    std::ostringstream os;
    os << "transformation is illegal (exact test):";
    for (const std::string& v : legality.violations) os << "\n  " << v;
    throw DiagnosedTransformError(os.str(), legality.diagnostics);
  }
  std::vector<StatementPlan> plans = [&] {
    ScopedTimer t("codegen.plan");
    return plan_statements_from_self(src, m, rec, legality.unsatisfied_self,
                                     opts.pad);
  }();
  ScopedTimer t("codegen.build");
  Program out = build_program(src, rec, plans);
  return {std::move(out), std::move(legality), std::move(plans)};
}

}  // namespace inlt
